GO ?= go

.PHONY: all build vet test race check chaos chaos-mc chaos-scale partition-race metrics-smoke transport-race bench bench-update docs-lint

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast feedback: skip the long experiment sweeps.
test:
	$(GO) test -short ./...

# Full suite under the race detector (CI entry point).
race:
	$(GO) test -race ./...

# Fault-injection matrix: the chaos, crash, lifecycle/lease/eviction and
# registry-failover suites under the race detector, swept over several
# deterministic seeds (DFI_CHAOS_SEED is read by the core test env;
# -count=1 defeats caching so every seed really runs).
CHAOS_SEEDS ?= 11 1 7 42
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		DFI_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Chaos|Crash|Lifecycle|Lease|Evict|Reattach|Rejoin|Replicated|Remove|Promise|Accept|Ballot' \
			./internal/core/ ./internal/registry/ ./internal/consensus/... || exit 1; \
	done

# Ordered-multicast fault matrix: source crash under leases, gap
# agreement between survivors, target eviction + sequencer-snapshot
# rejoin, and the unsupported-operation surface, swept over the chaos
# seeds (each seed changes which UD sends are lost and therefore which
# sequences need agreement).
chaos-mc:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos-mc seed $$seed =="; \
		DFI_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'TestChaosOrderedMulticast|TestOrderedReplicate|TestReplicateMulticast|TestMulticastUnsupportedOps|TestGapNackLimitValidation' \
			./internal/core/ || exit 1; \
	done

# Connection-scaling matrix: the shared-ring suites — core mux
# (shuffle over shared rings, many flows on one node pair, eviction
# reroute, batched lease keepalive, admission), the sharedring
# credit-conservation property tests, and the O(1000)-flow scale sweep
# (throughput within 10% of the 100-flow baseline, sublinear lease
# traffic) — under the race detector across the chaos seeds. -short
# keeps the sweep at 256 flows per seed; one full-scale seed runs the
# acceptance geometry (1000 flows, 100k tuples).
chaos-scale:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos-scale seed $$seed =="; \
		DFI_CHAOS_SEED=$$seed $(GO) test -race -count=1 -short \
			-run 'TestChaosScaleSharedFlows|TestSharedRing' \
			./internal/core/ ./internal/transport/sharedring/ || exit 1; \
	done
	@echo "== chaos-scale full (seed 1) =="
	DFI_CHAOS_SEED=1 $(GO) test -race -count=1 -timeout 600s \
		-run 'TestChaosScaleSharedFlows' ./internal/core/

# Partitioner + membership focus: the packages behind consistent-hash
# routing, rebalance and endpoint re-attach, under the race detector
# (fast enough to run on every change; the full suite lives in `race`).
# Includes the metrics package and the core scrape suite: a scraper
# goroutine hammering Stats()/Summary/exposition while flows run is
# exactly what the race detector must see.
partition-race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/registry/... ./internal/metrics/...

# Ops-plane smoke: run dfiflow with a live metrics endpoint, scrape
# /metrics, /status and /events, and assert the exposition parses and
# the scraped counters equal the end-of-run printed Stats() summary.
metrics-smoke:
	$(GO) test -race -count=1 -run 'TestMetricsSmoke|TestTraceSummary|TestEventsOut' ./cmd/dfiflow/

# Transport layer under the race detector: the conformance suite on
# both backends (DES fabric + chanloop), the chanloop quickstart-shaped
# e2e flow on real goroutines moving real bytes, and the dfiflow
# -transport=chan CLI coverage. This is the backend-agnosticism gate:
# the same core data path must deliver identical payloads without the
# sim kernel serializing anything.
transport-race:
	$(GO) test -race -count=1 ./internal/transport/...
	$(GO) test -race -count=1 -run 'TestTransportConformance' ./internal/fabric/
	$(GO) test -race -count=1 -run 'TestChanTransport' ./cmd/dfiflow/

# Figure benchmarks behind the bench-regression harness. `bench` fails
# when wall-clock ns/op regresses >10% against the committed baseline
# (override with BENCH_TOLERANCE=0.25; BENCH_WALLCLOCK=advisory demotes
# wall-clock regressions to warnings for cross-host runs like CI), when
# any virtual-time metric (GiB/s, mpi-over-dfi, ...) drifts at all —
# virtual drift means the change altered simulated behavior — or when a
# baseline benchmark is missing from the run (so a rename or pattern typo
# cannot pass the gate vacuously), or when allocs/op grows against the
# recorded baseline (allocation regressions are how the zero-alloc data
# path decays). `bench-update` re-records the current section of the
# baseline file (history stays frozen). All outputs land under the
# ignored bench/ directory so a run can never dirty the tree.
BENCH_PATTERN ?= Fig7aShuffleBandwidth|Fig8aReplicateNaive|Fig8bReplicateMulticast|Fig11CollectiveShuffle|ChanloopShuffle
BENCH_FILE ?= BENCH_PR9.json
BENCH_DIR ?= bench

bench:
	@mkdir -p $(BENCH_DIR)
	$(GO) build -o bin/dfibench ./cmd/dfibench
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | tee $(BENCH_DIR)/bench.out
	./bin/dfibench benchjson -compare $(BENCH_FILE) < $(BENCH_DIR)/bench.out

bench-update:
	@mkdir -p $(BENCH_DIR)
	$(GO) build -o bin/dfibench ./cmd/dfibench
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=1 . | tee $(BENCH_DIR)/bench.out
	./bin/dfibench benchjson -update $(BENCH_FILE) < $(BENCH_DIR)/bench.out

# Documentation hygiene: every package has a godoc package comment,
# every relative Markdown link/anchor resolves (GitHub slug rules;
# external URLs are not fetched, so the check is offline-deterministic),
# the transport packages document every exported symbol, and
# docs/OPERATIONS.md covers every dfiflow/dfibench flag.
docs-lint:
	$(GO) run ./cmd/docslint

check: build vet race chaos-mc chaos-scale metrics-smoke transport-race docs-lint
