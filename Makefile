GO ?= go

.PHONY: all build vet test race check chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast feedback: skip the long experiment sweeps.
test:
	$(GO) test -short ./...

# Full suite under the race detector (CI entry point).
race:
	$(GO) test -race ./...

# Fault-injection matrix: the chaos, crash, lifecycle/lease/eviction and
# registry-failover suites under the race detector, swept over several
# deterministic seeds (DFI_CHAOS_SEED is read by the core test env;
# -count=1 defeats caching so every seed really runs).
CHAOS_SEEDS ?= 11 1 7 42
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		DFI_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
			-run 'Chaos|Crash|Lifecycle|Lease|Evict|Replicated|Remove|Promise|Accept|Ballot' \
			./internal/core/ ./internal/registry/ ./internal/consensus/... || exit 1; \
	done

check: build vet race
