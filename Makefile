GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast feedback: skip the long experiment sweeps.
test:
	$(GO) test -short ./...

# Full suite under the race detector (CI entry point).
race:
	$(GO) test -race ./...

check: build vet race
