// Package schema implements DFI's tuple type system (paper §4.1).
//
// A schema is a list of typed columns mirroring the LP64 data model. Tuple
// types are fixed at flow initialization, so flow execution never
// interprets types: attribute access is pure offset computation, which is
// what lets routing decisions and aggregations run at network speed.
package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type is a column data type. Sizes mirror C++ LP64 types, as the paper
// specifies; Char carries an application-chosen byte width.
type Type struct {
	Kind  Kind
	Width int // only for KindChar; other kinds have fixed widths
}

// Kind enumerates the built-in column kinds.
type Kind uint8

// Built-in column kinds.
const (
	KindInt32 Kind = iota
	KindInt64
	KindUint32
	KindUint64
	KindFloat64
	KindChar // fixed-width byte string
)

// Convenience constructors mirroring the paper's DFI_Schema literals.
var (
	Int32   = Type{Kind: KindInt32}
	Int64   = Type{Kind: KindInt64}
	Uint32  = Type{Kind: KindUint32}
	Uint64  = Type{Kind: KindUint64}
	Float64 = Type{Kind: KindFloat64}
)

// Char returns a fixed-width byte-string type of n bytes.
func Char(n int) Type { return Type{Kind: KindChar, Width: n} }

// Size returns the type's byte width.
func (t Type) Size() int {
	switch t.Kind {
	case KindInt32, KindUint32:
		return 4
	case KindInt64, KindUint64, KindFloat64:
		return 8
	case KindChar:
		return t.Width
	}
	panic(fmt.Sprintf("schema: unknown kind %d", t.Kind))
}

func (t Type) String() string {
	switch t.Kind {
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindUint32:
		return "uint32"
	case KindUint64:
		return "uint64"
	case KindFloat64:
		return "float64"
	case KindChar:
		return fmt.Sprintf("char(%d)", t.Width)
	}
	return "unknown"
}

// Column is one named, typed attribute.
type Column struct {
	Name string
	Type Type
}

// Schema describes the tuples flowing through a DFI flow. It is immutable
// after construction.
type Schema struct {
	cols    []Column
	offsets []int
	size    int
	index   map[string]int
}

// New builds a schema from columns. Column names must be unique and
// non-empty; Char columns must have positive width.
func New(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: at least one column required")
	}
	s := &Schema{index: make(map[string]int, len(cols))}
	off := 0
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		if c.Type.Kind == KindChar && c.Type.Width <= 0 {
			return nil, fmt.Errorf("schema: column %q: char width must be positive", c.Name)
		}
		s.index[c.Name] = i
		s.offsets = append(s.offsets, off)
		off += c.Type.Size()
	}
	s.cols = append(s.cols, cols...)
	s.size = off
	return s, nil
}

// MustNew is New for statically known schemas; it panics on error.
func MustNew(cols ...Column) *Schema {
	s, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// TupleSize returns the fixed byte width of one tuple.
func (s *Schema) TupleSize() int { return s.size }

// Columns returns the number of columns.
func (s *Schema) Columns() int { return len(s.cols) }

// Column returns column i.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Offset returns the byte offset of column i within a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte('}')
	return b.String()
}

// Tuple is one fixed-width record laid out per a Schema. It is a view into
// flow buffer memory — valid only until the segment it lives in is
// released back to the flow.
type Tuple []byte

// Int32 reads column i of the tuple as int32.
func (s *Schema) Int32(t Tuple, i int) int32 {
	return int32(binary.LittleEndian.Uint32(t[s.offsets[i]:]))
}

// PutInt32 writes column i of the tuple.
func (s *Schema) PutInt32(t Tuple, i int, v int32) {
	binary.LittleEndian.PutUint32(t[s.offsets[i]:], uint32(v))
}

// Int64 reads column i of the tuple as int64.
func (s *Schema) Int64(t Tuple, i int) int64 {
	return int64(binary.LittleEndian.Uint64(t[s.offsets[i]:]))
}

// PutInt64 writes column i of the tuple.
func (s *Schema) PutInt64(t Tuple, i int, v int64) {
	binary.LittleEndian.PutUint64(t[s.offsets[i]:], uint64(v))
}

// Uint32 reads column i of the tuple as uint32.
func (s *Schema) Uint32(t Tuple, i int) uint32 {
	return binary.LittleEndian.Uint32(t[s.offsets[i]:])
}

// PutUint32 writes column i of the tuple.
func (s *Schema) PutUint32(t Tuple, i int, v uint32) {
	binary.LittleEndian.PutUint32(t[s.offsets[i]:], v)
}

// Uint64 reads column i of the tuple as uint64.
func (s *Schema) Uint64(t Tuple, i int) uint64 {
	return binary.LittleEndian.Uint64(t[s.offsets[i]:])
}

// PutUint64 writes column i of the tuple.
func (s *Schema) PutUint64(t Tuple, i int, v uint64) {
	binary.LittleEndian.PutUint64(t[s.offsets[i]:], v)
}

// Float64 reads column i of the tuple as float64.
func (s *Schema) Float64(t Tuple, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(t[s.offsets[i]:]))
}

// PutFloat64 writes column i of the tuple.
func (s *Schema) PutFloat64(t Tuple, i int, v float64) {
	binary.LittleEndian.PutUint64(t[s.offsets[i]:], math.Float64bits(v))
}

// Bytes returns the raw bytes of column i (useful for Char columns).
func (s *Schema) Bytes(t Tuple, i int) []byte {
	off := s.offsets[i]
	return t[off : off+s.cols[i].Type.Size()]
}

// KeyUint64 extracts column i widened to uint64 for routing decisions; it
// is the default shuffle-key accessor. Char columns hash their bytes.
func (s *Schema) KeyUint64(t Tuple, i int) uint64 {
	switch s.cols[i].Type.Kind {
	case KindInt32, KindUint32:
		return uint64(binary.LittleEndian.Uint32(t[s.offsets[i]:]))
	case KindInt64, KindUint64, KindFloat64:
		return binary.LittleEndian.Uint64(t[s.offsets[i]:])
	case KindChar:
		return fnv1a(s.Bytes(t, i))
	}
	panic("schema: unknown kind")
}

// KeysUint64 extracts column i of every tuple widened to uint64, appending
// into dst (reused when its capacity suffices) and returning the filled
// slice. One pass over the whole batch hoists the per-tuple kind dispatch
// out of the loop; Source.PushBatch uses it as the vectorized routing pass.
func (s *Schema) KeysUint64(dst []uint64, tuples []Tuple, i int) []uint64 {
	if cap(dst) < len(tuples) {
		dst = make([]uint64, len(tuples))
	}
	dst = dst[:len(tuples)]
	off := s.offsets[i]
	switch s.cols[i].Type.Kind {
	case KindInt32, KindUint32:
		for j, t := range tuples {
			dst[j] = uint64(binary.LittleEndian.Uint32(t[off:]))
		}
	case KindInt64, KindUint64, KindFloat64:
		for j, t := range tuples {
			dst[j] = binary.LittleEndian.Uint64(t[off:])
		}
	case KindChar:
		w := s.cols[i].Type.Size()
		for j, t := range tuples {
			dst[j] = fnv1a(t[off : off+w])
		}
	default:
		panic("schema: unknown kind")
	}
	return dst
}

// NewTuple allocates a zeroed tuple for the schema.
func (s *Schema) NewTuple() Tuple { return make(Tuple, s.size) }

// Hash is DFI's default key-based partition function: a 64-bit
// finalizer-style hash of the key, suitable for modulo distribution over
// targets.
func Hash(key uint64) uint64 {
	// splitmix64 finalizer.
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key
}

func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
