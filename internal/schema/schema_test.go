package schema

import (
	"math"
	"testing"
	"testing/quick"
)

func kvSchema(t *testing.T) *Schema {
	t.Helper()
	return MustNew(Column{"key", Int64}, Column{"value", Int64})
}

func TestOffsetsAndSize(t *testing.T) {
	s := MustNew(
		Column{"a", Int32},
		Column{"b", Int64},
		Column{"c", Char(10)},
		Column{"d", Float64},
	)
	wantOff := []int{0, 4, 12, 22}
	for i, w := range wantOff {
		if s.Offset(i) != w {
			t.Errorf("offset[%d] = %d, want %d", i, s.Offset(i), w)
		}
	}
	if s.TupleSize() != 30 {
		t.Errorf("size = %d, want 30", s.TupleSize())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := New(Column{"", Int32}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Column{"a", Int32}, Column{"a", Int64}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := New(Column{"c", Char(0)}); err == nil {
		t.Error("zero-width char accepted")
	}
}

func TestColumnIndex(t *testing.T) {
	s := kvSchema(t)
	if s.ColumnIndex("value") != 1 {
		t.Errorf("index(value) = %d", s.ColumnIndex("value"))
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestRoundTripAccessors(t *testing.T) {
	s := MustNew(
		Column{"i32", Int32},
		Column{"i64", Int64},
		Column{"u32", Uint32},
		Column{"u64", Uint64},
		Column{"f", Float64},
		Column{"c", Char(4)},
	)
	tp := s.NewTuple()
	s.PutInt32(tp, 0, -7)
	s.PutInt64(tp, 1, -1<<40)
	s.PutUint32(tp, 2, 0xDEADBEEF)
	s.PutUint64(tp, 3, 1<<63)
	s.PutFloat64(tp, 4, math.Pi)
	copy(s.Bytes(tp, 5), "abcd")

	if s.Int32(tp, 0) != -7 || s.Int64(tp, 1) != -1<<40 ||
		s.Uint32(tp, 2) != 0xDEADBEEF || s.Uint64(tp, 3) != 1<<63 ||
		s.Float64(tp, 4) != math.Pi || string(s.Bytes(tp, 5)) != "abcd" {
		t.Fatalf("round trip failed: %v", tp)
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := kvSchema(t)
	f := func(k, v int64) bool {
		tp := s.NewTuple()
		s.PutInt64(tp, 0, k)
		s.PutInt64(tp, 1, v)
		return s.Int64(tp, 0) == k && s.Int64(tp, 1) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUint64Widening(t *testing.T) {
	s := MustNew(Column{"k32", Int32}, Column{"k64", Uint64}, Column{"name", Char(8)})
	tp := s.NewTuple()
	s.PutInt32(tp, 0, 1234)
	s.PutUint64(tp, 1, 987654321)
	copy(s.Bytes(tp, 2), "shuffled")
	if s.KeyUint64(tp, 0) != 1234 {
		t.Errorf("k32 key = %d", s.KeyUint64(tp, 0))
	}
	if s.KeyUint64(tp, 1) != 987654321 {
		t.Errorf("k64 key = %d", s.KeyUint64(tp, 1))
	}
	if s.KeyUint64(tp, 2) == 0 {
		t.Error("char key hashed to zero (suspicious)")
	}
}

func TestHashDistributesUniformly(t *testing.T) {
	const targets = 8
	const n = 100000
	var counts [targets]int
	for i := 0; i < n; i++ {
		counts[Hash(uint64(i))%targets]++
	}
	for i, c := range counts {
		ratio := float64(c) / (n / targets)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("bucket %d has %d (ratio %.3f)", i, c, ratio)
		}
	}
}

func TestHashIsDeterministicAndSpreading(t *testing.T) {
	f := func(k uint64) bool {
		return Hash(k) == Hash(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Sequential keys should not map to sequential buckets.
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if Hash(i)%8 == Hash(i+1)%8 {
			same++
		}
	}
	if same > 400 {
		t.Errorf("sequential keys too correlated: %d/1000", same)
	}
}

func TestTypeStringAndSize(t *testing.T) {
	cases := []struct {
		ty   Type
		str  string
		size int
	}{
		{Int32, "int32", 4},
		{Int64, "int64", 8},
		{Uint32, "uint32", 4},
		{Uint64, "uint64", 8},
		{Float64, "float64", 8},
		{Char(16), "char(16)", 16},
	}
	for _, c := range cases {
		if c.ty.String() != c.str || c.ty.Size() != c.size {
			t.Errorf("%v: String=%q Size=%d", c.ty, c.ty.String(), c.ty.Size())
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := kvSchema(t)
	if got := s.String(); got != "{key int64, value int64}" {
		t.Errorf("String() = %q", got)
	}
}

func TestAllKindsRoundTripProperty(t *testing.T) {
	s := MustNew(
		Column{"a", Int32}, Column{"b", Int64}, Column{"c", Uint32},
		Column{"d", Uint64}, Column{"e", Float64}, Column{"f", Char(12)},
	)
	f := func(a int32, b int64, c uint32, d uint64, e float64, raw [12]byte) bool {
		tp := s.NewTuple()
		s.PutInt32(tp, 0, a)
		s.PutInt64(tp, 1, b)
		s.PutUint32(tp, 2, c)
		s.PutUint64(tp, 3, d)
		s.PutFloat64(tp, 4, e)
		copy(s.Bytes(tp, 5), raw[:])
		if s.Int32(tp, 0) != a || s.Int64(tp, 1) != b || s.Uint32(tp, 2) != c ||
			s.Uint64(tp, 3) != d {
			return false
		}
		// NaN != NaN; compare bit patterns.
		if math.Float64bits(s.Float64(tp, 4)) != math.Float64bits(e) {
			return false
		}
		got := s.Bytes(tp, 5)
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUint64MatchesAccessors(t *testing.T) {
	s := MustNew(Column{"u64", Uint64}, Column{"f", Float64})
	f := func(u uint64, fl float64) bool {
		tp := s.NewTuple()
		s.PutUint64(tp, 0, u)
		s.PutFloat64(tp, 1, fl)
		return s.KeyUint64(tp, 0) == u && s.KeyUint64(tp, 1) == math.Float64bits(fl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
