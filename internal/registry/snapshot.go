package registry

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
)

// Registry state-machine snapshots.
//
// The replicated registry (replicated.go) periodically serializes the
// whole state machine — flows, per-target connection info, membership
// epochs, leases, incarnations and watermarks — and installs the result
// on its acceptors so the Multi-Paxos log and the applied-table can be
// truncated below the snapshot index (log compaction; see
// docs/PROTOCOL.md, "Replicated registry"). A lagging or recovering
// replica catches up from the snapshot plus the retained log suffix
// instead of a full replay.
//
// Flow metadata and target info are opaque `any` references the control
// plane never interprets (they are published and handed back verbatim).
// A snapshot therefore pins those references rather than their
// contents: captureState carries them by reference, and encode writes a
// deterministic reference index plus the dynamic type name. Everything
// the registry itself owns — names, epochs, lease states, TTLs,
// incarnations, watermarks — is encoded by value, which is what the
// byte-for-byte round-trip property in snapshot_test.go pins down.

// stateSnapshot is a deep copy of the registry state machine at one
// applied index. Lease timer bookkeeping (the generation counter) is
// deliberately not state: timers restart on restore.
type stateSnapshot struct {
	flows map[string]*flowSnap
}

// flowSnap is one flow's slice of the snapshot.
type flowSnap struct {
	meta    any
	targets map[int]any
	epoch   uint64
	leases  map[epKey]lease // value copies, gen zeroed
	seq     *seqState       // sequencer recovery state, nil when absent
}

// captureState deep-copies the registry state machine. Meta and target
// info are carried by reference (opaque application payloads); all
// registry-owned state is copied by value.
func (r *Registry) captureState() *stateSnapshot {
	s := &stateSnapshot{flows: make(map[string]*flowSnap, len(r.flows))}
	for name, e := range r.flows {
		fs := &flowSnap{
			meta:    e.meta,
			targets: make(map[int]any, len(e.targets)),
			leases:  make(map[epKey]lease),
		}
		for idx, info := range e.targets {
			fs.targets[idx] = info
		}
		if e.mem != nil {
			fs.epoch = e.mem.epoch
			for k, l := range e.mem.eps {
				cp := *l
				cp.gen = 0 // timer bookkeeping, not state
				fs.leases[k] = cp
			}
		}
		if e.seq != nil {
			cp := &seqState{
				highWater: e.seq.highWater,
				perSource: append([]uint64(nil), e.seq.perSource...),
				skips:     make(map[uint64]bool, len(e.seq.skips)),
			}
			for seq := range e.seq.skips {
				cp.skips[seq] = true
			}
			fs.seq = cp
		}
		s.flows[name] = fs
	}
	return s
}

// restoreState replaces the registry state machine with the snapshot's.
// Active leases are re-armed from a full TTL and Suspect leases from a
// full grace period (the restored master cannot know how much of either
// had elapsed — restarting the clocks only delays eviction, never
// un-evicts). Waiters are broadcast so rendezvous blocked across the
// restore re-check their conditions.
func (r *Registry) restoreState(s *stateSnapshot) {
	r.flows = make(map[string]*entry, len(s.flows))
	for name, fs := range s.flows {
		e := &entry{meta: fs.meta, targets: make(map[int]any, len(fs.targets))}
		for idx, info := range fs.targets {
			e.targets[idx] = info
		}
		m := newMembership(r, name)
		m.epoch = fs.epoch
		for k, cp := range fs.leases {
			l := cp // fresh copy per slot
			m.eps[k] = &l
			switch l.state {
			case StateActive:
				if l.ttl > 0 {
					m.arm(k, &l)
				}
			case StateSuspect:
				if l.grace > 0 {
					l.gen++
					gen := l.gen
					r.k.After(l.grace, func() { m.evictExpired(k, gen) })
				}
			}
		}
		e.mem = m
		if fs.seq != nil {
			e.seq = &seqState{
				highWater: fs.seq.highWater,
				perSource: append([]uint64(nil), fs.seq.perSource...),
				skips:     make(map[uint64]bool, len(fs.seq.skips)),
			}
			for seq := range fs.seq.skips {
				e.seq.skips[seq] = true
			}
		}
		r.flows[name] = e
	}
	r.cond.Broadcast()
}

// flowNames returns the snapshot's flow names in sorted order.
func (s *stateSnapshot) flowNames() []string {
	names := make([]string, 0, len(s.flows))
	for name := range s.flows {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sortedKeys returns a map's int keys in ascending order.
func sortedKeys(m map[int]any) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// snapMagic versions the snapshot encoding; bump on layout changes.
// 2 added the per-flow sequencer record (ordered-multicast recovery).
const snapMagic = "DFISNAP2"

// encode serializes the snapshot deterministically: sorted flows, each
// with epoch, meta reference, sorted targets and sorted leases. The
// bytes are what the acceptors store, what the install-snapshot
// transfer is charged by, and what the round-trip property compares.
//
// Opaque payloads (meta, target info) are encoded as a reference index
// plus the dynamic type name, assigned in the sorted traversal order so
// the bytes are deterministic; two occurrences of the same comparable
// reference share an index, so the encoding pins aliasing too.
func (s *stateSnapshot) encode() []byte {
	refs := make(map[any]uint64)
	nextRef := uint64(0)
	var b []byte
	u64 := func(v uint64) { b = binary.BigEndian.AppendUint64(b, v) }
	str := func(v string) { u64(uint64(len(v))); b = append(b, v...) }
	ref := func(v any) {
		if v == nil {
			u64(^uint64(0))
			str("")
			return
		}
		if t := reflect.TypeOf(v); t.Comparable() {
			if _, ok := refs[v]; !ok {
				refs[v] = nextRef
				nextRef++
			}
			u64(refs[v])
		} else {
			// A non-comparable payload cannot be interned; its identity is
			// its position, which the sorted traversal keeps deterministic.
			u64(nextRef)
			nextRef++
		}
		str(typeName(v))
	}
	b = append(b, snapMagic...)
	u64(uint64(len(s.flows)))
	for _, name := range s.flowNames() {
		fs := s.flows[name]
		str(name)
		u64(fs.epoch)
		ref(fs.meta)
		u64(uint64(len(fs.targets)))
		for _, idx := range sortedKeys(fs.targets) {
			u64(uint64(idx))
			ref(fs.targets[idx])
		}
		keys := make([]epKey, 0, len(fs.leases))
		for k := range fs.leases {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].role != keys[j].role {
				return keys[i].role < keys[j].role
			}
			return keys[i].idx < keys[j].idx
		})
		u64(uint64(len(keys)))
		for _, k := range keys {
			l := fs.leases[k]
			u64(uint64(k.role))
			u64(uint64(k.idx))
			u64(uint64(l.state))
			u64(uint64(l.ttl))
			u64(uint64(l.grace))
			u64(l.inc)
			u64(l.watermark)
		}
		if fs.seq == nil {
			u64(0)
		} else {
			u64(1)
			u64(fs.seq.highWater)
			u64(uint64(len(fs.seq.perSource)))
			for _, v := range fs.seq.perSource {
				u64(v)
			}
			skips := make([]uint64, 0, len(fs.seq.skips))
			for seq := range fs.seq.skips {
				skips = append(skips, seq)
			}
			sort.Slice(skips, func(i, j int) bool { return skips[i] < skips[j] })
			u64(uint64(len(skips)))
			for _, seq := range skips {
				u64(seq)
			}
		}
	}
	return b
}

// typeName names an opaque payload's dynamic type for the encoding.
// %T is deterministic for a fixed build, unlike the pointer value.
func typeName(v any) string { return fmt.Sprintf("%T", v) }
