package registry

import (
	"sort"
	"time"

	"dfi/internal/metrics"
)

// Live introspection: the registry is the control-plane hub, so it is
// where a scraper can see the whole cluster — flows, leases, epochs,
// watermarks, and the replication group. Because every mutation funnels
// through invoke()/invokeRenew() or a lease timer callback (all on the
// simulation's single logical thread), the registry republishes an
// immutable ClusterStatus snapshot after each mutation; a concurrent
// HTTP scraper only ever loads the latest pointer. A missed publish
// would mean staleness, never a torn read.

// EndpointStatus is one endpoint slot's lease view.
type EndpointStatus struct {
	Role        string `json:"role"`
	Slot        int    `json:"slot"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation,omitempty"`
	Watermark   uint64 `json:"watermark,omitempty"`
}

// FlowStatus is one flow's control-plane view.
type FlowStatus struct {
	Name             string           `json:"name"`
	Epoch            uint64           `json:"epoch"`
	TargetsPublished int              `json:"targets_published"`
	Endpoints        []EndpointStatus `json:"endpoints,omitempty"`
}

// ReplStatus describes the replication group (absent standalone).
type ReplStatus struct {
	Replicas      int    `json:"replicas"`
	Master        int    `json:"master"`
	Ballot        uint64 `json:"ballot"`
	Elections     int    `json:"elections"`
	Snapshots     int    `json:"snapshots"`
	SnapshotIndex int    `json:"snapshot_index"`
	LogLen        int    `json:"log_len"`
	AppliedSize   int    `json:"applied_entries"`
}

// ClusterStatus is one immutable point-in-time view of the registry:
// every flow with its membership, plus the replication group. T is
// virtual time at capture.
type ClusterStatus struct {
	T           time.Duration `json:"t"`
	Flows       []FlowStatus  `json:"flows"`
	Replication *ReplStatus   `json:"replication,omitempty"`
}

// SetEventSink installs the structured-event sink that the registry —
// and, through it, the flow endpoints that connect via this registry —
// emit protocol events into. Install before opening flows; nil disables
// tracing.
func (r *Registry) SetEventSink(s metrics.EventSink) { r.events = s }

// EventSink returns the installed sink (nil when tracing is off).
func (r *Registry) EventSink() metrics.EventSink { return r.events }

// emit sends one event to the installed sink, stamping registry events
// with the virtual clock (usable from scheduler context, where no Proc
// is available).
func (r *Registry) emit(e metrics.Event) {
	if r.events == nil {
		return
	}
	e.T = r.k.Now()
	if e.Node == "" {
		e.Node = "registry"
	}
	r.events.Emit(e)
}

// Status returns the latest published cluster snapshot (empty before
// the first mutation). Safe to call from any goroutine.
func (r *Registry) Status() *ClusterStatus {
	if s := r.status.Load(); s != nil {
		return s
	}
	return &ClusterStatus{}
}

// statusChanged rebuilds and republishes the snapshot; called on the
// simulation's logical thread after every mutation.
func (r *Registry) statusChanged() {
	st := &ClusterStatus{T: r.k.Now()}
	names := make([]string, 0, len(r.flows))
	for n := range r.flows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := r.flows[n]
		fs := FlowStatus{Name: n, TargetsPublished: len(e.targets)}
		if m := e.mem; m != nil {
			fs.Epoch = m.epoch
			for k, l := range m.eps {
				fs.Endpoints = append(fs.Endpoints, EndpointStatus{
					Role:        k.role.String(),
					Slot:        k.idx,
					State:       l.state.String(),
					Incarnation: l.inc,
					Watermark:   l.watermark,
				})
			}
			sort.Slice(fs.Endpoints, func(i, j int) bool {
				a, b := fs.Endpoints[i], fs.Endpoints[j]
				if a.Role != b.Role {
					return a.Role < b.Role
				}
				return a.Slot < b.Slot
			})
		}
		st.Flows = append(st.Flows, fs)
	}
	if g := r.repl; g != nil {
		st.Replication = &ReplStatus{
			Replicas:      len(g.acceptors),
			Master:        g.master,
			Ballot:        g.ballot,
			Elections:     g.elections,
			Snapshots:     g.snapCount,
			SnapshotIndex: g.snap.Index,
			LogLen:        r.LogLen(),
			AppliedSize:   len(g.applied),
		}
	}
	r.status.Store(st)
}

// leaseCount sums endpoints in the given state across the snapshot.
func leaseCount(st *ClusterStatus, state string) (n int) {
	for _, f := range st.Flows {
		for _, ep := range f.Endpoints {
			if ep.State == state {
				n++
			}
		}
	}
	return n
}

// PublishMetrics registers the registry's control-plane gauges on m
// under the dfi_registry_* namespace. All values come from the
// published snapshot, so scraping is race-free by construction. Fixed
// cardinality: lease counts are aggregated per state, not per flow.
func (r *Registry) PublishMetrics(m *metrics.Registry) {
	r.PublishMetricsLabeled(m, nil)
}

// PublishMetricsLabeled is PublishMetrics with base labels attached to
// every series — how a sharded registry distinguishes its shards
// (label "shard") without colliding series names.
func (r *Registry) PublishMetricsLabeled(m *metrics.Registry, base metrics.Labels) {
	with := func(extra metrics.Labels) metrics.Labels {
		if len(base) == 0 {
			return extra
		}
		out := metrics.Labels{}
		for k, v := range base {
			out[k] = v
		}
		for k, v := range extra {
			out[k] = v
		}
		return out
	}
	m.RegisterGaugeFunc("dfi_registry_flows", "Published flows.", with(nil),
		func() float64 { return float64(len(r.Status().Flows)) })
	m.RegisterGaugeFunc("dfi_registry_epoch_max", "Highest membership epoch across flows.", with(nil),
		func() float64 {
			var max uint64
			for _, f := range r.Status().Flows {
				if f.Epoch > max {
					max = f.Epoch
				}
			}
			return float64(max)
		})
	for _, state := range []string{"active", "suspect", "evicted", "left"} {
		state := state
		m.RegisterGaugeFunc("dfi_registry_leases", "Endpoint slots by lease state.",
			with(metrics.Labels{"state": state}),
			func() float64 { return float64(leaseCount(r.Status(), state)) })
	}
	repl := func(f func(*ReplStatus) float64) func() float64 {
		return func() float64 {
			if g := r.Status().Replication; g != nil {
				return f(g)
			}
			return 0
		}
	}
	m.RegisterGaugeFunc("dfi_registry_replicas", "Replication group size (0 standalone).", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.Replicas) }))
	m.RegisterGaugeFunc("dfi_registry_master", "Current master replica index.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.Master) }))
	m.RegisterGaugeFunc("dfi_registry_ballot", "Current master ballot.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.Ballot) }))
	m.RegisterCounterFunc("dfi_registry_elections_total", "Completed failover elections.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.Elections) }))
	m.RegisterCounterFunc("dfi_registry_snapshots_total", "State-machine snapshots taken.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.Snapshots) }))
	m.RegisterGaugeFunc("dfi_registry_snapshot_index", "Applied index covered by the latest snapshot.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.SnapshotIndex) }))
	m.RegisterGaugeFunc("dfi_registry_log_len", "Largest retained acceptor log among live replicas.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.LogLen) }))
	m.RegisterGaugeFunc("dfi_registry_applied_entries", "Retained applied-table entries.", with(nil),
		repl(func(g *ReplStatus) float64 { return float64(g.AppliedSize) }))
	m.RegisterCounterFunc("dfi_registry_lease_renew_rpcs_total",
		"Lease-renewal round trips served (a batched renewal counts one).", with(nil),
		func() float64 { return float64(r.LeaseRenewRPCs()) })
}
