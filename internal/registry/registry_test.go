package registry

import (
	"testing"
	"time"

	"dfi/internal/sim"
)

func TestPublishLookup(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "f1", "meta"); err != nil {
			t.Fatal(err)
		}
		if err := r.Publish(p, "f1", "again"); err == nil {
			t.Error("duplicate publish accepted")
		}
		m, ok := r.Lookup(p, "f1")
		if !ok || m.(string) != "meta" {
			t.Errorf("Lookup = %v, %v", m, ok)
		}
		if _, ok := r.Lookup(p, "absent"); ok {
			t.Error("lookup of absent flow succeeded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitFlowBlocksUntilPublished(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	var gotAt sim.Time
	k.Spawn("waiter", func(p *sim.Proc) {
		m := r.WaitFlow(p, "late")
		if m.(int) != 42 {
			t.Errorf("meta = %v", m)
		}
		gotAt = p.Now()
	})
	k.Spawn("publisher", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		if err := r.Publish(p, "late", 42); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != 3*time.Millisecond {
		t.Errorf("WaitFlow returned at %v", gotAt)
	}
}

func TestTargetRendezvous(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	k.Spawn("target", func(p *sim.Proc) {
		if err := r.Publish(p, "flow", "spec"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
		if err := r.PublishTarget(p, "flow", 0, "ring-addr"); err != nil {
			t.Fatal(err)
		}
		if err := r.PublishTarget(p, "flow", 0, "dup"); err == nil {
			t.Error("duplicate target publish accepted")
		}
	})
	k.Spawn("source", func(p *sim.Proc) {
		info := r.WaitTarget(p, "flow", 0)
		if info.(string) != "ring-addr" {
			t.Errorf("info = %v", info)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishTargetRequiresFlow(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.PublishTarget(p, "nope", 0, nil); err == nil {
			t.Error("PublishTarget without flow accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRPCDelayCharged(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	r.RPCDelay = 2 * time.Microsecond
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "f", nil); err != nil {
			t.Fatal(err)
		}
		r.Lookup(p, "f")
		if p.Now() != 4*time.Microsecond {
			t.Errorf("elapsed = %v, want 4µs", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	r.RPCDelay = 2 * time.Microsecond
	k.Spawn("p", func(p *sim.Proc) {
		_ = r.Publish(p, "f", nil)
		before := p.Now()
		r.Remove(p, "f")
		if got := p.Now() - before; got != sim.Time(r.RPCDelay) {
			t.Errorf("Remove charged %v, want %v", got, r.RPCDelay)
		}
		if r.Flows() != 0 {
			t.Errorf("flows = %d", r.Flows())
		}
		if err := r.Publish(p, "f", nil); err != nil {
			t.Error("republish after remove failed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveRepublishWakesWaiters: a name freed by Remove can be reused,
// and the republish must wake endpoints blocked in WaitFlow on the new
// incarnation (Remove broadcasts the registry condition).
func TestRemoveRepublishWakesWaiters(t *testing.T) {
	k := sim.New(1)
	r := New(k)
	var got any
	k.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // after remove, before republish
		got = r.WaitFlow(p, "reuse")
	})
	k.Spawn("owner", func(p *sim.Proc) {
		if err := r.Publish(p, "reuse", "v1"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
		r.Remove(p, "reuse")
		p.Sleep(2 * time.Millisecond)
		if err := r.Publish(p, "reuse", "v2"); err != nil {
			t.Errorf("republish after remove failed: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "v2" {
		t.Errorf("waiter got %v, want v2", got)
	}
}
