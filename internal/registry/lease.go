package registry

import (
	"fmt"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/transport"
)

// Lease-based flow membership (control-plane failure model).
//
// Every published flow carries an epoch-versioned Membership record. An
// endpoint that opts into leases (core.Options.LeaseTTL) acquires one at
// open and renews it on a background tick; an endpoint whose lease
// expires — crash, partition, wedged process — moves to Suspect when the
// TTL runs out and to Evicted after a further grace period. Eviction
// bumps the flow epoch; data-plane endpoints compare their cached epoch
// against the record on their normal wait paths and fold the new
// membership in (re-routing around evicted targets, closing rings of
// evicted sources). Endpoints may also be evicted administratively with
// Evict, which takes effect at the next epoch immediately.
//
// Timers are kernel callbacks, not processes: each (re)arm bumps a
// generation counter and schedules one expiry check that no-ops when the
// generation moved on. A quiescent flow therefore leaves no pending
// events behind once its endpoints release their leases, which is what
// keeps the discrete-event kernel's run loop terminating.

// Role distinguishes the two endpoint kinds in a membership record.
type Role uint8

// Endpoint roles.
const (
	RoleSource Role = iota
	RoleTarget
)

// String returns the role's protocol name ("source" or "target").
func (r Role) String() string {
	if r == RoleTarget {
		return "target"
	}
	return "source"
}

// EndpointState is the lease state of one endpoint slot.
type EndpointState uint8

// Lease states. Slots that never acquired a lease are Active (membership
// is advisory until an endpoint opts in).
const (
	StateActive EndpointState = iota
	StateSuspect
	StateEvicted
	StateLeft // released voluntarily (graceful close)
)

// String returns the lease state's protocol name.
func (s EndpointState) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateEvicted:
		return "evicted"
	case StateLeft:
		return "left"
	}
	return "active"
}

// epKey identifies one endpoint slot within a flow.
type epKey struct {
	role Role
	idx  int
}

// lease is the registry-side state of one endpoint slot.
type lease struct {
	state EndpointState
	ttl   time.Duration
	grace time.Duration
	gen   uint64 // bumped on every (re)arm/cancel; pending timers check it

	// inc is the slot's incarnation, bumped by every Rejoin: peers use it
	// to tell a rejoined endpoint from the evicted one it replaces (stale
	// heartbeats and writers fence themselves on a mismatch). watermark
	// is the endpoint's last confirmed progress (SetWatermark), handed
	// back by Rejoin so a re-attached endpoint knows where to resume.
	inc       uint64
	watermark uint64
}

// Membership is the epoch-versioned membership record of one flow. The
// pointer handed out by MembershipOf stays valid for the flow's lifetime
// (client-side cache semantics); reading it is free, like reading any
// local cache — endpoints learn of changes by comparing Epoch against
// the value they acted on last.
type Membership struct {
	r    *Registry
	flow string

	epoch uint64
	eps   map[epKey]*lease
}

func newMembership(r *Registry, flow string) *Membership {
	return &Membership{r: r, flow: flow, eps: make(map[epKey]*lease)}
}

// Epoch returns the record's current epoch. It starts at 0 and is bumped
// by every eviction.
func (m *Membership) Epoch() uint64 { return m.epoch }

// State returns the lease state of an endpoint slot (Active when the
// slot never acquired a lease).
func (m *Membership) State(role Role, idx int) EndpointState {
	if l, ok := m.eps[epKey{role, idx}]; ok {
		return l.state
	}
	return StateActive
}

// Evicted reports whether the endpoint slot has been evicted.
func (m *Membership) Evicted(role Role, idx int) bool {
	return m.State(role, idx) == StateEvicted
}

// TargetEvicted reports whether target slot idx has been evicted.
func (m *Membership) TargetEvicted(idx int) bool { return m.Evicted(RoleTarget, idx) }

// SourceEvicted reports whether source slot idx has been evicted.
func (m *Membership) SourceEvicted(idx int) bool { return m.Evicted(RoleSource, idx) }

// Incarnation returns the endpoint slot's incarnation: 0 until the slot
// first rejoins after an eviction, bumped by every Rejoin. Like Epoch it
// is a local cache read.
func (m *Membership) Incarnation(role Role, idx int) uint64 {
	if l, ok := m.eps[epKey{role, idx}]; ok {
		return l.inc
	}
	return 0
}

// Watermark returns the endpoint slot's last recorded confirmed
// watermark (see Registry.SetWatermark).
func (m *Membership) Watermark(role Role, idx int) uint64 {
	if l, ok := m.eps[epKey{role, idx}]; ok {
		return l.watermark
	}
	return 0
}

// EvictedTargets returns the evicted target slots in ascending order.
func (m *Membership) EvictedTargets() []int {
	var out []int
	for k, l := range m.eps {
		if k.role == RoleTarget && l.state == StateEvicted {
			out = append(out, k.idx)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort; the set is tiny
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// arm schedules the lease's expiry check. Renewals re-arm by bumping the
// generation, which orphans the previously scheduled check.
func (m *Membership) arm(k epKey, l *lease) {
	l.gen++
	gen := l.gen
	m.r.k.After(l.ttl, func() { m.expire(k, gen) })
}

// expire moves an unrenewed Active lease to Suspect and starts the grace
// timer toward eviction.
func (m *Membership) expire(k epKey, gen uint64) {
	l := m.eps[k]
	if l == nil || l.gen != gen || l.state != StateActive {
		return
	}
	l.state = StateSuspect
	m.r.cond.Broadcast()
	m.r.emit(metrics.Event{Type: metrics.EvLease, Flow: m.flow, Epoch: m.epoch,
		Role: k.role.String(), Slot: k.idx, Detail: "lease expired: active -> suspect"})
	m.r.statusChanged()
	m.r.k.After(l.grace, func() { m.evictExpired(k, gen) })
}

// evictExpired evicts a lease still Suspect when its grace period ends.
func (m *Membership) evictExpired(k epKey, gen uint64) {
	l := m.eps[k]
	if l == nil || l.gen != gen || l.state != StateSuspect {
		return
	}
	m.evict(k, l)
}

// evict moves a slot to Evicted and bumps the flow epoch. Waiters on the
// registry condition (WaitTargetLive, data-plane epoch checks via
// broadcast-coupled conds) observe the new epoch.
func (m *Membership) evict(k epKey, l *lease) {
	l.state = StateEvicted
	m.epoch++
	m.r.cond.Broadcast()
	m.r.emit(metrics.Event{Type: metrics.EvEviction, Flow: m.flow, Epoch: m.epoch,
		Role: k.role.String(), Slot: k.idx, Detail: "evicted from membership"})
	m.r.emit(metrics.Event{Type: metrics.EvEpoch, Flow: m.flow, Epoch: m.epoch,
		Detail: "epoch bumped by eviction"})
	m.r.statusChanged()
}

// membership returns the record for a published flow.
func (r *Registry) membership(flow string) (*Membership, bool) {
	e, ok := r.flows[flow]
	if !ok {
		return nil, false
	}
	return e.mem, true
}

// MembershipOf returns the flow's membership record, or nil if the flow
// is not published. The record is the client-side cached view: reading
// it costs nothing (endpoints poll Epoch on their normal wait paths),
// while the mutating lease calls below are real RPCs.
func (r *Registry) MembershipOf(name string) *Membership {
	m, _ := r.membership(name)
	return m
}

// AcquireLease grants the endpoint slot a lease with the given TTL and
// Suspect grace period (grace defaults to ttl when zero). Acquiring is
// fenced: a slot that was already evicted cannot re-acquire — the epoch
// that evicted it has been observed by its peers. Re-admission goes
// through Rejoin, which bumps the slot's incarnation (and the flow
// epoch) so peers can tell the new endpoint from the corpse.
//
// On a replicated registry the acquisition is a logged command: it
// commits through the consensus log before applying, so the lease
// survives a master failover.
func (r *Registry) AcquireLease(p transport.Ctx, flow string, role Role, idx int, ttl, grace time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("registry: lease TTL must be positive")
	}
	if grace <= 0 {
		grace = ttl
	}
	return r.invoke(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		k := epKey{role, idx}
		l := m.eps[k]
		if l == nil {
			l = &lease{}
			m.eps[k] = l
		}
		if l.state == StateEvicted {
			return fmt.Errorf("registry: %s %d of flow %q was evicted (epoch %d)", role, idx, flow, m.epoch)
		}
		l.state = StateActive
		l.ttl, l.grace = ttl, grace
		m.arm(k, l)
		r.emit(metrics.Event{Type: metrics.EvLease, Flow: flow, Epoch: m.epoch,
			Role: role.String(), Slot: idx, Detail: "lease acquired"})
		return nil
	})
}

// RenewLease refreshes the endpoint's lease, rescuing a Suspect slot
// back to Active. Renewing an evicted lease fails (epoch fencing): the
// eviction is already visible to peers and cannot be taken back.
//
// Renewals are logged commands like every other mutation unless the
// replicated registry was built with ReplicaConfig.UnloggedRenew, which
// serves them as plain master RPCs — the explicit relaxation for
// high-rate heartbeats (a renewal lost to a failover costs TTL budget,
// never correctness: the slot still expires toward eviction, later).
func (r *Registry) RenewLease(p transport.Ctx, flow string, role Role, idx int) error {
	return r.invokeRenew(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		k := epKey{role, idx}
		l := m.eps[k]
		if l == nil || l.state == StateLeft {
			return fmt.Errorf("registry: %s %d of flow %q holds no lease", role, idx, flow)
		}
		if l.state == StateEvicted {
			return fmt.Errorf("registry: %s %d of flow %q was evicted (epoch %d)", role, idx, flow, m.epoch)
		}
		l.state = StateActive
		m.arm(k, l)
		return nil
	})
}

// invokeRenew routes a renewal through the log, or — under the
// UnloggedRenew relaxation — as a plain RPC against the master. Every
// call is one renewal round trip whatever it carries, which is what the
// dfi_registry_lease_renew_rpcs_total counter measures: a batch of N
// slots renewed through RenewLeaseBatch costs one, the per-endpoint
// heartbeat path costs one per slot per tick.
func (r *Registry) invokeRenew(p transport.Ctx, op func() error) error {
	r.renewRPCs.Add(1)
	if r.repl != nil && r.repl.cfg.UnloggedRenew {
		r.rpc(p)
		err := op()
		r.statusChanged()
		return err
	}
	return r.invoke(p, op)
}

// LeaseRef names one leased endpoint slot for batched renewal.
type LeaseRef struct {
	Flow string
	Role Role
	Idx  int
}

// RenewLeaseBatch refreshes many leases in one renewal RPC (one logged
// command, or one master round trip under UnloggedRenew) — the
// control-plane half of connection scaling: a node heartbeating on
// behalf of all its flow endpoints sends O(ticks) renewals instead of
// O(flows·ticks). Slots that cannot be renewed — unpublished flow, no
// lease, or fenced by eviction — are returned so the caller can drop
// them from future batches; the rest renew normally.
func (r *Registry) RenewLeaseBatch(p transport.Ctx, refs []LeaseRef) []LeaseRef {
	var failed []LeaseRef
	_ = r.invokeRenew(p, func() error {
		for _, ref := range refs {
			m, ok := r.membership(ref.Flow)
			if !ok {
				failed = append(failed, ref)
				continue
			}
			k := epKey{ref.Role, ref.Idx}
			l := m.eps[k]
			if l == nil || l.state == StateLeft || l.state == StateEvicted {
				failed = append(failed, ref)
				continue
			}
			l.state = StateActive
			m.arm(k, l)
		}
		return nil
	})
	return failed
}

// ReleaseLease gives the lease up voluntarily (graceful close). The slot
// moves to Left without an epoch bump: peers need no rerouting for an
// endpoint that finished its part of the flow protocol. Logged on a
// replicated registry (a Left slot that flipped back to Active on
// failover would stall target re-attach, which closes Left readers).
func (r *Registry) ReleaseLease(p transport.Ctx, flow string, role Role, idx int) {
	_ = r.invoke(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return nil
		}
		l := m.eps[epKey{role, idx}]
		if l == nil || l.state == StateEvicted {
			return nil
		}
		l.gen++ // orphan any pending expiry check
		l.state = StateLeft
		r.emit(metrics.Event{Type: metrics.EvLease, Flow: flow, Epoch: m.epoch,
			Role: role.String(), Slot: idx, Detail: "lease released: -> left"})
		return nil
	})
}

// Evict administratively removes an endpoint from the flow at the next
// epoch, without waiting out lease timers (operator action, or a peer
// with out-of-band failure evidence). Idempotent. Replicated registries
// commit the eviction through the consensus log like any mutation.
func (r *Registry) Evict(p transport.Ctx, flow string, role Role, idx int) error {
	return r.invoke(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		k := epKey{role, idx}
		l := m.eps[k]
		if l == nil {
			l = &lease{}
			m.eps[k] = l
		}
		if l.state == StateEvicted {
			return nil
		}
		l.gen++ // orphan any pending expiry check
		m.evict(k, l)
		return nil
	})
}

// Rejoined is Rejoin's result: the slot's fresh incarnation and the
// confirmed watermark recorded before the eviction, from which the
// re-attached endpoint resumes.
type Rejoined struct {
	Incarnation uint64
	Watermark   uint64
}

// Rejoin re-admits an evicted endpoint to the flow — the sanctioned way
// back through the epoch fence. With newIdx == idx the endpoint
// reclaims its old slot under a fresh incarnation: the slot turns
// Active, its lease timer is re-armed (when it ever held one), and the
// flow epoch is bumped so peers reconnect — under ring partitioning the
// slot takes back exactly the arcs it lost. With newIdx != idx the
// identity transfers to a fresh slot instead (elastic flows, where
// slots are never recycled): the old slot stays fenced and the new slot
// inherits the watermark. Rejoining a slot that is not evicted is an
// error — there is nothing to re-admit, and callers (cmd/dfiflow) treat
// it as a rejected rejoin.
func (r *Registry) Rejoin(p transport.Ctx, flow string, role Role, idx, newIdx int) (Rejoined, error) {
	var out Rejoined
	err := r.invoke(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		k := epKey{role, idx}
		l := m.eps[k]
		if l == nil || l.state != StateEvicted {
			return fmt.Errorf("registry: %s %d of flow %q is not evicted (state %v); rejoin rejected",
				role, idx, flow, m.State(role, idx))
		}
		if newIdx == idx {
			l.gen++ // orphan pre-eviction timers
			l.inc++
			l.state = StateActive
			if l.ttl > 0 {
				m.arm(k, l)
			}
			m.epoch++
			m.r.cond.Broadcast()
			r.emit(metrics.Event{Type: metrics.EvLease, Flow: flow, Epoch: m.epoch,
				Role: role.String(), Slot: idx, Seq: l.inc, Detail: "rejoined own slot"})
			r.emit(metrics.Event{Type: metrics.EvEpoch, Flow: flow, Epoch: m.epoch,
				Detail: "epoch bumped by rejoin"})
			out = Rejoined{Incarnation: l.inc, Watermark: l.watermark}
			return nil
		}
		nk := epKey{role, newIdx}
		nl := m.eps[nk]
		if nl == nil {
			nl = &lease{}
			m.eps[nk] = nl
		}
		if nl.state == StateEvicted {
			return fmt.Errorf("registry: cannot transfer %s %d of flow %q onto evicted slot %d",
				role, idx, flow, newIdx)
		}
		// No epoch bump: the fresh slot announces itself through the
		// normal attach path; the old slot's eviction epoch already
		// rerouted its work.
		nl.watermark = l.watermark
		r.emit(metrics.Event{Type: metrics.EvLease, Flow: flow, Epoch: m.epoch,
			Role: role.String(), Slot: newIdx, Seq: nl.inc,
			Detail: fmt.Sprintf("identity transferred from slot %d", idx)})
		out = Rejoined{Incarnation: nl.inc, Watermark: nl.watermark}
		return nil
	})
	return out, err
}

// SetWatermark durably records an endpoint's confirmed progress (e.g. a
// source's count of tuples confirmed consumed by their targets). After
// an eviction, Rejoin returns the last recorded value so the endpoint
// resumes there instead of from zero. Recording on an evicted slot is
// refused: the fence also protects the watermark from a wedged
// endpoint's late writes.
func (r *Registry) SetWatermark(p transport.Ctx, flow string, role Role, idx int, watermark uint64) error {
	return r.invoke(p, func() error {
		m, ok := r.membership(flow)
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		k := epKey{role, idx}
		l := m.eps[k]
		if l == nil {
			l = &lease{}
			m.eps[k] = l
		}
		if l.state == StateEvicted {
			return fmt.Errorf("registry: %s %d of flow %q was evicted; watermark refused", role, idx, flow)
		}
		l.watermark = watermark
		return nil
	})
}
