// Package registry implements DFI's central flow-metadata registry
// (paper §3.2): flows publish their metadata on initialization, and
// sources/targets retrieve it before use. In a deployment this service runs
// on a master node; lookups happen only at flow setup, never on the data
// path, so the registry charges an optional fixed RPC delay rather than
// modelling full network messages.
//
// Beyond the paper, the registry carries the control-plane failure model
// (see lease.go): every flow has an epoch-versioned membership record
// whose leases detect crashed endpoints, and the registry itself can run
// replicated over a Multi-Paxos log with master failover (replicated.go).
// Registry RPCs can be delayed or dropped via fabric.FaultPlan's
// Registry* knobs; a dropped RPC costs the client a retry timeout.
package registry

import (
	"fmt"
	"sync/atomic"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/metrics"
	"dfi/internal/sim"
	"dfi/internal/transport"
)

// simProc asserts a transport context to the sim kernel's process type.
// Registry waits park on sim conds, so the DES-backed registry only runs
// under the sim kernel; sim-free backends use Local instead.
func simProc(p transport.Ctx) *sim.Proc {
	sp, ok := p.(*sim.Proc)
	if !ok {
		panic("registry: context is not a *sim.Proc (use registry.Local on sim-free transports)")
	}
	return sp
}

// Registry is the client handle to the metadata store. One instance
// serves a cluster; New builds a standalone (single-master, non-fault-
// tolerant) registry, NewReplicated one backed by a replicated log.
type Registry struct {
	k        *sim.Kernel
	cond     *sim.Cond
	flows    map[string]*entry
	RPCDelay time.Duration // charged to every remote lookup/publish

	// RetryTimeout is how long a client waits before retrying a registry
	// RPC whose reply was lost (fault injection / replica crash).
	// Defaults to max(4·RPCDelay, 2µs).
	RetryTimeout time.Duration

	faults *fabric.FaultPlan
	repl   *replGroup // nil for a standalone registry

	// events receives structured protocol events (nil when tracing is
	// off); endpoints pick the sink up via EventSink() at open. status
	// holds the latest immutable introspection snapshot, republished
	// after every mutation (see status.go).
	events metrics.EventSink
	status atomic.Pointer[ClusterStatus]

	// renewRPCs counts lease-renewal round trips (batched renewals count
	// once) — the lease-traffic measure the connection-scaling tests
	// assert stays sublinear in flow count.
	renewRPCs atomic.Uint64
}

// LeaseRenewRPCs returns the number of lease-renewal round trips served
// so far (a RenewLeaseBatch counts one whatever it carries).
func (r *Registry) LeaseRenewRPCs() uint64 { return r.renewRPCs.Load() }

type entry struct {
	meta    any
	targets map[int]any
	mem     *Membership

	// seq holds the flow's sequencer recovery state — high-water,
	// per-source delivery counts and the agreed-skip set — maintained by
	// ordered multicast replicate flows (see seqsnap.go). Nil until the
	// first RecordSeqProgress/RecordSeqSkips.
	seq *seqState
}

// New creates an empty standalone registry bound to k.
func New(k *sim.Kernel) *Registry {
	return &Registry{k: k, cond: sim.NewCond(k), flows: make(map[string]*entry)}
}

// UseFaults subjects the registry's RPCs to the plan's Registry* fault
// knobs (nil clears them). Replicated registries take the plan through
// their ReplicaConfig instead.
func (r *Registry) UseFaults(fp *fabric.FaultPlan) { r.faults = fp }

func (r *Registry) retryTimeout() time.Duration {
	if r.RetryTimeout > 0 {
		return r.RetryTimeout
	}
	if d := 4 * r.RPCDelay; d > 2*time.Microsecond {
		return d
	}
	return 2 * time.Microsecond
}

// rpc charges one client↔registry round trip, honoring the registry
// fault plan: extra delay and jitter stretch the trip, and a dropped
// leg costs the client a retry timeout before it tries again.
func (r *Registry) rpc(p transport.Ctx) {
	if r.repl != nil {
		r.repl.maybeCrashMaster(p)
		if r.repl.crashed[r.repl.master] {
			// Any client RPC that finds the master dead promotes the
			// standby; non-logged calls (lease renewals, reads routed to
			// the master) then proceed against the new one.
			r.repl.elect(p)
		}
	}
	for {
		d := r.RPCDelay
		if fp := r.faults; fp != nil {
			d += fp.RegistryDelay
			if fp.RegistryJitter > 0 {
				d += time.Duration(p.Rand().Int63n(int64(fp.RegistryJitter)))
			}
		}
		p.Sleep(d)
		if fp := r.faults; fp != nil && fp.RegistryDrop > 0 && p.Rand().Float64() < fp.RegistryDrop {
			p.Sleep(r.retryTimeout())
			continue
		}
		return
	}
}

// invoke runs one mutating registry command. Standalone it is a plain
// RPC against the in-memory map; replicated, the command is first
// committed to the Multi-Paxos log by the current master (electing a new
// one when the master crashed), and retried idempotently when a reply is
// lost.
func (r *Registry) invoke(p transport.Ctx, op func() error) error {
	var err error
	if r.repl == nil {
		r.rpc(p)
		err = op()
	} else {
		err = r.repl.invoke(p, op)
	}
	r.statusChanged()
	return err
}

// Publish registers flow metadata under a unique name. Publishing a name
// twice is an error (flow names identify flows cluster-wide). The flow's
// membership record (see lease.go) is created here, at epoch 0.
func (r *Registry) Publish(p transport.Ctx, name string, meta any) error {
	return r.invoke(p, func() error {
		if _, dup := r.flows[name]; dup {
			return fmt.Errorf("registry: flow %q already published", name)
		}
		r.flows[name] = &entry{meta: meta, targets: make(map[int]any), mem: newMembership(r, name)}
		r.cond.Broadcast()
		return nil
	})
}

// Lookup returns the metadata for name without blocking.
func (r *Registry) Lookup(p transport.Ctx, name string) (any, bool) {
	r.rpc(p)
	e, ok := r.flows[name]
	if !ok {
		return nil, false
	}
	return e.meta, true
}

// WaitFlow blocks until the named flow has been published and returns its
// metadata.
func (r *Registry) WaitFlow(p transport.Ctx, name string) any {
	sp := simProc(p)
	r.rpc(sp)
	for {
		if e, ok := r.flows[name]; ok {
			return e.meta
		}
		r.cond.Wait(sp)
	}
}

// PublishTarget registers per-target connection info (e.g. ring-buffer
// addresses) for target idx of the named flow. The flow must exist.
func (r *Registry) PublishTarget(p transport.Ctx, name string, idx int, info any) error {
	return r.invoke(p, func() error {
		e, ok := r.flows[name]
		if !ok {
			return fmt.Errorf("registry: flow %q not published", name)
		}
		if _, dup := e.targets[idx]; dup {
			return fmt.Errorf("registry: flow %q target %d already published", name, idx)
		}
		e.targets[idx] = info
		r.cond.Broadcast()
		return nil
	})
}

// RepublishTarget replaces the connection info of a target slot that is
// awaiting rejoin — a re-attaching target allocates fresh rings and must
// publish them *before* Rejoin bumps the epoch, so every source that
// folds the rejoin epoch finds the new rings. Only evicted slots may
// republish: live info must never be clobbered from under connected
// sources.
func (r *Registry) RepublishTarget(p transport.Ctx, name string, idx int, info any) error {
	return r.invoke(p, func() error {
		e, ok := r.flows[name]
		if !ok {
			return fmt.Errorf("registry: flow %q not published", name)
		}
		if e.mem == nil || !e.mem.TargetEvicted(idx) {
			return fmt.Errorf("registry: flow %q target %d is not evicted; republish refused", name, idx)
		}
		e.targets[idx] = info
		r.cond.Broadcast()
		return nil
	})
}

// TargetInfo returns target idx's currently published info without
// blocking — sources use it to reconnect to a rejoined target whose
// info was republished.
func (r *Registry) TargetInfo(p transport.Ctx, name string, idx int) (any, bool) {
	r.rpc(p)
	e, ok := r.flows[name]
	if !ok {
		return nil, false
	}
	info, ok := e.targets[idx]
	return info, ok
}

// WaitTarget blocks until target idx of the named flow has published its
// info and returns it.
func (r *Registry) WaitTarget(p transport.Ctx, name string, idx int) any {
	info, _ := r.WaitTargetLive(p, name, idx)
	return info
}

// WaitTargetLive blocks until target idx of the named flow has published
// its info (info, false) or was evicted from the flow membership
// (nil, true) — a source must not wait forever on a target that will
// never come up.
func (r *Registry) WaitTargetLive(p transport.Ctx, name string, idx int) (info any, evicted bool) {
	sp := simProc(p)
	r.rpc(sp)
	for {
		if e, ok := r.flows[name]; ok {
			if e.mem != nil && e.mem.TargetEvicted(idx) {
				return nil, true
			}
			if info, ok := e.targets[idx]; ok {
				return info, false
			}
		}
		r.cond.Wait(sp)
	}
}

// Remove deletes a flow's metadata so the name can be reused (flow
// teardown). Like every registry mutation it is a remote RPC: it charges
// the RPC cost and wakes waiters, so a WaitFlow racing a remove-then-
// republish observes the republished flow rather than blocking forever.
func (r *Registry) Remove(p transport.Ctx, name string) {
	_ = r.invoke(p, func() error {
		delete(r.flows, name)
		r.cond.Broadcast()
		return nil
	})
}

// Flows returns the number of published flows.
func (r *Registry) Flows() int { return len(r.flows) }
