// Package registry implements DFI's central flow-metadata registry
// (paper §3.2): flows publish their metadata on initialization, and
// sources/targets retrieve it before use. In a deployment this service runs
// on a master node; lookups happen only at flow setup, never on the data
// path, so the registry charges an optional fixed RPC delay rather than
// modelling full network messages.
package registry

import (
	"fmt"
	"time"

	"dfi/internal/sim"
)

// Registry is the central metadata store. One instance serves a cluster.
type Registry struct {
	k        *sim.Kernel
	cond     *sim.Cond
	flows    map[string]*entry
	RPCDelay time.Duration // charged to every remote lookup/publish
}

type entry struct {
	meta    any
	targets map[int]any
}

// New creates an empty registry bound to k.
func New(k *sim.Kernel) *Registry {
	return &Registry{k: k, cond: sim.NewCond(k), flows: make(map[string]*entry)}
}

// Publish registers flow metadata under a unique name. Publishing a name
// twice is an error (flow names identify flows cluster-wide).
func (r *Registry) Publish(p *sim.Proc, name string, meta any) error {
	p.Sleep(r.RPCDelay)
	if _, dup := r.flows[name]; dup {
		return fmt.Errorf("registry: flow %q already published", name)
	}
	r.flows[name] = &entry{meta: meta, targets: make(map[int]any)}
	r.cond.Broadcast()
	return nil
}

// Lookup returns the metadata for name without blocking.
func (r *Registry) Lookup(p *sim.Proc, name string) (any, bool) {
	p.Sleep(r.RPCDelay)
	e, ok := r.flows[name]
	if !ok {
		return nil, false
	}
	return e.meta, true
}

// WaitFlow blocks until the named flow has been published and returns its
// metadata.
func (r *Registry) WaitFlow(p *sim.Proc, name string) any {
	p.Sleep(r.RPCDelay)
	for {
		if e, ok := r.flows[name]; ok {
			return e.meta
		}
		r.cond.Wait(p)
	}
}

// PublishTarget registers per-target connection info (e.g. ring-buffer
// addresses) for target idx of the named flow. The flow must exist.
func (r *Registry) PublishTarget(p *sim.Proc, name string, idx int, info any) error {
	p.Sleep(r.RPCDelay)
	e, ok := r.flows[name]
	if !ok {
		return fmt.Errorf("registry: flow %q not published", name)
	}
	if _, dup := e.targets[idx]; dup {
		return fmt.Errorf("registry: flow %q target %d already published", name, idx)
	}
	e.targets[idx] = info
	r.cond.Broadcast()
	return nil
}

// WaitTarget blocks until target idx of the named flow has published its
// info and returns it.
func (r *Registry) WaitTarget(p *sim.Proc, name string, idx int) any {
	p.Sleep(r.RPCDelay)
	for {
		if e, ok := r.flows[name]; ok {
			if info, ok := e.targets[idx]; ok {
				return info
			}
		}
		r.cond.Wait(p)
	}
}

// Remove deletes a flow's metadata (used by tests and flow teardown).
func (r *Registry) Remove(name string) {
	delete(r.flows, name)
}

// Flows returns the number of published flows.
func (r *Registry) Flows() int { return len(r.flows) }
