package registry

import (
	"testing"

	"dfi/internal/sim"
)

func TestRejoinReclaimsSlot(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleTarget, 1, ttl, grace); err != nil {
			t.Fatal(err)
		}
		if err := r.SetWatermark(p, "f", RoleTarget, 1, 77); err != nil {
			t.Fatal(err)
		}
		if err := r.Evict(p, "f", RoleTarget, 1); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		if m.Epoch() != 1 {
			t.Fatalf("epoch = %d after evict, want 1", m.Epoch())
		}
		rj, err := r.Rejoin(p, "f", RoleTarget, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rj.Incarnation != 1 || rj.Watermark != 77 {
			t.Fatalf("rejoin = %+v, want incarnation 1 watermark 77", rj)
		}
		if st := m.State(RoleTarget, 1); st != StateActive {
			t.Fatalf("state = %v after rejoin, want active", st)
		}
		if m.Epoch() != 2 {
			t.Fatalf("epoch = %d after rejoin, want 2 (peers must reconnect)", m.Epoch())
		}
		if m.Incarnation(RoleTarget, 1) != 1 {
			t.Fatalf("incarnation = %d, want 1", m.Incarnation(RoleTarget, 1))
		}
		// The fence is lifted for the new incarnation: renewals work again.
		if err := r.RenewLease(p, "f", RoleTarget, 1); err != nil {
			t.Fatalf("renewal after rejoin failed: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinRearmsLeaseTimers(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleSource, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		p.Sleep(2 * (ttl + grace)) // let the lease expire to eviction
		if !m.SourceEvicted(0) {
			t.Fatal("lease did not expire to eviction")
		}
		if _, err := r.Rejoin(p, "f", RoleSource, 0, 0); err != nil {
			t.Fatal(err)
		}
		// The rejoined slot holds a live lease again: left unrenewed it
		// must expire to a second eviction.
		p.Sleep(2 * (ttl + grace))
		if !m.SourceEvicted(0) {
			t.Fatal("rejoined lease never expired; timer was not re-armed")
		}
		if m.Incarnation(RoleSource, 0) != 1 {
			t.Fatalf("incarnation = %d, want 1", m.Incarnation(RoleSource, 0))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinRejectedWhenNotEvicted(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if _, err := r.Rejoin(p, "f", RoleTarget, 0, 0); err == nil {
			t.Error("rejoin of a never-evicted slot accepted")
		}
		if err := r.AcquireLease(p, "f", RoleTarget, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Rejoin(p, "f", RoleTarget, 0, 0); err == nil {
			t.Error("rejoin of an active slot accepted")
		}
		if _, err := r.Rejoin(p, "missing", RoleTarget, 0, 0); err == nil {
			t.Error("rejoin on unpublished flow accepted")
		}
		m := r.MembershipOf("f")
		if m.Epoch() != 0 {
			t.Fatalf("rejected rejoins bumped the epoch to %d", m.Epoch())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRejoinTransfersToFreshSlot(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleSource, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		if err := r.SetWatermark(p, "f", RoleSource, 0, 123); err != nil {
			t.Fatal(err)
		}
		if err := r.Evict(p, "f", RoleSource, 0); err != nil {
			t.Fatal(err)
		}
		rj, err := r.Rejoin(p, "f", RoleSource, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rj.Watermark != 123 {
			t.Fatalf("transferred watermark = %d, want 123", rj.Watermark)
		}
		m := r.MembershipOf("f")
		if !m.SourceEvicted(0) {
			t.Error("old slot un-fenced by a fresh-slot transfer")
		}
		if m.Watermark(RoleSource, 3) != 123 {
			t.Errorf("fresh slot watermark = %d, want 123", m.Watermark(RoleSource, 3))
		}
		if st := m.State(RoleSource, 3); st != StateActive {
			t.Errorf("fresh slot state = %v, want active", st)
		}
		// Transferring onto an evicted slot is refused.
		if err := r.Evict(p, "f", RoleSource, 5); err != nil {
			t.Fatal(err)
		}
		if err := r.Evict(p, "f", RoleSource, 6); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Rejoin(p, "f", RoleSource, 5, 6); err == nil {
			t.Error("transfer onto an evicted slot accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarkFencedAfterEviction(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Evict(p, "f", RoleSource, 2); err != nil {
			t.Fatal(err)
		}
		if err := r.SetWatermark(p, "f", RoleSource, 2, 9); err == nil {
			t.Error("watermark write on an evicted slot accepted")
		}
		m := r.MembershipOf("f")
		if m.Watermark(RoleSource, 2) != 0 {
			t.Errorf("fenced watermark = %d, want 0", m.Watermark(RoleSource, 2))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRepublishTargetOnlyWhileEvicted(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.PublishTarget(p, "f", 0, "rings-v0"); err != nil {
			t.Fatal(err)
		}
		if err := r.RepublishTarget(p, "f", 0, "rings-v1"); err == nil {
			t.Error("republish of a live target accepted")
		}
		if err := r.Evict(p, "f", RoleTarget, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.RepublishTarget(p, "f", 0, "rings-v1"); err != nil {
			t.Fatal(err)
		}
		info, ok := r.TargetInfo(p, "f", 0)
		if !ok || info != "rings-v1" {
			t.Fatalf("TargetInfo = %v, %v, want rings-v1", info, ok)
		}
		if err := r.RepublishTarget(p, "missing", 0, nil); err == nil {
			t.Error("republish on unpublished flow accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
