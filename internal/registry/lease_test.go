package registry

import (
	"testing"
	"time"

	"dfi/internal/sim"
)

const (
	ttl   = 100 * time.Microsecond
	grace = 50 * time.Microsecond
)

func leaseEnv(t *testing.T) (*sim.Kernel, *Registry) {
	t.Helper()
	k := sim.New(1)
	r := New(k)
	k.Spawn("publish", func(p *sim.Proc) {
		if err := r.Publish(p, "f", nil); err != nil {
			t.Fatal(err)
		}
	})
	return k, r
}

func TestLeaseExpiryEvicts(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleTarget, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		if m == nil || m.Epoch() != 0 {
			t.Fatal("membership missing or epoch nonzero at acquire")
		}
		// Unrenewed: Active through the TTL, then Suspect through the
		// grace period, then Evicted with an epoch bump.
		p.Sleep(ttl + grace/2)
		if st := m.State(RoleTarget, 0); st != StateSuspect {
			t.Fatalf("state after TTL = %v, want suspect", st)
		}
		if m.Epoch() != 0 {
			t.Error("suspect bumped the epoch")
		}
		p.Sleep(grace)
		if !m.TargetEvicted(0) {
			t.Fatal("unrenewed lease not evicted after grace")
		}
		if m.Epoch() != 1 {
			t.Fatalf("epoch = %d, want 1", m.Epoch())
		}
		if got := m.EvictedTargets(); len(got) != 1 || got[0] != 0 {
			t.Fatalf("EvictedTargets = %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseRenewalKeepsActive(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleSource, 2, ttl, grace); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		for i := 0; i < 10; i++ {
			p.Sleep(ttl / 2)
			if err := r.RenewLease(p, "f", RoleSource, 2); err != nil {
				t.Fatal(err)
			}
		}
		if st := m.State(RoleSource, 2); st != StateActive {
			t.Fatalf("state = %v, want active across 10 renewals", st)
		}
		if m.Epoch() != 0 {
			t.Fatalf("epoch = %d, want 0", m.Epoch())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSuspectRescuedByRenewal(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleTarget, 1, ttl, grace); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		p.Sleep(ttl + grace/2) // past TTL, inside grace: Suspect
		if st := m.State(RoleTarget, 1); st != StateSuspect {
			t.Fatalf("state = %v, want suspect", st)
		}
		if err := r.RenewLease(p, "f", RoleTarget, 1); err != nil {
			t.Fatalf("renewal of a suspect lease failed: %v", err)
		}
		// The rescue must also cancel the pending eviction timer.
		p.Sleep(grace)
		if st := m.State(RoleTarget, 1); st != StateActive {
			t.Fatalf("state = %v, want active after rescue", st)
		}
		if m.Epoch() != 0 {
			t.Fatalf("epoch = %d after rescue, want 0", m.Epoch())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseLeavesWithoutEpochBump(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleSource, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		m := r.MembershipOf("f")
		r.ReleaseLease(p, "f", RoleSource, 0)
		if st := m.State(RoleSource, 0); st != StateLeft {
			t.Fatalf("state = %v, want left", st)
		}
		// The orphaned expiry timer must not fire an eviction later.
		p.Sleep(2 * (ttl + grace))
		if st := m.State(RoleSource, 0); st != StateLeft {
			t.Fatalf("state = %v after timers, want left", st)
		}
		if m.Epoch() != 0 {
			t.Fatalf("epoch = %d, want 0 (graceful leave)", m.Epoch())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdministrativeEvictIdempotent(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		m := r.MembershipOf("f")
		// Evict works on a slot that never held a lease (operator action
		// against a node that never came up).
		if err := r.Evict(p, "f", RoleTarget, 3); err != nil {
			t.Fatal(err)
		}
		if !m.TargetEvicted(3) || m.Epoch() != 1 {
			t.Fatalf("state = %v epoch = %d", m.State(RoleTarget, 3), m.Epoch())
		}
		if err := r.Evict(p, "f", RoleTarget, 3); err != nil {
			t.Fatal(err)
		}
		if m.Epoch() != 1 {
			t.Fatalf("re-evict bumped epoch to %d", m.Epoch())
		}
		if err := r.Evict(p, "missing", RoleTarget, 0); err == nil {
			t.Error("evict on unpublished flow accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedSlotIsFenced(t *testing.T) {
	k, r := leaseEnv(t)
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.AcquireLease(p, "f", RoleTarget, 0, ttl, grace); err != nil {
			t.Fatal(err)
		}
		if err := r.Evict(p, "f", RoleTarget, 0); err != nil {
			t.Fatal(err)
		}
		// Epoch fencing: the eviction is visible to peers and cannot be
		// taken back by the (possibly merely slow) endpoint.
		if err := r.RenewLease(p, "f", RoleTarget, 0); err == nil {
			t.Error("renewal of an evicted lease accepted")
		}
		if err := r.AcquireLease(p, "f", RoleTarget, 0, ttl, grace); err == nil {
			t.Error("re-acquire of an evicted slot accepted")
		}
		// A pending expiry from the pre-eviction lease must not fire on
		// the fenced slot (generation was bumped).
		p.Sleep(2 * (ttl + grace))
		m := r.MembershipOf("f")
		if m.Epoch() != 1 {
			t.Fatalf("epoch = %d, want 1", m.Epoch())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
