package registry

import (
	"fmt"
	"sync"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/transport"
)

// Local is a process-local, goroutine-safe flow-metadata store for
// sim-free transports (dfi/internal/transport/chanloop). It offers the
// same client surface as Registry — publish/lookup/wait for flow and
// target metadata — without the sim kernel, RPC cost model, fault plan
// or replication. Control-plane failure handling is DES-only: leases
// acquire and renew as no-ops (nothing ever expires), MembershipOf
// returns nil (no membership record), and rejoin/sequencer-snapshot
// operations report errors.
type Local struct {
	mu    sync.Mutex
	cond  *sync.Cond
	flows map[string]*localEntry

	events metrics.EventSink
}

type localEntry struct {
	meta    any
	targets map[int]any
}

// NewLocal creates an empty local store.
func NewLocal() *Local {
	l := &Local{flows: make(map[string]*localEntry)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Publish registers flow metadata under a unique name.
func (l *Local) Publish(p transport.Ctx, name string, meta any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.flows[name]; dup {
		return fmt.Errorf("registry: flow %q already published", name)
	}
	l.flows[name] = &localEntry{meta: meta, targets: make(map[int]any)}
	l.cond.Broadcast()
	return nil
}

// Lookup returns the metadata for name without blocking.
func (l *Local) Lookup(p transport.Ctx, name string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.flows[name]
	if !ok {
		return nil, false
	}
	return e.meta, true
}

// WaitFlow blocks until the named flow has been published.
func (l *Local) WaitFlow(p transport.Ctx, name string) any {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if e, ok := l.flows[name]; ok {
			return e.meta
		}
		l.cond.Wait()
	}
}

// PublishTarget registers per-target connection info for target idx.
func (l *Local) PublishTarget(p transport.Ctx, name string, idx int, info any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.flows[name]
	if !ok {
		return fmt.Errorf("registry: flow %q not published", name)
	}
	if _, dup := e.targets[idx]; dup {
		return fmt.Errorf("registry: flow %q target %d already published", name, idx)
	}
	e.targets[idx] = info
	l.cond.Broadcast()
	return nil
}

// RepublishTarget is rejoin-only and unsupported on a local store.
func (l *Local) RepublishTarget(p transport.Ctx, name string, idx int, info any) error {
	return fmt.Errorf("registry: local store has no membership; republish refused")
}

// TargetInfo returns target idx's published info without blocking.
func (l *Local) TargetInfo(p transport.Ctx, name string, idx int) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.flows[name]
	if !ok {
		return nil, false
	}
	info, ok := e.targets[idx]
	return info, ok
}

// WaitTarget blocks until target idx has published its info.
func (l *Local) WaitTarget(p transport.Ctx, name string, idx int) any {
	info, _ := l.WaitTargetLive(p, name, idx)
	return info
}

// WaitTargetLive blocks until target idx has published its info. Local
// stores have no eviction, so the second result is always false.
func (l *Local) WaitTargetLive(p transport.Ctx, name string, idx int) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if e, ok := l.flows[name]; ok {
			if info, ok := e.targets[idx]; ok {
				return info, false
			}
		}
		l.cond.Wait()
	}
}

// Remove deletes a flow's metadata so the name can be reused.
func (l *Local) Remove(p transport.Ctx, name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.flows, name)
	l.cond.Broadcast()
}

// MembershipOf returns nil: local stores carry no membership record, and
// callers treat a nil membership as "failure handling disabled".
func (l *Local) MembershipOf(name string) *Membership { return nil }

// AcquireLease succeeds as a no-op: without a failure detector nothing
// ever expires, so a lease is pure bookkeeping.
func (l *Local) AcquireLease(p transport.Ctx, flow string, role Role, idx int, ttl, grace time.Duration) error {
	return nil
}

// RenewLease succeeds as a no-op (see AcquireLease).
func (l *Local) RenewLease(p transport.Ctx, flow string, role Role, idx int) error { return nil }

// RenewLeaseBatch renews nothing: Local flows have no leases to keep
// alive, so every ref trivially succeeds.
func (l *Local) RenewLeaseBatch(p transport.Ctx, refs []LeaseRef) []LeaseRef { return nil }

// ReleaseLease is a no-op.
func (l *Local) ReleaseLease(p transport.Ctx, flow string, role Role, idx int) {}

// Rejoin is DES-only: a local store has no eviction to rejoin from.
func (l *Local) Rejoin(p transport.Ctx, flow string, role Role, idx, newIdx int) (Rejoined, error) {
	return Rejoined{}, fmt.Errorf("registry: local store does not support rejoin")
}

// SetWatermark is accepted and discarded: checkpoint watermarks exist to
// coordinate rejoin, which local stores do not support.
func (l *Local) SetWatermark(p transport.Ctx, flow string, role Role, idx int, watermark uint64) error {
	return nil
}

// RecordSeqProgress is DES-only (ordered multicast recovery state).
func (l *Local) RecordSeqProgress(p transport.Ctx, flow string, tgt int, highWater uint64, perSource []uint64) error {
	return fmt.Errorf("registry: local store does not track sequencer state")
}

// RecordSeqSkips is DES-only.
func (l *Local) RecordSeqSkips(p transport.Ctx, flow string, epoch uint64, seqs ...uint64) error {
	return fmt.Errorf("registry: local store does not track sequencer state")
}

// SeqSnapshot is DES-only.
func (l *Local) SeqSnapshot(p transport.Ctx, flow string) (SeqSnapshot, bool) {
	return SeqSnapshot{}, false
}

// SetEventSink installs a structured-event sink (nil disables).
func (l *Local) SetEventSink(s metrics.EventSink) { l.events = s }

// EventSink returns the installed event sink.
func (l *Local) EventSink() metrics.EventSink { return l.events }

// Flows returns the number of published flows.
func (l *Local) Flows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.flows)
}
