package registry

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

// testSeed returns the kernel seed for the snapshot/compaction suite.
// DFI_CHAOS_SEED overrides the default so `make chaos` can sweep a seed
// matrix without recompiling (same contract as internal/core).
func testSeed() int64 {
	if s := os.Getenv("DFI_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 11
}

// TestSnapshotRoundTripByteForByte is the snapshot/restore property:
// capture a randomly-built registry state machine, restore it into a
// fresh registry, capture again — the two deterministic encodings must
// be byte-for-byte identical, and the restored state must answer like
// the original.
func TestSnapshotRoundTripByteForByte(t *testing.T) {
	for round := 0; round < 8; round++ {
		round := round
		k := sim.New(testSeed() + int64(round))
		r := New(k)
		rng := rand.New(rand.NewSource(testSeed()*31 + int64(round)))
		k.Spawn("build", func(p *sim.Proc) {
			nFlows := 1 + rng.Intn(4)
			for f := 0; f < nFlows; f++ {
				name := fmt.Sprintf("flow%d", f)
				meta := fmt.Sprintf("meta-%d", f)
				if err := r.Publish(p, name, &meta); err != nil {
					t.Fatal(err)
				}
				for idx := 0; idx < 1+rng.Intn(3); idx++ {
					if err := r.PublishTarget(p, name, idx, &name); err != nil {
						t.Fatal(err)
					}
				}
				for idx := 0; idx < 1+rng.Intn(4); idx++ {
					role := RoleSource
					if rng.Intn(2) == 0 {
						role = RoleTarget
					}
					ttl := time.Duration(1+rng.Intn(50)) * time.Millisecond
					if err := r.AcquireLease(p, name, role, idx, ttl, ttl/2); err != nil {
						t.Fatal(err)
					}
					switch rng.Intn(4) {
					case 0:
						if err := r.Evict(p, name, role, idx); err != nil {
							t.Fatal(err)
						}
						if rng.Intn(2) == 0 {
							if _, err := r.Rejoin(p, name, role, idx, idx); err != nil {
								t.Fatal(err)
							}
						}
					case 1:
						r.ReleaseLease(p, name, role, idx)
					case 2:
						if err := r.SetWatermark(p, name, role, idx, rng.Uint64()); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			snap := r.captureState()
			enc1 := snap.encode()
			if len(enc1) <= len(snapMagic) {
				t.Fatal("empty encoding for a populated state machine")
			}

			r2 := New(k)
			r2.restoreState(snap)
			enc2 := r2.captureState().encode()
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("round %d: snapshot→restore→snapshot changed the encoding (%d vs %d bytes)",
					round, len(enc1), len(enc2))
			}

			// The restored machine answers like the original: same flows,
			// same metadata references, same epochs, states and watermarks.
			if r2.Flows() != r.Flows() {
				t.Fatalf("restored flows = %d, want %d", r2.Flows(), r.Flows())
			}
			for name, e := range r.flows {
				e2, ok := r2.flows[name]
				if !ok {
					t.Fatalf("flow %q lost in restore", name)
				}
				if e2.meta != e.meta {
					t.Fatalf("flow %q: meta reference changed across restore", name)
				}
				if e.mem.epoch != e2.mem.epoch {
					t.Fatalf("flow %q: epoch %d restored as %d", name, e.mem.epoch, e2.mem.epoch)
				}
				for key, l := range e.mem.eps {
					l2 := e2.mem.eps[key]
					if l2 == nil || l2.state != l.state || l2.inc != l.inc || l2.watermark != l.watermark {
						t.Fatalf("flow %q %v %d: lease %+v restored as %+v", name, key.role, key.idx, l, l2)
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplicatedLogCompactionBounded drives a sustained lease+registry
// workload through a replicated registry with snapshotting enabled and
// asserts the acceptor log and the applied-table stay bounded by the
// snapshot cadence, while the snapshot index keeps advancing.
func TestReplicatedLogCompactionBounded(t *testing.T) {
	const cadence = 8
	k := sim.New(testSeed())
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond, SnapshotEvery: cadence})
	if err != nil {
		t.Fatal(err)
	}
	maxLog, maxApplied := 0, 0
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("flow%d", i)
			if err := r.Publish(p, name, i); err != nil {
				t.Fatal(err)
			}
			if err := r.AcquireLease(p, name, RoleSource, 0, 50*time.Millisecond, 0); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				if err := r.RenewLease(p, name, RoleSource, 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.SetWatermark(p, name, RoleSource, 0, uint64(i)); err != nil {
				t.Fatal(err)
			}
			r.ReleaseLease(p, name, RoleSource, 0)
			r.Remove(p, name)
			if r.LogLen() > maxLog {
				maxLog = r.LogLen()
			}
			if r.AppliedSize() > maxApplied {
				maxApplied = r.AppliedSize()
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 40 iterations × 8 logged commands each ≫ cadence: without
	// compaction the log would hold 320 entries.
	if maxLog > cadence {
		t.Errorf("retained acceptor log reached %d entries, want ≤ the %d-command cadence", maxLog, cadence)
	}
	if maxApplied > cadence {
		t.Errorf("applied-table reached %d entries, want ≤ the %d-command cadence", maxApplied, cadence)
	}
	if r.Snapshots() < 320/cadence-1 || r.SnapshotIndex() == 0 {
		t.Errorf("snapshots = %d at index %d; cadence not sustained", r.Snapshots(), r.SnapshotIndex())
	}
}

// TestReplicatedCompactionDisabled pins the escape hatch: a negative
// cadence keeps the PR-2 append-only behavior.
func TestReplicatedCompactionDisabled(t *testing.T) {
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const flows = 20
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < flows; i++ {
			if err := r.Publish(p, fmt.Sprintf("flow%d", i), nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.LogLen() != flows || r.Snapshots() != 0 {
		t.Fatalf("logLen = %d snapshots = %d; want the full %d-entry log and no snapshots",
			r.LogLen(), r.Snapshots(), flows)
	}
}

// TestReplicatedLeaseSurvivesPostCompactionFailover is the durability
// tentpole's chaos test (seed-swept via DFI_CHAOS_SEED): lease state
// built up before a snapshot-compacted log loses its entries must be
// served correctly by the new master after the old one crashes —
// leases, epoch fences, and watermarks all intact — and fresh commands
// must commit above the snapshot index.
func TestReplicatedLeaseSurvivesPostCompactionFailover(t *testing.T) {
	k := sim.New(testSeed())
	r, err := NewReplicated(k, ReplicaConfig{
		RPCDelay:      time.Microsecond,
		SnapshotEvery: 4,
		Faults:        &fabric.FaultPlan{RegistryDrop: 0.15, RegistryJitter: 2 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const ttl = 100 * time.Millisecond // generous: nothing may expire mid-test
	k.Spawn("chaos", func(p *sim.Proc) {
		if err := r.Publish(p, "f", "meta"); err != nil {
			t.Fatal(err)
		}
		for _, idx := range []int{0, 1} {
			if err := r.AcquireLease(p, "f", RoleTarget, idx, ttl, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.AcquireLease(p, "f", RoleSource, 0, ttl, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.SetWatermark(p, "f", RoleSource, 0, 7777); err != nil {
			t.Fatal(err)
		}
		if err := r.Evict(p, "f", RoleTarget, 1); err != nil {
			t.Fatal(err)
		}
		// Push the log well past the compaction cadence so the pre-crash
		// lease commands only survive inside the snapshot.
		for i := 0; i < 8; i++ {
			if err := r.RenewLease(p, "f", RoleTarget, 0); err != nil {
				t.Fatal(err)
			}
		}
		if r.SnapshotIndex() == 0 || r.Snapshots() == 0 {
			t.Fatalf("no snapshot before the crash (index %d, count %d); test is vacuous",
				r.SnapshotIndex(), r.Snapshots())
		}
		preIndex := r.SnapshotIndex()
		oldMaster := r.Master()

		r.CrashReplica(oldMaster)

		// The new master must serve every piece of pre-crash lease state.
		if err := r.RenewLease(p, "f", RoleTarget, 0); err != nil {
			t.Fatalf("surviving lease lost across post-compaction failover: %v", err)
		}
		if err := r.RenewLease(p, "f", RoleTarget, 1); err == nil {
			t.Fatal("epoch fence lost: evicted slot renewed after failover")
		}
		if err := r.AcquireLease(p, "f", RoleTarget, 2, ttl, 0); err != nil {
			t.Fatalf("fresh acquire after failover: %v", err)
		}
		m := r.MembershipOf("f")
		if m == nil || m.Epoch() != 1 {
			t.Fatalf("epoch = %v, want 1 (the pre-crash eviction)", m.Epoch())
		}
		if got := m.Watermark(RoleSource, 0); got != 7777 {
			t.Fatalf("watermark = %d after failover, want 7777", got)
		}
		got, err := r.Rejoin(p, "f", RoleTarget, 1, 1)
		if err != nil {
			t.Fatalf("rejoin of the pre-crash eviction after failover: %v", err)
		}
		if got.Incarnation != 1 {
			t.Fatalf("rejoin incarnation = %d, want 1", got.Incarnation)
		}
		if r.Master() == oldMaster || r.Elections() == 0 {
			t.Fatalf("master = %d elections = %d; failover did not happen", r.Master(), r.Elections())
		}
		if r.repl.slot < preIndex {
			t.Fatalf("new master commits at slot %d, below the snapshot index %d", r.repl.slot, preIndex)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverReplicaCatchesUp exercises the install-snapshot path: a
// replica crashed through several compactions is restarted and must
// catch up from the group snapshot plus the retained log suffix,
// after which it tracks new commands like any follower.
func TestRecoverReplicaCatchesUp(t *testing.T) {
	k := sim.New(testSeed())
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		r.CrashReplica(2)
		for i := 0; i < 11; i++ {
			if err := r.Publish(p, fmt.Sprintf("flow%d", i), nil); err != nil {
				t.Fatal(err)
			}
		}
		if r.SnapshotIndex() == 0 {
			t.Fatal("no compaction while the replica was down; test is vacuous")
		}
		if err := r.RecoverReplica(p, 2); err != nil {
			t.Fatal(err)
		}
		if err := r.RecoverReplica(p, 2); err == nil {
			t.Error("recovering a live replica accepted")
		}
		g := r.repl
		rec, master := g.acceptors[2], g.acceptors[g.master]
		if rec.FirstSlot() != g.snap.Index {
			t.Fatalf("recovered FirstSlot = %d, want the group snapshot index %d", rec.FirstSlot(), g.snap.Index)
		}
		if rec.NextSlot() != master.NextSlot() {
			t.Fatalf("recovered NextSlot = %d, master %d; log suffix not replayed", rec.NextSlot(), master.NextSlot())
		}
		for slot := master.FirstSlot(); slot < master.NextSlot(); slot++ {
			me, ok := master.Accepted(slot)
			if !ok {
				continue
			}
			re, ok := rec.Accepted(slot)
			if !ok || re.Cmd != me.Cmd {
				t.Fatalf("slot %d: recovered entry %+v, master %+v", slot, re, me)
			}
		}
		// The recovered follower accepts fresh commands.
		if err := r.Publish(p, "after", nil); err != nil {
			t.Fatal(err)
		}
		if rec.NextSlot() != master.NextSlot() {
			t.Fatalf("recovered replica not tracking new commands (next %d vs %d)", rec.NextSlot(), master.NextSlot())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	// Standalone registries have no replicas to recover.
	k2 := sim.New(1)
	r2 := New(k2)
	k2.Spawn("p", func(p *sim.Proc) {
		if err := r2.RecoverReplica(p, 0); err == nil {
			t.Error("RecoverReplica on a standalone registry accepted")
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestUnloggedRenewRelaxation pins the opt-in knob: renewals skip the
// log round (no slots consumed) while acquire/release still commit, and
// renewals keep working across a master failover.
func TestUnloggedRenewRelaxation(t *testing.T) {
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{
		RPCDelay:      time.Microsecond,
		SnapshotEvery: -1, // keep slots countable
		UnloggedRenew: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "f", nil); err != nil {
			t.Fatal(err)
		}
		if err := r.AcquireLease(p, "f", RoleTarget, 0, 10*time.Millisecond, 0); err != nil {
			t.Fatal(err)
		}
		before := r.repl.slot
		for i := 0; i < 5; i++ {
			if err := r.RenewLease(p, "f", RoleTarget, 0); err != nil {
				t.Fatal(err)
			}
		}
		if r.repl.slot != before {
			t.Fatalf("unlogged renewals consumed %d log slots", r.repl.slot-before)
		}
		r.CrashReplica(r.Master())
		if err := r.RenewLease(p, "f", RoleTarget, 0); err != nil {
			t.Fatalf("unlogged renewal after failover: %v", err)
		}
		if r.repl.slot != before {
			t.Fatalf("post-failover unlogged renewal consumed a slot")
		}
		r.ReleaseLease(p, "f", RoleTarget, 0)
		if r.repl.slot == before {
			t.Fatal("release did not commit through the log")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
