package registry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/metrics"
	"dfi/internal/sim"
	"dfi/internal/transport"
)

// Sharded partitions the registry's flow table across N independent
// shards by FNV-1a hash of the flow name. Every flow-scoped operation —
// publish, lookup, lease traffic, sequencer state — touches exactly one
// shard, so control-plane load per shard stays bounded as the flow
// count grows: with O(1000) flows over 16 shards each consensus group
// sees ~1/16 of the lease and publish traffic, and shards can be grown
// independently of data-plane topology. Replicated shards are N
// disjoint Multi-Paxos groups; there is no cross-shard transaction —
// nothing in the flow protocol needs one, because no registry operation
// spans two flows.
//
// Sharded implements core.Registry and the operational surface dfiflow
// drives (Evict, Status, SetEventSink, PublishMetrics), routing each by
// flow name and merging the answers where an aggregate makes sense.
type Sharded struct {
	shards []*Registry
}

// NewSharded builds n standalone shards on k (n clamps to at least 1).
func NewSharded(k *sim.Kernel, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Registry, n)}
	for i := range s.shards {
		s.shards[i] = New(k)
	}
	return s
}

// NewShardedReplicated builds n shards, each its own replication group
// with cfg (disjoint Multi-Paxos logs — a master failover in one shard
// leaves the others untouched).
func NewShardedReplicated(k *sim.Kernel, n int, cfg ReplicaConfig) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Registry, n)}
	for i := range s.shards {
		r, err := NewReplicated(k, cfg)
		if err != nil {
			return nil, fmt.Errorf("registry shard %d: %w", i, err)
		}
		s.shards[i] = r
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns the shard that owns flow — exported so tests and tools
// can assert placement and read per-shard counters.
func (s *Sharded) Shard(flow string) *Registry { return s.shards[s.index(flow)] }

// ShardAt returns shard i directly.
func (s *Sharded) ShardAt(i int) *Registry { return s.shards[i] }

func (s *Sharded) index(flow string) int {
	h := fnv.New32a()
	h.Write([]byte(flow))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// UseFaults installs the plan's Registry* fault knobs on every
// standalone shard (replicated shards take faults via ReplicaConfig).
func (s *Sharded) UseFaults(fp *fabric.FaultPlan) {
	for _, r := range s.shards {
		r.UseFaults(fp)
	}
}

// Publish routes to the owning shard.
func (s *Sharded) Publish(p transport.Ctx, name string, meta any) error {
	return s.Shard(name).Publish(p, name, meta)
}

// Lookup routes to the owning shard.
func (s *Sharded) Lookup(p transport.Ctx, name string) (any, bool) {
	return s.Shard(name).Lookup(p, name)
}

// WaitFlow routes to the owning shard.
func (s *Sharded) WaitFlow(p transport.Ctx, name string) any {
	return s.Shard(name).WaitFlow(p, name)
}

// PublishTarget routes to the owning shard.
func (s *Sharded) PublishTarget(p transport.Ctx, flow string, idx int, info any) error {
	return s.Shard(flow).PublishTarget(p, flow, idx, info)
}

// RepublishTarget routes to the owning shard.
func (s *Sharded) RepublishTarget(p transport.Ctx, flow string, idx int, info any) error {
	return s.Shard(flow).RepublishTarget(p, flow, idx, info)
}

// TargetInfo routes to the owning shard.
func (s *Sharded) TargetInfo(p transport.Ctx, flow string, idx int) (any, bool) {
	return s.Shard(flow).TargetInfo(p, flow, idx)
}

// WaitTarget routes to the owning shard.
func (s *Sharded) WaitTarget(p transport.Ctx, flow string, idx int) any {
	return s.Shard(flow).WaitTarget(p, flow, idx)
}

// WaitTargetLive routes to the owning shard.
func (s *Sharded) WaitTargetLive(p transport.Ctx, flow string, idx int) (any, bool) {
	return s.Shard(flow).WaitTargetLive(p, flow, idx)
}

// Remove routes to the owning shard.
func (s *Sharded) Remove(p transport.Ctx, name string) {
	s.Shard(name).Remove(p, name)
}

// MembershipOf routes to the owning shard.
func (s *Sharded) MembershipOf(name string) *Membership {
	return s.Shard(name).MembershipOf(name)
}

// AcquireLease routes to the owning shard.
func (s *Sharded) AcquireLease(p transport.Ctx, flow string, role Role, idx int, ttl, grace time.Duration) error {
	return s.Shard(flow).AcquireLease(p, flow, role, idx, ttl, grace)
}

// RenewLease routes to the owning shard.
func (s *Sharded) RenewLease(p transport.Ctx, flow string, role Role, idx int) error {
	return s.Shard(flow).RenewLease(p, flow, role, idx)
}

// RenewLeaseBatch groups refs by owning shard and issues one batched
// renewal RPC per shard touched — lease traffic stays O(shards) per
// heartbeat tick, not O(flows). Failed refs from every shard are
// concatenated.
func (s *Sharded) RenewLeaseBatch(p transport.Ctx, refs []LeaseRef) []LeaseRef {
	if len(s.shards) == 1 {
		return s.shards[0].RenewLeaseBatch(p, refs)
	}
	groups := make(map[int][]LeaseRef)
	for _, ref := range refs {
		i := s.index(ref.Flow)
		groups[i] = append(groups[i], ref)
	}
	// Deterministic shard order: sim timing must not depend on map
	// iteration.
	idxs := make([]int, 0, len(groups))
	for i := range groups {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var failed []LeaseRef
	for _, i := range idxs {
		failed = append(failed, s.shards[i].RenewLeaseBatch(p, groups[i])...)
	}
	return failed
}

// ReleaseLease routes to the owning shard.
func (s *Sharded) ReleaseLease(p transport.Ctx, flow string, role Role, idx int) {
	s.Shard(flow).ReleaseLease(p, flow, role, idx)
}

// Evict routes to the owning shard.
func (s *Sharded) Evict(p transport.Ctx, flow string, role Role, idx int) error {
	return s.Shard(flow).Evict(p, flow, role, idx)
}

// Rejoin routes to the owning shard.
func (s *Sharded) Rejoin(p transport.Ctx, flow string, role Role, idx, newIdx int) (Rejoined, error) {
	return s.Shard(flow).Rejoin(p, flow, role, idx, newIdx)
}

// SetWatermark routes to the owning shard.
func (s *Sharded) SetWatermark(p transport.Ctx, flow string, role Role, idx int, watermark uint64) error {
	return s.Shard(flow).SetWatermark(p, flow, role, idx, watermark)
}

// RecordSeqProgress routes to the owning shard.
func (s *Sharded) RecordSeqProgress(p transport.Ctx, flow string, tgt int, highWater uint64, perSource []uint64) error {
	return s.Shard(flow).RecordSeqProgress(p, flow, tgt, highWater, perSource)
}

// RecordSeqSkips routes to the owning shard.
func (s *Sharded) RecordSeqSkips(p transport.Ctx, flow string, epoch uint64, seqs ...uint64) error {
	return s.Shard(flow).RecordSeqSkips(p, flow, epoch, seqs...)
}

// SeqSnapshot routes to the owning shard.
func (s *Sharded) SeqSnapshot(p transport.Ctx, flow string) (SeqSnapshot, bool) {
	return s.Shard(flow).SeqSnapshot(p, flow)
}

// SetEventSink installs sink on every shard (events carry the flow
// name, so a merged stream stays attributable).
func (s *Sharded) SetEventSink(sink metrics.EventSink) {
	for _, r := range s.shards {
		r.SetEventSink(sink)
	}
}

// EventSink returns the sink shared by the shards (the first shard's —
// SetEventSink installs the same one everywhere).
func (s *Sharded) EventSink() metrics.EventSink { return s.shards[0].EventSink() }

// LeaseRenewRPCs sums the renewal round trips across shards.
func (s *Sharded) LeaseRenewRPCs() uint64 {
	var n uint64
	for _, r := range s.shards {
		n += r.LeaseRenewRPCs()
	}
	return n
}

// Status merges the shards' cluster snapshots: flows concatenated and
// re-sorted by name; the replication block is shard 0's, representative
// because every shard runs an identical group configuration (per-shard
// consensus detail is available via ShardAt(i).Status()).
func (s *Sharded) Status() *ClusterStatus {
	merged := &ClusterStatus{}
	for _, r := range s.shards {
		st := r.Status()
		merged.Flows = append(merged.Flows, st.Flows...)
		if merged.Replication == nil {
			merged.Replication = st.Replication
		}
		if st.T > merged.T {
			merged.T = st.T
		}
	}
	sort.Slice(merged.Flows, func(i, j int) bool { return merged.Flows[i].Name < merged.Flows[j].Name })
	return merged
}

// PublishMetrics registers every shard's series on m labeled by shard
// index, plus the aggregate lease-renewal counter.
func (s *Sharded) PublishMetrics(m *metrics.Registry) {
	for i, r := range s.shards {
		r.PublishMetricsLabeled(m, metrics.Labels{"shard": fmt.Sprintf("%d", i)})
	}
	m.RegisterCounterFunc("dfi_registry_lease_renew_rpcs_all_shards_total",
		"Lease-renewal round trips summed over registry shards.", nil,
		func() float64 { return float64(s.LeaseRenewRPCs()) })
}