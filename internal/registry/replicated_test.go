package registry

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

func TestReplicatedValidation(t *testing.T) {
	k := sim.New(1)
	for _, n := range []int{1, 2, 4} {
		if _, err := NewReplicated(k, ReplicaConfig{Replicas: n}); err == nil {
			t.Errorf("replica count %d accepted", n)
		}
	}
	r, err := NewReplicated(k, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 3 || r.Master() != 0 || r.Ballot() != 1 {
		t.Fatalf("defaults: replicas=%d master=%d ballot=%d", r.Replicas(), r.Master(), r.Ballot())
	}
}

func TestReplicatedPublishLookup(t *testing.T) {
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "f", "meta"); err != nil {
			t.Fatal(err)
		}
		if err := r.Publish(p, "f", "again"); err == nil {
			t.Error("duplicate publish accepted")
		}
		m, ok := r.Lookup(p, "f")
		if !ok || m.(string) != "meta" {
			t.Errorf("Lookup = %v, %v", m, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Elections() != 0 {
		t.Errorf("elections = %d on a healthy group", r.Elections())
	}
}

func TestReplicatedMasterFailover(t *testing.T) {
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "before", nil); err != nil {
			t.Fatal(err)
		}
		r.CrashReplica(0)
		// The next command finds the master dead, elects replica 1 at a
		// higher ballot, and commits there.
		if err := r.Publish(p, "after", nil); err != nil {
			t.Fatalf("publish after master crash: %v", err)
		}
		if _, ok := r.Lookup(p, "before"); !ok {
			t.Error("pre-crash flow lost across failover")
		}
		if _, ok := r.Lookup(p, "after"); !ok {
			t.Error("post-crash flow missing")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Master() != 1 {
		t.Errorf("master = %d, want 1 (lowest-index live replica)", r.Master())
	}
	if r.Ballot() < 2 {
		t.Errorf("ballot = %d, want ≥ 2 after failover", r.Ballot())
	}
	if r.Elections() != 1 {
		t.Errorf("elections = %d, want 1", r.Elections())
	}
}

func TestReplicatedMajorityLossUnavailable(t *testing.T) {
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{RPCDelay: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		r.CrashReplica(0)
		r.CrashReplica(1)
		if err := r.Publish(p, "f", nil); err == nil {
			t.Error("publish committed without a majority")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedIdempotentRetryUnderDrop(t *testing.T) {
	// Lost RPC legs force retries of the same command id; the applied
	// table must deduplicate so a Publish whose reply was dropped does not
	// come back as "already published".
	k := sim.New(7)
	r, err := NewReplicated(k, ReplicaConfig{
		RPCDelay: time.Microsecond,
		Faults:   &fabric.FaultPlan{RegistryDrop: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	const flows = 40
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < flows; i++ {
			name := fmt.Sprintf("flow%d", i)
			if err := r.Publish(p, name, i); err != nil {
				t.Fatalf("publish %s: %v", name, err)
			}
			if err := r.PublishTarget(p, name, 0, "ring"); err != nil {
				t.Fatalf("publish target %s: %v", name, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Flows() != flows {
		t.Fatalf("flows = %d, want %d", r.Flows(), flows)
	}
}

func TestReplicatedCrashMasterFault(t *testing.T) {
	// The fault plan's RegistryCrashMaster knob kills the master at a
	// virtual time; a command arriving after it must fail over.
	k := sim.New(1)
	r, err := NewReplicated(k, ReplicaConfig{
		RPCDelay: time.Microsecond,
		Faults:   &fabric.FaultPlan{RegistryCrashMaster: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("p", func(p *sim.Proc) {
		if err := r.Publish(p, "early", nil); err != nil {
			t.Fatal(err)
		}
		p.Sleep(20 * time.Microsecond)
		if err := r.Publish(p, "late", nil); err != nil {
			t.Fatalf("publish after scheduled master crash: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Master() == 0 || r.Elections() == 0 {
		t.Fatalf("master = %d elections = %d; crash fault did not fail over", r.Master(), r.Elections())
	}
}
