package registry

import (
	"fmt"
	"time"

	"dfi/internal/consensus/log"
	"dfi/internal/fabric"
	"dfi/internal/metrics"
	"dfi/internal/sim"
	"dfi/internal/transport"
)

// Replicated registry: the metadata store as a small replicated state
// machine over a Multi-Paxos log (dogfooding the paper's §6.3 use case
// for DFI's own control plane). The Registry handle stays the client
// API; what changes is how mutations commit:
//
//   - every mutating call (Publish, PublishTarget, Remove, Evict) is a
//     numbered command the current master appends to the log with one
//     Accept round — a majority of acceptors must accept under the
//     master's ballot before the command applies;
//   - a client whose RPC leg or reply is lost retries the same command
//     id; the applied-table (replicated alongside the state machine)
//     deduplicates, so retries are idempotent — a Publish whose reply
//     was lost does not turn into "already published" on retry;
//   - when the master crashes, the retrying client triggers an election:
//     the lowest-index live replica runs Promise on the next ballot and
//     becomes master once a majority promises. Ballot fencing (see
//     consensus/log) makes any in-flight Accept of the deposed master
//     fail at the same majority, so the old and new master cannot both
//     commit in the same slot;
//   - reads (Lookup, WaitFlow, WaitTarget) are served by any replica and
//     need no log round — the standard lease-free read relaxation,
//     acceptable here because flow setup rendezvous is idempotent and
//     level-triggered (waiters just keep waiting until the entry shows).
//     Lease operations (Acquire/Renew/Release, see lease.go) are logged
//     commands like every other mutation, so lease state survives a
//     master failover; ReplicaConfig.UnloggedRenew opts heartbeat
//     renewals out of the log round as an explicit relaxation;
//   - every SnapshotEvery committed commands the master snapshots the
//     registry state machine (snapshot.go), installs the snapshot on the
//     live acceptors, and truncates their logs and the applied-table
//     below the snapshot index, so neither grows without bound
//     (snapshot-plus-truncate compaction). A crashed replica brought
//     back with RecoverReplica catches up from the snapshot plus the
//     retained log suffix — the install-snapshot path.
//
// The acceptors are plain state machines (consensus/log); the message
// legs between client, master and replicas are charged as simulated
// RPC delays subject to the plan's Registry* faults, not as fabric
// messages — consistent with how the registry has always modelled its
// RPCs (see the package comment). Snapshot installs and catch-up
// transfers additionally charge a size-proportional serialization cost
// (snapshotByteCost per encoded byte).

// ReplicaConfig configures NewReplicated.
type ReplicaConfig struct {
	// Replicas is the group size; odd, at least 3 (default 3).
	Replicas int

	// RPCDelay is the per-leg latency between client, master and
	// replicas (also installed as the handle's RPCDelay).
	RPCDelay time.Duration

	// RetryTimeout overrides the client's retry timeout (see
	// Registry.RetryTimeout).
	RetryTimeout time.Duration

	// Faults subjects registry RPCs to the plan's Registry* knobs,
	// including RegistryCrashMaster.
	Faults *fabric.FaultPlan

	// SnapshotEvery is the applied-index cadence of state-machine
	// snapshots: after this many committed commands the master
	// serializes the registry state, installs it on the live acceptors,
	// and truncates their logs and the applied-table below the snapshot
	// index. 0 selects DefaultSnapshotEvery; a negative value disables
	// compaction (the log and applied-table then grow without bound).
	SnapshotEvery int

	// UnloggedRenew serves RenewLease as a plain master RPC without a
	// log round. This is an explicit relaxation for high-rate heartbeat
	// traffic: a renewal that commits only on the master can be lost by
	// a failover, after which the slot must survive on its remaining TTL
	// budget (the TTL/3 heartbeat cadence leaves two renewals of slack
	// before Suspect). Acquire and Release always commit through the
	// log. Off by default: all lease operations are logged.
	UnloggedRenew bool
}

// DefaultSnapshotEvery is the snapshot cadence used when
// ReplicaConfig.SnapshotEvery is zero.
const DefaultSnapshotEvery = 64

// snapshotByteCost is the charged serialization cost per encoded
// snapshot byte for installs and catch-up transfers (≈1 GB/s on the
// control path — deliberately far below fabric link speed; snapshots
// travel the same commodity path as registry RPCs).
const snapshotByteCost = time.Nanosecond

// invokeAttempts bounds one command's retries before the registry is
// declared unavailable (e.g. a majority of replicas crashed).
const invokeAttempts = 16

// replGroup is the replica group behind a replicated Registry.
type replGroup struct {
	r   *Registry
	cfg ReplicaConfig

	acceptors []*log.Acceptor
	crashed   []bool
	master    int
	ballot    uint64
	slot      int // next free log slot on the master

	applied     map[uint64]error // command id → outcome (idempotent retry)
	appliedSlot map[uint64]int   // command id → committed slot (for pruning)
	nextOp      uint64

	snapEvery int          // snapshot cadence (≤ 0: disabled)
	snap      log.Snapshot // group's latest snapshot
	snapCount int

	crashDone bool // RegistryCrashMaster already applied
	elections int
}

// NewReplicated creates a registry whose mutations commit through a
// Multi-Paxos log across cfg.Replicas acceptors. The first replica
// starts as master at ballot 1 (promised by all, the usual bootstrap).
func NewReplicated(k *sim.Kernel, cfg ReplicaConfig) (*Registry, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas < 3 || cfg.Replicas%2 == 0 {
		return nil, fmt.Errorf("registry: replica count %d must be odd and ≥ 3", cfg.Replicas)
	}
	r := New(k)
	r.RPCDelay = cfg.RPCDelay
	r.RetryTimeout = cfg.RetryTimeout
	r.faults = cfg.Faults
	snapEvery := cfg.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = DefaultSnapshotEvery
	}
	g := &replGroup{
		r:           r,
		cfg:         cfg,
		crashed:     make([]bool, cfg.Replicas),
		master:      0,
		ballot:      1,
		applied:     make(map[uint64]error),
		appliedSlot: make(map[uint64]int),
		snapEvery:   snapEvery,
	}
	for i := 0; i < cfg.Replicas; i++ {
		a := log.NewAcceptor(i)
		a.Promise(1)
		g.acceptors = append(g.acceptors, a)
	}
	r.repl = g
	return r, nil
}

// Master returns the current master replica index (-1 standalone).
func (r *Registry) Master() int {
	if r.repl == nil {
		return -1
	}
	return r.repl.master
}

// Ballot returns the current master's ballot (0 standalone).
func (r *Registry) Ballot() uint64 {
	if r.repl == nil {
		return 0
	}
	return r.repl.ballot
}

// Elections returns how many failovers the group has performed.
func (r *Registry) Elections() int {
	if r.repl == nil {
		return 0
	}
	return r.repl.elections
}

// Replicas returns the group size (0 standalone).
func (r *Registry) Replicas() int {
	if r.repl == nil {
		return 0
	}
	return len(r.repl.acceptors)
}

// SnapshotIndex returns the applied index covered by the group's latest
// snapshot (0: never snapshotted, or standalone).
func (r *Registry) SnapshotIndex() int {
	if r.repl == nil {
		return 0
	}
	return r.repl.snap.Index
}

// Snapshots returns how many snapshots the group has taken.
func (r *Registry) Snapshots() int {
	if r.repl == nil {
		return 0
	}
	return r.repl.snapCount
}

// LogLen returns the largest retained acceptor log across the live
// replicas — the quantity compaction bounds (≤ cadence + in-flight
// slack once snapshotting is enabled). 0 standalone.
func (r *Registry) LogLen() int {
	if r.repl == nil {
		return 0
	}
	max := 0
	for i, a := range r.repl.acceptors {
		if r.repl.crashed[i] {
			continue
		}
		if a.Len() > max {
			max = a.Len()
		}
	}
	return max
}

// AppliedSize returns the number of retained applied-table entries
// (command outcomes kept for idempotent retry); compaction prunes the
// entries whose slots the snapshot covers. 0 standalone.
func (r *Registry) AppliedSize() int {
	if r.repl == nil {
		return 0
	}
	return len(r.repl.applied)
}

// CrashReplica crashes replica i at the current instant: it stops
// answering promises, accepts and client RPCs. Crashing the master
// leaves clients to trigger the failover on their next command.
func (r *Registry) CrashReplica(i int) {
	if r.repl != nil && i >= 0 && i < len(r.repl.crashed) {
		r.repl.crashed[i] = true
	}
}

// RecoverReplica restarts crashed replica i and catches it up through
// the install-snapshot path: the group's latest snapshot is installed
// on its acceptor (truncating whatever stale prefix it retained), and
// the retained log suffix is replayed from the most advanced live peer
// under the current ballot. The catch-up is charged as one round trip
// plus the size-proportional snapshot transfer. If the master is down,
// the recovered replica takes part in the next election like any live
// one (elections stay lazy — the next command triggers them).
func (r *Registry) RecoverReplica(p transport.Ctx, i int) error {
	g := r.repl
	if g == nil {
		return fmt.Errorf("registry: standalone registry has no replicas")
	}
	if i < 0 || i >= len(g.crashed) {
		return fmt.Errorf("registry: no replica %d", i)
	}
	if !g.crashed[i] {
		return fmt.Errorf("registry: replica %d is not crashed", i)
	}
	g.crashed[i] = false
	// Catch up from the most advanced live peer (the master when alive).
	var src *log.Acceptor
	for j, a := range g.acceptors {
		if j == i || g.crashed[j] {
			continue
		}
		if src == nil || a.NextSlot() > src.NextSlot() {
			src = a
		}
	}
	if src == nil {
		return nil // sole survivor: nothing to catch up from
	}
	rec := g.acceptors[i]
	transferred := 0
	if g.snap.Index > rec.FirstSlot() {
		rec.CompactTo(g.snap)
		transferred = len(g.snap.State)
	}
	for slot := src.FirstSlot(); slot < src.NextSlot(); slot++ {
		if e, ok := src.Accepted(slot); ok {
			rec.Accept(g.ballot, slot, e.Cmd)
		}
	}
	p.Sleep(2*g.legDelay(p) + time.Duration(transferred)*snapshotByteCost)
	return nil
}

// maybeCrashMaster applies the fault plan's RegistryCrashMaster once its
// virtual time has passed. Applied lazily on the next RPC — the effect
// is indistinguishable from an asynchronous crash, and it leaves no
// standing timer to keep an otherwise-finished simulation alive.
func (g *replGroup) maybeCrashMaster(p transport.Ctx) {
	fp := g.cfg.Faults
	if fp == nil || g.crashDone || fp.RegistryCrashMaster <= 0 {
		return
	}
	if p.Now() >= fp.RegistryCrashMaster {
		g.crashed[g.master] = true
		g.crashDone = true
	}
}

// legDelay is the one-way client↔replica / master↔replica latency under
// the current fault plan (jitter drawn per call).
func (g *replGroup) legDelay(p transport.Ctx) time.Duration {
	d := g.cfg.RPCDelay
	if fp := g.cfg.Faults; fp != nil {
		d += fp.RegistryDelay
		if fp.RegistryJitter > 0 {
			d += time.Duration(p.Rand().Int63n(int64(fp.RegistryJitter)))
		}
	}
	return d
}

// dropLeg draws whether one message leg is lost.
func (g *replGroup) dropLeg(p transport.Ctx) bool {
	fp := g.cfg.Faults
	return fp != nil && fp.RegistryDrop > 0 && p.Rand().Float64() < fp.RegistryDrop
}

// leg charges one round trip to replica i and reports whether it got
// through; a failed leg costs the retry timeout.
func (g *replGroup) leg(p transport.Ctx, i int) bool {
	p.Sleep(g.legDelay(p))
	if g.crashed[i] || g.dropLeg(p) {
		p.Sleep(g.r.retryTimeout())
		return false
	}
	p.Sleep(g.legDelay(p))
	return true
}

// invoke commits one mutating command through the log and applies it.
func (g *replGroup) invoke(p transport.Ctx, op func() error) error {
	g.maybeCrashMaster(p)
	id := g.nextOp
	g.nextOp++
	for attempt := 0; attempt < invokeAttempts; attempt++ {
		g.maybeCrashMaster(p)
		// Client → master round trip. A dead master is detected by the
		// lost leg; the client then kicks the election and retries.
		if !g.leg(p, g.master) {
			if g.crashed[g.master] {
				g.elect(p)
			}
			continue
		}
		// The command may have committed on an earlier attempt whose
		// reply was lost: the applied-table answers instead of
		// re-executing (exactly-once above an at-least-once RPC).
		if err, done := g.applied[id]; done {
			return err
		}
		if !g.commit(p, id) {
			// No majority under our ballot: the master was deposed (or
			// too many replicas are gone). Re-elect and retry.
			g.elect(p)
			continue
		}
		err := op()
		g.applied[id] = err
		g.appliedSlot[id] = g.slot - 1
		g.maybeSnapshot(p)
		return err
	}
	return fmt.Errorf("registry: unavailable (command not committed after %d attempts)", invokeAttempts)
}

// maybeSnapshot compacts the log once the applied index has advanced a
// full cadence past the last snapshot: the master serializes the
// registry state machine, installs the snapshot on every live acceptor
// (truncating their logs below the snapshot index), and prunes the
// applied-table entries whose slots the snapshot covers. Pruning is
// safe because a command id is only retried inside its own invoke loop:
// by the time a further snapshot-cadence of commands has committed, the
// invoke that minted the id has long returned. The round is charged to
// the in-flight client like an election is: one master→replica round
// trip plus the size-proportional transfer.
func (g *replGroup) maybeSnapshot(p transport.Ctx) {
	if g.snapEvery <= 0 || g.slot-g.snap.Index < g.snapEvery {
		return
	}
	state := g.r.captureState().encode()
	g.snap = log.Snapshot{Index: g.slot, State: state}
	g.snapCount++
	g.r.emit(metrics.Event{Type: metrics.EvSnapshot, Seq: uint64(g.snap.Index),
		Bytes: uint64(len(state)), Detail: "registry state snapshot; log compacted"})
	for i, a := range g.acceptors {
		if g.crashed[i] {
			continue // recovers later via the install-snapshot path
		}
		if i != g.master && g.dropLeg(p) {
			continue // missed install; the next cadence covers it
		}
		a.CompactTo(g.snap)
	}
	p.Sleep(2*g.legDelay(p) + time.Duration(len(state))*snapshotByteCost)
	for id, slot := range g.appliedSlot {
		if slot < g.snap.Index {
			delete(g.appliedSlot, id)
			delete(g.applied, id)
		}
	}
}

// commit runs one Accept round for the next log slot under the master's
// ballot: all live replicas are asked in parallel (one round-trip
// charge), and the slot commits when a majority of the full group —
// master included — accepts.
func (g *replGroup) commit(p transport.Ctx, cmd uint64) bool {
	slot := g.slot
	acks := 0
	for i, a := range g.acceptors {
		if g.crashed[i] {
			continue
		}
		if i != g.master && g.dropLeg(p) {
			continue // this follower's accept or ack was lost
		}
		if a.Accept(g.ballot, slot, cmd) {
			acks++
		}
	}
	p.Sleep(2 * g.legDelay(p))
	if 2*acks <= len(g.acceptors) {
		return false
	}
	g.slot = slot + 1
	return true
}

// elect promotes the lowest-index live replica: one Promise round on the
// next ballot, repeated at higher ballots until a majority of the group
// promises (drops can defeat a round). The new master adopts the first
// slot past every accepted entry a promiser reported, so it cannot
// overwrite a command the deposed master already got majority-accepted.
func (g *replGroup) elect(p transport.Ctx) {
	cand, live := -1, 0
	for i := range g.acceptors {
		if !g.crashed[i] {
			live++
			if cand == -1 {
				cand = i
			}
		}
	}
	if 2*live <= len(g.acceptors) {
		return // no live majority can promise; invoke() exhausts its attempts
	}
	for {
		b := g.ballot + 1
		// The floor on next is the group's snapshot index: compacted slots
		// were chosen and applied even though no promiser retains entries
		// to witness them (the snapshot metadata travels with the
		// snapshot), so a new master must never place commands below it.
		promises, next := 0, g.snap.Index
		for i, a := range g.acceptors {
			if g.crashed[i] {
				continue
			}
			if i != cand && g.dropLeg(p) {
				continue
			}
			if ok, n := a.Promise(b); ok {
				promises++
				if n > next {
					next = n
				}
			}
		}
		p.Sleep(2 * g.legDelay(p))
		g.ballot = b
		if 2*promises > len(g.acceptors) {
			g.master = cand
			g.slot = next
			g.elections++
			g.r.emit(metrics.Event{Type: metrics.EvElection, Seq: b,
				Detail: fmt.Sprintf("replica %d elected master at ballot %d", cand, b)})
			g.r.statusChanged()
			return
		}
		if g.crashed[cand] { // crashed mid-election (fault plan time passed)
			return
		}
	}
}
