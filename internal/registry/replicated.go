package registry

import (
	"fmt"
	"time"

	"dfi/internal/consensus/log"
	"dfi/internal/fabric"
	"dfi/internal/sim"
)

// Replicated registry: the metadata store as a small replicated state
// machine over a Multi-Paxos log (dogfooding the paper's §6.3 use case
// for DFI's own control plane). The Registry handle stays the client
// API; what changes is how mutations commit:
//
//   - every mutating call (Publish, PublishTarget, Remove, Evict) is a
//     numbered command the current master appends to the log with one
//     Accept round — a majority of acceptors must accept under the
//     master's ballot before the command applies;
//   - a client whose RPC leg or reply is lost retries the same command
//     id; the applied-table (replicated alongside the state machine)
//     deduplicates, so retries are idempotent — a Publish whose reply
//     was lost does not turn into "already published" on retry;
//   - when the master crashes, the retrying client triggers an election:
//     the lowest-index live replica runs Promise on the next ballot and
//     becomes master once a majority promises. Ballot fencing (see
//     consensus/log) makes any in-flight Accept of the deposed master
//     fail at the same majority, so the old and new master cannot both
//     commit in the same slot;
//   - reads (Lookup, WaitFlow, WaitTarget) are served by any replica and
//     need no log round — the standard lease-free read relaxation,
//     acceptable here because flow setup rendezvous is idempotent and
//     level-triggered (waiters just keep waiting until the entry shows).
//
// The acceptors are plain state machines (consensus/log); the message
// legs between client, master and replicas are charged as simulated
// RPC delays subject to the plan's Registry* faults, not as fabric
// messages — consistent with how the registry has always modelled its
// RPCs (see the package comment).

// ReplicaConfig configures NewReplicated.
type ReplicaConfig struct {
	// Replicas is the group size; odd, at least 3 (default 3).
	Replicas int

	// RPCDelay is the per-leg latency between client, master and
	// replicas (also installed as the handle's RPCDelay).
	RPCDelay time.Duration

	// RetryTimeout overrides the client's retry timeout (see
	// Registry.RetryTimeout).
	RetryTimeout time.Duration

	// Faults subjects registry RPCs to the plan's Registry* knobs,
	// including RegistryCrashMaster.
	Faults *fabric.FaultPlan
}

// invokeAttempts bounds one command's retries before the registry is
// declared unavailable (e.g. a majority of replicas crashed).
const invokeAttempts = 16

// replGroup is the replica group behind a replicated Registry.
type replGroup struct {
	r   *Registry
	cfg ReplicaConfig

	acceptors []*log.Acceptor
	crashed   []bool
	master    int
	ballot    uint64
	slot      int // next free log slot on the master

	applied map[uint64]error // command id → outcome (idempotent retry)
	nextOp  uint64

	crashDone bool // RegistryCrashMaster already applied
	elections int
}

// NewReplicated creates a registry whose mutations commit through a
// Multi-Paxos log across cfg.Replicas acceptors. The first replica
// starts as master at ballot 1 (promised by all, the usual bootstrap).
func NewReplicated(k *sim.Kernel, cfg ReplicaConfig) (*Registry, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas < 3 || cfg.Replicas%2 == 0 {
		return nil, fmt.Errorf("registry: replica count %d must be odd and ≥ 3", cfg.Replicas)
	}
	r := New(k)
	r.RPCDelay = cfg.RPCDelay
	r.RetryTimeout = cfg.RetryTimeout
	r.faults = cfg.Faults
	g := &replGroup{
		r:       r,
		cfg:     cfg,
		crashed: make([]bool, cfg.Replicas),
		master:  0,
		ballot:  1,
		applied: make(map[uint64]error),
	}
	for i := 0; i < cfg.Replicas; i++ {
		a := log.NewAcceptor(i)
		a.Promise(1)
		g.acceptors = append(g.acceptors, a)
	}
	r.repl = g
	return r, nil
}

// Master returns the current master replica index (-1 standalone).
func (r *Registry) Master() int {
	if r.repl == nil {
		return -1
	}
	return r.repl.master
}

// Ballot returns the current master's ballot (0 standalone).
func (r *Registry) Ballot() uint64 {
	if r.repl == nil {
		return 0
	}
	return r.repl.ballot
}

// Elections returns how many failovers the group has performed.
func (r *Registry) Elections() int {
	if r.repl == nil {
		return 0
	}
	return r.repl.elections
}

// Replicas returns the group size (0 standalone).
func (r *Registry) Replicas() int {
	if r.repl == nil {
		return 0
	}
	return len(r.repl.acceptors)
}

// CrashReplica crashes replica i at the current instant: it stops
// answering promises, accepts and client RPCs. Crashing the master
// leaves clients to trigger the failover on their next command.
func (r *Registry) CrashReplica(i int) {
	if r.repl != nil && i >= 0 && i < len(r.repl.crashed) {
		r.repl.crashed[i] = true
	}
}

// maybeCrashMaster applies the fault plan's RegistryCrashMaster once its
// virtual time has passed. Applied lazily on the next RPC — the effect
// is indistinguishable from an asynchronous crash, and it leaves no
// standing timer to keep an otherwise-finished simulation alive.
func (g *replGroup) maybeCrashMaster(p *sim.Proc) {
	fp := g.cfg.Faults
	if fp == nil || g.crashDone || fp.RegistryCrashMaster <= 0 {
		return
	}
	if p.Now() >= fp.RegistryCrashMaster {
		g.crashed[g.master] = true
		g.crashDone = true
	}
}

// legDelay is the one-way client↔replica / master↔replica latency under
// the current fault plan (jitter drawn per call).
func (g *replGroup) legDelay(p *sim.Proc) time.Duration {
	d := g.cfg.RPCDelay
	if fp := g.cfg.Faults; fp != nil {
		d += fp.RegistryDelay
		if fp.RegistryJitter > 0 {
			d += time.Duration(p.Rand().Int63n(int64(fp.RegistryJitter)))
		}
	}
	return d
}

// dropLeg draws whether one message leg is lost.
func (g *replGroup) dropLeg(p *sim.Proc) bool {
	fp := g.cfg.Faults
	return fp != nil && fp.RegistryDrop > 0 && p.Rand().Float64() < fp.RegistryDrop
}

// leg charges one round trip to replica i and reports whether it got
// through; a failed leg costs the retry timeout.
func (g *replGroup) leg(p *sim.Proc, i int) bool {
	p.Sleep(g.legDelay(p))
	if g.crashed[i] || g.dropLeg(p) {
		p.Sleep(g.r.retryTimeout())
		return false
	}
	p.Sleep(g.legDelay(p))
	return true
}

// invoke commits one mutating command through the log and applies it.
func (g *replGroup) invoke(p *sim.Proc, op func() error) error {
	g.maybeCrashMaster(p)
	id := g.nextOp
	g.nextOp++
	for attempt := 0; attempt < invokeAttempts; attempt++ {
		g.maybeCrashMaster(p)
		// Client → master round trip. A dead master is detected by the
		// lost leg; the client then kicks the election and retries.
		if !g.leg(p, g.master) {
			if g.crashed[g.master] {
				g.elect(p)
			}
			continue
		}
		// The command may have committed on an earlier attempt whose
		// reply was lost: the applied-table answers instead of
		// re-executing (exactly-once above an at-least-once RPC).
		if err, done := g.applied[id]; done {
			return err
		}
		if !g.commit(p, id) {
			// No majority under our ballot: the master was deposed (or
			// too many replicas are gone). Re-elect and retry.
			g.elect(p)
			continue
		}
		err := op()
		g.applied[id] = err
		return err
	}
	return fmt.Errorf("registry: unavailable (command not committed after %d attempts)", invokeAttempts)
}

// commit runs one Accept round for the next log slot under the master's
// ballot: all live replicas are asked in parallel (one round-trip
// charge), and the slot commits when a majority of the full group —
// master included — accepts.
func (g *replGroup) commit(p *sim.Proc, cmd uint64) bool {
	slot := g.slot
	acks := 0
	for i, a := range g.acceptors {
		if g.crashed[i] {
			continue
		}
		if i != g.master && g.dropLeg(p) {
			continue // this follower's accept or ack was lost
		}
		if a.Accept(g.ballot, slot, cmd) {
			acks++
		}
	}
	p.Sleep(2 * g.legDelay(p))
	if 2*acks <= len(g.acceptors) {
		return false
	}
	g.slot = slot + 1
	return true
}

// elect promotes the lowest-index live replica: one Promise round on the
// next ballot, repeated at higher ballots until a majority of the group
// promises (drops can defeat a round). The new master adopts the first
// slot past every accepted entry a promiser reported, so it cannot
// overwrite a command the deposed master already got majority-accepted.
func (g *replGroup) elect(p *sim.Proc) {
	cand, live := -1, 0
	for i := range g.acceptors {
		if !g.crashed[i] {
			live++
			if cand == -1 {
				cand = i
			}
		}
	}
	if 2*live <= len(g.acceptors) {
		return // no live majority can promise; invoke() exhausts its attempts
	}
	for {
		b := g.ballot + 1
		promises, next := 0, 0
		for i, a := range g.acceptors {
			if g.crashed[i] {
				continue
			}
			if i != cand && g.dropLeg(p) {
				continue
			}
			if ok, n := a.Promise(b); ok {
				promises++
				if n > next {
					next = n
				}
			}
		}
		p.Sleep(2 * g.legDelay(p))
		g.ballot = b
		if 2*promises > len(g.acceptors) {
			g.master = cand
			g.slot = next
			g.elections++
			return
		}
		if g.crashed[cand] { // crashed mid-election (fault plan time passed)
			return
		}
	}
}
