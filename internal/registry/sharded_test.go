package registry

import (
	"fmt"
	"testing"

	"dfi/internal/sim"
)

// TestShardedRouting pins the shard map: flows land on their FNV shard,
// every flow-scoped operation round-trips through the owning shard, and
// a flow published through the Sharded handle is invisible to the other
// shards.
func TestShardedRouting(t *testing.T) {
	k := sim.New(1)
	s := NewSharded(k, 4)
	const nFlows = 32
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < nFlows; i++ {
			name := fmt.Sprintf("flow%d", i)
			if err := s.Publish(p, name, i); err != nil {
				t.Fatal(err)
			}
			meta, ok := s.Lookup(p, name)
			if !ok || meta.(int) != i {
				t.Fatalf("lookup %s: got %v,%v", name, meta, ok)
			}
			own := s.Shard(name)
			if _, ok := own.Lookup(p, name); !ok {
				t.Fatalf("owning shard cannot see %s", name)
			}
			for j := 0; j < s.Shards(); j++ {
				if sh := s.ShardAt(j); sh != own {
					if _, ok := sh.Lookup(p, name); ok {
						t.Fatalf("%s leaked onto a foreign shard", name)
					}
				}
			}
		}
	})
	k.Run()

	// All shards should own a share: 32 flows over 4 shards misses a
	// shard only under a badly skewed hash.
	k2 := sim.New(1)
	k2.Spawn("count", func(p *sim.Proc) {
		for j := 0; j < s.Shards(); j++ {
			if n := len(s.ShardAt(j).Status().Flows); n == 0 {
				t.Errorf("shard %d owns no flows out of %d", j, nFlows)
			}
		}
	})
	k2.Run()
}

// TestShardedRenewLeaseBatch pins the batched-renewal cost model on a
// sharded registry: one batch covering flows on all shards costs one
// renewal RPC per shard touched (not per slot), fenced slots come back
// as failures, and the live ones really renewed (no eviction after a
// TTL of silence plus the batch).
func TestShardedRenewLeaseBatch(t *testing.T) {
	k := sim.New(1)
	s := NewSharded(k, 4)
	const nFlows = 12
	k.Spawn("driver", func(p *sim.Proc) {
		var refs []LeaseRef
		for i := 0; i < nFlows; i++ {
			name := fmt.Sprintf("bf%d", i)
			if err := s.Publish(p, name, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.AcquireLease(p, name, RoleSource, 0, ttl, grace); err != nil {
				t.Fatal(err)
			}
			refs = append(refs, LeaseRef{Flow: name, Role: RoleSource, Idx: 0})
		}
		before := s.LeaseRenewRPCs()
		failed := s.RenewLeaseBatch(p, refs)
		if len(failed) != 0 {
			t.Fatalf("renewing %d live leases failed %d: %v", nFlows, len(failed), failed)
		}
		cost := s.LeaseRenewRPCs() - before
		if cost > uint64(s.Shards()) {
			t.Fatalf("batch renewal cost %d RPCs for %d slots; want at most %d (one per shard)", cost, nFlows, s.Shards())
		}

		// Fence one slot and include an unknown flow: both must come back
		// failed while the rest still renew.
		if err := s.Evict(p, "bf0", RoleSource, 0); err != nil {
			t.Fatal(err)
		}
		bad := append([]LeaseRef{{Flow: "nosuch", Role: RoleSource, Idx: 0}}, refs...)
		failed = s.RenewLeaseBatch(p, bad)
		if len(failed) != 2 {
			t.Fatalf("want 2 failed refs (fenced + unknown), got %v", failed)
		}

		// The surviving leases must have been armed by the batch: sleep
		// most of a TTL, batch-renew, sleep again — nothing evicts.
		for rounds := 0; rounds < 3; rounds++ {
			p.Sleep(ttl / 2)
			s.RenewLeaseBatch(p, refs[1:])
		}
		for _, ref := range refs[1:] {
			if st := s.MembershipOf(ref.Flow).State(RoleSource, 0); st != StateActive {
				t.Fatalf("flow %s state %v after batched renewals, want active", ref.Flow, st)
			}
		}
	})
	k.Run()
}

// TestShardedStatusMerge checks the merged snapshot covers every shard's
// flows, sorted by name.
func TestShardedStatusMerge(t *testing.T) {
	k := sim.New(1)
	s := NewSharded(k, 3)
	k.Spawn("driver", func(p *sim.Proc) {
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if err := s.Publish(p, name, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	k.Run()
	st := s.Status()
	if len(st.Flows) != 3 {
		t.Fatalf("merged status has %d flows, want 3", len(st.Flows))
	}
	for i := 1; i < len(st.Flows); i++ {
		if st.Flows[i-1].Name > st.Flows[i].Name {
			t.Fatalf("merged flows unsorted: %v", st.Flows)
		}
	}
	// Replicated shards: the merge carries a replication block.
	k2 := sim.New(1)
	sr, err := NewShardedReplicated(k2, 2, ReplicaConfig{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	k2.Spawn("driver", func(p *sim.Proc) {
		if err := sr.Publish(p, "r", nil); err != nil {
			t.Fatal(err)
		}
	})
	k2.Run()
	if sr.Status().Replication == nil {
		t.Fatal("sharded replicated status lost the replication block")
	}
}
