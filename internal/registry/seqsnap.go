package registry

import (
	"fmt"
	"sort"

	"dfi/internal/metrics"
	"dfi/internal/transport"
)

// Sequencer recovery state for ordered multicast replicate flows.
//
// The sequencer itself is one fetch-add counter on a data node, but
// recovering a rejoining target needs more than the counter: the flow's
// delivery high-water, the per-source delivery counts (to restore credit
// accounting) and the set of sequence numbers the live targets agreed
// can never be filled (a crashed source took their only copies). Targets
// record this state here — piggybacked on the control plane, never on
// the data path — and a rejoiner installs the registry's merged view as
// a snapshot instead of replaying the stream.

// seqState is the per-flow sequencer record held on the registry entry.
type seqState struct {
	highWater uint64          // max nextGlobal any live target reported
	perSource []uint64        // delivered-count per source at highWater
	skips     map[uint64]bool // agreed-unfillable sequence numbers
}

// SeqSnapshot is the installable copy handed to a rejoining target.
type SeqSnapshot struct {
	HighWater uint64   // resume delivery at this global sequence number
	PerSource []uint64 // delivered count per source slot
	Skips     []uint64 // agreed-skip set, ascending
}

// RecordSeqProgress merges a target's delivery progress into the flow's
// sequencer record: the high-water only moves forward, and the
// per-source counts follow the report that owns the highest water (they
// must stay mutually consistent, so they are not merged element-wise).
// Reports from an evicted target slot are refused — the same fence that
// protects watermarks from a wedged endpoint's late writes.
func (r *Registry) RecordSeqProgress(p transport.Ctx, flow string, tgt int, highWater uint64, perSource []uint64) error {
	return r.invoke(p, func() error {
		e, ok := r.flows[flow]
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		if e.mem != nil && e.mem.TargetEvicted(tgt) {
			return fmt.Errorf("registry: target %d of flow %q was evicted; progress refused", tgt, flow)
		}
		s := e.seqEnsure()
		if highWater > s.highWater {
			s.highWater = highWater
			s.perSource = append(s.perSource[:0], perSource...)
		}
		return nil
	})
}

// RecordSeqSkips adds sequence numbers the live targets agreed are
// unfillable to the flow's skip set and emits one gap_agreement event
// per newly recorded sequence. Idempotent per sequence number, so every
// participant of an agreement round may record the verdict.
func (r *Registry) RecordSeqSkips(p transport.Ctx, flow string, epoch uint64, seqs ...uint64) error {
	return r.invoke(p, func() error {
		e, ok := r.flows[flow]
		if !ok {
			return fmt.Errorf("registry: flow %q not published", flow)
		}
		s := e.seqEnsure()
		for _, seq := range seqs {
			if s.skips[seq] {
				continue
			}
			s.skips[seq] = true
			r.emit(metrics.Event{Type: metrics.EvGapAgreement, Flow: flow, Epoch: epoch,
				Seq: seq, Detail: "sequence agreed unfillable"})
		}
		return nil
	})
}

// SeqSnapshot returns a copy of the flow's current sequencer record. A
// flow that never recorded progress returns the zero snapshot.
func (r *Registry) SeqSnapshot(p transport.Ctx, flow string) (SeqSnapshot, bool) {
	r.rpc(p)
	e, ok := r.flows[flow]
	if !ok || e.seq == nil {
		return SeqSnapshot{}, false
	}
	s := e.seq
	out := SeqSnapshot{
		HighWater: s.highWater,
		PerSource: append([]uint64(nil), s.perSource...),
		Skips:     make([]uint64, 0, len(s.skips)),
	}
	for seq := range s.skips {
		out.Skips = append(out.Skips, seq)
	}
	sort.Slice(out.Skips, func(i, j int) bool { return out.Skips[i] < out.Skips[j] })
	return out, true
}

func (e *entry) seqEnsure() *seqState {
	if e.seq == nil {
		e.seq = &seqState{skips: make(map[uint64]bool)}
	}
	return e.seq
}
