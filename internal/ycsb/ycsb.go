// Package ycsb generates YCSB-style key-value workloads (Cooper et al.,
// SoCC 2010). The paper's consensus experiment (§6.3.2) uses the
// read-dominated workload: 95% reads, 5% writes, 64-byte requests.
package ycsb

import "math/rand"

// Op is a key-value operation kind.
type Op uint8

// Operation kinds.
const (
	OpRead Op = iota
	OpWrite
)

// Generator produces a deterministic stream of operations.
type Generator struct {
	ReadFraction float64
	KeySpace     uint64

	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewReadDominated returns the paper's read-dominated workload (95/5)
// over the given key space with zipfian key popularity (YCSB default,
// theta 0.99 ~ s=1.01 approximation).
func NewReadDominated(keySpace uint64, seed int64) *Generator {
	return New(0.95, keySpace, seed)
}

// New builds a generator with the given read fraction.
func New(readFraction float64, keySpace uint64, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		ReadFraction: readFraction,
		KeySpace:     keySpace,
		rng:          rng,
		zipf:         rand.NewZipf(rng, 1.01, 1, keySpace-1),
	}
}

// Next returns the next operation and key.
func (g *Generator) Next() (Op, uint64) {
	op := OpRead
	if g.rng.Float64() >= g.ReadFraction {
		op = OpWrite
	}
	return op, g.zipf.Uint64()
}

// NextUniform returns the next operation with a uniformly random key.
func (g *Generator) NextUniform() (Op, uint64) {
	op := OpRead
	if g.rng.Float64() >= g.ReadFraction {
		op = OpWrite
	}
	return op, g.rng.Uint64() % g.KeySpace
}
