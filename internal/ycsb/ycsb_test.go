package ycsb

import "testing"

func TestReadFractionRespected(t *testing.T) {
	g := NewReadDominated(1000, 1)
	const n = 100000
	reads := 0
	for i := 0; i < n; i++ {
		op, key := g.Next()
		if op == OpRead {
			reads++
		}
		if key >= 1000 {
			t.Fatalf("key %d out of key space", key)
		}
	}
	frac := float64(reads) / n
	if frac < 0.94 || frac > 0.96 {
		t.Fatalf("read fraction %.3f, want ≈ 0.95", frac)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, b := New(0.5, 100, 7), New(0.5, 100, 7)
	for i := 0; i < 1000; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA != opB || keyA != keyB {
			t.Fatal("generators with equal seeds diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewReadDominated(10000, 3)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		counts[key]++
	}
	// Zipfian: the hottest key should be far above uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10*n/10000 {
		t.Fatalf("hottest key %d hits; distribution looks uniform", max)
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	g := New(1.0, 16, 5)
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		_, key := g.NextUniform()
		if key >= 16 {
			t.Fatalf("key %d out of range", key)
		}
		seen[key] = true
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d of 16 keys", len(seen))
	}
}
