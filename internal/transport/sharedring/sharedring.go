// Package sharedring multiplexes many flows over one shared ring per
// (source-node, target-node) pair — the SRQ answer to the RDMA
// connection-scaling wall: ring memory, queue pairs and credit traffic
// grow with the number of node pairs, not the number of flows.
//
// One Link owns a receiver-side memory Region laid out as a 64-byte
// header (the receiver-advanced release counter) followed by fixed-size
// slots, each a payload area plus a 16-byte footer carrying the segment
// fill, flags, a 24-bit flow tag and the absolute ring sequence. Senders
// on the source node share the ring under a weighted credit scheduler:
// every stream (one flow's traffic to one target slot) holds at most
// bound(weight) slots in flight, so a hot flow saturates the ring only
// up to its share and can never starve co-resident neighbors. The
// receiver demultiplexes committed slots to per-tag staging queues and
// releases them by bumping the header counter, which senders observe
// with an RDMA READ — exactly the paper's credit loop, amortized over
// all flows sharing the node pair.
//
// The package is written purely against the transport verb interfaces,
// so both backends (DES fabric and chanloop) run it unmodified.
//
// Concurrency contract: all exported methods are goroutine-safe AND
// sim-safe. Internally a short-hold mutex guards ring state; it is never
// held across a parking verb (WaitCommit, ReadSync, Sleep), which is the
// rule that keeps the DES kernel — one process runs at a time — free of
// lock-ownership deadlocks.
package sharedring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/transport"
)

const (
	// headerBytes is the receiver-owned ring header: the released-slot
	// counter (8 bytes little-endian at offset 0) padded to a cache line.
	headerBytes = 64
	// footerBytes is the per-slot trailer written with CommitTail so it
	// becomes visible strictly after the payload:
	// [0:4) fill LE32 | [4] flags | [5:8) flow tag LE24 | [8:16) seq LE64.
	// seq is the absolute ring index + 1, so a stale footer from a
	// previous lap (or zeroed memory) never matches the expected slot.
	footerBytes = 16

	flagSegment = 1 << 0 // slot carries a committed segment
	flagEnd     = 1 << 1 // sender finished this stream

	// creditPoll paces senders waiting for another context's in-flight
	// credit READ to land.
	creditPoll = 2 * time.Microsecond

	// maxTag bounds the 24-bit flow-tag namespace.
	maxTag = 1<<24 - 1
)

// Errors returned by the sender side.
var (
	// ErrLinkDown reports the link was condemned (peer node declared
	// dead): every stream's sends fail and in-flight slots will never be
	// released.
	ErrLinkDown = errors.New("sharedring: link condemned, peer node down")
	// ErrStreamClosed reports a send on a stream after Close or Abandon.
	ErrStreamClosed = errors.New("sharedring: stream closed")
	// ErrPayloadTooLarge reports a segment exceeding the slot payload.
	ErrPayloadTooLarge = errors.New("sharedring: segment exceeds slot payload size")
)

// Config sizes a pool's rings. The zero value selects the defaults.
type Config struct {
	// SlotPayload is the payload capacity of one slot (default 8 KiB).
	// Every flow multiplexed on the pool must have SegmentSize at most
	// this value — admission control in core checks it.
	SlotPayload int
	// Slots is the slot count of each shared ring (default 64).
	Slots int
	// StagingCap bounds each stream's receiver-side staging queue
	// (default Slots). When one stream's consumer stalls with a full
	// staging queue, the ring head-of-line blocks for everyone — the
	// price of sharing; leases bound how long (see docs/PROTOCOL.md
	// "Connection scaling").
	StagingCap int
}

func (c Config) withDefaults() Config {
	if c.SlotPayload <= 0 {
		c.SlotPayload = 8 * 1024
	}
	if c.Slots <= 0 {
		c.Slots = 64
	}
	if c.StagingCap <= 0 {
		c.StagingCap = c.Slots
	}
	return c
}

// TenantCounters are the per-tenant credit counters exposed through the
// ops plane: slots acquired and slots refunded across every link of the
// pool. acquired-refunded is the tenant's aggregate in-flight occupancy;
// after all of a tenant's streams drain the two are equal (credit
// conservation — the property test pins it). Goroutine-safe.
type TenantCounters struct {
	// Acquired counts ring slots granted to the tenant's streams.
	Acquired atomic.Uint64
	// Refunded counts ring slots returned by receiver releases.
	Refunded atomic.Uint64
}

var (
	poolsMu sync.Mutex
	pools   = map[transport.Transport]*Pool{}
)

// PoolOf returns the process-wide pool for tr, creating it with cfg on
// first use (later calls keep the original geometry; callers validate
// fit via Config). Both backends are in-process, so a single pool per
// transport instance is the natural rendezvous: source and target sides
// of a node pair resolve the same Link without any address exchange. A
// networked backend would swap this lookup for a registry-published
// ring address. Goroutine-safe.
func PoolOf(tr transport.Transport, cfg Config) *Pool {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if p, ok := pools[tr]; ok {
		return p
	}
	p := &Pool{
		tr:      tr,
		cfg:     cfg.withDefaults(),
		links:   map[linkKey]*Link{},
		tags:    map[string]uint32{},
		tenants: map[string]*TenantCounters{},
	}
	pools[tr] = p
	return p
}

// DropPool forgets the pool registered for tr, releasing its rings for
// garbage collection once the transport itself is unreferenced. Tests
// that build many transports call it; long-lived processes never need
// to. Goroutine-safe.
func DropPool(tr transport.Transport) {
	poolsMu.Lock()
	delete(pools, tr)
	poolsMu.Unlock()
}

// linkKey identifies a directed node pair.
type linkKey struct {
	src, dst transport.Endpoint
}

// Pool owns every shared ring of one transport instance: one Link per
// directed (source-node, target-node) pair, a flow-tag namespace, and
// the per-tenant credit counters. Goroutine-safe.
type Pool struct {
	tr  transport.Transport
	cfg Config

	mu      sync.Mutex
	links   map[linkKey]*Link
	tags    map[string]uint32
	nextTag uint32
	tenants map[string]*TenantCounters
	// published tracks which series PublishMetrics already registered on
	// each metrics registry, making re-publication (every source proc of
	// a fleet calls it) a no-op instead of a duplicate-series panic.
	published map[*metrics.Registry]map[string]bool
}

// Config returns the pool's ring geometry (defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// Tag returns the stable 24-bit flow tag for key, assigning the next
// free tag on first use. Source and target sides of a stream derive the
// same key (flow name + endpoint slots), so both resolve the same tag
// without coordination. Goroutine-safe.
func (p *Pool) Tag(key string) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.tags[key]; ok {
		return t
	}
	p.nextTag++
	if p.nextTag > maxTag {
		panic("sharedring: flow-tag namespace exhausted")
	}
	p.tags[key] = p.nextTag
	return p.nextTag
}

// Tenant returns the credit counters for the named tenant, creating
// them on first use. Goroutine-safe.
func (p *Pool) Tenant(name string) *TenantCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	tc, ok := p.tenants[name]
	if !ok {
		tc = &TenantCounters{}
		p.tenants[name] = tc
	}
	return tc
}

// link returns the Link for the directed pair, creating its ring region
// (registered on dst) and queue pair on first use.
func (p *Pool) link(src, dst transport.Endpoint) *Link {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := linkKey{src, dst}
	if l, ok := p.links[k]; ok {
		return l
	}
	slotBytes := p.cfg.SlotPayload + footerBytes
	mr := p.tr.OpenRegion(dst, headerBytes+p.cfg.Slots*slotBytes)
	q, _ := p.tr.Dial(src, dst)
	l := &Link{
		pool:      p,
		src:       src,
		dst:       dst,
		cfg:       p.cfg,
		mr:        mr,
		q:         q,
		stage:     make([]byte, p.cfg.Slots*slotBytes),
		slotOwner: make([]int32, p.cfg.Slots),
		byTag:     map[uint32]int{},
		rstreams:  map[uint32]*rstream{},
	}
	for i := range l.slotOwner {
		l.slotOwner[i] = -1
	}
	p.links[k] = l
	return l
}

// Links returns the pool's links sorted by (source, target) endpoint ID
// — a stable order for metrics registration and tests. Goroutine-safe.
func (p *Pool) Links() []*Link {
	p.mu.Lock()
	out := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		out = append(out, l)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].src.ID() != out[j].src.ID() {
			return out[i].src.ID() < out[j].src.ID()
		}
		return out[i].dst.ID() < out[j].dst.ID()
	})
	return out
}

// OpenStream opens the sender half of one flow's traffic to one target
// slot over the shared ring from src to dst. key names the stream
// (conventionally "flow/srcSlot/tgtSlot"); tenant and weight feed the
// weighted credit scheduler — the stream may hold at most
// max(1, Slots*weight/totalWeight) slots in flight. Goroutine-safe; the
// returned Stream must then be driven by a single context.
func (p *Pool) OpenStream(src, dst transport.Endpoint, key, tenant string, weight int) (*Stream, error) {
	if weight <= 0 {
		weight = 1
	}
	l := p.link(src, dst)
	tag := p.Tag(key)
	tc := p.Tenant(tenant)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.byTag[tag]; dup {
		return nil, fmt.Errorf("sharedring: stream %q already open on link %d->%d", key, src.ID(), dst.ID())
	}
	st := &Stream{
		link:   l,
		idx:    len(l.streams),
		tag:    tag,
		tenant: tc,
		weight: weight,
		open:   true,
	}
	l.streams = append(l.streams, st)
	l.byTag[tag] = st.idx
	l.totalWeight += weight
	l.recomputeBounds()
	return st, nil
}

// Receiver returns the receive half of the src→dst link, shared by all
// consumers on dst. Goroutine-safe.
func (p *Pool) Receiver(src, dst transport.Endpoint) *Receiver {
	return &Receiver{l: p.link(src, dst)}
}

// PublishMetrics registers the pool's ops-plane series on m:
// dfi_shared_ring_occupancy{src,dst} (sender-view in-flight slots per
// link), dfi_shared_ring_slots{src,dst}, and the per-tenant credit
// counters dfi_tenant_credits_acquired_total{tenant} /
// dfi_tenant_credits_refunded_total{tenant}. Links and tenants that
// exist at publish time get series; call again after opening more
// (re-registration of an existing series is idempotent in the metrics
// package). Goroutine-safe.
func (p *Pool) PublishMetrics(m *metrics.Registry) {
	for _, l := range p.Links() {
		l := l
		if !p.claimSeries(m, fmt.Sprintf("ring:%d:%d", l.src.ID(), l.dst.ID())) {
			continue
		}
		lbl := metrics.Labels{
			"src": fmt.Sprintf("%d", l.src.ID()),
			"dst": fmt.Sprintf("%d", l.dst.ID()),
		}
		m.RegisterGaugeFunc("dfi_shared_ring_occupancy",
			"In-flight slots (sender view: acquired minus released) of one shared per-node-pair ring.",
			lbl, func() float64 { return float64(l.Occupancy()) })
		m.RegisterGaugeFunc("dfi_shared_ring_slots",
			"Slot capacity of one shared per-node-pair ring.",
			lbl, func() float64 { return float64(l.cfg.Slots) })
	}
	p.mu.Lock()
	names := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		names = append(names, name)
	}
	p.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		if !p.claimSeries(m, "tenant:"+name) {
			continue
		}
		tc := p.Tenant(name)
		lbl := metrics.Labels{"tenant": name}
		m.RegisterCounterFunc("dfi_tenant_credits_acquired_total",
			"Shared-ring slots granted to the tenant's streams.",
			lbl, func() float64 { return float64(tc.Acquired.Load()) })
		m.RegisterCounterFunc("dfi_tenant_credits_refunded_total",
			"Shared-ring slots returned to the tenant by receiver releases.",
			lbl, func() float64 { return float64(tc.Refunded.Load()) })
	}
}

// claimSeries records that the series identified by key is (about to
// be) registered on m, returning false when an earlier PublishMetrics
// call already claimed it.
func (p *Pool) claimSeries(m *metrics.Registry, key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.published == nil {
		p.published = map[*metrics.Registry]map[string]bool{}
	}
	if p.published[m] == nil {
		p.published[m] = map[string]bool{}
	}
	if p.published[m][key] {
		return false
	}
	p.published[m][key] = true
	return true
}

// Link is one shared ring: the sender-side credit scheduler and staging
// mirror on the source node, the ring Region and demultiplexer on the
// target node. All exported methods are goroutine-safe; the internal
// mutex is never held across a parking verb.
type Link struct {
	pool     *Pool
	src, dst transport.Endpoint
	cfg      Config
	mr       transport.Region
	q        transport.Queue

	mu sync.Mutex

	// Sender state. stage mirrors the remote ring slot-for-slot: WRITE
	// source buffers must stay stable until delivery (the transport's
	// selective-signaling contract), and a mirror slot is reused only
	// after the receiver released it — which implies the write landed.
	head       uint64 // next absolute slot to grant
	released   uint64 // sender's mirror of the receiver's release counter
	creditRead bool   // a credit READ is in flight (single-flight)
	stage      []byte
	slotOwner  []int32 // stream index per slot (refund walk), -1 free
	streams    []*Stream
	byTag      map[uint32]int
	totalWeight int
	condemned  bool

	// Receiver state.
	tail     uint64 // next absolute slot to demultiplex
	rstreams map[uint32]*rstream
}

// Src returns the source-node endpoint of the directed link.
func (l *Link) Src() transport.Endpoint { return l.src }

// Dst returns the target-node endpoint of the directed link.
func (l *Link) Dst() transport.Endpoint { return l.dst }

func (l *Link) slotOff(i int) int   { return headerBytes + i*(l.cfg.SlotPayload+footerBytes) }
func (l *Link) footerOff(i int) int { return l.slotOff(i) + l.cfg.SlotPayload }

// recomputeBounds refreshes every open stream's credit bound from the
// current weight mix. Caller holds l.mu.
func (l *Link) recomputeBounds() {
	for _, st := range l.streams {
		if !st.open {
			st.bound = 0
			continue
		}
		b := uint64(l.cfg.Slots*st.weight) / uint64(max(1, l.totalWeight))
		if b < 1 {
			b = 1
		}
		st.bound = b
	}
}

// refund applies a fresh released value: walk the slots released since
// the last observation and return each to its owning stream, exactly
// once — the walk is strictly monotonic in the release counter, so a
// slot can never be refunded twice. Caller holds l.mu.
func (l *Link) refund(v uint64) {
	for ; l.released < v; l.released++ {
		i := int(l.released % uint64(l.cfg.Slots))
		owner := l.slotOwner[i]
		l.slotOwner[i] = -1
		if owner >= 0 {
			st := l.streams[owner]
			st.inflight--
			st.refunded++
			st.tenant.Refunded.Add(1)
		}
	}
}

// refreshCredits brings the sender's released mirror up to date with
// one RDMA READ of the ring header counter. Single-flight: if another
// context's READ is already outstanding, the caller naps instead of
// stacking reads. Never called with l.mu held.
func (l *Link) refreshCredits(p transport.Ctx) {
	l.mu.Lock()
	if l.creditRead {
		l.mu.Unlock()
		p.Sleep(creditPoll + time.Duration(p.Rand().Int63n(int64(creditPoll))))
		return
	}
	l.creditRead = true
	l.mu.Unlock()

	var buf [8]byte
	l.q.ReadSync(p, buf[:], transport.Addr{MR: l.mr, Off: 0})
	v := binary.LittleEndian.Uint64(buf[:])

	l.mu.Lock()
	if v > l.released {
		l.refund(v)
	}
	l.creditRead = false
	l.mu.Unlock()
}

// Condemn marks the link dead — the peer node is gone. Every stream's
// future sends fail with ErrLinkDown and slots already in flight are
// never released: co-resident flows lose their in-flight window, the
// documented blast radius of sharing a ring (docs/PROTOCOL.md
// "Connection scaling"). Goroutine-safe.
func (l *Link) Condemn() {
	l.mu.Lock()
	l.condemned = true
	l.mu.Unlock()
}

// Settle pumps any still-committed slots out of the ring (consumers may
// all have exited while an abandoned stream's writes were in flight) and
// drives credit refreshes until the sender's release mirror catches up
// (occupancy reaches zero), or until progress stops for ~1s of polling —
// the stalled-consumer case. Flows call Send, which refreshes lazily;
// Settle is for shutdown paths and tests that assert conservation after
// a drain.
func (l *Link) Settle(p transport.Ctx) {
	copies := l.pool.tr.CopiesPayload()
	stale := 0
	for stale < 1000 {
		l.mu.Lock()
		l.pumpLocked(copies)
		occ := l.head - l.released
		l.mu.Unlock()
		if occ == 0 {
			return
		}
		before := l.Released()
		l.refreshCredits(p)
		if l.Released() == before {
			stale++
			p.Sleep(time.Millisecond)
		} else {
			stale = 0
		}
	}
}

// Released returns the sender's mirror of the receiver's release
// counter. Goroutine-safe.
func (l *Link) Released() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.released
}

// Occupancy returns the sender-view in-flight slot count (granted minus
// released). Goroutine-safe.
func (l *Link) Occupancy() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.head - l.released)
}

// CheckConservation verifies the credit invariants: per stream,
// acquired-refunded equals its in-flight count and never exceeds its
// bound while open; summed over streams it equals the ring occupancy.
// A leak (slot never refunded) or double refund (refunded > acquired)
// trips it. Tests call it mid-run and after drain. Goroutine-safe.
func (l *Link) CheckConservation() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for _, st := range l.streams {
		if st.refunded > st.acquired {
			return fmt.Errorf("sharedring: stream tag %d double refund: acquired=%d refunded=%d", st.tag, st.acquired, st.refunded)
		}
		if st.acquired-st.refunded != st.inflight {
			return fmt.Errorf("sharedring: stream tag %d credit leak: acquired=%d refunded=%d inflight=%d", st.tag, st.acquired, st.refunded, st.inflight)
		}
		sum += st.inflight
	}
	if sum != l.head-l.released {
		return fmt.Errorf("sharedring: occupancy mismatch: sum(inflight)=%d head-released=%d", sum, l.head-l.released)
	}
	return nil
}

// Stream is the sender half of one flow's traffic to one target slot.
// Open/close bookkeeping is goroutine-safe, but Send must be driven by
// a single context at a time (one sim process or one goroutine) — the
// same ownership rule as a transport Queue.
type Stream struct {
	link   *Link
	idx    int
	tag    uint32
	tenant *TenantCounters
	weight int

	// Guarded by link.mu.
	inflight uint64
	bound    uint64
	acquired uint64
	refunded uint64
	open     bool
	dead     bool
}

// Tag returns the stream's 24-bit flow tag.
func (st *Stream) Tag() uint32 { return st.tag }

// Bound returns the stream's current credit bound (in-flight slot cap).
// Goroutine-safe.
func (st *Stream) Bound() uint64 {
	st.link.mu.Lock()
	defer st.link.mu.Unlock()
	return st.bound
}

// Inflight returns the stream's current in-flight slot count.
// Goroutine-safe.
func (st *Stream) Inflight() uint64 {
	st.link.mu.Lock()
	defer st.link.mu.Unlock()
	return st.inflight
}

// Send writes one segment (payload plus flow-tagged footer) into the
// next granted ring slot, blocking while the ring is full or the
// stream's credit bound is exhausted. end marks the stream's final
// segment (payload may be empty). The payload is staged into the
// sender's slot mirror, so the caller may reuse its buffer immediately.
func (st *Stream) Send(p transport.Ctx, payload []byte, end bool) error {
	l := st.link
	if len(payload) > l.cfg.SlotPayload {
		return ErrPayloadTooLarge
	}
	var slot uint64
	for {
		l.mu.Lock()
		if l.condemned {
			l.mu.Unlock()
			return ErrLinkDown
		}
		if st.dead || !st.open {
			l.mu.Unlock()
			return ErrStreamClosed
		}
		if l.head-l.released < uint64(l.cfg.Slots) && st.inflight < st.bound {
			slot = l.head
			l.head++
			st.inflight++
			st.acquired++
			st.tenant.Acquired.Add(1)
			l.slotOwner[int(slot%uint64(l.cfg.Slots))] = int32(st.idx)
			l.mu.Unlock()
			break
		}
		l.mu.Unlock()
		// Blocked on credits: a crashed peer will never release slots, so
		// condemn the link rather than spin (the documented blast radius —
		// every co-resident flow on this ring is down with the node).
		// Otherwise refresh the release mirror (one READ in flight
		// link-wide; everyone else naps until it lands).
		if l.dst.Crashed(p.Now()) {
			l.Condemn()
			return ErrLinkDown
		}
		l.refreshCredits(p)
	}

	i := int(slot % uint64(l.cfg.Slots))
	slotBytes := l.cfg.SlotPayload + footerBytes
	mirror := l.stage[i*slotBytes : (i+1)*slotBytes]
	n := copy(mirror, payload)
	ftr := mirror[l.cfg.SlotPayload:]
	binary.LittleEndian.PutUint32(ftr[0:4], uint32(n))
	flags := byte(flagSegment)
	if end {
		flags |= flagEnd
	}
	ftr[4] = flags
	ftr[5] = byte(st.tag)
	ftr[6] = byte(st.tag >> 8)
	ftr[7] = byte(st.tag >> 16)
	binary.LittleEndian.PutUint64(ftr[8:16], slot+1)

	// Payload body first, then the footer with CommitTail: RC ordering
	// plus the commit-tail contract make the footer visible strictly
	// after the payload, and the landed tail counts one region commit
	// the receiver's WaitCommit observes.
	if n > 0 {
		l.q.Write(p, mirror[:n], transport.Addr{MR: l.mr, Off: l.slotOff(i)}, transport.WriteOptions{})
	}
	l.q.Write(p, ftr, transport.Addr{MR: l.mr, Off: l.footerOff(i)}, transport.WriteOptions{CommitTail: footerBytes})
	return nil
}

// Close sends the stream's end marker and retires its weight from the
// credit scheduler. Further sends fail with ErrStreamClosed.
func (st *Stream) Close(p transport.Ctx) error {
	if err := st.Send(p, nil, true); err != nil {
		return err
	}
	st.retire()
	return nil
}

// Abandon retires the stream without an end marker — the caller's flow
// was evicted or broke. Slots already in flight are still refunded
// (exactly once) when the receiver releases them; the receiver side
// should be dropped with Receiver.Drop so staged segments don't pile
// up. Goroutine-safe.
func (st *Stream) Abandon() {
	st.link.mu.Lock()
	st.dead = true
	st.link.mu.Unlock()
	st.retire()
}

func (st *Stream) retire() {
	l := st.link
	l.mu.Lock()
	if st.open {
		st.open = false
		l.totalWeight -= st.weight
		l.recomputeBounds()
	}
	l.mu.Unlock()
}

// RecvStatus classifies a Receiver.Recv result.
type RecvStatus int

// Recv results.
const (
	// RecvSeg delivered a segment.
	RecvSeg RecvStatus = iota
	// RecvEnd reports the stream's sender closed it and staging drained.
	RecvEnd
	// RecvIdle reports the wait budget elapsed with nothing staged.
	RecvIdle
	// RecvDropped reports the tag was dropped via Receiver.Drop.
	RecvDropped
)

// Segment is one demultiplexed delivery.
type Segment struct {
	// Fill is the payload byte count the sender committed.
	Fill int
	// End marks the sender's final segment for the stream.
	End bool
	// Data holds the payload bytes, copied out of the ring slot before
	// release. Nil when the backend models payloads without moving them
	// (Transport.CopiesPayload false) or when Fill is 0.
	Data []byte
}

// rstream is one tag's receiver-side staging state.
type rstream struct {
	q       []Segment
	ended   bool
	dropped bool
}

// Receiver is the receive half of a link, shared by every consumer on
// the target node. Pumping is consumer-driven: whichever consumer calls
// Recv advances the ring tail, demultiplexes committed slots into
// per-tag staging queues, and publishes releases — no dedicated pump
// process exists, which keeps the DES kernel quiescent when flows are
// idle. All methods are goroutine-safe.
type Receiver struct {
	l *Link
}

// Link returns the underlying shared ring.
func (r *Receiver) Link() *Link { return r.l }

func (l *Link) rstreamLocked(tag uint32) *rstream {
	st, ok := l.rstreams[tag]
	if !ok {
		st = &rstream{}
		l.rstreams[tag] = st
	}
	return st
}

// pumpLocked demultiplexes every committed slot at the ring tail into
// staging and releases it. Stops at the first uncommitted slot or when
// a destination staging queue is full (head-of-line block). Caller
// holds l.mu; Load/Store are non-parking local ops, so holding the
// mutex across them is safe on both backends.
func (l *Link) pumpLocked(copies bool) {
	var ftr [footerBytes]byte
	var rel [8]byte
	for {
		i := int(l.tail % uint64(l.cfg.Slots))
		l.mr.Load(l.footerOff(i), ftr[:])
		if ftr[4]&flagSegment == 0 {
			return
		}
		if binary.LittleEndian.Uint64(ftr[8:16]) != l.tail+1 {
			return // stale footer from a previous lap
		}
		tag := uint32(ftr[5]) | uint32(ftr[6])<<8 | uint32(ftr[7])<<16
		fill := int(binary.LittleEndian.Uint32(ftr[0:4]))
		end := ftr[4]&flagEnd != 0
		st := l.rstreamLocked(tag)
		switch {
		case st.dropped:
			// Evicted consumer: discard the payload but still release the
			// slot so the sender's credits are refunded.
			if end {
				st.ended = true
			}
		case fill == 0 && end:
			st.ended = true
		default:
			if len(st.q) >= l.cfg.StagingCap {
				return // consumer stalled; ring blocks for everyone
			}
			seg := Segment{Fill: fill, End: end}
			if fill > 0 && copies {
				seg.Data = make([]byte, fill)
				copy(seg.Data, l.mr.Bytes()[l.slotOff(i):l.slotOff(i)+fill])
			}
			if end {
				st.ended = true
			}
			st.q = append(st.q, seg)
		}
		l.tail++
		binary.LittleEndian.PutUint64(rel[:], l.tail)
		l.mr.Store(0, rel[:])
	}
}

// Recv returns the next staged segment for tag, pumping the ring as
// needed and waiting up to wait for a commit when nothing is staged.
// RecvEnd is terminal: the sender closed the stream and staging is
// drained.
func (r *Receiver) Recv(p transport.Ctx, tag uint32, wait time.Duration) (Segment, RecvStatus) {
	l := r.l
	copies := l.pool.tr.CopiesPayload()
	deadline := p.Now() + wait
	for {
		// Snapshot the commit count before pumping: a commit landing
		// during the pump wakes the WaitCommit below immediately instead
		// of stalling a full poll interval.
		since := l.mr.CommitSeq()
		l.mu.Lock()
		l.pumpLocked(copies)
		st := l.rstreamLocked(tag)
		if len(st.q) > 0 {
			seg := st.q[0]
			st.q = st.q[1:]
			l.mu.Unlock()
			return seg, RecvSeg
		}
		if st.dropped {
			l.mu.Unlock()
			return Segment{}, RecvDropped
		}
		if st.ended {
			l.mu.Unlock()
			return Segment{}, RecvEnd
		}
		l.mu.Unlock()
		remain := deadline - p.Now()
		if remain <= 0 {
			return Segment{}, RecvIdle
		}
		l.mr.WaitCommit(p, since, remain)
	}
}

// Drop marks tag evicted: staged segments are discarded and future
// deliveries for it are released without staging, so an evicted flow's
// in-flight slots still refund the sender's credits. Goroutine-safe.
func (r *Receiver) Drop(tag uint32) {
	r.l.mu.Lock()
	st := r.l.rstreamLocked(tag)
	st.dropped = true
	st.q = nil
	r.l.mu.Unlock()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
