package sharedring_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
	"dfi/internal/transport"
	"dfi/internal/transport/chanloop"
	"dfi/internal/transport/sharedring"
)

// env mirrors the conformance-suite harness: one fresh backend, n
// endpoints, actor spawning and a run-to-completion driver, so every
// test here executes on both the DES fabric and chanloop.
type env struct {
	t   transport.Transport
	ep  []transport.Endpoint
	gof func(name string, fn func(transport.Ctx))
	run func()
}

func backends(n int) map[string]func() env {
	return map[string]func() env{
		"fabric": func() env {
			k := sim.New(1)
			c := fabric.NewCluster(k, n, fabric.DefaultConfig())
			e := env{
				t: c,
				gof: func(name string, fn func(transport.Ctx)) {
					k.Spawn(name, func(p *sim.Proc) { fn(p) })
				},
				run: func() { k.Run() },
			}
			for i := 0; i < n; i++ {
				e.ep = append(e.ep, c.Node(i))
			}
			return e
		},
		"chanloop": func() env {
			net := chanloop.New()
			var wg sync.WaitGroup
			e := env{
				t: net,
				gof: func(name string, fn func(transport.Ctx)) {
					wg.Add(1)
					go func() {
						defer wg.Done()
						fn(net.NewCtx())
					}()
				},
				run: func() { wg.Wait() },
			}
			for i := 0; i < n; i++ {
				e.ep = append(e.ep, net.NewEndpoint())
			}
			return e
		},
	}
}

const waitFor = 5 * time.Second

// seedList returns the property-test seed sweep; DFI_CHAOS_SEED (the
// chaos make targets' knob) prepends an externally chosen seed.
func seedList() []int64 {
	seeds := []int64{1, 7, 42}
	if s := os.Getenv("DFI_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seeds = append([]int64{v}, seeds...)
		}
	}
	return seeds
}

// segByte is the deterministic payload pattern for stream s, segment k.
func segByte(s, k int) byte { return byte(s*31 + k*7 + 1) }

// TestSharedRingDelivery drives several flows from one source node over
// a single shared ring and checks each consumer gets exactly its own
// stream back, in order, with intact payload bytes (on the byte-moving
// backend) — the demultiplexing contract.
func TestSharedRingDelivery(t *testing.T) {
	for name, mk := range backends(2) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			pool := sharedring.PoolOf(e.t, sharedring.Config{SlotPayload: 256, Slots: 8})
			defer sharedring.DropPool(e.t)

			const nStreams = 6
			const nSegs = 20
			copies := e.t.CopiesPayload()

			type result struct {
				segs    int
				sendErr string
				recvErr string
				ended   bool
			}
			results := make([]result, nStreams)

			for s := 0; s < nStreams; s++ {
				s := s
				key := fmt.Sprintf("flow%d/0/0", s)
				tenant := fmt.Sprintf("tenant%d", s%2)
				e.gof(fmt.Sprintf("send%d", s), func(p transport.Ctx) {
					st, err := pool.OpenStream(e.ep[0], e.ep[1], key, tenant, 1+s%3)
					if err != nil {
						results[s].sendErr = err.Error()
						return
					}
					buf := make([]byte, 256)
					for k := 0; k < nSegs; k++ {
						fill := 32 + (s*13+k*29)%(256-32)
						for i := 0; i < fill; i++ {
							buf[i] = segByte(s, k)
						}
						if err := st.Send(p, buf[:fill], false); err != nil {
							results[s].sendErr = err.Error()
							return
						}
					}
					if err := st.Close(p); err != nil {
						results[s].sendErr = err.Error()
					}
				})
				e.gof(fmt.Sprintf("recv%d", s), func(p transport.Ctx) {
					rcv := pool.Receiver(e.ep[0], e.ep[1])
					tag := pool.Tag(key)
					for {
						seg, stc := rcv.Recv(p, tag, waitFor)
						switch stc {
						case sharedring.RecvSeg:
							k := results[s].segs
							wantFill := 32 + (s*13+k*29)%(256-32)
							if seg.Fill != wantFill {
								results[s].recvErr = fmt.Sprintf("seg %d fill=%d want %d", k, seg.Fill, wantFill)
								return
							}
							if copies {
								for i, b := range seg.Data {
									if b != segByte(s, k) {
										results[s].recvErr = fmt.Sprintf("seg %d byte %d = %d want %d", k, i, b, segByte(s, k))
										return
									}
								}
							}
							results[s].segs++
						case sharedring.RecvEnd:
							results[s].ended = true
							return
						default:
							results[s].recvErr = fmt.Sprintf("unexpected recv status %d", stc)
							return
						}
					}
				})
			}
			e.run()

			for s, r := range results {
				if r.sendErr != "" || r.recvErr != "" {
					t.Fatalf("stream %d: send=%q recv=%q", s, r.sendErr, r.recvErr)
				}
				if r.segs != nSegs || !r.ended {
					t.Fatalf("stream %d: segs=%d ended=%v want %d,true", s, r.segs, r.ended, nSegs)
				}
			}
		})
	}
}

// TestSharedRingWeightedBounds pins the weighted credit scheduler: with
// static weights 3:1 on the link, the hot stream's in-flight bound is
// three times the cold one's, the bound is never exceeded at any
// acquisition, and the cold stream still completes while the hot one
// floods — no starvation.
func TestSharedRingWeightedBounds(t *testing.T) {
	for name, mk := range backends(2) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			pool := sharedring.PoolOf(e.t, sharedring.Config{SlotPayload: 64, Slots: 16})
			defer sharedring.DropPool(e.t)

			var hot, cold *sharedring.Stream
			var openErr error
			hot, openErr = pool.OpenStream(e.ep[0], e.ep[1], "hot/0/0", "gold", 3)
			if openErr != nil {
				t.Fatal(openErr)
			}
			cold, openErr = pool.OpenStream(e.ep[0], e.ep[1], "cold/0/0", "bronze", 1)
			if openErr != nil {
				t.Fatal(openErr)
			}
			if hot.Bound() != 12 || cold.Bound() != 4 {
				t.Fatalf("bounds hot=%d cold=%d want 12,4", hot.Bound(), cold.Bound())
			}

			var hotMax, coldDone int
			var hotFin atomic.Bool
			e.gof("hot", func(p transport.Ctx) {
				buf := make([]byte, 64)
				for k := 0; k < 200; k++ {
					if err := hot.Send(p, buf, false); err != nil {
						t.Error(err)
						return
					}
					if n := int(hot.Inflight()); n > hotMax {
						hotMax = n
					}
				}
				hot.Close(p)
				hotFin.Store(true)
			})
			e.gof("cold", func(p transport.Ctx) {
				buf := make([]byte, 32)
				for k := 0; k < 50; k++ {
					if err := cold.Send(p, buf, false); err != nil {
						t.Error(err)
						return
					}
					coldDone++
				}
				// Hold the cold stream open until the hot sender finishes:
				// closing would retire its weight and legitimately grow the
				// hot bound, which is exactly what this test pins against.
				for !hotFin.Load() {
					p.Sleep(time.Millisecond)
				}
				cold.Close(p)
			})
			for _, nm := range []string{"hot/0/0", "cold/0/0"} {
				nm := nm
				e.gof("recv-"+nm, func(p transport.Ctx) {
					rcv := pool.Receiver(e.ep[0], e.ep[1])
					tag := pool.Tag(nm)
					for {
						if _, stc := rcv.Recv(p, tag, waitFor); stc != sharedring.RecvSeg {
							return
						}
					}
				})
			}
			e.run()

			if hotMax > 12 {
				t.Fatalf("hot stream exceeded its credit bound: max inflight %d > 12", hotMax)
			}
			if coldDone != 50 {
				t.Fatalf("cold stream starved: sent %d/50", coldDone)
			}
		})
	}
}

// TestSharedRingCreditConservation is the property test: a seed-swept
// random schedule of streams sending bursts while some are abandoned
// mid-burst (sender Abandon + receiver Drop) must conserve credits —
// every acquired slot refunded exactly once, no leak, no double refund
// — verified by Link.CheckConservation mid-run and after Settle, plus
// per-tenant acquired==refunded after the drain. Run under -race: the
// chanloop leg exercises real concurrency.
func TestSharedRingCreditConservation(t *testing.T) {
	for _, seed := range seedList() {
		seed := seed
		for name, mk := range backends(2) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				e := mk()
				pool := sharedring.PoolOf(e.t, sharedring.Config{SlotPayload: 128, Slots: 8})
				defer sharedring.DropPool(e.t)

				plan := rand.New(rand.NewSource(seed))
				const nStreams = 10
				type sPlan struct {
					segs    int
					abortAt int // -1: run to completion
					tenant  string
					weight  int
					slow    time.Duration // consumer pacing, drawn pre-run
				}
				plans := make([]sPlan, nStreams)
				for s := range plans {
					plans[s] = sPlan{
						segs:    5 + plan.Intn(40),
						abortAt: -1,
						tenant:  fmt.Sprintf("t%d", plan.Intn(3)),
						weight:  1 + plan.Intn(4),
						slow:    time.Duration(plan.Intn(3)) * time.Microsecond,
					}
					if plan.Intn(3) == 0 {
						plans[s].abortAt = plan.Intn(plans[s].segs)
					}
				}

				link := pool.Receiver(e.ep[0], e.ep[1]).Link()
				errs := make([]error, nStreams)
				var done atomic.Int32
				for s := 0; s < nStreams; s++ {
					s := s
					pl := plans[s]
					key := fmt.Sprintf("f%d/0/0", s)
					e.gof(fmt.Sprintf("send%d", s), func(p transport.Ctx) {
						defer done.Add(1)
						st, err := pool.OpenStream(e.ep[0], e.ep[1], key, pl.tenant, pl.weight)
						if err != nil {
							errs[s] = err
							return
						}
						buf := make([]byte, 128)
						for k := 0; k < pl.segs; k++ {
							if pl.abortAt == k {
								// Eviction mid-burst: no end marker, and the
								// receiver side is condemned to discard.
								st.Abandon()
								pool.Receiver(e.ep[0], e.ep[1]).Drop(st.Tag())
								return
							}
							if err := st.Send(p, buf[:1+(s+k)%128], false); err != nil {
								errs[s] = err
								return
							}
							if err := link.CheckConservation(); err != nil {
								errs[s] = err
								return
							}
						}
						errs[s] = st.Close(p)
					})
					e.gof(fmt.Sprintf("recv%d", s), func(p transport.Ctx) {
						defer done.Add(1)
						// Short waits with bounded retries: a Drop for this tag
						// can land while we are parked, and only re-entering
						// Recv observes it.
						for idle := 0; idle < 500; {
							_, stc := pool.Receiver(e.ep[0], e.ep[1]).Recv(p, pool.Tag(key), 10*time.Millisecond)
							switch stc {
							case sharedring.RecvSeg:
								idle = 0
								if pl.slow > 0 {
									p.Sleep(pl.slow)
								}
							case sharedring.RecvIdle:
								idle++
							default:
								return
							}
						}
					})
				}
				e.gof("settle", func(p transport.Ctx) {
					// Wait for every sender and consumer to finish, then pull
					// the release counter until the credit books close.
					for done.Load() < int32(2*nStreams) {
						p.Sleep(2 * time.Millisecond)
					}
					link.Settle(p)
				})
				e.run()

				for s, err := range errs {
					if err != nil {
						t.Fatalf("seed %d stream %d: %v", seed, s, err)
					}
				}
				if err := link.CheckConservation(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if occ := link.Occupancy(); occ != 0 {
					t.Fatalf("seed %d: %d slots never refunded", seed, occ)
				}
				for _, tn := range []string{"t0", "t1", "t2"} {
					tc := pool.Tenant(tn)
					if a, r := tc.Acquired.Load(), tc.Refunded.Load(); a != r {
						t.Fatalf("seed %d tenant %s: acquired=%d refunded=%d (leak or double refund)", seed, tn, a, r)
					}
				}
			})
		}
	}
}
