package transport

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dfi/internal/metrics"
)

// Tracing: an optional hook observing every verb a backend executes,
// with a bundled recorder that renders op logs and per-pair traffic
// summaries. Used by cmd/dfiflow -trace and by tests that assert on
// wire-level behaviour. Backends with fault injection stamp traced ops
// with a Disposition so loss and injected duplicates are visible to
// tooling.

// Disposition classifies how the backend handled a traced operation.
type Disposition uint8

// Dispositions.
const (
	// Delivered is the healthy outcome: the op reached its destination.
	Delivered Disposition = iota
	// Dropped means the fault plan discarded the op's remote effect
	// (probabilistic drop, link flap, or a crashed endpoint).
	Dropped
	// Injected marks a duplicate delivery fabricated by the fault plan;
	// the original op was traced separately as Delivered.
	Injected
)

// String renders the disposition for trace output (dropped deliveries
// shout, so they stand out in a log).
func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case Dropped:
		return "DROPPED"
	case Injected:
		return "injected"
	}
	return "unknown"
}

// TraceOp is one observed verb execution.
type TraceOp struct {
	Kind    OpKind
	From    int // endpoint id
	To      int // endpoint id
	Bytes   int
	Posted  time.Duration // when the work request was posted
	Arrived time.Duration // when it was delivered / executed remotely
	// Disposition reports the fate of the op under the fault plan
	// (Delivered when fault-free).
	Disposition Disposition
}

// Tracer observes transport operations. Implementations must not block
// (they run inline with verb posting).
type Tracer interface {
	Trace(op TraceOp)
}

// AttachRecorder builds a Recorder retaining at most capacity ops and
// installs it as t's tracer — the one wiring point for op recording, so
// callers need not know which backend they hold. Works on every backend;
// backends without fault injection simply never stamp a non-Delivered
// disposition.
func AttachRecorder(t Transport, capacity int) *Recorder {
	r := NewRecorder(capacity)
	t.SetTracer(r)
	return r
}

// Recorder is a Tracer that accumulates operations in memory. It is safe
// for concurrent use: a scraper goroutine may call the accessors,
// Summary, or PublishMetrics collectors while the backend traces.
type Recorder struct {
	Ops []TraceOp
	// Cap bounds the retained op log (0 = unlimited); aggregate counters
	// keep counting past it.
	Cap int

	// WireOverheadBytes, when set (normally from the backend's
	// per-message framing overhead), lets Summary additionally report
	// on-the-wire volume including that overhead.
	WireOverheadBytes int

	mu    sync.Mutex
	total int
	// Byte accounting is split by disposition: deliveredBytes is volume
	// that reached its destination, droppedBytes was discarded by the
	// fault plan (it never arrived, so mixing it into delivered traffic
	// would overstate what the flow moved), and injectedBytes is the
	// extra volume of fabricated duplicate deliveries.
	deliveredBytes int64
	dropped        int
	droppedBytes   int64
	injected       int
	injectedBytes  int64
	byKind         map[OpKind]int
	byPair         map[[2]int]int64 // delivered (incl. duplicate) bytes by (from, to)
}

// NewRecorder returns an empty recorder retaining at most cap ops.
func NewRecorder(cap int) *Recorder {
	return &Recorder{Cap: cap, byKind: make(map[OpKind]int), byPair: make(map[[2]int]int64)}
}

// Trace implements Tracer. Dropped ops count toward totals and per-kind
// counters but not toward delivered volume or the per-pair traffic map —
// their bytes never arrived.
func (r *Recorder) Trace(op TraceOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.byKind[op.Kind]++
	switch op.Disposition {
	case Dropped:
		r.dropped++
		r.droppedBytes += int64(op.Bytes)
	case Injected:
		r.injected++
		r.injectedBytes += int64(op.Bytes)
		r.byPair[[2]int{op.From, op.To}] += int64(op.Bytes)
	default:
		r.deliveredBytes += int64(op.Bytes)
		r.byPair[[2]int{op.From, op.To}] += int64(op.Bytes)
	}
	if r.Cap == 0 || len(r.Ops) < r.Cap {
		r.Ops = append(r.Ops, op)
	}
}

// Total returns the number of traced operations.
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of traced operations the fault plan
// discarded.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DroppedBytes returns the volume the fault plan discarded — bytes that
// were posted but never arrived.
func (r *Recorder) DroppedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedBytes
}

// Injected returns the number of duplicate deliveries the fault plan
// fabricated.
func (r *Recorder) Injected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.injected
}

// MessageBytes returns the cumulative message bytes actually delivered,
// including fabricated duplicate deliveries. This counts everything a
// message carries above the wire framing — tuple payload *and* protocol
// metadata (segment footers, credit/NACK control messages) — so it
// over-reports pure tuple payload; flow-level payload accounting lives
// in core.SourceStats.PayloadBytes. Bytes of ops the fault plan dropped
// are excluded (see DroppedBytes).
func (r *Recorder) MessageBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deliveredBytes + r.injectedBytes
}

// Summary renders aggregate counters: ops by kind, delivered vs dropped
// volume under the fault plan, and the top traffic pairs. Delivered and
// dropped bytes are reported distinctly — a fault plan that eats half
// the WRITEs must not inflate the delivered-traffic figure.
func (r *Recorder) Summary(w io.Writer, topPairs int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delivered := r.deliveredBytes + r.injectedBytes
	fmt.Fprintf(w, "traced %d operations, %d message bytes delivered (payload + protocol metadata)\n",
		r.total, delivered)
	if r.WireOverheadBytes > 0 {
		wire := delivered + int64(r.total-r.dropped)*int64(r.WireOverheadBytes)
		fmt.Fprintf(w, "  ≈%d wire bytes incl. %d B/message framing overhead\n", wire, r.WireOverheadBytes)
	}
	if r.dropped > 0 || r.injected > 0 {
		fmt.Fprintf(w, "  faults: %d dropped (%d bytes never delivered), %d duplicate deliveries injected (+%d bytes delivered)\n",
			r.dropped, r.droppedBytes, r.injected, r.injectedBytes)
	}
	kinds := make([]OpKind, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %d\n", k, r.byKind[k])
	}
	type pair struct {
		from, to int
		bytes    int64
	}
	pairs := make([]pair, 0, len(r.byPair))
	for p, b := range r.byPair {
		pairs = append(pairs, pair{p[0], p[1], b})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].bytes > pairs[j].bytes })
	if topPairs > len(pairs) {
		topPairs = len(pairs)
	}
	if topPairs > 0 {
		fmt.Fprintf(w, "top traffic pairs:\n")
		for _, p := range pairs[:topPairs] {
			fmt.Fprintf(w, "  node%d → node%d  %d bytes\n", p.from, p.to, p.bytes)
		}
	}
}

// Log renders the retained op log, one line per operation.
func (r *Recorder) Log(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, op := range r.Ops {
		mark := ""
		if op.Disposition != Delivered {
			mark = "  [" + op.Disposition.String() + "]"
		}
		fmt.Fprintf(w, "%-12v %-10s node%d → node%d  %6d B  (delivered %v)%s\n",
			op.Posted, op.Kind, op.From, op.To, op.Bytes, op.Arrived, mark)
	}
	if r.total > len(r.Ops) {
		fmt.Fprintf(w, "… %d further operations (log capped)\n", r.total-len(r.Ops))
	}
}

// PublishMetrics registers the recorder's aggregate counters on m under
// the dfi_fabric_* namespace. The collectors run on the scraper's
// goroutine and take the recorder's mutex, so they can be scraped while
// the backend traces.
func (r *Recorder) PublishMetrics(m *metrics.Registry) {
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return f()
		}
	}
	for _, k := range []OpKind{OpWrite, OpRead, OpSend, OpRecv, OpFetchAdd, OpCompareSwap} {
		k := k
		m.RegisterCounterFunc("dfi_fabric_ops_total", "Traced fabric operations by verb (all dispositions).",
			metrics.Labels{"kind": k.String()},
			locked(func() float64 { return float64(r.byKind[k]) }))
	}
	m.RegisterCounterFunc("dfi_fabric_message_bytes_total", "Message bytes by disposition (delivered reached the destination; dropped never arrived; injected are duplicate deliveries fabricated by the fault plan).",
		metrics.Labels{"disposition": "delivered"},
		locked(func() float64 { return float64(r.deliveredBytes) }))
	m.RegisterCounterFunc("dfi_fabric_message_bytes_total", "Message bytes by disposition (delivered reached the destination; dropped never arrived; injected are duplicate deliveries fabricated by the fault plan).",
		metrics.Labels{"disposition": "dropped"},
		locked(func() float64 { return float64(r.droppedBytes) }))
	m.RegisterCounterFunc("dfi_fabric_message_bytes_total", "Message bytes by disposition (delivered reached the destination; dropped never arrived; injected are duplicate deliveries fabricated by the fault plan).",
		metrics.Labels{"disposition": "injected"},
		locked(func() float64 { return float64(r.injectedBytes) }))
	m.RegisterCounterFunc("dfi_fabric_ops_dropped_total", "Traced operations the fault plan discarded.", nil,
		locked(func() float64 { return float64(r.dropped) }))
	m.RegisterCounterFunc("dfi_fabric_ops_injected_total", "Duplicate deliveries the fault plan fabricated.", nil,
		locked(func() float64 { return float64(r.injected) }))
}
