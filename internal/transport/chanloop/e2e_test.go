package chanloop_test

import (
	"sync"
	"testing"

	"dfi/internal/core"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport/chanloop"
)

// TestQuickstartFlow runs the quickstart example's key-shuffled flow —
// one source pushing ten tuples to two targets — over chanloop: real
// goroutines, real bytes, no sim kernel. The core data path is the same
// code the DES runs; only the backend and registry differ. Run with
// -race.
func TestQuickstartFlow(t *testing.T) {
	net := chanloop.New()
	eps := make([]*chanloop.Endpoint, 3)
	for i := range eps {
		eps[i] = net.NewEndpoint()
	}
	reg := registry.NewLocal()

	sch := schema.MustNew(
		schema.Column{Name: "key", Type: schema.Int64},
		schema.Column{Name: "value", Type: schema.Int64},
	)
	spec := core.FlowSpec{
		Name:       "quickstart",
		Sources:    []core.Endpoint{{Node: eps[0], Thread: 0}},
		Targets:    []core.Endpoint{{Node: eps[1], Thread: 0}, {Node: eps[2], Thread: 0}},
		Schema:     sch,
		ShuffleKey: 0,
	}
	if err := core.FlowInit(net.NewCtx(), reg, net, spec); err != nil {
		t.Fatalf("FlowInit: %v", err)
	}

	const tuples = 10
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		p := net.NewCtx()
		src, err := core.SourceOpen(p, reg, "quickstart", 0)
		if err != nil {
			t.Errorf("SourceOpen: %v", err)
			return
		}
		tup := sch.NewTuple()
		for i := int64(0); i < tuples; i++ {
			sch.PutInt64(tup, 0, i)
			sch.PutInt64(tup, 1, 10*i)
			if err := src.Push(p, tup); err != nil {
				t.Errorf("Push(%d): %v", i, err)
				return
			}
		}
		src.Close(p)
	}()

	// got[target][key] = value, collected concurrently then merged.
	got := make([]map[int64]int64, 2)
	for ti := 0; ti < 2; ti++ {
		ti := ti
		got[ti] = make(map[int64]int64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := net.NewCtx()
			tgt, err := core.TargetOpen(p, reg, "quickstart", ti)
			if err != nil {
				t.Errorf("TargetOpen(%d): %v", ti, err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				k, v := sch.Int64(tup, 0), sch.Int64(tup, 1)
				if prev, dup := got[ti][k]; dup {
					t.Errorf("target %d: key %d delivered twice (%d, %d)", ti, k, prev, v)
				}
				got[ti][k] = v
			}
		}()
	}
	wg.Wait()

	// Exactly the pushed payloads, each key at the target its shuffle
	// picked, no loss, no duplication, no corruption.
	all := make(map[int64]int64)
	for ti, m := range got {
		for k, v := range m {
			if _, dup := all[k]; dup {
				t.Errorf("key %d delivered at both targets", k)
			}
			all[k] = v
			_ = ti
		}
	}
	if len(all) != tuples {
		t.Fatalf("delivered %d distinct keys, want %d: %v", len(all), tuples, all)
	}
	for i := int64(0); i < tuples; i++ {
		if all[i] != 10*i {
			t.Errorf("key %d: value %d, want %d", i, all[i], 10*i)
		}
	}
	if len(got[0]) == 0 || len(got[1]) == 0 {
		t.Errorf("shuffle sent everything to one target: %d/%d", len(got[0]), len(got[1]))
	}
	t.Logf("shuffle split %d/%d", len(got[0]), len(got[1]))
}
