package chanloop_test

import (
	"sync"
	"testing"

	"dfi/internal/transport"
	"dfi/internal/transport/chanloop"
	"dfi/internal/transport/transporttest"
)

// TestTransportConformance runs the shared transport semantics suite
// against the goroutine/channel backend. Run it with -race: conformance
// under the race detector is the backend's main correctness argument.
func TestTransportConformance(t *testing.T) {
	transporttest.Run(t, func(n int) transporttest.Env {
		net := chanloop.New()
		var wg sync.WaitGroup
		env := transporttest.Env{
			T: net,
			Go: func(name string, fn func(transport.Ctx)) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fn(net.NewCtx())
				}()
			},
			Run: func() { wg.Wait() },
		}
		for i := 0; i < n; i++ {
			env.EP = append(env.EP, net.NewEndpoint())
		}
		return env
	})
}
