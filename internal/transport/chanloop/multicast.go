package chanloop

import (
	"sync"
	"sync/atomic"

	"dfi/internal/transport"
)

// Group is an unreliable in-process multicast group. Send replicates to
// every attached member synchronously in the caller's goroutine; a
// member with no posted receive drops the message and counts it, the UD
// semantics the replicate flow's credit/NACK machinery is built for.
type Group struct {
	net *Net

	mu       sync.Mutex
	members  []*GroupEndpoint
	detached []bool
}

// GroupEndpoint is one member's receive side.
type GroupEndpoint struct {
	owner *Endpoint

	mu    sync.Mutex
	recvq []transport.RecvWR
	rcq   *CQ

	drops atomic.Int64
}

// Multicast creates a multicast group over the members.
func (n *Net) Multicast(members ...transport.Endpoint) transport.Group {
	g := &Group{net: n}
	for _, m := range members {
		g.members = append(g.members, &GroupEndpoint{owner: asEndpoint(m), rcq: newCQ()})
	}
	g.detached = make([]bool, len(g.members))
	return g
}

// Send multicasts src to every attached member with a posted receive.
func (g *Group) Send(p transport.Ctx, from transport.Endpoint, src []byte, excludeSelf bool) {
	sender := asEndpoint(from)
	g.mu.Lock()
	members := make([]*GroupEndpoint, len(g.members))
	copy(members, g.members)
	detached := make([]bool, len(g.detached))
	copy(detached, g.detached)
	g.mu.Unlock()
	posted := g.net.now()
	for i, ep := range members {
		if detached[i] {
			continue
		}
		if excludeSelf && ep.owner == sender {
			continue
		}
		g.net.trace(transport.OpSend, sender.id, ep.owner.id, len(src), posted, g.net.now())
		ep.deliver(src)
	}
}

func (ep *GroupEndpoint) deliver(data []byte) {
	ep.mu.Lock()
	if len(ep.recvq) == 0 {
		ep.mu.Unlock()
		ep.drops.Add(1)
		return
	}
	wr := ep.recvq[0]
	ep.recvq = ep.recvq[1:]
	ep.mu.Unlock()
	n := copy(wr.Buf, data)
	ep.rcq.push(transport.Completion{ID: wr.ID, Op: transport.OpRecv, Bytes: n, Buf: wr.Buf})
}

// PostRecv posts a receive buffer at the member.
func (ep *GroupEndpoint) PostRecv(buf []byte, id uint64) {
	ep.mu.Lock()
	ep.recvq = append(ep.recvq, transport.RecvWR{Buf: buf, ID: id})
	ep.mu.Unlock()
}

// RecvCQ returns the member's receive completion queue.
func (ep *GroupEndpoint) RecvCQ() transport.CompletionQueue { return ep.rcq }

// Owner returns the endpoint this member receives on.
func (ep *GroupEndpoint) Owner() transport.Endpoint { return ep.owner }

// DropCount returns messages dropped for lack of a posted receive.
func (ep *GroupEndpoint) DropCount() int64 { return ep.drops.Load() }

// Members returns the member count.
func (g *Group) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Member returns member i.
func (g *Group) Member(i int) transport.GroupEndpoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[i]
}

// EndpointFor returns the member receiving on ep, or nil.
func (g *Group) EndpointFor(ep transport.Endpoint) transport.GroupEndpoint {
	e := asEndpoint(ep)
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.owner == e {
			return m
		}
	}
	return nil
}

// Detach removes member i from delivery.
func (g *Group) Detach(i int) {
	g.mu.Lock()
	g.detached[i] = true
	g.mu.Unlock()
}

// Detached reports whether member i is detached.
func (g *Group) Detached(i int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.detached[i]
}

// Reattach re-adds slot i with a fresh receive queue on ep.
func (g *Group) Reattach(i int, ep transport.Endpoint) transport.GroupEndpoint {
	ne := &GroupEndpoint{owner: asEndpoint(ep), rcq: newCQ()}
	g.mu.Lock()
	g.members[i] = ne
	g.detached[i] = false
	g.mu.Unlock()
	return ne
}

var _ transport.Transport = (*Net)(nil)
