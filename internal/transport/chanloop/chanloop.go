// Package chanloop is an in-process transport backend: goroutines,
// channels and real []byte movement under wall-clock time, with no
// discrete-event kernel. It implements dfi/internal/transport so the DFI
// data path (core.Source/core.Target) runs on it unmodified — proving
// the flow API is backend-agnostic and rehearsing the concurrency a
// socket or verbs backend will face.
//
// Semantics mirror the DES fabric where the conformance suite
// (dfi/internal/transport/transporttest) pins them:
//
//   - Work requests on one queue execute in posting order (RC ordering):
//     each queue owns a worker goroutine draining an op channel.
//   - WRITE bodies commit strictly before their CommitTail bytes, the
//     whole segment applied under one region-lock hold; the region's
//     commit counter advances under the same lock, so a consumer that
//     observed a commit (WaitCommit/Load) reads the payload race-free
//     without copying.
//   - Source buffers are snapshotted synchronously at post time. That is
//     valid under the selective-signaling contract (callers must keep a
//     WR's buffer stable until a covering completion) and means local
//     ring reuse needs no extra synchronization.
//   - Atomics execute on the target region under its lock and block the
//     poster for the reply, serializing concurrent fetch-adds.
//   - Multicast is unreliable: a send finding no posted receive at a
//     member is dropped and counted, exactly like UD multicast.
//
// What chanloop does not model: virtual time, fault injection, crashes,
// leases/eviction, link bandwidth or CPU cost (Compute is a no-op).
// Those stay DES-only; see docs/ARCHITECTURE.md for the backend matrix.
package chanloop

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dfi/internal/transport"
)

// opsBuffer is the per-queue op-channel depth. Posting blocks when the
// worker falls this far behind, a crude but safe form of backpressure.
const opsBuffer = 1024

// Net is the chanloop backend: a factory for endpoints, queues, regions
// and multicast groups wired through in-process channels.
type Net struct {
	start    time.Time
	mu       sync.Mutex
	nextID   int
	nextSeed int64
	tracer   atomic.Pointer[tracerBox]
}

type tracerBox struct{ t transport.Tracer }

// New creates an empty chanloop network.
func New() *Net {
	return &Net{start: time.Now()}
}

// NewEndpoint adds an endpoint (one per simulated node).
func (n *Net) NewEndpoint() *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &Endpoint{net: n, id: n.nextID}
	n.nextID++
	return ep
}

// NewCtx returns a fresh execution context owned by the calling
// goroutine — the wall-clock analogue of a root sim process.
func (n *Net) NewCtx() transport.Ctx {
	n.mu.Lock()
	seed := n.nextSeed
	n.nextSeed++
	n.mu.Unlock()
	return &ctx{net: n, rnd: rand.New(rand.NewSource(seed))}
}

// SetTracer installs t to observe every verb (nil disables).
func (n *Net) SetTracer(t transport.Tracer) {
	if t == nil {
		n.tracer.Store(nil)
		return
	}
	n.tracer.Store(&tracerBox{t: t})
}

// trace reports an executed verb to the installed tracer. Workers call
// it concurrently; the bundled Recorder is mutex-guarded.
func (n *Net) trace(kind transport.OpKind, from, to int, bytes int, posted, arrived time.Duration) {
	box := n.tracer.Load()
	if box == nil || box.t == nil {
		return
	}
	box.t.Trace(transport.TraceOp{
		Kind: kind, From: from, To: to, Bytes: bytes,
		Posted: posted, Arrived: arrived, Disposition: transport.Delivered,
	})
}

func (n *Net) now() time.Duration { return time.Since(n.start) }

// Spawn starts fn on a new goroutine with its own context.
func (n *Net) Spawn(parent transport.Ctx, name string, fn func(transport.Ctx)) {
	c := n.NewCtx()
	go fn(c)
}

// CopiesPayload reports true: chanloop always moves real bytes.
func (n *Net) CopiesPayload() bool { return true }

// SwitchEndpoint returns an auxiliary endpoint for in-network compute.
func (n *Net) SwitchEndpoint() transport.Endpoint { return n.NewEndpoint() }

// NewCond returns a condition variable for goroutine contexts.
func (n *Net) NewCond() transport.Cond {
	c := &cond{}
	c.ch = make(chan struct{})
	return c
}

// ctx is a wall-clock execution context owned by one goroutine.
type ctx struct {
	net *Net
	rnd *rand.Rand
}

func (c *ctx) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (c *ctx) Now() time.Duration { return c.net.now() }

func (c *ctx) Rand() *rand.Rand { return c.rnd }

// Endpoint is one chanloop attachment point.
type Endpoint struct {
	net *Net
	id  int
}

// ID returns the endpoint's numeric identity.
func (ep *Endpoint) ID() int { return ep.id }

// Compute is a no-op: chanloop does not model CPU cost.
func (ep *Endpoint) Compute(p transport.Ctx, d time.Duration) {}

// Crashed reports false: chanloop has no fault injection.
func (ep *Endpoint) Crashed(at time.Duration) bool { return false }

func asEndpoint(ep transport.Endpoint) *Endpoint {
	e, ok := ep.(*Endpoint)
	if !ok {
		panic(fmt.Sprintf("chanloop: endpoint %T is not a chanloop endpoint", ep))
	}
	return e
}

// Region is a registered memory region. The mutex orders remote verb
// commits against local Store/Load and the commit counter: a consumer
// that observed a commit under the lock may then read the committed
// payload through Bytes without further synchronization.
type Region struct {
	owner *Endpoint
	mu    sync.Mutex
	buf   []byte
	seq   uint64
	// change is closed and replaced on every commit (broadcast).
	change chan struct{}
}

// OpenRegion registers a memory region of the given size on ep.
func (n *Net) OpenRegion(ep transport.Endpoint, size int) transport.Region {
	return &Region{owner: asEndpoint(ep), buf: make([]byte, size), change: make(chan struct{})}
}

// Bytes exposes the backing buffer (see the type comment for the rules).
func (r *Region) Bytes() []byte { return r.buf }

// Len returns the region size.
func (r *Region) Len() int { return len(r.buf) }

// Owner returns the owning endpoint.
func (r *Region) Owner() transport.Endpoint { return r.owner }

// Deregister is a no-op (the garbage collector owns the buffer).
func (r *Region) Deregister() {}

// Store copies src into the region at off, ordered against remote
// commits.
func (r *Region) Store(off int, src []byte) {
	r.mu.Lock()
	copy(r.buf[off:off+len(src)], src)
	r.mu.Unlock()
}

// Load copies region bytes at off into dst, ordered against remote
// commits.
func (r *Region) Load(off int, dst []byte) {
	r.mu.Lock()
	copy(dst, r.buf[off:off+len(dst)])
	r.mu.Unlock()
}

// CommitSeq returns the count of remote commits applied so far.
func (r *Region) CommitSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// commit applies fn to the buffer under the lock, bumps the commit
// counter and wakes waiters.
func (r *Region) commit(fn func(buf []byte)) {
	r.mu.Lock()
	fn(r.buf)
	r.seq++
	close(r.change)
	r.change = make(chan struct{})
	r.mu.Unlock()
}

// WaitCommit blocks until the commit counter passes since or d elapses.
func (r *Region) WaitCommit(p transport.Ctx, since uint64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		r.mu.Lock()
		if r.seq != since {
			r.mu.Unlock()
			return true
		}
		ch := r.change
		r.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// WaitChange blocks until the next commit or d elapses.
func (r *Region) WaitChange(p transport.Ctx, d time.Duration) bool {
	return r.WaitCommit(p, r.CommitSeq(), d)
}

func asRegion(a transport.Addr) *Region {
	r, ok := a.MR.(*Region)
	if !ok {
		panic(fmt.Sprintf("chanloop: Addr region %T is not a chanloop region", a.MR))
	}
	return r
}

// cond is a broadcast-channel condition variable. Signal degrades to
// Broadcast; every transport waiter re-checks its predicate in a loop,
// so spurious wake-ups are harmless.
type cond struct {
	mu sync.Mutex
	ch chan struct{}
}

func (c *cond) current() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}

func (c *cond) Wait(p transport.Ctx) { <-c.current() }

func (c *cond) WaitTimeout(p transport.Ctx, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.current():
		return true
	case <-t.C:
		return false
	}
}

func (c *cond) Signal() { c.Broadcast() }

func (c *cond) Broadcast() {
	c.mu.Lock()
	close(c.ch)
	c.ch = make(chan struct{})
	c.mu.Unlock()
}

// CQ is a completion queue: mutex-guarded entries plus a broadcast
// channel for blocking waits.
type CQ struct {
	mu      sync.Mutex
	entries []transport.Completion
	change  chan struct{}
}

func newCQ() *CQ { return &CQ{change: make(chan struct{})} }

func (cq *CQ) push(e transport.Completion) {
	cq.mu.Lock()
	cq.entries = append(cq.entries, e)
	close(cq.change)
	cq.change = make(chan struct{})
	cq.mu.Unlock()
}

// requeue re-appends a drained completion (ReadSync's unrelated-entry
// preservation).
func (cq *CQ) requeue(e transport.Completion) { cq.push(e) }

// Poll removes one completion without blocking.
func (cq *CQ) Poll(p transport.Ctx) (transport.Completion, bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if len(cq.entries) == 0 {
		return transport.Completion{}, false
	}
	e := cq.entries[0]
	cq.entries = cq.entries[1:]
	return e, true
}

// PollBatch drains up to len(out) completions in one lock hold — the
// burst win on this backend: one acquisition per batch instead of one
// per entry, with completion order preserved.
func (cq *CQ) PollBatch(p transport.Ctx, out []transport.Completion) int {
	cq.mu.Lock()
	n := copy(out, cq.entries)
	if n > 0 {
		rest := copy(cq.entries, cq.entries[n:])
		cq.entries = cq.entries[:rest]
	}
	cq.mu.Unlock()
	return n
}

// Wait blocks until a completion is available and removes it.
func (cq *CQ) Wait(p transport.Ctx) transport.Completion {
	for {
		cq.mu.Lock()
		if len(cq.entries) > 0 {
			e := cq.entries[0]
			cq.entries = cq.entries[1:]
			cq.mu.Unlock()
			return e
		}
		ch := cq.change
		cq.mu.Unlock()
		<-ch
	}
}

// WaitTimeout is Wait bounded by d.
func (cq *CQ) WaitTimeout(p transport.Ctx, d time.Duration) (transport.Completion, bool) {
	deadline := time.Now().Add(d)
	for {
		cq.mu.Lock()
		if len(cq.entries) > 0 {
			e := cq.entries[0]
			cq.entries = cq.entries[1:]
			cq.mu.Unlock()
			return e, true
		}
		ch := cq.change
		cq.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return transport.Completion{}, false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// WaitNonEmpty blocks until the queue is non-empty or d elapses.
func (cq *CQ) WaitNonEmpty(p transport.Ctx, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		cq.mu.Lock()
		n := len(cq.entries)
		ch := cq.change
		cq.mu.Unlock()
		if n > 0 {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// Len returns the number of pending completions.
func (cq *CQ) Len() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.entries)
}
