package chanloop

import (
	"encoding/binary"
	"sync"
	"time"

	"dfi/internal/transport"
)

// Queue is one end of a reliable in-process queue pair. A worker
// goroutine drains posted ops in order, giving the RC guarantee: work
// requests on one queue execute in posting order, whatever they are.
type Queue struct {
	net   *Net
	owner *Endpoint
	peer  *Queue

	scq *CQ
	rcq *CQ

	ops chan func()

	// Two-sided receive state, locked because the owner posts receives
	// while the peer's worker delivers sends.
	rmu     sync.Mutex
	recvq   []transport.RecvWR
	arrived []arrival

	nextID uint64
}

type arrival struct {
	data []byte
	id   uint64
}

// Dial connects endpoints a and b with a queue pair, starting one worker
// goroutine per end. Workers live for the lifetime of the process (the
// backend is built for in-process tests and tools; a Close lifecycle can
// ride along with the socket backend).
func (n *Net) Dial(a, b transport.Endpoint) (transport.Queue, transport.Queue) {
	qa := &Queue{net: n, owner: asEndpoint(a), scq: newCQ(), rcq: newCQ(), ops: make(chan func(), opsBuffer)}
	qb := &Queue{net: n, owner: asEndpoint(b), scq: newCQ(), rcq: newCQ(), ops: make(chan func(), opsBuffer)}
	qa.peer, qb.peer = qb, qa
	go qa.run()
	go qb.run()
	return qa, qb
}

func (q *Queue) run() {
	for op := range q.ops {
		op()
	}
}

// SendCQ returns the queue's send-side completion queue.
func (q *Queue) SendCQ() transport.CompletionQueue { return q.scq }

// RecvCQ returns the queue's receive-side completion queue.
func (q *Queue) RecvCQ() transport.CompletionQueue { return q.rcq }

// Write posts a one-sided WRITE of src into dst on the peer's region.
// The source buffer is snapshotted synchronously (valid under the
// selective-signaling contract); the commit happens on the worker, body
// strictly before the CommitTail bytes, in one region-lock hold.
func (q *Queue) Write(p transport.Ctx, src []byte, dst transport.Addr, opts transport.WriteOptions) {
	staged := make([]byte, len(src))
	copy(staged, src)
	q.postWrite(staged, dst, opts)
}

// WriteBatch posts the given WRITEs back-to-back; one snapshot covers
// the batch.
func (q *Queue) WriteBatch(p transport.Ctx, wrs []transport.WriteWR) {
	for i := range wrs {
		q.Write(p, wrs[i].Src, wrs[i].Dst, wrs[i].Opts)
	}
}

func (q *Queue) postWrite(staged []byte, dst transport.Addr, opts transport.WriteOptions) {
	r := asRegion(dst)
	if r.owner != q.peer.owner {
		panic("chanloop: WRITE destination region not on peer endpoint")
	}
	posted := q.net.now()
	q.ops <- func() {
		off := dst.Off
		n := len(staged)
		tail := opts.CommitTail
		if tail > n {
			tail = n
		}
		body := n - tail
		r.commit(func(buf []byte) {
			// One lock hold applies body then tail: a consumer can never
			// observe the tail (footer) without the body it covers.
			copy(buf[off:off+body], staged[:body])
			if tail > 0 {
				copy(buf[off+body:off+n], staged[body:])
			}
		})
		q.net.trace(transport.OpWrite, q.owner.id, q.peer.owner.id, n, posted, q.net.now())
		if opts.Signaled {
			q.scq.push(transport.Completion{ID: opts.ID, Op: transport.OpWrite, Bytes: n})
		}
	}
}

// Read posts a one-sided READ of len(dst) bytes from src into dst. The
// caller must not touch dst until the completion arrives (the CQ push
// provides the happens-before edge).
func (q *Queue) Read(p transport.Ctx, dst []byte, src transport.Addr, signaled bool, id uint64) {
	r := asRegion(src)
	if r.owner != q.peer.owner {
		panic("chanloop: READ source region not on peer endpoint")
	}
	posted := q.net.now()
	q.ops <- func() {
		r.Load(src.Off, dst)
		q.net.trace(transport.OpRead, q.owner.id, q.peer.owner.id, len(dst), posted, q.net.now())
		if signaled {
			q.scq.push(transport.Completion{ID: id, Op: transport.OpRead, Bytes: len(dst)})
		}
	}
}

// ReadSync performs a signaled READ and blocks until it completes,
// returning the elapsed wall-clock time.
func (q *Queue) ReadSync(p transport.Ctx, dst []byte, src transport.Addr) time.Duration {
	start := p.Now()
	q.nextID++
	id := q.nextID | 1<<63
	q.Read(p, dst, src, true, id)
	for {
		c := q.scq.Wait(p)
		if c.ID == id {
			break
		}
		q.scq.requeue(c)
	}
	return p.Now() - start
}

// FetchAdd atomically adds delta to the 8-byte counter at dst and
// returns the previous value, blocking for the reply. Ordering with
// earlier WRITEs on the same queue holds because the op runs on the
// same worker; serialization across queues comes from the region lock.
func (q *Queue) FetchAdd(p transport.Ctx, dst transport.Addr, delta uint64) uint64 {
	v, _ := q.FetchAddChecked(p, dst, delta)
	return v
}

// FetchAddChecked is FetchAdd with an explicit success indicator; on
// chanloop endpoints never crash, so ok is always true.
func (q *Queue) FetchAddChecked(p transport.Ctx, dst transport.Addr, delta uint64) (uint64, bool) {
	r := asRegion(dst)
	if r.owner != q.peer.owner {
		panic("chanloop: atomic destination region not on peer endpoint")
	}
	posted := q.net.now()
	reply := make(chan uint64, 1)
	q.ops <- func() {
		var old uint64
		r.commit(func(buf []byte) {
			old = binary.LittleEndian.Uint64(buf[dst.Off : dst.Off+8])
			binary.LittleEndian.PutUint64(buf[dst.Off:dst.Off+8], old+delta)
		})
		q.net.trace(transport.OpFetchAdd, q.owner.id, q.peer.owner.id, 8, posted, q.net.now())
		reply <- old
	}
	return <-reply, true
}

// CompareSwap atomically replaces the counter at dst with swap when it
// equals expect, returning the previous value.
func (q *Queue) CompareSwap(p transport.Ctx, dst transport.Addr, expect, swap uint64) uint64 {
	r := asRegion(dst)
	if r.owner != q.peer.owner {
		panic("chanloop: atomic destination region not on peer endpoint")
	}
	posted := q.net.now()
	reply := make(chan uint64, 1)
	q.ops <- func() {
		var old uint64
		r.commit(func(buf []byte) {
			old = binary.LittleEndian.Uint64(buf[dst.Off : dst.Off+8])
			if old == expect {
				binary.LittleEndian.PutUint64(buf[dst.Off:dst.Off+8], swap)
			}
		})
		q.net.trace(transport.OpCompareSwap, q.owner.id, q.peer.owner.id, 8, posted, q.net.now())
		reply <- old
	}
	return <-reply
}

// Send posts a two-sided SEND of src to the peer. Reliable semantics: a
// message arriving before a receive is posted waits in the peer's
// arrival queue.
func (q *Queue) Send(p transport.Ctx, src []byte, signaled bool, id uint64) {
	staged := make([]byte, len(src))
	copy(staged, src)
	posted := q.net.now()
	q.ops <- func() {
		q.peer.deliver(staged, id)
		q.net.trace(transport.OpSend, q.owner.id, q.peer.owner.id, len(staged), posted, q.net.now())
		if signaled {
			q.scq.push(transport.Completion{ID: id, Op: transport.OpSend, Bytes: len(staged)})
		}
	}
}

// deliver hands an arrived message to a posted receive, or queues it.
func (q *Queue) deliver(data []byte, sendID uint64) {
	q.rmu.Lock()
	if len(q.recvq) > 0 {
		wr := q.recvq[0]
		q.recvq = q.recvq[1:]
		q.rmu.Unlock()
		n := copy(wr.Buf, data)
		q.rcq.push(transport.Completion{ID: wr.ID, Op: transport.OpRecv, Bytes: n, Value: sendID, Buf: wr.Buf})
		return
	}
	q.arrived = append(q.arrived, arrival{data: data, id: sendID})
	q.rmu.Unlock()
}

// PostRecv posts a receive buffer; a queued early arrival is consumed
// immediately.
func (q *Queue) PostRecv(buf []byte, id uint64) {
	q.rmu.Lock()
	if len(q.arrived) > 0 {
		a := q.arrived[0]
		q.arrived = q.arrived[1:]
		q.rmu.Unlock()
		n := copy(buf, a.data)
		q.rcq.push(transport.Completion{ID: id, Op: transport.OpRecv, Bytes: n, Value: a.id, Buf: buf})
		return
	}
	q.recvq = append(q.recvq, transport.RecvWR{Buf: buf, ID: id})
	q.rmu.Unlock()
}

// PostedRecvs returns the number of posted, unconsumed receives.
func (q *Queue) PostedRecvs() int {
	q.rmu.Lock()
	defer q.rmu.Unlock()
	return len(q.recvq)
}
