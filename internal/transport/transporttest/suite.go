// Package transporttest is the conformance suite every transport backend
// must pass: one table of semantic tests — per-queue write ordering with
// commit-tail visibility, fetch-add serialization returning unique old
// values, reliable two-sided send/recv, CQ signaled-only completions,
// and multicast drop-without-posted-recv — executed against a
// backend-supplied environment. The DES fabric and chanloop both run it
// (internal/fabric/conformance_test.go,
// internal/transport/chanloop/conformance_test.go); a future socket
// backend passes by wiring up NewEnv.
package transporttest

import (
	"encoding/binary"
	"testing"
	"time"

	"dfi/internal/transport"
)

// Env is one freshly built backend instance for one test case: a
// transport, n endpoints, a way to start concurrent actors, and a Run
// that drives them to completion (the sim kernel's event loop, or a
// WaitGroup wait for goroutine backends).
type Env struct {
	T  transport.Transport
	EP []transport.Endpoint
	// Go starts fn as a concurrent actor (sim process or goroutine).
	Go func(name string, fn func(transport.Ctx))
	// Run drives all actors started with Go until they finish.
	Run func()
}

// NewEnv builds a fresh Env with n endpoints.
type NewEnv func(n int) Env

// waitFor is the bounded wait used by every test: generous on wall
// clocks, cheap in virtual time.
const waitFor = 5 * time.Second

// Run executes the conformance table against the backend.
func Run(t *testing.T, newEnv NewEnv) {
	cases := []struct {
		name string
		fn   func(t *testing.T, env Env)
	}{
		{"WriteOrderingPerQueue", testWriteOrdering},
		{"WriteCommitTailLast", testCommitTail},
		{"FetchAddSerialization", testFetchAdd},
		{"CompareSwap", testCompareSwap},
		{"SendRecvReliable", testSendRecv},
		{"SignaledOnlyCompletions", testSignaledOnly},
		{"BurstPollOrdering", testBurstPoll},
		{"ReadBack", testReadBack},
		{"MulticastDropWithoutRecv", testMulticastDrop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, newEnv(3))
		})
	}
}

// testWriteOrdering pins RC ordering: N unsignaled writes posted on one
// queue, then one signaled marker write. When the reader observes the
// marker, every earlier write must already be visible.
func testWriteOrdering(t *testing.T, env Env) {
	const n = 64
	mr := env.T.OpenRegion(env.EP[1], (n+1)*8)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("writer", func(p transport.Ctx) {
		// One backing slot per WR: the selective-signaling contract says a
		// source buffer must stay stable until a covering completion.
		src := make([]byte, (n+1)*8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(src[i*8:], uint64(i)+1)
			qa.Write(p, src[i*8:(i+1)*8], transport.Addr{MR: mr, Off: i * 8}, transport.WriteOptions{})
		}
		binary.LittleEndian.PutUint64(src[n*8:], ^uint64(0))
		qa.Write(p, src[n*8:], transport.Addr{MR: mr, Off: n * 8}, transport.WriteOptions{Signaled: true, ID: 7})
		if c, ok := qa.SendCQ().WaitTimeout(p, waitFor); !ok || c.ID != 7 {
			t.Errorf("marker write completion: got (%+v,%v), want ID 7", c, ok)
		}
	})
	env.Go("reader", func(p transport.Ctx) {
		buf := make([]byte, 8)
		deadline := p.Now() + waitFor
		for {
			mr.Load(n*8, buf)
			if binary.LittleEndian.Uint64(buf) == ^uint64(0) {
				break
			}
			if p.Now() > deadline {
				t.Errorf("marker write never became visible")
				return
			}
			mr.WaitChange(p, 10*time.Millisecond)
		}
		for i := 0; i < n; i++ {
			mr.Load(i*8, buf)
			if got := binary.LittleEndian.Uint64(buf); got != uint64(i)+1 {
				t.Errorf("slot %d: got %d before marker, want %d (ordering violated)", i, got, i+1)
			}
		}
	})
	env.Run()
}

// testCommitTail pins footer-last commit ordering: a WRITE whose
// CommitTail bytes must never be visible before its body.
func testCommitTail(t *testing.T, env Env) {
	const body, tail, rounds = 1024, 16, 32
	mr := env.T.OpenRegion(env.EP[1], body+tail)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("writer", func(p transport.Ctx) {
		seg := make([]byte, body+tail)
		for round := 1; round <= rounds; round++ {
			for i := 0; i < body; i++ {
				seg[i] = byte(round)
			}
			binary.LittleEndian.PutUint64(seg[body:], uint64(round))
			qa.Write(p, seg, transport.Addr{MR: mr, Off: 0},
				transport.WriteOptions{CommitTail: tail, Signaled: true, ID: uint64(round)})
			if _, ok := qa.SendCQ().WaitTimeout(p, waitFor); !ok {
				t.Errorf("round %d: write completion lost", round)
				return
			}
		}
	})
	env.Go("reader", func(p transport.Ctx) {
		ftr := make([]byte, 8)
		b := make([]byte, body)
		seen := uint64(0)
		deadline := p.Now() + waitFor
		for seen < rounds && p.Now() < deadline {
			since := mr.CommitSeq()
			mr.Load(body, ftr)
			round := binary.LittleEndian.Uint64(ftr)
			if round > seen {
				// Footer visible: the whole body of that round must be too.
				mr.Load(0, b)
				for i := 0; i < body; i++ {
					if uint64(b[i]) < round {
						t.Errorf("round %d: body byte %d is stale (%d) under committed tail", round, i, b[i])
						return
					}
				}
				seen = round
			}
			mr.WaitCommit(p, since, 10*time.Millisecond)
		}
		if seen < rounds {
			t.Errorf("saw only %d/%d rounds", seen, rounds)
		}
	})
	env.Run()
}

// testFetchAdd pins atomic serialization: concurrent fetch-adds from two
// endpoints each observe a unique old value, and the counter sums up.
func testFetchAdd(t *testing.T, env Env) {
	const perActor = 50
	mr := env.T.OpenRegion(env.EP[2], 8)
	q0, _ := env.T.Dial(env.EP[0], env.EP[2])
	q1, _ := env.T.Dial(env.EP[1], env.EP[2])

	olds := make(chan uint64, 2*perActor)
	actor := func(q transport.Queue) func(transport.Ctx) {
		return func(p transport.Ctx) {
			for i := 0; i < perActor; i++ {
				old, ok := q.FetchAddChecked(p, transport.Addr{MR: mr, Off: 0}, 1)
				if !ok {
					t.Errorf("fetch-add reported failure on a healthy endpoint")
					return
				}
				olds <- old
			}
		}
	}
	env.Go("fa-0", actor(q0))
	env.Go("fa-1", actor(q1))
	env.Run()

	close(olds)
	seen := make(map[uint64]bool)
	for v := range olds {
		if seen[v] {
			t.Errorf("old value %d returned twice (atomics not serialized)", v)
		}
		seen[v] = true
	}
	if len(seen) != 2*perActor {
		t.Errorf("got %d distinct old values, want %d", len(seen), 2*perActor)
	}
	final := make([]byte, 8)
	mr.Load(0, final)
	if got := binary.LittleEndian.Uint64(final); got != 2*perActor {
		t.Errorf("final counter %d, want %d", got, 2*perActor)
	}
}

// testCompareSwap pins compare-and-swap: exactly one of two racing CAS
// attempts from the same queue wins, and a CAS with a stale expect
// fails without writing.
func testCompareSwap(t *testing.T, env Env) {
	mr := env.T.OpenRegion(env.EP[1], 8)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("cas", func(p transport.Ctx) {
		if old := qa.CompareSwap(p, transport.Addr{MR: mr, Off: 0}, 0, 42); old != 0 {
			t.Errorf("first CAS old=%d, want 0", old)
		}
		if old := qa.CompareSwap(p, transport.Addr{MR: mr, Off: 0}, 0, 99); old != 42 {
			t.Errorf("stale CAS old=%d, want 42", old)
		}
		buf := make([]byte, 8)
		mr.Load(0, buf)
		if got := binary.LittleEndian.Uint64(buf); got != 42 {
			t.Errorf("counter=%d after failed CAS, want 42", got)
		}
	})
	env.Run()
}

// testSendRecv pins reliable two-sided semantics: a posted receive gets
// the message; a message sent before any receive is posted is queued,
// not dropped.
func testSendRecv(t *testing.T, env Env) {
	qa, qb := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("sender", func(p transport.Ctx) {
		qa.Send(p, []byte("early-bird"), true, 1)
		if c, ok := qa.SendCQ().WaitTimeout(p, waitFor); !ok || c.Op != transport.OpSend {
			t.Errorf("send completion: got (%+v,%v)", c, ok)
		}
	})
	env.Go("receiver", func(p transport.Ctx) {
		// Post the receive well after the send has arrived unmatched;
		// reliable queues must have held the message.
		p.Sleep(50 * time.Millisecond)
		buf := make([]byte, 16)
		qb.PostRecv(buf, 5)
		c, ok := qb.RecvCQ().WaitTimeout(p, waitFor)
		if !ok {
			t.Errorf("early send was lost (reliable queues must queue it)")
			return
		}
		if c.ID != 5 || string(c.Buf[:c.Bytes]) != "early-bird" {
			t.Errorf("recv completion: id=%d payload=%q", c.ID, c.Buf[:c.Bytes])
		}
	})
	env.Run()
}

// testSignaledOnly pins selective signaling: unsignaled writes produce
// no completions; the one signaled write produces exactly one.
func testSignaledOnly(t *testing.T, env Env) {
	mr := env.T.OpenRegion(env.EP[1], 64)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("writer", func(p transport.Ctx) {
		buf := []byte("x")
		for i := 0; i < 10; i++ {
			qa.Write(p, buf, transport.Addr{MR: mr, Off: i}, transport.WriteOptions{})
		}
		qa.Write(p, buf, transport.Addr{MR: mr, Off: 10}, transport.WriteOptions{Signaled: true, ID: 77})
		c, ok := qa.SendCQ().WaitTimeout(p, waitFor)
		if !ok || c.ID != 77 {
			t.Errorf("signaled completion: got (%+v,%v), want ID 77", c, ok)
		}
		// Grace period: any spurious completion from the unsignaled writes
		// would land within it.
		p.Sleep(5 * time.Millisecond)
		if n := qa.SendCQ().Len(); n != 0 {
			t.Errorf("%d spurious completions from unsignaled writes", n)
		}
	})
	env.Run()
}

// testBurstPoll pins burst draining: completions drained with PollBatch
// come back in per-queue posting order — across batch boundaries, on
// partial batches (queue shorter than the burst buffer), and when burst
// drains interleave with single Polls. Burst size deliberately does not
// divide the completion count, so the final drain is partial.
func testBurstPoll(t *testing.T, env Env) {
	const n = 45
	mr := env.T.OpenRegion(env.EP[1], n*8)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])

	env.Go("writer", func(p transport.Ctx) {
		src := make([]byte, n*8)
		cq := qa.SendCQ()
		burst := make([]transport.Completion, 7)
		got := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(src[i*8:], uint64(i)+1)
			qa.Write(p, src[i*8:(i+1)*8], transport.Addr{MR: mr, Off: i * 8},
				transport.WriteOptions{Signaled: true, ID: uint64(i) + 1})
		}
		deadline := p.Now() + waitFor
		for len(got) < n {
			if p.Now() > deadline {
				t.Errorf("drained only %d/%d completions before deadline", len(got), n)
				return
			}
			k := cq.PollBatch(p, burst)
			if k > len(burst) {
				t.Errorf("PollBatch wrote %d entries into a buffer of %d", k, len(burst))
				return
			}
			for i := 0; i < k; i++ {
				got = append(got, burst[i].ID)
			}
			// Interleave a single poll after each burst: mixing drain
			// styles must not reorder or duplicate.
			if c, ok := cq.Poll(p); ok {
				got = append(got, c.ID)
			}
			if k == 0 && len(got) < n {
				cq.WaitNonEmpty(p, waitFor)
			}
		}
		for i, id := range got {
			if id != uint64(i)+1 {
				t.Errorf("completion %d: got ID %d, want %d (burst drain broke RC order)", i, id, i+1)
				return
			}
		}
		if cq.PollBatch(p, burst) != 0 {
			t.Errorf("PollBatch on a drained CQ returned entries")
		}
	})
	env.Run()
}

// testReadBack pins one-sided READ: the reader sees bytes the region
// owner stored, both via ReadSync and via an async signaled Read.
func testReadBack(t *testing.T, env Env) {
	mr := env.T.OpenRegion(env.EP[1], 16)
	qa, _ := env.T.Dial(env.EP[0], env.EP[1])
	mr.Store(0, []byte("remote-bytes!!!!"))

	env.Go("reader", func(p transport.Ctx) {
		dst := make([]byte, 16)
		qa.ReadSync(p, dst, transport.Addr{MR: mr, Off: 0})
		if string(dst) != "remote-bytes!!!!" {
			t.Errorf("ReadSync got %q", dst)
		}
		dst2 := make([]byte, 6)
		qa.Read(p, dst2, transport.Addr{MR: mr, Off: 0}, true, 3)
		c, ok := qa.SendCQ().WaitTimeout(p, waitFor)
		if !ok || c.ID != 3 || c.Op != transport.OpRead {
			t.Errorf("read completion: got (%+v,%v)", c, ok)
			return
		}
		if string(dst2) != "remote" {
			t.Errorf("async read got %q", dst2)
		}
	})
	env.Run()
}

// testMulticastDrop pins UD semantics: a member with a posted receive
// delivers; a member without one drops and counts the loss.
func testMulticastDrop(t *testing.T, env Env) {
	g := env.T.Multicast(env.EP[0], env.EP[1])
	ready := g.Member(0)

	env.Go("sender", func(p transport.Ctx) {
		buf := make([]byte, 32)
		ready.PostRecv(buf, 9)
		// Member 1 posts nothing.
		g.Send(p, env.EP[2], []byte("fanout"), false)
		c, ok := ready.RecvCQ().WaitTimeout(p, waitFor)
		if !ok || string(c.Buf[:c.Bytes]) != "fanout" {
			t.Errorf("member 0 delivery: got (%+v,%v)", c, ok)
		}
	})
	env.Run()

	if got := g.Member(1).DropCount(); got != 1 {
		t.Errorf("member 1 drops = %d, want 1 (no posted receive)", got)
	}
	if got := g.Member(1).RecvCQ().Len(); got != 0 {
		t.Errorf("member 1 has %d completions, want 0", got)
	}
}
