// Package transport defines the verb surface the DFI data path runs on:
// one-sided WRITE/WRITE-batch/READ, FETCH-ADD/COMPARE-SWAP, two-sided
// SEND/RECV with completion-queue polling, unreliable multicast, and
// memory-region registration — the RDMA-shaped operations of the paper,
// abstracted so backends are interchangeable.
//
// Two backends implement it today: dfi/internal/fabric, the deterministic
// discrete-event-simulation fabric (the reference backend — every chaos,
// property and bench suite runs on it), and
// dfi/internal/transport/chanloop, an in-process goroutine/channel backend
// that moves real []byte payloads under wall-clock time with no sim
// kernel. The conformance suite in dfi/internal/transport/transporttest
// pins the semantics both must share.
//
// The execution-context abstraction is Ctx: the DES backend passes
// *sim.Proc (which satisfies Ctx structurally), real backends pass a
// wall-clock context owned by a goroutine. Code written against Ctx and
// the interfaces below runs unmodified on either.
package transport

import (
	"math/rand"
	"time"
)

// Ctx is the execution context verbs and flow logic run under: virtual
// time and cooperative sleeps on the DES backend, wall-clock time and
// real sleeps on goroutine backends. *sim.Proc satisfies Ctx.
//
// Blocking verbs park the Ctx that posted them; a Ctx must therefore be
// owned by exactly one logical thread (one sim process or one goroutine).
type Ctx interface {
	// Sleep suspends the caller for d (virtual or wall-clock time).
	Sleep(d time.Duration)
	// Now returns the current time since the start of the run.
	Now() time.Duration
	// Rand returns this context's deterministic random source (used for
	// randomized backoff).
	Rand() *rand.Rand
}

// Endpoint is one node-level attachment point of the transport: memory
// regions are registered on it, queues connect pairs of them, and
// per-tuple CPU cost is charged to it.
type Endpoint interface {
	// ID returns the endpoint's stable numeric identity.
	ID() int
	// Compute charges d of CPU work to the endpoint (scaled virtual time
	// on the DES backend; a no-op or real delay on others).
	Compute(p Ctx, d time.Duration)
	// Crashed reports whether the endpoint is crashed at time at
	// (fault-injection backends only; always false elsewhere).
	Crashed(at time.Duration) bool
}

// Region is a registered memory region remote queues can WRITE into,
// READ from, and apply atomics to.
//
// Bytes returns the backing buffer for zero-copy local access. On
// concurrent backends, plain access through Bytes is only safe under the
// transport's commit ordering: payload bytes may be read after the
// commit that published them was observed (CommitSeq/WaitCommit), and
// written while no remote op can touch them. Bytes that a remote peer
// polls or overwrites concurrently — ring header counters, segment
// footer flags — must go through Store/Load, which synchronize with
// remote verbs.
type Region interface {
	Bytes() []byte
	Len() int
	// Owner returns the endpoint the region is registered on.
	Owner() Endpoint
	// Deregister releases the region's registration.
	Deregister()
	// Store copies src into the region at off, synchronized with remote
	// verbs (a local store on the owning endpoint — free on RDMA).
	Store(off int, src []byte)
	// Load copies region bytes at off into dst, synchronized with remote
	// verbs.
	Load(off int, dst []byte)
	// CommitSeq returns the count of remote commits applied so far.
	CommitSeq() uint64
	// WaitCommit blocks until the commit count exceeds since or d
	// elapses, reporting whether it advanced.
	WaitCommit(p Ctx, since uint64, d time.Duration) bool
	// WaitChange blocks until any remote commit lands or d elapses.
	WaitChange(p Ctx, d time.Duration) bool
}

// Addr names a byte offset inside a registered region.
type Addr struct {
	MR  Region
	Off int
}

// OpKind identifies a verb in completions and traces.
type OpKind uint8

// Verb kinds.
const (
	OpWrite OpKind = iota
	OpRead
	OpSend
	OpRecv
	OpFetchAdd
	OpCompareSwap
)

// String renders the op kind in verbs-spec spelling (WRITE, READ, ...).
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCompareSwap:
		return "CMP_SWAP"
	}
	return "UNKNOWN"
}

// Completion is one completion-queue entry.
type Completion struct {
	ID    uint64
	Op    OpKind
	Bytes int
	// Value carries the old value of an atomic op.
	Value uint64
	// Buf is the receive buffer of a RECV completion.
	Buf []byte
}

// WriteOptions control one WRITE work request.
type WriteOptions struct {
	// Signaled requests a completion on the send CQ (selective
	// signaling: unsignaled writes complete silently).
	Signaled bool
	// ID tags the completion.
	ID uint64
	// CommitTail, when non-zero, is the length of the trailing commit
	// unit (a segment footer): the backend guarantees the tail becomes
	// visible strictly after the body, and counts one region commit per
	// tail landed.
	CommitTail int
}

// WriteWR is one entry of a doorbell-batched WRITE post.
type WriteWR struct {
	Src  []byte
	Dst  Addr
	Opts WriteOptions
}

// RecvWR is a posted receive buffer.
type RecvWR struct {
	Buf []byte
	ID  uint64
}

// CompletionQueue delivers verb completions in completion order.
type CompletionQueue interface {
	// Poll removes one completion without blocking (ok=false when empty).
	Poll(p Ctx) (Completion, bool)
	// PollBatch drains up to len(out) available completions into out
	// without blocking and returns how many it wrote. Completion order is
	// preserved. Backends charge the same per-completion poll cost as
	// repeated Poll calls, so burst draining never alters simulated
	// timing; it only removes per-entry wakeups and interface churn.
	PollBatch(p Ctx, out []Completion) int
	// Wait blocks until a completion is available and removes it.
	Wait(p Ctx) Completion
	// WaitTimeout is Wait bounded by d.
	WaitTimeout(p Ctx, d time.Duration) (Completion, bool)
	// WaitNonEmpty blocks until the queue is non-empty or d elapses,
	// without removing anything.
	WaitNonEmpty(p Ctx, d time.Duration) bool
	// Len returns the number of pending completions.
	Len() int
}

// Queue is one end of a reliable connected queue pair. Work requests on
// one queue execute in posting order (RC ordering); completions appear
// on the owning CQ in execution order.
type Queue interface {
	// Write posts a one-sided WRITE of src into dst.
	Write(p Ctx, src []byte, dst Addr, opts WriteOptions)
	// WriteBatch posts several WRITEs with one doorbell.
	WriteBatch(p Ctx, wrs []WriteWR)
	// Read posts a one-sided READ of len(dst) bytes from src into dst;
	// the completion (when signaled) carries id.
	Read(p Ctx, dst []byte, src Addr, signaled bool, id uint64)
	// ReadSync performs a READ and blocks until it completes, returning
	// the elapsed time.
	ReadSync(p Ctx, dst []byte, src Addr) time.Duration
	// FetchAdd atomically adds delta to the 8-byte counter at dst and
	// returns the previous value.
	FetchAdd(p Ctx, dst Addr, delta uint64) uint64
	// FetchAddChecked is FetchAdd reporting ok=false when the remote
	// endpoint is unreachable (crashed) instead of blocking forever.
	FetchAddChecked(p Ctx, dst Addr, delta uint64) (uint64, bool)
	// CompareSwap atomically replaces the counter at dst with swap when
	// it equals expect, returning the previous value.
	CompareSwap(p Ctx, dst Addr, expect, swap uint64) uint64
	// Send posts a two-sided SEND consumed by a posted receive at the
	// peer; unmatched sends are queued (reliable delivery).
	Send(p Ctx, src []byte, signaled bool, id uint64)
	// PostRecv posts a receive buffer for incoming SENDs.
	PostRecv(buf []byte, id uint64)
	// PostedRecvs returns the number of posted, unconsumed receives.
	PostedRecvs() int
	// SendCQ returns the completion queue of sends, writes, reads and
	// atomics posted on this queue.
	SendCQ() CompletionQueue
	// RecvCQ returns the completion queue of consumed receives.
	RecvCQ() CompletionQueue
}

// GroupEndpoint is one member's receive side of a multicast group.
type GroupEndpoint interface {
	// PostRecv posts a receive buffer for group sends.
	PostRecv(buf []byte, id uint64)
	// RecvCQ returns the member's receive completion queue.
	RecvCQ() CompletionQueue
	// Owner returns the endpoint this member receives on.
	Owner() Endpoint
	// DropCount returns sends dropped at this member for lack of a
	// posted receive (unreliable datagram semantics).
	DropCount() int64
}

// Group is an unreliable multicast group: Send delivers to every
// attached member with a posted receive and silently drops at members
// without one.
type Group interface {
	// Send multicasts src from the given endpoint to all attached
	// members; excludeSelf skips the sender's own membership.
	Send(p Ctx, from Endpoint, src []byte, excludeSelf bool)
	// Members returns the member count (attached or not).
	Members() int
	// Member returns member i (nil when detached).
	Member(i int) GroupEndpoint
	// EndpointFor returns the member receiving on ep, or nil.
	EndpointFor(ep Endpoint) GroupEndpoint
	// Detach removes member i from delivery.
	Detach(i int)
	// Detached reports whether member i is detached.
	Detached(i int) bool
	// Reattach re-adds slot i with a fresh receive queue on ep.
	Reattach(i int, ep Endpoint) GroupEndpoint
}

// Cond is a condition variable usable from transport contexts.
type Cond interface {
	// Wait parks the caller until Signal/Broadcast.
	Wait(p Ctx)
	// WaitTimeout is Wait bounded by d, reporting whether it was woken
	// (true) or timed out (false).
	WaitTimeout(p Ctx, d time.Duration) bool
	Signal()
	Broadcast()
}

// Transport is a backend: a factory for endposts' queues, regions and
// groups plus the execution-context services flow code needs.
type Transport interface {
	// Dial connects endpoints a and b with a reliable queue pair,
	// returning a's end and b's end.
	Dial(a, b Endpoint) (Queue, Queue)
	// OpenRegion registers a memory region of the given size on ep.
	OpenRegion(ep Endpoint, size int) Region
	// Multicast creates an unreliable multicast group over members.
	Multicast(members ...Endpoint) Group
	// NewCond returns a condition variable for this backend's contexts.
	NewCond() Cond
	// Spawn starts fn on a new execution context named name (a sim
	// process or a goroutine). parent is the spawning context.
	Spawn(parent Ctx, name string, fn func(Ctx))
	// CopiesPayload reports whether verbs move payload bytes (true) or
	// only model their timing (the DES backend's metadata-only mode).
	CopiesPayload() bool
	// SwitchEndpoint returns an auxiliary endpoint representing
	// in-network compute (a switch); it sinks traffic without the
	// receive-bandwidth limits of a normal endpoint.
	SwitchEndpoint() Endpoint
	// SetTracer installs t to observe every verb (nil disables).
	SetTracer(t Tracer)
}
