package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/metrics"
	"dfi/internal/sim"
)

// Scrape suite (run under -race): a real OS goroutine hammers the
// observability surface — Source.Stats, Target.Stats, Recorder.Summary,
// the metrics registry, and the event log — while the simulation runs a
// shuffle under faults. The simulation itself is single-logical-thread;
// these are exactly the cross-goroutine reads the ops plane must make
// safe.

func TestScrapeRaceWhileShuffleRuns(t *testing.T) {
	rec := fabric.NewRecorder(128)
	rec.WireOverheadBytes = 42
	e := newEnv(t, 4, withFaults(chaosPlan()))
	e.c.SetTracer(rec)

	m := metrics.NewRegistry()
	rec.PublishMetrics(m)
	e.reg.PublishMetrics(m)
	events := metrics.NewEventLog(256)
	e.reg.SetEventSink(events)

	spec := FlowSpec{
		Name:    "scrape",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       512,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const n = 1500

	// Endpoint handles cross from sim processes to the scraper through
	// this mutex; everything behind the handles is what's under test.
	var mu sync.Mutex
	var srcs []*Source
	var tgts []*Target

	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			srcs = append(srcs, src)
			src.PublishMetrics(m)
			mu.Unlock()
			for i := 0; i < n; i++ {
				if err := src.Push(p, mkTuple(int64(si*n+i), int64(2*(si*n+i)))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	var consumed [2]int
	for ti := 0; ti < 2; ti++ {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			tgts = append(tgts, tgt)
			tgt.PublishMetrics(m)
			mu.Unlock()
			for {
				if _, ok := tgt.Consume(p); !ok {
					return
				}
				consumed[ti]++
			}
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			ss := append([]*Source(nil), srcs...)
			ts := append([]*Target(nil), tgts...)
			mu.Unlock()
			for _, s := range ss {
				_ = s.Stats()
			}
			for _, tg := range ts {
				_ = tg.Stats()
				_ = tg.FailedSources()
			}
			rec.Summary(io.Discard, 3)
			if err := m.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
			}
			_ = events.Total()
			_ = e.reg.Status()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	e.run(t)
	close(stop)
	wg.Wait()

	// Accuracy contract: the scraped exposition agrees with the final
	// Stats() summaries, counter for counter.
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := metrics.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var pushed, tuplesConsumed uint64
	for _, s := range srcs {
		pushed += s.Stats().TuplesPushed
	}
	for _, tg := range tgts {
		tuplesConsumed += tg.Stats().TuplesConsumed
	}
	if pushed != 2*n {
		t.Fatalf("pushed %d tuples, want %d", pushed, 2*n)
	}
	if got := metrics.SumSeries(parsed, "dfi_source_tuples_pushed_total"); got != float64(pushed) {
		t.Fatalf("scraped pushed = %v, stats say %d", got, pushed)
	}
	if got := metrics.SumSeries(parsed, "dfi_target_tuples_consumed_total"); got != float64(tuplesConsumed) {
		t.Fatalf("scraped consumed = %v, stats say %d", got, tuplesConsumed)
	}
	if consumed[0]+consumed[1] != 2*n {
		t.Fatalf("delivered %d tuples, want %d", consumed[0]+consumed[1], 2*n)
	}
	if events.Total() == 0 {
		t.Fatal("no events were emitted")
	}
}

// TestScrapeRaceDuringEviction scrapes while a lease expires and the
// flow reroutes — the eviction path mutates the writer slices that
// Stats() walks (statsMu coverage) and emits lease/eviction events from
// scheduler context.
func TestScrapeRaceDuringEviction(t *testing.T) {
	const (
		crashAt  = 300 * time.Microsecond
		leaseTTL = 80 * time.Microsecond
		n        = 3000
		deadIdx  = 2
	)
	plan := (&fabric.FaultPlan{}).CrashNode(3, crashAt)
	e := newEnv(t, 4, withFaults(plan))
	m := metrics.NewRegistry()
	e.reg.PublishMetrics(m)
	events := metrics.NewEventLog(0)
	e.reg.SetEventSink(events)

	spec := FlowSpec{
		Name:    "scrape-evict",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:     256,
			SegmentsPerRing: 8,
			LeaseTTL:        leaseTTL,
		},
	}

	var mu sync.Mutex
	var src *Source
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		s, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		src = s
		s.PublishMetrics(m)
		mu.Unlock()
		for i := 0; i < n; i++ {
			if err := s.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if err := s.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	for ti := 0; ti < 3; ti++ {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := tgt.Consume(p); !ok {
					return
				}
			}
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			s := src
			mu.Unlock()
			if s != nil {
				_ = s.Stats()
				_, _ = s.Stalls()
			}
			if err := m.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
			}
			_ = e.reg.Status()
			_ = events.Events()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	e.run(t)
	close(stop)
	wg.Wait()

	st := e.reg.Status()
	if len(st.Flows) == 0 {
		t.Fatal("status snapshot has no flows")
	}
	var sawEvict bool
	for _, ev := range events.Events() {
		if ev.Type == metrics.EvEviction {
			sawEvict = true
		}
	}
	if !sawEvict {
		t.Fatal("no eviction event emitted")
	}
}
