package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
	"dfi/internal/transport/sharedring"
)

// Shared-ring flow transport (Options.SharedRings): the connection-
// scaling data path. Instead of a private ring per (source, target)
// pair — whose memory and queue-pair count grow with the product of
// endpoints — every shared flow between two nodes multiplexes over one
// fixed-size ring owned by the transport's sharedring.Pool. muxSource
// stages tuples into one local segment buffer per target and ships full
// segments as flow-tagged stream sends; muxTarget demultiplexes its
// per-source tags off the shared receivers. Per-flow credit accounting
// (weighted by Options.TenantWeight) keeps one hot flow from starving
// its ring neighbors, and lease heartbeats batch per node so control-
// plane traffic stays sublinear in the flow count.
//
// Failure model (docs/PROTOCOL.md, "Connection scaling"): shared mode
// has no per-flow retransmit window. On an eviction the source re-routes
// its *staged* (unsent) tuples over the survivors, but segments already
// in flight on the shared ring are lost — at-most-once across the
// eviction, versus the private-ring path's at-least-once harvest. A
// crashed peer node condemns the whole ring: every co-resident flow on
// that node pair breaks together.

// muxTargetInfo is the marker a shared-ring target publishes in place
// of ring-buffer coordinates: sources only need to know the slot is
// attached (and observe evictions through WaitTargetLive) — the ring
// itself is the pool's, keyed by node pair.
type muxTargetInfo struct{}

// streamKey names one flow-tagged stream: both halves derive the same
// key, so they resolve the same 24-bit tag without coordination.
func streamKey(flow string, srcSlot, tgtSlot int) string {
	return fmt.Sprintf("%s/%d/%d", flow, srcSlot, tgtSlot)
}

// --- Source side ----------------------------------------------------

// muxSource is the sending half of a shared-ring flow: one
// sharedring.Stream and one staging segment per target slot.
type muxSource struct {
	s    *Source
	pool *sharedring.Pool

	// streams[i] is the stream to target slot i; nil once the target is
	// evicted (or was already evicted at open). bufs[i]/counts[i] stage
	// the segment being filled for it.
	streams []*sharedring.Stream
	bufs    [][]byte
	counts  []int
	ended   []bool

	// Scrape-visible counters (atomic so a metrics endpoint can read
	// them mid-run).
	segsWritten  atomic.Uint64
	payloadBytes atomic.Uint64
}

// newMuxSource opens one stream per live target over the pool's shared
// rings and initializes the membership view (the shared-mode half of
// connectAll).
func newMuxSource(p transport.Ctx, reg Registry, meta *flowMeta, s *Source) (*muxSource, error) {
	m := &muxSource{s: s, pool: meta.pool}
	name := s.spec.Name
	s.mem = reg.MembershipOf(name)
	for t := range s.spec.Targets {
		_, evicted := reg.WaitTargetLive(p, name, t)
		if evicted {
			m.streams = append(m.streams, nil)
			m.bufs = append(m.bufs, nil)
			m.counts = append(m.counts, 0)
			m.ended = append(m.ended, true)
			continue
		}
		st, err := m.pool.OpenStream(s.node, s.spec.Targets[t].Node,
			streamKey(name, s.idx, t), s.spec.Options.Tenant, s.spec.Options.TenantWeight)
		if err != nil {
			return nil, err
		}
		m.streams = append(m.streams, st)
		m.bufs = append(m.bufs, make([]byte, 0, s.spec.Options.SegmentSize))
		m.counts = append(m.counts, 0)
		m.ended = append(m.ended, false)
	}
	s.view = s.spec.table().NewView()
	if s.mem != nil {
		s.epoch = s.mem.Epoch()
		if err := m.refreshView(); err != nil {
			return nil, fmt.Errorf("%w: every target of flow %q is evicted", ErrFlowBroken, name)
		}
	}
	return m, nil
}

// refreshView rebuilds the partitioner view's liveness from the
// surviving streams (the shared-mode analogue of Source.refreshView).
func (m *muxSource) refreshView() error {
	s := m.s
	live := make([]bool, len(m.streams))
	for i, st := range m.streams {
		live[i] = st != nil && (s.mem == nil || !s.mem.TargetEvicted(i))
	}
	s.view.SetLive(live)
	if s.view.LiveCount() == 0 {
		return ErrFlowBroken
	}
	return nil
}

// flushSlot ships target i's staged segment as one stream send. The
// staging buffer may be reused immediately (sharedring mirrors the
// payload per slot).
func (m *muxSource) flushSlot(p transport.Ctx, i int) error {
	st := m.streams[i]
	if st == nil {
		return errEvicted
	}
	if len(m.bufs[i]) == 0 {
		return nil
	}
	if err := st.Send(p, m.bufs[i], false); err != nil {
		if m.s.mem != nil && m.s.mem.TargetEvicted(i) {
			return errEvicted
		}
		return fmt.Errorf("%w: shared-ring send to target %d of flow %q: %v",
			ErrFlowBroken, i, m.s.spec.Name, err)
	}
	m.segsWritten.Add(1)
	m.payloadBytes.Add(uint64(len(m.bufs[i])))
	m.bufs[i] = m.bufs[i][:0]
	m.counts[i] = 0
	return nil
}

// append stages one tuple for target i, shipping the segment first when
// it is full. Returns errEvicted when the target has left the
// membership (the caller folds the epoch in and re-routes).
func (m *muxSource) append(p transport.Ctx, i int, t schema.Tuple) error {
	if m.streams[i] == nil || (m.s.mem != nil && m.s.mem.TargetEvicted(i)) {
		return errEvicted
	}
	if len(m.bufs[i])+len(t) > m.s.spec.Options.SegmentSize {
		if err := m.flushSlot(p, i); err != nil {
			return err
		}
	}
	m.bufs[i] = append(m.bufs[i], t...)
	m.counts[i]++
	return nil
}

// syncEpoch folds membership changes in (the shared-mode analogue of
// Source.syncEpoch): streams to evicted targets are abandoned — their
// credits refund when the receiver drops the tag — and only their
// *staged* tuples re-route over the survivors; the in-flight window is
// lost by design (no per-flow retransmission on a shared ring).
func (m *muxSource) syncEpoch(p transport.Ctx) error {
	s := m.s
	if s.mem == nil || s.mem.Epoch() == s.epoch {
		return nil
	}
	var pending []pendingTuple
	for {
		s.epoch = s.mem.Epoch()
		if s.mem.SourceEvicted(s.idx) {
			return fmt.Errorf("%w: source %d was evicted from flow %q (epoch %d)",
				ErrFlowBroken, s.idx, s.spec.Name, s.epoch)
		}
		ts := s.spec.Schema.TupleSize()
		for i, st := range m.streams {
			if st == nil || !s.mem.TargetEvicted(i) {
				continue
			}
			buf := m.bufs[i]
			for off := 0; off+ts <= len(buf); off += ts {
				pending = append(pending, pendingTuple{data: buf[off : off+ts], from: i})
			}
			m.bufs[i] = nil
			m.counts[i] = 0
			st.Abandon()
			m.streams[i] = nil
			m.ended[i] = true
		}
		if err := m.refreshView(); err != nil {
			return fmt.Errorf("%w: every target of flow %q evicted (epoch %d)", ErrFlowBroken, s.spec.Name, s.epoch)
		}
		if s.spec.FlowType() == ReplicateFlow {
			// Replicate legs are dropped rather than drained: every
			// survivor already receives its own copy of the stream.
			pending = nil
		}
		for len(pending) > 0 {
			t := schema.Tuple(pending[0].data)
			err := m.append(p, s.remap(t, pending[0].from), t)
			if errors.Is(err, errEvicted) {
				break // another eviction mid-drain: re-sync, keep the tail
			}
			if err != nil {
				return err
			}
			pending = pending[1:]
			s.rerouted.Add(1)
		}
		if len(pending) == 0 && s.mem.Epoch() == s.epoch {
			return nil
		}
	}
}

// pushTo routes one tuple to the named target, remapping onto a live
// owner when the declared one is down (mirrors Source.PushTo).
func (m *muxSource) pushTo(p transport.Ctx, t schema.Tuple, target int) error {
	if target < 0 || target >= len(m.streams) {
		return fmt.Errorf("dfi: target %d out of range (%d targets)", target, len(m.streams))
	}
	if m.s.mem == nil {
		return m.append(p, target, t)
	}
	for {
		if err := m.syncEpoch(p); err != nil {
			return err
		}
		slot := m.s.remap(t, target)
		err := m.append(p, slot, t)
		if !errors.Is(err, errEvicted) {
			if err == nil && slot != target {
				m.s.moved.Add(1)
			}
			return err
		}
	}
}

// pushReplicate stages one tuple for every live leg (mirrors
// Source.pushReplicate; dead legs are dropped, not drained).
func (m *muxSource) pushReplicate(p transport.Ctx, t schema.Tuple) error {
	if err := m.syncEpoch(p); err != nil {
		return err
	}
	for i := range m.streams {
		if m.streams[i] == nil || !m.s.view.Live(i) {
			continue
		}
		err := m.append(p, i, t)
		if errors.Is(err, errEvicted) {
			if err := m.syncEpoch(p); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// flush ships every partially filled staging segment.
func (m *muxSource) flush(p transport.Ctx) error {
	for {
		if err := m.syncEpoch(p); err != nil {
			return err
		}
		again := false
		for i := range m.streams {
			if m.streams[i] == nil {
				continue
			}
			err := m.flushSlot(p, i)
			if errors.Is(err, errEvicted) {
				again = true
				break
			}
			if err != nil {
				return err
			}
		}
		if !again {
			return nil
		}
	}
}

// close flushes the staged tail and sends each live leg's end marker,
// folding in membership changes until a round completes cleanly.
func (m *muxSource) close(p transport.Ctx) error {
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	maxRounds := len(m.streams) + 2
	for round := 0; ; round++ {
		if err := m.syncEpoch(p); err != nil {
			record(err)
			return firstErr
		}
		again := false
		for i, st := range m.streams {
			if st == nil || m.ended[i] {
				continue
			}
			err := m.flushSlot(p, i)
			if errors.Is(err, errEvicted) {
				again = true
				break
			}
			if err != nil {
				record(err)
				m.ended[i] = true
				continue
			}
			record(st.Close(p))
			m.ended[i] = true
		}
		if !again {
			return firstErr
		}
		if round >= maxRounds {
			record(fmt.Errorf("%w: close did not stabilize after %d membership changes", ErrFlowBroken, round))
			return firstErr
		}
	}
}

// free abandons any stream the close path never ended (error exits), so
// its in-flight slots still refund once the receiver drops the tag.
func (m *muxSource) free() {
	for i, st := range m.streams {
		if st != nil && !m.ended[i] {
			st.Abandon()
		}
	}
}

// --- Target side ----------------------------------------------------

// muxTarget is the consuming half of a shared-ring flow: one receiver
// handle and flow tag per source slot, demultiplexed off the shared
// per-node-pair rings.
type muxTarget struct {
	t    *Target
	pool *sharedring.Pool

	rcv    []*sharedring.Receiver
	tags   []uint32
	closed []bool
	failed []atomic.Bool // scraper-readable via failedSources
	cur    int

	// Iteration state over the active segment.
	segData   []byte
	segOff    int
	remaining int
	zero      []byte

	evicted bool
	done    bool

	segsConsumed atomic.Uint64
}

// newMuxTarget wires one receiver+tag per source; the caller publishes
// the attachment marker after the lease is held.
func newMuxTarget(p transport.Ctx, reg Registry, meta *flowMeta, t *Target) (*muxTarget, error) {
	m := &muxTarget{t: t, pool: meta.pool}
	name := t.spec.Name
	n := len(t.spec.Sources)
	m.rcv = make([]*sharedring.Receiver, n)
	m.tags = make([]uint32, n)
	m.closed = make([]bool, n)
	m.failed = make([]atomic.Bool, n)
	for i := 0; i < n; i++ {
		m.rcv[i] = m.pool.Receiver(t.spec.Sources[i].Node, t.node)
		m.tags[i] = m.pool.Tag(streamKey(name, i, t.idx))
	}
	t.initTargetMembership(reg.MembershipOf(name))
	if t.mem != nil {
		for i := range m.closed {
			if t.mem.SourceEvicted(i) {
				m.closed[i] = true
				m.failed[i].Store(true)
				m.rcv[i].Drop(m.tags[i])
			}
		}
	}
	return m, nil
}

// dropAll drops every tag this target owns so its share of the rings
// cannot head-of-line-block co-resident flows once it stops consuming.
func (m *muxTarget) dropAll() {
	for i := range m.rcv {
		m.rcv[i].Drop(m.tags[i])
	}
}

// load makes seg the active segment. Backends that model payloads
// without moving bytes deliver Data nil; the tuples handed out are then
// zero-filled with correct counts, matching the private-ring path on
// the same backend.
func (m *muxTarget) load(p transport.Ctx, seg sharedring.Segment) {
	count := seg.Fill / m.t.tupleSize
	data := seg.Data
	if data == nil {
		if cap(m.zero) < seg.Fill {
			m.zero = make([]byte, seg.Fill)
		}
		data = m.zero[:seg.Fill]
	}
	m.t.node.Compute(p, time.Duration(count)*m.t.spec.Options.ConsumeCost)
	m.segData = data
	m.segOff = 0
	m.remaining = count
	m.segsConsumed.Add(1)
}

// nextSegment scans the per-source tags round-robin for a staged
// segment, folding in membership changes and subdividing the poll
// budget across open sources. Returns false at flow end or eviction.
func (m *muxTarget) nextSegment(p transport.Ctx) bool {
	t := m.t
	for {
		if t.syncMembership() {
			// Evicted: release the rings for the co-resident survivors.
			m.dropAll()
			m.evicted = true
			return false
		}
		open := 0
		for i := range m.rcv {
			if m.closed[i] {
				continue
			}
			if t.mem != nil && t.mem.SourceEvicted(i) {
				m.closed[i] = true
				m.failed[i].Store(true)
				m.rcv[i].Drop(m.tags[i])
				continue
			}
			open++
		}
		if open == 0 {
			m.done = true
			return false
		}
		wait := pollTimeout / time.Duration(open)
		for k := 0; k < len(m.rcv); k++ {
			i := m.cur
			m.cur = (m.cur + 1) % len(m.rcv)
			if m.closed[i] {
				continue
			}
			seg, st := m.rcv[i].Recv(p, m.tags[i], wait)
			switch st {
			case sharedring.RecvSeg:
				if seg.Fill == 0 {
					continue // bare end marker rides a zero-fill segment
				}
				m.load(p, seg)
				return true
			case sharedring.RecvEnd, sharedring.RecvDropped:
				m.closed[i] = true
			}
		}
	}
}

// consume hands out the next tuple (mirrors the ring path's
// Consume/loadSegment split).
func (m *muxTarget) consume(p transport.Ctx) (schema.Tuple, bool) {
	if m.done || m.evicted {
		return nil, false
	}
	for m.remaining == 0 {
		if !m.nextSegment(p) {
			return nil, false
		}
	}
	tup := schema.Tuple(m.segData[m.segOff : m.segOff+m.t.tupleSize])
	m.segOff += m.t.tupleSize
	m.remaining--
	return tup, true
}

// consumeSegment hands out the rest of the active segment as a raw
// batch (mirrors Target.ConsumeSegment).
func (m *muxTarget) consumeSegment(p transport.Ctx) (data []byte, count int, ok bool) {
	if m.done || m.evicted {
		return nil, 0, false
	}
	if m.remaining > 0 {
		data, count = m.segData[m.segOff:], m.remaining
		m.segOff = len(m.segData)
		m.remaining = 0
		return data, count, true
	}
	if !m.nextSegment(p) {
		return nil, 0, false
	}
	data, count = m.segData, m.remaining
	m.segOff = len(m.segData)
	m.remaining = 0
	return data, count, true
}

// failedSources lists source slots whose eviction closed their stream.
// Safe for a concurrent scraper.
func (m *muxTarget) failedSources() []int {
	var out []int
	for i := range m.failed {
		if m.failed[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// --- Batched lease heartbeats ---------------------------------------

// At O(1000) shared flows, per-endpoint heartbeat processes would put
// O(flows) renewal RPCs per tick on the registry. Shared-ring endpoints
// instead enroll with a per-(transport, registry, node) lease agent: one
// background process per node that renews every enrolled lease in one
// RenewLeaseBatch per tick — against a sharded registry, one RPC per
// shard touched. Renewal traffic then scales with nodes and shards, not
// with flows.

// leaseAgentKey identifies one agent: same simulated node, same
// registry, same transport instance (so concurrent simulations in one
// test binary never share an agent).
type leaseAgentKey struct {
	reg  Registry
	tpt  transport.Transport
	node int
}

var (
	leaseAgentsMu sync.Mutex
	leaseAgents   = map[leaseAgentKey]*leaseAgent{}
)

// leaseAgent batches lease renewals for every shared-ring endpoint on
// one node. Enrollments add refs; the agent process prunes refs whose
// endpoint closed (releasing the lease) or whose renewal was fenced,
// and self-terminates once no refs remain — the discrete-event kernel
// only ends its run when no events remain, so an immortal ticker would
// hang every simulation.
type leaseAgent struct {
	key  leaseAgentKey
	node transport.Endpoint

	mu      sync.Mutex
	refs    map[registry.LeaseRef]*leaseEnrollment
	running bool
}

// leaseEnrollment is one endpoint's entry: its renewal interval and its
// liveness probe.
type leaseEnrollment struct {
	interval time.Duration
	closed   func() bool
}

// enrollLease registers one endpoint's lease with its node's agent,
// spawning the agent process on first use.
func enrollLease(p transport.Ctx, tpt transport.Transport, reg Registry, node transport.Endpoint, flow string, role registry.Role, idx int, ttl time.Duration, closed func() bool) {
	key := leaseAgentKey{reg: reg, tpt: tpt, node: node.ID()}
	leaseAgentsMu.Lock()
	a := leaseAgents[key]
	if a == nil {
		a = &leaseAgent{key: key, node: node, refs: map[registry.LeaseRef]*leaseEnrollment{}}
		leaseAgents[key] = a
	}
	leaseAgentsMu.Unlock()

	iv := ttl / heartbeatDivisor
	if iv <= 0 {
		iv = ttl
	}
	a.mu.Lock()
	a.refs[registry.LeaseRef{Flow: flow, Role: role, Idx: idx}] = &leaseEnrollment{interval: iv, closed: closed}
	start := !a.running
	a.running = true
	a.mu.Unlock()
	if start {
		tpt.Spawn(p, fmt.Sprintf("lease-agent:node%d", node.ID()), func(hp transport.Ctx) {
			a.run(hp, reg)
		})
	}
}

// interval returns the shortest enrolled renewal interval (TTL/3 of the
// tightest lease keeps every enrolled lease alive through two missed
// ticks, matching the per-endpoint heartbeat's margin).
func (a *leaseAgent) interval() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var min time.Duration
	for _, e := range a.refs {
		if min == 0 || e.interval < min {
			min = e.interval
		}
	}
	return min
}

// collect splits the enrolled refs into renewals and releases (closed
// endpoints), in deterministic order — simulation timing must not
// depend on map iteration.
func (a *leaseAgent) collect() (renew, release []registry.LeaseRef) {
	a.mu.Lock()
	for ref, e := range a.refs {
		if e.closed() {
			release = append(release, ref)
			delete(a.refs, ref)
			continue
		}
		renew = append(renew, ref)
	}
	a.mu.Unlock()
	sortRefs(renew)
	sortRefs(release)
	return renew, release
}

func sortRefs(refs []registry.LeaseRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		return a.Idx < b.Idx
	})
}

// prune drops refs the registry fenced (already evicted, or the flow is
// gone): a stale heartbeat must not keep retrying them.
func (a *leaseAgent) prune(failed []registry.LeaseRef) {
	if len(failed) == 0 {
		return
	}
	a.mu.Lock()
	for _, ref := range failed {
		delete(a.refs, ref)
	}
	a.mu.Unlock()
}

// stop tears the agent down; returns false when a concurrent enrollment
// arrived and the process must keep running.
func (a *leaseAgent) stop() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.refs) > 0 {
		return false
	}
	a.running = false
	leaseAgentsMu.Lock()
	if leaseAgents[a.key] == a {
		delete(leaseAgents, a.key)
	}
	leaseAgentsMu.Unlock()
	return true
}

// run is the agent process: one batched renewal per tick until the node
// crashes (leases expire toward eviction) or no refs remain.
func (a *leaseAgent) run(hp transport.Ctx, reg Registry) {
	for {
		iv := a.interval()
		if iv <= 0 {
			if a.stop() {
				return
			}
			continue
		}
		hp.Sleep(iv)
		if a.node.Crashed(hp.Now()) {
			a.mu.Lock()
			a.refs = map[registry.LeaseRef]*leaseEnrollment{}
			a.mu.Unlock()
			a.stop()
			return
		}
		renew, release := a.collect()
		for _, ref := range release {
			reg.ReleaseLease(hp, ref.Flow, ref.Role, ref.Idx)
		}
		if len(renew) > 0 {
			a.prune(reg.RenewLeaseBatch(hp, renew))
		}
		a.mu.Lock()
		empty := len(a.refs) == 0
		a.mu.Unlock()
		if empty && a.stop() {
			return
		}
	}
}
