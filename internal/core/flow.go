// Package core implements DFI — the Data Flow Interface (SIGMOD 2021) —
// on top of the simulated RDMA fabric in dfi/internal/fabric.
//
// Flows encapsulate data movement between thread-level end-points. A flow
// is created once with FlowInit (publishing its metadata in the central
// registry), after which source threads attach with SourceOpen and push
// tuples, and target threads attach with TargetOpen and consume tuples:
//
//	spec := core.FlowSpec{
//	    Name:    "shuffle",
//	    Sources: []core.Endpoint{{Node: n0, Thread: 0}},
//	    Targets: []core.Endpoint{{Node: n1, Thread: 0}, {Node: n2, Thread: 0}},
//	    Schema:  sch,
//	    ShuffleKey: 0,
//	}
//	core.FlowInit(p, reg, cluster, spec)
//	// on a source thread:           // on a target thread:
//	src, _ := core.SourceOpen(...)   tgt, _ := core.TargetOpen(...)
//	src.Push(p, tuple)               for { t, ok := tgt.Consume(p); ... }
//	src.Close(p)
//
// Three flow types are provided (paper Table 1): shuffle flows
// (1:1, N:1, 1:N, N:M) with key-based, function-based or direct routing;
// replicate flows (1:N, N:M) with optional switch multicast and global
// ordering; and combiner flows (N:1) with target-side aggregation.
// Flows are either bandwidth-optimized (segment batching) or
// latency-optimized (tuple-sized segments with credit-based flow control).
package core

import (
	"errors"
	"fmt"
	"time"

	"dfi/internal/core/partition"
	"dfi/internal/schema"
	"dfi/internal/transport"
	"dfi/internal/transport/sharedring"
)

// FlowType selects one of DFI's three flow types.
type FlowType uint8

// Flow types (paper Table 1).
const (
	ShuffleFlow FlowType = iota
	ReplicateFlow
	CombinerFlow
)

func (t FlowType) String() string {
	switch t {
	case ShuffleFlow:
		return "shuffle"
	case ReplicateFlow:
		return "replicate"
	case CombinerFlow:
		return "combiner"
	}
	return "unknown"
}

// Optimization selects the declared optimization goal of a flow.
type Optimization uint8

// Optimization goals (paper §3.1: declarative optimization).
const (
	// OptimizeBandwidth batches tuples into large segments for maximal
	// link utilization.
	OptimizeBandwidth Optimization = iota
	// OptimizeLatency transfers each tuple immediately in a tuple-sized
	// segment under credit-based flow control.
	OptimizeLatency
)

func (o Optimization) String() string {
	if o == OptimizeLatency {
		return "latency"
	}
	return "bandwidth"
}

// AggFunc enumerates combiner-flow aggregations.
type AggFunc uint8

// Combiner aggregation functions (paper §4.2.3).
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "unknown"
}

// Endpoint identifies one flow end-point: a worker thread on a node
// (the paper's "address|threadID" notation).
type Endpoint struct {
	Node   transport.Endpoint
	Thread int
}

func (e Endpoint) String() string {
	return fmt.Sprintf("%d|%d", e.Node.ID(), e.Thread)
}

// RoutingFunc maps a tuple to a target index, enabling application-defined
// partition functions (range partitioning, radix partitioning, ...).
type RoutingFunc func(t schema.Tuple) int

// Options carries the declarative per-flow settings of Table 1 plus the
// tuning knobs the paper exposes (segment size and count, credit
// threshold).
type Options struct {
	Optimization Optimization

	// SegmentSize is the payload capacity of one ring segment in bytes.
	// Bandwidth-optimized flows default to 8 KiB (the paper's batch size);
	// latency-optimized flows default to one tuple.
	SegmentSize int

	// SegmentsPerRing is the number of segments in each target-side ring
	// (default 32, the paper's default configuration).
	SegmentsPerRing int

	// SourceSegments is the number of segments in each source-side ring
	// (default: same as SegmentsPerRing, matching the paper's memory
	// accounting).
	SourceSegments int

	// Multicast enables switch-side replication for replicate flows.
	Multicast bool

	// GlobalOrdering makes all targets of a replicate flow consume tuples
	// in the same global order (ordered unreliable multicast), using a
	// tuple sequencer.
	GlobalOrdering bool

	// NotifyGaps, for globally ordered replicate flows, reports sequence
	// gaps to the application on Consume instead of requesting
	// retransmission internally (used by the NOPaxos use case).
	NotifyGaps bool

	// GapTimeout is how long a target waits on a missing multicast segment
	// before recovering (NACK or gap notification). Default 20µs.
	GapTimeout time.Duration

	// GapNackLimit is how many unanswered NACK rounds a multicast target
	// sends for one missing segment before escalating: with leases
	// enabled it opens a gap-agreement round with the live peers; without
	// leases it may skip the segment unilaterally once a source is
	// already declared failed. Default 3; negative is invalid.
	GapNackLimit int

	// Aggregation configures a combiner flow: AggFunc applied to ValueCol,
	// grouped by GroupCol.
	Aggregation AggFunc
	GroupCol    int
	ValueCol    int

	// CreditThreshold is the remaining-credit level at which a
	// latency-optimized source refreshes its credit from the target
	// (default SegmentsPerRing/4).
	CreditThreshold int

	// Elastic allows sources to join a running flow with AttachSource and
	// leave with Close; the flow ends once Sealed and all attached
	// sources closed (extension beyond the paper, see elastic.go).
	Elastic bool

	// MaxSources bounds the total attachments of an elastic flow (rings
	// are pre-provisioned per slot; default 2 × initial sources).
	MaxSources int

	// Partitioning selects how key-routed tuples map onto targets (see
	// dfi/internal/core/partition). Modulo (the default) is the paper's
	// Hash(key) % targets. Ring routes over a consistent-hash ring with
	// virtual nodes: an eviction then moves only the dead target's arcs
	// (~1/N of the key space) instead of re-indexing the survivor list,
	// and a target that re-attaches (Target.Reattach) reclaims exactly
	// its old arcs. The scheme also governs the deterministic fold of
	// PushTo/RoutingFunc tuples around evicted targets. Replicate flows
	// copy to every live target regardless of scheme.
	Partitioning partition.Scheme

	// SourceTimeout enables failure detection at targets (extension
	// beyond the paper, which names fault tolerance as future work): a
	// source whose ring shows no new segments for this long while other
	// rings make progress is declared failed and its ring closed; failed
	// slots are reported by Target.FailedSources. Zero disables detection.
	SourceTimeout time.Duration

	// RetransmitTimeout enables source-side loss recovery (extension
	// beyond the paper): a writer blocked for this long on remote ring
	// space, credit, or delivery confirmation resynchronizes against the
	// ring-header consumed counter and retransmits every written but
	// unconsumed segment still resident in its local ring. Zero (the
	// default) keeps the writer's waits unbounded, which is correct on a
	// fault-free fabric. When set, SourceSegments is raised to at least
	// SegmentsPerRing+1 so the retransmit window never leaves the local
	// ring, and Close only returns once every segment was confirmed
	// consumed (or the flow is declared broken).
	RetransmitTimeout time.Duration

	// MaxRetransmits bounds consecutive recovery rounds that make no
	// progress before the writer gives up with ErrFlowBroken (default 8
	// when RetransmitTimeout is set).
	MaxRetransmits int

	// LeaseTTL enables lease-based membership (control-plane failure
	// model, see docs/PROTOCOL.md): every endpoint acquires a registry
	// lease at open and renews it on a background tick (TTL/3). A lease
	// unrenewed for LeaseTTL moves the endpoint to Suspect, and after a
	// further SuspectGrace to Evicted, bumping the flow epoch. Sources
	// re-route an evicted target's key range over the survivors (shuffle/
	// combiner) or drop the dead leg (replicate); targets close the rings
	// of evicted sources. On multicast replicate flows, leases
	// additionally arm the ordered-recovery protocol: segment headers
	// carry the membership epoch, a source eviction triggers gap
	// agreement among the live targets, a target eviction detaches the
	// dead leg from the multicast group, and an evicted target may
	// rejoin via a sequencer snapshot (see docs/PROTOCOL.md, "Ordered
	// replicate failure model"). Zero (the default) disables leases.
	// Setting LeaseTTL defaults RetransmitTimeout to LeaseTTL/2 —
	// rerouting drains the dead writer's unconsumed window from its
	// local ring, so the resident retransmit window is required.
	LeaseTTL time.Duration

	// SuspectGrace is how long a Suspect endpoint may stay unrenewed
	// before eviction (default LeaseTTL).
	SuspectGrace time.Duration

	// PushCost and ConsumeCost are the per-tuple CPU costs charged at the
	// source and target (defaults 12ns / 10ns; see DESIGN.md §6). AggCost
	// is the additional per-tuple aggregation cost of combiner flows.
	PushCost    time.Duration
	ConsumeCost time.Duration
	AggCost     time.Duration

	// SharedRings multiplexes the flow over the cluster's shared
	// per-node-pair rings (dfi/internal/transport/sharedring) instead of
	// private per-(source,target) rings: all shared flows between two
	// nodes ride one fixed-size ring, with per-flow credit accounting and
	// flow-tagged segments demultiplexed at the target. Memory and queue
	// pairs then scale with node pairs, not with flows — the knob for
	// O(1000) concurrent flows (docs/ARCHITECTURE.md, "Flow multiplexing
	// and QoS"). Shared flows are bandwidth-optimized shuffle or
	// replicate flows; latency optimization, multicast, global ordering,
	// elastic membership, combiner aggregation, SourceTimeout detection
	// and per-flow retransmission are per-ring machinery and are
	// rejected by FlowInit. With LeaseTTL set, evictions re-route staged
	// tuples over the survivors, but the in-flight shared-ring window is
	// lost (at-most-once across an eviction — see docs/PROTOCOL.md,
	// "Connection scaling"). Lease heartbeats of shared flows are
	// batched per node (one renewal RPC per tick per node, not per
	// flow).
	SharedRings bool

	// Tenant attributes the flow's shared-ring credit usage to a named
	// tenant for the ops plane (default "default"). Requires SharedRings.
	Tenant string

	// TenantWeight is the flow's scheduling weight on its shared rings
	// (default 1): each ring's slots divide among its open streams in
	// proportion to weight, so one hot flow cannot starve its neighbors
	// below their share. Requires SharedRings.
	TenantWeight int
}

// ErrFlowBroken reports that a flow endpoint gave up after bounded
// recovery: the peer is unreachable (e.g. crashed) or made no progress
// through MaxRetransmits consecutive recovery rounds. Returned wrapped,
// so test with errors.Is.
var ErrFlowBroken = errors.New("dfi: flow broken")

// ErrUnsupportedOnMulticast reports an operation that has no meaning on
// a multicast replicate flow: Checkpoint and Source.Reattach (a
// multicast source has no per-target resume cursor — recovery is the
// gap/agreement protocol) and Reserve/ReserveTo (segments are filled
// through the multicast staging buffer, not reserved in a remote ring).
// Returned wrapped, so test with errors.Is.
var ErrUnsupportedOnMulticast = errors.New("dfi: operation not supported on multicast replicate flows")

// ErrUnsupportedOnShared reports an operation that has no meaning on a
// shared-ring flow (Options.SharedRings): Reserve/ReserveTo (segments
// are staged locally, not reserved in a remote ring), Checkpoint and
// Reattach (shared mode has no per-flow retransmit window to resume
// from — an evicted endpoint's in-flight segments are gone). Returned
// wrapped, so test with errors.Is.
var ErrUnsupportedOnShared = errors.New("dfi: operation not supported on shared-ring flows")

// footerBytes is the per-segment footer: 4B fill count, 1B flags,
// 3B reserved, 8B sequence number. The footer lies after the payload so the
// NIC's increasing-address DMA order makes "footer visible" imply "payload
// complete" (paper §5.2).
const footerBytes = 16

// ringHeaderBytes precedes each ring: an 8-byte consumed counter (read
// remotely by latency-optimized sources for credit refresh), padded to a
// cache line.
const ringHeaderBytes = 64

// Footer flag bits.
const (
	flagConsumable = 1 << 0
	flagEndOfFlow  = 1 << 1
)

// FlowSpec declares a flow: its unique name, participating source and
// target threads, tuple schema, routing, and options.
type FlowSpec struct {
	Name string

	// Type selects shuffle (default), replicate, or combiner semantics.
	Type FlowType

	Sources []Endpoint
	Targets []Endpoint
	Schema  *schema.Schema

	// ShuffleKey is the column index whose hashed value routes each tuple
	// (shuffle flows). Set to -1 when Routing is supplied or when pushes
	// name targets directly.
	ShuffleKey int

	// Routing, when non-nil, overrides key-based routing with an
	// application partition function.
	Routing RoutingFunc

	Options Options

	// part is the flow's routing table, built by normalize from
	// Options.Partitioning and the target count; every endpoint routes
	// through it (directly on the Push hot path, via a liveness View in
	// the eviction/remap paths).
	part *partition.Table
}

// table returns the flow's routing table, building the declared one
// lazily for specs that never went through normalize (direct test use).
func (s *FlowSpec) table() *partition.Table {
	if s.part == nil {
		s.part, _ = partition.NewTable(s.Options.Partitioning, len(s.Targets), 0)
	}
	return s.part
}

// flowMeta is the registry entry for an initialized flow.
type flowMeta struct {
	spec    FlowSpec
	cluster transport.Transport

	// elastic is the mutable membership of an elastic flow.
	elastic *elasticState

	// group is the multicast group of a multicast replicate flow, with one
	// endpoint per target.
	group transport.Group

	// seqMR holds the global tuple-sequencer counter of an ordered
	// replicate flow (hosted on the first target's node).
	seqMR transport.Region

	// pool is the transport's shared-ring pool (SharedRings flows only):
	// the flow's streams multiplex over its per-node-pair rings.
	pool *sharedring.Pool
}

// targetInfo is published by TargetOpen for sources to connect to.
type targetInfo struct {
	mr       transport.Region
	ringOffs []int // ring base offset per source index
	geom     ringGeom
}

// ringGeom captures the layout of one target-side ring.
type ringGeom struct {
	segSize int // payload bytes per segment
	nSegs   int
}

func (g ringGeom) stride() int  { return g.segSize + footerBytes }
func (g ringGeom) ringLen() int { return ringHeaderBytes + g.nSegs*g.stride() }
func (g ringGeom) segOff(i int) int {
	return ringHeaderBytes + i*g.stride()
}

// ringGeometry derives the target-ring layout from the normalized options.
// TargetOpen and the writer connect/reattach paths share this single
// derivation so the two sides can never disagree on the layout.
func (o *Options) ringGeometry() ringGeom {
	return ringGeom{segSize: o.SegmentSize, nSegs: o.SegmentsPerRing}
}

// signalCadence returns the selective-signaling interval for a source ring
// of srcSegs segments: quarter-ring steps, never less than one.
func signalCadence(srcSegs int) int {
	if s := srcSegs / 4; s >= 1 {
		return s
	}
	return 1
}

// normalize validates the spec and fills defaulted options in place.
func (s *FlowSpec) normalize() error {
	if s.Name == "" {
		return errors.New("dfi: flow name must be non-empty")
	}
	if s.Schema == nil {
		return errors.New("dfi: flow schema required")
	}
	if len(s.Targets) == 0 {
		return errors.New("dfi: flow needs at least one target")
	}
	if len(s.Sources) == 0 && !s.Options.Elastic {
		return errors.New("dfi: flow needs at least one source")
	}
	o := &s.Options
	switch s.Options.Optimization {
	case OptimizeBandwidth:
		if o.SegmentSize == 0 {
			o.SegmentSize = 8 << 10
		}
	case OptimizeLatency:
		if o.SegmentSize == 0 {
			o.SegmentSize = s.Schema.TupleSize()
		}
	}
	if o.SegmentSize < s.Schema.TupleSize() {
		return fmt.Errorf("dfi: segment size %d smaller than tuple size %d", o.SegmentSize, s.Schema.TupleSize())
	}
	if o.SegmentsPerRing == 0 {
		o.SegmentsPerRing = 32
	}
	if o.SegmentsPerRing < 2 {
		return errors.New("dfi: at least 2 segments per ring required for pipelining")
	}
	if o.SourceSegments == 0 {
		o.SourceSegments = o.SegmentsPerRing
	}
	if o.SourceSegments < 2 {
		return errors.New("dfi: at least 2 source segments required")
	}
	if o.CreditThreshold == 0 {
		o.CreditThreshold = o.SegmentsPerRing / 4
	}
	if o.GapNackLimit < 0 {
		return errors.New("dfi: GapNackLimit must be non-negative")
	}
	if o.GapNackLimit == 0 {
		o.GapNackLimit = 3
	}
	if !o.SharedRings {
		if o.Tenant != "" || o.TenantWeight != 0 {
			return errors.New("dfi: Tenant/TenantWeight require Options.SharedRings")
		}
	} else {
		// Shared-ring admission: everything that depends on private
		// per-pair rings — tuple-granular credit loops, multicast groups,
		// per-slot ring provisioning, per-ring silence detection, and the
		// per-flow retransmit window — is rejected up front rather than
		// silently degraded.
		if o.Optimization == OptimizeLatency {
			return errors.New("dfi: SharedRings requires a bandwidth-optimized flow (latency mode needs a private ring per pair)")
		}
		if o.Multicast || o.GlobalOrdering {
			return errors.New("dfi: SharedRings cannot combine with multicast/global ordering")
		}
		if o.Elastic {
			return errors.New("dfi: SharedRings cannot combine with Elastic membership")
		}
		if s.Type == CombinerFlow {
			return errors.New("dfi: SharedRings does not support combiner flows")
		}
		if o.SourceTimeout > 0 {
			return errors.New("dfi: SharedRings has no per-ring silence detection; use LeaseTTL for failure handling")
		}
		if o.RetransmitTimeout > 0 {
			return errors.New("dfi: SharedRings has no per-flow retransmit window")
		}
		if o.TenantWeight < 0 {
			return errors.New("dfi: TenantWeight must be non-negative")
		}
		if o.Tenant == "" {
			o.Tenant = "default"
		}
		if o.TenantWeight == 0 {
			o.TenantWeight = 1
		}
	}
	if o.LeaseTTL > 0 {
		if o.SuspectGrace <= 0 {
			o.SuspectGrace = o.LeaseTTL
		}
		if o.RetransmitTimeout <= 0 && !o.SharedRings {
			// Rerouting rides on the recovery machinery: bounded waits to
			// escape a dead target, and a resident local window to drain
			// its unconsumed segments from. Half the TTL keeps recovery
			// probing faster than the control plane detects, so a merely
			// slow target is retransmitted to before it can be suspected.
			o.RetransmitTimeout = o.LeaseTTL / 2
		}
	}
	if o.RetransmitTimeout > 0 {
		if o.MaxRetransmits == 0 {
			o.MaxRetransmits = 8
		}
		if o.SourceSegments < o.SegmentsPerRing+1 {
			// The retransmit window spans every unconsumed remote slot;
			// those segments must still be resident locally. The +1 keeps
			// the segment currently being filled out of that window: the
			// flush-time guard only proves acked ≥ written − SegmentsPerRing,
			// so with equal ring sizes the next fill could overwrite an
			// unacked segment and a later retransmission would resend new
			// tuples under the old sequence number.
			o.SourceSegments = o.SegmentsPerRing + 1
		}
	}
	if o.GapTimeout == 0 {
		o.GapTimeout = 20 * time.Microsecond
	}
	if o.PushCost == 0 {
		o.PushCost = 12 * time.Nanosecond
	}
	if o.ConsumeCost == 0 {
		o.ConsumeCost = 10 * time.Nanosecond
	}
	if o.AggCost == 0 {
		o.AggCost = 10 * time.Nanosecond
	}
	switch s.Options.Optimization {
	case OptimizeBandwidth, OptimizeLatency:
	default:
		return fmt.Errorf("dfi: unknown optimization %d", s.Options.Optimization)
	}
	if s.ShuffleKey >= s.Schema.Columns() {
		return fmt.Errorf("dfi: shuffle key column %d out of range", s.ShuffleKey)
	}
	switch s.Type {
	case ShuffleFlow:
		if o.Multicast || o.GlobalOrdering {
			return errors.New("dfi: multicast/ordering are replicate-flow options")
		}
		if s.ShuffleKey < 0 && s.Routing == nil {
			// Allowed: pushes must use PushTo with explicit targets.
		}
	case ReplicateFlow:
		if o.GlobalOrdering && !o.Multicast {
			return errors.New("dfi: global ordering requires a multicast replicate flow")
		}
	case CombinerFlow:
		// N:1 refers to nodes: multiple target *threads* may share the
		// single target node (Figure 9 scales them).
		for _, t := range s.Targets {
			if t.Node != s.Targets[0].Node {
				return errors.New("dfi: combiner flow targets must share one node (N:1)")
			}
		}
		if o.Multicast || o.GlobalOrdering {
			return errors.New("dfi: multicast/ordering are replicate-flow options")
		}
		if o.GroupCol < 0 || o.GroupCol >= s.Schema.Columns() ||
			o.ValueCol < 0 || o.ValueCol >= s.Schema.Columns() {
			return fmt.Errorf("dfi: combiner group/value column out of range")
		}
	default:
		return fmt.Errorf("dfi: unknown flow type %d", s.Type)
	}
	if o.Multicast && s.Type != ReplicateFlow {
		return errors.New("dfi: multicast requires a replicate flow")
	}
	part, err := partition.NewTable(o.Partitioning, len(s.Targets), 0)
	if err != nil {
		return err
	}
	s.part = part
	return s.validateElastic()
}

// FlowInit validates the spec and publishes the flow in the registry,
// making it available cluster-wide (paper Figure 1, upper half). For
// multicast replicate flows it also creates the switch multicast group,
// and for globally ordered flows the tuple-sequencer counter.
func FlowInit(p transport.Ctx, reg Registry, cluster transport.Transport, spec FlowSpec) error {
	if err := spec.normalize(); err != nil {
		return err
	}
	meta := &flowMeta{spec: spec, cluster: cluster}
	if spec.Options.SharedRings {
		meta.pool = sharedring.PoolOf(cluster, sharedring.Config{})
		if sp := meta.pool.Config().SlotPayload; spec.Options.SegmentSize > sp {
			return fmt.Errorf("dfi: segment size %d exceeds the shared-ring slot payload %d", spec.Options.SegmentSize, sp)
		}
	}
	if spec.Options.Elastic {
		meta.elastic = &elasticState{attached: len(spec.Sources), cond: cluster.NewCond()}
	}
	if spec.Options.Multicast {
		nodes := make([]transport.Endpoint, len(spec.Targets))
		for i, t := range spec.Targets {
			nodes[i] = t.Node
		}
		meta.group = cluster.Multicast(nodes...)
		if spec.Options.GlobalOrdering {
			meta.seqMR = cluster.OpenRegion(spec.Targets[0].Node, 8)
		}
	}
	return reg.Publish(p, spec.Name, meta)
}

// lookupFlow retrieves flow metadata, blocking until the flow is
// initialized.
func lookupFlow(p transport.Ctx, reg Registry, name string) *flowMeta {
	return reg.WaitFlow(p, name).(*flowMeta)
}

// routeIndex computes a tuple's declared route: the RoutingFunc when
// supplied, otherwise the partitioner's full-membership home for the
// tuple's shuffle key (the Push hot path; liveness-aware remapping
// lives in lifecycle.go).
func routeIndex(spec *FlowSpec, t schema.Tuple) int {
	if spec.Routing != nil {
		return spec.Routing(t)
	}
	return spec.table().Home(spec.Schema.KeyUint64(t, spec.ShuffleKey))
}
