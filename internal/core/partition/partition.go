// Package partition factors tuple routing out of the flow/source/
// lifecycle tangle into a pluggable partitioner layer.
//
// A flow declares a partitioning Scheme (core.Options.Partitioning) and
// normalization builds one immutable Table per flow: the routing
// geometry every endpoint agrees on. Each endpoint then derives its own
// View — the Table joined with the endpoint's current notion of slot
// liveness — and routes through it:
//
//	tbl, _ := partition.NewTable(partition.Ring, len(targets), 0)
//	view := tbl.NewView()
//	slot := tbl.Home(hashKey)          // full-membership owner (hot path)
//	slot, moved := view.Route(hashKey) // live owner after evictions
//
// Two schemes are provided. Modulo is the paper's Hash(key) % N and the
// compatibility default; on an eviction the dead slot's keys are
// rehashed over the survivor list, which moves only the dead slot's
// share but *re-moves* previously folded keys on every later membership
// change (the survivor list re-indexes). Ring hashes each slot onto a
// consistent-hash ring at VirtualNodes points; a key is owned by the
// first live point clockwise from its hash, so an eviction moves only
// the dead slot's arcs (~1/N of the key space), later changes never
// disturb keys whose owner survived, and a slot that rejoins reclaims
// exactly the arcs it lost.
//
// Tables and Views hold no locks: a Table is immutable after NewTable,
// and a View is owned by exactly one endpoint (the simulation kernel
// serializes all endpoint processes).
package partition

import (
	"fmt"
	"sort"

	"dfi/internal/schema"
)

// Scheme selects a partitioning strategy for a flow.
type Scheme uint8

// Partitioning schemes.
const (
	// Modulo routes key hashes with Hash(key) % targets — the paper's
	// scheme, kept as the compatibility default.
	Modulo Scheme = iota
	// Ring routes over a consistent-hash ring with virtual nodes,
	// bounding rebalance on membership changes to the changed slot's
	// arcs.
	Ring
)

func (s Scheme) String() string {
	switch s {
	case Modulo:
		return "modulo"
	case Ring:
		return "ring"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// ParseScheme parses a scheme name as used by cmd/dfiflow's -partition
// flag.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "modulo":
		return Modulo, nil
	case "ring":
		return Ring, nil
	}
	return Modulo, fmt.Errorf("partition: unknown scheme %q (want modulo or ring)", name)
}

// DefaultVirtualNodes is the ring scheme's virtual-node count per slot.
// TestRingLoadWithinTwiceEven pins the resulting balance: at 128 vnodes
// over 8 targets a 100k-key sample stays within 2× of even load both
// before and after an eviction (observed max/even ≈ 1.2); fewer vnodes
// (≤16) were observed to breach the 2× bound for unlucky slots.
const DefaultVirtualNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	slot int
}

// Table is a flow's immutable routing geometry, shared by every
// endpoint of the flow.
type Table struct {
	scheme Scheme
	n      int
	vnodes int
	points []point // ring scheme only; sorted by hash
}

// NewTable builds the routing table for n target slots. vnodes sets the
// ring scheme's virtual nodes per slot (0 means DefaultVirtualNodes;
// ignored by Modulo).
func NewTable(scheme Scheme, n, vnodes int) (*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: table needs at least one slot, got %d", n)
	}
	t := &Table{scheme: scheme, n: n}
	switch scheme {
	case Modulo:
	case Ring:
		if vnodes <= 0 {
			vnodes = DefaultVirtualNodes
		}
		t.vnodes = vnodes
		t.points = make([]point, 0, n*vnodes)
		for slot := 0; slot < n; slot++ {
			for v := 0; v < vnodes; v++ {
				t.points = append(t.points, point{hash: pointHash(slot, v), slot: slot})
			}
		}
		sort.Slice(t.points, func(i, j int) bool {
			if t.points[i].hash != t.points[j].hash {
				return t.points[i].hash < t.points[j].hash
			}
			return t.points[i].slot < t.points[j].slot
		})
	default:
		return nil, fmt.Errorf("partition: unknown scheme %d", scheme)
	}
	return t, nil
}

// pointHash places virtual node v of a slot on the ring. Both mix
// constants are odd (bijective multiplication) and the splitmix64
// finalizer scatters the result, so slots land in interleaved arcs.
func pointHash(slot, v int) uint64 {
	return schema.Hash(uint64(slot+1)*0x9E3779B97F4A7C15 ^ uint64(v+1)*0xBF58476D1CE4E5B9)
}

// Scheme returns the table's partitioning scheme.
func (t *Table) Scheme() Scheme { return t.scheme }

// Slots returns the number of target slots the table routes over.
func (t *Table) Slots() int { return t.n }

// VirtualNodes returns the ring scheme's per-slot virtual-node count
// (0 for Modulo).
func (t *Table) VirtualNodes() int { return t.vnodes }

// successor returns the index of the first ring point at or clockwise
// of h.
func (t *Table) successor(h uint64) int {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].hash >= h })
	if i == len(t.points) {
		return 0
	}
	return i
}

// Home returns the slot that owns key under full membership — the
// declared route of the Push hot path. key is the tuple's raw shuffle
// key; hashing is the table's concern so both schemes see the same
// input.
func (t *Table) Home(key uint64) int {
	h := schema.Hash(key)
	if t.scheme == Modulo {
		return int(h % uint64(t.n))
	}
	return t.points[t.successor(h)].slot
}

// NewView derives a per-endpoint live view of the table with every slot
// live. Views are not shared between endpoints: each folds membership
// epochs at its own pace.
func (t *Table) NewView() *View {
	v := &View{t: t, live: make([]bool, t.n)}
	for i := range v.live {
		v.live[i] = true
	}
	v.rebuild()
	return v
}

// View joins a Table with one endpoint's current notion of slot
// liveness. Route and Fold answer "where does this go *now*", and
// report whether that differs from the full-membership owner (the
// rebalance cost surfaced as the Moved stat).
type View struct {
	t     *Table
	live  []bool
	alive []int // live slots in ascending order (modulo survivor list)
}

// Table returns the view's underlying table.
func (v *View) Table() *Table { return v.t }

// SetLive replaces the view's liveness vector (length must equal the
// table's slot count).
func (v *View) SetLive(live []bool) {
	if len(live) != len(v.live) {
		panic(fmt.Sprintf("partition: SetLive with %d slots on a %d-slot table", len(live), len(v.live)))
	}
	copy(v.live, live)
	v.rebuild()
}

func (v *View) rebuild() {
	v.alive = v.alive[:0]
	for i, ok := range v.live {
		if ok {
			v.alive = append(v.alive, i)
		}
	}
}

// Live reports whether a slot is live in this view.
func (v *View) Live(slot int) bool { return slot >= 0 && slot < len(v.live) && v.live[slot] }

// LiveCount returns the number of live slots.
func (v *View) LiveCount() int { return len(v.alive) }

// LiveSlots returns the live slots in ascending order. The slice is
// shared with the view; callers must not mutate or retain it across
// SetLive.
func (v *View) LiveSlots() []int { return v.alive }

// Route returns the live owner of key, and whether that differs from
// the key's full-membership home (a moved key). Returns slot -1 when no
// slot is live.
func (v *View) Route(key uint64) (slot int, moved bool) {
	if len(v.alive) == 0 {
		return -1, false
	}
	h := schema.Hash(key)
	if v.t.scheme == Modulo {
		home := int(h % uint64(v.t.n))
		if v.live[home] {
			return home, false
		}
		return v.alive[h%uint64(len(v.alive))], true
	}
	idx := v.t.successor(h)
	home := v.t.points[idx].slot
	for k := 0; k < len(v.t.points); k++ {
		if s := v.t.points[(idx+k)%len(v.t.points)].slot; v.live[s] {
			return s, s != home
		}
	}
	return -1, false
}

// Fold deterministically maps a declared slot onto a live one — the
// remap for tuples without a usable key (custom RoutingFuncs, PushTo):
// the slot itself while live, otherwise the ring successor of the
// slot's first virtual node (Ring) or a fold over the survivor list
// (Modulo). Every endpoint computes the same fold from the same
// membership. Returns slot -1 when no slot is live.
func (v *View) Fold(from int) (slot int, moved bool) {
	if v.Live(from) {
		return from, false
	}
	if len(v.alive) == 0 {
		return -1, false
	}
	if v.t.scheme == Modulo {
		return v.alive[from%len(v.alive)], true
	}
	idx := v.t.successor(pointHash(from, 0))
	for k := 0; k < len(v.t.points); k++ {
		if s := v.t.points[(idx+k)%len(v.t.points)].slot; v.live[s] && s != from {
			return s, true
		}
	}
	return v.alive[from%len(v.alive)], true
}
