package partition

import (
	"math/rand"
	"testing"

	"dfi/internal/schema"
)

const (
	sampleTargets = 8
	sampleKeys    = 100_000
)

func ringView(t *testing.T) (*Table, *View) {
	t.Helper()
	tbl, err := NewTable(Ring, sampleTargets, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, tbl.NewView()
}

func liveMask(n int, dead ...int) []bool {
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	for _, d := range dead {
		live[d] = false
	}
	return live
}

func TestParseScheme(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scheme
		err  bool
	}{
		{"modulo", Modulo, false},
		{"ring", Ring, false},
		{"consistent", 0, true},
		{"", 0, true},
	} {
		got, err := ParseScheme(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseScheme(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, s := range []Scheme{Modulo, Ring} {
		if back, err := ParseScheme(s.String()); err != nil || back != s {
			t.Errorf("round trip of %v failed: %v, %v", s, back, err)
		}
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(Ring, 0, 0); err == nil {
		t.Error("zero-slot table accepted")
	}
	if _, err := NewTable(Scheme(9), 4, 0); err == nil {
		t.Error("unknown scheme accepted")
	}
	tbl, err := NewTable(Ring, 4, 0)
	if err != nil || tbl.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("ring table: %v, vnodes=%d", err, tbl.VirtualNodes())
	}
	if tbl.Scheme() != Ring || tbl.Slots() != 4 {
		t.Fatalf("table geometry: scheme=%v slots=%d", tbl.Scheme(), tbl.Slots())
	}
}

func TestModuloMatchesLegacyFormula(t *testing.T) {
	tbl, err := NewTable(Modulo, sampleTargets, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := tbl.NewView()
	for key := uint64(0); key < 10_000; key++ {
		want := int(schema.Hash(key) % uint64(sampleTargets))
		if got := tbl.Home(key); got != want {
			t.Fatalf("Home(%d) = %d, legacy Hash%%N = %d", key, got, want)
		}
		if got, moved := view.Route(key); got != want || moved {
			t.Fatalf("Route(%d) = %d (moved=%v), want home %d under full membership", key, got, moved, want)
		}
	}
}

func TestModuloFoldMatchesLegacySurvivorLookup(t *testing.T) {
	tbl, _ := NewTable(Modulo, sampleTargets, 0)
	view := tbl.NewView()
	dead := []int{2, 5}
	view.SetLive(liveMask(sampleTargets, dead...))
	// The legacy survivor table in lifecycle.go: live slots ascending.
	var alive []int
	for i := 0; i < sampleTargets; i++ {
		if i != 2 && i != 5 {
			alive = append(alive, i)
		}
	}
	for key := uint64(0); key < 10_000; key++ {
		h := schema.Hash(key)
		want := int(h % uint64(sampleTargets))
		if want == 2 || want == 5 {
			want = alive[h%uint64(len(alive))]
		}
		if got, _ := view.Route(key); got != want {
			t.Fatalf("Route(%d) = %d, legacy survivor lookup = %d", key, got, want)
		}
	}
	for from := 0; from < sampleTargets; from++ {
		want := from
		if from == 2 || from == 5 {
			want = alive[from%len(alive)]
		}
		if got, _ := view.Fold(from); got != want {
			t.Fatalf("Fold(%d) = %d, legacy deterministic fold = %d", from, got, want)
		}
	}
}

// TestRingEvictionMovesBoundedArc is the acceptance-criteria property
// test: on a 1:8 ring-partitioned shuffle, evicting any single target
// moves at most 1/N + ε of a 100k-key sample (and well under the 20%
// acceptance ceiling), and every key whose owner survived keeps its
// owner — only the dead slot's arcs move.
func TestRingEvictionMovesBoundedArc(t *testing.T) {
	tbl, view := ringView(t)
	before := make([]int, sampleKeys)
	for key := range before {
		before[key] = tbl.Home(uint64(key))
	}
	const epsilon = 0.06 // vnode placement variance around the ideal 1/N arc share
	for dead := 0; dead < sampleTargets; dead++ {
		view.SetLive(liveMask(sampleTargets, dead))
		moved := 0
		for key := range before {
			got, flagged := view.Route(uint64(key))
			if before[key] != dead {
				if got != before[key] || flagged {
					t.Fatalf("evict %d: key %d owner %d moved to %d (moved=%v) although its owner survived",
						dead, key, before[key], got, flagged)
				}
				continue
			}
			if got == dead {
				t.Fatalf("evict %d: key %d still routed to the dead slot", dead, key)
			}
			if !flagged {
				t.Fatalf("evict %d: key %d moved to %d without the moved flag", dead, key, got)
			}
			moved++
		}
		frac := float64(moved) / float64(sampleKeys)
		if limit := 1.0/float64(sampleTargets) + epsilon; frac > limit {
			t.Errorf("evict %d: moved %.3f of keys, want ≤ 1/N+ε = %.3f", dead, frac, limit)
		}
		if frac > 0.20 {
			t.Errorf("evict %d: moved %.3f of keys, above the 20%% acceptance ceiling", dead, frac)
		}
	}
}

// TestRingLoadWithinTwiceEven pins DefaultVirtualNodes: survivor load
// stays within 2× of even before and after an eviction. Observed at 128
// vnodes: max/even ≈ 1.2 over all eviction choices.
func TestRingLoadWithinTwiceEven(t *testing.T) {
	tbl, view := ringView(t)
	check := func(name string, liveCount int) {
		counts := make([]int, sampleTargets)
		for key := 0; key < sampleKeys; key++ {
			slot, _ := view.Route(uint64(key))
			counts[slot]++
		}
		even := float64(sampleKeys) / float64(liveCount)
		for slot, c := range counts {
			if !view.Live(slot) {
				if c != 0 {
					t.Fatalf("%s: dead slot %d received %d keys", name, slot, c)
				}
				continue
			}
			if ratio := float64(c) / even; ratio > 2 {
				t.Errorf("%s: slot %d load %.2f× even (count %d), want ≤ 2×", name, slot, ratio, c)
			}
		}
	}
	check("full membership", sampleTargets)
	_ = tbl
	for dead := 0; dead < sampleTargets; dead++ {
		view.SetLive(liveMask(sampleTargets, dead))
		check(Ring.String()+" one eviction", sampleTargets-1)
	}
}

// TestNaiveModuloRemapContrast documents why modulo cannot bound
// rebalance: re-modding the full key space from N to N-1 slots (what a
// from-scratch modulo layout over the survivors requires) moves ~87% of
// keys — the 1 − 1/N = 7/8 baseline the ring scheme's ≤ 1/N+ε replaces.
func TestNaiveModuloRemapContrast(t *testing.T) {
	moved := 0
	for key := uint64(0); key < sampleKeys; key++ {
		h := schema.Hash(key)
		if int(h%sampleTargets) != int(h%(sampleTargets-1)) {
			moved++
		}
	}
	frac := float64(moved) / float64(sampleKeys)
	if frac < 0.80 {
		t.Fatalf("naive modulo re-map moved only %.3f of keys; the documented ~87%% contrast no longer holds", frac)
	}
	t.Logf("naive modulo N→N-1 re-map moved %.1f%% of keys; ring moves ≤ %.1f%%",
		100*frac, 100*(1.0/sampleTargets+0.06))
}

// TestRingRandomEvictionSequences drives random evict/restore sequences
// and checks the ring's churn invariants: an eviction moves only keys
// the dead slot owned, a restore moves keys only *onto* the restored
// slot (it reclaims arcs, never reshuffles survivors), and a full
// restore returns every key to its full-membership home.
func TestRingRandomEvictionSequences(t *testing.T) {
	_, view := ringView(t)
	rng := rand.New(rand.NewSource(7))
	keys := 10_000
	owner := make([]int, keys)
	for k := range owner {
		owner[k], _ = view.Route(uint64(k))
	}
	live := liveMask(sampleTargets)
	liveCount := sampleTargets
	rounds := 200
	if testing.Short() {
		rounds = 50
	}
	for round := 0; round < rounds; round++ {
		slot := rng.Intn(sampleTargets)
		if live[slot] && liveCount == 1 {
			continue // keep at least one live slot
		}
		live[slot] = !live[slot]
		if live[slot] {
			liveCount++
		} else {
			liveCount--
		}
		view.SetLive(live)
		for k := 0; k < keys; k++ {
			got, _ := view.Route(uint64(k))
			prev := owner[k]
			if !live[slot] && prev != slot && got != prev {
				t.Fatalf("round %d (evict %d): key %d moved %d→%d although its owner survived",
					round, slot, k, prev, got)
			}
			if live[slot] && got != prev && got != slot {
				t.Fatalf("round %d (restore %d): key %d moved %d→%d, restores may only reclaim arcs",
					round, slot, k, prev, got)
			}
			owner[k] = got
		}
	}
	// Full restore: every key is back at its full-membership home.
	view.SetLive(liveMask(sampleTargets))
	for k := 0; k < keys; k++ {
		got, moved := view.Route(uint64(k))
		if home := view.Table().Home(uint64(k)); got != home || moved {
			t.Fatalf("after full restore key %d routed to %d (moved=%v), home %d", k, got, moved, home)
		}
	}
}

// TestFoldDeterministicAndLive: Fold is stable for live slots, lands on
// a live slot otherwise, and agrees across independently derived views
// of the same membership (sources must agree on remaps).
func TestFoldDeterministicAndLive(t *testing.T) {
	for _, scheme := range []Scheme{Modulo, Ring} {
		tbl, err := NewTable(scheme, sampleTargets, 0)
		if err != nil {
			t.Fatal(err)
		}
		v1, v2 := tbl.NewView(), tbl.NewView()
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 100; trial++ {
			var dead []int
			for s := 0; s < sampleTargets-1; s++ { // keep slot N-1 live
				if rng.Intn(2) == 0 {
					dead = append(dead, s)
				}
			}
			mask := liveMask(sampleTargets, dead...)
			v1.SetLive(mask)
			v2.SetLive(mask)
			for from := 0; from < sampleTargets; from++ {
				got1, moved := v1.Fold(from)
				got2, _ := v2.Fold(from)
				if got1 != got2 {
					t.Fatalf("%v: views disagree on Fold(%d): %d vs %d (dead %v)", scheme, from, got1, got2, dead)
				}
				if !v1.Live(got1) {
					t.Fatalf("%v: Fold(%d) = %d is not live (dead %v)", scheme, from, got1, dead)
				}
				if mask[from] && (got1 != from || moved) {
					t.Fatalf("%v: Fold(%d) moved a live slot to %d", scheme, from, got1)
				}
			}
		}
	}
}

func TestRouteWithNoLiveSlots(t *testing.T) {
	for _, scheme := range []Scheme{Modulo, Ring} {
		tbl, _ := NewTable(scheme, 3, 0)
		view := tbl.NewView()
		view.SetLive(make([]bool, 3))
		if slot, _ := view.Route(42); slot != -1 {
			t.Errorf("%v: Route with no live slots = %d, want -1", scheme, slot)
		}
		if slot, _ := view.Fold(1); slot != -1 {
			t.Errorf("%v: Fold with no live slots = %d, want -1", scheme, slot)
		}
	}
}
