package core

import (
	"errors"
	"fmt"
	"time"

	"dfi/internal/schema"
	"dfi/internal/transport"
)

// This file is the batched data path: PushBatch routes many tuples per
// call with one vectorized partition pass and per-target grouped copies;
// Reserve hands the caller a zero-copy writable view into the ring
// writer's local segment; ConsumeBatch amortizes the receive side. All
// three are semantics-preserving: the rings they produce or drain are
// byte-identical to the equivalent sequence of Push/Consume calls (see
// batch_test.go), and the virtual-time CPU cost is charged through the
// same chargeBatch accounting.

// chargePushN accounts n tuples' CPU cost. The charge sequence is
// identical to n single chargePush calls: latency mode charges every
// tuple immediately (folded into one Compute of equal total), bandwidth
// mode accumulates and drains in chargeBatch-sized Compute calls — so
// batched and sequential pushes advance the virtual clock identically.
func (s *Source) chargePushN(p transport.Ctx, n int) {
	if n <= 0 {
		return
	}
	if s.spec.Options.Optimization == OptimizeLatency {
		s.node.Compute(p, time.Duration(n)*s.spec.Options.PushCost)
		return
	}
	s.pendingCharge += n
	for s.pendingCharge >= chargeBatch {
		s.node.Compute(p, chargeBatch*s.spec.Options.PushCost)
		s.pendingCharge -= chargeBatch
	}
}

// adjacent reports whether b begins exactly where a ends within the same
// backing array, so the two can travel in one copy. The one-past-the-end
// reslice is only legal when a's capacity extends past its length; the
// pointer equality then proves b aliases the same allocation.
func adjacent(a, b []byte) bool {
	if cap(a) <= len(a) || len(b) == 0 {
		return false
	}
	return &a[:len(a)+1][len(a)] == &b[0]
}

// PushBatch routes a whole batch of tuples into the flow in one call.
// Shuffle and combiner flows extract every partition key in one
// vectorized pass (schema.KeysUint64), group the tuples per target, and
// append each group with one copy per contiguous run — so a batch carved
// out of one buffer costs one route pass and a handful of copies instead
// of len(tuples) of each. Replicate flows append the whole batch to every
// live leg. The rings produced are byte-identical to pushing the same
// tuples with sequential Push calls.
//
// On error, tuples already grouped into writers stay pushed (the same
// at-least-once posture every data-path error path has); the caller
// re-pushes the batch only on a flow-level retry protocol of its own.
func (s *Source) PushBatch(p transport.Ctx, tuples []schema.Tuple) error {
	if s.closed {
		return fmt.Errorf("dfi: push on closed source of flow %q", s.spec.Name)
	}
	ts := s.spec.Schema.TupleSize()
	for _, t := range tuples {
		if len(t) != ts {
			return fmt.Errorf("dfi: tuple size %d does not match schema size %d", len(t), ts)
		}
	}
	if len(tuples) == 0 {
		return nil
	}
	// Latency mode transfers per tuple by design, the multicast transport
	// sequences per tuple, and the shared-ring path stages per tuple —
	// those paths keep their per-tuple semantics and gain only the
	// amortized entry point.
	if s.spec.Options.Optimization == OptimizeLatency || s.mc != nil || s.mux != nil {
		for _, t := range tuples {
			if err := s.Push(p, t); err != nil {
				return err
			}
		}
		return nil
	}
	n := len(tuples)
	// Membership changes fold in once per batch rather than once per
	// tuple; a writer dying mid-batch surfaces as errEvicted from its
	// append and is handled below.
	if err := s.syncEpoch(p); err != nil {
		return err
	}
	if s.spec.FlowType() == ReplicateFlow {
		s.pushed.Add(uint64(n))
		s.chargePushN(p, n)
		for i, w := range s.writers {
			if w == nil || w.dead || !s.view.Live(i) {
				continue
			}
			err := s.pushGrouped(p, w, tuples, nil, i, ts)
			if errors.Is(err, errEvicted) {
				// As in pushReplicate: drop the dead leg — every survivor
				// carries its own complete copy of the stream.
				if err := s.syncEpoch(p); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if s.spec.Routing == nil && s.spec.ShuffleKey < 0 {
		return fmt.Errorf("dfi: flow %q declares no routing (ShuffleKey -1 and no RoutingFunc); use PushTo", s.spec.Name)
	}
	// Vectorized route pass.
	if cap(s.routeScratch) < n {
		s.routeScratch = make([]int32, n)
	}
	routes := s.routeScratch[:n]
	if s.spec.Routing != nil {
		for i, t := range tuples {
			routes[i] = int32(s.spec.Routing(t))
		}
	} else {
		s.keyScratch = s.spec.Schema.KeysUint64(s.keyScratch, tuples, s.spec.ShuffleKey)
		tbl := s.spec.table()
		for i, k := range s.keyScratch {
			routes[i] = int32(tbl.Home(k))
		}
	}
	if s.view.LiveCount() != len(s.writers) {
		// Some declared owner is down: remap onto survivors exactly as
		// sequential PushTo would, counting the rebalance traffic.
		for i := range routes {
			slot := s.remap(tuples[i], int(routes[i]))
			if slot != int(routes[i]) {
				s.moved.Add(1)
			}
			routes[i] = int32(slot)
		}
	}
	s.pushed.Add(uint64(n))
	s.chargePushN(p, n)
	// Grouped append: per target, in input order, coalescing runs of
	// consecutive memory-adjacent tuples into single copies.
	for ti, w := range s.writers {
		if w == nil || w.dead {
			// The slot can be latched dead mid-batch: an earlier group's
			// eviction fallback folds the membership change in via
			// syncEpoch, which abandons *every* newly evicted writer, not
			// just the one that errored. This slot's share of the batch
			// re-routes per tuple over the survivors, exactly as the
			// sequential PushTo path would — skipping it would drop tuples.
			if err := s.pushRouteAround(p, tuples, routes, ti); err != nil {
				return err
			}
			continue
		}
		if err := s.pushGrouped(p, w, tuples, routes, ti, ts); err != nil {
			return err
		}
	}
	return nil
}

// pushRouteAround re-pushes, per tuple in input order, every batch tuple
// routed to the dead (or never-connected) target ti through PushTo, which
// remaps each onto a live owner — the batched path's form of the
// at-least-once eviction window.
func (s *Source) pushRouteAround(p transport.Ctx, tuples []schema.Tuple, routes []int32, ti int) error {
	for i := range tuples {
		if int(routes[i]) != ti {
			continue
		}
		if err := s.PushTo(p, tuples[i], ti); err != nil {
			return err
		}
	}
	return nil
}

// pushGrouped appends, in input order, every tuple routed to target ti
// (or all tuples when routes is nil — the replicate case) to writer w.
// Runs of consecutive selected tuples that abut in memory collapse into
// one pushRun copy.
func (s *Source) pushGrouped(p transport.Ctx, w *ringWriter, tuples []schema.Tuple, routes []int32, ti, ts int) error {
	n := len(tuples)
	i := 0
	for i < n {
		if routes != nil && int(routes[i]) != ti {
			i++
			continue
		}
		j := i + 1
		for j < n && (routes == nil || int(routes[j]) == ti) && adjacent(tuples[j-1], tuples[j]) {
			j++
		}
		if err := w.pushRun(p, tuples[i][:ts*(j-i)], ts); err != nil {
			if routes != nil && errors.Is(err, errEvicted) {
				// The target died mid-batch. Its unconsumed window —
				// including any prefix of this run already appended — is
				// harvested and re-pushed by syncEpoch inside PushTo; the
				// rest of this target's share re-routes per tuple over the
				// survivors (the usual at-least-once eviction window).
				return s.pushRouteAround(p, tuples[i:], routes[i:], ti)
			}
			return err
		}
		i = j
	}
	return nil
}

// Batch is a writable, zero-copy view into a ring writer's current local
// segment, obtained from Reserve/ReserveTo. Lifetime rules: the view is
// valid until Commit, the source's Flush/Close, or an eviction of the
// writer's target — whichever comes first — and a writer must not be
// pushed to between Reserve and Commit (Commit detects and rejects it).
type Batch struct {
	s      *Source
	w      *ringWriter
	buf    []byte
	n      int
	ts     int
	fillAt int
	done   bool
}

// Len returns the number of reserved tuple slots (possibly fewer than
// requested: a reservation never spans a segment boundary).
func (b *Batch) Len() int { return b.n }

// Tuple returns the i-th reserved slot as a writable tuple view.
func (b *Batch) Tuple(i int) schema.Tuple {
	return schema.Tuple(b.buf[i*b.ts : (i+1)*b.ts])
}

// Bytes returns the whole reserved region.
func (b *Batch) Bytes() []byte { return b.buf }

// Reserve hands out up to n writable tuple slots directly inside the ring
// writer's current local segment: the caller fills them in place (no copy
// into the flow) and makes them visible with Commit. Reservations never
// span a segment boundary, so fewer than n slots may be returned — loop
// until done, as with partial writes. Only valid on single-target
// bandwidth flows; multi-target flows reserve per target with ReserveTo.
func (s *Source) Reserve(p transport.Ctx, n int) (*Batch, error) {
	if s.mc != nil {
		return nil, fmt.Errorf("%w: Reserve (the multicast transport owns its segment buffers)", ErrUnsupportedOnMulticast)
	}
	if s.mux != nil {
		return nil, fmt.Errorf("%w: Reserve (shared-ring segments are staged locally, not reserved in a remote ring)", ErrUnsupportedOnShared)
	}
	if len(s.writers) != 1 {
		return nil, fmt.Errorf("dfi: Reserve on a %d-target flow; use ReserveTo", len(s.writers))
	}
	return s.ReserveTo(p, 0, n)
}

// ReserveTo is Reserve against an explicit target index (paper §4.2.1
// routing option 3, zero-copy form).
func (s *Source) ReserveTo(p transport.Ctx, target, n int) (*Batch, error) {
	if s.closed {
		return nil, fmt.Errorf("dfi: reserve on closed source of flow %q", s.spec.Name)
	}
	if s.mc != nil {
		return nil, fmt.Errorf("%w: Reserve (the multicast transport owns its segment buffers)", ErrUnsupportedOnMulticast)
	}
	if s.mux != nil {
		return nil, fmt.Errorf("%w: Reserve (shared-ring segments are staged locally, not reserved in a remote ring)", ErrUnsupportedOnShared)
	}
	if s.spec.Options.Optimization != OptimizeBandwidth {
		return nil, errors.New("dfi: Reserve requires a bandwidth-optimized flow (latency mode transfers per tuple)")
	}
	if target < 0 || target >= len(s.writers) {
		return nil, fmt.Errorf("dfi: target %d out of range (%d targets)", target, len(s.writers))
	}
	if n <= 0 {
		return nil, errors.New("dfi: reserve of zero tuples")
	}
	w := s.writers[target]
	if w == nil || w.dead {
		return nil, fmt.Errorf("dfi: target %d evicted; route around it with Push", target)
	}
	if err := w.checkAbort(); err != nil {
		return nil, err
	}
	ts := s.spec.Schema.TupleSize()
	// Same boundary rule as push: flush only when not even one tuple fits,
	// so Reserve+Commit segments the stream exactly like sequential Push.
	if (w.geom.segSize-w.fill)/ts == 0 {
		if err := w.flush(p, false); err != nil {
			return nil, err
		}
	}
	if avail := (w.geom.segSize - w.fill) / ts; n > avail {
		n = avail
	}
	buf := w.localSeg()[w.fill : w.fill+n*ts]
	return &Batch{s: s, w: w, buf: buf, n: n, ts: ts, fillAt: w.fill}, nil
}

// Commit publishes the first used reserved tuples into the flow (they
// become part of the segment exactly as if pushed) and invalidates the
// batch. used may be less than Len; the unused tail is surrendered.
func (b *Batch) Commit(p transport.Ctx, used int) error {
	if b.done {
		return errors.New("dfi: batch already committed")
	}
	b.done = true
	if used < 0 || used > b.n {
		return fmt.Errorf("dfi: commit of %d tuples from a %d-tuple batch", used, b.n)
	}
	if b.w.dead || b.w.closed {
		return errors.New("dfi: batch invalidated (target evicted or source closed)")
	}
	if b.w.fill != b.fillAt {
		return errors.New("dfi: batch invalidated by an interleaved push or flush")
	}
	if used == 0 {
		return nil
	}
	b.w.fill += used * b.ts
	b.w.count += used
	b.s.pushed.Add(uint64(used))
	b.s.chargePushN(p, used)
	return nil
}

// ConsumeBatch fills dst with zero-copy tuple views from the flow,
// blocking only until the first tuple (or flow end) is available and then
// draining the active segment without further blocking. It returns the
// number of views filled and ok=false once every source has closed. The
// views obey the same lifetime rule as Consume: valid until the segment
// is recycled by a later consume call.
func (t *Target) ConsumeBatch(p transport.Ctx, dst []schema.Tuple) (int, bool) {
	if t.done.Load() {
		return 0, false
	}
	if len(dst) == 0 {
		return 0, true
	}
	if t.mc != nil {
		// The multicast transport sequences tuples one at a time.
		tup, ok := t.Consume(p)
		if !ok {
			return 0, false
		}
		dst[0] = tup
		return 1, true
	}
	for t.remaining == 0 {
		if !t.nextSegment(p) {
			return 0, false
		}
	}
	n := 0
	for n < len(dst) && t.remaining > 0 {
		dst[n] = schema.Tuple(t.segData[t.segOff : t.segOff+t.tupleSize])
		t.segOff += t.tupleSize
		t.remaining--
		n++
	}
	t.consumed.Add(uint64(n))
	return n, true
}
