package core

import (
	"errors"
	"fmt"

	"dfi/internal/transport"
)

// Elastic flows implement the paper's second stated avenue of future work
// (§7): "elasticity of flows to add/remove nodes at runtime".
//
// A flow initialized with Options.Elastic pre-provisions ring buffers for
// up to Options.MaxSources source threads; sources then join a *running*
// flow with AttachSource and leave it with the ordinary Close. Targets
// keep consuming across membership changes: a closed slot stops
// contributing, a newly attached slot starts being polled, and the flow
// only ends once it has been Sealed (no further attaches) and every
// attached source has closed.
//
// Like the SHARP combiner, this is an extension beyond the paper's
// implementation; none of the figure reproductions use it.

// elasticState is the registry-shared mutable membership of an elastic
// flow. The simulation is single-threaded, so plain fields suffice; the
// condition wakes targets waiting for membership changes.
type elasticState struct {
	attached int
	sealed   bool
	cond     transport.Cond
}

// validateElastic finishes spec validation for elastic flows.
func (s *FlowSpec) validateElastic() error {
	if !s.Options.Elastic {
		return nil
	}
	if s.Options.Multicast {
		return errors.New("dfi: elastic flows do not support multicast replicate transport")
	}
	if s.Options.MaxSources == 0 {
		s.Options.MaxSources = 2 * len(s.Sources)
	}
	if s.Options.MaxSources < len(s.Sources) {
		return fmt.Errorf("dfi: MaxSources %d below initial source count %d", s.Options.MaxSources, len(s.Sources))
	}
	return nil
}

// AttachSource joins a running elastic flow from the given endpoint and
// returns a Source bound to a fresh slot. Slots are not recycled: the
// total number of attachments over the flow's lifetime (initial sources
// included) is bounded by Options.MaxSources.
func AttachSource(p transport.Ctx, reg Registry, name string, ep Endpoint) (*Source, error) {
	meta := lookupFlow(p, reg, name)
	spec := &meta.spec
	if !spec.Options.Elastic {
		return nil, fmt.Errorf("dfi: flow %q is not elastic", name)
	}
	es := meta.elastic
	if es.sealed {
		return nil, fmt.Errorf("dfi: flow %q is sealed", name)
	}
	if es.attached >= spec.Options.MaxSources {
		return nil, fmt.Errorf("dfi: flow %q at MaxSources=%d", name, spec.Options.MaxSources)
	}
	idx := es.attached
	es.attached++
	spec.Sources = append(spec.Sources, ep)
	es.cond.Broadcast() // wake targets polling membership

	s := &Source{meta: meta, spec: spec, idx: idx, node: ep.Node, reg: reg}
	if err := s.acquireSourceLease(p, reg, name); err != nil {
		return nil, err
	}
	return s, s.connectAll(p, name)
}

// Seal forbids further attaches; targets reach FLOW_END once every
// attached source has closed. Sealing an already sealed flow is a no-op.
func Seal(p transport.Ctx, reg Registry, name string) error {
	meta := lookupFlow(p, reg, name)
	if !meta.spec.Options.Elastic {
		return fmt.Errorf("dfi: flow %q is not elastic", name)
	}
	meta.elastic.sealed = true
	meta.elastic.cond.Broadcast()
	return nil
}

// Attached returns the number of sources that have joined the elastic
// flow so far (including initial sources).
func Attached(p transport.Ctx, reg Registry, name string) (int, error) {
	meta := lookupFlow(p, reg, name)
	if !meta.spec.Options.Elastic {
		return 0, fmt.Errorf("dfi: flow %q is not elastic", name)
	}
	return meta.elastic.attached, nil
}

// elasticDone reports whether the flow can end at a target: sealed with
// every attached slot's ring closed.
func (t *Target) elasticDone() bool {
	es := t.meta.elastic
	if !es.sealed {
		return false
	}
	for i := 0; i < es.attached; i++ {
		if !t.readers[i].closed {
			return false
		}
	}
	return true
}

// elasticScan scans the currently attached slots for a consumable
// segment, mirroring nextSegment's inner loop with a membership-aware
// bound.
func (t *Target) elasticScan(p transport.Ctx) (loaded, done bool) {
	es := t.meta.elastic
	n := es.attached
	if n == 0 {
		if es.sealed {
			return false, true
		}
		return false, false
	}
	for range t.readers[:n] {
		if t.cur >= n {
			t.cur = 0
		}
		r := t.readers[t.cur]
		t.cur = (t.cur + 1) % n
		if r.closed {
			continue
		}
		if t.loadSegment(p, r) {
			return true, false
		}
	}
	t.detectFailures(p, n)
	t.closeLeftRings(n)
	return false, t.elasticDone()
}
