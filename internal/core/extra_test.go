package core

import (
	"testing"
	"time"

	"dfi/internal/schema"
	"dfi/internal/sim"
)

func TestMixedConsumeAndConsumeSegment(t *testing.T) {
	// Interleaving tuple-wise Consume with batch ConsumeSegment must still
	// deliver everything exactly once.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "mixed",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{SegmentSize: 64},
	}
	const n = 1000
	seen := make(map[int64]bool)
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "mixed", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "mixed", 0)
		ts := kvSchema.TupleSize()
		turn := 0
		for {
			turn++
			if turn%2 == 0 {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				key := kvSchema.Int64(tup, 0)
				if seen[key] {
					t.Errorf("duplicate %d", key)
				}
				seen[key] = true
				continue
			}
			data, count, ok := tgt.ConsumeSegment(p)
			if !ok {
				return
			}
			for i := 0; i < count; i++ {
				key := kvSchema.Int64(schema.Tuple(data[i*ts:(i+1)*ts]), 0)
				if seen[key] {
					t.Errorf("duplicate %d", key)
				}
				seen[key] = true
			}
		}
	})
	e.run(t)
	if len(seen) != n {
		t.Fatalf("delivered %d of %d", len(seen), n)
	}
}

func TestConsumeAfterDoneStaysDone(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "done",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "done", 0)
		_ = src.Push(p, mkTuple(1, 1))
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "done", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
		if !tgt.Done() {
			t.Error("Done() false after flow end")
		}
		for i := 0; i < 3; i++ {
			if _, ok := tgt.Consume(p); ok {
				t.Error("Consume returned a tuple after flow end")
			}
			if _, _, ok := tgt.ConsumeSegment(p); ok {
				t.Error("ConsumeSegment returned data after flow end")
			}
		}
	})
	e.run(t)
}

func TestDuplicateTargetOpenRejected(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "dup-tgt",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("p", func(p *sim.Proc) {
		_ = FlowInit(p, e.reg, e.c, spec)
		if _, err := TargetOpen(p, e.reg, "dup-tgt", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := TargetOpen(p, e.reg, "dup-tgt", 0); err == nil {
			t.Error("second TargetOpen for the same slot accepted")
		}
		if _, err := TargetOpen(p, e.reg, "dup-tgt", 7); err == nil {
			t.Error("out-of-range target index accepted")
		}
		// Let the source side close out the flow.
		src, err := SourceOpen(p, e.reg, "dup-tgt", 0)
		if err != nil {
			t.Fatal(err)
		}
		src.Close(p)
	})
	e.k.Spawn("drain", func(p *sim.Proc) {
		// The first successful TargetOpen's rings: nobody consumes, but the
		// source only writes an end marker, which fits the empty ring.
	})
	e.run(t)
}

func TestFreeReleasesMemory(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "free",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	var src *Source
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ = SourceOpen(p, e.reg, "free", 0)
		_ = src.Push(p, mkTuple(1, 1))
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "free", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
		src.Free()
		tgt.Free()
		if b := e.c.Node(0).RegisteredBytes(); b != 0 {
			t.Errorf("source node still holds %d registered bytes", b)
		}
		if b := e.c.Node(1).RegisteredBytes(); b != 0 {
			t.Errorf("target node still holds %d registered bytes", b)
		}
	})
	e.run(t)
}

func TestRegistryRPCDelayAppliesToFlowSetup(t *testing.T) {
	e := newEnv(t, 2)
	e.reg.RPCDelay = 5 * time.Microsecond
	spec := FlowSpec{
		Name:    "rpc",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	var openedAt sim.Time
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "rpc", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "rpc", 0)
		openedAt = p.Now()
		src.Close(p)
	})
	e.run(t)
	if openedAt < 10*time.Microsecond {
		t.Fatalf("setup took %v; registry RPC delays not charged", openedAt)
	}
}

func TestPushedAndConsumedCounters(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "count",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	const n = 500
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "count", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		if src.Pushed() != n {
			t.Errorf("Pushed = %d", src.Pushed())
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "count", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
		if tgt.Consumed() != n {
			t.Errorf("Consumed = %d", tgt.Consumed())
		}
	})
	e.run(t)
}
