package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dfi/internal/core/partition"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// Re-attach suite: evicted endpoints rejoining a live flow under a fresh
// incarnation, resuming from the confirmed watermark. The chaos tests pin
// the delivery contract across a rejoin: exactly-once below the last
// Checkpoint, at-least-once between the watermark and the eviction, and
// never a loss.

// TestRouteIndexAgreesWithPartitioner pins the routing dedup: routeIndex
// is the partitioner's Home for every key under both schemes, and under
// modulo it still equals the legacy inline hash formula bit for bit.
func TestRouteIndexAgreesWithPartitioner(t *testing.T) {
	for _, sc := range []partition.Scheme{partition.Modulo, partition.Ring} {
		const nTargets = 5
		spec := FlowSpec{
			Targets:    make([]Endpoint, nTargets),
			Schema:     kvSchema,
			ShuffleKey: 0,
			Options:    Options{Partitioning: sc},
		}
		for i := int64(0); i < 5000; i++ {
			tup := mkTuple(i, 0)
			key := kvSchema.KeyUint64(tup, 0)
			got := routeIndex(&spec, tup)
			if want := spec.table().Home(key); got != want {
				t.Fatalf("%v: routeIndex(key %d) = %d, partitioner Home = %d", sc, i, got, want)
			}
			if sc == partition.Modulo {
				if legacy := int(schema.Hash(key) % nTargets); got != legacy {
					t.Fatalf("modulo: routeIndex(key %d) = %d, legacy hash formula = %d", i, got, legacy)
				}
			}
		}
	}
}

// reattachCollect drains one target incarnation into a per-key delivery
// count, checking payload integrity. Uniqueness is asserted on the
// counts after the run: a source rejoin legitimately lands the
// at-least-once window twice in the *same* target incarnation (the
// pre-eviction copy plus the resume re-push), so a per-consume dup
// check would be wrong here.
func reattachCollect(t *testing.T, p *sim.Proc, tgt *Target, into map[int64]int) {
	t.Helper()
	for {
		tup, ok := tgt.Consume(p)
		if !ok {
			return
		}
		k := kvSchema.Int64(tup, 0)
		if v := kvSchema.Int64(tup, 1); v != 2*k {
			t.Errorf("key %d has value %d, want %d", k, v, 2*k)
		}
		into[k]++
	}
}

func TestChaosTargetEvictReattachResume(t *testing.T) {
	// A ring-partitioned shuffle target is administratively evicted
	// mid-stream, waits out an outage window, and re-attaches. Sources
	// checkpoint before the eviction, so the watermark splits the stream:
	// keys behind it are delivered exactly once among live members, keys
	// between the watermark and the eviction at least once (a duplicate
	// must straddle the eviction boundary — one copy on the dead
	// incarnation, one on a survivor), and nothing is lost. The rejoined
	// incarnation must take back its arcs and consume again.
	const (
		perSource = 3000
		phase1    = 500
		deadIdx   = 1
		evictAt   = 250 * time.Microsecond
		rejoinGap = 100 * time.Microsecond
	)
	e := newEnv(t, 6)
	spec := FlowSpec{
		Name:       "reattach-tgt",
		Sources:    []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets:    []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}, {Node: e.c.Node(4)}, {Node: e.c.Node(5)}},
		Schema:     kvSchema,
		ShuffleKey: 0,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			RetransmitTimeout: 40 * time.Microsecond,
			Partitioning:      partition.Ring,
		},
	}
	nTargets := len(spec.Targets)
	// One delivery count per incarnation: slots 0..3 are the first
	// incarnations, slot 4 the rejoined target's second incarnation.
	cols := make([]map[int64]int, nTargets+1)
	for i := range cols {
		cols[i] = make(map[int64]int)
	}
	srcs := make([]*Source, len(spec.Sources))
	var checkpointAt [2]sim.Time
	var sawEvict bool
	var oldConsumed, resumedFrom uint64
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(evictAt)
		if err := e.reg.Evict(p, spec.Name, registry.RoleTarget, deadIdx); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	for si := range spec.Sources {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			srcs[si] = src
			base := int64(si * perSource)
			for i := int64(0); i < phase1; i++ {
				if err := src.Push(p, mkTuple(base+i, 2*(base+i))); err != nil {
					t.Errorf("source %d push %d: %v", si, i, err)
					return
				}
			}
			wm, err := src.Checkpoint(p)
			if err != nil {
				t.Errorf("source %d checkpoint: %v", si, err)
				return
			}
			if wm != phase1 {
				t.Errorf("source %d watermark = %d, want %d", si, wm, phase1)
			}
			checkpointAt[si] = p.Now()
			for i := int64(phase1); i < perSource; i++ {
				if err := src.Push(p, mkTuple(base+i, 2*(base+i))); err != nil {
					t.Errorf("source %d push %d: %v", si, i, err)
					return
				}
				p.Sleep(200 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	for ti := 0; ti < nTargets; ti++ {
		ti := ti
		if ti == deadIdx {
			continue
		}
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			reattachCollect(t, p, tgt, cols[ti])
			if tgt.Evicted() {
				t.Errorf("surviving target %d was evicted", ti)
			}
		})
	}
	e.k.Spawn("tgt-dead", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, deadIdx)
		if err != nil {
			t.Error(err)
			return
		}
		reattachCollect(t, p, tgt, cols[deadIdx])
		sawEvict = tgt.Evicted()
		oldConsumed = tgt.Consumed()
		p.Sleep(rejoinGap) // the outage window the survivors cover
		nt, err := tgt.Reattach(p)
		if err != nil {
			t.Errorf("reattach: %v", err)
			return
		}
		resumedFrom = nt.ResumedFrom()
		reattachCollect(t, p, nt, cols[nTargets])
	})
	e.run(t)

	for si, src := range srcs {
		if src == nil {
			t.Fatalf("source %d never opened", si)
		}
		if checkpointAt[si] == 0 || checkpointAt[si] >= evictAt {
			t.Fatalf("source %d checkpoint finished at %v, not before the eviction at %v; retune the test timings",
				si, checkpointAt[si], evictAt)
		}
		if src.Epoch() < 2 {
			t.Errorf("source %d folded epoch %d, want >= 2 (eviction + rejoin)", si, src.Epoch())
		}
	}
	if !sawEvict {
		t.Fatal("the evicted target never observed its eviction")
	}
	if oldConsumed == 0 {
		t.Fatal("evicted target consumed nothing before the eviction; eviction came too early")
	}
	if resumedFrom != oldConsumed {
		t.Errorf("ResumedFrom = %d, want the previous incarnation's consumed count %d", resumedFrom, oldConsumed)
	}
	if len(cols[nTargets]) == 0 {
		t.Fatal("rejoined incarnation consumed nothing; sources never reconnected or arcs were not reclaimed")
	}
	var moved, rerouted uint64
	for _, src := range srcs {
		moved += src.Moved()
		rerouted += src.Rerouted()
	}
	if moved == 0 {
		t.Error("no tuple was routed to a live owner while the slot was down")
	}
	if rerouted == 0 {
		t.Error("no harvested tuple was re-pushed after the eviction")
	}

	total := make(map[int64]int)
	for _, col := range cols {
		for k, c := range col {
			total[k] += c
		}
	}
	for i := int64(0); i < int64(len(spec.Sources))*perSource; i++ {
		c := total[i]
		if c == 0 {
			t.Fatalf("key %d lost across the eviction/rejoin", i)
		}
		if i%perSource < phase1 {
			// Behind the confirmed watermark: delivery was confirmed before
			// the eviction, so the harvest may never re-push it.
			if c != 1 {
				t.Fatalf("key %d below the watermark delivered %d times, want exactly once", i, c)
			}
			continue
		}
		if c > 2 {
			t.Errorf("key %d delivered %d times, want at most twice", i, c)
		}
		if c == 2 && cols[deadIdx][i] == 0 {
			// A duplicate must straddle the eviction boundary: one copy on
			// the dead incarnation, the re-push on a live member. Two
			// copies among live members break exactly-once.
			t.Errorf("key %d duplicated among live members", i)
		}
	}
}

func TestChaosSourceEvictReattachResume(t *testing.T) {
	// A source is administratively evicted mid-stream: Push surfaces
	// ErrFlowBroken, Reattach reclaims the slot under a fresh incarnation
	// and returns the checkpointed watermark, and the application resumes
	// pushing from there. Targets reset the slot's ring for the new
	// stream; keys behind the watermark arrive exactly once, keys between
	// the watermark and the eviction at most twice, and nothing is lost.
	const (
		perSource = 2000
		phase1    = 400
		evictAt   = 150 * time.Microsecond
	)
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:       "reattach-src",
		Sources:    []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets:    []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:     kvSchema,
		ShuffleKey: 0,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	nTargets := len(spec.Targets)
	cols := make([]map[int64]int, nTargets)
	failed := make([][]int, nTargets)
	var checkpointAt sim.Time
	var pushErr error
	var wmGot uint64
	nsSlot := -1
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(evictAt)
		if err := e.reg.Evict(p, spec.Name, registry.RoleSource, 0); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	e.k.Spawn("src0", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(0); i < phase1; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		wm, err := src.Checkpoint(p)
		if err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}
		checkpointAt = p.Now()
		for i := int64(wm); i < perSource; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				pushErr = err
				break
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if pushErr == nil {
			t.Error("source 0 was never evicted mid-stream; retune the test timings")
			src.Close(p)
			return
		}
		ns, wm2, err := src.Reattach(p)
		if err != nil {
			t.Errorf("reattach: %v", err)
			return
		}
		wmGot = wm2
		nsSlot = ns.Slot()
		if ns.Watermark() != wm2 {
			t.Errorf("rejoined source Watermark = %d, want %d", ns.Watermark(), wm2)
		}
		for i := int64(wm2); i < perSource; i++ {
			if err := ns.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("re-push %d: %v", i, err)
				return
			}
		}
		if err := ns.Close(p); err != nil {
			t.Errorf("close after reattach: %v", err)
		}
	})
	e.k.Spawn("src1", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(perSource); i < 2*perSource; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("healthy source push %d: %v", i, err)
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if err := src.Close(p); err != nil {
			t.Errorf("healthy source close: %v", err)
		}
	})
	for ti := 0; ti < nTargets; ti++ {
		ti := ti
		cols[ti] = make(map[int64]int)
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			reattachCollect(t, p, tgt, cols[ti])
			failed[ti] = tgt.FailedSources()
		})
	}
	e.run(t)

	if checkpointAt == 0 || checkpointAt >= evictAt {
		t.Fatalf("checkpoint finished at %v, not before the eviction at %v; retune the test timings", checkpointAt, evictAt)
	}
	if !errors.Is(pushErr, ErrFlowBroken) {
		t.Fatalf("push on the evicted source returned %v, want ErrFlowBroken", pushErr)
	}
	if wmGot != phase1 {
		t.Fatalf("Reattach watermark = %d, want the checkpointed %d", wmGot, phase1)
	}
	if nsSlot != 0 {
		t.Fatalf("rejoined source slot = %d, want the reclaimed slot 0", nsSlot)
	}
	for ti, f := range failed {
		// The slot was closed while evicted but reopened by the rejoin's
		// ring reset, so the final verdict must be clean.
		if len(f) != 0 {
			t.Errorf("target %d reports failed sources %v after the rejoin, want none", ti, f)
		}
	}
	total := make(map[int64]int)
	for ti, col := range cols {
		for k, c := range col {
			if home := int(schema.Hash(uint64(k)) % uint64(nTargets)); home != ti {
				t.Errorf("key %d delivered to target %d, want its home %d", k, ti, home)
			}
			total[k] += c
		}
	}
	for i := int64(0); i < 2*perSource; i++ {
		c := total[i]
		if c == 0 {
			t.Fatalf("key %d lost across the source rejoin", i)
		}
		switch {
		case i >= perSource || i < phase1:
			// The healthy source's stream and the checkpointed prefix:
			// exactly once.
			if c != 1 {
				t.Fatalf("key %d delivered %d times, want exactly once", i, c)
			}
		case c > 2:
			// Between the watermark and the eviction: the at-least-once
			// window — a pre-eviction copy plus the resume re-push.
			t.Errorf("key %d delivered %d times, want at most twice", i, c)
		}
	}
}

func TestElasticSourceReattachFreshSlot(t *testing.T) {
	// On an elastic flow a rejoining source cannot reclaim its slot
	// (slots are never recycled); Reattach transfers its identity — and
	// checkpointed watermark — to a fresh slot through the ordinary
	// attach machinery. Delivery contract as in the non-elastic test.
	const (
		perSource = 1200
		phase1    = 300
		evictAt   = 100 * time.Microsecond
	)
	e := newEnv(t, 3)
	spec := FlowSpec{
		Name:       "reattach-elastic",
		Sources:    []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets:    []Endpoint{{Node: e.c.Node(2)}},
		Schema:     kvSchema,
		ShuffleKey: 0,
		Options: Options{
			Elastic:           true,
			MaxSources:        4,
			SegmentSize:       256,
			SegmentsPerRing:   8,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	got := make(map[int64]int)
	var srcDone [2]bool
	var checkpointAt sim.Time
	var pushErr error
	var wmGot uint64
	nsSlot := -1
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(evictAt)
		if err := e.reg.Evict(p, spec.Name, registry.RoleSource, 0); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	e.k.Spawn("src0", func(p *sim.Proc) {
		defer func() { srcDone[0] = true }()
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(0); i < phase1; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		wm, err := src.Checkpoint(p)
		if err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}
		checkpointAt = p.Now()
		for i := int64(wm); i < perSource; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				pushErr = err
				break
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if pushErr == nil {
			t.Error("source 0 was never evicted mid-stream; retune the test timings")
			src.Close(p)
			return
		}
		ns, wm2, err := src.Reattach(p)
		if err != nil {
			t.Errorf("reattach: %v", err)
			return
		}
		wmGot = wm2
		nsSlot = ns.Slot()
		for i := int64(wm2); i < perSource; i++ {
			if err := ns.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("re-push %d: %v", i, err)
				return
			}
		}
		if err := ns.Close(p); err != nil {
			t.Errorf("close after reattach: %v", err)
		}
	})
	e.k.Spawn("src1", func(p *sim.Proc) {
		defer func() { srcDone[1] = true }()
		src, err := SourceOpen(p, e.reg, spec.Name, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(perSource); i < 2*perSource; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("healthy source push %d: %v", i, err)
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if err := src.Close(p); err != nil {
			t.Errorf("healthy source close: %v", err)
		}
	})
	e.k.Spawn("sealer", func(p *sim.Proc) {
		for {
			p.Sleep(20 * time.Microsecond)
			if srcDone[0] && srcDone[1] {
				if err := Seal(p, e.reg, spec.Name); err != nil {
					t.Errorf("seal: %v", err)
				}
				return
			}
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		reattachCollect(t, p, tgt, got)
	})
	e.run(t)

	if checkpointAt == 0 || checkpointAt >= evictAt {
		t.Fatalf("checkpoint finished at %v, not before the eviction at %v; retune the test timings", checkpointAt, evictAt)
	}
	if !errors.Is(pushErr, ErrFlowBroken) {
		t.Fatalf("push on the evicted source returned %v, want ErrFlowBroken", pushErr)
	}
	if wmGot != phase1 {
		t.Fatalf("Reattach watermark = %d, want the checkpointed %d", wmGot, phase1)
	}
	if nsSlot != 2 {
		t.Fatalf("rejoined elastic source slot = %d, want the fresh slot 2 (slots are not recycled)", nsSlot)
	}
	for i := int64(0); i < 2*perSource; i++ {
		c := got[i]
		if c == 0 {
			t.Fatalf("key %d lost across the elastic rejoin", i)
		}
		switch {
		case i >= perSource || i < phase1:
			if c != 1 {
				t.Fatalf("key %d delivered %d times, want exactly once", i, c)
			}
		case c > 2:
			t.Errorf("key %d delivered %d times, want at most twice", i, c)
		}
	}
}

func TestReattachRejectedWhileLive(t *testing.T) {
	// Rejoin fencing: an endpoint that was never evicted cannot re-attach
	// — a duplicate incarnation of a live slot would split its stream.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "reattach-live",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{RetransmitTimeout: 40 * time.Microsecond},
	}
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, err := src.Reattach(p); err == nil {
			t.Error("live source re-attached; rejoin fencing is broken")
		}
		for i := int64(0); i < 100; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	got := make(map[int64]int)
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tgt.Reattach(p); err == nil {
			t.Error("live target re-attached; rejoin fencing is broken")
		}
		reattachCollect(t, p, tgt, got)
	})
	e.run(t)
	if len(got) != 100 {
		t.Fatalf("delivered %d keys, want 100 (the rejected rejoins must not disturb the flow)", len(got))
	}
}
