package core

import (
	"testing"

	"dfi/internal/sim"
)

func TestFlowStatsAccounting(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "stats",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	const n = 3000
	var ss SourceStats
	var ts TargetStats
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "stats", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		src.Close(p)
		ss = src.Stats()
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "stats", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
		ts = tgt.Stats()
	})
	e.run(t)
	if ss.TuplesPushed != n {
		t.Errorf("TuplesPushed = %d", ss.TuplesPushed)
	}
	if ss.PayloadBytes != uint64(n*kvSchema.TupleSize()) {
		t.Errorf("PayloadBytes = %d, want %d", ss.PayloadBytes, n*kvSchema.TupleSize())
	}
	wantSegs := uint64(n*kvSchema.TupleSize())/(8<<10) + 1 // + end marker
	if ss.SegmentsWritten < wantSegs || ss.SegmentsWritten > wantSegs+2 {
		t.Errorf("SegmentsWritten = %d, want ≈ %d", ss.SegmentsWritten, wantSegs)
	}
	if ts.TuplesConsumed != n || !ts.Done {
		t.Errorf("target stats = %+v", ts)
	}
	if ts.SegmentsConsumed != ss.SegmentsWritten {
		t.Errorf("segments consumed %d != written %d", ts.SegmentsConsumed, ss.SegmentsWritten)
	}
	if len(ts.FailedSources) != 0 {
		t.Errorf("unexpected failures: %v", ts.FailedSources)
	}
	if ss.String() == "" || ts.String() == "" {
		t.Error("empty String()")
	}
}
