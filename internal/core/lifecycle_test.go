package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/sim"
)

// Lifecycle suite: the control-plane failure model end to end. A crashed
// endpoint's lease expires, the flow epoch moves, and the data plane
// reroutes around the eviction — without the data-plane failure detectors
// (SourceTimeout) and without losing surviving tuples.

func TestLifecycleShuffleTargetEviction(t *testing.T) {
	// Acceptance: N:M bandwidth shuffle, one target's node crashes
	// mid-run. Its lease expires (crash ≈ 300µs, eviction ≤ crash +
	// TTL + grace = 460µs plus RPC slack), sources rehash its key range
	// over the survivors and re-push the dead writer's unconsumed window.
	// Every tuple must reach the dead target before the crash or a
	// survivor after it; among survivors, exactly once.
	const (
		crashAt   = 300 * time.Microsecond
		leaseTTL  = 80 * time.Microsecond
		perSource = 3000
		deadIdx   = 2
	)
	plan := (&fabric.FaultPlan{}).CrashNode(4, crashAt)
	e := newEnv(t, 5, withFaults(plan))
	spec := FlowSpec{
		Name:    "lease-shuffle",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}, {Node: e.c.Node(4)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:     256,
			SegmentsPerRing: 8,
			LeaseTTL:        leaseTTL,
		},
	}
	got := make([]map[int64]int64, len(spec.Targets))
	evicted := make([]bool, len(spec.Targets))
	srcs := make([]*Source, len(spec.Sources))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := range spec.Sources {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			srcs[si] = src
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Errorf("source %d push key %d: %v", si, key, err)
					return
				}
				p.Sleep(200 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	for ti := range spec.Targets {
		ti := ti
		got[ti] = make(map[int64]int64)
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				k := kvSchema.Int64(tup, 0)
				if _, dup := got[ti][k]; dup {
					t.Errorf("target %d: duplicate key %d", ti, k)
				}
				got[ti][k] = kvSchema.Int64(tup, 1)
			}
			evicted[ti] = tgt.Evicted()
		})
	}
	e.run(t)
	if !evicted[deadIdx] {
		t.Fatal("crashed target was not evicted")
	}
	if evicted[0] || evicted[1] {
		t.Fatal("a surviving target was evicted")
	}
	var rerouted uint64
	for si, src := range srcs {
		if src == nil {
			t.Fatalf("source %d never opened", si)
		}
		if src.Epoch() == 0 {
			t.Errorf("source %d never observed the eviction epoch", si)
		}
		rerouted += src.Rerouted()
	}
	if rerouted == 0 {
		t.Error("no tuples were rerouted; the dead writer's window was not recovered")
	}
	// Exactly-once among survivors; at-least-once across the crash
	// boundary (the dead target may have consumed a tuple whose segment
	// was never acknowledged back to the writer).
	survivors := make(map[int64]int64)
	for ti := 0; ti < len(spec.Targets); ti++ {
		if ti == deadIdx {
			continue
		}
		for k, v := range got[ti] {
			if _, dup := survivors[k]; dup {
				t.Errorf("key %d delivered to two surviving targets", k)
			}
			survivors[k] = v
		}
	}
	movedKeys := 0
	for i := int64(0); i < int64(len(spec.Sources))*perSource; i++ {
		v, onSurvivor := survivors[i]
		if onSurvivor && v != 2*i {
			t.Fatalf("key %d has value %d, want %d", i, v, 2*i)
		}
		_, onDead := got[deadIdx][i]
		if !onSurvivor && !onDead {
			t.Fatalf("key %d lost: neither a survivor nor the pre-crash dead target has it", i)
		}
		if onSurvivor && routeIndex(&spec, mkTuple(i, 2*i)) == deadIdx {
			movedKeys++
		}
	}
	if movedKeys == 0 {
		t.Fatal("no key from the dead target's range reached a survivor; rehashing did not engage")
	}
}

func TestLifecycleReplicateAdminEvict(t *testing.T) {
	// Administrative eviction of one ring-replicate leg mid-stream: the
	// survivors still receive the complete stream in order, the evicted
	// target terminates with an in-order prefix, and the source closes
	// cleanly (the dead leg is dropped, not drained — every survivor has
	// its own copy).
	const (
		n       = 2000
		deadIdx = 1
	)
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "evict-rep",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	orders := make([][]int64, len(spec.Targets))
	evicted := make([]bool, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(150 * time.Microsecond)
		if err := e.reg.Evict(p, spec.Name, registry.RoleTarget, deadIdx); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if err := src.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			p.Sleep(100 * time.Nanosecond)
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	for ti := range spec.Targets {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
			}
			evicted[ti] = tgt.Evicted()
		})
	}
	e.run(t)
	for ti, ord := range orders {
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: got %d", ti, i, k)
			}
		}
		if ti == deadIdx {
			continue
		}
		if len(ord) != n {
			t.Fatalf("surviving target %d got %d tuples, want %d", ti, len(ord), n)
		}
	}
	if !evicted[deadIdx] {
		t.Fatal("administratively evicted target did not observe its eviction")
	}
	if len(orders[deadIdx]) >= n {
		t.Fatal("evicted target received the full stream; eviction came too late to matter")
	}
}

func TestLifecycleSourceCrashLeaseEviction(t *testing.T) {
	// A source's node crashes mid-flow on a spec WITHOUT SourceTimeout:
	// before leases this flow could only hang (the dead ring never
	// closes). The lease expiry must evict the source, the target closes
	// its ring (reported like a detector failure), and the flow ends with
	// the healthy source's complete stream.
	const (
		crashAt   = 300 * time.Microsecond
		perSource = 2000
	)
	plan := (&fabric.FaultPlan{}).CrashNode(1, crashAt)
	e := newEnv(t, 3, withFaults(plan))
	spec := FlowSpec{
		Name:    "lease-src-crash",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:     256,
			SegmentsPerRing: 8,
			LeaseTTL:        80 * time.Microsecond,
		},
	}
	got := make(map[int64]int64)
	var failed []int
	var crashedErr error
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					if si != 1 {
						t.Errorf("healthy source push: %v", err)
					}
					crashedErr = err
					return
				}
				p.Sleep(200 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil {
				if si != 1 {
					t.Errorf("healthy source close: %v", err)
				}
				crashedErr = err
			}
		})
	}
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			got[kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
		}
		failed = tgt.FailedSources()
	})
	e.run(t)
	if crashedErr == nil {
		t.Fatal("crashed source reported no error")
	}
	if !errors.Is(crashedErr, ErrFlowBroken) {
		t.Fatalf("crashed source error %v, want ErrFlowBroken", crashedErr)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed sources %v, want [1] (lease eviction reported)", failed)
	}
	for i := 0; i < perSource; i++ {
		if v, ok := got[int64(i)]; !ok || v != int64(2*i) {
			t.Fatalf("healthy source tuple %d missing or corrupt", i)
		}
	}
}

func TestLifecycleRegistryFailoverMidSetup(t *testing.T) {
	// The registry master crashes while the flow is still rendezvousing:
	// clients retry idempotently, the standby is promoted, and every
	// endpoint still opens the flow — the data plane never notices.
	e := newEnv(t, 3)
	rr, err := registry.NewReplicated(e.k, registry.ReplicaConfig{
		RPCDelay: 500 * time.Nanosecond,
		Faults:   &fabric.FaultPlan{RegistryCrashMaster: 5 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.reg = rr
	spec := FlowSpec{
		Name:    "failover-setup",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
	}
	const n = 500
	got := make([]map[int64]int64, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if err := src.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	for ti := range spec.Targets {
		ti := ti
		got[ti] = make(map[int64]int64)
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			if ti == 1 {
				// Lands this target's PublishTarget after the scheduled
				// master crash: its setup RPC is what triggers failover.
				p.Sleep(10 * time.Microsecond)
			}
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				got[ti][kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
			}
		})
	}
	e.run(t)
	if rr.Elections() == 0 || rr.Master() == 0 {
		t.Fatalf("master = %d elections = %d; failover never happened mid-setup", rr.Master(), rr.Elections())
	}
	checkAllDelivered(t, got, n)
}
