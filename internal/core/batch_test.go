package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// The batched data path must be invisible on the wire: for every flow
// type and both optimization modes, pushing a tuple stream through
// PushBatch (or Reserve/Commit) must leave every target ring
// byte-identical to pushing the same stream through sequential Push.
// These tests run the same deterministic workload through both paths
// and compare raw ring memory.

type pushMode int

const (
	seqPush pushMode = iota
	batchPush
	reservePush
)

func (m pushMode) String() string {
	return [...]string{"push", "pushbatch", "reserve"}[m]
}

// genStream builds source si's deterministic tuple stream as one
// contiguous buffer (so PushBatch can exercise run coalescing) plus
// per-tuple views into it.
func genStream(seed int64, si, perSource int) ([]byte, []schema.Tuple) {
	ts := kvSchema.TupleSize()
	rng := rand.New(rand.NewSource(seed + int64(si)*7919))
	buf := make([]byte, perSource*ts)
	tuples := make([]schema.Tuple, perSource)
	for i := 0; i < perSource; i++ {
		tup := schema.Tuple(buf[i*ts : (i+1)*ts])
		kvSchema.PutInt64(tup, 0, rng.Int63())
		kvSchema.PutInt64(tup, 1, int64(si*perSource+i))
		tuples[i] = tup
	}
	return buf, tuples
}

// runBatchEquiv runs one flow to completion with targets that attach but
// never consume, and returns a snapshot of every target's raw ring
// memory. Volumes are sized so even a worst-case routing skew fits the
// rings without needing a consumer.
func runBatchEquiv(t *testing.T, seed int64, ftype FlowType, opt Optimization, mode pushMode, nSrc, nTgt, perSource int) [][]byte {
	t.Helper()
	k := sim.New(seed)
	k.Deadline = 30 * time.Second
	c := fabric.NewCluster(k, nSrc+nTgt, fabric.DefaultConfig())
	reg := newTestRegistry(k)

	spec := FlowSpec{
		Name:   "batch-equiv",
		Type:   ftype,
		Schema: kvSchema,
		Options: Options{
			Optimization:    opt,
			SegmentsPerRing: 34,
			SegmentSize:     4 * kvSchema.TupleSize(),
		},
	}
	if opt == OptimizeLatency {
		spec.Options.SegmentSize = 0 // latency mode defaults to tuple-sized segments
	}
	if ftype == CombinerFlow {
		spec.Options.ValueCol = 1
	}
	for i := 0; i < nSrc; i++ {
		spec.Sources = append(spec.Sources, Endpoint{Node: c.Node(i)})
	}
	for i := 0; i < nTgt; i++ {
		node := c.Node(nSrc + i)
		if ftype == CombinerFlow {
			node = c.Node(nSrc) // combiner targets share one node (N:1)
		}
		spec.Targets = append(spec.Targets, Endpoint{Node: node})
	}

	k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	targets := make([]*Target, nTgt)
	for ti := 0; ti < nTgt; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, reg, "batch-equiv", ti)
			if err != nil {
				panic(err)
			}
			targets[ti] = tgt // attach only; the rings keep the full stream
		})
	}
	for si := 0; si < nSrc; si++ {
		si := si
		k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, reg, "batch-equiv", si)
			if err != nil {
				panic(err)
			}
			_, tuples := genStream(seed, si, perSource)
			switch mode {
			case seqPush:
				for _, tup := range tuples {
					if err := src.Push(p, tup); err != nil {
						panic(err)
					}
				}
			case batchPush:
				// Uneven chunks exercise partial batches and the
				// run-coalescing boundary cases.
				for len(tuples) > 0 {
					chunk := 7
					if chunk > len(tuples) {
						chunk = len(tuples)
					}
					if err := src.PushBatch(p, tuples[:chunk]); err != nil {
						panic(err)
					}
					tuples = tuples[chunk:]
				}
			case reservePush:
				for off := 0; off < len(tuples); {
					b, err := src.Reserve(p, len(tuples)-off)
					if err != nil {
						panic(err)
					}
					for i := 0; i < b.Len(); i++ {
						copy(b.Tuple(i), tuples[off+i])
					}
					if err := b.Commit(p, b.Len()); err != nil {
						panic(err)
					}
					off += b.Len()
				}
			}
			if err := src.Close(p); err != nil {
				panic(err)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("%s/%s/%s seed %d: %v", ftype, opt, mode, seed, err)
	}
	snaps := make([][]byte, nTgt)
	for ti, tgt := range targets {
		snaps[ti] = append([]byte(nil), tgt.mr.Bytes()...)
	}
	return snaps
}

// TestBatchPushRingEquivalence: PushBatch leaves byte-identical rings for
// every flow type and both optimization modes, across a seed sweep.
func TestBatchPushRingEquivalence(t *testing.T) {
	opts := []Optimization{OptimizeBandwidth, OptimizeLatency}
	flows := []FlowType{ShuffleFlow, ReplicateFlow, CombinerFlow}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, ftype := range flows {
		for _, opt := range opts {
			for _, seed := range seeds {
				perSource := 40
				if opt == OptimizeLatency {
					perSource = 12 // tuple-sized segments: keep worst-case skew under one ring
				}
				want := runBatchEquiv(t, seed, ftype, opt, seqPush, 2, 3, perSource)
				got := runBatchEquiv(t, seed, ftype, opt, batchPush, 2, 3, perSource)
				for ti := range want {
					if !bytes.Equal(want[ti], got[ti]) {
						t.Fatalf("%s/%s seed %d: target %d ring diverges between Push and PushBatch",
							ftype, opt, seed, ti)
					}
				}
			}
		}
	}
}

// TestReserveRingEquivalence: filling reserved segments in place and
// committing them leaves rings byte-identical to pushing the same tuples.
func TestReserveRingEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 27} {
		want := runBatchEquiv(t, seed, ShuffleFlow, OptimizeBandwidth, seqPush, 2, 1, 40)
		got := runBatchEquiv(t, seed, ShuffleFlow, OptimizeBandwidth, reservePush, 2, 1, 40)
		for ti := range want {
			if !bytes.Equal(want[ti], got[ti]) {
				t.Fatalf("seed %d: target %d ring diverges between Push and Reserve/Commit", seed, ti)
			}
		}
	}
}

// TestBatchPushDoubleEvictionNoLoss: two targets are evicted back to back
// mid-stream, so one PushBatch call can observe both — the first dead
// group's errEvicted fallback folds the membership change in via
// syncEpoch, which latches the second target's writer dead *before* its
// group was appended. Regression test for the batched path dropping that
// second group instead of re-routing it: every tuple must land on a
// survivor or on an evicted target's pre-eviction prefix, like the
// sequential path guarantees.
func TestBatchPushDoubleEvictionNoLoss(t *testing.T) {
	seeds := []int64{1, 5, 7, 11, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		testBatchDoubleEviction(t, seed)
	}
}

func testBatchDoubleEviction(t *testing.T, seed int64) {
	t.Helper()
	const (
		nSrc, nTgt = 2, 4
		perSource  = 3000
		chunk      = 64
		evictAt    = 120 * time.Microsecond
	)
	k := sim.New(seed)
	k.Deadline = 30 * time.Second
	c := fabric.NewCluster(k, nSrc+nTgt, fabric.DefaultConfig())
	reg := newTestRegistry(k)
	spec := FlowSpec{
		Name:   "batch-evict2",
		Schema: kvSchema,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	for i := 0; i < nSrc; i++ {
		spec.Sources = append(spec.Sources, Endpoint{Node: c.Node(i)})
	}
	for i := 0; i < nTgt; i++ {
		spec.Targets = append(spec.Targets, Endpoint{Node: c.Node(nSrc + i)})
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, reg, c, spec); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(evictAt)
		for _, ti := range []int{2, 3} {
			if err := reg.Evict(p, spec.Name, registry.RoleTarget, ti); err != nil {
				t.Errorf("evict target %d: %v", ti, err)
			}
		}
	})
	got := make([]map[int64]bool, nTgt)
	evicted := make([]bool, nTgt)
	for ti := 0; ti < nTgt; ti++ {
		ti := ti
		got[ti] = make(map[int64]bool)
		k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				got[ti][kvSchema.Int64(tup, 1)] = true
			}
			evicted[ti] = tgt.Evicted()
		})
	}
	for si := 0; si < nSrc; si++ {
		si := si
		k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			_, tuples := genStream(seed, si, perSource)
			for len(tuples) > 0 {
				n := chunk
				if n > len(tuples) {
					n = len(tuples)
				}
				if err := src.PushBatch(p, tuples[:n]); err != nil {
					t.Errorf("source %d: %v", si, err)
					return
				}
				tuples = tuples[n:]
				p.Sleep(4 * time.Microsecond)
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !evicted[2] || !evicted[3] {
		t.Fatalf("seed %d: evicted targets did not observe their eviction (evictions landed after the stream?)", seed)
	}
	for id := int64(0); id < int64(nSrc*perSource); id++ {
		onSurvivor := 0
		for ti := 0; ti < 2; ti++ {
			if got[ti][id] {
				onSurvivor++
			}
		}
		if onSurvivor > 1 {
			t.Errorf("seed %d: tuple %d delivered to both survivors", seed, id)
		}
		if onSurvivor == 0 && !got[2][id] && !got[3][id] {
			t.Fatalf("seed %d: tuple %d lost — a dead target's batch group was dropped instead of re-routed", seed, id)
		}
	}
}

// TestConsumeBatchDelivery: draining a shuffle flow through ConsumeBatch
// observes exactly the tuples pushed, each exactly once.
func TestConsumeBatchDelivery(t *testing.T) {
	const nSrc, nTgt, perSource = 2, 2, 500
	k := sim.New(5)
	k.Deadline = 30 * time.Second
	c := fabric.NewCluster(k, nSrc+nTgt, fabric.DefaultConfig())
	reg := newTestRegistry(k)
	spec := FlowSpec{Name: "cb", Schema: kvSchema}
	for i := 0; i < nSrc; i++ {
		spec.Sources = append(spec.Sources, Endpoint{Node: c.Node(i)})
	}
	for i := 0; i < nTgt; i++ {
		spec.Targets = append(spec.Targets, Endpoint{Node: c.Node(nSrc + i)})
	}
	k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})
	got := make(map[int64]int)
	for ti := 0; ti < nTgt; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, reg, "cb", ti)
			if err != nil {
				panic(err)
			}
			views := make([]schema.Tuple, 13)
			for {
				n, ok := tgt.ConsumeBatch(p, views)
				if !ok {
					return
				}
				for _, tup := range views[:n] {
					got[kvSchema.Int64(tup, 1)]++
				}
			}
		})
	}
	for si := 0; si < nSrc; si++ {
		si := si
		k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, reg, "cb", si)
			if err != nil {
				panic(err)
			}
			_, tuples := genStream(5, si, perSource)
			if err := src.PushBatch(p, tuples); err != nil {
				panic(err)
			}
			src.Close(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != nSrc*perSource {
		t.Fatalf("got %d unique tuples, want %d", len(got), nSrc*perSource)
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("tuple %d consumed %d times", id, n)
		}
	}
}
