package core

import (
	"fmt"
	"time"

	"dfi/internal/schema"
	"dfi/internal/transport"
)

// This file implements the paper's stated avenue of future work for
// combiner flows (§4.2.3, §5.4): pushing the aggregation *into the
// network* the way InfiniBand's SHARP protocol does, so the reduction no
// longer funnels through the in-going link of the target node.
//
// The in-network combiner is composed from existing DFI machinery:
//
//	sources ──ingest flow──▶ switch reduction engine ──flush flow──▶ target
//
// The reduction engine runs on a switch-resident endpoint
// (fabric.Cluster.NewSwitchNode): every sender is limited only by its own
// link, and the engine forwards compact partial aggregates to the target
// at a configurable interval, shrinking the target's ingress traffic from
// O(tuples) to O(groups).
//
// This is an extension beyond the paper's implementation; Table/figure
// reproductions never use it. The ablation experiment and
// BenchmarkSharpCombiner quantify its headline effect.

// SharpOptions configures the in-network combiner.
type SharpOptions struct {
	// Aggregation, GroupCol and ValueCol mirror combiner-flow options.
	Aggregation AggFunc
	GroupCol    int
	ValueCol    int

	// FlushGroups bounds the reduction engine's table; reaching it (or
	// flow end) flushes partial aggregates to the target.
	FlushGroups int

	// SwitchTupleCost models the reduction-engine processing rate per
	// tuple and port (SHARP ASICs reduce at line rate; default 1ns).
	SwitchTupleCost time.Duration

	// Ports is the number of parallel reduction engines (SHARP reduces
	// per ingress port; default: one per source).
	Ports int

	// SegmentsPerRing sizes the underlying flows' rings.
	SegmentsPerRing int
}

// SharpCombiner is an N:1 aggregation whose reduction happens inside the
// switch. Construct with NewSharpCombiner, attach sources with
// SourceOpen on the ingest flow name (IngestFlow), and read results from
// the target with Results after Run completes.
type SharpCombiner struct {
	name   string
	spec   SharpOptions
	sch    *schema.Schema
	engine transport.Endpoint
}

// aggTupleSchema is the flush-flow schema: group key, value, count.
var aggTupleSchema = schema.MustNew(
	schema.Column{Name: "key", Type: schema.Uint64},
	schema.Column{Name: "value", Type: schema.Int64},
	schema.Column{Name: "count", Type: schema.Int64},
)

// NewSharpCombiner initializes the two underlying flows and spawns the
// switch reduction engine. Sources attach to the ingest flow (name
// returned by IngestFlow) exactly like any combiner flow sources.
func NewSharpCombiner(p transport.Ctx, reg Registry, cluster transport.Transport,
	name string, sources []Endpoint, target Endpoint, sch *schema.Schema, opt SharpOptions) (*SharpCombiner, error) {

	if opt.FlushGroups == 0 {
		opt.FlushGroups = 4096
	}
	if opt.SwitchTupleCost == 0 {
		opt.SwitchTupleCost = time.Nanosecond
	}
	if opt.Ports == 0 {
		opt.Ports = len(sources)
	}
	sc := &SharpCombiner{name: name, spec: opt, sch: sch, engine: cluster.SwitchEndpoint()}

	// One reduction engine per ingress port: SHARP reduces in parallel at
	// line rate on every port of the switch.
	engineEPs := make([]Endpoint, opt.Ports)
	for i := range engineEPs {
		engineEPs[i] = Endpoint{Node: sc.engine, Thread: i}
	}
	ingest := FlowSpec{
		Name:    sc.IngestFlow(),
		Sources: sources,
		Targets: engineEPs,
		Schema:  sch,
		Options: Options{
			SegmentsPerRing: opt.SegmentsPerRing,
			ConsumeCost:     opt.SwitchTupleCost, // ASIC-rate ingest
		},
	}
	flush := FlowSpec{
		Name:    sc.flushFlow(),
		Sources: engineEPs,
		Targets: []Endpoint{target},
		Schema:  aggTupleSchema,
		Options: Options{SegmentsPerRing: opt.SegmentsPerRing},
	}
	if err := FlowInit(p, reg, cluster, ingest); err != nil {
		return nil, err
	}
	if err := FlowInit(p, reg, cluster, flush); err != nil {
		return nil, err
	}
	for port := 0; port < opt.Ports; port++ {
		port := port
		cluster.Spawn(p, fmt.Sprintf("sharp-engine-%s-%d", name, port), func(ep transport.Ctx) {
			sc.runEngine(ep, reg, cluster, port)
		})
	}
	return sc, nil
}

// IngestFlow returns the flow name sources must SourceOpen.
func (sc *SharpCombiner) IngestFlow() string { return sc.name + "/ingest" }

func (sc *SharpCombiner) flushFlow() string { return sc.name + "/flush" }

// runEngine is one per-port reduction engine: it consumes its share of
// the ingest flow, reduces tuples at the configured line rate, and
// flushes partial aggregates to the target.
func (sc *SharpCombiner) runEngine(p transport.Ctx, reg Registry, cluster transport.Transport, port int) {
	in, err := TargetOpen(p, reg, sc.IngestFlow(), port)
	if err != nil {
		panic(err)
	}
	out, err := SourceOpen(p, reg, sc.flushFlow(), port)
	if err != nil {
		panic(err)
	}
	groups := make(map[uint64]*aggState, sc.spec.FlushGroups)
	copyData := cluster.CopiesPayload()
	ts := sc.sch.TupleSize()

	flushAll := func() {
		tup := aggTupleSchema.NewTuple()
		for key, g := range groups {
			aggTupleSchema.PutUint64(tup, 0, key)
			aggTupleSchema.PutInt64(tup, 1, g.value)
			aggTupleSchema.PutInt64(tup, 2, g.count)
			if err := out.Push(p, tup); err != nil {
				panic(err)
			}
			delete(groups, key)
		}
	}
	for {
		data, count, ok := in.ConsumeSegment(p)
		if !ok {
			break
		}
		sc.engine.Compute(p, time.Duration(count)*sc.spec.SwitchTupleCost)
		if copyData {
			for i := 0; i < count; i++ {
				tup := schema.Tuple(data[i*ts : (i+1)*ts])
				key := sc.sch.KeyUint64(tup, sc.spec.GroupCol)
				val := sc.sch.Int64(tup, sc.spec.ValueCol)
				g := groups[key]
				if g == nil {
					g = &aggState{key: key}
					groups[key] = g
				}
				g.count++
				switch sc.spec.Aggregation {
				case AggSum, AggCount:
					g.value += val
				case AggMin:
					if !g.init || val < g.value {
						g.value = val
					}
				case AggMax:
					if !g.init || val > g.value {
						g.value = val
					}
				}
				g.init = true
			}
		}
		if len(groups) >= sc.spec.FlushGroups {
			flushAll()
		}
	}
	flushAll()
	out.Close(p)
}

// TargetOpenSharp attaches the final aggregation target: it merges the
// engine's partial aggregates into exact totals.
func (sc *SharpCombiner) TargetOpenSharp(p transport.Ctx, reg Registry) (*SharpTarget, error) {
	t, err := TargetOpen(p, reg, sc.flushFlow(), 0)
	if err != nil {
		return nil, err
	}
	return &SharpTarget{t: t, agg: sc.spec.Aggregation}, nil
}

// SharpTarget merges partial aggregates flushed by the reduction engine.
type SharpTarget struct {
	t      *Target
	agg    AggFunc
	groups map[uint64]*aggState
}

// Run drains the flush flow, merging partials until flow end.
func (st *SharpTarget) Run(p transport.Ctx) {
	st.groups = make(map[uint64]*aggState)
	for {
		tup, ok := st.t.Consume(p)
		if !ok {
			return
		}
		key := aggTupleSchema.Uint64(tup, 0)
		val := aggTupleSchema.Int64(tup, 1)
		cnt := aggTupleSchema.Int64(tup, 2)
		g := st.groups[key]
		if g == nil {
			g = &aggState{key: key}
			st.groups[key] = g
		}
		g.count += cnt
		switch st.agg {
		case AggSum, AggCount:
			g.value += val
		case AggMin:
			if !g.init || val < g.value {
				g.value = val
			}
		case AggMax:
			if !g.init || val > g.value {
				g.value = val
			}
		}
		g.init = true
	}
}

// Results returns the merged aggregates (see CombinerTarget.Results).
func (st *SharpTarget) Results() []AggResult {
	out := make([]AggResult, 0, len(st.groups))
	for _, g := range st.groups {
		v := g.value
		if st.agg == AggCount {
			v = g.count
		}
		out = append(out, AggResult{Key: g.key, Value: v, Count: g.count})
	}
	sortAggResults(out)
	return out
}

// Consumed reports the number of partial-aggregate tuples received — the
// target-ingress traffic the in-network reduction saved is the difference
// to the raw tuple count.
func (st *SharpTarget) Consumed() uint64 { return st.t.Consumed() }
