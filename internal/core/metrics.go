package core

import (
	"strconv"

	"dfi/internal/metrics"
)

// Metrics publication: func-backed collectors reading the endpoints'
// Stats() snapshots. The collectors run on the scraper's goroutine;
// Stats() is race-safe by construction (atomic counters, statsMu around
// slice walks), so a /metrics scrape can run while the flow does. The
// exposed values are the SAME counters the end-of-run Stats() summary
// prints — byte-for-byte agreement between the scrape and the printed
// totals is the package's accuracy contract (cmd/dfiflow's smoke test
// asserts it).

// PublishMetrics registers the source's counters on m under the
// dfi_source_* namespace, labeled by flow and slot.
func (s *Source) PublishMetrics(m *metrics.Registry) {
	lbl := metrics.Labels{"flow": s.spec.Name, "slot": strconv.Itoa(s.idx)}
	counter := func(name, help string, f func(SourceStats) float64) {
		m.RegisterCounterFunc(name, help, lbl, func() float64 { return f(s.Stats()) })
	}
	counter("dfi_source_tuples_pushed_total", "Tuples accepted by Push.",
		func(st SourceStats) float64 { return float64(st.TuplesPushed) })
	counter("dfi_source_segments_written_total", "Ring segments transferred to targets.",
		func(st SourceStats) float64 { return float64(st.SegmentsWritten) })
	counter("dfi_source_payload_bytes_total", "Tuple payload bytes written (excludes footers and protocol messages).",
		func(st SourceStats) float64 { return float64(st.PayloadBytes) })
	counter("dfi_source_stall_seconds_total", "Virtual time blocked waiting for remote ring slots.",
		func(st SourceStats) float64 { return st.StallRemote.Seconds() })
	counter("dfi_source_local_stall_seconds_total", "Virtual time blocked waiting for local segment reuse.",
		func(st SourceStats) float64 { return st.StallLocal.Seconds() })
	counter("dfi_source_footer_probes_total", "Remote footer READ probes issued.",
		func(st SourceStats) float64 { return float64(st.FooterProbes) })
	counter("dfi_source_probe_misses_total", "Footer probes that found the slot still unconsumed.",
		func(st SourceStats) float64 { return float64(st.ProbeMisses) })
	counter("dfi_source_backoff_seconds_total", "Cumulative randomized backoff while polling a full ring.",
		func(st SourceStats) float64 { return st.Backoff.Seconds() })
	counter("dfi_source_retransmits_total", "Segments rewritten by loss recovery.",
		func(st SourceStats) float64 { return float64(st.Retransmits) })
	counter("dfi_source_rerouted_tuples_total", "Tuples re-pushed to surviving targets after an eviction.",
		func(st SourceStats) float64 { return float64(st.Rerouted) })
	counter("dfi_source_moved_tuples_total", "Tuples routed to a live owner because the declared owner was down.",
		func(st SourceStats) float64 { return float64(st.Moved) })
	if s.mc != nil {
		// Multicast-only series, registered only for the multicast
		// transport so ring-flow scrapes stay unchanged.
		counter("dfi_source_mc_retransmits_total", "Multicast segments re-sent on the reliable QPs (NACK answers, gap refills).",
			func(st SourceStats) float64 { return float64(st.McRetransmits) })
		counter("dfi_source_mc_gap_rounds_total", "Gap-agreement rounds arbitrated by this source.",
			func(st SourceStats) float64 { return float64(st.McGapRounds) })
		counter("dfi_source_mc_credit_stalls_total", "Episodes where a target's credit window gated this source.",
			func(st SourceStats) float64 { return float64(st.McCreditStalls) })
	}
}

// PublishMetrics registers the target's counters on m under the
// dfi_target_* namespace, labeled by flow and slot.
func (t *Target) PublishMetrics(m *metrics.Registry) {
	lbl := metrics.Labels{"flow": t.spec.Name, "slot": strconv.Itoa(t.idx)}
	m.RegisterCounterFunc("dfi_target_tuples_consumed_total", "Tuples handed to the application.", lbl,
		func() float64 { return float64(t.Stats().TuplesConsumed) })
	m.RegisterCounterFunc("dfi_target_segments_consumed_total", "Ring segments recycled.", lbl,
		func() float64 { return float64(t.Stats().SegmentsConsumed) })
	m.RegisterGaugeFunc("dfi_target_failed_sources", "Source slots declared failed via SourceTimeout.", lbl,
		func() float64 { return float64(len(t.FailedSources())) })
	m.RegisterGaugeFunc("dfi_target_done", "1 once FLOW_END was reached.", lbl,
		func() float64 {
			if t.Stats().Done {
				return 1
			}
			return 0
		})
	if t.mc != nil {
		m.RegisterCounterFunc("dfi_target_mc_nacks_total", "Retransmission requests sent for multicast sequence gaps.", lbl,
			func() float64 { return float64(t.Stats().McNacksSent) })
		m.RegisterCounterFunc("dfi_target_mc_gaps_skipped_total", "Sequence numbers skipped (agreed unfillable, app-resolved, or heuristic).", lbl,
			func() float64 { return float64(t.Stats().McGapsSkipped) })
	}
}
