package core

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// kiloSchema carries 1 KiB tuples (key + padding), matching the larger
// tuple sizes of the paper's bandwidth experiments.
var kiloSchema = schema.MustNew(
	schema.Column{Name: "key", Type: schema.Int64},
	schema.Column{Name: "pad", Type: schema.Char(1016)},
)

// runReplicate drives a replicate flow with perSource tuples per source and
// returns, per target, the ordered list of (key) values consumed.
func runReplicate(t *testing.T, e *env, spec FlowSpec, perSource int) [][]int64 {
	t.Helper()
	orders := make([][]int64, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := range spec.Sources {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Error(err)
					return
				}
			}
			src.Close(p)
		})
	}
	for ti := range spec.Targets {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
			}
		})
	}
	e.run(t)
	return orders
}

func TestReplicateNaiveDeliversToAllTargets(t *testing.T) {
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "rep-naive",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
	}
	const n = 2000
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: %d", ti, i, k)
			}
		}
	}
}

func TestReplicateNaiveLatencyMode(t *testing.T) {
	e := newEnv(t, 3)
	spec := FlowSpec{
		Name:    "rep-lat",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{Optimization: OptimizeLatency},
	}
	const n = 200
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
	}
}

func TestReplicateMulticastNoLoss(t *testing.T) {
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "rep-mc",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true},
	}
	const n = 3000
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: got %d", ti, i, k)
			}
		}
	}
}

func TestReplicateMulticastWithLossRecovers(t *testing.T) {
	// 2% injected multicast loss: NACK-based retransmission must still
	// deliver every segment to every target, in per-source order.
	e := newEnv(t, 3, func(c *fabric.Config) { c.MulticastLoss = 0.02 })
	spec := FlowSpec{
		Name:    "rep-lossy",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, SegmentSize: 64, GapTimeout: 10 * time.Microsecond},
	}
	const n = 2000
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: got %d", ti, i, k)
			}
		}
	}
}

func TestReplicateMulticastMultiSource(t *testing.T) {
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "rep-ns",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true},
	}
	const n = 1000
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != 2*n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), 2*n)
		}
		seen := make(map[int64]bool, len(ord))
		for _, k := range ord {
			if seen[k] {
				t.Fatalf("target %d: duplicate key %d", ti, k)
			}
			seen[k] = true
		}
	}
}

func TestOrderedReplicateGlobalOrderAcrossSources(t *testing.T) {
	// Two sources, ordered multicast: every target must observe the SAME
	// global order (the OUM guarantee, paper §5.4 / Figure 6).
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "rep-ord",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, GlobalOrdering: true, SegmentSize: 16},
	}
	const n = 500
	orders := runReplicate(t, e, spec, n)
	if len(orders[0]) != 2*n {
		t.Fatalf("target 0 got %d tuples, want %d", len(orders[0]), 2*n)
	}
	if len(orders[0]) != len(orders[1]) {
		t.Fatalf("targets disagree on count: %d vs %d", len(orders[0]), len(orders[1]))
	}
	for i := range orders[0] {
		if orders[0][i] != orders[1][i] {
			t.Fatalf("global order diverges at %d: %d vs %d", i, orders[0][i], orders[1][i])
		}
	}
}

func TestOrderedReplicateWithLossRecovers(t *testing.T) {
	e := newEnv(t, 3, func(c *fabric.Config) { c.MulticastLoss = 0.03 })
	spec := FlowSpec{
		Name:    "ord-lossy",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, GlobalOrdering: true, SegmentSize: 16, GapTimeout: 10 * time.Microsecond},
	}
	const n = 800
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d, want %d", ti, len(ord), n)
		}
	}
	for i := range orders[0] {
		if orders[0][i] != orders[1][i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

func TestOrderedReplicateGapNotification(t *testing.T) {
	// With NotifyGaps, a lost segment surfaces as a Gap instead of being
	// retransparently retransmitted; ResolveGap skips it (NOPaxos-style).
	e := newEnv(t, 2, func(c *fabric.Config) { c.MulticastLoss = 0.05 })
	spec := FlowSpec{
		Name:    "gap-notify",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{
			Multicast: true, GlobalOrdering: true, NotifyGaps: true,
			SegmentSize: 16, GapTimeout: 10 * time.Microsecond,
		},
	}
	const n = 600
	var got, gaps int
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "gap-notify", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "gap-notify", 0)
		for {
			_, ok := tgt.Consume(p)
			if ok {
				got++
				continue
			}
			if g, isGap := tgt.PendingGap(); isGap {
				gaps++
				_ = g
				tgt.ResolveGap(p) // gap agreement: skip as no-op
				continue
			}
			return
		}
	})
	e.run(t)
	if gaps == 0 {
		t.Fatal("expected at least one surfaced gap at 5% loss")
	}
	if got+gaps < n {
		t.Fatalf("tuples %d + gaps %d < pushed %d", got, gaps, n)
	}
}

func TestReplicateMulticastAggregateBandwidthExceedsSenderLink(t *testing.T) {
	// Figure 8b's headline: with switch multicast, aggregate receiver
	// bandwidth beats the sender's link speed.
	e := newEnv(t, 9)
	targets := make([]Endpoint, 8)
	for i := range targets {
		targets[i] = Endpoint{Node: e.c.Node(i + 1)}
	}
	spec := FlowSpec{
		Name:    "rep-bw",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: targets,
		Schema:  kiloSchema,
		Options: Options{Multicast: true},
	}
	const n = 20000
	var finish sim.Time
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "rep-bw", 0)
		tup := make([]byte, kiloSchema.TupleSize())
		for i := 0; i < n; i++ {
			kiloSchema.PutInt64(tup, 0, int64(i))
			_ = src.Push(p, tup)
		}
		src.Close(p)
	})
	for ti := 0; ti < 8; ti++ {
		ti := ti
		e.k.Spawn("tgt", func(p *sim.Proc) {
			tgt, _ := TargetOpen(p, e.reg, "rep-bw", ti)
			for {
				if _, _, ok := tgt.ConsumeSegment(p); !ok {
					break
				}
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	e.run(t)
	bytes := float64(n * kiloSchema.TupleSize() * 8) // delivered to 8 targets
	agg := bytes / finish.Seconds()
	if agg < 2*e.c.Config().LinkBandwidth {
		t.Fatalf("aggregate receive bandwidth %.3e ≤ 2× link speed %.3e", agg, e.c.Config().LinkBandwidth)
	}
}

func TestCombinerFlowAggregations(t *testing.T) {
	for _, agg := range []AggFunc{AggSum, AggCount, AggMin, AggMax} {
		agg := agg
		t.Run(agg.String(), func(t *testing.T) {
			e := newEnv(t, 3)
			spec := FlowSpec{
				Name:    "comb-" + agg.String(),
				Type:    CombinerFlow,
				Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
				Targets: []Endpoint{{Node: e.c.Node(2)}},
				Schema:  kvSchema,
				Options: Options{Aggregation: agg, GroupCol: 0, ValueCol: 1},
			}
			const n = 900
			const groups = 10
			var results []AggResult
			e.k.Spawn("init", func(p *sim.Proc) {
				if err := FlowInit(p, e.reg, e.c, spec); err != nil {
					t.Error(err)
				}
			})
			for si := 0; si < 2; si++ {
				si := si
				e.k.Spawn("src", func(p *sim.Proc) {
					src, _ := SourceOpen(p, e.reg, spec.Name, si)
					for i := 0; i < n; i++ {
						key := int64(i % groups)
						val := int64(si*n + i)
						_ = src.Push(p, mkTuple(key, val))
					}
					src.Close(p)
				})
			}
			e.k.Spawn("tgt", func(p *sim.Proc) {
				ct, err := CombinerTargetOpen(p, e.reg, spec.Name, 0)
				if err != nil {
					t.Error(err)
					return
				}
				ct.Run(p)
				results = ct.Results()
			})
			e.run(t)
			if len(results) != groups {
				t.Fatalf("%d groups, want %d", len(results), groups)
			}
			// Recompute expectations directly.
			want := make(map[uint64]*aggState)
			for si := 0; si < 2; si++ {
				for i := 0; i < n; i++ {
					key := uint64(i % groups)
					val := int64(si*n + i)
					g := want[key]
					if g == nil {
						g = &aggState{}
						want[key] = g
					}
					g.count++
					switch agg {
					case AggSum, AggCount:
						g.value += val
					case AggMin:
						if !g.init || val < g.value {
							g.value = val
						}
					case AggMax:
						if !g.init || val > g.value {
							g.value = val
						}
					}
					g.init = true
				}
			}
			for _, r := range results {
				w := want[r.Key]
				wantVal := w.value
				if agg == AggCount {
					wantVal = w.count
				}
				if r.Value != wantVal || r.Count != w.count {
					t.Fatalf("group %d: got (%d,%d), want (%d,%d)", r.Key, r.Value, r.Count, wantVal, w.count)
				}
			}
		})
	}
}

func TestCombinerTargetOpenRejectsOtherFlowTypes(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "not-comb",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("p", func(p *sim.Proc) {
		_ = FlowInit(p, e.reg, e.c, spec)
		if _, err := CombinerTargetOpen(p, e.reg, "not-comb", 0); err == nil {
			t.Error("CombinerTargetOpen accepted a shuffle flow")
		}
	})
	// The shuffle targetInfo was never published; no sources wait on it.
	e.run(t)
}

func TestMemoryConsumptionMatchesPaperAccounting(t *testing.T) {
	// Paper §6.1.4: with 4 source and 4 target threads per node on 2 nodes
	// (8 sources, 8 targets total), default rings (32 × 8 KiB, source and
	// target side) consume ≈ 16 MiB per node.
	e := newEnv(t, 2)
	var sources, targets []Endpoint
	for n := 0; n < 2; n++ {
		for th := 0; th < 4; th++ {
			sources = append(sources, Endpoint{Node: e.c.Node(n), Thread: th})
			targets = append(targets, Endpoint{Node: e.c.Node(n), Thread: th})
		}
	}
	spec := FlowSpec{Name: "mem", Sources: sources, Targets: targets, Schema: kvSchema}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	for ti := range targets {
		ti := ti
		e.k.Spawn("tgt", func(p *sim.Proc) {
			tgt, _ := TargetOpen(p, e.reg, "mem", ti)
			for {
				if _, ok := tgt.Consume(p); !ok {
					return
				}
			}
		})
	}
	var perNode [2]int64
	opened := sim.NewBarrier(e.k, len(sources))
	for si := range sources {
		si := si
		e.k.Spawn("src", func(p *sim.Proc) {
			src, _ := SourceOpen(p, e.reg, "mem", si)
			opened.Await(p) // measure only once every source has allocated
			if si == 0 {
				perNode[0] = e.c.Node(0).RegisteredBytes()
				perNode[1] = e.c.Node(1).RegisteredBytes()
			}
			src.Close(p)
		})
	}
	e.run(t)
	// 8 targets × 8 rings + 8 sources × 8 rings per node side...
	// Accounting: each node hosts 4 targets × 8 source-rings (target side)
	// and 4 sources × 8 target-rings (source side) = 64 rings of
	// ≈ 32 × 8 KiB. Expect ≈ 16 MiB within 10% (headers/footers add a bit).
	want := float64(16 << 20)
	for n := 0; n < 2; n++ {
		got := float64(perNode[n])
		if got < 0.9*want || got > 1.15*want {
			t.Fatalf("node %d registered %0.1f MiB, want ≈ 16 MiB", n, got/(1<<20))
		}
	}
}

func TestOrderedReplicateMultiSourceWithLoss(t *testing.T) {
	// Regression: when one source's segments are exhausted while another
	// source still has undelivered (or lost) segments, global progress
	// must not jump ahead and silently drop them.
	e := newEnv(t, 4, func(c *fabric.Config) { c.MulticastLoss = 0.04 })
	spec := FlowSpec{
		Name:    "ord-multi-loss",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, GlobalOrdering: true, SegmentSize: 16, GapTimeout: 10 * time.Microsecond},
	}
	const n = 400
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != 2*n {
			t.Fatalf("target %d got %d tuples, want %d (lost segments dropped?)", ti, len(ord), 2*n)
		}
	}
	for i := range orders[0] {
		if orders[0][i] != orders[1][i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}
