package core

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/sim"
)

func TestSourceFailureDetection(t *testing.T) {
	// One of three sources crashes (stops pushing without Close). With
	// SourceTimeout the target declares it failed, reports the slot, and
	// the flow still terminates with the healthy sources' data intact.
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "failing",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Targets: []Endpoint{{Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{SourceTimeout: 300 * time.Microsecond},
	}
	const perSource = 2000
	got := make(map[int64]bool)
	var failed []int
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 3; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, "failing", si)
			if err != nil {
				t.Error(err)
				return
			}
			n := perSource
			if si == 1 {
				n = perSource / 4 // crashes a quarter of the way in
			}
			for i := 0; i < n; i++ {
				if err := src.Push(p, mkTuple(int64(si*perSource+i), 0)); err != nil {
					t.Error(err)
					return
				}
			}
			if si == 1 {
				src.Flush(p)
				return // crash: no Close, no end marker
			}
			src.Close(p)
		})
	}
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, "failing", 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				failed = tgt.FailedSources()
				return
			}
			got[kvSchema.Int64(tup, 0)] = true
		}
	})
	e.run(t)
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed sources = %v, want [1]", failed)
	}
	// Healthy sources delivered fully; the crashed one delivered the
	// flushed prefix.
	want := 2*perSource + perSource/4
	if len(got) != want {
		t.Fatalf("delivered %d tuples, want %d", len(got), want)
	}
}

func TestNoFalseFailuresWithSlowButLiveSources(t *testing.T) {
	// A source that pushes slowly but within the timeout must not be
	// declared failed.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "slow-live",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{SourceTimeout: 500 * time.Microsecond},
	}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "slow-live", 0)
		for i := 0; i < 10; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
			src.Flush(p)
			p.Sleep(200 * time.Microsecond) // slow, but under the timeout
		}
		src.Close(p)
	})
	var failed []int
	count := 0
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "slow-live", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				failed = tgt.FailedSources()
				return
			}
			count++
		}
	})
	e.run(t)
	if len(failed) != 0 {
		t.Fatalf("live source declared failed: %v", failed)
	}
	if count != 10 {
		t.Fatalf("delivered %d of 10", count)
	}
}
