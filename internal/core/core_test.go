package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

var kvSchema = schema.MustNew(
	schema.Column{Name: "key", Type: schema.Int64},
	schema.Column{Name: "value", Type: schema.Int64},
)

type env struct {
	k   *sim.Kernel
	c   *fabric.Cluster
	reg *registry.Registry
}

// newTestRegistry builds a registry for property tests that construct
// their own kernels.
func newTestRegistry(k *sim.Kernel) *registry.Registry { return registry.New(k) }

// testSeed returns the kernel seed for the suite. DFI_CHAOS_SEED
// overrides the default so `make chaos` can sweep a seed matrix over the
// fault-injection tests without recompiling.
func testSeed() int64 {
	if s := os.Getenv("DFI_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 11
}

func newEnv(t *testing.T, nodes int, mut ...func(*fabric.Config)) *env {
	t.Helper()
	k := sim.New(testSeed())
	k.Deadline = 30 * time.Second
	k.MaxEvents = 50_000_000
	cfg := fabric.DefaultConfig()
	for _, m := range mut {
		m(&cfg)
	}
	return &env{k: k, c: fabric.NewCluster(k, nodes, cfg), reg: registry.New(k)}
}

func (e *env) run(t *testing.T) {
	t.Helper()
	if err := e.k.Run(); err != nil {
		t.Fatal(err)
	}
}

// mkTuple builds a key/value tuple.
func mkTuple(key, value int64) schema.Tuple {
	tp := kvSchema.NewTuple()
	kvSchema.PutInt64(tp, 0, key)
	kvSchema.PutInt64(tp, 1, value)
	return tp
}

// runShuffle pushes n tuples (key=i, value=2i) from each source and
// returns, per target, the consumed (key → value) pairs.
func runShuffle(t *testing.T, e *env, spec FlowSpec, perSource int) []map[int64]int64 {
	t.Helper()
	results := make([]map[int64]int64, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := range spec.Sources {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Error(err)
					return
				}
			}
			src.Close(p)
		})
	}
	for ti := range spec.Targets {
		ti := ti
		results[ti] = make(map[int64]int64)
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				k := kvSchema.Int64(tup, 0)
				if _, dup := results[ti][k]; dup {
					t.Errorf("target %d: duplicate key %d", ti, k)
				}
				results[ti][k] = kvSchema.Int64(tup, 1)
			}
		})
	}
	e.run(t)
	return results
}

func checkAllDelivered(t *testing.T, results []map[int64]int64, total int64) {
	t.Helper()
	seen := make(map[int64]bool)
	for ti, m := range results {
		for k, v := range m {
			if v != 2*k {
				t.Errorf("target %d: key %d has value %d, want %d", ti, k, v, 2*k)
			}
			if seen[k] {
				t.Errorf("key %d delivered to multiple targets", k)
			}
			seen[k] = true
		}
	}
	if int64(len(seen)) != total {
		t.Fatalf("delivered %d distinct keys, want %d", len(seen), total)
	}
}

func TestShuffleOneToOne(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "s11",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	const n = 5000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, n)
}

func TestShuffleKeyPartitioning(t *testing.T) {
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:       "part",
		Sources:    []Endpoint{{Node: e.c.Node(0)}},
		Targets:    []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:     kvSchema,
		ShuffleKey: 0,
	}
	const n = 3000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, n)
	// Each key must live on the target its hash selects.
	for ti, m := range res {
		for k := range m {
			want := int(schema.Hash(uint64(k)) % 3)
			if ti != want {
				t.Fatalf("key %d on target %d, want %d", k, ti, want)
			}
		}
		if len(m) < n/6 {
			t.Errorf("target %d unbalanced: %d tuples", ti, len(m))
		}
	}
}

func TestShuffleManyToMany(t *testing.T) {
	e := newEnv(t, 4)
	spec := FlowSpec{
		Name:    "nm",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
	}
	const n = 2000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, 2*n)
}

func TestShuffleSameNodeSourcesAndTargets(t *testing.T) {
	// All endpoints on two nodes, multiple threads each (N:M on few nodes).
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name: "local",
		Sources: []Endpoint{
			{Node: e.c.Node(0), Thread: 0}, {Node: e.c.Node(0), Thread: 1},
		},
		Targets: []Endpoint{
			{Node: e.c.Node(1), Thread: 0}, {Node: e.c.Node(1), Thread: 1},
		},
		Schema: kvSchema,
	}
	const n = 1500
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, 2*n)
}

func TestCustomRoutingFunction(t *testing.T) {
	e := newEnv(t, 3)
	spec := FlowSpec{
		Name:       "routed",
		Sources:    []Endpoint{{Node: e.c.Node(0)}},
		Targets:    []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:     kvSchema,
		ShuffleKey: -1,
		Routing: func(tup schema.Tuple) int {
			return int(kvSchema.Int64(tup, 0) % 2) // range-style partitioning
		},
	}
	const n = 1000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, n)
	for ti, m := range res {
		for k := range m {
			if int(k%2) != ti {
				t.Fatalf("key %d routed to %d", k, ti)
			}
		}
	}
}

func TestPushToExplicitTarget(t *testing.T) {
	e := newEnv(t, 3)
	spec := FlowSpec{
		Name:    "direct",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
	}
	counts := make([]int, 2)
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, "direct", 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 100; i++ {
			if err := src.PushTo(p, mkTuple(int64(i), 0), 1); err != nil {
				t.Error(err)
			}
		}
		if err := src.PushTo(p, mkTuple(0, 0), 5); err == nil {
			t.Error("out-of-range PushTo accepted")
		}
		src.Close(p)
	})
	for ti := 0; ti < 2; ti++ {
		ti := ti
		e.k.Spawn("tgt", func(p *sim.Proc) {
			tgt, _ := TargetOpen(p, e.reg, "direct", ti)
			for {
				if _, ok := tgt.Consume(p); !ok {
					return
				}
				counts[ti]++
			}
		})
	}
	e.run(t)
	if counts[0] != 0 || counts[1] != 100 {
		t.Fatalf("counts = %v, want [0 100]", counts)
	}
}

func TestLatencyOptimizedFlow(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "lat",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{Optimization: OptimizeLatency},
	}
	const n = 500 // several credit-refresh rounds (ring = 32)
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, n)
}

func TestLatencyFlowDeliversWithinMicroseconds(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "lat1",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{Optimization: OptimizeLatency},
	}
	var pushAt, gotAt sim.Time
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "lat1", 0)
		pushAt = p.Now()
		_ = src.Push(p, mkTuple(1, 1))
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "lat1", 0)
		if _, ok := tgt.Consume(p); ok {
			gotAt = p.Now()
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
		}
	})
	e.run(t)
	d := gotAt - pushAt
	if d <= 0 || d > 5*time.Microsecond {
		t.Fatalf("one-way latency = %v, want (0, 5µs]", d)
	}
}

func TestSlowConsumerBackpressureNoLoss(t *testing.T) {
	// Small rings + a consumer that sleeps per segment force ring-full
	// paths, footer-read retries and backoff. No tuple may be lost.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "slow",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{SegmentsPerRing: 4, SourceSegments: 2, SegmentSize: 64},
	}
	const n = 800
	got := make(map[int64]bool)
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "slow", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), int64(2*i)))
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "slow", 0)
		i := 0
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				return
			}
			got[kvSchema.Int64(tup, 0)] = true
			i++
			if i%4 == 0 {
				p.Sleep(3 * time.Microsecond) // straggling consumer
			}
		}
	})
	e.run(t)
	if len(got) != n {
		t.Fatalf("consumed %d unique tuples, want %d", len(got), n)
	}
}

func TestFlushMakesPartialSegmentsVisible(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "flush",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	var consumedAt, closedAt sim.Time
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "flush", 0)
		_ = src.Push(p, mkTuple(1, 2)) // far below segment size
		src.Flush(p)
		p.Sleep(time.Millisecond) // close much later
		closedAt = p.Now()
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "flush", 0)
		if _, ok := tgt.Consume(p); ok {
			consumedAt = p.Now()
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
		}
	})
	e.run(t)
	if consumedAt == 0 || consumedAt >= closedAt {
		t.Fatalf("flushed tuple consumed at %v, source closed at %v — flush did not make it visible early", consumedAt, closedAt)
	}
}

func TestSourceValidation(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "valid",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "valid", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		if _, err := SourceOpen(p, e.reg, "valid", 3); err == nil {
			t.Error("out-of-range source index accepted")
		}
		src, err := SourceOpen(p, e.reg, "valid", 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := src.Push(p, make(schema.Tuple, 3)); err == nil {
			t.Error("wrong-size tuple accepted")
		}
		src.Close(p)
		if err := src.Push(p, mkTuple(1, 1)); err == nil {
			t.Error("push after close accepted")
		}
	})
	e.run(t)
}

func TestFlowInitValidation(t *testing.T) {
	e := newEnv(t, 2)
	n0, n1 := e.c.Node(0), e.c.Node(1)
	cases := []FlowSpec{
		{Name: "", Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}, Schema: kvSchema},
		{Name: "x", Targets: []Endpoint{{Node: n1}}, Schema: kvSchema},
		{Name: "x", Sources: []Endpoint{{Node: n0}}, Schema: kvSchema},
		{Name: "x", Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}},
		{Name: "x", Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}, Schema: kvSchema, ShuffleKey: 9},
		{Name: "x", Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}, Schema: kvSchema,
			Options: Options{SegmentSize: 4}},
		{Name: "x", Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}, Schema: kvSchema,
			Options: Options{Multicast: true}}, // multicast on shuffle flow
		{Name: "x", Type: ReplicateFlow, Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}}, Schema: kvSchema,
			Options: Options{GlobalOrdering: true}}, // ordering without multicast
		{Name: "x", Type: CombinerFlow, Sources: []Endpoint{{Node: n0}}, Targets: []Endpoint{{Node: n1}, {Node: n0}}, Schema: kvSchema},
	}
	e.k.Spawn("p", func(p *sim.Proc) {
		for i, spec := range cases {
			if err := FlowInit(p, e.reg, e.c, spec); err == nil {
				t.Errorf("case %d: invalid spec accepted", i)
			}
		}
	})
	e.run(t)
}

func TestDuplicateFlowNameRejected(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "dup",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	e.k.Spawn("p", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
		if err := FlowInit(p, e.reg, e.c, spec); err == nil {
			t.Error("duplicate flow name accepted")
		}
		e.reg.Remove(p, "dup")
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Errorf("re-init after Remove failed: %v", err)
		}
	})
	e.run(t)
}
