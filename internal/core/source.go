package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dfi/internal/core/partition"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
)

// chargeBatch is how many per-tuple CPU costs are accumulated before being
// charged to the virtual clock in one Compute call. Batching keeps the
// event count independent of tuple count without changing total cost.
const chargeBatch = 128

// Source is a thread-level entry point into a flow (paper Figure 1). A
// Source is owned by exactly one simulated process; Push is asynchronous
// and returns once the tuple is copied into the internal send buffer,
// which is what enables compute/communication overlap.
type Source struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node transport.Endpoint
	reg  Registry

	// writers holds one ring writer per target. An entry is nil only
	// when its target was already evicted from the flow membership at
	// open time; such slots are routed around from the start. winc is
	// the target incarnation each writer connected under: a bump means
	// the target rejoined with fresh rings and the writer must be
	// harvested and replaced (see lifecycle.go). retired keeps replaced
	// writers alive until Free — harvested tuples view their local
	// rings.
	writers []*ringWriter
	winc    []uint64
	retired []*ringWriter
	mc      *mcSource  // multicast replicate transport, if enabled
	mux     *muxSource // shared-ring transport (Options.SharedRings), if enabled

	// statsMu guards the writers/retired slice headers against a
	// concurrent scraper walking Stats()/Stalls()/ProbeStats() while the
	// simulation appends (connectAll) or swaps (reconnectRejoined)
	// entries. It is only held around the non-blocking slice mutations
	// and the stats walks — never across a simulation park, which would
	// deadlock the baton-passing scheduler.
	statsMu sync.Mutex

	// Control-plane membership (see lifecycle.go). mem is the flow's
	// epoch-versioned record (the multicast transport keeps its own copy
	// on mcSource); epoch is the last value folded in; view is the
	// partitioner joined with that epoch's liveness — the survivor
	// routing state.
	mem   *registry.Membership
	epoch uint64
	view  *partition.View

	// Scrape-visible counters (atomic so a metrics endpoint can read
	// them mid-run).
	rerouted  atomic.Uint64
	moved     atomic.Uint64
	pushed    atomic.Uint64
	watermark atomic.Uint64

	pendingCharge int
	closed        bool

	// Reusable scratch for PushBatch's vectorized route pass.
	routeScratch []int32
	keyScratch   []uint64
}

// SourceOpen attaches to source slot sourceIdx of the named flow,
// retrieving the flow metadata from the registry and connecting to every
// target's ring buffers. It blocks until the flow and all targets are
// available.
func SourceOpen(p transport.Ctx, reg Registry, name string, sourceIdx int) (*Source, error) {
	meta := lookupFlow(p, reg, name)
	spec := &meta.spec
	if sourceIdx < 0 || sourceIdx >= len(spec.Sources) {
		return nil, fmt.Errorf("dfi: source index %d out of range for flow %q", sourceIdx, name)
	}
	s := &Source{meta: meta, spec: spec, idx: sourceIdx, node: spec.Sources[sourceIdx].Node, reg: reg}
	if spec.Options.Multicast {
		mc, err := newMcSource(p, reg, meta, sourceIdx)
		if err != nil {
			return nil, err
		}
		s.mc = mc
		if err := s.acquireSourceLease(p, reg, name); err != nil {
			return nil, err
		}
		return s, nil
	}
	if spec.Options.SharedRings {
		mux, err := newMuxSource(p, reg, meta, s)
		if err != nil {
			return nil, err
		}
		s.mux = mux
		if err := s.acquireSourceLease(p, reg, name); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := s.acquireSourceLease(p, reg, name); err != nil {
		return nil, err
	}
	return s, s.connectAll(p, name)
}

// connectAll connects one writer per target ring and initializes the
// membership view — the shared tail of SourceOpen, AttachSource, and
// Reattach.
func (s *Source) connectAll(p transport.Ctx, name string) error {
	s.mem = s.reg.MembershipOf(name)
	for t := range s.spec.Targets {
		inc := s.targetInc(t)
		info, evicted := s.reg.WaitTargetLive(p, name, t)
		if evicted {
			s.appendWriter(nil, s.targetInc(t))
			continue
		}
		s.appendWriter(s.connectWriter(info.(*targetInfo), t, inc), inc)
	}
	return s.initMembership(name)
}

// appendWriter grows the writer set under statsMu (WaitTargetLive above
// blocks, so the lock cannot wrap the whole connect loop).
func (s *Source) appendWriter(w *ringWriter, inc uint64) {
	s.statsMu.Lock()
	s.writers = append(s.writers, w)
	s.winc = append(s.winc, inc)
	s.statsMu.Unlock()
}

// targetInc reads a target slot's current incarnation from the
// membership record (0 without one).
func (s *Source) targetInc(i int) uint64 {
	if s.mem == nil {
		return 0
	}
	return s.mem.Incarnation(registry.RoleTarget, i)
}

// connectWriter builds the ring writer for target slot i under
// incarnation inc. The eviction probe also fires on an incarnation
// bump: a writer connected to a rejoined target's *previous* rings can
// never be drained and must be harvested like one whose target died.
func (s *Source) connectWriter(ti *targetInfo, i int, inc uint64) *ringWriter {
	w := newRingWriter(s.meta.cluster, s.node, ti, ti.ringOffs[s.idx], &s.spec.Options)
	w.evicted = func() bool {
		return s.mem != nil && (s.mem.TargetEvicted(i) || s.mem.Incarnation(registry.RoleTarget, i) != inc)
	}
	if sink := s.reg.EventSink(); sink != nil {
		w.events = sink
		w.evNode = fmt.Sprintf("node%d", s.node.ID())
		w.evFlow = s.spec.Name
		w.evSlot = i
		if s.mem != nil {
			w.evEpoch = s.mem.Epoch
		}
	}
	return w
}

// Schema returns the flow's tuple schema.
func (s *Source) Schema() *schema.Schema { return s.spec.Schema }

// Targets returns the number of flow targets.
func (s *Source) Targets() int { return len(s.spec.Targets) }

// chargePush accounts one tuple's CPU cost, batched for simulation
// efficiency in bandwidth mode.
func (s *Source) chargePush(p transport.Ctx) {
	s.chargePushN(p, 1)
}

// settleCharge flushes any accumulated per-tuple CPU cost.
func (s *Source) settleCharge(p transport.Ctx) {
	if s.pendingCharge > 0 {
		s.node.Compute(p, time.Duration(s.pendingCharge)*s.spec.Options.PushCost)
		s.pendingCharge = 0
	}
}

// Push routes one tuple into the flow. For shuffle and combiner flows the
// route comes from the shuffle key hash or the flow's RoutingFunc; for
// replicate flows the tuple goes to every target. Push is non-blocking
// except for flow control (a saturated ring or exhausted credit).
func (s *Source) Push(p transport.Ctx, t schema.Tuple) error {
	if s.closed {
		return fmt.Errorf("dfi: push on closed source of flow %q", s.spec.Name)
	}
	if len(t) != s.spec.Schema.TupleSize() {
		return fmt.Errorf("dfi: tuple size %d does not match schema size %d", len(t), s.spec.Schema.TupleSize())
	}
	s.pushed.Add(1)
	s.chargePush(p)
	switch s.spec.FlowType() {
	case ReplicateFlow:
		if s.mc != nil {
			return s.mc.push(p, t)
		}
		if s.mux != nil {
			return s.mux.pushReplicate(p, t)
		}
		return s.pushReplicate(p, t)
	default:
		if s.spec.Routing == nil && s.spec.ShuffleKey < 0 {
			// normalize allows this configuration for PushTo-only flows;
			// letting it reach routeIndex would panic on column -1.
			return fmt.Errorf("dfi: flow %q declares no routing (ShuffleKey -1 and no RoutingFunc); use PushTo", s.spec.Name)
		}
		return s.PushTo(p, t, routeIndex(s.spec, t))
	}
}

// pushReplicate copies one tuple to every live ring-replicate leg —
// liveness comes from the same partitioner view the routed flows use. A
// leg whose target gets evicted mid-push is dropped: the survivors
// carry their own complete copies, and the dead writer's buffered
// window is discarded by syncEpoch rather than drained.
func (s *Source) pushReplicate(p transport.Ctx, t schema.Tuple) error {
	if err := s.syncEpoch(p); err != nil {
		return err
	}
	for i, w := range s.writers {
		if w == nil || w.dead || !s.view.Live(i) {
			continue
		}
		err := s.pushWriter(p, w, t)
		if errors.Is(err, errEvicted) {
			if err := s.syncEpoch(p); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// PushTo sends one tuple directly to the target with the given index,
// bypassing key routing (paper §4.2.1, routing option 3). When the named
// target has been evicted from the flow membership the tuple is remapped
// onto a survivor (see lifecycle.go).
func (s *Source) PushTo(p transport.Ctx, t schema.Tuple, target int) error {
	if s.mux != nil {
		return s.mux.pushTo(p, t, target)
	}
	if target < 0 || target >= len(s.writers) {
		return fmt.Errorf("dfi: target %d out of range (%d targets)", target, len(s.writers))
	}
	if s.mem == nil {
		return s.pushWriter(p, s.writers[target], t)
	}
	for {
		if err := s.syncEpoch(p); err != nil {
			return err
		}
		slot := s.remap(t, target)
		err := s.pushWriter(p, s.writers[slot], t)
		if !errors.Is(err, errEvicted) {
			if err == nil && slot != target {
				// The declared owner is down: the tuple landed on the live
				// owner instead. Moved counts this steady-state rebalance
				// traffic; Rerouted counts harvested re-pushes.
				s.moved.Add(1)
			}
			return err
		}
		// The routed target died mid-push (the tuple was not appended):
		// fold the eviction in and re-route.
	}
}

func (s *Source) pushWriter(p transport.Ctx, w *ringWriter, t schema.Tuple) error {
	if s.spec.Options.Optimization == OptimizeLatency {
		return w.pushImmediate(p, t)
	}
	return w.push(p, t)
}

// Flush pushes out all partially filled segments (bandwidth mode). Tuples
// already pushed become consumable at their targets even if segments were
// not full. A non-nil error (ErrFlowBroken) means a target became
// unreachable and bounded recovery gave up.
func (s *Source) Flush(p transport.Ctx) error {
	s.settleCharge(p)
	if s.mc != nil {
		return s.mc.flush(p)
	}
	if s.mux != nil {
		return s.mux.flush(p)
	}
	for {
		if err := s.syncEpoch(p); err != nil {
			return err
		}
		again := false
		for _, w := range s.writers {
			if w == nil || w.dead {
				continue
			}
			err := w.flush(p, false)
			if errors.Is(err, errEvicted) {
				again = true
				break
			}
			if err != nil {
				return err
			}
		}
		if !again {
			return nil
		}
	}
}

// Close flushes remaining tuples and propagates the end-of-flow marker to
// every target. Targets return flow-end from Consume once every source has
// closed. With Options.RetransmitTimeout set, a nil return additionally
// certifies that every target consumed the full stream; ErrFlowBroken
// reports an unreachable or stuck target.
func (s *Source) Close(p transport.Ctx) error {
	if s.closed {
		return nil
	}
	s.settleCharge(p)
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.mc != nil {
		record(s.mc.close(p))
		s.closed = true
		return firstErr
	}
	if s.mux != nil {
		record(s.mux.close(p))
		s.closed = true
		return firstErr
	}
	if s.mem == nil || (s.epoch == 0 && s.mem.Epoch() == 0 && s.spec.Options.LeaseTTL == 0) {
		// Quiescent control plane: the original per-writer close order,
		// kept so flows without leases or evictions time exactly as
		// before. An administrative eviction racing this close drops to
		// the phased path below.
		evictedMid := false
		for _, w := range s.writers {
			err := w.close(p)
			if errors.Is(err, errEvicted) {
				evictedMid = true
				break
			}
			// Close every writer even after an error: surviving targets
			// still deserve their end-of-flow marker.
			record(err)
		}
		if !evictedMid {
			s.closed = true
			return firstErr
		}
	}
	// Phased close under a live membership. Phase 1 drains and confirms
	// every live writer, folding in evictions (and re-routing their
	// harvest) until a round completes with the membership unchanged —
	// only then is no tuple left that an eviction could strand.
	maxRounds := len(s.writers) + 2
	for round := 0; ; round++ {
		if err := s.syncEpoch(p); err != nil {
			record(err)
			s.closed = true
			return firstErr
		}
		again := false
		for _, w := range s.writers {
			if w == nil || w.dead || w.closed {
				continue
			}
			err := w.finish(p)
			if errors.Is(err, errEvicted) {
				again = true
				break
			}
			if err != nil {
				// This leg is broken beyond recovery; do not stall on it
				// again in phase 2.
				record(err)
				w.dead = true
			}
		}
		if !again {
			break
		}
		if round >= maxRounds {
			record(fmt.Errorf("%w: close did not stabilize after %d membership changes", ErrFlowBroken, round))
			break
		}
	}
	// Phase 2: the end-of-flow markers.
	for round := 0; ; round++ {
		if err := s.syncEpoch(p); err != nil {
			record(err)
			break
		}
		again := false
		for _, w := range s.writers {
			if w == nil || w.dead || w.closed {
				continue
			}
			err := w.end(p)
			if errors.Is(err, errEvicted) {
				again = true // fold in on the next round; nothing to drain here
				continue
			}
			record(err)
		}
		if !again {
			break
		}
		if round >= maxRounds {
			record(fmt.Errorf("%w: close did not stabilize after %d membership changes", ErrFlowBroken, round))
			break
		}
	}
	s.closed = true
	return firstErr
}

// Pushed returns the number of tuples pushed so far.
func (s *Source) Pushed() uint64 { return s.pushed.Load() }

// Stalls reports total virtual time the source spent blocked on remote
// ring space and on local segment reuse (diagnostics).
func (s *Source) Stalls() (remote, local time.Duration) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for _, w := range s.writers {
		if w == nil {
			continue
		}
		remote += time.Duration(w.StallRemote.Load())
		local += time.Duration(w.StallLocal.Load())
	}
	return remote, local
}

// ProbeStats reports footer-read diagnostics: reads issued, reads that
// found the probed slot unconsumed, and total randomized backoff time.
func (s *Source) ProbeStats() (probes, misses int, backoff time.Duration) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for _, w := range s.writers {
		if w == nil {
			continue
		}
		probes += int(w.Probes.Load())
		misses += int(w.ProbeMisses.Load())
		backoff += time.Duration(w.BackoffTime.Load())
	}
	return
}

// Free deregisters the source's buffers (after Close), including
// writers retired when their target rejoined under fresh rings.
func (s *Source) Free() {
	for _, w := range s.writers {
		if w == nil {
			continue
		}
		w.free()
	}
	for _, w := range s.retired {
		w.free()
	}
	if s.mc != nil {
		s.mc.free()
	}
	if s.mux != nil {
		s.mux.free()
	}
}

// Checkpoint flushes the source, waits until every tuple pushed so far
// is confirmed consumed by its target, and records the pushed count as
// the source's confirmed watermark in the registry. Should this source
// later be evicted, Reattach resumes from the last checkpointed
// watermark, and no tuple below it is ever re-pushed — Checkpoint is
// the boundary that turns the eviction's at-least-once window into
// exactly-once for everything behind it. Requires delivery confirmation
// (Options.RetransmitTimeout; set implicitly by LeaseTTL).
func (s *Source) Checkpoint(p transport.Ctx) (uint64, error) {
	if s.mc != nil {
		return 0, fmt.Errorf("%w: Checkpoint (multicast targets recover from sequencer snapshots instead)", ErrUnsupportedOnMulticast)
	}
	if s.mux != nil {
		return 0, fmt.Errorf("%w: Checkpoint (shared rings carry no delivery confirmation)", ErrUnsupportedOnShared)
	}
	if s.spec.Options.RetransmitTimeout <= 0 {
		return 0, errors.New("dfi: Checkpoint requires Options.RetransmitTimeout for delivery confirmation")
	}
	s.settleCharge(p)
	for {
		if err := s.syncEpoch(p); err != nil {
			return 0, err
		}
		again := false
		for _, w := range s.writers {
			if w == nil || w.dead || w.closed {
				continue
			}
			err := w.finish(p)
			if errors.Is(err, errEvicted) {
				again = true
				break
			}
			if err != nil {
				return 0, err
			}
		}
		if !again && (s.mem == nil || s.mem.Epoch() == s.epoch) {
			break
		}
	}
	if s.mem != nil {
		if err := s.reg.SetWatermark(p, s.spec.Name, registry.RoleSource, s.idx, s.pushed.Load()); err != nil {
			return 0, err
		}
	}
	s.watermark.Store(s.pushed.Load())
	return s.pushed.Load(), nil
}

// Watermark returns the last watermark this source checkpointed (0
// before the first Checkpoint).
func (s *Source) Watermark() uint64 { return s.watermark.Load() }

// Slot returns the source's slot index within the flow.
func (s *Source) Slot() int { return s.idx }

// Reattach rejoins a flow from which this source was evicted and
// returns a fresh Source plus the confirmed watermark to resume from:
// the application re-pushes its input from that point (tuples between
// the watermark and the eviction may reach targets twice — the
// at-least-once boundary documented in docs/PROTOCOL.md). On a
// non-elastic flow the source reclaims its old slot under a fresh
// incarnation; targets observe the incarnation bump and reset the
// slot's rings for the new stream. On an elastic flow the identity
// transfers to a fresh slot through the ordinary attach machinery
// (slots are never recycled there). Requires Options.RetransmitTimeout:
// a ring reset racing the new stream is healed by retransmission.
func (s *Source) Reattach(p transport.Ctx) (*Source, uint64, error) {
	if s.mc != nil {
		return nil, 0, fmt.Errorf("%w: Source.Reattach (an evicted multicast source's history dies with it; gap agreement reconciles the survivors)", ErrUnsupportedOnMulticast)
	}
	if s.mux != nil {
		return nil, 0, fmt.Errorf("%w: Source.Reattach (an evicted shared-ring source's in-flight window dies with it)", ErrUnsupportedOnShared)
	}
	if s.spec.Options.RetransmitTimeout <= 0 {
		return nil, 0, errors.New("dfi: Reattach requires Options.RetransmitTimeout")
	}
	name := s.spec.Name
	if s.spec.Options.Elastic {
		ns, err := AttachSource(p, s.reg, name, s.spec.Sources[s.idx])
		if err != nil {
			return nil, 0, err
		}
		rj, err := s.reg.Rejoin(p, name, registry.RoleSource, s.idx, ns.idx)
		if err != nil {
			return nil, 0, err
		}
		ns.watermark.Store(rj.Watermark)
		return ns, rj.Watermark, nil
	}
	rj, err := s.reg.Rejoin(p, name, registry.RoleSource, s.idx, s.idx)
	if err != nil {
		return nil, 0, err
	}
	ns := &Source{meta: s.meta, spec: s.spec, idx: s.idx, node: s.node, reg: s.reg}
	ns.watermark.Store(rj.Watermark)
	if err := ns.acquireSourceLease(p, s.reg, name); err != nil {
		return nil, 0, err
	}
	if err := ns.connectAll(p, name); err != nil {
		return nil, 0, err
	}
	return ns, rj.Watermark, nil
}

// FlowType returns the type declared in the spec. The spec stores it
// implicitly: combiner flows have an Aggregation target column set via
// Options and are opened with CombinerTargetOpen; replicate flows are
// those whose spec was marked by FlowInitReplicate or Options.Multicast.
func (s *FlowSpec) FlowType() FlowType { return s.Type }
