package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

// TestPropertyShuffleExactDelivery is the central protocol invariant:
// for arbitrary ring geometries, tuple counts, consumer pacing and
// topology, a shuffle flow delivers every pushed tuple exactly once with
// intact contents, and FLOW_END is observed by every target.
func TestPropertyShuffleExactDelivery(t *testing.T) {
	type params struct {
		Sources     uint8
		Targets     uint8
		SegsPerRing uint8
		SrcSegs     uint8
		SegTuples   uint8
		PerSource   uint16
		ConsumerLag uint8 // microseconds of sleep every 16 tuples
		LatencyMode bool
	}
	prop := func(ps params) bool {
		nSrc := int(ps.Sources%3) + 1
		nTgt := int(ps.Targets%3) + 1
		segs := int(ps.SegsPerRing%15) + 2
		srcSegs := int(ps.SrcSegs%15) + 2
		segSize := (int(ps.SegTuples%8) + 1) * kvSchema.TupleSize()
		perSource := int(ps.PerSource%700) + 1
		lag := time.Duration(ps.ConsumerLag%5) * time.Microsecond

		k := sim.New(99)
		k.Deadline = 30 * time.Second
		k.MaxEvents = 20_000_000
		c := fabric.NewCluster(k, nSrc+nTgt, fabric.DefaultConfig())
		reg := newTestRegistry(k)

		spec := FlowSpec{
			Name:   "prop",
			Schema: kvSchema,
			Options: Options{
				SegmentsPerRing: segs,
				SourceSegments:  srcSegs,
				SegmentSize:     segSize,
			},
		}
		if ps.LatencyMode {
			spec.Options.Optimization = OptimizeLatency
			spec.Options.SegmentSize = 0 // default to tuple size
		}
		for i := 0; i < nSrc; i++ {
			spec.Sources = append(spec.Sources, Endpoint{Node: c.Node(i)})
		}
		for i := 0; i < nTgt; i++ {
			spec.Targets = append(spec.Targets, Endpoint{Node: c.Node(nSrc + i)})
		}

		got := make(map[int64]int64)
		dup := false
		k.Spawn("init", func(p *sim.Proc) {
			if err := FlowInit(p, reg, c, spec); err != nil {
				panic(err)
			}
		})
		for si := 0; si < nSrc; si++ {
			si := si
			k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
				src, err := SourceOpen(p, reg, "prop", si)
				if err != nil {
					panic(err)
				}
				for i := 0; i < perSource; i++ {
					key := int64(si*perSource + i)
					if err := src.Push(p, mkTuple(key, key*3+1)); err != nil {
						panic(err)
					}
				}
				src.Close(p)
			})
		}
		for ti := 0; ti < nTgt; ti++ {
			ti := ti
			k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
				tgt, err := TargetOpen(p, reg, "prop", ti)
				if err != nil {
					panic(err)
				}
				n := 0
				for {
					tup, ok := tgt.Consume(p)
					if !ok {
						return
					}
					key := kvSchema.Int64(tup, 0)
					if _, seen := got[key]; seen {
						dup = true
					}
					got[key] = kvSchema.Int64(tup, 1)
					n++
					if lag > 0 && n%16 == 0 {
						p.Sleep(lag)
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Logf("params %+v: %v", ps, err)
			return false
		}
		if dup || len(got) != nSrc*perSource {
			t.Logf("params %+v: got %d unique of %d, dup=%v", ps, len(got), nSrc*perSource, dup)
			return false
		}
		for key, v := range got {
			if v != key*3+1 {
				t.Logf("params %+v: key %d corrupted: %d", ps, key, v)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOrderedReplicateAgreement: for arbitrary loss rates, source
// counts and segment sizes, every target of a globally ordered replicate
// flow consumes the identical complete sequence.
func TestPropertyOrderedReplicateAgreement(t *testing.T) {
	type params struct {
		Sources   uint8
		Targets   uint8
		PerSource uint16
		LossPct   uint8
		SegTuples uint8
	}
	prop := func(ps params) bool {
		nSrc := int(ps.Sources%2) + 1
		nTgt := int(ps.Targets%3) + 1
		perSource := int(ps.PerSource%300) + 1
		loss := float64(ps.LossPct%6) / 100
		segSize := (int(ps.SegTuples%4) + 1) * kvSchema.TupleSize()

		k := sim.New(7)
		k.Deadline = 30 * time.Second
		k.MaxEvents = 20_000_000
		fcfg := fabric.DefaultConfig()
		fcfg.MulticastLoss = loss
		c := fabric.NewCluster(k, nSrc+nTgt, fcfg)
		reg := newTestRegistry(k)

		spec := FlowSpec{
			Name:   "prop-ord",
			Type:   ReplicateFlow,
			Schema: kvSchema,
			Options: Options{
				Multicast:      true,
				GlobalOrdering: true,
				SegmentSize:    segSize,
				GapTimeout:     10 * time.Microsecond,
			},
		}
		for i := 0; i < nSrc; i++ {
			spec.Sources = append(spec.Sources, Endpoint{Node: c.Node(i)})
		}
		for i := 0; i < nTgt; i++ {
			spec.Targets = append(spec.Targets, Endpoint{Node: c.Node(nSrc + i)})
		}

		orders := make([][]int64, nTgt)
		k.Spawn("init", func(p *sim.Proc) {
			if err := FlowInit(p, reg, c, spec); err != nil {
				panic(err)
			}
		})
		for si := 0; si < nSrc; si++ {
			si := si
			k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
				src, err := SourceOpen(p, reg, "prop-ord", si)
				if err != nil {
					panic(err)
				}
				for i := 0; i < perSource; i++ {
					if err := src.Push(p, mkTuple(int64(si*perSource+i), 0)); err != nil {
						panic(err)
					}
				}
				src.Close(p)
			})
		}
		for ti := 0; ti < nTgt; ti++ {
			ti := ti
			k.Spawn(fmt.Sprintf("t%d", ti), func(p *sim.Proc) {
				tgt, err := TargetOpen(p, reg, "prop-ord", ti)
				if err != nil {
					panic(err)
				}
				for {
					tup, ok := tgt.Consume(p)
					if !ok {
						return
					}
					orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Logf("params %+v: %v", ps, err)
			return false
		}
		for ti := 0; ti < nTgt; ti++ {
			if len(orders[ti]) != nSrc*perSource {
				t.Logf("params %+v: target %d got %d of %d", ps, ti, len(orders[ti]), nSrc*perSource)
				return false
			}
			for i := range orders[0] {
				if orders[ti][i] != orders[0][i] {
					t.Logf("params %+v: order diverges", ps)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
