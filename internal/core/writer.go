package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/transport"
)

// errEvicted reports that the writer's target was evicted from the flow
// membership while the writer was working or blocked. It is an internal
// control signal — the source catches it, re-routes the writer's
// unconsumed window over the survivors, and continues — and is never
// returned to applications.
var errEvicted = errors.New("dfi: target evicted")

// Completion-ID tag bits distinguishing the writer's work requests on its
// send CQ.
const (
	idFooterRead = 1 << 63
	idWrapWrite  = 1 << 62
	idCreditRead = 1 << 61
)

// ringWriter moves one source's tuples into one target's private ring
// (paper Figure 4). It implements both optimization modes:
//
//   - Bandwidth: tuples batch into 8 KiB segments; each full segment is one
//     RDMA WRITE whose 16-byte footer (fill count + consumable flag +
//     sequence number) trails the payload, so the target detects complete
//     segments without checksums. Writes are signaled only when the local
//     source ring wraps (selective signaling); remote-slot reuse is
//     verified with RDMA READs of the next footer, pipelined with writes,
//     falling back to randomized-backoff polling when the target lags.
//
//   - Latency: each tuple is written immediately into a tuple-sized
//     segment. A credit counter (initialized to the ring size) avoids the
//     per-write footer check; the source refreshes credit by reading the
//     target's consumed counter when the local copy drops below the
//     threshold.
type ringWriter struct {
	tpt     transport.Transport
	node    transport.Endpoint
	qp      transport.Queue
	remote  transport.Region
	ringOff int
	geom    ringGeom
	opts    *Options

	local   transport.Region
	srcSegs int
	sslot   int
	fill    int
	count   int

	written uint64 // segments written to the remote ring
	acked   uint64 // remote segments known to be consumed

	// pubWritten mirrors written for concurrent scrape: the ring
	// arithmetic above needs the plain field, so writeSegment republishes
	// it atomically at its single mutation site. payloadBytes is pure
	// accounting (never read by control flow) and is atomic outright.
	pubWritten   atomic.Uint64
	payloadBytes atomic.Uint64 // tuple payload volume transferred

	footerBuf     []byte
	cqBurst       [16]transport.Completion // drainCQ burst scratch
	footerPending bool
	probeWrite    uint64 // ring-write number the in-flight footer read probes
	completedW    uint64 // writes known complete (from signaled completions)
	sigEvery      int    // signal every sigEvery-th write
	seq           uint64

	// Latency mode.
	credits       int
	sent          uint64
	creditBuf     []byte
	creditPending bool

	closed bool

	// Control plane. evicted (set by the source when the flow has a
	// membership record) reports whether this writer's target has been
	// evicted; every bounded wait polls it so eviction wins over the
	// slower ErrFlowBroken give-up. dead latches the eviction once the
	// source has harvested the writer's unconsumed window.
	evicted func() bool
	dead    bool

	// Diagnostics: virtual time spent blocked (nanoseconds), by cause.
	// Atomic so a scraper goroutine can read Stats() while the flow runs;
	// the simulation side is single-logical-threaded (baton passing), so
	// plain Add/Load suffice for it.
	StallRemote atomic.Int64 // waiting for remote ring slots
	StallLocal  atomic.Int64 // waiting for local segment reuse (wrap signal)
	Probes      atomic.Int64 // footer reads issued
	ProbeMisses atomic.Int64 // footer reads that found the slot unconsumed
	BackoffTime atomic.Int64
	Retransmits atomic.Int64 // segments rewritten by loss recovery

	// Event tracing context, set by the source at connect time. events
	// is nil unless the application installed a sink.
	events  metrics.EventSink
	evNode  string
	evFlow  string
	evEpoch func() uint64
	evSlot  int // target slot this writer feeds
}

// newRingWriter connects a source thread on node to the ring at ringOff
// inside the target's memory region.
func newRingWriter(cluster transport.Transport, node transport.Endpoint, ti *targetInfo, ringOff int, opts *Options) *ringWriter {
	qp, _ := cluster.Dial(node, ti.mr.Owner())
	w := &ringWriter{
		tpt:       cluster,
		node:      node,
		qp:        qp,
		remote:    ti.mr,
		ringOff:   ringOff,
		geom:      ti.geom,
		opts:      opts,
		srcSegs:   opts.SourceSegments,
		sigEvery:  signalCadence(opts.SourceSegments),
		credits:   ti.geom.nSegs,
		footerBuf: make([]byte, footerBytes),
		creditBuf: make([]byte, 8),
	}
	w.local = cluster.OpenRegion(node, w.srcSegs*w.geom.stride())
	return w
}

// free releases the writer's registered memory.
func (w *ringWriter) free() {
	w.local.Deregister()
}

// checkAbort lets a blocked writer escape when the control plane evicted
// its target: the wait can never be satisfied, and the source will
// re-route the unconsumed window instead of waiting out ErrFlowBroken.
func (w *ringWriter) checkAbort() error {
	if w.dead {
		return errEvicted
	}
	if w.evicted != nil && w.evicted() {
		return errEvicted
	}
	return nil
}

// abandon latches the writer dead (its target was evicted) and harvests
// every tuple not yet known consumed: the written-but-unacked window
// still resident in the local ring, plus the partial segment being
// filled. The source re-pushes the harvest to surviving targets. The
// harvest errs toward duplication — tuples the dead target consumed
// between its last acknowledgment and its eviction are re-delivered to
// a survivor (the cross-boundary at-least-once documented in
// docs/PROTOCOL.md) — while delivery among survivors stays exactly-once.
func (w *ringWriter) abandon(tupleSize int) [][]byte {
	w.dead = true
	var out [][]byte
	lo := w.acked
	if w.written-lo > uint64(w.srcSegs) {
		// Should be unreachable when the resident-window invariant holds
		// (normalize forces SourceSegments ≥ SegmentsPerRing+1 whenever
		// recovery is on); harvest what is still resident.
		lo = w.written - uint64(w.srcSegs)
	}
	for n := lo; n < w.written; n++ {
		lbase := int(n%uint64(w.srcSegs)) * w.geom.stride()
		seg := w.local.Bytes()[lbase : lbase+w.geom.stride()]
		footer := seg[w.geom.segSize:]
		fill := int(binary.LittleEndian.Uint32(footer[0:4]))
		for off := 0; off+tupleSize <= fill; off += tupleSize {
			out = append(out, seg[off:off+tupleSize])
		}
	}
	seg := w.localSeg()
	for off := 0; off+tupleSize <= w.fill; off += tupleSize {
		out = append(out, seg[off:off+tupleSize])
	}
	w.fill, w.count = 0, 0
	return out
}

// localSeg returns the current local segment's full-stride buffer.
func (w *ringWriter) localSeg() []byte {
	base := w.sslot * w.geom.stride()
	return w.local.Bytes()[base : base+w.geom.stride()]
}

// remoteSlotAddr returns the address of remote ring slot i.
func (w *ringWriter) remoteSlotAddr(i int) transport.Addr {
	return transport.Addr{MR: w.remote, Off: w.ringOff + w.geom.segOff(i)}
}

// remoteHeaderAddr returns the address of the ring's consumed counter.
func (w *ringWriter) remoteHeaderAddr() transport.Addr {
	return transport.Addr{MR: w.remote, Off: w.ringOff}
}

// push appends one tuple to the current segment, flushing when full.
// Bandwidth mode only; per-tuple CPU cost is charged in bulk at flush.
func (w *ringWriter) push(p transport.Ctx, tuple []byte) error {
	if err := w.checkAbort(); err != nil {
		return err
	}
	if w.fill+len(tuple) > w.geom.segSize {
		if err := w.flush(p, false); err != nil {
			return err
		}
	}
	if w.tpt.CopiesPayload() {
		copy(w.localSeg()[w.fill:], tuple)
	}
	w.fill += len(tuple)
	w.count++
	return nil
}

// pushRun appends a contiguous run of fixed-size tuples (len(data) is a
// multiple of tupleSize), copying whole segment-fills at a time. Segment
// boundaries fall exactly where len(data)/tupleSize sequential push calls
// would put them, so the resulting ring is byte-identical. Bandwidth mode
// only; CPU cost is charged by the caller.
func (w *ringWriter) pushRun(p transport.Ctx, data []byte, tupleSize int) error {
	copyPayload := w.tpt.CopiesPayload()
	for len(data) > 0 {
		if err := w.checkAbort(); err != nil {
			return err
		}
		fit := (w.geom.segSize - w.fill) / tupleSize * tupleSize
		if fit == 0 {
			if err := w.flush(p, false); err != nil {
				return err
			}
			continue
		}
		if fit > len(data) {
			fit = len(data)
		}
		if copyPayload {
			copy(w.localSeg()[w.fill:], data[:fit])
		}
		w.fill += fit
		w.count += fit / tupleSize
		data = data[fit:]
	}
	return nil
}

// pushImmediate transfers one tuple right away (latency mode): a full
// segment write under credit flow control.
func (w *ringWriter) pushImmediate(p transport.Ctx, tuple []byte) error {
	if err := w.checkAbort(); err != nil {
		return err
	}
	if err := w.ensureCredit(p); err != nil {
		return err
	}
	w.drainCQ(p)
	if err := w.waitLocalSlot(p); err != nil {
		return err
	}

	seg := w.localSeg()
	if w.tpt.CopiesPayload() {
		copy(seg, tuple)
	}
	w.writeSegment(p, len(tuple), flagConsumable)
	w.credits--
	w.sent++
	if w.credits <= w.opts.CreditThreshold && !w.creditPending {
		w.qp.Read(p, w.creditBuf, w.remoteHeaderAddr(), true, idCreditRead)
		w.creditPending = true
	}
	return nil
}

// ensureCredit blocks until at least one credit is available, reading the
// target's consumed counter as needed. With RetransmitTimeout set, a stall
// triggers resync-and-retransmit (the credit counter stalls exactly when a
// segment the target needs next was lost).
func (w *ringWriter) ensureCredit(p transport.Ctx) error {
	rounds := 0
	lastProgress := p.Now()
	for w.credits <= 0 {
		if err := w.checkAbort(); err != nil {
			return err
		}
		if !w.creditPending {
			w.qp.Read(p, w.creditBuf, w.remoteHeaderAddr(), true, idCreditRead)
			w.creditPending = true
		}
		if w.opts.RetransmitTimeout <= 0 {
			w.handleCompletion(p, w.qp.SendCQ().Wait(p))
			if w.credits <= 0 && !w.creditPending {
				w.backoff(p)
			}
			continue
		}
		c, ok := w.qp.SendCQ().WaitTimeout(p, w.opts.RetransmitTimeout)
		if ok {
			before := w.credits
			w.handleCompletion(p, c)
			if w.credits > before {
				lastProgress = p.Now()
				rounds = 0
			}
			if w.credits > 0 {
				break
			}
			if p.Now()-lastProgress <= w.opts.RetransmitTimeout {
				if !w.creditPending {
					w.backoff(p)
				}
				continue
			}
			// Credit READs answer but the counter is stuck: the target is
			// blocked on a segment that was lost. Fall through to recovery.
		}
		w.creditPending = false
		before := w.credits
		if err := w.recover(p); err != nil {
			return err
		}
		lastProgress = p.Now()
		if w.credits <= before {
			rounds++
			if rounds > w.opts.MaxRetransmits {
				return fmt.Errorf("%w: no credit after %d recovery rounds", ErrFlowBroken, rounds-1)
			}
		} else {
			rounds = 0
		}
	}
	return nil
}

// flush transfers the current (possibly partial) segment; end marks the
// flow-end segment. Bandwidth mode.
func (w *ringWriter) flush(p transport.Ctx, end bool) error {
	if w.fill == 0 && !end {
		return nil
	}
	w.drainCQ(p)
	if err := w.ensureRemoteWritable(p); err != nil {
		return err
	}
	if err := w.waitLocalSlot(p); err != nil {
		return err
	}

	flags := byte(flagConsumable)
	if end {
		flags |= flagEndOfFlow
	}
	w.writeSegment(p, w.fill, flags)

	// Pipeline: while the segment is in flight, learn about the oldest
	// outstanding remote slot so the next flush need not wait.
	if int(w.written-w.acked) >= w.geom.nSegs-2 && !w.footerPending {
		w.postFooterRead(p)
	}
	return nil
}

// writeSegment stamps the footer of the current local segment and issues
// the RDMA WRITE(s) to the next remote slot, advancing ring positions.
// fill is the valid payload size.
func (w *ringWriter) writeSegment(p transport.Ctx, fill int, flags byte) {
	seg := w.localSeg()
	footer := seg[w.geom.segSize:]
	binary.LittleEndian.PutUint32(footer[0:4], uint32(fill))
	footer[4] = flags
	footer[5], footer[6], footer[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(footer[8:16], w.seq)
	w.seq++

	slot := int(w.written % uint64(w.geom.nSegs))
	// Selective signaling: every sigEvery-th write carries a completion so
	// the local-ring watermark advances in quarter-ring steps and the
	// pipeline never drains fully (paper §5.2 signals once per ring
	// wrap-around; quarter-ring granularity keeps the same amortization
	// while avoiding a full-stop at each wrap).
	signaled := int(w.written%uint64(w.sigEvery)) == w.sigEvery-1
	id := uint64(idWrapWrite) | w.written
	if fill >= w.geom.segSize*3/4 || fill == 0 || w.opts.RetransmitTimeout > 0 {
		// Mostly full (or pure end-marker): one full-stride write; the
		// footer is the CommitTail so it lands strictly last. Retransmitting
		// flows always take this path: loss recovery relies on the footer
		// certifying exactly the payload it travelled with, and a split
		// write could lose the payload yet land the footer, exposing a
		// stale segment body as valid.
		w.qp.Write(p, seg, w.remoteSlotAddr(slot), transport.WriteOptions{
			Signaled: signaled, ID: id, CommitTail: footerBytes,
		})
	} else {
		// Sparse final segment: write the payload, then the footer as a
		// separate (ordered) WRITE so only fill+16 bytes cross the wire.
		// Both WRs post with one doorbell; RC ordering still lands the
		// footer strictly after the payload.
		fAddr := w.remoteSlotAddr(slot)
		fAddr.Off += w.geom.segSize
		w.qp.WriteBatch(p, []transport.WriteWR{
			{Src: seg[:fill], Dst: w.remoteSlotAddr(slot)},
			{Src: footer, Dst: fAddr, Opts: transport.WriteOptions{
				Signaled: signaled, ID: id, CommitTail: footerBytes,
			}},
		})
	}
	w.written++
	w.pubWritten.Store(w.written)
	w.payloadBytes.Add(uint64(fill))
	w.sslot = (w.sslot + 1) % w.srcSegs
	w.fill, w.count = 0, 0
	if w.events != nil {
		w.events.Emit(metrics.Event{
			T: p.Now(), Node: w.evNode, Type: metrics.EvSegmentWrite,
			Flow: w.evFlow, Epoch: w.epochLabel(), Role: "source",
			Slot: w.evSlot, Seq: w.seq - 1, Bytes: uint64(fill),
		})
	}
}

// epochLabel reads the flow epoch for event labels (0 without a
// membership record).
func (w *ringWriter) epochLabel() uint64 {
	if w.evEpoch == nil {
		return 0
	}
	return w.evEpoch()
}

// ensureRemoteWritable blocks until the next remote slot is reusable,
// reading its footer and polling with a small random backoff while the
// target lags (paper §5.2). With RetransmitTimeout set, a stalled probe
// pipeline (lost probe, lost probe response, or a lost WRITE the target is
// stuck waiting for) triggers resync-and-retransmit instead of a hang.
func (w *ringWriter) ensureRemoteWritable(p transport.Ctx) error {
	start := p.Now()
	defer func() { w.StallRemote.Add(int64(p.Now() - start)) }()
	rounds := 0
	lastProgress := p.Now()
	for int(w.written-w.acked) >= w.geom.nSegs {
		if err := w.checkAbort(); err != nil {
			return err
		}
		if !w.footerPending {
			w.postFooterRead(p)
			continue
		}
		if w.opts.RetransmitTimeout <= 0 {
			w.handleCompletion(p, w.qp.SendCQ().Wait(p))
			continue
		}
		c, ok := w.qp.SendCQ().WaitTimeout(p, w.opts.RetransmitTimeout)
		if ok {
			before := w.acked
			w.handleCompletion(p, c)
			if w.acked > before {
				lastProgress = p.Now()
				rounds = 0
			}
			if p.Now()-lastProgress <= w.opts.RetransmitTimeout {
				continue
			}
			// Probes keep answering but the watermark is stuck: the
			// target is blocked on a lost segment, which no amount of
			// probing reveals. Fall through to recovery.
		}
		w.footerPending = false // abandon the (presumed lost) probe
		before := w.acked
		if err := w.recover(p); err != nil {
			return err
		}
		lastProgress = p.Now()
		if w.acked == before {
			rounds++
			if rounds > w.opts.MaxRetransmits {
				return fmt.Errorf("%w: remote ring full, no progress after %d recovery rounds", ErrFlowBroken, rounds-1)
			}
		} else {
			rounds = 0
		}
	}
	return nil
}

// postFooterRead issues an asynchronous READ of an outstanding remote
// slot's footer. Because the target consumes its ring in order, a cleared
// consumable flag at read-ahead distance d proves the d+1 oldest
// outstanding segments were all consumed — so probing half a window ahead
// reclaims many slots per round trip instead of one, keeping the source
// pipelined even when the ring runs full.
func (w *ringWriter) postFooterRead(p transport.Ctx) {
	outstanding := w.written - w.acked
	ahead := uint64(w.geom.nSegs / 2)
	if outstanding == 0 {
		return
	}
	if ahead > outstanding-1 {
		ahead = outstanding - 1
	}
	w.probeWrite = w.acked + ahead
	slot := int(w.probeWrite % uint64(w.geom.nSegs))
	addr := w.remoteSlotAddr(slot)
	addr.Off += w.geom.segSize
	w.qp.Read(p, w.footerBuf, addr, true, idFooterRead)
	w.footerPending = true
	w.Probes.Add(1)
}

// waitLocalSlot blocks until the local segment about to be filled is no
// longer referenced by an in-flight WRITE: write number `written` reuses
// the slot of write `written − srcSegs`, which must have completed. The
// watermark advances through the periodic signaled completions (QP
// completions are ordered, so completion of write k proves all writes
// ≤ k are done).
func (w *ringWriter) waitLocalSlot(p transport.Ctx) error {
	if w.written < uint64(w.srcSegs) {
		return nil
	}
	needed := w.written - uint64(w.srcSegs) + 1
	if w.completedW >= needed {
		return nil
	}
	start := p.Now()
	defer func() { w.StallLocal.Add(int64(p.Now() - start)) }()
	rounds := 0
	for w.completedW < needed {
		if err := w.checkAbort(); err != nil {
			return err
		}
		if w.opts.RetransmitTimeout <= 0 {
			w.handleCompletion(p, w.qp.SendCQ().Wait(p))
			continue
		}
		c, ok := w.qp.SendCQ().WaitTimeout(p, w.opts.RetransmitTimeout)
		if ok {
			w.handleCompletion(p, c)
			continue
		}
		// Completions only vanish when an endpoint crashed; retrying
		// cannot help, but give the fabric MaxRetransmits grace rounds.
		rounds++
		if rounds > w.opts.MaxRetransmits {
			return fmt.Errorf("%w: write completion overdue after %d rounds (peer crashed?)", ErrFlowBroken, rounds-1)
		}
	}
	return nil
}

// drainCQ consumes available completions without blocking, in bursts:
// each PollBatch empties what is pending into the writer's scratch
// array in one go (one wakeup, one lock hold on goroutine backends),
// then the handlers run over the batch. The loop repeats only when the
// batch came back full, i.e. more completions may be pending.
func (w *ringWriter) drainCQ(p transport.Ctx) {
	for {
		n := w.qp.SendCQ().PollBatch(p, w.cqBurst[:])
		for i := 0; i < n; i++ {
			w.handleCompletion(p, w.cqBurst[i])
			w.cqBurst[i] = transport.Completion{}
		}
		if n < len(w.cqBurst) {
			return
		}
	}
}

// handleCompletion dispatches one CQ entry.
func (w *ringWriter) handleCompletion(p transport.Ctx, c transport.Completion) {
	switch {
	case c.ID&idFooterRead != 0:
		w.footerPending = false
		// A cleared consumable flag alone is ambiguous: the probe travels
		// on the fast control lane and can overtake the (bulk-lane) WRITE
		// it is probing, observing the stale footer of the previous lap.
		// The footer's sequence number pins the observation to the probed
		// write: flags clear AND seq matching means the target really
		// consumed it — and, consuming in ring order, everything older.
		seq := binary.LittleEndian.Uint64(w.footerBuf[8:16])
		if w.footerBuf[4]&flagConsumable == 0 && seq == w.probeWrite {
			// Never regress: a stale probe completing after a recover()
			// resync may report an older watermark.
			if w.probeWrite+1 > w.acked {
				w.acked = w.probeWrite + 1
			}
		} else if int(w.written-w.acked) >= w.geom.nSegs {
			// Still unconsumed and we are blocked: back off before
			// re-reading so a slow target is not flooded with READs.
			w.ProbeMisses.Add(1)
			w.backoff(p)
			w.postFooterRead(p)
		}
	case c.ID&idCreditRead != 0:
		w.creditPending = false
		consumed := binary.LittleEndian.Uint64(w.creditBuf)
		w.credits = w.geom.nSegs - int(w.sent-consumed)
		// The ring-header consumed counter is authoritative in both
		// modes; fold it into the acked watermark (never regressing).
		if consumed > w.acked && consumed <= w.written {
			w.acked = consumed
		}
	case c.ID&idWrapWrite != 0:
		done := c.ID &^ (idWrapWrite | idFooterRead | idCreditRead)
		if done+1 > w.completedW {
			w.completedW = done + 1
		}
	}
}

// backoff sleeps a small randomized interval (0.5µs–2µs).
func (w *ringWriter) backoff(p transport.Ctx) {
	d := 500*time.Nanosecond + time.Duration(p.Rand().Int63n(int64(1500*time.Nanosecond)))
	w.BackoffTime.Add(int64(d))
	p.Sleep(d)
}

// recover resynchronizes the writer against the authoritative ring-header
// consumed counter and retransmits every written-but-unconsumed segment
// still resident in the local ring. Retransmission is idempotent: the
// target's footer sequence check ignores segments it already consumed, so
// rewriting a merely-slow (rather than lost) segment is harmless. Only
// called with RetransmitTimeout > 0.
func (w *ringWriter) recover(p transport.Ctx) error {
	// 1. Resync: read the consumed counter, bounded, retrying lost READs.
	for attempt := 0; ; attempt++ {
		if err := w.checkAbort(); err != nil {
			return err
		}
		w.qp.Read(p, w.creditBuf, w.remoteHeaderAddr(), true, idCreditRead)
		w.creditPending = true
		for w.creditPending {
			c, ok := w.qp.SendCQ().WaitTimeout(p, w.opts.RetransmitTimeout)
			if !ok {
				break
			}
			w.handleCompletion(p, c)
		}
		if !w.creditPending {
			break
		}
		w.creditPending = false
		if attempt >= w.opts.MaxRetransmits {
			return fmt.Errorf("%w: target unreachable (%d consumed-counter reads unanswered)", ErrFlowBroken, attempt+1)
		}
	}
	consumed := binary.LittleEndian.Uint64(w.creditBuf)
	if consumed > w.written {
		return fmt.Errorf("%w: target consumed %d of %d written segments (ring corrupt)", ErrFlowBroken, consumed, w.written)
	}
	if consumed > w.acked {
		w.acked = consumed
	}
	// 2. Retransmit the unconsumed window. normalize guarantees
	// srcSegs ≥ nSegs, so written − acked ≤ nSegs keeps it resident.
	if w.written-w.acked > uint64(w.srcSegs) {
		return fmt.Errorf("%w: unconsumed segment %d already left the local ring", ErrFlowBroken, w.acked)
	}
	// Unsignaled rewrites to adjacent remote slots coalesce into one
	// doorbell-batched post per non-wrapping run; each segment keeps its
	// own CommitTail so every footer still lands after its payload.
	var wrs []transport.WriteWR
	for n := w.acked; n < w.written; n++ {
		lbase := int(n%uint64(w.srcSegs)) * w.geom.stride()
		seg := w.local.Bytes()[lbase : lbase+w.geom.stride()]
		rslot := int(n % uint64(w.geom.nSegs))
		if rslot == 0 && len(wrs) > 0 {
			w.qp.WriteBatch(p, wrs)
			wrs = wrs[:0]
		}
		wrs = append(wrs, transport.WriteWR{
			Src: seg, Dst: w.remoteSlotAddr(rslot),
			Opts: transport.WriteOptions{CommitTail: footerBytes},
		})
		w.Retransmits.Add(1)
	}
	if len(wrs) > 0 {
		w.qp.WriteBatch(p, wrs)
	}
	return nil
}

// confirmDelivered blocks until the target consumed everything written
// (acked == written), recovering lost segments on the way. Called from
// close when RetransmitTimeout is set, so a successful Close certifies
// delivery of the whole stream including the end-of-flow marker.
func (w *ringWriter) confirmDelivered(p transport.Ctx) error {
	rounds := 0
	lastProgress := p.Now()
	for w.acked < w.written {
		if err := w.checkAbort(); err != nil {
			return err
		}
		if !w.footerPending && w.opts.Optimization == OptimizeBandwidth {
			w.postFooterRead(p)
		}
		c, ok := w.qp.SendCQ().WaitTimeout(p, w.opts.RetransmitTimeout)
		if ok {
			before := w.acked
			w.handleCompletion(p, c)
			if w.acked > before {
				lastProgress = p.Now()
				rounds = 0
			}
			if p.Now()-lastProgress <= w.opts.RetransmitTimeout {
				continue
			}
			// Completions flow but the watermark is stuck (lost segment
			// blocking the target): fall through to recovery.
		}
		w.footerPending = false
		before := w.acked
		if err := w.recover(p); err != nil {
			return err
		}
		lastProgress = p.Now()
		if w.acked == before {
			rounds++
			if rounds > w.opts.MaxRetransmits {
				return fmt.Errorf("%w: %d segments unconfirmed after %d recovery rounds",
					ErrFlowBroken, w.written-w.acked, rounds-1)
			}
		} else {
			rounds = 0
		}
	}
	return nil
}

// close flushes remaining tuples and writes the end-of-flow marker. With
// RetransmitTimeout set it additionally confirms the whole stream was
// consumed, retransmitting losses.
func (w *ringWriter) close(p transport.Ctx) error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.opts.Optimization == OptimizeLatency {
		if err := w.ensureCredit(p); err != nil {
			return err
		}
		if err := w.waitLocalSlot(p); err != nil {
			return err
		}
		w.writeSegment(p, 0, flagConsumable|flagEndOfFlow)
		w.credits--
		w.sent++
		if w.opts.RetransmitTimeout > 0 {
			return w.confirmDelivered(p)
		}
		return nil
	}
	if err := w.flush(p, false); err != nil { // remaining tuples
		return err
	}
	w.drainCQ(p)
	if err := w.ensureRemoteWritable(p); err != nil {
		return err
	}
	if err := w.waitLocalSlot(p); err != nil {
		return err
	}
	w.writeSegment(p, 0, flagConsumable|flagEndOfFlow)
	if w.opts.RetransmitTimeout > 0 {
		return w.confirmDelivered(p)
	}
	return nil
}

// finish is the first half of a phased close (sources with a live
// membership record use finish-all-then-end-all instead of per-writer
// close): flush the remaining tuples and confirm delivery, but do not
// write the end marker yet. Splitting matters under eviction — the
// harvest of a writer that dies during phase 1 is re-pushed to
// survivors, which must therefore not have sent FLOW_END yet.
func (w *ringWriter) finish(p transport.Ctx) error {
	if err := w.checkAbort(); err != nil {
		return err
	}
	if w.opts.Optimization == OptimizeLatency {
		if w.opts.RetransmitTimeout > 0 {
			return w.confirmDelivered(p)
		}
		return nil
	}
	if err := w.flush(p, false); err != nil {
		return err
	}
	if w.opts.RetransmitTimeout > 0 {
		return w.confirmDelivered(p)
	}
	return nil
}

// end is the second half of a phased close: write the end-of-flow
// marker and confirm it. Only called once no live writer has anything
// left to drain (finish reached quiescence), so a late eviction here
// can no longer lose tuples.
func (w *ringWriter) end(p transport.Ctx) error {
	if w.closed {
		return nil
	}
	if err := w.checkAbort(); err != nil {
		return err
	}
	w.closed = true
	if w.opts.Optimization == OptimizeLatency {
		if err := w.ensureCredit(p); err != nil {
			return err
		}
		if err := w.waitLocalSlot(p); err != nil {
			return err
		}
		w.writeSegment(p, 0, flagConsumable|flagEndOfFlow)
		w.credits--
		w.sent++
	} else {
		w.drainCQ(p)
		if err := w.ensureRemoteWritable(p); err != nil {
			return err
		}
		if err := w.waitLocalSlot(p); err != nil {
			return err
		}
		w.writeSegment(p, 0, flagConsumable|flagEndOfFlow)
	}
	if w.opts.RetransmitTimeout > 0 {
		return w.confirmDelivered(p)
	}
	return nil
}
