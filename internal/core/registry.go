package core

import (
	"time"

	"dfi/internal/metrics"
	"dfi/internal/registry"
	"dfi/internal/transport"
)

// Registry is the flow-metadata surface core needs from a registry
// implementation: publish/wait for flow and target metadata, the
// lease/membership control plane, and sequencer recovery state. The
// DES-backed *registry.Registry (standalone or replicated) implements
// all of it; registry.Local implements the metadata surface for sim-free
// transports and degrades the failure-handling methods (nil membership,
// no-op leases, rejoin errors).
type Registry interface {
	// Flow metadata.
	Publish(p transport.Ctx, name string, meta any) error
	Lookup(p transport.Ctx, name string) (any, bool)
	WaitFlow(p transport.Ctx, name string) any
	PublishTarget(p transport.Ctx, name string, idx int, info any) error
	RepublishTarget(p transport.Ctx, name string, idx int, info any) error
	TargetInfo(p transport.Ctx, name string, idx int) (any, bool)
	WaitTargetLive(p transport.Ctx, name string, idx int) (info any, evicted bool)

	// Lease-based membership (nil membership = failure handling off).
	MembershipOf(name string) *registry.Membership
	AcquireLease(p transport.Ctx, flow string, role registry.Role, idx int, ttl, grace time.Duration) error
	RenewLease(p transport.Ctx, flow string, role registry.Role, idx int) error
	// RenewLeaseBatch renews many slots in one round trip (the batched
	// heartbeat path); it returns the refs that could not be renewed.
	RenewLeaseBatch(p transport.Ctx, refs []registry.LeaseRef) []registry.LeaseRef
	ReleaseLease(p transport.Ctx, flow string, role registry.Role, idx int)
	Rejoin(p transport.Ctx, flow string, role registry.Role, idx, newIdx int) (registry.Rejoined, error)
	SetWatermark(p transport.Ctx, flow string, role registry.Role, idx int, watermark uint64) error

	// Sequencer recovery state (ordered multicast).
	RecordSeqProgress(p transport.Ctx, flow string, tgt int, highWater uint64, perSource []uint64) error
	RecordSeqSkips(p transport.Ctx, flow string, epoch uint64, seqs ...uint64) error
	SeqSnapshot(p transport.Ctx, flow string) (registry.SeqSnapshot, bool)

	// Structured protocol events (nil when tracing is off).
	EventSink() metrics.EventSink
}

var (
	_ Registry = (*registry.Registry)(nil)
	_ Registry = (*registry.Local)(nil)
	_ Registry = (*registry.Sharded)(nil)
)
