package core

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/sim"
)

// runSharp drives an in-network combiner and returns merged results plus
// the finish time and the flush-flow tuple count.
func runSharp(t *testing.T, e *env, nSources, perSource, groups int) ([]AggResult, sim.Time, uint64) {
	t.Helper()
	var sources []Endpoint
	for i := 0; i < nSources; i++ {
		sources = append(sources, Endpoint{Node: e.c.Node(i)})
	}
	target := Endpoint{Node: e.c.Node(nSources)}
	var results []AggResult
	var finish sim.Time
	var flushed uint64
	var sc *SharpCombiner
	e.k.Spawn("init", func(p *sim.Proc) {
		var err error
		sc, err = NewSharpCombiner(p, e.reg, e.c, "sharp", sources, target, kvSchema, SharpOptions{
			Aggregation: AggSum, GroupCol: 0, ValueCol: 1,
		})
		if err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < nSources; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			for sc == nil {
				p.Sleep(time.Microsecond)
			}
			src, err := SourceOpen(p, e.reg, sc.IngestFlow(), si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				_ = src.Push(p, mkTuple(int64(i%groups), int64(i)))
			}
			src.Close(p)
		})
	}
	e.k.Spawn("tgt", func(p *sim.Proc) {
		for sc == nil {
			p.Sleep(time.Microsecond)
		}
		st, err := sc.TargetOpenSharp(p, e.reg)
		if err != nil {
			t.Error(err)
			return
		}
		st.Run(p)
		results = st.Results()
		finish = p.Now()
		flushed = st.Consumed()
	})
	e.run(t)
	return results, finish, flushed
}

func TestSharpCombinerCorrectness(t *testing.T) {
	e := newEnv(t, 4)
	const nSources, perSource, groups = 3, 3000, 16
	results, _, flushed := runSharp(t, e, nSources, perSource, groups)
	if len(results) != groups {
		t.Fatalf("%d groups, want %d", len(results), groups)
	}
	// Expected per-group sum: each source pushes values i for i%groups==key.
	want := make(map[uint64]int64)
	for s := 0; s < nSources; s++ {
		for i := 0; i < perSource; i++ {
			want[uint64(i%groups)] += int64(i)
		}
	}
	for _, r := range results {
		if r.Value != want[r.Key] {
			t.Fatalf("group %d = %d, want %d", r.Key, r.Value, want[r.Key])
		}
	}
	// In-network reduction: the target ingress saw partial aggregates, not
	// raw tuples.
	if flushed >= uint64(nSources*perSource)/4 {
		t.Fatalf("target received %d tuples for %d raw — reduction did not happen in-network", flushed, nSources*perSource)
	}
}

func TestSharpCombinerBeatsEndHostCombinerThroughput(t *testing.T) {
	// The headline motivation (paper §4.2.3): with many senders and few
	// groups, the end-host combiner is capped by the target's in-going
	// link, while the in-network reduction is bounded only by the senders'
	// own links.
	mkEnv := func() *env { return newEnv(t, 9) }
	const perSource = 12000
	const groups = 64

	// End-host combiner.
	e1 := mkEnv()
	var hostEnd sim.Time
	{
		var sources []Endpoint
		for i := 0; i < 8; i++ {
			sources = append(sources, Endpoint{Node: e1.c.Node(i)})
		}
		spec := FlowSpec{
			Name: "host-comb", Type: CombinerFlow,
			Sources: sources,
			Targets: []Endpoint{{Node: e1.c.Node(8)}},
			Schema:  kvSchema,
			Options: Options{Aggregation: AggSum, GroupCol: 0, ValueCol: 1},
		}
		e1.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e1.reg, e1.c, spec) })
		for si := 0; si < 8; si++ {
			si := si
			e1.k.Spawn(fmt.Sprintf("s%d", si), func(p *sim.Proc) {
				src, _ := SourceOpen(p, e1.reg, "host-comb", si)
				for i := 0; i < perSource; i++ {
					_ = src.Push(p, mkTuple(int64(i%groups), 1))
				}
				src.Close(p)
			})
		}
		e1.k.Spawn("t", func(p *sim.Proc) {
			ct, _ := CombinerTargetOpen(p, e1.reg, "host-comb", 0)
			ct.Run(p)
			hostEnd = p.Now()
		})
		e1.run(t)
	}

	// In-network combiner, same workload.
	e2 := mkEnv()
	_, sharpEnd, _ := runSharp(t, e2, 8, perSource, groups)

	if sharpEnd >= hostEnd {
		t.Fatalf("in-network combiner (%v) not faster than end-host combiner (%v)", sharpEnd, hostEnd)
	}
}
