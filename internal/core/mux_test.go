package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dfi/internal/registry"
	"dfi/internal/sim"
	"dfi/internal/transport/sharedring"
)

// Shared-ring flow tests (Options.SharedRings): the connection-scaling
// data path of mux.go over the pool in transport/sharedring. The
// O(1000)-flow sweep lives in chaos_scale_test.go; these cover the
// basic semantics one flow at a time.

func sharedSpec(e *env, name string, srcNodes, tgtNodes []int, opt Options) FlowSpec {
	opt.SharedRings = true
	spec := FlowSpec{Name: name, Schema: kvSchema, Options: opt}
	for _, n := range srcNodes {
		spec.Sources = append(spec.Sources, Endpoint{Node: e.c.Node(n)})
	}
	for _, n := range tgtNodes {
		spec.Targets = append(spec.Targets, Endpoint{Node: e.c.Node(n)})
	}
	return spec
}

func TestSharedRingsShuffle(t *testing.T) {
	// Many-to-many shuffle over shared rings: same delivery contract as
	// the private-ring path (every key exactly once, correct bytes).
	e := newEnv(t, 4)
	spec := sharedSpec(e, "shared-nm", []int{0, 1}, []int{2, 3}, Options{SegmentSize: 256})
	const n = 2000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, 2*n)
}

func TestSharedRingsManyFlowsOneNodePair(t *testing.T) {
	// Several flows between one node pair multiplex over ONE shared ring:
	// all deliver fully, the pool holds a single link for the pair, and
	// credit accounting conserves across the co-resident streams.
	e := newEnv(t, 2)
	const flows, n = 6, 500
	results := make([]map[int64]int64, flows)
	specs := make([]FlowSpec, flows)
	for f := 0; f < flows; f++ {
		specs[f] = sharedSpec(e, fmt.Sprintf("shared-f%d", f), []int{0}, []int{1}, Options{
			SegmentSize:  128,
			Tenant:       fmt.Sprintf("tenant%d", f%3),
			TenantWeight: 1 + f%3,
		})
	}
	e.k.Spawn("init", func(p *sim.Proc) {
		for f := range specs {
			if err := FlowInit(p, e.reg, e.c, specs[f]); err != nil {
				t.Error(err)
			}
		}
	})
	for f := 0; f < flows; f++ {
		f := f
		results[f] = make(map[int64]int64)
		e.k.Spawn(fmt.Sprintf("src%d", f), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, specs[f].Name, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				key := int64(f*n + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := src.Close(p); err != nil {
				t.Error(err)
			}
		})
		e.k.Spawn(fmt.Sprintf("tgt%d", f), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, specs[f].Name, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				results[f][kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
			}
			if st := tgt.Stats(); !st.Done {
				t.Errorf("flow %d: target stopped before flow end", f)
			}
		})
	}
	e.run(t)
	for f := 0; f < flows; f++ {
		if len(results[f]) != n {
			t.Errorf("flow %d delivered %d tuples, want %d", f, len(results[f]), n)
		}
		for k, v := range results[f] {
			if v != 2*k {
				t.Errorf("flow %d: key %d has value %d, want %d", f, k, v, 2*k)
			}
		}
	}
	pool := sharedring.PoolOf(e.c, sharedring.Config{})
	links := pool.Links()
	if len(links) != 1 {
		t.Fatalf("pool holds %d links for one node pair, want 1", len(links))
	}
	if err := links[0].CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRingsEvictionReroute(t *testing.T) {
	// Administrative eviction of one target mid-burst: the source folds
	// the epoch in, re-routes its *staged* tuples over the survivor, and
	// completes cleanly. The in-flight shared-ring window is lost by
	// design (at-most-once across eviction), but the loss is bounded by
	// the ring geometry and nothing is ever duplicated.
	e := newEnv(t, 3)
	spec := sharedSpec(e, "shared-evict", []int{0}, []int{1, 2}, Options{
		SegmentSize: 128,
		LeaseTTL:    300 * time.Microsecond,
	})
	const n = 6000
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	var srcStats SourceStats
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			key := int64(i)
			if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			p.Sleep(100 * time.Nanosecond)
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		srcStats = src.Stats()
	})
	e.k.Spawn("chaos", func(p *sim.Proc) {
		p.Sleep(150 * time.Microsecond)
		if err := e.reg.Evict(p, spec.Name, registry.RoleTarget, 1); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	results := make([]map[int64]int64, 2)
	for ti := 0; ti < 2; ti++ {
		ti := ti
		results[ti] = make(map[int64]int64)
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				results[ti][kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
			}
			if ti == 0 {
				if st := tgt.Stats(); !st.Done {
					t.Error("survivor target stopped before flow end")
				}
			}
		})
	}
	e.run(t)
	seen := make(map[int64]bool)
	for ti, m := range results {
		for k, v := range m {
			if v != 2*k {
				t.Errorf("target %d: key %d has value %d, want %d", ti, k, v, 2*k)
			}
			if seen[k] {
				t.Errorf("key %d delivered twice across targets", k)
			}
			seen[k] = true
		}
	}
	// Loss bound: only segments in flight on the shared ring at eviction
	// time can vanish — at most Slots committed plus StagingCap staged at
	// the receiver (pool defaults), plus the segment being loaded, each
	// carrying SegmentSize/tupleSize tuples.
	cfg := sharedring.PoolOf(e.c, sharedring.Config{}).Config()
	perSeg := spec.Options.SegmentSize / kvSchema.TupleSize()
	bound := (cfg.Slots + cfg.StagingCap + 1) * perSeg
	if len(seen) < n-bound {
		t.Fatalf("delivered %d of %d tuples; lost more than the in-flight bound %d", len(seen), n, bound)
	}
	if len(results[0]) == 0 {
		t.Fatal("survivor target received nothing")
	}
	if srcStats.Rerouted == 0 && srcStats.Moved == 0 {
		t.Error("source recorded no rerouted or moved tuples despite mid-burst eviction")
	}
}

func TestSharedRingsLeaseAgentKeepsFlowsAlive(t *testing.T) {
	// Flows spanning many lease intervals stay alive on the batched
	// per-node renewals (no spurious expiry eviction), the registry sees
	// batched round trips, and the agent self-terminates (the kernel run
	// ending at all proves no immortal ticker is left).
	e := newEnv(t, 2)
	const flows, n = 4, 800
	specs := make([]FlowSpec, flows)
	for f := 0; f < flows; f++ {
		specs[f] = sharedSpec(e, fmt.Sprintf("leased-f%d", f), []int{0}, []int{1}, Options{
			SegmentSize: 128,
			LeaseTTL:    150 * time.Microsecond,
		})
	}
	delivered := make([]int, flows)
	e.k.Spawn("init", func(p *sim.Proc) {
		for f := range specs {
			if err := FlowInit(p, e.reg, e.c, specs[f]); err != nil {
				t.Error(err)
			}
		}
	})
	for f := 0; f < flows; f++ {
		f := f
		e.k.Spawn(fmt.Sprintf("src%d", f), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, specs[f].Name, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if err := src.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
					t.Errorf("flow %d push: %v", f, err)
					return
				}
				// Stretch the flow across many lease ticks.
				p.Sleep(500 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil {
				t.Errorf("flow %d close: %v", f, err)
			}
		})
		e.k.Spawn(fmt.Sprintf("tgt%d", f), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, specs[f].Name, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := tgt.Consume(p); !ok {
					break
				}
				delivered[f]++
			}
			if st := tgt.Stats(); !st.Done {
				t.Errorf("flow %d: target evicted or stalled instead of reaching flow end", f)
			}
		})
	}
	e.run(t)
	for f := 0; f < flows; f++ {
		if delivered[f] != n {
			t.Errorf("flow %d delivered %d tuples, want %d", f, delivered[f], n)
		}
	}
	if e.reg.LeaseRenewRPCs() == 0 {
		t.Fatal("no batched lease-renewal RPCs recorded despite LeaseTTL flows")
	}
}

func TestSharedRingsAdmission(t *testing.T) {
	// normalize rejects every private-ring feature up front, and tenant
	// attribution requires shared mode.
	base := func() FlowSpec {
		return FlowSpec{
			Name:    "adm",
			Sources: []Endpoint{{}},
			Targets: []Endpoint{{}},
			Schema:  kvSchema,
		}
	}
	cases := []struct {
		name string
		mut  func(*FlowSpec)
	}{
		{"tenant without shared", func(s *FlowSpec) { s.Options.Tenant = "x" }},
		{"weight without shared", func(s *FlowSpec) { s.Options.TenantWeight = 2 }},
		{"latency mode", func(s *FlowSpec) { s.Options.SharedRings = true; s.Options.Optimization = OptimizeLatency }},
		{"multicast", func(s *FlowSpec) {
			s.Options.SharedRings = true
			s.Type = ReplicateFlow
			s.Options.Multicast = true
		}},
		{"elastic", func(s *FlowSpec) { s.Options.SharedRings = true; s.Options.Elastic = true }},
		{"combiner", func(s *FlowSpec) {
			s.Options.SharedRings = true
			s.Type = CombinerFlow
			s.ShuffleKey = 0
		}},
		{"source timeout", func(s *FlowSpec) { s.Options.SharedRings = true; s.Options.SourceTimeout = time.Millisecond }},
		{"retransmit window", func(s *FlowSpec) { s.Options.SharedRings = true; s.Options.RetransmitTimeout = time.Millisecond }},
		{"negative weight", func(s *FlowSpec) { s.Options.SharedRings = true; s.Options.TenantWeight = -1 }},
	}
	for _, tc := range cases {
		spec := base()
		tc.mut(&spec)
		if err := spec.normalize(); err == nil {
			t.Errorf("%s: normalize accepted an invalid shared-ring spec", tc.name)
		}
	}
	// The happy path defaults tenant attribution.
	spec := base()
	spec.Options.SharedRings = true
	if err := spec.normalize(); err != nil {
		t.Fatalf("valid shared spec rejected: %v", err)
	}
	if spec.Options.Tenant != "default" || spec.Options.TenantWeight != 1 {
		t.Fatalf("tenant defaults = %q/%d, want default/1", spec.Options.Tenant, spec.Options.TenantWeight)
	}
}

func TestSharedRingsUnsupportedOps(t *testing.T) {
	// Reserve/Checkpoint/Reattach have no meaning without a private ring
	// or a retransmit window; they must fail fast with the typed sentinel.
	e := newEnv(t, 2)
	spec := sharedSpec(e, "shared-unsup", []int{0}, []int{1}, Options{SegmentSize: 256})
	const n = 100
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := src.Reserve(p, 4); !errors.Is(err, ErrUnsupportedOnShared) {
			t.Errorf("Reserve error %v, want ErrUnsupportedOnShared", err)
		}
		if _, err := src.ReserveTo(p, 0, 4); !errors.Is(err, ErrUnsupportedOnShared) {
			t.Errorf("ReserveTo error %v, want ErrUnsupportedOnShared", err)
		}
		if _, err := src.Checkpoint(p); !errors.Is(err, ErrUnsupportedOnShared) {
			t.Errorf("Checkpoint error %v, want ErrUnsupportedOnShared", err)
		}
		if _, _, err := src.Reattach(p); !errors.Is(err, ErrUnsupportedOnShared) {
			t.Errorf("Source.Reattach error %v, want ErrUnsupportedOnShared", err)
		}
		for i := 0; i < n; i++ {
			if err := src.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := src.Close(p); err != nil {
			t.Error(err)
		}
	})
	got := 0
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := tgt.Reattach(p); !errors.Is(err, ErrUnsupportedOnShared) {
			t.Errorf("Target.Reattach error %v, want ErrUnsupportedOnShared", err)
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
			got++
		}
	})
	e.run(t)
	if got != n {
		t.Fatalf("delivered %d tuples, want %d", got, n)
	}
}
