package core

import (
	"runtime"
	"testing"

	"dfi/internal/sim"
)

// TestSteadyStatePushConsumeZeroAlloc is the allocation gate for the data
// path: once a flow reaches steady state, pushing and consuming tuples must
// not allocate. Every moving part — the kernel's event heap, pooled
// write/read ops, staging buffers, completion-queue rings, cond waiter
// slices — reaches its high-water mark during warm-up; a nonzero delta
// afterwards means a per-delivery allocation crept back in (the regression
// this PR's burst path removed: closure captures in event posting,
// per-segment header slices, completion reslicing).
//
// The measurement window is bracketed by the consumer: between tuple W and
// tuple W+N it observes every consume and, by backpressure, essentially all
// the pushes that produced them. A small fixed slack absorbs one-off
// runtime-internal allocations; it is far below one allocation per segment,
// let alone per tuple.
func TestSteadyStatePushConsumeZeroAlloc(t *testing.T) {
	const (
		warmup  = 30_000
		window  = 30_000
		total   = warmup + 2*window
		maxSlop = 8 // allocations tolerated across the whole window
	)
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "steady",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	tup := mkTuple(7, 11) // reused: Push copies, it must not retain src
	var before, after runtime.MemStats
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "steady", 0)
		for i := 0; i < total; i++ {
			_ = src.Push(p, tup)
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "steady", 0)
		consumed := 0
		for {
			if consumed == warmup {
				runtime.ReadMemStats(&before)
			}
			if consumed == warmup+window {
				runtime.ReadMemStats(&after)
			}
			if _, ok := tgt.Consume(p); !ok {
				return
			}
			consumed++
		}
	})
	e.run(t)
	allocs := after.Mallocs - before.Mallocs
	if allocs > maxSlop {
		t.Fatalf("steady-state push/consume allocated %d times over %d tuples (want 0, slack %d)",
			allocs, window, maxSlop)
	}
}
