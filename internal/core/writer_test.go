package core

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/sim"
)

// TestDeepBacklogExactDelivery is the regression test for the stale
// footer-probe bug: with many sources fanning into few consumption-bound
// targets, the source NICs accumulate deep write backlogs, and a footer
// probe on the fast control lane can overtake the very write it probes.
// Without the footer sequence check the probe then reads the previous
// lap's cleared footer, falsely reclaims unconsumed slots, and segments
// get overwritten (lost tuples) — or the ring state desynchronizes into a
// livelock.
func TestDeepBacklogExactDelivery(t *testing.T) {
	e := newEnv(t, 5)
	spec := FlowSpec{
		Name:    "backlog",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Targets: []Endpoint{{Node: e.c.Node(4), Thread: 0}, {Node: e.c.Node(4), Thread: 1}},
		Schema:  kvSchema,
		Options: Options{
			// Slow consumption guarantees full rings and deep backlogs.
			ConsumeCost: 120 * time.Nanosecond,
		},
	}
	const perSource = 30_000
	got := make(map[int64]bool)
	dups := 0
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 4; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, "backlog", si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Error(err)
					return
				}
			}
			src.Close(p)
		})
	}
	for ti := 0; ti < 2; ti++ {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, "backlog", ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				k := kvSchema.Int64(tup, 0)
				if got[k] {
					dups++
				}
				got[k] = true
			}
		})
	}
	e.run(t)
	if dups > 0 {
		t.Fatalf("%d duplicate deliveries (slot reclaimed before consumption)", dups)
	}
	if len(got) != 4*perSource {
		t.Fatalf("delivered %d unique tuples, want %d (segments lost to premature reclaim)", len(got), 4*perSource)
	}
}

// TestWriterSelectiveSignalingAmortization verifies that bandwidth-mode
// writers signal only a fraction of their writes (selective signaling,
// paper §5.2) instead of per segment.
func TestWriterSelectiveSignalingAmortization(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "sig",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	const n = 20000 // ≈ 40 segments of 512 tuples
	var signaled int
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "sig", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		src.Close(p)
		for _, w := range src.writers {
			// completedW advances only through signaled completions; the
			// signal cadence is sigEvery.
			if w.sigEvery < 2 {
				t.Errorf("sigEvery = %d, want amortized signaling", w.sigEvery)
			}
			signaled = int(w.written) / w.sigEvery
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "sig", 0)
		for {
			if _, _, ok := tgt.ConsumeSegment(p); !ok {
				return
			}
		}
	})
	e.run(t)
	if signaled == 0 || signaled > n/16/2 {
		t.Fatalf("signaled completions ≈ %d for %d segments — not selective", signaled, n)
	}
}

// TestWriterProbeAmortization: when the consumer keeps pace, the writer
// issues far fewer footer-probe READs than segments written (the
// half-window read-ahead), not one per segment. (When the consumer is the
// bottleneck the writer intentionally polls with randomized backoff, so
// amortization is only promised at balance.)
func TestWriterProbeAmortization(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "probe",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
	}
	const n = 60000
	var probes, segments int
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "probe", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
		}
		src.Close(p)
		pr, _, _ := src.ProbeStats()
		probes = pr
		for _, w := range src.writers {
			segments = int(w.written)
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "probe", 0)
		for {
			if _, _, ok := tgt.ConsumeSegment(p); !ok {
				return
			}
		}
	})
	e.run(t)
	if segments == 0 {
		t.Fatal("no segments written")
	}
	// Half-window read-ahead: roughly one probe per nSegs/2 = 16 segments
	// at balance; allow slack for start-up and drain phases.
	if probes > segments/2 {
		t.Fatalf("%d probes for %d segments — reclaim not amortized", probes, segments)
	}
}

// TestLatencyModeCreditRefresh verifies that latency-optimized writers
// stay under the ring budget: sent minus the target's consumed counter
// never exceeds the ring size.
func TestLatencyModeCreditBound(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "credit",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{Optimization: OptimizeLatency, SegmentsPerRing: 8},
	}
	const n = 400
	delivered := 0
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("src", func(p *sim.Proc) {
		src, _ := SourceOpen(p, e.reg, "credit", 0)
		for i := 0; i < n; i++ {
			_ = src.Push(p, mkTuple(int64(i), 0))
			for _, w := range src.writers {
				if out := int(w.sent) - int(w.credits); out > 2*8 {
					// sent - credits is a loose proxy; the hard invariant
					// is credits never below zero.
				}
				if w.credits < 0 {
					t.Errorf("credits went negative: %d", w.credits)
				}
			}
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "credit", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
			delivered++
			p.Sleep(time.Microsecond) // slow consumer forces credit exhaustion
		}
	})
	e.run(t)
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
}
