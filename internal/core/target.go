package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// pollTimeout bounds one wait on the target's memory region before the
// consume loop re-checks all rings (a safety net; commits wake the waiter
// directly).
const pollTimeout = 100 * time.Microsecond

// Target is a thread-level exit point of a flow. Each target owns one
// private ring per source inside a single registered memory region; it
// consumes segments in ring order per source and round-robins across
// sources (the nextRing() of paper Figure 4).
type Target struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node *fabric.Node

	mr      *fabric.MemoryRegion
	geom    ringGeom
	readers []*ringReader
	cur     int

	// Iteration state over the currently loaded segment.
	active    *ringReader
	segData   []byte
	segOff    int
	remaining int
	tupleSize int

	mc *mcTarget // multicast replicate transport, if enabled

	// Control-plane membership (see lifecycle.go): the flow's record,
	// the last epoch folded in, and whether this target was evicted.
	mem     *registry.Membership
	epoch   uint64
	evicted bool

	consumed uint64
	done     bool
}

// ringReader tracks consumption of one source's ring.
type ringReader struct {
	ringOff  int
	rslot    int
	consumed uint64 // segments consumed, mirrored into the ring header
	closed   bool

	// Failure detection (Options.SourceTimeout). hasActivity
	// distinguishes "never heard from" (grace period pending) from a ring
	// legitimately active at virtual time zero — sim.Time starts at 0, so
	// lastActivity alone cannot encode "unset".
	hasActivity  bool
	lastActivity sim.Time
	failed       bool
}

// TargetOpen attaches to target slot targetIdx of the named flow. It
// allocates the target-side receive buffers (one ring per source) and
// publishes their addresses for sources to connect. For combiner flows use
// CombinerTargetOpen instead.
func TargetOpen(p *sim.Proc, reg *registry.Registry, name string, targetIdx int) (*Target, error) {
	meta := lookupFlow(p, reg, name)
	spec := &meta.spec
	if targetIdx < 0 || targetIdx >= len(spec.Targets) {
		return nil, fmt.Errorf("dfi: target index %d out of range for flow %q", targetIdx, name)
	}
	t := &Target{
		meta:      meta,
		spec:      spec,
		idx:       targetIdx,
		node:      spec.Targets[targetIdx].Node,
		tupleSize: spec.Schema.TupleSize(),
	}
	if spec.Options.Multicast {
		mc, err := newMcTarget(p, reg, meta, targetIdx)
		if err != nil {
			return nil, err
		}
		t.mc = mc
		return t, nil
	}
	t.geom = ringGeom{segSize: spec.Options.SegmentSize, nSegs: spec.Options.SegmentsPerRing}
	nSources := len(spec.Sources)
	if spec.Options.Elastic {
		// Elastic flows pre-provision rings for every possible slot.
		nSources = spec.Options.MaxSources
	}
	t.mr = meta.cluster.RegisterMemory(t.node, nSources*t.geom.ringLen())
	info := &targetInfo{mr: t.mr, geom: t.geom}
	for i := 0; i < nSources; i++ {
		off := i * t.geom.ringLen()
		info.ringOffs = append(info.ringOffs, off)
		t.readers = append(t.readers, &ringReader{ringOff: off})
	}
	t.mem = reg.MembershipOf(name)
	if t.mem != nil {
		t.epoch = t.mem.Epoch()
	}
	if err := t.acquireTargetLease(p, reg, name); err != nil {
		return nil, err
	}
	if err := reg.PublishTarget(p, name, targetIdx, info); err != nil {
		return nil, err
	}
	return t, nil
}

// Schema returns the flow's tuple schema.
func (t *Target) Schema() *schema.Schema { return t.spec.Schema }

// footer returns the footer bytes of reader r's current slot.
func (t *Target) footer(r *ringReader) []byte {
	off := r.ringOff + t.geom.segOff(r.rslot) + t.geom.segSize
	return t.mr.Bytes()[off : off+footerBytes]
}

// payload returns the payload bytes of reader r's current slot.
func (t *Target) payload(r *ringReader, fill int) []byte {
	off := r.ringOff + t.geom.segOff(r.rslot)
	return t.mr.Bytes()[off : off+fill]
}

// release marks reader r's current slot writable again and advances the
// ring: the footer flag is cleared (sources verify it with RDMA READs) and
// the ring-header consumed counter is bumped (latency-mode credit
// back-channel). Local stores by the owning node are free.
func (t *Target) release(r *ringReader) {
	f := t.footer(r)
	f[4] = 0
	r.consumed++
	binary.LittleEndian.PutUint64(t.mr.Bytes()[r.ringOff:r.ringOff+8], r.consumed)
	r.rslot = (r.rslot + 1) % t.geom.nSegs
}

// loadSegment makes reader r's current slot the active segment if it is
// consumable, releasing handled end-markers. It reports whether tuples
// became available.
func (t *Target) loadSegment(p *sim.Proc, r *ringReader) bool {
	f := t.footer(r)
	if f[4]&flagConsumable == 0 {
		return false
	}
	// The footer sequence number must match this lap's expected segment.
	// A mismatch means the slot holds stale data from a previous lap —
	// typically a retransmission or fault-injected duplicate of a segment
	// already consumed — which must not be consumed twice. The slot stays
	// blocked until the writer's current-lap WRITE overwrites it.
	if seq := binary.LittleEndian.Uint64(f[8:16]); seq != r.consumed {
		return false
	}
	fill := int(binary.LittleEndian.Uint32(f[0:4]))
	end := f[4]&flagEndOfFlow != 0
	if end {
		r.closed = true
	}
	if fill == 0 {
		r.hasActivity = true
		r.lastActivity = p.Now()
		t.release(r)
		return false
	}
	count := fill / t.tupleSize
	r.hasActivity = true
	r.lastActivity = p.Now()
	t.node.Compute(p, time.Duration(count)*t.spec.Options.ConsumeCost)
	t.active = r
	t.segData = t.payload(r, fill)
	t.segOff = 0
	t.remaining = count
	return true
}

// nextSegment scans rings round-robin for a consumable segment, blocking
// on the memory region while none is available. It returns false when all
// sources have closed (flow end).
func (t *Target) nextSegment(p *sim.Proc) bool {
	if t.active != nil {
		t.release(t.active)
		t.active = nil
	}
	for {
		if t.syncMembership() {
			// Evicted from the membership: the survivors have taken over
			// this target's key range; stop consuming.
			t.done = true
			return false
		}
		seq := t.mr.CommitSeq()
		if t.spec.Options.Elastic {
			loaded, done := t.elasticScan(p)
			if loaded {
				return true
			}
			if done {
				t.done = true
				return false
			}
			// Membership changes (attach/seal) are detected within one
			// poll timeout at most.
			t.mr.WaitCommit(p, seq, pollTimeout)
			continue
		}
		open := 0
		for range t.readers {
			r := t.readers[t.cur]
			t.cur = (t.cur + 1) % len(t.readers)
			if r.closed {
				continue
			}
			open++
			if t.loadSegment(p, r) {
				return true
			}
			// loadSegment may have just closed this ring via an end marker.
			if r.closed {
				open--
			}
		}
		if open == 0 {
			t.done = true
			return false
		}
		t.detectFailures(p, len(t.readers))
		// Commits that landed while this scan charged CPU bump the
		// sequence number, so the wait returns immediately — no lost
		// wake-ups.
		t.mr.WaitCommit(p, seq, pollTimeout)
	}
}

// Consume returns the next tuple from the flow, or ok=false once every
// source has closed (FLOW_END). The returned tuple is a zero-copy view
// into the receive ring, valid until the segment is recycled on a later
// Consume call — process or copy it before draining past the segment.
func (t *Target) Consume(p *sim.Proc) (schema.Tuple, bool) {
	if t.mc != nil {
		tup, ok := t.mc.consume(p)
		if ok {
			t.consumed++
		} else if t.mc.done {
			t.done = true
		}
		return tup, ok
	}
	if t.done {
		return nil, false
	}
	for t.remaining == 0 {
		if !t.nextSegment(p) {
			return nil, false
		}
	}
	tup := schema.Tuple(t.segData[t.segOff : t.segOff+t.tupleSize])
	t.segOff += t.tupleSize
	t.remaining--
	t.consumed++
	return tup, true
}

// ConsumeSegment returns the next whole consumable segment as a raw tuple
// batch (zero-copy), the higher-throughput interface used by the join
// implementations. The previous segment is recycled.
func (t *Target) ConsumeSegment(p *sim.Proc) (data []byte, count int, ok bool) {
	if t.mc != nil {
		data, count, ok := t.mc.consumeSegment(p)
		if ok {
			t.consumed += uint64(count)
		} else if t.mc.done {
			t.done = true
		}
		return data, count, ok
	}
	if t.done {
		return nil, 0, false
	}
	if t.remaining > 0 {
		// A partially iterated segment: hand out the rest as a batch.
		data, count = t.segData[t.segOff:], t.remaining
		t.segOff = len(t.segData)
		t.remaining = 0
		t.consumed += uint64(count)
		return data, count, true
	}
	if !t.nextSegment(p) {
		return nil, 0, false
	}
	data, count = t.segData, t.remaining
	t.segOff = len(t.segData)
	t.remaining = 0
	t.consumed += uint64(count)
	return data, count, true
}

// PendingGap reports a sequence gap detected by an ordered replicate flow
// with NotifyGaps set; Consume returns ok=false and the application checks
// PendingGap.
func (t *Target) PendingGap() (Gap, bool) {
	if t.mc == nil {
		return Gap{}, false
	}
	return t.mc.pendingGap()
}

// detectFailures closes rings whose sources have been silent beyond the
// configured SourceTimeout (failure detection; see Options.SourceTimeout).
func (t *Target) detectFailures(p *sim.Proc, n int) {
	timeout := t.spec.Options.SourceTimeout
	if timeout <= 0 {
		return
	}
	for _, r := range t.readers[:n] {
		if r.closed {
			continue
		}
		if !r.hasActivity {
			// Grace period starts at the first check. (Checked with an
			// explicit flag: virtual time starts at 0, so a ring that was
			// genuinely active at t=0 would otherwise restart its grace
			// period here and escape detection.)
			r.hasActivity = true
			r.lastActivity = p.Now()
			continue
		}
		if p.Now()-r.lastActivity > timeout {
			r.closed = true
			r.failed = true
		}
	}
}

// FailedSources returns the source slots the target declared failed via
// SourceTimeout, in slot order. Covers both transports: ring readers and
// the multicast replicate path.
func (t *Target) FailedSources() []int {
	if t.mc != nil {
		return t.mc.failedSources()
	}
	var out []int
	for i, r := range t.readers {
		if r.failed {
			out = append(out, i)
		}
	}
	return out
}

// Consumed returns the number of tuples consumed so far.
func (t *Target) Consumed() uint64 { return t.consumed }

// Done reports whether the flow has ended at this target.
func (t *Target) Done() bool { return t.done }

// Free deregisters the target's receive buffers (after flow end).
func (t *Target) Free() {
	if t.mr != nil {
		t.mr.Deregister()
	}
	if t.mc != nil {
		t.mc.free()
	}
}

// ResolveGap skips a surfaced gap (the application agreed to treat the
// missing sequence number as a no-op, e.g. after NOPaxos gap agreement).
func (t *Target) ResolveGap(p *sim.Proc) {
	if t.mc != nil {
		t.mc.resolveGap(p)
	}
}

// RequestGapRetransmit asks the sources to resend a surfaced gap instead
// of skipping it; consumption resumes once the segment arrives.
func (t *Target) RequestGapRetransmit(p *sim.Proc) {
	if t.mc != nil {
		t.mc.requestGapRetransmit(p)
	}
}
