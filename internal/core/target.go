package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
)

// pollTimeout bounds one wait on the target's memory region before the
// consume loop re-checks all rings (a safety net; commits wake the waiter
// directly).
const pollTimeout = 100 * time.Microsecond

// zeroFlag is the store source used to clear footer flags; package-level so
// release stays allocation-free (Region.Store only reads it).
var zeroFlag [1]byte

// Target is a thread-level exit point of a flow. Each target owns one
// private ring per source inside a single registered memory region; it
// consumes segments in ring order per source and round-robins across
// sources (the nextRing() of paper Figure 4).
type Target struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node transport.Endpoint
	reg  Registry

	mr      transport.Region
	geom    ringGeom
	readers []*ringReader
	cur     int

	// Iteration state over the currently loaded segment.
	active    *ringReader
	segData   []byte
	segOff    int
	remaining int
	tupleSize int

	mc  *mcTarget  // multicast replicate transport, if enabled
	mux *muxTarget // shared-ring transport (Options.SharedRings), if enabled

	// Control-plane membership (see lifecycle.go): the flow's record,
	// the last epoch folded in, and whether this target was evicted.
	mem     *registry.Membership
	epoch   uint64
	evicted bool

	// Scrape-visible counters (atomic so a metrics endpoint can read
	// them while the flow runs).
	consumed atomic.Uint64
	done     atomic.Bool

	// resumedFrom is the consumption watermark carried over from the
	// previous incarnation by Reattach (0 for a first attachment).
	resumedFrom uint64

	// Event tracing (nil unless the application installed a sink on the
	// registry).
	events metrics.EventSink
	evNode string

	// Scratch buffers for Region.Load/Store of footer and header bytes
	// (kept on the struct so the hot consume path does not allocate).
	footerScratch [footerBytes]byte
	hdrScratch    [8]byte
}

// ringReader tracks consumption of one source's ring.
type ringReader struct {
	ringOff  int
	rslot    int
	consumed atomic.Uint64 // segments consumed, mirrored into the ring header
	closed   bool

	// inc is the source incarnation this ring's state belongs to; a
	// membership bump means the source rejoined and the ring is reset
	// for its new stream (see Target.resetRing).
	inc uint64

	// Failure detection (Options.SourceTimeout). hasActivity
	// distinguishes "never heard from" (grace period pending) from a ring
	// legitimately active at virtual time zero — time.Duration starts at 0, so
	// lastActivity alone cannot encode "unset".
	hasActivity  bool
	lastActivity time.Duration
	failed       atomic.Bool
}

// TargetOpen attaches to target slot targetIdx of the named flow. It
// allocates the target-side receive buffers (one ring per source) and
// publishes their addresses for sources to connect. For combiner flows use
// CombinerTargetOpen instead.
func TargetOpen(p transport.Ctx, reg Registry, name string, targetIdx int) (*Target, error) {
	meta := lookupFlow(p, reg, name)
	spec := &meta.spec
	if targetIdx < 0 || targetIdx >= len(spec.Targets) {
		return nil, fmt.Errorf("dfi: target index %d out of range for flow %q", targetIdx, name)
	}
	t := &Target{
		meta:      meta,
		spec:      spec,
		idx:       targetIdx,
		node:      spec.Targets[targetIdx].Node,
		tupleSize: spec.Schema.TupleSize(),
	}
	t.reg = reg
	if spec.Options.Multicast {
		mc, err := newMcTarget(p, reg, meta, targetIdx)
		if err != nil {
			return nil, err
		}
		t.mc = mc
		if err := t.acquireTargetLease(p, reg, name); err != nil {
			return nil, err
		}
		return t, nil
	}
	if sink := reg.EventSink(); sink != nil {
		t.events = sink
		t.evNode = fmt.Sprintf("node%d", t.node.ID())
	}
	if spec.Options.SharedRings {
		mux, err := newMuxTarget(p, reg, meta, t)
		if err != nil {
			return nil, err
		}
		t.mux = mux
		if err := t.acquireTargetLease(p, reg, name); err != nil {
			return nil, err
		}
		if err := reg.PublishTarget(p, name, targetIdx, &muxTargetInfo{}); err != nil {
			return nil, err
		}
		return t, nil
	}
	t.geom = spec.Options.ringGeometry()
	info := t.allocRings()
	t.initTargetMembership(reg.MembershipOf(name))
	if err := t.acquireTargetLease(p, reg, name); err != nil {
		return nil, err
	}
	if err := reg.PublishTarget(p, name, targetIdx, info); err != nil {
		return nil, err
	}
	return t, nil
}

// allocRings allocates the target's receive memory — one ring per
// source slot (every possible slot on elastic flows) — and returns the
// connection info to publish.
func (t *Target) allocRings() *targetInfo {
	nSources := len(t.spec.Sources)
	if t.spec.Options.Elastic {
		nSources = t.spec.Options.MaxSources
	}
	t.mr = t.meta.cluster.OpenRegion(t.node, nSources*t.geom.ringLen())
	info := &targetInfo{mr: t.mr, geom: t.geom}
	for i := 0; i < nSources; i++ {
		off := i * t.geom.ringLen()
		info.ringOffs = append(info.ringOffs, off)
		t.readers = append(t.readers, &ringReader{ringOff: off})
	}
	return info
}

// initTargetMembership snapshots the membership the fresh rings attach
// under: the current epoch, per-reader source incarnations, and rings
// of already-evicted sources closed up front (a re-attaching target
// missed those epochs while it was down).
func (t *Target) initTargetMembership(mem *registry.Membership) {
	t.mem = mem
	if mem == nil {
		return
	}
	t.epoch = mem.Epoch()
	for i, r := range t.readers {
		r.inc = mem.Incarnation(registry.RoleSource, i)
		if mem.SourceEvicted(i) {
			r.closed = true
			r.failed.Store(true)
		} else if mem.State(registry.RoleSource, i) == registry.StateLeft {
			// The source finished and released its lease while this target
			// was down; its end-of-flow marker went to the previous
			// incarnation's rings.
			r.closed = true
		}
	}
}

// closeLeftRings closes rings whose sources left the flow gracefully
// (released their leases after Close). A first attachment sees the
// end-of-flow marker in the ring itself; a re-attached target may have
// missed it — the marker went to the previous incarnation's rings — and
// would otherwise wait forever on a source that no longer exists. A Left
// source has confirmed every data segment consumed (Close confirms
// before the marker goes out), so only the marker can be skipped here.
func (t *Target) closeLeftRings(n int) {
	if t.mem == nil {
		return
	}
	for i, r := range t.readers[:n] {
		if !r.closed && t.mem.State(registry.RoleSource, i) == registry.StateLeft {
			r.closed = true
		}
	}
}

// Schema returns the flow's tuple schema.
func (t *Target) Schema() *schema.Schema { return t.spec.Schema }

// footerOff returns the region offset of reader r's current slot footer.
func (t *Target) footerOff(r *ringReader) int {
	return r.ringOff + t.geom.segOff(r.rslot) + t.geom.segSize
}

// loadFooter snapshots the footer bytes of reader r's current slot into
// the target's scratch buffer. Footer bytes are written by remote WRITEs
// while the target polls them, so the read goes through Region.Load,
// which synchronizes with in-flight commits on concurrent backends (and
// is a plain copy on the DES fabric).
func (t *Target) loadFooter(r *ringReader) []byte {
	t.mr.Load(t.footerOff(r), t.footerScratch[:])
	return t.footerScratch[:]
}

// payload returns the payload bytes of reader r's current slot.
func (t *Target) payload(r *ringReader, fill int) []byte {
	off := r.ringOff + t.geom.segOff(r.rslot)
	return t.mr.Bytes()[off : off+fill]
}

// resetRing restarts reader r for a rejoined source's new incarnation:
// consumption state returns to slot 0 / sequence 0, failure detection
// starts over, and every footer plus the header counter is zeroed with
// local stores (free on the owning node) so stale segments from the
// previous incarnation can never satisfy the consumable check. A WRITE
// from the new writer racing the reset is healed by the writer's
// retransmission machinery (Reattach requires RetransmitTimeout).
func (t *Target) resetRing(r *ringReader) {
	r.closed = false
	r.failed.Store(false)
	r.consumed.Store(0)
	r.rslot = 0
	r.hasActivity = false
	var zero [footerBytes]byte
	for i := 0; i < t.geom.nSegs; i++ {
		off := r.ringOff + t.geom.segOff(i) + t.geom.segSize
		t.mr.Store(off, zero[:])
	}
	t.mr.Store(r.ringOff, zero[:8])
}

// release marks reader r's current slot writable again and advances the
// ring: the footer flag is cleared (sources verify it with RDMA READs) and
// the ring-header consumed counter is bumped (latency-mode credit
// back-channel). Local stores by the owning node are free.
func (t *Target) release(r *ringReader) {
	// The footer flag is remotely READ by writer probes and the header
	// counter by credit reads, so both stores go through Region.Store.
	t.mr.Store(t.footerOff(r)+4, zeroFlag[:])
	binary.LittleEndian.PutUint64(t.hdrScratch[:], r.consumed.Add(1))
	t.mr.Store(r.ringOff, t.hdrScratch[:])
	r.rslot = (r.rslot + 1) % t.geom.nSegs
}

// loadSegment makes reader r's current slot the active segment if it is
// consumable, releasing handled end-markers. It reports whether tuples
// became available.
func (t *Target) loadSegment(p transport.Ctx, r *ringReader) bool {
	f := t.loadFooter(r)
	if f[4]&flagConsumable == 0 {
		return false
	}
	// The footer sequence number must match this lap's expected segment.
	// A mismatch means the slot holds stale data from a previous lap —
	// typically a retransmission or fault-injected duplicate of a segment
	// already consumed — which must not be consumed twice. The slot stays
	// blocked until the writer's current-lap WRITE overwrites it.
	seq := binary.LittleEndian.Uint64(f[8:16])
	if seq != r.consumed.Load() {
		return false
	}
	fill := int(binary.LittleEndian.Uint32(f[0:4]))
	end := f[4]&flagEndOfFlow != 0
	if end {
		r.closed = true
	}
	if t.events != nil {
		t.events.Emit(metrics.Event{
			T: p.Now(), Node: t.evNode, Type: metrics.EvFooterCommit,
			Flow: t.spec.Name, Epoch: t.epoch, Role: "target",
			Slot: t.idx, Seq: seq, Bytes: uint64(fill),
		})
	}
	if fill == 0 {
		r.hasActivity = true
		r.lastActivity = p.Now()
		t.release(r)
		return false
	}
	count := fill / t.tupleSize
	r.hasActivity = true
	r.lastActivity = p.Now()
	t.node.Compute(p, time.Duration(count)*t.spec.Options.ConsumeCost)
	t.active = r
	t.segData = t.payload(r, fill)
	t.segOff = 0
	t.remaining = count
	return true
}

// nextSegment scans rings round-robin for a consumable segment, blocking
// on the memory region while none is available. It returns false when all
// sources have closed (flow end).
func (t *Target) nextSegment(p transport.Ctx) bool {
	if t.active != nil {
		t.release(t.active)
		t.active = nil
	}
	for {
		if t.syncMembership() {
			// Evicted from the membership: the survivors have taken over
			// this target's key range; stop consuming.
			t.done.Store(true)
			return false
		}
		seq := t.mr.CommitSeq()
		if t.spec.Options.Elastic {
			loaded, done := t.elasticScan(p)
			if loaded {
				return true
			}
			if done {
				t.done.Store(true)
				return false
			}
			// Membership changes (attach/seal) are detected within one
			// poll timeout at most.
			t.mr.WaitCommit(p, seq, pollTimeout)
			continue
		}
		open := 0
		for range t.readers {
			r := t.readers[t.cur]
			t.cur = (t.cur + 1) % len(t.readers)
			if r.closed {
				continue
			}
			open++
			if t.loadSegment(p, r) {
				return true
			}
			// loadSegment may have just closed this ring via an end marker.
			if r.closed {
				open--
			}
		}
		if open == 0 {
			t.done.Store(true)
			return false
		}
		t.detectFailures(p, len(t.readers))
		t.closeLeftRings(len(t.readers))
		// Commits that landed while this scan charged CPU bump the
		// sequence number, so the wait returns immediately — no lost
		// wake-ups.
		t.mr.WaitCommit(p, seq, pollTimeout)
	}
}

// Consume returns the next tuple from the flow, or ok=false once every
// source has closed (FLOW_END). The returned tuple is a zero-copy view
// into the receive ring, valid until the segment is recycled on a later
// Consume call — process or copy it before draining past the segment.
func (t *Target) Consume(p transport.Ctx) (schema.Tuple, bool) {
	if t.mc != nil {
		tup, ok := t.mc.consume(p)
		if ok {
			t.consumed.Add(1)
		} else if t.mc.evicted {
			t.evicted = true
		} else if t.mc.done {
			t.done.Store(true)
		}
		return tup, ok
	}
	if t.mux != nil {
		tup, ok := t.mux.consume(p)
		if ok {
			t.consumed.Add(1)
		} else if t.mux.evicted {
			t.evicted = true
		} else if t.mux.done {
			t.done.Store(true)
		}
		return tup, ok
	}
	if t.done.Load() {
		return nil, false
	}
	for t.remaining == 0 {
		if !t.nextSegment(p) {
			return nil, false
		}
	}
	tup := schema.Tuple(t.segData[t.segOff : t.segOff+t.tupleSize])
	t.segOff += t.tupleSize
	t.remaining--
	t.consumed.Add(1)
	return tup, true
}

// ConsumeSegment returns the next whole consumable segment as a raw tuple
// batch (zero-copy), the higher-throughput interface used by the join
// implementations. The previous segment is recycled.
func (t *Target) ConsumeSegment(p transport.Ctx) (data []byte, count int, ok bool) {
	if t.mc != nil {
		data, count, ok := t.mc.consumeSegment(p)
		if ok {
			t.consumed.Add(uint64(count))
		} else if t.mc.evicted {
			t.evicted = true
		} else if t.mc.done {
			t.done.Store(true)
		}
		return data, count, ok
	}
	if t.mux != nil {
		data, count, ok := t.mux.consumeSegment(p)
		if ok {
			t.consumed.Add(uint64(count))
		} else if t.mux.evicted {
			t.evicted = true
		} else if t.mux.done {
			t.done.Store(true)
		}
		return data, count, ok
	}
	if t.done.Load() {
		return nil, 0, false
	}
	if t.remaining > 0 {
		// A partially iterated segment: hand out the rest as a batch.
		data, count = t.segData[t.segOff:], t.remaining
		t.segOff = len(t.segData)
		t.remaining = 0
		t.consumed.Add(uint64(count))
		return data, count, true
	}
	if !t.nextSegment(p) {
		return nil, 0, false
	}
	data, count = t.segData, t.remaining
	t.segOff = len(t.segData)
	t.remaining = 0
	t.consumed.Add(uint64(count))
	return data, count, true
}

// PendingGap reports a sequence gap detected by an ordered replicate flow
// with NotifyGaps set; Consume returns ok=false and the application checks
// PendingGap.
func (t *Target) PendingGap() (Gap, bool) {
	if t.mc == nil {
		return Gap{}, false
	}
	return t.mc.pendingGap()
}

// detectFailures closes rings whose sources have been silent beyond the
// configured SourceTimeout (failure detection; see Options.SourceTimeout).
func (t *Target) detectFailures(p transport.Ctx, n int) {
	timeout := t.spec.Options.SourceTimeout
	if timeout <= 0 {
		return
	}
	for _, r := range t.readers[:n] {
		if r.closed {
			continue
		}
		if !r.hasActivity {
			// Grace period starts at the first check. (Checked with an
			// explicit flag: virtual time starts at 0, so a ring that was
			// genuinely active at t=0 would otherwise restart its grace
			// period here and escape detection.)
			r.hasActivity = true
			r.lastActivity = p.Now()
			continue
		}
		if p.Now()-r.lastActivity > timeout {
			r.closed = true
			r.failed.Store(true)
		}
	}
}

// FailedSources returns the source slots the target declared failed via
// SourceTimeout, in slot order. Covers both transports: ring readers and
// the multicast replicate path.
func (t *Target) FailedSources() []int {
	if t.mc != nil {
		return t.mc.failedSources()
	}
	if t.mux != nil {
		return t.mux.failedSources()
	}
	var out []int
	for i, r := range t.readers {
		if r.failed.Load() {
			out = append(out, i)
		}
	}
	return out
}

// Consumed returns the number of tuples consumed so far.
func (t *Target) Consumed() uint64 { return t.consumed.Load() }

// ResumedFrom returns the consumption watermark the target carried over
// from its previous incarnation via Reattach (0 for a first
// attachment). Consumed counts only the current incarnation's tuples.
func (t *Target) ResumedFrom() uint64 { return t.resumedFrom }

// Slot returns the target's slot index within the flow.
func (t *Target) Slot() int { return t.idx }

// Reattach rejoins the flow after this target was evicted, reclaiming
// its old slot under a fresh incarnation: new rings are allocated and
// republished, then the registry Rejoin bumps the flow epoch so every
// source reconnects — under ring partitioning the slot takes back
// exactly the arcs it lost, under modulo its keys rehash home. The
// returned Target resumes consumption; ResumedFrom reports the previous
// incarnation's consumed count. Tuples in flight to the dead
// incarnation were harvested and re-pushed by the sources, so the
// stream is complete across the gap at least-once (exactly-once behind
// the sources' checkpointed watermarks). Rejoining a slot that was
// never evicted is refused, as is re-attaching from a crashed node.
func (t *Target) Reattach(p transport.Ctx) (*Target, error) {
	if t.mc != nil {
		return t.reattachMulticast(p)
	}
	if t.mux != nil {
		return nil, fmt.Errorf("%w: Target.Reattach (shared-ring evictions re-route over the survivors instead)", ErrUnsupportedOnShared)
	}
	if t.spec.Options.RetransmitTimeout <= 0 {
		return nil, errors.New("dfi: Reattach requires Options.RetransmitTimeout")
	}
	if t.node.Crashed(p.Now()) {
		return nil, fmt.Errorf("dfi: target %d of flow %q cannot re-attach from crashed node %d", t.idx, t.spec.Name, t.node.ID())
	}
	name := t.spec.Name
	nt := &Target{
		meta:        t.meta,
		spec:        t.spec,
		idx:         t.idx,
		node:        t.node,
		reg:         t.reg,
		tupleSize:   t.tupleSize,
		geom:        t.geom,
		resumedFrom: t.consumed.Load(),
	}
	info := nt.allocRings()
	// Fresh rings first, then the epoch bump: sources folding the rejoin
	// epoch must find the republished rings. RepublishTarget is fenced to
	// evicted slots, so a rejoin of a live slot is rejected here before
	// any membership change.
	if err := t.reg.RepublishTarget(p, name, t.idx, info); err != nil {
		nt.mr.Deregister()
		return nil, fmt.Errorf("dfi: rejoin of target %d rejected: %w", t.idx, err)
	}
	if _, err := t.reg.Rejoin(p, name, registry.RoleTarget, t.idx, t.idx); err != nil {
		return nil, fmt.Errorf("dfi: rejoin of target %d rejected: %w", t.idx, err)
	}
	nt.initTargetMembership(t.reg.MembershipOf(name))
	if err := nt.acquireTargetLease(p, t.reg, name); err != nil {
		return nil, err
	}
	return nt, nil
}

// reattachMulticast rejoins an ordered multicast replicate flow after
// this target was evicted. The multicast stream cannot be replayed —
// instead the fresh incarnation installs the registry's sequencer
// snapshot (high-water, per-source counts, agreed skips) and resumes
// delivery from the high-water; see newMcTargetRejoin. Requires the
// lease/epoch control plane: without GlobalOrdering there is no global
// resume point, and without leases no snapshot was ever recorded.
func (t *Target) reattachMulticast(p transport.Ctx) (*Target, error) {
	if !t.spec.Options.GlobalOrdering || t.spec.Options.LeaseTTL <= 0 {
		return nil, fmt.Errorf("%w: Reattach requires GlobalOrdering and LeaseTTL (no sequencer snapshot to rejoin from)", ErrUnsupportedOnMulticast)
	}
	if t.node.Crashed(p.Now()) {
		return nil, fmt.Errorf("dfi: target %d of flow %q cannot re-attach from crashed node %d", t.idx, t.spec.Name, t.node.ID())
	}
	nt := &Target{
		meta:        t.meta,
		spec:        t.spec,
		idx:         t.idx,
		node:        t.node,
		reg:         t.reg,
		tupleSize:   t.tupleSize,
		resumedFrom: t.consumed.Load(),
	}
	mc, err := newMcTargetRejoin(p, t.reg, t.meta, t.idx, t.node)
	if err != nil {
		return nil, err
	}
	nt.mc = mc
	if err := nt.acquireTargetLease(p, t.reg, t.spec.Name); err != nil {
		return nil, err
	}
	return nt, nil
}

// Done reports whether the flow has ended at this target.
func (t *Target) Done() bool { return t.done.Load() }

// Free deregisters the target's receive buffers (after flow end).
func (t *Target) Free() {
	if t.mr != nil {
		t.mr.Deregister()
	}
	if t.mc != nil {
		t.mc.free()
	}
	if t.mux != nil {
		// The pool owns the ring regions; just ensure this target's tags
		// can never head-of-line-block co-resident flows after it is gone.
		t.mux.dropAll()
	}
}

// ResolveGap skips a surfaced gap (the application agreed to treat the
// missing sequence number as a no-op, e.g. after NOPaxos gap agreement).
func (t *Target) ResolveGap(p transport.Ctx) {
	if t.mc != nil {
		t.mc.resolveGap(p)
	}
}

// RequestGapRetransmit asks the sources to resend a surfaced gap instead
// of skipping it; consumption resumes once the segment arrives.
func (t *Target) RequestGapRetransmit(p transport.Ctx) {
	if t.mc != nil {
		t.mc.requestGapRetransmit(p)
	}
}
