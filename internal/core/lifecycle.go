package core

import (
	"errors"
	"fmt"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
)

// Flow lifecycle: the data-plane half of the control-plane failure model
// (docs/PROTOCOL.md, "Control-plane failure model"). The registry keeps
// an epoch-versioned membership record per flow (dfi/internal/registry);
// this file wires the record into sources and targets:
//
//   - endpoints of a flow with Options.LeaseTTL hold registry leases,
//     renewed by a per-endpoint heartbeat process that exits with the
//     endpoint (or with its node's crash, letting the lease expire);
//   - sources cache the membership epoch and, whenever it moves, fold
//     the new membership in: writers to evicted targets are abandoned,
//     their unconsumed window harvested from the local ring and
//     re-pushed over the survivors — routed by the flow's partitioner
//     view (dfi/internal/core/partition): Route for key-routed tuples,
//     Fold otherwise;
//   - sources also reconnect to targets that rejoined the flow
//     (registry Rejoin bumps the slot's incarnation along with the
//     epoch): the old writer is harvested like a dead one — anything in
//     flight to the previous incarnation's rings is gone — and a fresh
//     writer attaches to the republished rings;
//   - targets close the rings of evicted sources (so flow end does not
//     wait on a corpse), reset the ring of a source that rejoined, and
//     stop consuming when evicted themselves.
//
// Epoch checks are plain pointer reads on paths the endpoints poll
// anyway, so a flow whose membership never changes behaves — event for
// event — like one with no membership at all.

// heartbeatDivisor sets the lease renewal interval to TTL/3: two renewal
// losses in a row still keep the lease alive.
const heartbeatDivisor = 3

// spawnLeaseHeartbeat renews the endpoint's registry lease on a
// background tick until the endpoint finishes (closed reports true; the
// lease is then released), its node crashes (the renewals stop and the
// lease expires toward eviction), the registry fences the renewal (the
// endpoint was already evicted), or the slot's incarnation moves on (a
// rejoined successor owns the slot now; a stale heartbeat must neither
// renew nor release its lease). The process self-terminates in every
// case — the discrete-event kernel only ends its run when no events
// remain, so an immortal ticker would hang every simulation.
func spawnLeaseHeartbeat(p transport.Ctx, tpt transport.Transport, reg Registry, node transport.Endpoint, flow string, role registry.Role, idx int, ttl time.Duration, inc uint64, closed func() bool) {
	iv := ttl / heartbeatDivisor
	if iv <= 0 {
		iv = ttl
	}
	tpt.Spawn(p, fmt.Sprintf("lease:%s:%s%d", flow, role, idx), func(hp transport.Ctx) {
		for {
			hp.Sleep(iv)
			if node.Crashed(hp.Now()) {
				return
			}
			if m := reg.MembershipOf(flow); m != nil && m.Incarnation(role, idx) != inc {
				return
			}
			if closed() {
				reg.ReleaseLease(hp, flow, role, idx)
				return
			}
			if err := reg.RenewLease(hp, flow, role, idx); err != nil {
				return
			}
		}
	})
}

// acquireSourceLease sets up the lease + heartbeat for a source slot.
func (s *Source) acquireSourceLease(p transport.Ctx, reg Registry, name string) error {
	o := &s.spec.Options
	if o.LeaseTTL <= 0 {
		return nil
	}
	if err := reg.AcquireLease(p, name, registry.RoleSource, s.idx, o.LeaseTTL, o.SuspectGrace); err != nil {
		return err
	}
	if o.SharedRings {
		// Shared flows have no rejoin (no incarnation fencing needed) and
		// batch their heartbeats per node — see the lease agent in mux.go.
		enrollLease(p, s.meta.cluster, reg, s.node, name, registry.RoleSource, s.idx, o.LeaseTTL,
			func() bool { return s.closed })
		return nil
	}
	inc := uint64(0)
	if m := reg.MembershipOf(name); m != nil {
		inc = m.Incarnation(registry.RoleSource, s.idx)
	}
	spawnLeaseHeartbeat(p, s.meta.cluster, reg, s.node, name, registry.RoleSource, s.idx, o.LeaseTTL, inc,
		func() bool { return s.closed })
	return nil
}

// initMembership builds the partitioner view over the flow's membership
// record; called once the writers are connected. Targets already
// evicted at open (nil writers) start out routed around.
func (s *Source) initMembership(name string) error {
	s.view = s.spec.table().NewView()
	if s.mem == nil {
		return nil
	}
	s.epoch = s.mem.Epoch()
	if err := s.refreshView(); err != nil {
		return fmt.Errorf("%w: every target of flow %q is evicted", ErrFlowBroken, name)
	}
	return nil
}

// refreshView rebuilds the view's liveness from the current writers and
// membership record. Errors when no target remains live.
func (s *Source) refreshView() error {
	live := make([]bool, len(s.writers))
	for i, w := range s.writers {
		live[i] = w != nil && !w.dead && !s.mem.TargetEvicted(i)
	}
	s.view.SetLive(live)
	if s.view.LiveCount() == 0 {
		return ErrFlowBroken
	}
	return nil
}

// remap maps a tuple's declared route onto a live writer through the
// partitioner view: the declared index when its target survives;
// otherwise the live owner of the tuple's key (key-routed flows) or the
// view's deterministic fold (custom routing and PushTo). Every source
// computes the same remap from the same table and membership record, so
// a key keeps hitting one target per epoch — and under ring
// partitioning, only the dead target's arcs move at all.
func (s *Source) remap(t schema.Tuple, idx int) int {
	if s.view.Live(idx) {
		return idx
	}
	if s.spec.Routing == nil && s.spec.ShuffleKey >= 0 && t != nil {
		slot, _ := s.view.Route(s.spec.Schema.KeyUint64(t, s.spec.ShuffleKey))
		return slot
	}
	slot, _ := s.view.Fold(idx)
	return slot
}

// pendingTuple is one harvested tuple awaiting re-push: the payload (a
// view into the dead writer's local ring, stable until Free) and the
// slot it was originally routed to.
type pendingTuple struct {
	data []byte
	from int
}

// syncEpoch folds control-plane membership changes into the source:
// it abandons writers whose targets were evicted *or* rejoined under a
// new incarnation (harvesting their unconsumed windows), reconnects to
// rejoined targets' republished rings, refreshes the partitioner view,
// and re-pushes the harvest over the live owners. A no-op (one integer
// compare) while the epoch is unchanged. Returns ErrFlowBroken when no
// target survives, or when this source was itself evicted (epoch
// fencing: its peers have moved on).
func (s *Source) syncEpoch(p transport.Ctx) error {
	if s.mem == nil || s.mem.Epoch() == s.epoch {
		return nil
	}
	var pending []pendingTuple
	var drained uint64
	defer func() {
		if drained == 0 {
			return
		}
		if sink := s.reg.EventSink(); sink != nil {
			sink.Emit(metrics.Event{
				T: p.Now(), Node: fmt.Sprintf("node%d", s.node.ID()),
				Type: metrics.EvReroute, Flow: s.spec.Name, Epoch: s.epoch,
				Role: "source", Slot: s.idx, Seq: drained,
				Detail: fmt.Sprintf("re-pushed %d harvested tuples", drained),
			})
		}
	}()
	for {
		s.epoch = s.mem.Epoch()
		if s.mem.SourceEvicted(s.idx) {
			return fmt.Errorf("%w: source %d was evicted from flow %q (epoch %d)",
				ErrFlowBroken, s.idx, s.spec.Name, s.epoch)
		}
		// Harvest writers whose rings are gone: targets evicted this
		// epoch, and targets that rejoined with fresh rings (incarnation
		// bump) — anything in flight to the previous incarnation will
		// never be consumed.
		for i, w := range s.writers {
			if w == nil || w.dead {
				continue
			}
			if !s.mem.TargetEvicted(i) && s.targetInc(i) == s.winc[i] {
				continue
			}
			for _, data := range w.abandon(s.spec.Schema.TupleSize()) {
				pending = append(pending, pendingTuple{data: data, from: i})
			}
		}
		s.reconnectRejoined(p)
		// View after reconnect: harvested tuples re-route over the
		// post-change membership — a rejoined target's own harvest
		// lands back on its fresh rings.
		if err := s.refreshView(); err != nil {
			return fmt.Errorf("%w: every target of flow %q evicted (epoch %d)", ErrFlowBroken, s.spec.Name, s.epoch)
		}
		if s.spec.FlowType() == ReplicateFlow {
			// Replicate legs are dropped rather than drained: every
			// survivor already receives its own copy of the stream.
			pending = nil
		}
		for len(pending) > 0 {
			err := s.repush(p, schema.Tuple(pending[0].data), pending[0].from)
			if errors.Is(err, errEvicted) {
				break // another eviction mid-drain: re-sync, keep the tail
			}
			if err != nil {
				return err
			}
			pending = pending[1:]
			s.rerouted.Add(1)
			drained++
		}
		if len(pending) == 0 && s.mem.Epoch() == s.epoch {
			return nil
		}
	}
}

// reconnectRejoined replaces writers whose target slot rejoined the
// flow under a fresh incarnation (and fills slots that were evicted at
// open time and have since come back): the retired writer's local ring
// stays registered until Free — its harvest is still being re-pushed —
// and a new writer attaches to the rings the target republished before
// its Rejoin bumped the epoch.
func (s *Source) reconnectRejoined(p transport.Ctx) {
	for i := range s.writers {
		if s.mem.TargetEvicted(i) {
			continue
		}
		inc := s.targetInc(i)
		if w := s.writers[i]; w != nil && !w.dead && inc == s.winc[i] {
			continue
		}
		info, ok := s.reg.TargetInfo(p, s.spec.Name, i)
		if !ok {
			continue // never published; WaitTargetLive said evicted at open
		}
		s.statsMu.Lock()
		if old := s.writers[i]; old != nil {
			s.retired = append(s.retired, old)
		}
		s.writers[i] = s.connectWriter(info.(*targetInfo), i, inc)
		s.winc[i] = inc
		s.statsMu.Unlock()
	}
}

// repush routes one harvested tuple to a surviving writer. During Close,
// survivors that already sent FLOW_END cannot take tuples anymore; the
// re-push then folds onto any still-open survivor (phase ordering makes
// this rare: end markers only go out once every live writer drained).
func (s *Source) repush(p transport.Ctx, t schema.Tuple, from int) error {
	w := s.writers[s.remap(t, from)]
	if w.closed || w.dead {
		w = nil
		for _, i := range s.view.LiveSlots() {
			if cw := s.writers[i]; !cw.closed && !cw.dead {
				w = cw
				break
			}
		}
		if w == nil {
			return fmt.Errorf("%w: no open target left for rerouted tuples of flow %q", ErrFlowBroken, s.spec.Name)
		}
	}
	return s.pushWriter(p, w, t)
}

// Rerouted returns the number of tuples re-pushed to surviving targets
// after evictions.
func (s *Source) Rerouted() uint64 { return s.rerouted.Load() }

// Moved returns the number of tuples pushed directly to a live owner
// other than their declared home (steady-state rebalance traffic while
// the home slot is down; harvested re-pushes count under Rerouted).
func (s *Source) Moved() uint64 { return s.moved.Load() }

// Epoch returns the last membership epoch the source has folded in.
func (s *Source) Epoch() uint64 { return s.epoch }

// --- Target side ---------------------------------------------------

// acquireTargetLease sets up the lease + heartbeat for a target slot.
func (t *Target) acquireTargetLease(p transport.Ctx, reg Registry, name string) error {
	o := &t.spec.Options
	if o.LeaseTTL <= 0 {
		return nil
	}
	if err := reg.AcquireLease(p, name, registry.RoleTarget, t.idx, o.LeaseTTL, o.SuspectGrace); err != nil {
		return err
	}
	if o.SharedRings {
		enrollLease(p, t.meta.cluster, reg, t.node, name, registry.RoleTarget, t.idx, o.LeaseTTL,
			func() bool { return t.done.Load() || t.evicted })
		return nil
	}
	inc := uint64(0)
	if m := reg.MembershipOf(name); m != nil {
		inc = m.Incarnation(registry.RoleTarget, t.idx)
	}
	spawnLeaseHeartbeat(p, t.meta.cluster, reg, t.node, name, registry.RoleTarget, t.idx, o.LeaseTTL, inc,
		func() bool { return t.done.Load() || t.evicted })
	return nil
}

// syncMembership folds membership changes into the target's ring state:
// rings of evicted sources are closed (reported like SourceTimeout
// failures, so FailedSources covers both detectors), rings of sources
// that rejoined under a fresh incarnation are reset for the new stream,
// and a target that was itself evicted stops consuming. Reports whether
// the target is evicted. A no-op (one integer compare) while the epoch
// is unchanged.
func (t *Target) syncMembership() bool {
	if t.mem == nil {
		return false
	}
	e := t.mem.Epoch()
	if e == t.epoch {
		return t.evicted
	}
	t.epoch = e
	if t.mem.TargetEvicted(t.idx) {
		t.evicted = true
		return true
	}
	for i, r := range t.readers {
		if inc := t.mem.Incarnation(registry.RoleSource, i); inc != r.inc {
			// The source rejoined: its new writer streams from sequence 0
			// into this ring. Clear the corpse's state so the new stream
			// is consumable and its stale footers cannot replay.
			t.resetRing(r)
			r.inc = inc
			continue
		}
		if !r.closed && t.mem.SourceEvicted(i) {
			r.closed = true
			r.failed.Store(true)
		}
	}
	return false
}

// Evicted reports whether the control plane evicted this target from the
// flow membership (its key range has been rehashed over the survivors).
func (t *Target) Evicted() bool { return t.evicted }
