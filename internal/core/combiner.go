package core

import (
	"fmt"
	"sort"
	"time"

	"dfi/internal/schema"
	"dfi/internal/transport"
)

// CombinerTarget is the exit point of a combiner flow (paper §4.2.3): an
// N:1 shuffle whose target aggregates tuples into groups as they arrive,
// instead of handing each tuple to the application. The paper notes that
// with in-network aggregation hardware (e.g. InfiniBand SHARP) the
// reduction could move into the switch; here it executes on the target
// thread, whose in-going link therefore caps the flow (Figure 9).
type CombinerTarget struct {
	t    *Target
	agg  AggFunc
	gcol int
	vcol int

	groups map[uint64]*aggState
	node   computeNode
}

type computeNode interface {
	Compute(p transport.Ctx, d time.Duration)
}

type aggState struct {
	key   uint64
	value int64
	count int64
	init  bool
}

// AggResult is one aggregated group.
type AggResult struct {
	Key   uint64
	Value int64
	Count int64
}

// CombinerTargetOpen attaches to target thread idx of a combiner flow.
func CombinerTargetOpen(p transport.Ctx, reg Registry, name string, idx int) (*CombinerTarget, error) {
	meta := lookupFlow(p, reg, name)
	if meta.spec.Type != CombinerFlow {
		return nil, fmt.Errorf("dfi: flow %q is a %s flow, not a combiner flow", name, meta.spec.Type)
	}
	t, err := TargetOpen(p, reg, name, idx)
	if err != nil {
		return nil, err
	}
	o := &meta.spec.Options
	return &CombinerTarget{
		t:      t,
		agg:    o.Aggregation,
		gcol:   o.GroupCol,
		vcol:   o.ValueCol,
		groups: make(map[uint64]*aggState),
		node:   meta.spec.Targets[idx].Node,
	}, nil
}

// Run ingests the whole flow, aggregating every tuple into its group, and
// returns once all sources have closed. The per-tuple aggregation cost is
// charged to the target thread.
func (c *CombinerTarget) Run(p transport.Ctx) {
	sch := c.t.Schema()
	ts := sch.TupleSize()
	aggCost := c.t.spec.Options.AggCost
	for {
		data, count, ok := c.t.ConsumeSegment(p)
		if !ok {
			return
		}
		c.node.Compute(p, time.Duration(count)*aggCost)
		if !c.t.meta.cluster.CopiesPayload() {
			// Payload bytes are not simulated; account the work only.
			continue
		}
		for i := 0; i < count; i++ {
			tup := schema.Tuple(data[i*ts : (i+1)*ts])
			c.ingest(sch, tup)
		}
	}
}

func (c *CombinerTarget) ingest(sch *schema.Schema, tup schema.Tuple) {
	key := sch.KeyUint64(tup, c.gcol)
	val := sch.Int64(tup, c.vcol)
	g := c.groups[key]
	if g == nil {
		g = &aggState{key: key}
		c.groups[key] = g
	}
	g.count++
	switch c.agg {
	case AggSum, AggCount:
		g.value += val
	case AggMin:
		if !g.init || val < g.value {
			g.value = val
		}
	case AggMax:
		if !g.init || val > g.value {
			g.value = val
		}
	}
	g.init = true
}

// Results returns the aggregated groups in ascending key order. For
// AggCount the Value field carries the group cardinality.
func (c *CombinerTarget) Results() []AggResult {
	out := make([]AggResult, 0, len(c.groups))
	for _, g := range c.groups {
		v := g.value
		if c.agg == AggCount {
			v = g.count
		}
		out = append(out, AggResult{Key: g.key, Value: v, Count: g.count})
	}
	sortAggResults(out)
	return out
}

// sortAggResults orders aggregates by ascending key.
func sortAggResults(rs []AggResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key < rs[j].Key })
}

// Consumed returns the number of tuples aggregated.
func (c *CombinerTarget) Consumed() uint64 { return c.t.Consumed() }

// Free releases the underlying target buffers.
func (c *CombinerTarget) Free() { c.t.Free() }
