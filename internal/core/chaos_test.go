package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

// Chaos suite: every flow type must deliver its full, correct tuple stream
// under injected WRITE loss and jittered delay (recovering by
// retransmission), and must terminate with explicit errors — never hang or
// panic — when a node crashes mid-flow.

// chaosPlan is the acceptance fault mix: ≥1% WRITE loss plus jittered
// delivery delay (which also reorders unordered lanes).
func chaosPlan() *fabric.FaultPlan {
	return &fabric.FaultPlan{
		DropWrite:   0.02,
		Delay:       time.Microsecond,
		DelayJitter: 3 * time.Microsecond,
	}
}

// withFaults installs a fault plan into the cluster config under test.
func withFaults(fp *fabric.FaultPlan) func(*fabric.Config) {
	return func(cfg *fabric.Config) { cfg.Faults = fp }
}

func TestChaosShuffleBandwidthWriteLoss(t *testing.T) {
	// The recorder proves faults actually fired (a chaos test that saw no
	// faults proves nothing).
	rec := fabric.NewRecorder(0)
	e := newEnv(t, 4, withFaults(chaosPlan()))
	e.c.SetTracer(rec)
	spec := FlowSpec{
		Name:    "chaos-shuffle",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       512,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const n = 2000
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, 2*n)
	if rec.Dropped() == 0 {
		t.Fatal("no operations were dropped; the chaos plan did not engage")
	}
}

func TestChaosShuffleLatencyWriteLoss(t *testing.T) {
	// Latency mode loses both data WRITEs and credit READs; recovery rides
	// on the credit-stall detection plus the delivery certificate at Close.
	e := newEnv(t, 3, withFaults(&fabric.FaultPlan{
		DropWrite:   0.02,
		DropRead:    0.02,
		Delay:       time.Microsecond,
		DelayJitter: 2 * time.Microsecond,
	}))
	spec := FlowSpec{
		Name:    "chaos-lat",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			Optimization:      OptimizeLatency,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const n = 500
	res := runShuffle(t, e, spec, n)
	checkAllDelivered(t, res, n)
}

func TestChaosReplicateRingWriteLoss(t *testing.T) {
	// Naive (ring-transport) replicate: every target must still receive the
	// full stream in push order despite lost segment WRITEs.
	e := newEnv(t, 4, withFaults(chaosPlan()))
	spec := FlowSpec{
		Name:    "chaos-rep",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       512,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const n = 1500
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: got %d", ti, i, k)
			}
		}
	}
}

func TestChaosMulticastReplicateSendLoss(t *testing.T) {
	// Multicast replicate: UD multicast deliveries drop per member; NACK
	// retransmission over the reliable QPs recovers them.
	e := newEnv(t, 4, withFaults(&fabric.FaultPlan{
		DropSend:    0.05,
		Delay:       time.Microsecond,
		DelayJitter: 2 * time.Microsecond,
	}))
	spec := FlowSpec{
		Name:    "chaos-mc",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, SegmentSize: 512},
	}
	const n = 1500
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), n)
		}
		for i, k := range ord {
			if k != int64(i) {
				t.Fatalf("target %d out of order at %d: got %d", ti, i, k)
			}
		}
	}
}

func TestChaosOrderedMulticastSendLoss(t *testing.T) {
	// Globally ordered multicast under loss and jitter: all targets must
	// agree on one complete global sequence.
	e := newEnv(t, 5, withFaults(&fabric.FaultPlan{
		DropSend:    0.03,
		Delay:       time.Microsecond,
		DelayJitter: 2 * time.Microsecond,
	}))
	spec := FlowSpec{
		Name:    "chaos-omc",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}, {Node: e.c.Node(4)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, GlobalOrdering: true, SegmentSize: 512},
	}
	const n = 800
	orders := runReplicate(t, e, spec, n)
	for ti, ord := range orders {
		if len(ord) != 2*n {
			t.Fatalf("target %d got %d tuples, want %d", ti, len(ord), 2*n)
		}
		for i, k := range ord {
			if k != orders[0][i] {
				t.Fatalf("targets 0 and %d disagree at %d: %d vs %d", ti, i, orders[0][i], k)
			}
		}
	}
}

func TestChaosCombinerWriteLoss(t *testing.T) {
	// Combiner flow under WRITE loss: exact aggregates, no double counting
	// (a retransmitted segment applied twice would corrupt the sums).
	e := newEnv(t, 3, withFaults(chaosPlan()))
	spec := FlowSpec{
		Name:    "chaos-comb",
		Type:    CombinerFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			Aggregation:       AggSum,
			GroupCol:          0,
			ValueCol:          1,
			SegmentSize:       512,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const n = 1200
	const groups = 8
	var results []AggResult
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if err := src.Push(p, mkTuple(int64(i%groups), int64(si*n+i))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	e.k.Spawn("tgt", func(p *sim.Proc) {
		ct, err := CombinerTargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ct.Run(p)
		results = ct.Results()
	})
	e.run(t)
	want := make(map[uint64]int64)
	for si := 0; si < 2; si++ {
		for i := 0; i < n; i++ {
			want[uint64(i%groups)] += int64(si*n + i)
		}
	}
	if len(results) != groups {
		t.Fatalf("%d groups, want %d", len(results), groups)
	}
	for _, r := range results {
		if r.Value != want[r.Key] {
			t.Fatalf("group %d: sum %d, want %d", r.Key, r.Value, want[r.Key])
		}
	}
}

func TestChaosShuffleSourceNodeCrash(t *testing.T) {
	// Whole-node crash of one source, injected at the fabric level. The
	// crashed source's own Push/Close surfaces ErrFlowBroken (its verbs go
	// silent); the target detects the dead ring via SourceTimeout, reports
	// the slot, and finishes with the surviving source's full stream.
	plan := (&fabric.FaultPlan{}).CrashNode(1, 400*time.Microsecond)
	e := newEnv(t, 3, withFaults(plan))
	spec := FlowSpec{
		Name:    "crash-src",
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			SourceTimeout:     300 * time.Microsecond,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	const perSource = 2000
	got := make(map[int64]int64)
	var failed []int
	var crashedErr error
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSource; i++ {
				key := int64(si*perSource + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					if si != 1 {
						t.Errorf("healthy source %d push failed: %v", si, err)
					}
					crashedErr = err
					return
				}
				p.Sleep(time.Microsecond)
			}
			if err := src.Close(p); err != nil {
				if si != 1 {
					t.Errorf("healthy source %d close failed: %v", si, err)
				}
				crashedErr = err
			}
		})
	}
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			got[kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
		}
		failed = tgt.FailedSources()
	})
	e.run(t)
	if crashedErr == nil {
		t.Fatal("crashed source reported no error")
	}
	if !errors.Is(crashedErr, ErrFlowBroken) {
		t.Fatalf("crashed source error %v, want ErrFlowBroken", crashedErr)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed sources %v, want [1]", failed)
	}
	for i := 0; i < perSource; i++ {
		if v, ok := got[int64(i)]; !ok || v != int64(2*i) {
			t.Fatalf("healthy source tuple %d missing or corrupt", i)
		}
	}
	for k, v := range got {
		if v != 2*k {
			t.Fatalf("corrupt tuple delivered: key %d value %d", k, v)
		}
	}
}

func TestChaosShuffleTargetNodeCrash(t *testing.T) {
	// Whole-node crash of one target: the source's writer to it must fail
	// with ErrFlowBroken instead of hanging; the crashed target's consumer
	// unblocks via SourceTimeout; the healthy target still terminates.
	plan := (&fabric.FaultPlan{}).CrashNode(2, 300*time.Microsecond)
	e := newEnv(t, 3, withFaults(plan))
	spec := FlowSpec{
		Name:    "crash-tgt",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}, {Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   8,
			SourceTimeout:     200 * time.Microsecond,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	const n = 3000
	var srcErr error
	healthyDone := false
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			key := int64(i)
			if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
				srcErr = err
				break
			}
			p.Sleep(500 * time.Nanosecond)
		}
		// Close still delivers end-of-flow to the surviving target and
		// re-reports the broken one.
		if err := src.Close(p); err != nil && srcErr == nil {
			srcErr = err
		}
	})
	for ti := 0; ti < 2; ti++ {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := tgt.Consume(p); !ok {
					break
				}
			}
			if ti == 0 {
				healthyDone = true
			}
		})
	}
	e.run(t)
	if srcErr == nil {
		t.Fatal("source reported no error despite crashed target")
	}
	if !errors.Is(srcErr, ErrFlowBroken) {
		t.Fatalf("source error %v, want ErrFlowBroken", srcErr)
	}
	if !healthyDone {
		t.Fatal("healthy target did not reach flow end")
	}
}

func TestChaosOrderedMulticastSourceCrash(t *testing.T) {
	// One of two ordered-multicast sources goes silent mid-flow while UD
	// loss is also in play. Targets must declare it failed, skip its
	// unanswerable gaps (its retransmission history died with it), and
	// still deliver the surviving source's complete stream in order.
	e := newEnv(t, 5, withFaults(&fabric.FaultPlan{DropSend: 0.05}))
	spec := FlowSpec{
		Name:    "omc-crash",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}, {Node: e.c.Node(4)}},
		Schema:  kvSchema,
		Options: Options{
			Multicast:      true,
			GlobalOrdering: true,
			SegmentSize:    256,
			SourceTimeout:  300 * time.Microsecond,
		},
	}
	const n = 1000
	orders := make([][]int64, len(spec.Targets))
	failed := make([][]int, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			count := n
			if si == 1 {
				count = n / 4 // crashes: stops mid-flow, never closes
			}
			for i := 0; i < count; i++ {
				key := int64(si*n + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Errorf("source %d push: %v", si, err)
					return
				}
				p.Sleep(500 * time.Nanosecond)
			}
			if si == 1 {
				return // crash: no flush, no close, no end marker
			}
			if err := src.Close(p); err != nil {
				t.Errorf("healthy source close: %v", err)
			}
		})
	}
	for ti := range spec.Targets {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
			}
			failed[ti] = tgt.FailedSources()
		})
	}
	e.run(t)
	for ti := range spec.Targets {
		if len(failed[ti]) != 1 || failed[ti][0] != 1 {
			t.Fatalf("target %d failed sources %v, want [1]", ti, failed[ti])
		}
		// The healthy source's keys [0,n) must all arrive, in push order.
		last := int64(-1)
		seen := 0
		for _, k := range orders[ti] {
			if k >= int64(n) {
				continue // crashed source's partial prefix
			}
			if k <= last {
				t.Fatalf("target %d: healthy source out of order (%d after %d)", ti, k, last)
			}
			last = k
			seen++
		}
		if seen != n {
			t.Fatalf("target %d delivered %d of %d healthy-source tuples", ti, seen, n)
		}
	}
}

func TestChaosWriterAckNeverPassesConsumption(t *testing.T) {
	// Regression for the footer-probe/sequence race: under delay, jitter,
	// reordering, duplication, and loss, the writer's acked watermark must
	// never overtake what the target actually released — otherwise the
	// writer would overwrite an unconsumed slot.
	e := newEnv(t, 2, withFaults(&fabric.FaultPlan{
		DropWrite:   0.06,
		Delay:       time.Microsecond,
		DelayJitter: 4 * time.Microsecond,
		Reorder:     0.3,
		Duplicate:   0.1,
	}))
	spec := FlowSpec{
		Name:    "ack-race",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{
			SegmentSize:       256,
			SegmentsPerRing:   4,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	const n = 1500
	var w *ringWriter
	var rd *ringReader
	done := false
	got := make(map[int64]int64)
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		w = src.writers[0]
		for i := 0; i < n; i++ {
			key := int64(i)
			if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
				t.Error(err)
				break
			}
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		done = true
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		rd = tgt.readers[0]
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				return
			}
			got[kvSchema.Int64(tup, 0)] = kvSchema.Int64(tup, 1)
		}
	})
	e.k.Spawn("monitor", func(p *sim.Proc) {
		for !done {
			if w != nil && rd != nil && w.acked > rd.consumed.Load() {
				t.Fatalf("acked %d passed target consumption %d at %v", w.acked, rd.consumed.Load(), p.Now())
			}
			p.Sleep(500 * time.Nanosecond)
		}
	})
	e.run(t)
	if len(got) != n {
		t.Fatalf("delivered %d tuples, want %d", len(got), n)
	}
	for k, v := range got {
		if v != 2*k {
			t.Fatalf("key %d corrupt value %d", k, v)
		}
	}
	if w.Retransmits.Load() == 0 {
		t.Error("no retransmissions occurred; loss recovery was not exercised")
	}
}

func TestChaosElasticAttachUnderFaults(t *testing.T) {
	// Sources attach to a *running* elastic flow while WRITE loss and
	// jitter are active: retransmission must recover the late joiners'
	// streams exactly like the initial source's, and the sealed flow ends
	// with every tuple delivered exactly once.
	rec := fabric.NewRecorder(0)
	e := newEnv(t, 4, withFaults(&fabric.FaultPlan{
		DropWrite:   0.05,
		Delay:       time.Microsecond,
		DelayJitter: 3 * time.Microsecond,
	}))
	e.c.SetTracer(rec)
	spec := FlowSpec{
		Name:    "chaos-elastic",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			Elastic:           true,
			MaxSources:        3,
			SegmentSize:       512,
			SegmentsPerRing:   8,
			RetransmitTimeout: 50 * time.Microsecond,
		},
	}
	const perSource = 1500
	got := make(map[int64]bool)
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	push := func(p *sim.Proc, src *Source, base int64) {
		for i := int64(0); i < perSource; i++ {
			if err := src.Push(p, mkTuple(base+i, 0)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := src.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	}
	e.k.Spawn("initial-src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		push(p, src, 0)
	})
	for j := 1; j <= 2; j++ {
		j := j
		e.k.Spawn(fmt.Sprintf("late-src%d", j), func(p *sim.Proc) {
			p.Sleep(time.Duration(j) * 40 * time.Microsecond)
			src, err := AttachSource(p, e.reg, spec.Name, Endpoint{Node: e.c.Node(j)})
			if err != nil {
				t.Error(err)
				return
			}
			push(p, src, int64(j)*perSource)
		})
	}
	e.k.Spawn("sealer", func(p *sim.Proc) {
		p.Sleep(200 * time.Microsecond)
		if err := Seal(p, e.reg, spec.Name); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				return
			}
			k := kvSchema.Int64(tup, 0)
			if got[k] {
				t.Errorf("duplicate tuple %d", k)
			}
			got[k] = true
		}
	})
	e.run(t)
	if len(got) != 3*perSource {
		t.Fatalf("delivered %d unique tuples, want %d", len(got), 3*perSource)
	}
	if rec.Dropped() == 0 {
		t.Fatal("no operations were dropped; the chaos plan did not engage")
	}
}

func TestChaosElasticSealRacesSourceCrash(t *testing.T) {
	// A late-attached source's node crashes right around the Seal. The
	// sealed flow must not hang waiting on the corpse: SourceTimeout
	// closes its ring, the slot is reported failed, and the initial
	// source's complete stream still arrives exactly once.
	plan := (&fabric.FaultPlan{}).CrashNode(1, 250*time.Microsecond)
	e := newEnv(t, 3, withFaults(plan))
	spec := FlowSpec{
		Name:    "elastic-seal-crash",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{
			Elastic:           true,
			MaxSources:        2,
			SegmentSize:       256,
			SegmentsPerRing:   8,
			SourceTimeout:     200 * time.Microsecond,
			RetransmitTimeout: 40 * time.Microsecond,
		},
	}
	const perSource = 1500
	got := make(map[int64]bool)
	var failed []int
	var crashedErr error
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("initial-src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(0); i < perSource; i++ {
			if err := src.Push(p, mkTuple(i, 2*i)); err != nil {
				t.Errorf("healthy source push: %v", err)
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
		if err := src.Close(p); err != nil {
			t.Errorf("healthy source close: %v", err)
		}
	})
	e.k.Spawn("doomed-src", func(p *sim.Proc) {
		p.Sleep(40 * time.Microsecond)
		src, err := AttachSource(p, e.reg, spec.Name, Endpoint{Node: e.c.Node(1)})
		if err != nil {
			t.Error(err)
			return
		}
		for i := int64(0); i < perSource; i++ {
			if err := src.Push(p, mkTuple(perSource+i, 0)); err != nil {
				crashedErr = err // node crash: verbs go silent
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
	})
	e.k.Spawn("sealer", func(p *sim.Proc) {
		p.Sleep(250 * time.Microsecond) // the same instant the node dies
		if err := Seal(p, e.reg, spec.Name); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			k := kvSchema.Int64(tup, 0)
			if got[k] {
				t.Errorf("duplicate tuple %d", k)
			}
			got[k] = true
		}
		failed = tgt.FailedSources()
	})
	e.run(t)
	if crashedErr == nil {
		t.Fatal("crashed source reported no error")
	}
	if !errors.Is(crashedErr, ErrFlowBroken) {
		t.Fatalf("crashed source error %v, want ErrFlowBroken", crashedErr)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed sources %v, want [1]", failed)
	}
	for i := int64(0); i < perSource; i++ {
		if !got[i] {
			t.Fatalf("healthy source tuple %d missing", i)
		}
	}
}

func TestPushWithoutRoutingReturnsError(t *testing.T) {
	// A flow declared with ShuffleKey -1 and no RoutingFunc is PushTo-only;
	// Push must return a descriptive error, not panic in routeIndex.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:       "pushto-only",
		Sources:    []Endpoint{{Node: e.c.Node(0)}},
		Targets:    []Endpoint{{Node: e.c.Node(1)}},
		Schema:     kvSchema,
		ShuffleKey: -1,
	}
	var count int
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := src.Push(p, mkTuple(1, 2)); err == nil {
			t.Error("Push on a PushTo-only flow did not return an error")
		}
		if err := src.PushTo(p, mkTuple(1, 2), 0); err != nil {
			t.Errorf("PushTo: %v", err)
		}
		src.Close(p)
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
			count++
		}
	})
	e.run(t)
	if count != 1 {
		t.Fatalf("delivered %d tuples, want 1", count)
	}
}

func TestFailureDetectionActivityAtTimeZero(t *testing.T) {
	// Regression for the lastActivity==0 sentinel bug: virtual time starts
	// at 0, so a ring genuinely active at t=0 must not be treated as
	// "never heard from" and granted endless grace periods.
	e := newEnv(t, 1)
	e.k.Spawn("probe", func(p *sim.Proc) {
		tgt := &Target{
			spec: &FlowSpec{Options: Options{SourceTimeout: 100 * time.Microsecond}},
			readers: []*ringReader{
				{hasActivity: true, lastActivity: 0}, // heard exactly at t=0
				{},                                   // never heard
			},
		}
		p.Sleep(150 * time.Microsecond)
		tgt.detectFailures(p, 2)
		if !tgt.readers[0].failed.Load() {
			t.Error("ring active at t=0 then silent past the timeout was not declared failed")
		}
		if tgt.readers[1].failed.Load() {
			t.Error("never-heard ring was failed without a grace period")
		}
		p.Sleep(150 * time.Microsecond)
		tgt.detectFailures(p, 2)
		if !tgt.readers[1].failed.Load() {
			t.Error("ring silent through its whole grace period was not declared failed")
		}
	})
	e.run(t)
}
