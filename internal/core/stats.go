package core

import (
	"fmt"
	"time"
)

// Flow statistics: lightweight counters the library maintains anyway,
// exposed so applications and benchmarks can attribute time and traffic
// (the experiments harness and the dfiflow tool build on these).

// SourceStats aggregates a source's counters across its per-target
// writers.
type SourceStats struct {
	// TuplesPushed is the number of tuples accepted by Push.
	TuplesPushed uint64
	// SegmentsWritten counts ring segments transferred (all targets).
	SegmentsWritten uint64
	// PayloadBytes is the tuple payload volume written (excludes footers
	// and protocol messages).
	PayloadBytes uint64
	// StallRemote is virtual time blocked waiting for remote ring slots.
	StallRemote time.Duration
	// StallLocal is virtual time blocked waiting for local segment reuse.
	StallLocal time.Duration
	// FooterProbes / ProbeMisses count remote footer READs and those that
	// found the probed slot still unconsumed.
	FooterProbes int
	ProbeMisses  int
	// Backoff is the cumulative randomized backoff while polling a full
	// ring.
	Backoff time.Duration
	// Retransmits counts segments rewritten by loss recovery.
	Retransmits int
	// Rerouted counts tuples re-pushed to surviving targets after a
	// membership eviction — the harvest of a dead writer's unconsumed
	// window (see lifecycle.go).
	Rerouted uint64
	// Moved counts tuples whose declared owner was down at push time and
	// that the partitioner routed to the live owner instead — the
	// steady-state rebalance traffic, split from Rerouted so rebalance
	// cost is observable per scheme.
	Moved uint64
	// McRetransmits counts multicast segments re-sent over the reliable
	// per-target QPs (NACK answers, gap-agreement refills).
	McRetransmits uint64
	// McGapRounds counts gap-agreement rounds this source arbitrated.
	McGapRounds uint64
	// McCreditStalls counts episodes where a multicast target's credit
	// window gated the source.
	McCreditStalls uint64
}

func (s SourceStats) String() string {
	out := fmt.Sprintf("pushed=%d segments=%d bytes=%d stallRemote=%v stallLocal=%v probes=%d misses=%d backoff=%v",
		s.TuplesPushed, s.SegmentsWritten, s.PayloadBytes, s.StallRemote, s.StallLocal,
		s.FooterProbes, s.ProbeMisses, s.Backoff)
	if s.Retransmits > 0 {
		out += fmt.Sprintf(" retransmits=%d", s.Retransmits)
	}
	if s.Rerouted > 0 {
		out += fmt.Sprintf(" rerouted=%d", s.Rerouted)
	}
	if s.Moved > 0 {
		out += fmt.Sprintf(" moved=%d", s.Moved)
	}
	if s.McRetransmits > 0 {
		out += fmt.Sprintf(" mcRetransmits=%d", s.McRetransmits)
	}
	if s.McGapRounds > 0 {
		out += fmt.Sprintf(" mcGapRounds=%d", s.McGapRounds)
	}
	if s.McCreditStalls > 0 {
		out += fmt.Sprintf(" mcCreditStalls=%d", s.McCreditStalls)
	}
	return out
}

// Stats returns the source's counters. Multicast replicate sources report
// segment counts from their multicast transport. Safe to call from a
// scraper goroutine while the flow runs: every field it reads is atomic,
// and the writer slices are walked under statsMu.
func (s *Source) Stats() SourceStats {
	st := SourceStats{TuplesPushed: s.pushed.Load(), Rerouted: s.rerouted.Load(), Moved: s.moved.Load()}
	s.statsMu.Lock()
	writers := s.writers
	writers = append(writers[:len(writers):len(writers)], s.retired...)
	for _, w := range writers {
		if w == nil {
			continue
		}
		st.SegmentsWritten += w.pubWritten.Load()
		st.PayloadBytes += w.payloadBytes.Load()
		st.StallRemote += time.Duration(w.StallRemote.Load())
		st.StallLocal += time.Duration(w.StallLocal.Load())
		st.FooterProbes += int(w.Probes.Load())
		st.ProbeMisses += int(w.ProbeMisses.Load())
		st.Backoff += time.Duration(w.BackoffTime.Load())
		st.Retransmits += int(w.Retransmits.Load())
	}
	s.statsMu.Unlock()
	if s.mc != nil {
		st.SegmentsWritten += s.mc.sentSegs.Load()
		st.PayloadBytes += s.mc.payloadBytes.Load()
		st.McRetransmits = s.mc.retransmits.Load()
		st.McGapRounds = s.mc.gapRoundsRun.Load()
		st.McCreditStalls = s.mc.creditStalls.Load()
	}
	if s.mux != nil {
		st.SegmentsWritten += s.mux.segsWritten.Load()
		st.PayloadBytes += s.mux.payloadBytes.Load()
	}
	return st
}

// TargetStats aggregates a target's counters.
type TargetStats struct {
	// TuplesConsumed is the number of tuples handed to the application.
	TuplesConsumed uint64
	// SegmentsConsumed counts ring segments recycled.
	SegmentsConsumed uint64
	// FailedSources lists slots declared failed via SourceTimeout.
	FailedSources []int
	// Done reports whether FLOW_END was reached.
	Done bool
	// McNacksSent counts retransmission requests sent for multicast
	// sequence gaps.
	McNacksSent uint64
	// McGapsSkipped counts sequence numbers skipped past: agreed
	// unfillable (gap agreement), resolved by the application
	// (ResolveGap), or skipped heuristically on lease-less flows.
	McGapsSkipped uint64
}

func (s TargetStats) String() string {
	out := fmt.Sprintf("consumed=%d segments=%d failed=%v done=%v",
		s.TuplesConsumed, s.SegmentsConsumed, s.FailedSources, s.Done)
	if s.McNacksSent > 0 {
		out += fmt.Sprintf(" mcNacks=%d", s.McNacksSent)
	}
	if s.McGapsSkipped > 0 {
		out += fmt.Sprintf(" mcGapsSkipped=%d", s.McGapsSkipped)
	}
	return out
}

// Stats returns the target's counters. Like Source.Stats, safe for a
// concurrent scraper: the per-reader counters are atomic and the reader
// slice is fixed after open.
func (t *Target) Stats() TargetStats {
	st := TargetStats{TuplesConsumed: t.consumed.Load(), Done: t.done.Load(), FailedSources: t.FailedSources()}
	for _, r := range t.readers {
		st.SegmentsConsumed += r.consumed.Load()
	}
	if t.mc != nil {
		for i := range t.mc.delivered {
			st.SegmentsConsumed += t.mc.delivered[i].Load()
		}
		st.McNacksSent = t.mc.nacksSent.Load()
		st.McGapsSkipped = t.mc.gapsSkipped.Load()
	}
	if t.mux != nil {
		st.SegmentsConsumed += t.mux.segsConsumed.Load()
	}
	return st
}
