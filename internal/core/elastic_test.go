package core

import (
	"fmt"
	"testing"
	"time"

	"dfi/internal/sim"
)

func TestElasticFlowAttachAndSeal(t *testing.T) {
	// A flow starts with one source; two more attach while it runs; after
	// sealing and all closes, the target ends with every tuple delivered.
	e := newEnv(t, 5)
	spec := FlowSpec{
		Name:    "elastic",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(4)}},
		Schema:  kvSchema,
		Options: Options{Elastic: true, MaxSources: 4},
	}
	const perSource = 1500
	got := make(map[int64]bool)
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	push := func(p *sim.Proc, src *Source, base int64) {
		for i := int64(0); i < perSource; i++ {
			if err := src.Push(p, mkTuple(base+i, 0)); err != nil {
				t.Error(err)
				return
			}
		}
		src.Close(p)
	}
	e.k.Spawn("initial-src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, "elastic", 0)
		if err != nil {
			t.Error(err)
			return
		}
		push(p, src, 0)
	})
	for j := 1; j <= 2; j++ {
		j := j
		e.k.Spawn(fmt.Sprintf("late-src%d", j), func(p *sim.Proc) {
			p.Sleep(time.Duration(j) * 50 * time.Microsecond) // join mid-flow
			src, err := AttachSource(p, e.reg, "elastic", Endpoint{Node: e.c.Node(j)})
			if err != nil {
				t.Error(err)
				return
			}
			push(p, src, int64(j)*perSource)
		})
	}
	e.k.Spawn("sealer", func(p *sim.Proc) {
		p.Sleep(200 * time.Microsecond) // after both attaches
		if n, err := Attached(p, e.reg, "elastic"); err != nil || n != 3 {
			t.Errorf("attached = %d, %v", n, err)
		}
		if err := Seal(p, e.reg, "elastic"); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, "elastic", 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				return
			}
			got[kvSchema.Int64(tup, 0)] = true
		}
	})
	e.run(t)
	if len(got) != 3*perSource {
		t.Fatalf("delivered %d unique tuples, want %d", len(got), 3*perSource)
	}
}

func TestElasticFlowValidation(t *testing.T) {
	e := newEnv(t, 2)
	e.k.Spawn("p", func(p *sim.Proc) {
		// Multicast + elastic is rejected.
		bad := FlowSpec{
			Name: "bad", Type: ReplicateFlow,
			Sources: []Endpoint{{Node: e.c.Node(0)}},
			Targets: []Endpoint{{Node: e.c.Node(1)}},
			Schema:  kvSchema,
			Options: Options{Elastic: true, Multicast: true},
		}
		if err := FlowInit(p, e.reg, e.c, bad); err == nil {
			t.Error("elastic multicast accepted")
		}
		// MaxSources below initial count is rejected.
		bad2 := FlowSpec{
			Name:    "bad2",
			Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(0), Thread: 1}},
			Targets: []Endpoint{{Node: e.c.Node(1)}},
			Schema:  kvSchema,
			Options: Options{Elastic: true, MaxSources: 1},
		}
		if err := FlowInit(p, e.reg, e.c, bad2); err == nil {
			t.Error("MaxSources < initial sources accepted")
		}
		// Zero initial sources is allowed for elastic flows.
		ok := FlowSpec{
			Name:    "zero-src",
			Targets: []Endpoint{{Node: e.c.Node(1)}},
			Schema:  kvSchema,
			Options: Options{Elastic: true, MaxSources: 2},
		}
		if err := FlowInit(p, e.reg, e.c, ok); err != nil {
			t.Errorf("zero-source elastic flow rejected: %v", err)
		}
		// Attaching to a non-elastic flow fails.
		plain := FlowSpec{
			Name:    "plain",
			Sources: []Endpoint{{Node: e.c.Node(0)}},
			Targets: []Endpoint{{Node: e.c.Node(1)}},
			Schema:  kvSchema,
		}
		if err := FlowInit(p, e.reg, e.c, plain); err != nil {
			t.Error(err)
		}
		if _, err := AttachSource(p, e.reg, "plain", Endpoint{Node: e.c.Node(0)}); err == nil {
			t.Error("AttachSource on non-elastic flow accepted")
		}
	})
	// The zero-src and plain flows never run; drop their unmatched target
	// opens by not spawning targets (registry entries are inert).
	e.run(t)
}

func TestElasticAttachLimits(t *testing.T) {
	e := newEnv(t, 3)
	spec := FlowSpec{
		Name:    "limits",
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}},
		Schema:  kvSchema,
		Options: Options{Elastic: true, MaxSources: 2},
	}
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, _ := TargetOpen(p, e.reg, "limits", 0)
		for {
			if _, ok := tgt.Consume(p); !ok {
				return
			}
		}
	})
	e.k.Spawn("driver", func(p *sim.Proc) {
		s0, err := SourceOpen(p, e.reg, "limits", 0)
		if err != nil {
			t.Error(err)
			return
		}
		s1, err := AttachSource(p, e.reg, "limits", Endpoint{Node: e.c.Node(1)})
		if err != nil {
			t.Errorf("second attach failed: %v", err)
			return
		}
		if _, err := AttachSource(p, e.reg, "limits", Endpoint{Node: e.c.Node(1)}); err == nil {
			t.Error("attach beyond MaxSources accepted")
		}
		_ = s0.Push(p, mkTuple(1, 1))
		_ = s1.Push(p, mkTuple(2, 2))
		s0.Close(p)
		s1.Close(p)
		if err := Seal(p, e.reg, "limits"); err != nil {
			t.Error(err)
		}
		if _, err := AttachSource(p, e.reg, "limits", Endpoint{Node: e.c.Node(1)}); err == nil {
			t.Error("attach after seal accepted")
		}
	})
	e.run(t)
}

func TestElasticFlowZeroSourcesEndsAfterSeal(t *testing.T) {
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "empty-elastic",
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{Elastic: true, MaxSources: 2},
	}
	var consumed uint64
	e.k.Spawn("init", func(p *sim.Proc) { _ = FlowInit(p, e.reg, e.c, spec) })
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, "empty-elastic", 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, ok := tgt.Consume(p); !ok {
				consumed = tgt.Consumed()
				return
			}
		}
	})
	e.k.Spawn("sealer", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond)
		_ = Seal(p, e.reg, "empty-elastic")
	})
	e.run(t)
	if consumed != 0 {
		t.Fatalf("consumed %d from an empty flow", consumed)
	}
}
