package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/sim"
	"dfi/internal/transport/sharedring"
)

// Connection-scaling sweep (ISSUE 10 acceptance): O(1000) concurrent
// small shared-ring flows over a 4-node cluster and a 4-shard registry
// must move the same total payload at an aggregate virtual throughput
// within 10% of a 100-flow baseline, with lease-renewal traffic
// sublinear in the flow count (batched per node, one RPC per shard
// touched) and per-ring credit conservation intact — all while ~5% of
// the flows lose a target to an administrative eviction mid-burst.
// Seed-swept via DFI_CHAOS_SEED (`make chaos-scale`).

// scaleRun is one simulated fleet's outcome.
type scaleRun struct {
	delivered uint64        // tuples handed to applications, all flows
	makespan  time.Duration // first push start → last target finish
	leaseRPCs uint64        // batched renewal round trips, all shards
}

// throughput is the run's aggregate data rate in tuples per second of
// virtual time.
func (r scaleRun) throughput() float64 {
	if r.makespan <= 0 {
		return 0
	}
	return float64(r.delivered) / r.makespan.Seconds()
}

// runScaleFleet simulates `flows` shared-ring flows of `perFlow` tuples
// each: sources on nodes 0/1, targets on nodes 2/3, every 20th flow
// carrying a second target that a chaos process evicts mid-burst.
func runScaleFleet(t *testing.T, flows, perFlow, shards int) scaleRun {
	t.Helper()
	k := sim.New(testSeed())
	k.Deadline = 60 * time.Second
	k.MaxEvents = 200_000_000
	c := fabric.NewCluster(k, 4, fabric.DefaultConfig())
	reg := registry.NewSharded(k, shards)

	specs := make([]FlowSpec, flows)
	for f := 0; f < flows; f++ {
		spec := FlowSpec{
			Name:    fmt.Sprintf("scale-f%d", f),
			Schema:  kvSchema,
			Sources: []Endpoint{{Node: c.Node(f % 2)}},
			Targets: []Endpoint{{Node: c.Node(2 + f%2)}},
			Options: Options{
				SharedRings:  true,
				SegmentSize:  256,
				// Tight enough that the fleet's drain spans several renewal
				// ticks (flat-out pushes finish in tens of microseconds of
				// virtual time).
				LeaseTTL: 30 * time.Microsecond,
				Tenant:       fmt.Sprintf("tenant%d", f%4),
				TenantWeight: 1 + f%3,
			},
		}
		if f%20 == 5 {
			// The eviction victims: a second target on the other node, so
			// the survivor keeps the flow alive after the chaos strike.
			spec.Targets = append(spec.Targets, Endpoint{Node: c.Node(2 + (f+1)%2)})
		}
		specs[f] = spec
	}

	var mu sync.Mutex
	var pushStart, finish time.Duration = 1 << 62, 0
	var delivered uint64
	perFlowSeen := make([]map[int64]bool, flows)
	for f := range perFlowSeen {
		perFlowSeen[f] = make(map[int64]bool)
	}

	// Parallel init: a single sequential initializer would stretch the
	// scaled run's makespan with pure control-plane serialization.
	const initers = 16
	for w := 0; w < initers; w++ {
		w := w
		k.Spawn(fmt.Sprintf("init%d", w), func(p *sim.Proc) {
			for f := w; f < flows; f += initers {
				if err := FlowInit(p, reg, c, specs[f]); err != nil {
					t.Errorf("init flow %d: %v", f, err)
				}
			}
		})
	}

	for f := 0; f < flows; f++ {
		f := f
		k.Spawn(fmt.Sprintf("src%d", f), func(p *sim.Proc) {
			src, err := SourceOpen(p, reg, specs[f].Name, 0)
			if err != nil {
				t.Errorf("flow %d source open: %v", f, err)
				return
			}
			mu.Lock()
			if now := p.Now(); now < pushStart {
				pushStart = now
			}
			mu.Unlock()
			for i := 0; i < perFlow; i++ {
				key := int64(i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Errorf("flow %d push %d: %v", f, i, err)
					return
				}
			}
			if err := src.Close(p); err != nil {
				t.Errorf("flow %d close: %v", f, err)
			}
		})
		for ti := range specs[f].Targets {
			ti := ti
			k.Spawn(fmt.Sprintf("tgt%d.%d", f, ti), func(p *sim.Proc) {
				tgt, err := TargetOpen(p, reg, specs[f].Name, ti)
				if err != nil {
					t.Errorf("flow %d target %d open: %v", f, ti, err)
					return
				}
				for {
					tup, ok := tgt.Consume(p)
					if !ok {
						break
					}
					key := kvSchema.Int64(tup, 0)
					mu.Lock()
					if perFlowSeen[f][key] {
						t.Errorf("flow %d: key %d delivered twice", f, key)
					}
					perFlowSeen[f][key] = true
					delivered++
					mu.Unlock()
				}
				mu.Lock()
				if now := p.Now(); now > finish {
					finish = now
				}
				mu.Unlock()
			})
		}
	}

	k.Spawn("chaos", func(p *sim.Proc) {
		strike := 0
		for f := 5; f < flows; f += 20 {
			p.Sleep(3*time.Microsecond + time.Duration(strike%8)*2*time.Microsecond)
			// The flow may already have drained on fast seeds; a failed
			// strike is not an error, just a missed shot.
			_ = reg.Evict(p, specs[f].Name, registry.RoleTarget, 1)
			strike++
		}
	})

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	// Every single-target flow delivers exactly perFlow tuples; an
	// evicted flow may lose its in-flight window (at-most-once) but
	// never duplicates, and its survivor must still carry tuples.
	for f := 0; f < flows; f++ {
		got := len(perFlowSeen[f])
		if f%20 == 5 {
			if got == 0 {
				t.Errorf("evicted flow %d delivered nothing", f)
			}
			if got > perFlow {
				t.Errorf("evicted flow %d delivered %d tuples, more than the %d pushed", f, got, perFlow)
			}
			continue
		}
		if got != perFlow {
			t.Errorf("flow %d delivered %d tuples, want %d", f, got, perFlow)
		}
	}
	for _, l := range sharedring.PoolOf(c, sharedring.Config{}).Links() {
		if err := l.CheckConservation(); err != nil {
			t.Errorf("link %d->%d: %v", l.Src().ID(), l.Dst().ID(), err)
		}
	}
	return scaleRun{
		delivered: delivered,
		makespan:  finish - pushStart,
		leaseRPCs: reg.LeaseRenewRPCs(),
	}
}

func TestChaosScaleSharedFlows(t *testing.T) {
	baseFlows, bigFlows, tot := 100, 1000, 100_000
	if testing.Short() {
		baseFlows, bigFlows, tot = 64, 256, 16_384
	}
	base := runScaleFleet(t, baseFlows, tot/baseFlows, 4)
	big := runScaleFleet(t, bigFlows, tot/bigFlows, 4)
	t.Logf("baseline: %d flows, %d tuples in %v (%.0f tuples/s, %d lease RPCs)",
		baseFlows, base.delivered, base.makespan, base.throughput(), base.leaseRPCs)
	t.Logf("scaled:   %d flows, %d tuples in %v (%.0f tuples/s, %d lease RPCs)",
		bigFlows, big.delivered, big.makespan, big.throughput(), big.leaseRPCs)

	// Scaling criterion: 10x the flows moving the same total payload may
	// cost at most 10% aggregate throughput.
	if bt, st := base.throughput(), big.throughput(); st < 0.9*bt {
		t.Errorf("aggregate throughput degraded: %.0f tuples/s at %d flows vs %.0f at %d (%.1f%%)",
			st, bigFlows, bt, baseFlows, 100*st/bt)
	}

	// Lease-traffic criterion: renewals batch per (node, shard, tick), so
	// the round-trip count must stay far below one per flow and must not
	// scale with the flow count.
	if big.leaseRPCs == 0 {
		t.Fatal("scaled run recorded no lease-renewal RPCs")
	}
	if big.leaseRPCs >= uint64(bigFlows) {
		t.Errorf("lease traffic linear in flows: %d renewal RPCs for %d flows", big.leaseRPCs, bigFlows)
	}
	if limit := 3*base.leaseRPCs + 32; big.leaseRPCs > limit {
		t.Errorf("lease traffic scaled with flow count: %d RPCs at %d flows vs %d at %d",
			big.leaseRPCs, bigFlows, base.leaseRPCs, baseFlows)
	}
}
