package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"dfi/internal/metrics"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/transport"
)

// Multicast replicate flows (paper §5.4) ride on two-sided unreliable
// multicast instead of one-sided ring writes:
//
//   - Targets pre-populate their receive queues with as many buffers as
//     the credit score allows; sources track per-target credit from a
//     back-flow of credit messages, so ordinary sends need no
//     coordination.
//   - Segments carry sequence numbers; targets detect losses as gaps and,
//     after a configurable timeout, request retransmission with a NACK on
//     a reliable reverse queue pair (or surface the gap to the
//     application when Options.NotifyGaps is set — the NOPaxos use case).
//   - Globally ordered flows draw sequence numbers from a tuple sequencer
//     (an RDMA fetch-and-add counter) and reorder out-of-order arrivals at
//     the target with a receive list / next list (paper Figure 6).
//
// End-of-flow markers and retransmissions travel on the reliable per-pair
// queue pairs so termination does not depend on lossy multicast.
//
// With Options.LeaseTTL set, multicast endpoints are first-class members
// of the flow's lease/epoch control plane (see docs/PROTOCOL.md,
// "Ordered replicate failure model"): segment headers carry the
// membership epoch, an evicted source triggers a bounded gap-agreement
// round over the survivors instead of a heuristic skip, an evicted
// target is detached from the group and the credit accounting, and a
// rejoining target resumes from an installable sequencer snapshot.

// Multicast message header: fill(4) flags(1) srcIdx(1) epoch(2) seq(8).
// The epoch field is the low 16 bits of the membership epoch the sender
// had folded in (0 on flows without leases).
const mcHeaderBytes = 16

// Control message (16 bytes): kind(1) srcIdx(1) rsvd(6) value(8).
// ctrlGapHave appends a full segment copy after the fixed header.
// Control messages travel only on the reliable per-pair QPs, so none of
// them can be lost — the gap-agreement protocol needs no retries beyond
// the requester's periodic re-query.
const (
	ctrlBytes  = 16
	ctrlCredit = 1
	ctrlNack   = 2

	// Gap agreement (ordered flows under leases): when NACK rounds for a
	// head gap go unanswered and a source has failed, the stuck target
	// asks the lowest live source to arbitrate. The arbiter probes every
	// live target; a surviving copy is re-broadcast (Have -> data + Fill),
	// and a unanimous NoHave makes the sequence an agreed skip, recorded
	// durably in the registry before the verdict goes out.
	ctrlGapQuery  = 3 // target -> source: arbitrate missing sequence <value>
	ctrlGapProbe  = 4 // source -> target: do you hold sequence <value>?
	ctrlGapHave   = 5 // target -> source: yes — segment copy appended
	ctrlGapNoHave = 6 // target -> source: no, frozen until the verdict
	ctrlGapSkip   = 7 // source -> target: <value> is agreed unfillable
	ctrlGapFill   = 8 // source -> target: <value> was refilled (data precedes)
)

// Gap describes a missing global sequence number surfaced to the
// application of an ordered replicate flow with NotifyGaps.
type Gap struct {
	Seq uint64
}

// mcQPName returns the registry rendezvous key for the reliable QP between
// source i and target j of a flow. inc is the target's incarnation: a
// rejoined target publishes fresh QPs under incarnation-keyed names so
// sources folding the rejoin epoch find them without colliding with the
// previous incarnation's entries.
func mcQPName(flow string, i, j int, inc uint64) string {
	if inc == 0 {
		return fmt.Sprintf("%s/mcqp/%d/%d", flow, i, j)
	}
	return fmt.Sprintf("%s/mcqp/%d/%d/i%d", flow, i, j, inc)
}

// gapRound is one gap-agreement round this source arbitrates: which
// targets have answered the probe for the sequence number. Failed
// targets are pre-answered — the dead cannot vote.
type gapRound struct {
	answered []bool
}

// mcSource is the sending half of a multicast replicate flow.
type mcSource struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node transport.Endpoint
	reg  Registry

	group    transport.Group
	fqps     []transport.Queue // reliable QP to each target (source end)
	ctrlBufs [][]byte     // posted control-recv buffers, recycled by index

	segBuf []byte // current segment: header + payload
	fill   int

	credit int // ring size R
	// sentSegs and payloadBytes are atomic so Source.Stats can be read
	// from a scraper goroutine mid-run; the simulation side is the only
	// writer.
	sentSegs     atomic.Uint64
	payloadBytes atomic.Uint64
	consumedBy   []uint64 // cumulative segments consumed, per target

	history    map[uint64][]byte
	histOrder  []uint64
	seqQP      transport.Queue // to the sequencer node (ordered flows)
	closedFlag bool

	// Control-plane membership (Options.LeaseTTL): the flow's record,
	// the last epoch folded in (stamped on outgoing segment headers),
	// and the target incarnation each reliable QP connected under.
	mem   *registry.Membership
	epoch uint64
	tinc  []uint64

	// Gap-agreement state with this source as arbiter: open rounds by
	// sequence number and the verdicts already reached (also recorded in
	// the registry, which owns the durable copy).
	rounds      map[uint64]*gapRound
	agreedSkips map[uint64]bool

	// Target-failure detection (enabled by Options.RetransmitTimeout): a
	// target whose credit stream stalls past failAfter while it gates the
	// source is declared failed and excluded from flow control and the
	// termination handshake. The staleness clock starts when the target
	// begins gating (gating flips on, lastAdvance resets): a caught-up
	// target sends no credit while the source is idle, so time since its
	// last advance says nothing about its health.
	failedTgt   []bool
	lastAdvance []time.Duration
	gating      []bool
	// evictedTgt marks slots whose failedTgt entry came from a lease
	// eviction rather than the staleness detector: the leg was detached
	// cleanly by the control plane, so close excludes it from the
	// "stopped responding" error — the point-to-point replicate path
	// likewise drops an evicted leg without failing the source.
	evictedTgt []bool

	// Ordered flows: globally drawn sequence numbers owned by this source
	// (monotonic), and how many of them each target has processed. Credit
	// messages carry the target's global progress; the source maps that to
	// its own outstanding window.
	ownSeqs []uint64
	ownIdx  []int

	// Scrape-visible recovery counters (see SourceStats).
	retransmits  atomic.Uint64
	gapRoundsRun atomic.Uint64
	creditStalls atomic.Uint64
}

func newMcSource(p transport.Ctx, reg Registry, meta *flowMeta, idx int) (*mcSource, error) {
	spec := &meta.spec
	s := &mcSource{
		meta:        meta,
		spec:        spec,
		idx:         idx,
		node:        spec.Sources[idx].Node,
		reg:         reg,
		group:       meta.group,
		credit:      spec.Options.SegmentsPerRing,
		consumedBy:  make([]uint64, len(spec.Targets)),
		history:     make(map[uint64][]byte),
		segBuf:      make([]byte, mcHeaderBytes+spec.Options.SegmentSize),
		ownIdx:      make([]int, len(spec.Targets)),
		failedTgt:   make([]bool, len(spec.Targets)),
		evictedTgt:  make([]bool, len(spec.Targets)),
		lastAdvance: make([]time.Duration, len(spec.Targets)),
		gating:      make([]bool, len(spec.Targets)),
		tinc:        make([]uint64, len(spec.Targets)),
	}
	if spec.Options.LeaseTTL > 0 {
		s.mem = reg.MembershipOf(spec.Name)
		if s.mem != nil {
			s.epoch = s.mem.Epoch()
			for j := range s.tinc {
				s.tinc[j] = s.mem.Incarnation(registry.RoleTarget, j)
			}
		}
	}
	if s.agreementEnabled() {
		s.rounds = make(map[uint64]*gapRound)
		s.agreedSkips = make(map[uint64]bool)
	}
	// Reliable per-target QPs: the source creates the pair and publishes
	// the target's end for TargetOpen to collect.
	for j, tgt := range spec.Targets {
		sq, tq := meta.cluster.Dial(s.node, tgt.Node)
		if err := reg.Publish(p, mcQPName(spec.Name, idx, j, 0), tq); err != nil {
			return nil, err
		}
		s.fqps = append(s.fqps, sq)
		// Post receives for control messages (credits / NACKs / agreement).
		s.postCtrlRecvs(sq)
	}
	if spec.Options.GlobalOrdering {
		s.seqQP, _ = meta.cluster.Dial(s.node, meta.seqMR.Owner())
	}
	return s, nil
}

// agreementEnabled reports whether the flow runs the gap-agreement
// protocol: global ordering plus the lease/epoch control plane. Without
// leases the legacy heuristic paths (unilateral skip, immediate
// NotifyGaps surfacing) are kept timing-identical.
func (s *mcSource) agreementEnabled() bool {
	return s.spec.Options.GlobalOrdering && s.spec.Options.LeaseTTL > 0
}

// ctrlBufSize is the control-recv buffer size: agreement flows must fit
// a ctrlGapHave answer carrying a full segment copy.
func (s *mcSource) ctrlBufSize() int {
	if s.agreementEnabled() {
		return ctrlBytes + mcHeaderBytes + s.spec.Options.SegmentSize
	}
	return ctrlBytes
}

// postCtrlRecvs posts the control-message receive window on one
// reliable QP.
func (s *mcSource) postCtrlRecvs(qp transport.Queue) {
	for r := 0; r < 4; r++ {
		buf := make([]byte, s.ctrlBufSize())
		s.ctrlBufs = append(s.ctrlBufs, buf)
		qp.PostRecv(buf, uint64(len(s.ctrlBufs)-1))
	}
}

// failAfter returns how long a target's credit stream may gate the source
// before the target is declared failed (0 disables, keeping the legacy
// unbounded waits).
func (s *mcSource) failAfter() time.Duration {
	if s.spec.Options.RetransmitTimeout <= 0 {
		return 0
	}
	return s.spec.Options.RetransmitTimeout * time.Duration(s.spec.Options.MaxRetransmits+1)
}

// allTargetsFailed reports whether no live target remains.
func (s *mcSource) allTargetsFailed() bool {
	for _, f := range s.failedTgt {
		if !f {
			return false
		}
	}
	return true
}

// syncMcEpoch folds control-plane membership changes into the multicast
// transport. A no-op (one integer compare) while the epoch is unchanged.
// This source's own eviction breaks the flow (epoch fencing); an evicted
// target is detached from the multicast group and excluded from credit;
// an incarnation bump on a live target slot means the target rejoined —
// the source reconnects to the fresh reliable QP the rejoiner published
// and restarts the slot's credit accounting from the sequencer snapshot
// it installed.
func (s *mcSource) syncMcEpoch(p transport.Ctx) error {
	if s.mem == nil || s.mem.Epoch() == s.epoch {
		return nil
	}
	s.epoch = s.mem.Epoch()
	if s.mem.SourceEvicted(s.idx) {
		return fmt.Errorf("%w: source %d was evicted from flow %q (epoch %d)",
			ErrFlowBroken, s.idx, s.spec.Name, s.epoch)
	}
	for j := range s.fqps {
		if s.mem.TargetEvicted(j) {
			if !s.failedTgt[j] {
				s.failedTgt[j] = true
				s.group.Detach(j)
			}
			s.evictedTgt[j] = true
			continue
		}
		if inc := s.mem.Incarnation(registry.RoleTarget, j); inc != s.tinc[j] {
			s.reconnectTarget(p, j, inc)
		}
	}
	return nil
}

// reconnectTarget folds a target rejoin: the rejoiner created fresh QP
// pairs and published this source's end under the incarnation-keyed
// rendezvous name *before* its Rejoin bumped the epoch, so the lookup
// cannot miss. The slot's credit restarts from the sequencer snapshot
// the rejoiner installed.
func (s *mcSource) reconnectTarget(p transport.Ctx, j int, inc uint64) {
	v, ok := s.reg.Lookup(p, mcQPName(s.spec.Name, s.idx, j, inc))
	if !ok {
		// Epoch bumped before publication — rejoin publishes first, so
		// this means a foreign bump raced in. Keep the slot failed; the
		// next epoch fold retries.
		s.failedTgt[j] = true
		return
	}
	qp := v.(transport.Queue)
	s.fqps[j] = qp
	s.postCtrlRecvs(qp)
	if s.spec.Options.GlobalOrdering {
		snap, _ := s.reg.SeqSnapshot(p, s.spec.Name)
		i := 0
		for i < len(s.ownSeqs) && s.ownSeqs[i] < snap.HighWater {
			i++
		}
		s.ownIdx[j] = i
		s.consumedBy[j] = uint64(i)
	} else {
		s.consumedBy[j] = s.sentSegs.Load()
	}
	s.failedTgt[j] = false
	s.evictedTgt[j] = false
	s.tinc[j] = inc
	s.gating[j] = false
	s.lastAdvance[j] = p.Now()
	if s.closedFlag {
		// The stream already closed: the end marker went to the previous
		// incarnation. Resend it on the fresh QP.
		qp.Send(p, s.endMarker(), false, 0)
	}
}

// endMarker builds the reliable end-of-flow message: a header-only
// segment whose seq field carries the per-source segment count.
func (s *mcSource) endMarker() []byte {
	end := make([]byte, mcHeaderBytes)
	binary.LittleEndian.PutUint32(end[0:4], 0)
	end[4] = flagConsumable | flagEndOfFlow
	end[5] = byte(s.idx)
	binary.LittleEndian.PutUint16(end[6:8], uint16(s.epoch))
	binary.LittleEndian.PutUint64(end[8:16], s.sentSegs.Load()) // segment count
	return end
}

// push appends a tuple, transmitting the segment when full (bandwidth
// mode) or immediately (latency mode).
func (s *mcSource) push(p transport.Ctx, t schema.Tuple) error {
	if s.fill+len(t) > s.spec.Options.SegmentSize {
		if err := s.sendSegment(p, false); err != nil {
			return err
		}
	}
	copy(s.segBuf[mcHeaderBytes+s.fill:], t)
	s.fill += len(t)
	if s.spec.Options.Optimization == OptimizeLatency {
		return s.sendSegment(p, false)
	}
	return nil
}

func (s *mcSource) flush(p transport.Ctx) error {
	if s.fill > 0 {
		return s.sendSegment(p, false)
	}
	return nil
}

// sendSegment stamps the header, draws a sequence number (global for
// ordered flows, per-source otherwise), retains the segment for
// retransmission, and multicasts it.
func (s *mcSource) sendSegment(p transport.Ctx, end bool) error {
	if err := s.syncMcEpoch(p); err != nil {
		return err
	}
	if err := s.ensureCredit(p); err != nil {
		return err
	}
	s.drainControl(p)
	if s.allTargetsFailed() {
		return fmt.Errorf("%w: every replicate target stopped responding", ErrFlowBroken)
	}

	var seq uint64
	if s.spec.Options.GlobalOrdering {
		// Tuple sequencer: one fetch-and-add round trip per segment
		// (paper §5.4); with programmable switches this could move into
		// the network. A crashed sequencer node surfaces as a broken
		// flow, not as a silently repeated sequence number.
		v, ok := s.seqQP.FetchAddChecked(p, transport.Addr{MR: s.meta.seqMR}, 1)
		if !ok {
			return fmt.Errorf("%w: sequencer node for flow %q is unreachable", ErrFlowBroken, s.spec.Name)
		}
		seq = v
		s.ownSeqs = append(s.ownSeqs, seq)
	} else {
		seq = s.sentSegs.Load()
	}
	flags := byte(flagConsumable)
	if end {
		flags |= flagEndOfFlow
	}
	h := s.segBuf
	binary.LittleEndian.PutUint32(h[0:4], uint32(s.fill))
	h[4] = flags
	h[5] = byte(s.idx)
	binary.LittleEndian.PutUint16(h[6:8], uint16(s.epoch))
	binary.LittleEndian.PutUint64(h[8:16], seq)

	msg := make([]byte, mcHeaderBytes+s.fill)
	copy(msg, s.segBuf[:mcHeaderBytes+s.fill])
	s.history[seq] = msg
	s.histOrder = append(s.histOrder, seq)
	if len(s.histOrder) > 4*s.credit {
		old := s.histOrder[0]
		s.histOrder = s.histOrder[1:]
		delete(s.history, old)
	}

	s.group.Send(p, s.node, msg, false)
	s.sentSegs.Add(1)
	s.payloadBytes.Add(uint64(s.fill))
	s.fill = 0
	return nil
}

// ensureCredit blocks while any live target's outstanding window is full.
// With RetransmitTimeout set, a target whose credit gates the source past
// failAfter is declared failed and excluded — a crashed target must not
// wedge the surviving replicas. Membership changes are folded while
// gated, so a lease eviction releases the gate ahead of the timeout.
func (s *mcSource) ensureCredit(p transport.Ctx) error {
	failAfter := s.failAfter()
	for {
		if err := s.syncMcEpoch(p); err != nil {
			return err
		}
		lag := -1
		for j := range s.consumedBy {
			if s.failedTgt[j] {
				continue
			}
			if int(s.sentSegs.Load()-s.consumedBy[j]) >= s.credit {
				lag = j
				break
			}
		}
		if lag < 0 {
			return nil
		}
		now := p.Now()
		if !s.gating[lag] {
			s.gating[lag] = true
			s.lastAdvance[lag] = now
			s.creditStalls.Add(1)
		}
		if failAfter > 0 && now-s.lastAdvance[lag] > failAfter {
			s.failedTgt[lag] = true
			continue
		}
		if c, ok := s.fqps[lag].RecvCQ().WaitTimeout(p, 5*time.Microsecond); ok {
			s.handleControl(p, lag, c)
		}
		s.drainControl(p)
	}
}

// drainControl processes pending credit and NACK messages from all
// targets without blocking.
func (s *mcSource) drainControl(p transport.Ctx) {
	for j, qp := range s.fqps {
		for qp.RecvCQ().Len() > 0 {
			c, ok := qp.RecvCQ().Poll(p)
			if !ok {
				break
			}
			s.handleControl(p, j, c)
		}
	}
}

func (s *mcSource) handleControl(p transport.Ctx, target int, c transport.Completion) {
	buf := s.ctrlBufs[c.ID]
	kind := buf[0]
	value := binary.LittleEndian.Uint64(buf[8:16])
	var payload []byte
	if c.Bytes > ctrlBytes {
		// ctrlGapHave carries a segment copy after the fixed header; copy
		// it out before the buffer is recycled.
		payload = append([]byte(nil), buf[ctrlBytes:c.Bytes]...)
	}
	s.fqps[target].PostRecv(buf, c.ID) // recycle the buffer
	switch kind {
	case ctrlCredit:
		if s.spec.Options.GlobalOrdering {
			// value is the target's global progress (next undelivered
			// sequence); count how many of our own segments lie below it.
			i := s.ownIdx[target]
			for i < len(s.ownSeqs) && s.ownSeqs[i] < value {
				i++
			}
			s.ownIdx[target] = i
			if uint64(i) > s.consumedBy[target] {
				s.consumedBy[target] = uint64(i)
				s.noteAdvance(p, target)
			}
		} else if value > s.consumedBy[target] {
			s.consumedBy[target] = value
			s.noteAdvance(p, target)
		}
	case ctrlNack:
		if msg, ok := s.history[value]; ok {
			// Reliable unicast retransmission to the requesting target.
			s.fqps[target].Send(p, msg, false, 0)
			s.retransmits.Add(1)
		}
	case ctrlGapQuery:
		// Agreement traffic is proof of life: a target stuck behind a
		// crashed source's gaps sends no credit while rounds resolve one
		// sequence at a time, and that backlog must not read as a dead
		// target to the staleness detector. Only the clock resets — the
		// target keeps gating until real credit advances it.
		s.lastAdvance[target] = p.Now()
		s.handleGapQuery(p, target, value)
	case ctrlGapHave:
		s.lastAdvance[target] = p.Now()
		s.handleGapHave(p, value, payload)
	case ctrlGapNoHave:
		s.lastAdvance[target] = p.Now()
		s.handleGapNoHave(p, target, value)
	}
}

// sendGapCtrl sends one fixed-size agreement control message to target j.
func (s *mcSource) sendGapCtrl(p transport.Ctx, j int, kind byte, seq uint64) {
	msg := make([]byte, ctrlBytes)
	msg[0] = kind
	msg[1] = byte(s.idx)
	binary.LittleEndian.PutUint64(msg[8:16], seq)
	s.fqps[j].Send(p, msg, false, 0)
}

// handleGapQuery arbitrates a head gap a target reported stuck: a
// history hit answers with a plain retransmission, an already-agreed
// skip re-announces the verdict, and anything else opens — or re-probes
// — an agreement round over the live targets. Requesters re-query while
// stuck, so a probe outstanding toward a target that dies mid-round is
// retried against the post-eviction membership.
func (s *mcSource) handleGapQuery(p transport.Ctx, from int, seq uint64) {
	if !s.agreementEnabled() {
		return
	}
	if msg, ok := s.history[seq]; ok {
		s.fqps[from].Send(p, msg, false, 0)
		s.retransmits.Add(1)
		return
	}
	if s.agreedSkips[seq] {
		s.sendGapCtrl(p, from, ctrlGapSkip, seq)
		return
	}
	r := s.rounds[seq]
	if r == nil {
		r = &gapRound{answered: make([]bool, len(s.fqps))}
		s.rounds[seq] = r
		s.gapRoundsRun.Add(1)
	}
	open := false
	for j := range r.answered {
		if s.failedTgt[j] {
			r.answered[j] = true
			continue
		}
		if !r.answered[j] {
			s.sendGapCtrl(p, j, ctrlGapProbe, seq)
			open = true
		}
	}
	if !open {
		// Every remaining voter is dead; the round degenerates to a skip.
		s.closeRound(p, seq, r)
	}
}

// handleGapHave resolves a round affirmatively: a live target still held
// the sequence. The copy is re-broadcast on the reliable QPs — data
// first, then the Fill verdict, which RC in-order delivery keeps behind
// the data — unfreezing every target that answered NoHave.
func (s *mcSource) handleGapHave(p transport.Ctx, seq uint64, payload []byte) {
	r := s.rounds[seq]
	if r == nil {
		return // round already closed (late or duplicate answer)
	}
	delete(s.rounds, seq)
	if len(payload) > 0 {
		s.history[seq] = payload
		s.histOrder = append(s.histOrder, seq)
	}
	msg, ok := s.history[seq]
	if !ok {
		return
	}
	for j := range s.fqps {
		if s.failedTgt[j] {
			continue
		}
		s.fqps[j].Send(p, msg, false, 0)
		s.sendGapCtrl(p, j, ctrlGapFill, seq)
	}
	s.retransmits.Add(1)
}

// handleGapNoHave records one negative vote; a unanimous round closes as
// an agreed skip.
func (s *mcSource) handleGapNoHave(p transport.Ctx, from int, seq uint64) {
	r := s.rounds[seq]
	if r == nil {
		return
	}
	r.answered[from] = true
	for j := range r.answered {
		if s.failedTgt[j] {
			r.answered[j] = true
		}
		if !r.answered[j] {
			return
		}
	}
	s.closeRound(p, seq, r)
}

// closeRound finalizes an agreed skip: the verdict is recorded durably
// in the registry first (emitting the gap_agreement event and folding
// the skip into future rejoin snapshots), then announced to the live
// targets. Registering before announcing means a target that acts on the
// verdict can never observe the registry without it.
func (s *mcSource) closeRound(p transport.Ctx, seq uint64, r *gapRound) {
	delete(s.rounds, seq)
	s.agreedSkips[seq] = true
	_ = s.reg.RecordSeqSkips(p, s.spec.Name, s.epoch, seq)
	for j := range s.fqps {
		if s.failedTgt[j] {
			continue
		}
		s.sendGapCtrl(p, j, ctrlGapSkip, seq)
	}
}

// noteAdvance records consumption progress by a target (failure-detection
// bookkeeping): the staleness clock resets and any future gate episode
// restarts its grace period.
func (s *mcSource) noteAdvance(p transport.Ctx, target int) {
	s.gating[target] = false
	s.lastAdvance[target] = p.Now()
}

// close flushes, sends reliable end markers carrying the per-source
// segment count, and lingers until every live target has consumed
// everything — serving retransmission requests and arbitrating gap
// rounds meanwhile. With RetransmitTimeout set the linger is bounded per
// target: one that stops acknowledging is declared failed, and close
// reports it with an ErrFlowBroken-wrapped error instead of hanging.
// Lease evictions folded mid-linger release their targets immediately.
func (s *mcSource) close(p transport.Ctx) error {
	if s.closedFlag {
		return nil
	}
	s.closedFlag = true
	if err := s.flush(p); err != nil {
		return err
	}
	if err := s.syncMcEpoch(p); err != nil {
		return err
	}
	end := s.endMarker()
	for j, qp := range s.fqps {
		if s.failedTgt[j] {
			continue
		}
		qp.Send(p, end, false, 0)
	}
	failAfter := s.failAfter()
	for j := range s.lastAdvance {
		s.gating[j] = true
		s.lastAdvance[j] = p.Now() // grace restarts at close
	}
	for {
		if err := s.syncMcEpoch(p); err != nil {
			return err
		}
		pending := false
		for j, v := range s.consumedBy {
			if s.failedTgt[j] {
				continue
			}
			if v < s.sentSegs.Load() {
				if failAfter > 0 && p.Now()-s.lastAdvance[j] > failAfter {
					s.failedTgt[j] = true
					continue
				}
				pending = true
			}
		}
		if !pending {
			break
		}
		for j, qp := range s.fqps {
			if s.failedTgt[j] {
				continue
			}
			if c, ok := qp.RecvCQ().WaitTimeout(p, s.spec.Options.GapTimeout); ok {
				s.handleControl(p, j, c)
			}
		}
		s.drainControl(p)
	}
	var failed []int
	for j, f := range s.failedTgt {
		if f && !s.evictedTgt[j] {
			failed = append(failed, j)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%w: replicate targets %v stopped responding", ErrFlowBroken, failed)
	}
	return nil
}

func (s *mcSource) free() {}

// mcTarget is the receiving half of a multicast replicate flow.
type mcTarget struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node transport.Endpoint
	reg  Registry

	ep   transport.GroupEndpoint
	tqps []transport.Queue // reliable QP from each source (target end)

	pool   [][]byte // recycled receive buffers
	poolMR transport.Region

	// Per-source protocol state (per-source sequences when unordered).
	nextSeq []uint64 // next expected per-source seq (unordered)
	// delivered is atomic per slot so Target.Stats can sum it from a
	// scraper goroutine mid-run.
	delivered []atomic.Uint64 // segments delivered per source
	endCount  []uint64        // expected per-source count (from end marker)
	ended     []bool
	creditAcc []uint64 // segments consumed since last credit msg

	// Ordered-flow state: the "next list" of Figure 6 is the pending map
	// keyed by global seq; the receive list is the fabric receive queue.
	nextGlobal uint64
	pending    map[uint64][]byte

	gapSince   time.Duration // when the current head gap was first observed
	gapPending bool
	gap        Gap
	gapNacks   int // unanswered NACK rounds for the current head gap

	// Source-failure detection (Options.SourceTimeout), mirroring the
	// ring-transport detectFailures: a source that goes silent past the
	// timeout is declared failed and treated as ended at its delivered
	// count; ordered flows additionally escalate its unanswerable gaps
	// to the agreement protocol (or, without leases, skip heuristically
	// once NACK rounds go unanswered).
	heard     []bool
	lastHeard []time.Duration
	failedSrc []atomic.Bool // atomic: read by Target.FailedSources under scrape

	// Control-plane membership (Options.LeaseTTL): the flow's record,
	// the last epoch folded in, this target's incarnation, and whether
	// the control plane evicted this slot.
	mem     *registry.Membership
	epoch   uint64
	inc     uint64
	evicted bool

	// Gap-agreement state (agreement flows only): copies of recently
	// delivered segments so probes for a live head can be answered after
	// delivery, the agreed-skip set, and sequences frozen by a NoHave
	// answer (they must not be delivered until the round's verdict — a
	// late arrival overtaking the verdict would diverge from peers that
	// skipped). dhist is bounded by credit gating: a target stuck at S
	// stalls every source within one credit window, so live heads stay
	// within ~nSrc·R of S.
	dhist       map[uint64][]byte
	dhistOrder  []uint64
	skips       map[uint64]bool
	frozen      map[uint64]int // seq -> probing source slot
	responderUp bool

	// Progress reporting (agreement flows): total segments delivered and
	// the next checkpoint at which RecordSeqProgress is called.
	totalDelivered uint64
	progressAt     uint64

	// Sequencer access (ordered flows): once every source has ended or
	// failed, the counter's value is the exact global sequence-space
	// size — the authoritative stream extent even when a source crashed
	// mid-stream without an end marker (see seqSpaceSize).
	seqQP         transport.Queue
	seqSpace      uint64
	seqSpaceKnown bool

	// Scrape-visible recovery counters (see TargetStats).
	nacksSent   atomic.Uint64
	gapsSkipped atomic.Uint64

	active    []byte
	segOff    int
	remaining int
	tupleSize int
	done      bool
}

// agreementEnabled mirrors mcSource.agreementEnabled for the target side.
func (t *mcTarget) agreementEnabled() bool {
	return t.spec.Options.GlobalOrdering && t.spec.Options.LeaseTTL > 0 && t.mem != nil
}

// newMcTargetState builds the transport-independent part of an mcTarget:
// buffers, per-source state, membership wiring.
func newMcTargetState(reg Registry, meta *flowMeta, idx int, node transport.Endpoint) *mcTarget {
	spec := &meta.spec
	nSrc := len(spec.Sources)
	R := spec.Options.SegmentsPerRing
	t := &mcTarget{
		meta:      meta,
		spec:      spec,
		idx:       idx,
		node:      node,
		reg:       reg,
		nextSeq:   make([]uint64, nSrc),
		delivered: make([]atomic.Uint64, nSrc),
		endCount:  make([]uint64, nSrc),
		ended:     make([]bool, nSrc),
		creditAcc: make([]uint64, nSrc),
		pending:   make(map[uint64][]byte),
		tupleSize: spec.Schema.TupleSize(),
		heard:     make([]bool, nSrc),
		lastHeard: make([]time.Duration, nSrc),
		failedSrc: make([]atomic.Bool, nSrc),
	}
	if spec.Options.LeaseTTL > 0 {
		t.mem = reg.MembershipOf(spec.Name)
		if t.mem != nil {
			t.epoch = t.mem.Epoch()
		}
	}
	if t.agreementEnabled() {
		t.dhist = make(map[uint64][]byte)
		t.skips = make(map[uint64]bool)
		t.frozen = make(map[uint64]int)
		t.seqQP, _ = meta.cluster.Dial(node, meta.seqMR.Owner())
	}
	stride := mcHeaderBytes + spec.Options.SegmentSize
	// One slab backs all receive buffers (registered for accounting). The
	// posted queues hold nSrc*R (multicast) + nSrc*(R+2) (reliable path)
	// buffers at all times; pending reordering and the active segment hold
	// at most as many again.
	nBufs := 2*(nSrc*R+nSrc*(R+2)) + 8
	t.poolMR = meta.cluster.OpenRegion(t.node, nBufs*stride)
	slab := t.poolMR.Bytes()
	for i := 0; i < nBufs; i++ {
		t.pool = append(t.pool, slab[i*stride:(i+1)*stride])
	}
	return t
}

func newMcTarget(p transport.Ctx, reg Registry, meta *flowMeta, idx int) (*mcTarget, error) {
	spec := &meta.spec
	t := newMcTargetState(reg, meta, idx, spec.Targets[idx].Node)
	t.ep = meta.group.Member(idx)
	nSrc := len(spec.Sources)
	R := spec.Options.SegmentsPerRing
	// Pre-populate the multicast receive queue with the credit score (R
	// buffers per source).
	for i := 0; i < nSrc*R; i++ {
		t.ep.PostRecv(t.takeBuf(), 0)
	}
	// Reliable QPs from each source (retransmissions + end markers).
	for i := 0; i < nSrc; i++ {
		qp := reg.WaitFlow(p, mcQPName(spec.Name, i, idx, 0)).(transport.Queue)
		t.tqps = append(t.tqps, qp)
		for r := 0; r < R+2; r++ {
			qp.PostRecv(t.takeBuf(), 0)
		}
	}
	return t, nil
}

// newMcTargetRejoin rebuilds the receiving half of an ordered multicast
// flow for a target re-attaching after eviction. The rejoiner cannot
// replay the stream (multicast history is bounded); instead it installs
// the registry's sequencer snapshot — high-water, per-source delivered
// counts, agreed skips — and resumes delivery at the high-water, filling
// the short tail between the last progress report and the live stream
// through the ordinary NACK/agreement machinery. Fresh reliable QPs are
// published under incarnation-keyed rendezvous names *before* Rejoin
// bumps the epoch, so a source folding the bump finds them immediately.
// Sources that already left the flow are folded as ended at their
// snapshot counts: their tail segments have no retransmission history
// and are not replayed (rejoin is meant for flows still streaming).
func newMcTargetRejoin(p transport.Ctx, reg Registry, meta *flowMeta, idx int, node transport.Endpoint) (*mcTarget, error) {
	spec := &meta.spec
	name := spec.Name
	t := newMcTargetState(reg, meta, idx, node)
	if t.mem == nil {
		return nil, fmt.Errorf("dfi: flow %q has no membership record", name)
	}
	nSrc := len(spec.Sources)
	R := spec.Options.SegmentsPerRing
	// Re-attach to the multicast group: the eviction detached this slot's
	// endpoint; a fresh one takes its place.
	t.ep = meta.group.Reattach(idx, node)
	for i := 0; i < nSrc*R; i++ {
		t.ep.PostRecv(t.takeBuf(), 0)
	}
	inc := t.mem.Incarnation(registry.RoleTarget, idx) + 1
	for i, src := range spec.Sources {
		sq, tq := meta.cluster.Dial(src.Node, node)
		if err := reg.Publish(p, mcQPName(name, i, idx, inc), sq); err != nil {
			return nil, err
		}
		t.tqps = append(t.tqps, tq)
		for r := 0; r < R+2; r++ {
			tq.PostRecv(t.takeBuf(), 0)
		}
	}
	// Install the sequencer snapshot.
	snap, _ := reg.SeqSnapshot(p, name)
	t.nextGlobal = snap.HighWater
	for _, seq := range snap.Skips {
		if seq >= snap.HighWater {
			t.skips[seq] = true
		}
	}
	for i := 0; i < nSrc; i++ {
		if i < len(snap.PerSource) {
			t.delivered[i].Store(snap.PerSource[i])
		}
		if t.mem.SourceEvicted(i) {
			t.failedSrc[i].Store(true)
		}
		if t.mem.SourceEvicted(i) || t.mem.State(registry.RoleSource, i) == registry.StateLeft {
			t.ended[i] = true
			t.endCount[i] = t.delivered[i].Load()
		}
	}
	t.totalDelivered = t.nextGlobal
	t.progressAt = t.totalDelivered + uint64(R)
	rj, err := reg.Rejoin(p, name, registry.RoleTarget, idx, idx)
	if err != nil {
		return nil, fmt.Errorf("dfi: rejoin of multicast target %d rejected: %w", idx, err)
	}
	if rj.Incarnation != inc {
		return nil, fmt.Errorf("dfi: rejoin of multicast target %d raced another incarnation (%d != %d)",
			idx, rj.Incarnation, inc)
	}
	t.inc = inc
	t.epoch = t.mem.Epoch()
	// Announce the resumed progress so reconnecting sources restart their
	// credit from the high-water (RC queues the message until the source
	// posts its receives).
	t.broadcastProgress(p)
	if sink := reg.EventSink(); sink != nil {
		sink.Emit(metrics.Event{
			T: p.Now(), Node: fmt.Sprintf("node%d", node.ID()),
			Type: metrics.EvSeqSnapshotInstall, Flow: name, Epoch: t.epoch,
			Role: "target", Slot: idx, Seq: snap.HighWater,
			Detail: fmt.Sprintf("resumed at high-water %d with %d agreed skips", snap.HighWater, len(snap.Skips)),
		})
	}
	return t, nil
}

func (t *mcTarget) takeBuf() []byte {
	if len(t.pool) == 0 {
		// Pool exhaustion cannot happen within the credit window; guard
		// against protocol bugs.
		panic("dfi: multicast receive buffer pool exhausted")
	}
	b := t.pool[len(t.pool)-1]
	t.pool = t.pool[:len(t.pool)-1]
	return b
}

func (t *mcTarget) recycle(buf []byte) {
	t.pool = append(t.pool, buf[:cap(buf)])
}

// key computes the pending-map key for a segment: the global sequence for
// ordered flows, or (source, per-source seq) packed otherwise.
func (t *mcTarget) key(src int, seq uint64) uint64 {
	if t.spec.Options.GlobalOrdering {
		return seq
	}
	return uint64(src)<<48 | seq
}

// recvOrigin is a receive queue a buffer can be (re)posted to: either the
// multicast endpoint or a reliable QP.
type recvOrigin interface {
	PostRecv(buf []byte, id uint64)
}

// isGapCtrl discriminates agreement control messages from data on the
// reliable QPs: a control message is exactly ctrl-sized with a known
// kind byte, while data segments are strictly larger (header + at least
// one tuple) and end markers lead with a zero fill word (first byte 0).
func isGapCtrl(buf []byte, bytes int) bool {
	if bytes != ctrlBytes {
		return false
	}
	switch buf[0] {
	case ctrlGapProbe, ctrlGapSkip, ctrlGapFill:
		return true
	}
	return false
}

// ingest processes one received message. The posted-buffer the message
// arrived in is immediately replaced on its origin queue so the receive
// windows never shrink (losing posted receives would starve the flow).
func (t *mcTarget) ingest(p transport.Ctx, buf []byte, bytes int, origin recvOrigin) {
	origin.PostRecv(t.takeBuf(), 0)
	if t.agreementEnabled() && isGapCtrl(buf, bytes) {
		t.handleGapCtrl(p, buf)
		t.recycle(buf)
		return
	}
	h := buf[:mcHeaderBytes]
	fill := int(binary.LittleEndian.Uint32(h[0:4]))
	flags := h[4]
	src := int(h[5])
	seq := binary.LittleEndian.Uint64(h[8:16])
	if src >= 0 && src < len(t.heard) {
		t.heard[src] = true
		t.lastHeard[src] = p.Now()
	}
	if flags&flagEndOfFlow != 0 && fill == 0 {
		// End marker: seq carries the source's total segment count.
		if !t.ended[src] {
			t.ended[src] = true
			t.endCount[src] = seq
		}
		t.recycle(buf)
		return
	}
	// Duplicate filtering: already delivered, already pending, or agreed
	// skipped (a late copy of a sequence the flow has moved past).
	dup := false
	if t.spec.Options.GlobalOrdering {
		dup = seq < t.nextGlobal || (t.skips != nil && t.skips[seq])
	} else {
		dup = seq < t.nextSeq[src]
	}
	k := t.key(src, seq)
	if dup {
		t.recycle(buf)
		return
	}
	if _, exists := t.pending[k]; exists {
		t.recycle(buf)
		return
	}
	t.pending[k] = buf[:bytes]
	if t.frozen != nil && t.spec.Options.GlobalOrdering {
		if prober, fr := t.frozen[seq]; fr {
			// A copy arrived after this target answered NoHave: hand it to
			// the arbiter proactively so the round resolves as a fill. The
			// sequence stays frozen until the verdict arrives.
			t.sendGapAnswer(p, prober, ctrlGapHave, seq, t.pending[k])
		}
	}
}

// handleGapCtrl processes one agreement control message from a source.
func (t *mcTarget) handleGapCtrl(p transport.Ctx, buf []byte) {
	kind := buf[0]
	src := int(buf[1])
	seq := binary.LittleEndian.Uint64(buf[8:16])
	if src >= 0 && src < len(t.heard) {
		t.heard[src] = true
		t.lastHeard[src] = p.Now()
	}
	switch kind {
	case ctrlGapProbe:
		t.answerProbe(p, src, seq)
	case ctrlGapSkip:
		t.applySkip(seq)
	case ctrlGapFill:
		// The refilled copy preceded this verdict on the same QP (RC
		// in-order delivery); the sequence is deliverable again.
		delete(t.frozen, seq)
	}
}

// answerProbe reports whether this target can supply a probed sequence:
// a pending or recently delivered copy is handed back (Have); an
// agreed-skipped or genuinely missing one is denied (NoHave). Answering
// NoHave freezes the sequence — a late multicast arrival must not be
// delivered past the round's verdict, or this target would keep a
// segment its peers agreed to skip.
func (t *mcTarget) answerProbe(p transport.Ctx, src int, seq uint64) {
	if src < 0 || src >= len(t.tqps) {
		return
	}
	if t.skips[seq] || seq < t.nextGlobal {
		if b, ok := t.dhist[seq]; ok {
			t.sendGapAnswer(p, src, ctrlGapHave, seq, b)
			return
		}
		// Already skipped here (or delivered beyond the history window,
		// which credit gating makes unreachable for live heads).
		t.sendGapAnswer(p, src, ctrlGapNoHave, seq, nil)
		return
	}
	if b, ok := t.pending[seq]; ok {
		t.sendGapAnswer(p, src, ctrlGapHave, seq, b)
		return
	}
	t.frozen[seq] = src
	t.sendGapAnswer(p, src, ctrlGapNoHave, seq, nil)
}

// sendGapAnswer sends one agreement answer, with the segment copy
// appended for Have.
func (t *mcTarget) sendGapAnswer(p transport.Ctx, src int, kind byte, seq uint64, payload []byte) {
	msg := make([]byte, ctrlBytes+len(payload))
	msg[0] = kind
	msg[1] = byte(t.idx)
	binary.LittleEndian.PutUint64(msg[8:16], seq)
	copy(msg[ctrlBytes:], payload)
	t.tqps[src].Send(p, msg, false, 0)
}

// applySkip records an agreed-unfillable sequence. A pending copy is
// discarded — the verdict is final, and delivering a segment the peers
// skipped would break the identical-order guarantee. The head loop
// advances past the skip (or surfaces it under NotifyGaps) on its next
// pass.
func (t *mcTarget) applySkip(seq uint64) {
	delete(t.frozen, seq)
	if seq < t.nextGlobal {
		return
	}
	if b, ok := t.pending[seq]; ok {
		delete(t.pending, seq)
		t.recycle(b)
	}
	t.skips[seq] = true
}

// sendGapQuery escalates a stuck head gap to the arbiter — the lowest
// live source slot — which runs the agreement round.
func (t *mcTarget) sendGapQuery(p transport.Ctx, seq uint64) {
	leader := -1
	for s := range t.failedSrc {
		if !t.failedSrc[s].Load() {
			leader = s
			break
		}
	}
	if leader < 0 {
		return
	}
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlGapQuery
	msg[1] = byte(t.idx)
	binary.LittleEndian.PutUint64(msg[8:16], seq)
	t.tqps[leader].Send(p, msg, false, 0)
}

// poll drains all receive CQs without blocking, ingesting arrivals.
func (t *mcTarget) poll(p transport.Ctx) bool {
	got := false
	for t.ep.RecvCQ().Len() > 0 {
		c, ok := t.ep.RecvCQ().Poll(p)
		if !ok {
			break
		}
		t.ingest(p, c.Buf, c.Bytes, t.ep)
		got = true
	}
	for _, qp := range t.tqps {
		for qp.RecvCQ().Len() > 0 {
			c, ok := qp.RecvCQ().Poll(p)
			if !ok {
				break
			}
			t.ingest(p, c.Buf, c.Bytes, qp)
			got = true
		}
	}
	return got
}

// sendCredit reports cumulative consumption from src back to it, both as
// flow-control credit and as the termination handshake.
func (t *mcTarget) sendCredit(p transport.Ctx, src int, force bool) {
	batch := uint64(t.spec.Options.SegmentsPerRing / 4)
	if batch == 0 {
		batch = 1
	}
	if !force && t.creditAcc[src] < batch {
		return
	}
	t.creditAcc[src] = 0
	if t.spec.Options.GlobalOrdering {
		t.broadcastProgress(p)
		return
	}
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlCredit
	binary.LittleEndian.PutUint64(msg[8:16], t.delivered[src].Load())
	t.tqps[src].Send(p, msg, false, 0)
}

// broadcastProgress tells every source how far the target's global
// sequence progressed (ordered flows): sources translate this into their
// own credit, and skipped gaps count as progress.
func (t *mcTarget) broadcastProgress(p transport.Ctx) {
	for _, qp := range t.tqps {
		msg := make([]byte, ctrlBytes)
		msg[0] = ctrlCredit
		binary.LittleEndian.PutUint64(msg[8:16], t.nextGlobal)
		qp.Send(p, msg, false, 0)
	}
}

// sendFinalCredit fully acknowledges a source at flow end. For ordered
// flows with application-level gap handling, skipped sequence numbers are
// acknowledged as consumed so the source's termination handshake
// completes.
func (t *mcTarget) sendFinalCredit(p transport.Ctx, src int) {
	if t.spec.Options.GlobalOrdering {
		// Global progress (including ResolveGap skips) already covers the
		// whole sequence space by the time the flow finishes; just
		// broadcast it. Forcing nextGlobal forward here would silently
		// drop other sources' undelivered segments.
		t.broadcastProgress(p)
		return
	}
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlCredit
	v := t.delivered[src].Load()
	if t.ended[src] && t.endCount[src] > v {
		v = t.endCount[src]
	}
	binary.LittleEndian.PutUint64(msg[8:16], v)
	t.tqps[src].Send(p, msg, false, 0)
}

// sendNack requests retransmission of a missing sequence number. Ordered
// flows cannot tell which source owns a global sequence number, so the
// NACK goes to every source; only the owner finds it in its history.
func (t *mcTarget) sendNack(p transport.Ctx, seq uint64, src int) {
	t.nacksSent.Add(1)
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlNack
	binary.LittleEndian.PutUint64(msg[8:16], seq)
	if t.spec.Options.GlobalOrdering {
		for _, qp := range t.tqps {
			nack := make([]byte, ctrlBytes)
			copy(nack, msg)
			qp.Send(p, nack, false, 0)
		}
		return
	}
	t.tqps[src].Send(p, msg, false, 0)
}

// headDeliverable returns the pending segment that must be delivered next:
// the next global sequence number for ordered flows, or the next
// per-source sequence scanning sources round-robin otherwise. A frozen
// head (this target answered NoHave for it) is withheld until the
// agreement verdict resolves it as a fill or a skip.
func (t *mcTarget) headDeliverable() (buf []byte, src int, ok bool) {
	if t.spec.Options.GlobalOrdering {
		if t.frozen != nil {
			if _, fr := t.frozen[t.nextGlobal]; fr {
				return nil, 0, false
			}
		}
		if b, exists := t.pending[t.nextGlobal]; exists {
			return b, int(b[5]), true
		}
		return nil, 0, false
	}
	for s := range t.nextSeq {
		if t.ended[s] && t.delivered[s].Load() >= t.endCount[s] {
			continue
		}
		if b, exists := t.pending[t.key(s, t.nextSeq[s])]; exists {
			return b, s, true
		}
	}
	return nil, 0, false
}

// finished reports whether every source has ended and all segments were
// delivered. Ordered flows track progress in global sequence space, so
// sequence numbers skipped via agreement or ResolveGap count as handled.
func (t *mcTarget) finished() bool {
	for s := range t.ended {
		if !t.ended[s] {
			return false
		}
	}
	if t.spec.Options.GlobalOrdering {
		return t.nextGlobal >= t.totalExpected()
	}
	for s := range t.ended {
		if t.delivered[s].Load() < t.endCount[s] {
			return false
		}
	}
	return true
}

// allEnded reports whether every source has ended (or been declared
// failed/evicted, which also ends its slot).
func (t *mcTarget) allEnded() bool {
	for s := range t.ended {
		if !t.ended[s] {
			return false
		}
	}
	return true
}

// totalExpected is the global sequence-space size; valid once every
// source has ended. The sum of per-source end counts is only a floor
// when a source failed without an end marker — its fold used this
// target's local delivered count, which can differ between targets. On
// agreement flows the sequencer read (seqSpace) replaces that
// target-local guess with the authoritative draw count, so all
// survivors reconcile the same extent.
func (t *mcTarget) totalExpected() uint64 {
	var sum uint64
	for _, c := range t.endCount {
		sum += c
	}
	if t.seqSpaceKnown && t.seqSpace > sum {
		return t.seqSpace
	}
	return sum
}

// seqSpaceSize reads the flow's sequencer counter (a 0-delta fetch-add):
// the number of global sequence numbers ever drawn. Once every source
// has ended or failed no further draws can happen, so the value is the
// exact stream extent — including sequences a crashed source drew but
// never multicast, which the agreement rounds then resolve to skips.
// Returns false when the sequencer node itself is unreachable; callers
// fall back to the folded per-source counts.
func (t *mcTarget) seqSpaceSize(p transport.Ctx) (uint64, bool) {
	if t.seqQP == nil {
		return 0, false
	}
	return t.seqQP.FetchAddChecked(p, transport.Addr{MR: t.meta.seqMR}, 0)
}

// deliver activates a pending segment for consumption.
func (t *mcTarget) deliver(p transport.Ctx, buf []byte, src int) {
	seq := binary.LittleEndian.Uint64(buf[8:16])
	delete(t.pending, t.key(src, seq))
	if t.spec.Options.GlobalOrdering {
		t.nextGlobal = seq + 1
	} else {
		t.nextSeq[src] = seq + 1
	}
	t.delivered[src].Add(1)
	t.creditAcc[src]++
	t.gapSince = 0
	t.gapNacks = 0

	fill := int(binary.LittleEndian.Uint32(buf[0:4]))
	if t.agreementEnabled() {
		t.retainDelivered(seq, buf[:mcHeaderBytes+fill])
		t.reportProgress(p)
	}
	count := fill / t.tupleSize
	t.node.Compute(p, time.Duration(count)*t.spec.Options.ConsumeCost)
	t.active = buf
	t.segOff = mcHeaderBytes
	t.remaining = count

	t.sendCredit(p, src, false)
	if t.ended[src] && t.delivered[src].Load() >= t.endCount[src] {
		t.sendFinalCredit(p, src) // termination handshake
	}
}

// retainDelivered keeps a copy of a delivered segment for gap probes.
// The window is bounded by credit gating: a peer stuck at sequence S
// stalls every source within one credit window of S, so any sequence a
// live round can probe lies within ~nSrc·R of this target's head.
func (t *mcTarget) retainDelivered(seq uint64, seg []byte) {
	cp := append([]byte(nil), seg...)
	t.dhist[seq] = cp
	t.dhistOrder = append(t.dhistOrder, seq)
	if max := 2*len(t.ended)*t.spec.Options.SegmentsPerRing + 16; len(t.dhistOrder) > max {
		old := t.dhistOrder[0]
		t.dhistOrder = t.dhistOrder[1:]
		delete(t.dhist, old)
	}
}

// reportProgress periodically merges this target's delivery progress
// into the registry's sequencer record (every R segments): the raw
// material of the snapshot a rejoining target installs.
func (t *mcTarget) reportProgress(p transport.Ctx) {
	t.totalDelivered++
	if t.totalDelivered < t.progressAt {
		return
	}
	t.progressAt = t.totalDelivered + uint64(t.spec.Options.SegmentsPerRing)
	per := make([]uint64, len(t.delivered))
	for i := range t.delivered {
		per[i] = t.delivered[i].Load()
	}
	_ = t.reg.RecordSeqProgress(p, t.spec.Name, t.idx, t.nextGlobal, per)
}

// detectFailures declares silent sources failed (Options.SourceTimeout),
// treating them as ended at their delivered count. Undeliverable pending
// segments of a failed unordered source are discarded (their predecessors
// died with the source's retransmission history).
func (t *mcTarget) detectFailures(p transport.Ctx) {
	timeout := t.spec.Options.SourceTimeout
	if timeout <= 0 {
		return
	}
	for s := range t.ended {
		if t.ended[s] || t.failedSrc[s].Load() {
			continue
		}
		if !t.heard[s] {
			t.heard[s] = true
			t.lastHeard[s] = p.Now() // grace period starts at first check
			continue
		}
		if p.Now()-t.lastHeard[s] <= timeout {
			continue
		}
		t.failSource(s)
	}
}

// failSource folds one source failure: the slot ends at its delivered
// count, and undeliverable unordered pendings are discarded.
func (t *mcTarget) failSource(s int) {
	t.failedSrc[s].Store(true)
	// A source that died after its end marker arrived keeps its true
	// stream length: overwriting it with this target's delivered count
	// would shrink totalExpected by a target-local amount and make the
	// survivors finish at divergent points.
	if !t.ended[s] {
		t.ended[s] = true
		t.endCount[s] = t.delivered[s].Load()
	}
	if !t.spec.Options.GlobalOrdering {
		for k, b := range t.pending {
			if int(k>>48) == s {
				delete(t.pending, k)
				t.recycle(b)
			}
		}
	}
}

// syncMcMembership folds lease-driven membership changes into the
// receive path: an evicted source is folded exactly like a SourceTimeout
// failure (so the agreement escalation and FailedSources cover both
// detectors), and this target's own eviction — or an incarnation bump,
// meaning a successor took the slot — stops consumption, surfaced
// through Target.Evicted. A no-op while the epoch is unchanged.
func (t *mcTarget) syncMcMembership() {
	if t.mem == nil || t.mem.Epoch() == t.epoch {
		return
	}
	t.epoch = t.mem.Epoch()
	if t.mem.TargetEvicted(t.idx) || t.mem.Incarnation(registry.RoleTarget, t.idx) != t.inc {
		t.evicted = true
		return
	}
	for s := range t.ended {
		if !t.failedSrc[s].Load() && t.mem.SourceEvicted(s) {
			t.failSource(s)
		}
	}
}

// noLiveArbiter reports whether no source remains to arbitrate a gap
// round: every slot either was declared failed (lease eviction or
// timeout) or released its lease after finishing its close linger.
// While any source is Active — even one whose stream has ended, since
// close lingers until all targets drain — queries must go to it instead
// of skipping unilaterally.
func (t *mcTarget) noLiveArbiter() bool {
	if t.mem == nil {
		return true
	}
	for s := range t.failedSrc {
		if t.failedSrc[s].Load() {
			continue
		}
		if st := t.mem.State(registry.RoleSource, s); st == registry.StateLeft || st == registry.StateEvicted {
			continue
		}
		return false
	}
	return true
}

// anyFailed reports whether any source was declared failed.
func (t *mcTarget) anyFailed() bool {
	for s := range t.failedSrc {
		if t.failedSrc[s].Load() {
			return true
		}
	}
	return false
}

// failedSources lists failed source slots in slot order.
func (t *mcTarget) failedSources() []int {
	var out []int
	for s := range t.failedSrc {
		if t.failedSrc[s].Load() {
			out = append(out, s)
		}
	}
	return out
}

// advanceSkips moves the head past consecutive agreed skips, counting
// them as progress so source credit keeps flowing.
func (t *mcTarget) advanceSkips(p transport.Ctx) {
	for t.skips[t.nextGlobal] {
		t.nextGlobal++
		t.totalDelivered++
		t.gapsSkipped.Add(1)
	}
	t.gapNacks = 0
	t.gapSince = 0
	t.broadcastProgress(p)
}

// nextSegment obtains the next in-order segment, handling gap timeouts.
// It returns false at flow end, when a gap is surfaced (NotifyGaps), or
// when the control plane evicted this target.
//
// Gap handling depends on the flow's failure model. Without leases the
// legacy heuristics apply: NACK rounds, immediate NotifyGaps surfacing,
// and — once Options.GapNackLimit rounds go unanswered with a source
// declared failed — a unilateral skip. Under leases (agreement flows)
// nothing is ever skipped unilaterally while an arbiter is reachable:
// the stuck target escalates to a gap-agreement round, delivers a
// refilled copy, or skips exactly the sequences the live membership
// agreed are unfillable — the same verdict every peer applies, which is
// what keeps the global order identical across targets. NotifyGaps then
// surfaces only agreed-unfillable sequences.
func (t *mcTarget) nextSegment(p transport.Ctx) bool {
	if t.active != nil {
		t.recycle(t.active)
		t.active = nil
	}
	agree := t.agreementEnabled()
	limit := t.spec.Options.GapNackLimit
	if limit <= 0 {
		limit = 3 // normalize default; belt-and-suspenders for raw specs
	}
	for {
		t.poll(p)
		t.detectFailures(p)
		t.syncMcMembership()
		if t.evicted {
			return false
		}
		if agree && !t.seqSpaceKnown && t.anyFailed() && t.allEnded() {
			// A source died without an end marker and nothing more can be
			// drawn: consult the sequencer for the true stream extent so
			// every survivor reconciles the same sequence space instead of
			// its own delivered count. Marked known even on failure — an
			// unreachable sequencer leaves the folded floor in place.
			if v, ok := t.seqSpaceSize(p); ok {
				t.seqSpace = v
			}
			t.seqSpaceKnown = true
		}
		if agree && t.skips[t.nextGlobal] {
			if t.spec.Options.NotifyGaps {
				t.gapPending = true
				t.gap = Gap{Seq: t.nextGlobal}
				t.gapSince = 0
				t.gapNacks = 0
				return false
			}
			t.advanceSkips(p)
			continue
		}
		if buf, src, ok := t.headDeliverable(); ok {
			t.deliver(p, buf, src)
			return true
		}
		if t.finished() {
			t.done = true
			for s := range t.ended {
				t.sendFinalCredit(p, s)
			}
			if agree {
				t.spawnGapResponder(p)
			}
			return false
		}
		// Head segment missing: a gap if anything newer already arrived or
		// the owning source has ended.
		blocked := len(t.pending) > 0 || t.anyEndedWithMissing()
		if blocked {
			if t.gapSince == 0 {
				t.gapSince = p.Now()
			} else if p.Now()-t.gapSince >= t.spec.Options.GapTimeout {
				seq, src := t.headMissing()
				switch {
				case agree && t.frozenSeq(seq):
					// A round's verdict is pending for the head; the
					// arbiter will fill or skip it. Keep waiting — unless
					// the arbiter died mid-round, taking the verdict with
					// it: thaw and let the ladder decide next timeout.
					if t.noLiveArbiter() {
						delete(t.frozen, seq)
					}
					t.gapSince = p.Now()
				case agree && t.gapNacks >= 2*limit && t.allEnded() && t.anyFailed() && t.noLiveArbiter():
					// Tail fallback: every source has ended, queries go
					// unanswered, and NO live arbiter remains (each slot
					// failed or released its lease after close). Only then
					// may a target skip unilaterally, as the lease-less
					// path would; nobody is left to disagree.
					t.nextGlobal = seq + 1
					t.totalDelivered++
					t.gapNacks = 0
					t.gapSince = 0
					t.gapsSkipped.Add(1)
					t.broadcastProgress(p)
					continue
				case agree && t.gapNacks >= limit && t.anyFailed():
					// NACKs went unanswered and a source is gone: its
					// retransmission history died with it. Escalate to the
					// agreement round (re-queried every timeout while
					// stuck; the arbiter resends probes idempotently).
					t.sendGapQuery(p, seq)
					t.gapNacks++
					t.gapSince = p.Now()
				case !agree && t.spec.Options.NotifyGaps:
					t.gapPending = true
					t.gap = Gap{Seq: seq}
					t.gapSince = 0
					return false
				case !agree && t.spec.Options.GlobalOrdering && t.gapNacks >= limit && t.anyFailed():
					// The gap's owner crashed: no NACK will ever be
					// answered. Skip the sequence number and record the
					// skip as progress so credit keeps flowing.
					t.nextGlobal = seq + 1
					t.gapNacks = 0
					t.gapSince = 0
					t.gapsSkipped.Add(1)
					t.broadcastProgress(p)
					continue
				default:
					t.sendNack(p, seq, src)
					t.gapNacks++
					t.gapSince = p.Now() // restart the timeout for the NACK
				}
			}
		}
		t.waitArrival(p)
	}
}

// frozenSeq reports whether seq awaits an agreement verdict here.
func (t *mcTarget) frozenSeq(seq uint64) bool {
	if t.frozen == nil {
		return false
	}
	_, fr := t.frozen[seq]
	return fr
}

// spawnGapResponder keeps a finished target answering agreement probes:
// a peer may still be stuck in a round that needs this target's
// delivered history, and the main consume loop has returned. The
// responder polls the reliable QPs and exits once every source slot has
// left the flow or been evicted (membership reads are free) — the
// termination chain is: stuck requester keeps its arbiter's close
// lingering, the responder serves the round, the requester finishes,
// close returns, the sources release their leases, the responder exits.
func (t *mcTarget) spawnGapResponder(p transport.Ctx) {
	if t.responderUp || t.mem == nil {
		return
	}
	t.responderUp = true
	t.meta.cluster.Spawn(p, fmt.Sprintf("mc-gap-responder:%s:%d", t.spec.Name, t.idx), func(rp transport.Ctx) {
		iv := t.spec.Options.GapTimeout
		if iv <= 0 {
			iv = 5 * time.Microsecond
		}
		for {
			if t.node.Crashed(rp.Now()) || t.evicted {
				return
			}
			alive := false
			for s := range t.ended {
				st := t.mem.State(registry.RoleSource, s)
				if st != registry.StateLeft && st != registry.StateEvicted {
					alive = true
					break
				}
			}
			if !alive {
				return
			}
			for _, qp := range t.tqps {
				for qp.RecvCQ().Len() > 0 {
					c, ok := qp.RecvCQ().Poll(rp)
					if !ok {
						break
					}
					t.ingest(rp, c.Buf, c.Bytes, qp)
				}
			}
			rp.Sleep(iv)
		}
	})
}

// anyEndedWithMissing reports whether ended sources leave undelivered
// segments (a tail loss that produces no newer arrivals). For ordered
// flows the check runs in global sequence space once all sources ended.
func (t *mcTarget) anyEndedWithMissing() bool {
	if t.spec.Options.GlobalOrdering {
		for s := range t.ended {
			if !t.ended[s] {
				return false
			}
		}
		return t.nextGlobal < t.totalExpected()
	}
	for s := range t.ended {
		if t.ended[s] && t.delivered[s].Load() < t.endCount[s] {
			return true
		}
	}
	return false
}

// headMissing identifies the missing sequence number blocking delivery.
func (t *mcTarget) headMissing() (seq uint64, src int) {
	if t.spec.Options.GlobalOrdering {
		return t.nextGlobal, 0
	}
	for s := range t.nextSeq {
		if t.ended[s] && t.delivered[s].Load() < t.endCount[s] {
			return t.nextSeq[s], s
		}
	}
	for s := range t.nextSeq {
		if !t.ended[s] {
			if _, ok := t.pending[t.key(s, t.nextSeq[s])]; !ok {
				return t.nextSeq[s], s
			}
		}
	}
	return 0, 0
}

// waitArrival blocks briefly for the next message on any receive queue.
func (t *mcTarget) waitArrival(p transport.Ctx) {
	d := t.spec.Options.GapTimeout / 4
	if d <= 0 {
		d = 5 * time.Microsecond
	}
	t.ep.RecvCQ().WaitNonEmpty(p, d)
}

// consume returns the next tuple in flow order.
func (t *mcTarget) consume(p transport.Ctx) (schema.Tuple, bool) {
	if t.done || t.evicted || t.gapPending {
		return nil, false
	}
	for t.remaining == 0 {
		if !t.nextSegment(p) {
			return nil, false
		}
	}
	tup := schema.Tuple(t.active[t.segOff : t.segOff+t.tupleSize])
	t.segOff += t.tupleSize
	t.remaining--
	return tup, true
}

// consumeSegment returns the next whole segment as a raw batch.
func (t *mcTarget) consumeSegment(p transport.Ctx) ([]byte, int, bool) {
	if t.done || t.evicted || t.gapPending {
		return nil, 0, false
	}
	if t.remaining > 0 {
		data, count := t.active[t.segOff:], t.remaining
		t.segOff += count * t.tupleSize
		t.remaining = 0
		return data[:count*t.tupleSize], count, true
	}
	if !t.nextSegment(p) {
		return nil, 0, false
	}
	data, count := t.active[t.segOff:t.segOff+t.remaining*t.tupleSize], t.remaining
	t.segOff += t.remaining * t.tupleSize
	t.remaining = 0
	return data, count, true
}

// pendingGap exposes a surfaced gap (NotifyGaps flows).
func (t *mcTarget) pendingGap() (Gap, bool) {
	if !t.gapPending {
		return Gap{}, false
	}
	return t.gap, true
}

// resolveGap skips past a surfaced gap: the application has agreed (e.g.
// via NOPaxos gap agreement) to treat the sequence number as a no-op. The
// skip counts as global progress so source credit keeps flowing.
func (t *mcTarget) resolveGap(p transport.Ctx) {
	if !t.gapPending {
		return
	}
	if t.spec.Options.GlobalOrdering {
		t.nextGlobal = t.gap.Seq + 1
		t.totalDelivered++
		t.gapsSkipped.Add(1)
		t.creditAcc[0]++
		t.sendCredit(p, 0, true)
	}
	t.gapPending = false
}

// requestGapRetransmit asks the sources to resend a surfaced gap instead
// of skipping it.
func (t *mcTarget) requestGapRetransmit(p transport.Ctx) {
	if !t.gapPending {
		return
	}
	t.sendNack(p, t.gap.Seq, 0)
	t.gapPending = false
	t.gapSince = p.Now()
}

func (t *mcTarget) free() {
	t.poolMR.Deregister()
}
