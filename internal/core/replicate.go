package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// Multicast replicate flows (paper §5.4) ride on two-sided unreliable
// multicast instead of one-sided ring writes:
//
//   - Targets pre-populate their receive queues with as many buffers as
//     the credit score allows; sources track per-target credit from a
//     back-flow of credit messages, so ordinary sends need no
//     coordination.
//   - Segments carry sequence numbers; targets detect losses as gaps and,
//     after a configurable timeout, request retransmission with a NACK on
//     a reliable reverse queue pair (or surface the gap to the
//     application when Options.NotifyGaps is set — the NOPaxos use case).
//   - Globally ordered flows draw sequence numbers from a tuple sequencer
//     (an RDMA fetch-and-add counter) and reorder out-of-order arrivals at
//     the target with a receive list / next list (paper Figure 6).
//
// End-of-flow markers and retransmissions travel on the reliable per-pair
// queue pairs so termination does not depend on lossy multicast.

// Multicast message header: fill(4) flags(1) srcIdx(1) rsvd(2) seq(8).
const mcHeaderBytes = 16

// Control message (target -> source): kind(1) rsvd(7) value(8).
const (
	ctrlBytes  = 16
	ctrlCredit = 1
	ctrlNack   = 2
)

// Gap describes a missing global sequence number surfaced to the
// application of an ordered replicate flow with NotifyGaps.
type Gap struct {
	Seq uint64
}

// mcQPName returns the registry rendezvous key for the reliable QP between
// source i and target j of a flow.
func mcQPName(flow string, i, j int) string {
	return fmt.Sprintf("%s/mcqp/%d/%d", flow, i, j)
}

// mcSource is the sending half of a multicast replicate flow.
type mcSource struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node *fabric.Node

	group    *fabric.MulticastGroup
	fqps     []*fabric.QP // reliable QP to each target (source end)
	ctrlBufs [][]byte     // posted control-recv buffers, recycled by index

	segBuf []byte // current segment: header + payload
	fill   int

	credit int // ring size R
	// sentSegs and payloadBytes are atomic so Source.Stats can be read
	// from a scraper goroutine mid-run; the simulation side is the only
	// writer.
	sentSegs     atomic.Uint64
	payloadBytes atomic.Uint64
	consumedBy   []uint64 // cumulative segments consumed, per target

	history    map[uint64][]byte
	histOrder  []uint64
	seqQP      *fabric.QP // to the sequencer node (ordered flows)
	closedFlag bool

	// Target-failure detection (enabled by Options.RetransmitTimeout): a
	// target whose credit stream stalls past failAfter while it gates the
	// source is declared failed and excluded from flow control and the
	// termination handshake. The staleness clock starts when the target
	// begins gating (gating flips on, lastAdvance resets): a caught-up
	// target sends no credit while the source is idle, so time since its
	// last advance says nothing about its health.
	failedTgt   []bool
	lastAdvance []sim.Time
	gating      []bool

	// Ordered flows: globally drawn sequence numbers owned by this source
	// (monotonic), and how many of them each target has processed. Credit
	// messages carry the target's global progress; the source maps that to
	// its own outstanding window.
	ownSeqs []uint64
	ownIdx  []int
}

func newMcSource(p *sim.Proc, reg *registry.Registry, meta *flowMeta, idx int) (*mcSource, error) {
	spec := &meta.spec
	s := &mcSource{
		meta:        meta,
		spec:        spec,
		idx:         idx,
		node:        spec.Sources[idx].Node,
		group:       meta.group,
		credit:      spec.Options.SegmentsPerRing,
		consumedBy:  make([]uint64, len(spec.Targets)),
		history:     make(map[uint64][]byte),
		segBuf:      make([]byte, mcHeaderBytes+spec.Options.SegmentSize),
		ownIdx:      make([]int, len(spec.Targets)),
		failedTgt:   make([]bool, len(spec.Targets)),
		lastAdvance: make([]sim.Time, len(spec.Targets)),
		gating:      make([]bool, len(spec.Targets)),
	}
	// Reliable per-target QPs: the source creates the pair and publishes
	// the target's end for TargetOpen to collect.
	for j, tgt := range spec.Targets {
		sq, tq := meta.cluster.CreateQPPair(s.node, tgt.Node)
		if err := reg.Publish(p, mcQPName(spec.Name, idx, j), tq); err != nil {
			return nil, err
		}
		s.fqps = append(s.fqps, sq)
		// Post receives for control messages (credits / NACKs).
		for r := 0; r < 4; r++ {
			buf := make([]byte, ctrlBytes)
			s.ctrlBufs = append(s.ctrlBufs, buf)
			sq.PostRecv(buf, uint64(len(s.ctrlBufs)-1))
		}
	}
	if spec.Options.GlobalOrdering {
		s.seqQP, _ = meta.cluster.CreateQPPair(s.node, meta.seqMR.Node())
	}
	return s, nil
}

// failAfter returns how long a target's credit stream may gate the source
// before the target is declared failed (0 disables, keeping the legacy
// unbounded waits).
func (s *mcSource) failAfter() time.Duration {
	if s.spec.Options.RetransmitTimeout <= 0 {
		return 0
	}
	return s.spec.Options.RetransmitTimeout * time.Duration(s.spec.Options.MaxRetransmits+1)
}

// allTargetsFailed reports whether no live target remains.
func (s *mcSource) allTargetsFailed() bool {
	for _, f := range s.failedTgt {
		if !f {
			return false
		}
	}
	return true
}

// push appends a tuple, transmitting the segment when full (bandwidth
// mode) or immediately (latency mode).
func (s *mcSource) push(p *sim.Proc, t schema.Tuple) error {
	if s.fill+len(t) > s.spec.Options.SegmentSize {
		if err := s.sendSegment(p, false); err != nil {
			return err
		}
	}
	copy(s.segBuf[mcHeaderBytes+s.fill:], t)
	s.fill += len(t)
	if s.spec.Options.Optimization == OptimizeLatency {
		return s.sendSegment(p, false)
	}
	return nil
}

func (s *mcSource) flush(p *sim.Proc) error {
	if s.fill > 0 {
		return s.sendSegment(p, false)
	}
	return nil
}

// sendSegment stamps the header, draws a sequence number (global for
// ordered flows, per-source otherwise), retains the segment for
// retransmission, and multicasts it.
func (s *mcSource) sendSegment(p *sim.Proc, end bool) error {
	s.ensureCredit(p)
	s.drainControl(p)
	if s.allTargetsFailed() {
		return fmt.Errorf("%w: every replicate target stopped responding", ErrFlowBroken)
	}

	var seq uint64
	if s.spec.Options.GlobalOrdering {
		// Tuple sequencer: one fetch-and-add round trip per segment
		// (paper §5.4); with programmable switches this could move into
		// the network.
		seq = s.seqQP.FetchAdd(p, fabric.Addr{MR: s.meta.seqMR}, 1)
		s.ownSeqs = append(s.ownSeqs, seq)
	} else {
		seq = s.sentSegs.Load()
	}
	flags := byte(flagConsumable)
	if end {
		flags |= flagEndOfFlow
	}
	h := s.segBuf
	binary.LittleEndian.PutUint32(h[0:4], uint32(s.fill))
	h[4] = flags
	h[5] = byte(s.idx)
	h[6], h[7] = 0, 0
	binary.LittleEndian.PutUint64(h[8:16], seq)

	msg := make([]byte, mcHeaderBytes+s.fill)
	copy(msg, s.segBuf[:mcHeaderBytes+s.fill])
	s.history[seq] = msg
	s.histOrder = append(s.histOrder, seq)
	if len(s.histOrder) > 4*s.credit {
		old := s.histOrder[0]
		s.histOrder = s.histOrder[1:]
		delete(s.history, old)
	}

	s.group.Send(p, s.node, msg, false)
	s.sentSegs.Add(1)
	s.payloadBytes.Add(uint64(s.fill))
	s.fill = 0
	return nil
}

// ensureCredit blocks while any live target's outstanding window is full.
// With RetransmitTimeout set, a target whose credit gates the source past
// failAfter is declared failed and excluded — a crashed target must not
// wedge the surviving replicas.
func (s *mcSource) ensureCredit(p *sim.Proc) {
	failAfter := s.failAfter()
	for {
		lag := -1
		for j := range s.consumedBy {
			if s.failedTgt[j] {
				continue
			}
			if int(s.sentSegs.Load()-s.consumedBy[j]) >= s.credit {
				lag = j
				break
			}
		}
		if lag < 0 {
			return
		}
		now := p.Now()
		if !s.gating[lag] {
			s.gating[lag] = true
			s.lastAdvance[lag] = now
		}
		if failAfter > 0 && now-s.lastAdvance[lag] > failAfter {
			s.failedTgt[lag] = true
			continue
		}
		if c, ok := s.fqps[lag].RecvCQ().WaitTimeout(p, 5*time.Microsecond); ok {
			s.handleControl(p, lag, c)
		}
		s.drainControl(p)
	}
}

// drainControl processes pending credit and NACK messages from all
// targets without blocking.
func (s *mcSource) drainControl(p *sim.Proc) {
	for j, qp := range s.fqps {
		for qp.RecvCQ().Len() > 0 {
			c, ok := qp.RecvCQ().Poll(p)
			if !ok {
				break
			}
			s.handleControl(p, j, c)
		}
	}
}

func (s *mcSource) handleControl(p *sim.Proc, target int, c fabric.Completion) {
	buf := s.ctrlBufs[c.ID]
	kind := buf[0]
	value := binary.LittleEndian.Uint64(buf[8:16])
	s.fqps[target].PostRecv(buf, c.ID) // recycle the buffer
	switch kind {
	case ctrlCredit:
		if s.spec.Options.GlobalOrdering {
			// value is the target's global progress (next undelivered
			// sequence); count how many of our own segments lie below it.
			i := s.ownIdx[target]
			for i < len(s.ownSeqs) && s.ownSeqs[i] < value {
				i++
			}
			s.ownIdx[target] = i
			if uint64(i) > s.consumedBy[target] {
				s.consumedBy[target] = uint64(i)
				s.noteAdvance(p, target)
			}
		} else if value > s.consumedBy[target] {
			s.consumedBy[target] = value
			s.noteAdvance(p, target)
		}
	case ctrlNack:
		if msg, ok := s.history[value]; ok {
			// Reliable unicast retransmission to the requesting target.
			s.fqps[target].Send(p, msg, false, 0)
		}
	}
}

// noteAdvance records consumption progress by a target (failure-detection
// bookkeeping): the staleness clock resets and any future gate episode
// restarts its grace period.
func (s *mcSource) noteAdvance(p *sim.Proc, target int) {
	s.gating[target] = false
	s.lastAdvance[target] = p.Now()
}

// close flushes, sends reliable end markers carrying the per-source
// segment count, and lingers until every live target has consumed
// everything — serving retransmission requests meanwhile. With
// RetransmitTimeout set the linger is bounded per target: one that stops
// acknowledging is declared failed, and close reports it with an
// ErrFlowBroken-wrapped error instead of hanging.
func (s *mcSource) close(p *sim.Proc) error {
	if s.closedFlag {
		return nil
	}
	s.closedFlag = true
	if err := s.flush(p); err != nil {
		return err
	}
	end := make([]byte, mcHeaderBytes)
	binary.LittleEndian.PutUint32(end[0:4], 0)
	end[4] = flagConsumable | flagEndOfFlow
	end[5] = byte(s.idx)
	binary.LittleEndian.PutUint64(end[8:16], s.sentSegs.Load()) // segment count
	for _, qp := range s.fqps {
		qp.Send(p, end, false, 0)
	}
	failAfter := s.failAfter()
	for j := range s.lastAdvance {
		s.gating[j] = true
		s.lastAdvance[j] = p.Now() // grace restarts at close
	}
	for {
		pending := false
		for j, v := range s.consumedBy {
			if s.failedTgt[j] {
				continue
			}
			if v < s.sentSegs.Load() {
				if failAfter > 0 && p.Now()-s.lastAdvance[j] > failAfter {
					s.failedTgt[j] = true
					continue
				}
				pending = true
			}
		}
		if !pending {
			break
		}
		for j, qp := range s.fqps {
			if s.failedTgt[j] {
				continue
			}
			if c, ok := qp.RecvCQ().WaitTimeout(p, s.spec.Options.GapTimeout); ok {
				s.handleControl(p, j, c)
			}
		}
		s.drainControl(p)
	}
	var failed []int
	for j, f := range s.failedTgt {
		if f {
			failed = append(failed, j)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%w: replicate targets %v stopped responding", ErrFlowBroken, failed)
	}
	return nil
}

func (s *mcSource) free() {}

// mcTarget is the receiving half of a multicast replicate flow.
type mcTarget struct {
	meta *flowMeta
	spec *FlowSpec
	idx  int
	node *fabric.Node

	ep   *fabric.McEndpoint
	tqps []*fabric.QP // reliable QP from each source (target end)

	pool   [][]byte // recycled receive buffers
	poolMR *fabric.MemoryRegion

	// Per-source protocol state (per-source sequences when unordered).
	nextSeq []uint64 // next expected per-source seq (unordered)
	// delivered is atomic per slot so Target.Stats can sum it from a
	// scraper goroutine mid-run.
	delivered []atomic.Uint64 // segments delivered per source
	endCount  []uint64        // expected per-source count (from end marker)
	ended     []bool
	creditAcc []uint64 // segments consumed since last credit msg

	// Ordered-flow state: the "next list" of Figure 6 is the pending map
	// keyed by global seq; the receive list is the fabric receive queue.
	nextGlobal uint64
	pending    map[uint64][]byte

	gapSince   sim.Time // when the current head gap was first observed
	gapPending bool
	gap        Gap
	gapNacks   int // unanswered NACK rounds for the current head gap

	// Source-failure detection (Options.SourceTimeout), mirroring the
	// ring-transport detectFailures: a source that goes silent past the
	// timeout is declared failed and treated as ended at its delivered
	// count; ordered flows additionally skip its unanswerable gaps once
	// NACK rounds go unanswered.
	heard     []bool
	lastHeard []sim.Time
	failedSrc []atomic.Bool // atomic: read by Target.FailedSources under scrape

	active    []byte
	segOff    int
	remaining int
	tupleSize int
	done      bool
}

func newMcTarget(p *sim.Proc, reg *registry.Registry, meta *flowMeta, idx int) (*mcTarget, error) {
	spec := &meta.spec
	nSrc := len(spec.Sources)
	R := spec.Options.SegmentsPerRing
	t := &mcTarget{
		meta:      meta,
		spec:      spec,
		idx:       idx,
		node:      spec.Targets[idx].Node,
		ep:        meta.group.Member(idx),
		nextSeq:   make([]uint64, nSrc),
		delivered: make([]atomic.Uint64, nSrc),
		endCount:  make([]uint64, nSrc),
		ended:     make([]bool, nSrc),
		creditAcc: make([]uint64, nSrc),
		pending:   make(map[uint64][]byte),
		tupleSize: spec.Schema.TupleSize(),
		heard:     make([]bool, nSrc),
		lastHeard: make([]sim.Time, nSrc),
		failedSrc: make([]atomic.Bool, nSrc),
	}
	stride := mcHeaderBytes + spec.Options.SegmentSize
	// One slab backs all receive buffers (registered for accounting). The
	// posted queues hold nSrc*R (multicast) + nSrc*(R+2) (reliable path)
	// buffers at all times; pending reordering and the active segment hold
	// at most as many again.
	nBufs := 2*(nSrc*R+nSrc*(R+2)) + 8
	t.poolMR = meta.cluster.RegisterMemory(t.node, nBufs*stride)
	slab := t.poolMR.Bytes()
	for i := 0; i < nBufs; i++ {
		t.pool = append(t.pool, slab[i*stride:(i+1)*stride])
	}
	// Pre-populate the multicast receive queue with the credit score (R
	// buffers per source).
	for i := 0; i < nSrc*R; i++ {
		t.ep.PostRecv(t.takeBuf(), 0)
	}
	// Reliable QPs from each source (retransmissions + end markers).
	for i := 0; i < nSrc; i++ {
		qp := reg.WaitFlow(p, mcQPName(spec.Name, i, idx)).(*fabric.QP)
		t.tqps = append(t.tqps, qp)
		for r := 0; r < R+2; r++ {
			qp.PostRecv(t.takeBuf(), 0)
		}
	}
	return t, nil
}

func (t *mcTarget) takeBuf() []byte {
	if len(t.pool) == 0 {
		// Pool exhaustion cannot happen within the credit window; guard
		// against protocol bugs.
		panic("dfi: multicast receive buffer pool exhausted")
	}
	b := t.pool[len(t.pool)-1]
	t.pool = t.pool[:len(t.pool)-1]
	return b
}

func (t *mcTarget) recycle(buf []byte) {
	t.pool = append(t.pool, buf[:cap(buf)])
}

// key computes the pending-map key for a segment: the global sequence for
// ordered flows, or (source, per-source seq) packed otherwise.
func (t *mcTarget) key(src int, seq uint64) uint64 {
	if t.spec.Options.GlobalOrdering {
		return seq
	}
	return uint64(src)<<48 | seq
}

// recvOrigin is a receive queue a buffer can be (re)posted to: either the
// multicast endpoint or a reliable QP.
type recvOrigin interface {
	PostRecv(buf []byte, id uint64)
}

// ingest processes one received message. The posted-buffer the message
// arrived in is immediately replaced on its origin queue so the receive
// windows never shrink (losing posted receives would starve the flow).
func (t *mcTarget) ingest(p *sim.Proc, buf []byte, bytes int, origin recvOrigin) {
	origin.PostRecv(t.takeBuf(), 0)
	h := buf[:mcHeaderBytes]
	fill := int(binary.LittleEndian.Uint32(h[0:4]))
	flags := h[4]
	src := int(h[5])
	seq := binary.LittleEndian.Uint64(h[8:16])
	if src >= 0 && src < len(t.heard) {
		t.heard[src] = true
		t.lastHeard[src] = p.Now()
	}
	if flags&flagEndOfFlow != 0 && fill == 0 {
		// End marker: seq carries the source's total segment count.
		if !t.ended[src] {
			t.ended[src] = true
			t.endCount[src] = seq
		}
		t.recycle(buf)
		return
	}
	// Duplicate filtering: already delivered or already pending.
	dup := false
	if t.spec.Options.GlobalOrdering {
		dup = seq < t.nextGlobal
	} else {
		dup = seq < t.nextSeq[src]
	}
	k := t.key(src, seq)
	if dup {
		t.recycle(buf)
		return
	}
	if _, exists := t.pending[k]; exists {
		t.recycle(buf)
		return
	}
	t.pending[k] = buf[:bytes]
	_ = fill
}

// poll drains all receive CQs without blocking, ingesting arrivals.
func (t *mcTarget) poll(p *sim.Proc) bool {
	got := false
	for t.ep.RecvCQ().Len() > 0 {
		c, ok := t.ep.RecvCQ().Poll(p)
		if !ok {
			break
		}
		t.ingest(p, c.Buf, c.Bytes, t.ep)
		got = true
	}
	for _, qp := range t.tqps {
		for qp.RecvCQ().Len() > 0 {
			c, ok := qp.RecvCQ().Poll(p)
			if !ok {
				break
			}
			t.ingest(p, c.Buf, c.Bytes, qp)
			got = true
		}
	}
	return got
}

// sendCredit reports cumulative consumption from src back to it, both as
// flow-control credit and as the termination handshake.
func (t *mcTarget) sendCredit(p *sim.Proc, src int, force bool) {
	batch := uint64(t.spec.Options.SegmentsPerRing / 4)
	if batch == 0 {
		batch = 1
	}
	if !force && t.creditAcc[src] < batch {
		return
	}
	t.creditAcc[src] = 0
	if t.spec.Options.GlobalOrdering {
		t.broadcastProgress(p)
		return
	}
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlCredit
	binary.LittleEndian.PutUint64(msg[8:16], t.delivered[src].Load())
	t.tqps[src].Send(p, msg, false, 0)
}

// broadcastProgress tells every source how far the target's global
// sequence progressed (ordered flows): sources translate this into their
// own credit, and skipped gaps count as progress.
func (t *mcTarget) broadcastProgress(p *sim.Proc) {
	for _, qp := range t.tqps {
		msg := make([]byte, ctrlBytes)
		msg[0] = ctrlCredit
		binary.LittleEndian.PutUint64(msg[8:16], t.nextGlobal)
		qp.Send(p, msg, false, 0)
	}
}

// sendFinalCredit fully acknowledges a source at flow end. For ordered
// flows with application-level gap handling, skipped sequence numbers are
// acknowledged as consumed so the source's termination handshake
// completes.
func (t *mcTarget) sendFinalCredit(p *sim.Proc, src int) {
	if t.spec.Options.GlobalOrdering {
		// Global progress (including ResolveGap skips) already covers the
		// whole sequence space by the time the flow finishes; just
		// broadcast it. Forcing nextGlobal forward here would silently
		// drop other sources' undelivered segments.
		t.broadcastProgress(p)
		return
	}
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlCredit
	v := t.delivered[src].Load()
	if t.ended[src] && t.endCount[src] > v {
		v = t.endCount[src]
	}
	binary.LittleEndian.PutUint64(msg[8:16], v)
	t.tqps[src].Send(p, msg, false, 0)
}

// sendNack requests retransmission of a missing sequence number. Ordered
// flows cannot tell which source owns a global sequence number, so the
// NACK goes to every source; only the owner finds it in its history.
func (t *mcTarget) sendNack(p *sim.Proc, seq uint64, src int) {
	msg := make([]byte, ctrlBytes)
	msg[0] = ctrlNack
	binary.LittleEndian.PutUint64(msg[8:16], seq)
	if t.spec.Options.GlobalOrdering {
		for _, qp := range t.tqps {
			nack := make([]byte, ctrlBytes)
			copy(nack, msg)
			qp.Send(p, nack, false, 0)
		}
		return
	}
	t.tqps[src].Send(p, msg, false, 0)
}

// headDeliverable returns the pending segment that must be delivered next:
// the next global sequence number for ordered flows, or the next
// per-source sequence scanning sources round-robin otherwise. It also
// reports whether a *gap* blocks delivery (segments pending or sources
// still open but the head segment missing).
func (t *mcTarget) headDeliverable() (buf []byte, src int, ok bool) {
	if t.spec.Options.GlobalOrdering {
		if b, exists := t.pending[t.nextGlobal]; exists {
			return b, int(b[5]), true
		}
		return nil, 0, false
	}
	for s := range t.nextSeq {
		if t.ended[s] && t.delivered[s].Load() >= t.endCount[s] {
			continue
		}
		if b, exists := t.pending[t.key(s, t.nextSeq[s])]; exists {
			return b, s, true
		}
	}
	return nil, 0, false
}

// finished reports whether every source has ended and all segments were
// delivered. Ordered flows track progress in global sequence space, so
// sequence numbers skipped via ResolveGap count as handled.
func (t *mcTarget) finished() bool {
	for s := range t.ended {
		if !t.ended[s] {
			return false
		}
	}
	if t.spec.Options.GlobalOrdering {
		return t.nextGlobal >= t.totalExpected()
	}
	for s := range t.ended {
		if t.delivered[s].Load() < t.endCount[s] {
			return false
		}
	}
	return true
}

// totalExpected is the global sequence-space size (sum of per-source
// segment counts); valid once every source has ended.
func (t *mcTarget) totalExpected() uint64 {
	var sum uint64
	for _, c := range t.endCount {
		sum += c
	}
	return sum
}

// deliver activates a pending segment for consumption.
func (t *mcTarget) deliver(p *sim.Proc, buf []byte, src int) {
	seq := binary.LittleEndian.Uint64(buf[8:16])
	delete(t.pending, t.key(src, seq))
	if t.spec.Options.GlobalOrdering {
		t.nextGlobal = seq + 1
	} else {
		t.nextSeq[src] = seq + 1
	}
	t.delivered[src].Add(1)
	t.creditAcc[src]++
	t.gapSince = 0
	t.gapNacks = 0

	fill := int(binary.LittleEndian.Uint32(buf[0:4]))
	count := fill / t.tupleSize
	t.node.Compute(p, time.Duration(count)*t.spec.Options.ConsumeCost)
	t.active = buf
	t.segOff = mcHeaderBytes
	t.remaining = count

	t.sendCredit(p, src, false)
	if t.ended[src] && t.delivered[src].Load() >= t.endCount[src] {
		t.sendFinalCredit(p, src) // termination handshake
	}
}

// detectFailures declares silent sources failed (Options.SourceTimeout),
// treating them as ended at their delivered count. Undeliverable pending
// segments of a failed unordered source are discarded (their predecessors
// died with the source's retransmission history).
func (t *mcTarget) detectFailures(p *sim.Proc) {
	timeout := t.spec.Options.SourceTimeout
	if timeout <= 0 {
		return
	}
	for s := range t.ended {
		if t.ended[s] || t.failedSrc[s].Load() {
			continue
		}
		if !t.heard[s] {
			t.heard[s] = true
			t.lastHeard[s] = p.Now() // grace period starts at first check
			continue
		}
		if p.Now()-t.lastHeard[s] <= timeout {
			continue
		}
		t.failedSrc[s].Store(true)
		t.ended[s] = true
		t.endCount[s] = t.delivered[s].Load()
		if !t.spec.Options.GlobalOrdering {
			for k, b := range t.pending {
				if int(k>>48) == s {
					delete(t.pending, k)
					t.recycle(b)
				}
			}
		}
	}
}

// anyFailed reports whether any source was declared failed.
func (t *mcTarget) anyFailed() bool {
	for s := range t.failedSrc {
		if t.failedSrc[s].Load() {
			return true
		}
	}
	return false
}

// failedSources lists failed source slots in slot order.
func (t *mcTarget) failedSources() []int {
	var out []int
	for s := range t.failedSrc {
		if t.failedSrc[s].Load() {
			out = append(out, s)
		}
	}
	return out
}

// gapNackLimit is how many unanswered NACK rounds an ordered flow tolerates
// before a head gap owned by a failed source is skipped (nobody holds the
// retransmission history of a crashed source).
const gapNackLimit = 3

// nextSegment obtains the next in-order segment, handling gap timeouts.
// It returns false at flow end or when a gap is surfaced (NotifyGaps).
func (t *mcTarget) nextSegment(p *sim.Proc) bool {
	if t.active != nil {
		t.recycle(t.active)
		t.active = nil
	}
	for {
		t.poll(p)
		t.detectFailures(p)
		if buf, src, ok := t.headDeliverable(); ok {
			t.deliver(p, buf, src)
			return true
		}
		if t.finished() {
			t.done = true
			for s := range t.ended {
				t.sendFinalCredit(p, s)
			}
			return false
		}
		// Head segment missing: a gap if anything newer already arrived or
		// the owning source has ended.
		blocked := len(t.pending) > 0 || t.anyEndedWithMissing()
		if blocked {
			if t.gapSince == 0 {
				t.gapSince = p.Now()
			} else if p.Now()-t.gapSince >= t.spec.Options.GapTimeout {
				seq, src := t.headMissing()
				if t.spec.Options.NotifyGaps {
					t.gapPending = true
					t.gap = Gap{Seq: seq}
					t.gapSince = 0
					return false
				}
				if t.spec.Options.GlobalOrdering && t.gapNacks >= gapNackLimit && t.anyFailed() {
					// The gap's owner crashed: no NACK will ever be
					// answered. Skip the sequence number and record the
					// skip as progress so credit keeps flowing.
					t.nextGlobal = seq + 1
					t.gapNacks = 0
					t.gapSince = 0
					t.broadcastProgress(p)
					continue
				}
				t.sendNack(p, seq, src)
				t.gapNacks++
				t.gapSince = p.Now() // restart the timeout for the NACK
			}
		}
		t.waitArrival(p)
	}
}

// anyEndedWithMissing reports whether ended sources leave undelivered
// segments (a tail loss that produces no newer arrivals). For ordered
// flows the check runs in global sequence space once all sources ended.
func (t *mcTarget) anyEndedWithMissing() bool {
	if t.spec.Options.GlobalOrdering {
		for s := range t.ended {
			if !t.ended[s] {
				return false
			}
		}
		return t.nextGlobal < t.totalExpected()
	}
	for s := range t.ended {
		if t.ended[s] && t.delivered[s].Load() < t.endCount[s] {
			return true
		}
	}
	return false
}

// headMissing identifies the missing sequence number blocking delivery.
func (t *mcTarget) headMissing() (seq uint64, src int) {
	if t.spec.Options.GlobalOrdering {
		return t.nextGlobal, 0
	}
	for s := range t.nextSeq {
		if t.ended[s] && t.delivered[s].Load() < t.endCount[s] {
			return t.nextSeq[s], s
		}
	}
	for s := range t.nextSeq {
		if !t.ended[s] {
			if _, ok := t.pending[t.key(s, t.nextSeq[s])]; !ok {
				return t.nextSeq[s], s
			}
		}
	}
	return 0, 0
}

// waitArrival blocks briefly for the next message on any receive queue.
func (t *mcTarget) waitArrival(p *sim.Proc) {
	d := t.spec.Options.GapTimeout / 4
	if d <= 0 {
		d = 5 * time.Microsecond
	}
	t.ep.RecvCQ().WaitNonEmpty(p, d)
}

// consume returns the next tuple in flow order.
func (t *mcTarget) consume(p *sim.Proc) (schema.Tuple, bool) {
	if t.done || t.gapPending {
		return nil, false
	}
	for t.remaining == 0 {
		if !t.nextSegment(p) {
			return nil, false
		}
	}
	tup := schema.Tuple(t.active[t.segOff : t.segOff+t.tupleSize])
	t.segOff += t.tupleSize
	t.remaining--
	return tup, true
}

// consumeSegment returns the next whole segment as a raw batch.
func (t *mcTarget) consumeSegment(p *sim.Proc) ([]byte, int, bool) {
	if t.done || t.gapPending {
		return nil, 0, false
	}
	if t.remaining > 0 {
		data, count := t.active[t.segOff:], t.remaining
		t.segOff += count * t.tupleSize
		t.remaining = 0
		return data[:count*t.tupleSize], count, true
	}
	if !t.nextSegment(p) {
		return nil, 0, false
	}
	data, count := t.active[t.segOff:t.segOff+t.remaining*t.tupleSize], t.remaining
	t.segOff += t.remaining * t.tupleSize
	t.remaining = 0
	return data, count, true
}

// pendingGap exposes a surfaced gap (NotifyGaps flows).
func (t *mcTarget) pendingGap() (Gap, bool) {
	if !t.gapPending {
		return Gap{}, false
	}
	return t.gap, true
}

// resolveGap skips past a surfaced gap: the application has agreed (e.g.
// via NOPaxos gap agreement) to treat the sequence number as a no-op. The
// skip counts as global progress so source credit keeps flowing.
func (t *mcTarget) resolveGap(p *sim.Proc) {
	if !t.gapPending {
		return
	}
	if t.spec.Options.GlobalOrdering {
		t.nextGlobal = t.gap.Seq + 1
		t.creditAcc[0]++
		t.sendCredit(p, 0, true)
	}
	t.gapPending = false
}

// requestGapRetransmit asks the sources to resend a surfaced gap instead
// of skipping it.
func (t *mcTarget) requestGapRetransmit(p *sim.Proc) {
	if !t.gapPending {
		return
	}
	t.sendNack(p, t.gap.Seq, 0)
	t.gapPending = false
	t.gapSince = p.Now()
}

func (t *mcTarget) free() {
	t.poolMR.Deregister()
}
