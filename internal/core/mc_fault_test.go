package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/sim"
)

// Fault-tolerance tests for ordered multicast under the lease/epoch
// control plane: source crashes detected by lease eviction, gap
// agreement between the survivors, target eviction with snapshot-based
// rejoin, and the explicit unsupported-operation surface. All of these
// sweep seeds via DFI_CHAOS_SEED (`make chaos-mc`).

func TestChaosOrderedMulticastLeaseSourceCrash(t *testing.T) {
	// One of two ordered-multicast sources' NODE crashes mid-flow while
	// UD loss is in play, with leases enabled and no SourceTimeout: the
	// lease heartbeat dies with the node, the registry evicts the slot,
	// and the surviving targets run gap agreement for the crashed
	// source's unanswerable gaps. Every live target must end with the
	// IDENTICAL global order, and nothing outside the agreed-skip set
	// may be lost: the healthy source's stream arrives complete.
	plan := (&fabric.FaultPlan{DropSend: 0.05}).CrashNode(1, 400*time.Microsecond)
	e := newEnv(t, 5, withFaults(plan))
	spec := FlowSpec{
		Name:    "omc-lease-crash",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}, {Node: e.c.Node(4)}},
		Schema:  kvSchema,
		Options: Options{
			Multicast:      true,
			GlobalOrdering: true,
			SegmentSize:    256,
			LeaseTTL:       100 * time.Microsecond,
		},
	}
	const n = 1000
	orders := make([][]int64, len(spec.Targets))
	failed := make([][]int, len(spec.Targets))
	var crashedErr error
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				key := int64(si*n + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					if si == 1 {
						crashedErr = err // node crashed under it
						return
					}
					t.Errorf("healthy source push: %v", err)
					return
				}
				p.Sleep(500 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil && si == 0 {
				t.Errorf("healthy source close: %v", err)
			}
		})
	}
	for ti := range spec.Targets {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
			}
			if !tgt.Done() {
				t.Errorf("target %d stopped without reaching flow end", ti)
			}
			failed[ti] = tgt.FailedSources()
		})
	}
	e.run(t)
	if crashedErr == nil {
		t.Fatal("crashed source reported no error")
	}
	if !errors.Is(crashedErr, ErrFlowBroken) {
		t.Fatalf("crashed source error %v, want ErrFlowBroken", crashedErr)
	}
	for ti := range spec.Targets {
		if len(failed[ti]) != 1 || failed[ti][0] != 1 {
			t.Fatalf("target %d failed sources %v, want [1] (lease eviction)", ti, failed[ti])
		}
		// Identical global order everywhere — the headline invariant.
		if ti > 0 {
			if len(orders[ti]) != len(orders[0]) {
				t.Fatalf("target %d delivered %d tuples, target 0 delivered %d",
					ti, len(orders[ti]), len(orders[0]))
			}
			for i := range orders[ti] {
				if orders[ti][i] != orders[0][i] {
					t.Fatalf("target %d diverges from target 0 at %d: %d vs %d",
						ti, i, orders[ti][i], orders[0][i])
				}
			}
		}
		// Zero loss outside the agreed-skip set: the healthy source's
		// keys [0,n) all arrive, in push order (its history outlives
		// every gap, so none of its sequences can be agreed away).
		last, seen := int64(-1), 0
		for _, k := range orders[ti] {
			if k >= int64(n) {
				continue // crashed source's partial prefix
			}
			if k <= last {
				t.Fatalf("target %d: healthy source out of order (%d after %d)", ti, k, last)
			}
			last = k
			seen++
		}
		if seen != n {
			t.Fatalf("target %d delivered %d of %d healthy-source tuples", ti, seen, n)
		}
	}
}

func TestChaosOrderedMulticastTargetEvictRejoin(t *testing.T) {
	// A target is administratively evicted mid-flow and immediately
	// rejoins via Reattach: the fresh incarnation installs the
	// registry's sequencer snapshot and resumes at the high-water. The
	// survivor must deliver the complete stream, and everything the
	// rejoiner consumes after the rejoin must be a suffix of the
	// survivor's global order — same sequence, later entry point.
	e := newEnv(t, 4, withFaults(&fabric.FaultPlan{DropSend: 0.03}))
	spec := FlowSpec{
		Name:    "omc-rejoin",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			Multicast:      true,
			GlobalOrdering: true,
			SegmentSize:    256,
			LeaseTTL:       100 * time.Microsecond,
		},
	}
	const n = 2000
	var survivor, pre, post []int64
	var resumedFrom uint64
	rejoinedDone := false
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				key := int64(si*n + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					t.Errorf("source %d push: %v", si, err)
					return
				}
				p.Sleep(200 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil {
				t.Errorf("source %d close: %v", si, err)
			}
		})
	}
	e.k.Spawn("evictor", func(p *sim.Proc) {
		p.Sleep(150 * time.Microsecond)
		if err := e.reg.Evict(p, spec.Name, registry.RoleTarget, 1); err != nil {
			t.Errorf("evict: %v", err)
		}
	})
	e.k.Spawn("tgt0", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			survivor = append(survivor, kvSchema.Int64(tup, 0))
		}
		if !tgt.Done() {
			t.Error("survivor stopped without reaching flow end")
		}
	})
	e.k.Spawn("tgt1", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			tup, ok := tgt.Consume(p)
			if !ok {
				break
			}
			pre = append(pre, kvSchema.Int64(tup, 0))
		}
		if !tgt.Evicted() {
			t.Error("target 1 stopped consuming but was not evicted")
			return
		}
		nt, err := tgt.Reattach(p)
		if err != nil {
			t.Errorf("rejoin: %v", err)
			return
		}
		resumedFrom = nt.ResumedFrom()
		for {
			tup, ok := nt.Consume(p)
			if !ok {
				break
			}
			post = append(post, kvSchema.Int64(tup, 0))
		}
		rejoinedDone = nt.Done()
	})
	e.run(t)
	if len(survivor) != 2*n {
		t.Fatalf("survivor delivered %d tuples, want %d", len(survivor), 2*n)
	}
	if len(pre) == 0 || resumedFrom == 0 {
		t.Fatalf("rejoiner consumed nothing before eviction (pre=%d resumedFrom=%d)", len(pre), resumedFrom)
	}
	if !rejoinedDone {
		t.Fatal("rejoined target did not reach flow end")
	}
	if len(post) == 0 {
		t.Fatal("rejoined target consumed nothing after snapshot install")
	}
	// The rejoiner resumes at the snapshot high-water: its post-rejoin
	// stream must be exactly the tail of the survivor's global order.
	off := len(survivor) - len(post)
	if off < 0 {
		t.Fatalf("rejoiner delivered %d tuples after rejoin, more than survivor's %d", len(post), len(survivor))
	}
	for i := range post {
		if post[i] != survivor[off+i] {
			t.Fatalf("rejoiner diverges from survivor tail at %d: %d vs %d", i, post[i], survivor[off+i])
		}
	}
}

func TestChaosOrderedMulticastNotifyGapsAgreement(t *testing.T) {
	// NotifyGaps under the lease control plane: a surfaced Gap must be a
	// sequence number ALL live targets agreed is unfillable (recorded in
	// the registry before any target acts on it) — never a local
	// timeout's guess. Both targets must surface the identical gap list
	// and deliver the identical tuple order around it.
	plan := (&fabric.FaultPlan{DropSend: 0.15}).CrashNode(1, 300*time.Microsecond)
	e := newEnv(t, 4, withFaults(plan))
	spec := FlowSpec{
		Name:    "omc-gap-agree",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}, {Node: e.c.Node(1)}},
		Targets: []Endpoint{{Node: e.c.Node(2)}, {Node: e.c.Node(3)}},
		Schema:  kvSchema,
		Options: Options{
			Multicast:      true,
			GlobalOrdering: true,
			NotifyGaps:     true,
			SegmentSize:    256,
			LeaseTTL:       100 * time.Microsecond,
			GapNackLimit:   2, // escalate to agreement a little sooner
		},
	}
	const n = 1000
	orders := make([][]int64, len(spec.Targets))
	gaps := make([][]uint64, len(spec.Targets))
	snaps := make([]registry.SeqSnapshot, len(spec.Targets))
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	for si := 0; si < 2; si++ {
		si := si
		e.k.Spawn(fmt.Sprintf("src%d", si), func(p *sim.Proc) {
			src, err := SourceOpen(p, e.reg, spec.Name, si)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				key := int64(si*n + i)
				if err := src.Push(p, mkTuple(key, 2*key)); err != nil {
					if si == 1 && errors.Is(err, ErrFlowBroken) {
						return // its node crashed under it
					}
					t.Errorf("source %d push: %v", si, err)
					return
				}
				p.Sleep(300 * time.Nanosecond)
			}
			if err := src.Close(p); err != nil && si == 0 {
				t.Errorf("healthy source close: %v", err)
			}
		})
	}
	for ti := range spec.Targets {
		ti := ti
		e.k.Spawn(fmt.Sprintf("tgt%d", ti), func(p *sim.Proc) {
			tgt, err := TargetOpen(p, e.reg, spec.Name, ti)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if ok {
					orders[ti] = append(orders[ti], kvSchema.Int64(tup, 0))
					continue
				}
				if g, pending := tgt.PendingGap(); pending {
					gaps[ti] = append(gaps[ti], g.Seq)
					tgt.ResolveGap(p)
					continue
				}
				break
			}
			if !tgt.Done() {
				t.Errorf("target %d stopped without reaching flow end", ti)
			}
			// Read the sequencer record AFTER this target finished: every
			// gap it surfaced must already be on file (the arbiter records
			// the verdict before announcing it).
			snaps[ti], _ = e.reg.SeqSnapshot(p, spec.Name)
		})
	}
	e.run(t)
	if len(gaps[1]) != len(gaps[0]) {
		t.Fatalf("targets surfaced different gap counts: %v vs %v", gaps[0], gaps[1])
	}
	for i := range gaps[0] {
		if gaps[0][i] != gaps[1][i] {
			t.Fatalf("targets surfaced different gaps at %d: %v vs %v", i, gaps[0], gaps[1])
		}
	}
	for ti := range spec.Targets {
		agreed := make(map[uint64]bool, len(snaps[ti].Skips))
		for _, s := range snaps[ti].Skips {
			agreed[s] = true
		}
		for _, seq := range gaps[ti] {
			if !agreed[seq] {
				t.Fatalf("target %d surfaced gap %d that was never agreed in the registry (skips %v)",
					ti, seq, snaps[ti].Skips)
			}
		}
	}
	if len(orders[0]) != len(orders[1]) {
		t.Fatalf("targets delivered different counts: %d vs %d", len(orders[0]), len(orders[1]))
	}
	for i := range orders[0] {
		if orders[0][i] != orders[1][i] {
			t.Fatalf("targets diverge at %d: %d vs %d", i, orders[0][i], orders[1][i])
		}
	}
	// Healthy stream complete: no surfaced gap may have cost a tuple
	// whose retransmission history was still alive.
	seen := 0
	for _, k := range orders[0] {
		if k < int64(n) {
			seen++
		}
	}
	if seen != n {
		t.Fatalf("delivered %d of %d healthy-source tuples", seen, n)
	}
}

func TestMulticastUnsupportedOps(t *testing.T) {
	// The operations that cannot work on the multicast transport fail
	// with the typed sentinel so applications can branch on errors.Is
	// instead of string-matching.
	e := newEnv(t, 2)
	spec := FlowSpec{
		Name:    "mc-unsupported",
		Type:    ReplicateFlow,
		Sources: []Endpoint{{Node: e.c.Node(0)}},
		Targets: []Endpoint{{Node: e.c.Node(1)}},
		Schema:  kvSchema,
		Options: Options{Multicast: true, GlobalOrdering: true}, // ordered, but no lease
	}
	const n = 50
	e.k.Spawn("init", func(p *sim.Proc) {
		if err := FlowInit(p, e.reg, e.c, spec); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("src", func(p *sim.Proc) {
		src, err := SourceOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := src.Checkpoint(p); !errors.Is(err, ErrUnsupportedOnMulticast) {
			t.Errorf("Checkpoint error %v, want ErrUnsupportedOnMulticast", err)
		}
		if _, err := src.Reserve(p, 4); !errors.Is(err, ErrUnsupportedOnMulticast) {
			t.Errorf("Reserve error %v, want ErrUnsupportedOnMulticast", err)
		}
		if _, err := src.ReserveTo(p, 0, 4); !errors.Is(err, ErrUnsupportedOnMulticast) {
			t.Errorf("ReserveTo error %v, want ErrUnsupportedOnMulticast", err)
		}
		if _, _, err := src.Reattach(p); !errors.Is(err, ErrUnsupportedOnMulticast) {
			t.Errorf("Source.Reattach error %v, want ErrUnsupportedOnMulticast", err)
		}
		for i := 0; i < n; i++ {
			if err := src.Push(p, mkTuple(int64(i), int64(2*i))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := src.Close(p); err != nil {
			t.Error(err)
		}
	})
	e.k.Spawn("tgt", func(p *sim.Proc) {
		tgt, err := TargetOpen(p, e.reg, spec.Name, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got := 0
		for {
			if _, ok := tgt.Consume(p); !ok {
				break
			}
			got++
		}
		if got != n {
			t.Errorf("consumed %d tuples, want %d", got, n)
		}
		// Without LeaseTTL no sequencer snapshot was ever recorded, so
		// there is nothing to rejoin from.
		if _, err := tgt.Reattach(p); !errors.Is(err, ErrUnsupportedOnMulticast) {
			t.Errorf("Target.Reattach error %v, want ErrUnsupportedOnMulticast", err)
		}
	})
	e.run(t)
}

func TestGapNackLimitValidation(t *testing.T) {
	e := newEnv(t, 2)
	mc := Options{Multicast: true, GlobalOrdering: true}
	e.k.Spawn("p", func(p *sim.Proc) {
		bad := FlowSpec{
			Name:    "nack-bad",
			Type:    ReplicateFlow,
			Sources: []Endpoint{{Node: e.c.Node(0)}},
			Targets: []Endpoint{{Node: e.c.Node(1)}},
			Schema:  kvSchema,
			Options: mc,
		}
		bad.Options.GapNackLimit = -1
		if err := FlowInit(p, e.reg, e.c, bad); err == nil {
			t.Error("negative GapNackLimit accepted")
		}
		good := bad
		good.Name = "nack-good"
		good.Options.GapNackLimit = 5
		if err := FlowInit(p, e.reg, e.c, good); err != nil {
			t.Errorf("GapNackLimit=5 rejected: %v", err)
		}
	})
	e.run(t)
}
