package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/sim"
)

// ringMetrics are the virtual metrics of one ring flow. Every field is a
// pure function of the ring's own virtual timeline, so they must come out
// byte-identical no matter how rings are packed onto shards.
type ringMetrics struct {
	Consumed int
	KeySum   int64
	SrcDone  sim.Time
	TgtDone  sim.Time
	BytesTx  int64
}

// runShardedRings simulates `rings` independent source→target ring flows
// packed round-robin onto `shards` shard timelines and returns their
// virtual metrics. Rings never talk across shards — each is a closed
// two-node cluster — which is the "independent node timelines" regime the
// sharded kernel parallelizes.
func runShardedRings(t *testing.T, shards, rings, tuples int) []ringMetrics {
	t.Helper()
	const hop = 370 * time.Nanosecond // fabric propagation + switch delay
	g := sim.NewShardGroup(shards, 12345, hop)
	clusters := make([]*fabric.Cluster, rings)
	ms := make([]ringMetrics, rings)
	for r := 0; r < rings; r++ {
		r := r
		k := g.Shard(r % shards)
		k.Deadline = 30 * time.Second
		k.MaxEvents = 50_000_000
		c := fabric.NewCluster(k, 2, fabric.DefaultConfig())
		clusters[r] = c
		reg := registry.New(k)
		name := fmt.Sprintf("ring%d", r)
		spec := FlowSpec{
			Name:    name,
			Sources: []Endpoint{{Node: c.Node(0)}},
			Targets: []Endpoint{{Node: c.Node(1)}},
			Schema:  kvSchema,
		}
		k.Spawn(name+"-init", func(p *sim.Proc) { _ = FlowInit(p, reg, c, spec) })
		k.Spawn(name+"-src", func(p *sim.Proc) {
			src, err := SourceOpen(p, reg, name, 0)
			if err != nil {
				t.Errorf("%s: source open: %v", name, err)
				return
			}
			for i := 0; i < tuples; i++ {
				_ = src.Push(p, mkTuple(int64(i), int64(r)))
			}
			src.Close(p)
			ms[r].SrcDone = p.Now()
		})
		k.Spawn(name+"-tgt", func(p *sim.Proc) {
			tgt, err := TargetOpen(p, reg, name, 0)
			if err != nil {
				t.Errorf("%s: target open: %v", name, err)
				return
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					break
				}
				ms[r].Consumed++
				ms[r].KeySum += kvSchema.Int64(tup, 0)
			}
			ms[r].TgtDone = p.Now()
		})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rings; r++ {
		ms[r].BytesTx = clusters[r].Node(0).BytesTx()
	}
	return ms
}

// TestShardedRingIdentityVirtualMetrics is the determinism gate for the
// parallel kernel: packing the same ring flows onto 1 shard (serial
// baseline) or onto several shards executing windows on separate host
// cores must produce byte-identical virtual metrics — delivery counts,
// content checksums, completion times, wire bytes.
func TestShardedRingIdentityVirtualMetrics(t *testing.T) {
	const rings, tuples = 6, 3000
	base := runShardedRings(t, 1, rings, tuples)
	for r := range base {
		if base[r].Consumed != tuples {
			t.Fatalf("ring %d consumed %d of %d tuples", r, base[r].Consumed, tuples)
		}
		if want := int64(tuples) * int64(tuples-1) / 2; base[r].KeySum != want {
			t.Fatalf("ring %d key checksum %d, want %d", r, base[r].KeySum, want)
		}
	}
	for _, shards := range []int{2, 4} {
		got := runShardedRings(t, shards, rings, tuples)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("virtual metrics diverge between 1 shard and %d shards:\n base: %+v\n got:  %+v",
				shards, base, got)
		}
	}
}
