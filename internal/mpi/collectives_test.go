package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"dfi/internal/sim"
)

// runCollective spawns one proc per rank executing fn.
func runCollective(t *testing.T, n int, fn func(p *sim.Proc, rank int, w *World)) {
	t.Helper()
	k, w := newWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) { fn(p, i, w) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const n = 4
	got := make([][]byte, n)
	runCollective(t, n, func(p *sim.Proc, rank int, w *World) {
		var buf []byte
		if rank == 2 {
			buf = []byte("broadcast-me")
		}
		got[rank] = w.Rank(rank).Bcast(p, 9, 2, buf)
	})
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], []byte("broadcast-me")) {
			t.Fatalf("rank %d got %q", i, got[i])
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const n = 4
	gathered := make([][][]byte, n)
	runCollective(t, n, func(p *sim.Proc, rank int, w *World) {
		var parts [][]byte
		if rank == 0 {
			parts = make([][]byte, n)
			for i := range parts {
				parts[i] = []byte(fmt.Sprintf("part-%d", i))
			}
		}
		mine := w.Rank(rank).Scatter(p, 1, 0, parts)
		if string(mine) != fmt.Sprintf("part-%d", rank) {
			t.Errorf("rank %d scattered %q", rank, mine)
		}
		gathered[rank] = w.Rank(rank).Gather(p, 2, 0, mine)
	})
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("part-%d", i)
		if string(gathered[0][i]) != want {
			t.Fatalf("gather slot %d = %q, want %q", i, gathered[0][i], want)
		}
	}
	if gathered[1] != nil {
		t.Fatal("non-root rank received a gather result")
	}
}

func TestReduceSumMinMax(t *testing.T) {
	const n = 3
	cases := []struct {
		op   ReduceOp
		want []int64
	}{
		{OpSum, []int64{0 + 10 + 20, 1 + 11 + 21}},
		{OpMin, []int64{0, 1}},
		{OpMax, []int64{20, 21}},
	}
	for ci, c := range cases {
		c := c
		var got []int64
		runCollective(t, n, func(p *sim.Proc, rank int, w *World) {
			vec := []int64{int64(rank * 10), int64(rank*10 + 1)}
			res := w.Rank(rank).Reduce(p, uint64(ci), 0, vec, c.op)
			if rank == 0 {
				got = res
			} else if res != nil {
				t.Errorf("non-root received reduce result")
			}
		})
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("case %d: got %v want %v", ci, got, c.want)
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	const n = 4
	got := make([][]int64, n)
	runCollective(t, n, func(p *sim.Proc, rank int, w *World) {
		got[rank] = w.Rank(rank).Allreduce(p, 50, []int64{int64(rank + 1)}, OpSum)
	})
	for i := 0; i < n; i++ {
		if got[i][0] != 1+2+3+4 {
			t.Fatalf("rank %d allreduce = %v", i, got[i])
		}
	}
}

func TestCollectivesAreBulkSynchronous(t *testing.T) {
	// No rank may leave a Bcast before the slowest rank entered it.
	const n = 3
	var doneAt [n]sim.Time
	runCollective(t, n, func(p *sim.Proc, rank int, w *World) {
		if rank == 1 {
			p.Sleep(5_000_000) // 5ms straggler
		}
		var buf []byte
		if rank == 0 {
			buf = []byte("x")
		}
		w.Rank(rank).Bcast(p, 3, 0, buf)
		doneAt[rank] = p.Now()
	})
	for i, ts := range doneAt {
		if ts < 5_000_000 {
			t.Fatalf("rank %d left the collective at %v, before the straggler arrived", i, ts)
		}
	}
}
