package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

func newWorld(t *testing.T, n int) (*sim.Kernel, *World) {
	t.Helper()
	k := sim.New(3)
	k.Deadline = 30 * time.Second
	k.MaxEvents = 50_000_000
	c := fabric.NewCluster(k, n, fabric.DefaultConfig())
	nodes := make([]*fabric.Node, n)
	for i := range nodes {
		nodes[i] = c.Node(i)
	}
	return k, NewWorld(c, nodes, DefaultConfig())
}

func TestSendRecv(t *testing.T) {
	k, w := newWorld(t, 2)
	k.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 7, []byte("hello mpi"))
	})
	var got []byte
	k.Spawn("r1", func(p *sim.Proc) {
		got = w.Rank(1).Recv(p, 0, 7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello mpi" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvTagMatchingOutOfOrder(t *testing.T) {
	k, w := newWorld(t, 2)
	k.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, []byte("first"))
		w.Rank(0).Send(p, 1, 2, []byte("second"))
	})
	k.Spawn("r1", func(p *sim.Proc) {
		// Receive tag 2 before tag 1: matching must hold tag 1 aside.
		if got := w.Rank(1).Recv(p, 0, 2); string(got) != "second" {
			t.Errorf("tag2 = %q", got)
		}
		if got := w.Rank(1).Recv(p, 0, 1); string(got) != "first" {
			t.Errorf("tag1 = %q", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutOneSided(t *testing.T) {
	k, w := newWorld(t, 2)
	win := w.Rank(1).ExposeWindow(128)
	k.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Put(p, 1, 32, []byte("one-sided"))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(win.Bytes()[32:41], []byte("one-sided")) {
		t.Fatalf("window = %q", win.Bytes()[32:41])
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	k, w := newWorld(t, 4)
	var after []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			w.Rank(i).Barrier(p)
			after = append(after, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range after {
		if ts < 4*time.Millisecond {
			t.Fatalf("rank left barrier at %v before last arrival", ts)
		}
	}
}

func TestAlltoallExchangesAllParts(t *testing.T) {
	const n = 4
	k, w := newWorld(t, n)
	results := make([][][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			parts := make([][]byte, n)
			for j := 0; j < n; j++ {
				parts[j] = []byte(fmt.Sprintf("from%d-to%d", i, j))
			}
			results[i] = w.Rank(i).Alltoall(p, 5, parts)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("from%d-to%d", i, j)
			if string(results[j][i]) != want {
				t.Fatalf("rank %d slot %d = %q, want %q", j, i, results[j][i], want)
			}
		}
	}
}

func TestAlltoallIsBulkSynchronous(t *testing.T) {
	// A straggling rank delays the whole collective: nobody's exchange
	// completes before the slowest rank arrives.
	const n = 3
	k, w := newWorld(t, n)
	var doneAt [n]sim.Time
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if i == 0 {
				p.Sleep(10 * time.Millisecond) // straggler
			}
			parts := make([][]byte, n)
			for j := range parts {
				parts[j] = make([]byte, 64)
			}
			w.Rank(i).Alltoall(p, 1, parts)
			doneAt[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ts := range doneAt {
		if ts < 10*time.Millisecond {
			t.Fatalf("rank %d finished at %v, before the straggler arrived", i, ts)
		}
	}
}

func TestThreadMultipleContentionSlowsCalls(t *testing.T) {
	// The same message stream costs more per message as more threads bang
	// on the rank's latch — the Figure 10b collapse.
	elapsed := func(threads int) sim.Time {
		k, w := newWorld(t, 2)
		w.Rank(0).SetThreads(threads)
		const perThread = 200
		wg := sim.NewWaitGroup(k)
		var last sim.Time
		for th := 0; th < threads; th++ {
			wg.Add(1)
			k.Spawn(fmt.Sprintf("t%d", th), func(p *sim.Proc) {
				buf := make([]byte, 64)
				for i := 0; i < perThread; i++ {
					w.Rank(0).Send(p, 1, uint64(th), buf)
				}
				if p.Now() > last {
					last = p.Now()
				}
				wg.Done()
			})
		}
		k.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < threads*perThread; i++ {
				qp := w.Rank(1).qps[0]
				buf := make([]byte, msgHeader+64)
				qp.PostRecv(buf, 0)
				qp.RecvCQ().Wait(p)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	t1, t4 := elapsed(1), elapsed(4)
	// 4 threads send 4× the messages; if threading were free the elapsed
	// time would stay roughly flat. Contention must make it clearly worse
	// than single-threaded for the same per-thread load.
	if t4 < t1*2 {
		t.Fatalf("4-thread run %v not slower than single-thread %v despite contention", t4, t1)
	}
}

func TestSendValidation(t *testing.T) {
	k, w := newWorld(t, 2)
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversized message accepted")
			}
		}()
		w.Rank(0).Send(p, 1, 0, make([]byte, 16<<20))
	})
	_ = k.Run()
}

func TestPutAsyncWithFence(t *testing.T) {
	k, w := newWorld(t, 2)
	win := w.Rank(1).ExposeWindow(4096)
	k.Spawn("r0", func(p *sim.Proc) {
		bufs := make([][]byte, 8)
		for i := range bufs {
			bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 128)
			w.Rank(0).PutAsync(p, 1, i*128, bufs[i])
		}
		w.Rank(0).Fence(p, 1) // all puts complete (and are remotely visible)
		for i := range bufs {
			if win.Bytes()[i*128] != byte(i+1) {
				t.Errorf("put %d not visible after fence", i)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutWithoutWindowPanics(t *testing.T) {
	k, w := newWorld(t, 2)
	k.Spawn("r0", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Put without window did not panic")
			}
		}()
		w.Rank(0).Put(p, 1, 0, []byte("x"))
	})
	_ = k.Run()
}

func TestEagerVsRendezvousSendLatency(t *testing.T) {
	// Small (eager) sends return almost immediately; sends beyond the
	// eager threshold block for the round trip.
	elapsed := func(size int) sim.Time {
		k, w := newWorld(t, 2)
		var d sim.Time
		k.Spawn("r0", func(p *sim.Proc) {
			start := p.Now()
			w.Rank(0).Send(p, 1, 1, make([]byte, size))
			d = p.Now() - start
		})
		k.Spawn("r1", func(p *sim.Proc) {
			w.Rank(1).Recv(p, 0, 1)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	small := elapsed(512)
	large := elapsed(256 << 10)
	if small >= 2*time.Microsecond {
		t.Fatalf("eager send took %v", small)
	}
	if large <= small*4 {
		t.Fatalf("rendezvous send (%v) not clearly slower than eager (%v)", large, small)
	}
}
