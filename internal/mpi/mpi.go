// Package mpi implements a miniature MPI over the simulated RDMA fabric —
// the baseline DFI is evaluated against in the paper (§2.2, §6.2).
//
// It reproduces the traits that make MPI a poor fit for data-intensive
// systems rather than the full standard:
//
//   - Point-to-point Send/Recv with tag matching and a per-message
//     software overhead (an optimized RDMA-backed MPI still pays its
//     progress engine and matching logic on every message).
//   - One-sided Put into pre-exposed windows.
//   - Bulk-synchronous collectives (Barrier, Alltoall): every rank blocks
//     until all ranks arrive, so no compute/communication overlap and full
//     straggler sensitivity.
//   - Process-centric execution: one rank per process. Multi-threaded
//     ranks (MPI_THREAD_MULTIPLE) serialize every call on a central latch
//     whose hold time grows with the number of threads (lock and
//     cache-line contention), matching the measured collapse in Figure
//     10b.
package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
)

// Config is the mini-MPI cost model.
type Config struct {
	// MsgOverhead is the per-message software cost (progress engine,
	// matching, request bookkeeping) on both send and receive paths.
	MsgOverhead time.Duration

	// LatchHold is the base time the THREAD_MULTIPLE latch is held per
	// call; contention multiplies it (see ContentionFactor).
	LatchHold time.Duration

	// ContentionFactor scales the extra latch cost per additional thread
	// on the rank: hold = LatchHold × (1 + ContentionFactor × (threads−1)).
	ContentionFactor float64

	// CollectiveSetup is the per-collective synchronization overhead
	// (communicator bookkeeping, algorithm selection) each rank pays on
	// top of the implied barrier.
	CollectiveSetup time.Duration

	// MaxMessage bounds a single point-to-point message (receive buffers
	// are sized to it).
	MaxMessage int

	// EagerThreshold: sends at or below it are buffered eagerly (the call
	// returns after the local copy); larger sends block until the NIC is
	// done with the buffer (rendezvous-style).
	EagerThreshold int
}

// DefaultConfig returns costs calibrated against the paper's HPC-X
// deployment (DESIGN.md §6).
func DefaultConfig() Config {
	return Config{
		MsgOverhead:      300 * time.Nanosecond,
		LatchHold:        300 * time.Nanosecond,
		ContentionFactor: 0.8,
		CollectiveSetup:  6 * time.Microsecond,
		MaxMessage:       1 << 20,
		EagerThreshold:   64 << 10,
	}
}

// World is an MPI communicator spanning a set of ranks.
type World struct {
	c       *fabric.Cluster
	cfg     Config
	ranks   []*Rank
	barrier *sim.Barrier
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	node *fabric.Node

	latch   *sim.Resource
	threads int // threads attached to this rank (THREAD_MULTIPLE)

	qps       []*fabric.QP // to every rank (nil for self)
	unmatched [][]message  // arrived-but-unmatched messages, per source
	window    *fabric.MemoryRegion
}

type message struct {
	tag     uint64
	payload []byte
}

// msgHeader frames point-to-point messages: tag(8) + size(8).
const msgHeader = 16

// NewWorld creates one rank on each of the given nodes, fully meshed with
// reliable queue pairs. Nodes may repeat (multiple ranks per node share
// its NIC, as multi-process MPI deployments do).
func NewWorld(c *fabric.Cluster, nodes []*fabric.Node, cfg Config) *World {
	w := &World{c: c, cfg: cfg, barrier: sim.NewBarrier(c.K, len(nodes))}
	for i, n := range nodes {
		w.ranks = append(w.ranks, &Rank{
			w:         w,
			id:        i,
			node:      n,
			latch:     sim.NewResource(c.K, fmt.Sprintf("mpi-latch-%d", i), 1),
			threads:   1,
			qps:       make([]*fabric.QP, len(nodes)),
			unmatched: make([][]message, len(nodes)),
		})
	}
	for i := range w.ranks {
		for j := i + 1; j < len(w.ranks); j++ {
			qi, qj := c.CreateQPPair(w.ranks[i].node, w.ranks[j].node)
			w.ranks[i].qps[j] = qi
			w.ranks[j].qps[i] = qj
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// ID returns the rank index.
func (r *Rank) ID() int { return r.id }

// Node returns the node the rank runs on.
func (r *Rank) Node() *fabric.Node { return r.node }

// SetThreads declares how many application threads issue MPI calls on
// this rank concurrently (MPI_THREAD_MULTIPLE). Every call then funnels
// through the rank's latch with contention-scaled hold times.
func (r *Rank) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	r.threads = n
}

// enter charges the per-call software cost, serializing through the latch
// when the rank is multi-threaded.
func (r *Rank) enter(p *sim.Proc) {
	if r.threads > 1 {
		hold := time.Duration(float64(r.w.cfg.LatchHold) *
			(1 + r.w.cfg.ContentionFactor*float64(r.threads-1)))
		r.latch.Acquire(p)
		r.node.Compute(p, hold)
		r.latch.Release()
	}
	r.node.Compute(p, r.w.cfg.MsgOverhead)
}

// Send transmits buf to rank dst with the given tag, blocking until the
// local buffer is reusable (standard-mode send with eager completion).
func (r *Rank) Send(p *sim.Proc, dst int, tag uint64, buf []byte) {
	if dst == r.id {
		panic("mpi: self-send not supported")
	}
	if len(buf) > r.w.cfg.MaxMessage {
		panic(fmt.Sprintf("mpi: message of %d bytes exceeds MaxMessage %d", len(buf), r.w.cfg.MaxMessage))
	}
	r.enter(p)
	msg := make([]byte, msgHeader+len(buf))
	binary.LittleEndian.PutUint64(msg[0:8], tag)
	binary.LittleEndian.PutUint64(msg[8:16], uint64(len(buf)))
	copy(msg[msgHeader:], buf)
	qp := r.qps[dst]
	if len(buf) <= r.w.cfg.EagerThreshold {
		// Eager path: the message was copied into a system buffer; the
		// call completes locally.
		qp.Send(p, msg, false, tag)
		return
	}
	qp.Send(p, msg, true, tag)
	// Rendezvous-style: wait until the NIC is done with the local buffer.
	for {
		c := qp.SendCQ().Wait(p)
		if c.Op == fabric.OpSend {
			return
		}
	}
}

// Recv blocks until a message with the given tag arrives from rank src
// and returns its payload.
func (r *Rank) Recv(p *sim.Proc, src int, tag uint64) []byte {
	if src == r.id {
		panic("mpi: self-recv not supported")
	}
	r.enter(p)
	qp := r.qps[src]
	for {
		// Messages other threads of this rank drained land in the
		// unmatched list; always re-check it before blocking.
		for i, m := range r.unmatched[src] {
			if m.tag == tag {
				r.unmatched[src] = append(r.unmatched[src][:i], r.unmatched[src][i+1:]...)
				return m.payload
			}
		}
		if qp.PostedRecvs() == 0 {
			qp.PostRecv(make([]byte, msgHeader+r.w.cfg.MaxMessage), 0)
		}
		// A bounded wait so concurrent receivers on the rank notice
		// messages a sibling stashed for them.
		c, ok := qp.RecvCQ().WaitTimeout(p, 2*time.Microsecond)
		if !ok {
			continue
		}
		got := binary.LittleEndian.Uint64(c.Buf[0:8])
		size := binary.LittleEndian.Uint64(c.Buf[8:16])
		payload := c.Buf[msgHeader : msgHeader+size]
		if got == tag {
			return payload
		}
		r.unmatched[src] = append(r.unmatched[src], message{tag: got, payload: payload})
	}
}

// ExposeWindow registers size bytes of one-sided-accessible memory on the
// rank (MPI_Win_create).
func (r *Rank) ExposeWindow(size int) *fabric.MemoryRegion {
	r.window = r.w.c.RegisterMemory(r.node, size)
	return r.window
}

// Window returns the rank's exposed window.
func (r *Rank) Window() *fabric.MemoryRegion { return r.window }

// Put writes buf into dst's window at off (one-sided MPI_Put) and blocks
// until the local buffer is reusable.
func (r *Rank) Put(p *sim.Proc, dst int, off int, buf []byte) {
	r.enter(p)
	target := r.w.ranks[dst]
	if target.window == nil {
		panic("mpi: Put to rank without an exposed window")
	}
	qp := r.qps[dst]
	qp.Write(p, buf, fabric.Addr{MR: target.window, Off: off}, fabric.WriteOptions{Signaled: true})
	for {
		c := qp.SendCQ().Wait(p)
		if c.Op == fabric.OpWrite {
			return
		}
	}
}

// Barrier blocks until every rank has entered it (each rank pays the
// collective setup cost).
func (r *Rank) Barrier(p *sim.Proc) {
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup/2)
	r.w.barrier.Await(p)
}

// Alltoall performs the bulk-synchronous MPI_Alltoall: rank i's parts[j]
// is delivered as the j-th element of rank j's result. All ranks must
// call it collectively; no data moves until every rank has arrived, and
// no rank leaves before the exchange completes — the blocking semantics
// that prevent compute/communication overlap (paper §2.2).
func (r *Rank) Alltoall(p *sim.Proc, tag uint64, parts [][]byte) [][]byte {
	if len(parts) != len(r.w.ranks) {
		panic("mpi: Alltoall needs one part per rank")
	}
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup)
	r.w.barrier.Await(p) // all data must be ready everywhere

	out := make([][]byte, len(parts))
	out[r.id] = parts[r.id]
	// Ring schedule: step s exchanges with ranks (id±s) to avoid incast.
	n := len(r.w.ranks)
	for s := 1; s < n; s++ {
		dst := (r.id + s) % n
		src := (r.id - s + n) % n
		r.sendRaw(p, dst, tag, parts[dst])
		out[src] = r.Recv(p, src, tag)
	}
	r.w.barrier.Await(p) // collective completes everywhere together
	return out
}

// sendRaw is Send without the blocking wait for the send completion,
// used inside collectives where the exit barrier provides the guarantee.
func (r *Rank) sendRaw(p *sim.Proc, dst int, tag uint64, buf []byte) {
	r.enter(p)
	msg := make([]byte, msgHeader+len(buf))
	binary.LittleEndian.PutUint64(msg[0:8], tag)
	binary.LittleEndian.PutUint64(msg[8:16], uint64(len(buf)))
	copy(msg[msgHeader:], buf)
	r.qps[dst].Send(p, msg, false, tag)
}

// PutAsync posts a one-sided write into dst's window without waiting for
// completion. The buffer must remain untouched until a Fence to the same
// rank returns (the caller typically hands over a freshly filled
// write-combine buffer).
func (r *Rank) PutAsync(p *sim.Proc, dst int, off int, buf []byte) {
	r.enter(p)
	target := r.w.ranks[dst]
	if target.window == nil {
		panic("mpi: PutAsync to rank without an exposed window")
	}
	r.qps[dst].Write(p, buf, fabric.Addr{MR: target.window, Off: off}, fabric.WriteOptions{})
}

// Fence blocks until all previously posted puts to dst are complete
// (MPI_Win_flush): it posts a signaled zero-byte write, whose in-order
// completion implies completion of everything before it.
func (r *Rank) Fence(p *sim.Proc, dst int) {
	target := r.w.ranks[dst]
	if target.window == nil {
		panic("mpi: Fence to rank without an exposed window")
	}
	qp := r.qps[dst]
	qp.Write(p, nil, fabric.Addr{MR: target.window}, fabric.WriteOptions{Signaled: true})
	for {
		c := qp.SendCQ().Wait(p)
		if c.Op == fabric.OpWrite {
			return
		}
	}
}
