package mpi

import (
	"encoding/binary"
	"fmt"

	"dfi/internal/sim"
)

// procT aliases the simulated-process type for the collective signatures.
type procT = sim.Proc

// The remaining collectives the paper lists in §2.2 ("scatter, gather,
// broadcast or reduce and all to all"). All of them follow MPI's
// bulk-synchronous semantics: entry barrier, exchange, exit barrier — the
// blocking behaviour §2.3 identifies as the obstacle to
// compute/communication overlap.

// Bcast distributes buf from root to every rank; each rank (including
// root) receives the root's buffer as the return value. All ranks must
// call it collectively.
func (r *Rank) Bcast(p *procT, tag uint64, root int, buf []byte) []byte {
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup)
	r.w.barrier.Await(p)
	var out []byte
	if r.id == root {
		// Binomial-tree broadcast is the common implementation; with our
		// fat-tree fabric a flat fan-out has the same critical path shape.
		for dst := range r.w.ranks {
			if dst != root {
				r.sendRaw(p, dst, tag, buf)
			}
		}
		out = buf
	} else {
		out = r.Recv(p, root, tag)
	}
	r.w.barrier.Await(p)
	return out
}

// Scatter splits root's parts across the ranks: rank i receives
// parts[i]. Non-root callers pass nil.
func (r *Rank) Scatter(p *procT, tag uint64, root int, parts [][]byte) []byte {
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup)
	r.w.barrier.Await(p)
	var out []byte
	if r.id == root {
		if len(parts) != len(r.w.ranks) {
			panic("mpi: Scatter needs one part per rank")
		}
		for dst := range r.w.ranks {
			if dst != root {
				r.sendRaw(p, dst, tag, parts[dst])
			}
		}
		out = parts[root]
	} else {
		out = r.Recv(p, root, tag)
	}
	r.w.barrier.Await(p)
	return out
}

// Gather collects each rank's buf at root: root receives one slice per
// rank (its own included); other ranks receive nil.
func (r *Rank) Gather(p *procT, tag uint64, root int, buf []byte) [][]byte {
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup)
	r.w.barrier.Await(p)
	var out [][]byte
	if r.id == root {
		out = make([][]byte, len(r.w.ranks))
		out[root] = buf
		for src := range r.w.ranks {
			if src != root {
				out[src] = r.Recv(p, src, tag)
			}
		}
	} else {
		r.sendRaw(p, root, tag, buf)
	}
	r.w.barrier.Await(p)
	return out
}

// ReduceOp is a reduction operator over int64 vectors.
type ReduceOp func(acc, v int64) int64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, v int64) int64 { return a + v }
	OpMin ReduceOp = func(a, v int64) int64 {
		if v < a {
			return v
		}
		return a
	}
	OpMax ReduceOp = func(a, v int64) int64 {
		if v > a {
			return v
		}
		return a
	}
)

// Reduce combines each rank's int64 vector element-wise at root with the
// given operator; root receives the reduced vector, others nil. Vectors
// must have equal length on all ranks.
func (r *Rank) Reduce(p *procT, tag uint64, root int, vec []int64, op ReduceOp) []int64 {
	r.enter(p)
	r.node.Compute(p, r.w.cfg.CollectiveSetup)
	r.w.barrier.Await(p)
	var out []int64
	if r.id == root {
		out = append([]int64(nil), vec...)
		for src := range r.w.ranks {
			if src == root {
				continue
			}
			payload := r.Recv(p, src, tag)
			if len(payload) != 8*len(vec) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch from rank %d", src))
			}
			for i := range out {
				out[i] = op(out[i], int64(binary.LittleEndian.Uint64(payload[i*8:])))
			}
		}
	} else {
		payload := make([]byte, 8*len(vec))
		for i, v := range vec {
			binary.LittleEndian.PutUint64(payload[i*8:], uint64(v))
		}
		r.sendRaw(p, root, tag, payload)
	}
	r.w.barrier.Await(p)
	return out
}

// Allreduce is Reduce followed by Bcast of the result, as MPI implements
// it semantically: every rank receives the reduced vector.
func (r *Rank) Allreduce(p *procT, tag uint64, vec []int64, op ReduceOp) []int64 {
	out := r.Reduce(p, tag, 0, vec, op)
	var payload []byte
	if r.id == 0 {
		payload = make([]byte, 8*len(vec))
		for i, v := range out {
			binary.LittleEndian.PutUint64(payload[i*8:], uint64(v))
		}
	}
	payload = r.Bcast(p, tag+1, 0, payload)
	res := make([]int64, len(vec))
	for i := range res {
		res[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return res
}
