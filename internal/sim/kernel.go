// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with cooperatively scheduled processes.
//
// The kernel maintains a virtual clock and an event heap. Exactly one
// goroutine — either the scheduler or a single simulated process — runs at
// any moment, handing control back and forth over unbuffered channels
// ("baton passing"). This makes the simulation deterministic for a given
// seed and spawn order, and lets event callbacks mutate shared simulation
// state (e.g. simulated RDMA memory regions) without locks.
//
// Processes are ordinary functions of the form func(*Proc). Inside a
// process, blocking operations (Sleep, channel operations, resource
// acquisition, condition waits) advance virtual time; plain Go code runs
// instantaneously in virtual time.
//
// The kernel is the substrate for the simulated RDMA fabric
// (dfi/internal/fabric) on which the DFI flow implementation runs.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point on the virtual clock, expressed as the duration since the
// start of the simulation.
type Time = time.Duration

// Event kinds. The hot kinds (timers, wake-ups, process starts) carry their
// target process and park generation in the event itself, so scheduling a
// sleep or a wake allocates nothing; only evFn events carry a closure.
const (
	evFn      uint8 = iota // run fn in scheduler context
	evStart                // first scheduling of p
	evTimer                // park timer fired: request a wake at the current instant
	evWake                 // resume p if still parked in generation gen
	evTimeout              // WaitTimeout deadline: mark p timed out, then request a wake
)

// event is a scheduled callback or process transition. Events with equal
// timestamps fire in the order they were scheduled (seq breaks ties), which
// keeps runs reproducible. Events are stored by value in the heap slice so
// the event loop allocates nothing in steady state.
type event struct {
	at   Time
	seq  uint64
	gen  uint64
	p    *Proc
	fn   func()
	kind uint8
}

// before orders events by (at, seq). seq is unique, so the order is total
// and pop order does not depend on heap internals.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is a discrete-event simulation instance. Create one with New, spawn
// processes with Spawn, then call Run.
type Kernel struct {
	now     Time
	events  []event // value-based binary min-heap ordered by (at, seq)
	seq     uint64
	yield   chan struct{} // process -> scheduler handoff
	running *Proc
	rng     *rand.Rand

	parked  map[*Proc]struct{} // processes blocked on a primitive
	nlive   int                // spawned minus exited
	failure error              // first process panic, surfaced by Run

	// MaxEvents aborts Run with an error after this many events, guarding
	// against livelocks (e.g. an unbounded poll loop). Zero means no limit.
	MaxEvents uint64
	// Deadline aborts Run once the virtual clock passes it. Zero means no
	// limit.
	Deadline Time

	nevents uint64
}

// New returns a kernel whose random source is seeded with seed. Two kernels
// constructed with the same seed and driven by the same program execute
// identically.
func New(seed int64) *Kernel {
	return &Kernel{
		yield:     make(chan struct{}),
		rng:       rand.New(rand.NewSource(seed)),
		parked:    make(map[*Proc]struct{}),
		MaxEvents: 2_000_000_000,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events processed so far.
func (k *Kernel) Events() uint64 { return k.nevents }

// Rand returns the kernel's deterministic random source. It must only be
// used from scheduler or process context (never from other goroutines).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// push assigns the next sequence number and inserts e into the heap
// (timestamps are clamped to now).
func (k *Kernel) push(e event) {
	if e.at < k.now {
		e.at = k.now
	}
	k.seq++
	e.seq = k.seq
	h := append(k.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.events = h
}

// pop removes and returns the earliest event. The vacated slot is zeroed so
// it retains no closure or process reference while it waits for reuse.
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].before(&h[s]) {
			s = l
		}
		if r < n && h[r].before(&h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	k.events = h
	return top
}

// at schedules fn to run in scheduler context at time t (clamped to now).
func (k *Kernel) at(t Time, fn func()) {
	k.push(event{at: t, kind: evFn, fn: fn})
}

// After schedules fn to run in scheduler context after d has elapsed on the
// virtual clock. fn must not block; it may resume processes, fire
// conditions, and mutate simulation state.
func (k *Kernel) After(d Time, fn func()) {
	k.at(k.now+d, fn)
}

// At schedules fn to run in scheduler context at absolute virtual time t
// (clamped to the present). Like After, fn must not block.
func (k *Kernel) At(t Time, fn func()) {
	k.at(t, fn)
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. It may be called before Run or from a running
// process or event callback.
func (k *Kernel) Spawn(name string, fn func(*Proc)) {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.nlive++
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.exited = true
			k.nlive--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.push(event{at: k.now, kind: evStart, p: p})
}

// switchTo transfers control to p and blocks until p parks or exits. Must be
// called from scheduler context.
func (k *Kernel) switchTo(p *Proc) {
	if p.exited {
		return
	}
	k.running = p
	p.resume <- struct{}{}
	<-k.yield
	k.running = nil
}

// ready schedules p to resume at the current virtual time. gen guards
// against stale wake-ups: the wake is dropped unless p is still parked in
// the same park generation.
func (k *Kernel) ready(p *Proc, gen uint64) {
	k.push(event{at: k.now, kind: evWake, p: p, gen: gen})
}

// dispatch fires one event in scheduler context.
func (k *Kernel) dispatch(e *event) {
	switch e.kind {
	case evFn:
		e.fn()
	case evStart:
		k.switchTo(e.p)
	case evTimer:
		// Double-hop on purpose: the timer requests a wake, and the wake
		// event (with a fresh sequence number) performs the switch after
		// everything already scheduled for this instant.
		k.ready(e.p, e.gen)
	case evWake:
		p := e.p
		if p.exited || !p.parkedFlag || p.parkGen != e.gen {
			return
		}
		p.parkedFlag = false
		delete(k.parked, p)
		k.switchTo(p)
	case evTimeout:
		p := e.p
		if p.parkedFlag && p.parkGen == e.gen {
			p.timedOut = true
			k.ready(p, e.gen)
		}
	}
}

// Run processes events until none remain, a process panics, MaxEvents is
// exceeded, or the Deadline passes. It returns an error describing abnormal
// termination; a deadlock (live processes parked with no pending events) is
// reported with the parked process names.
func (k *Kernel) Run() error {
	for len(k.events) > 0 {
		if k.failure != nil {
			return k.failure
		}
		if k.MaxEvents > 0 && k.nevents >= k.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v (possible livelock)", k.MaxEvents, k.now)
		}
		e := k.pop()
		if k.Deadline > 0 && e.at > k.Deadline {
			return fmt.Errorf("sim: deadline %v exceeded (t=%v)", k.Deadline, e.at)
		}
		k.now = e.at
		k.nevents++
		k.dispatch(&e)
	}
	if k.failure != nil {
		return k.failure
	}
	if k.nlive > 0 {
		names := make([]string, 0, len(k.parked))
		for p := range k.parked {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return fmt.Errorf("sim: deadlock at t=%v: %d live processes, parked: %v", k.now, k.nlive, names)
	}
	return nil
}

// Proc is a simulated process (the unit of thread-centric execution). All
// methods must be called from the process's own goroutine while it is the
// running process.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}

	parkedFlag bool
	parkGen    uint64
	exited     bool
	timedOut   bool // set by an evTimeout event matching the current park
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns the kernel's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.k.rng }

// Spawn starts a child process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) { p.k.Spawn(name, fn) }

// checkRunning panics if p is not the currently executing process; calling
// kernel primitives from the wrong goroutine would corrupt the simulation.
func (p *Proc) checkRunning() {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: process %q invoked a blocking primitive while not running", p.name))
	}
}

// park blocks the process until woken via Kernel.ready with the returned
// generation. Callers must have registered themselves with a waker first.
func (p *Proc) park() {
	p.checkRunning()
	p.parkedFlag = true
	p.parkGen++
	p.k.parked[p] = struct{}{}
	p.k.yield <- struct{}{}
	<-p.resume
}

// nextGen returns the park generation the upcoming park will use; wakers
// registered before parking must target this generation.
func (p *Proc) nextGen() uint64 { return p.parkGen + 1 }

// Sleep advances the process's virtual time by d. Negative or zero d is a
// no-op (the process keeps running without yielding the clock).
func (p *Proc) Sleep(d Time) {
	p.checkRunning()
	if d <= 0 {
		return
	}
	p.k.push(event{at: p.k.now + d, kind: evTimer, p: p, gen: p.nextGen()})
	p.park()
}

// Yield reschedules the process at the current time, letting other events
// scheduled for this instant run first.
func (p *Proc) Yield() {
	p.checkRunning()
	p.k.push(event{at: p.k.now, kind: evTimer, p: p, gen: p.nextGen()})
	p.park()
}
