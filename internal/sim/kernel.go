// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with cooperatively scheduled processes.
//
// The kernel maintains a virtual clock and an event heap. Exactly one
// goroutine — either the scheduler or a single simulated process — runs at
// any moment, handing control back and forth over unbuffered channels
// ("baton passing"). This makes the simulation deterministic for a given
// seed and spawn order, and lets event callbacks mutate shared simulation
// state (e.g. simulated RDMA memory regions) without locks.
//
// Processes are ordinary functions of the form func(*Proc). Inside a
// process, blocking operations (Sleep, channel operations, resource
// acquisition, condition waits) advance virtual time; plain Go code runs
// instantaneously in virtual time.
//
// The kernel is the substrate for the simulated RDMA fabric
// (dfi/internal/fabric) on which the DFI flow implementation runs.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point on the virtual clock, expressed as the duration since the
// start of the simulation.
type Time = time.Duration

// Event kinds. The hot kinds (timers, wake-ups, process starts) carry their
// target process and park generation in the event itself, so scheduling a
// sleep or a wake allocates nothing; only evFn events carry a closure.
const (
	evFn      uint8 = iota // run fn in scheduler context
	evStart                // first scheduling of p
	evTimer                // park timer fired: request a wake at the current instant
	evWake                 // resume p if still parked in generation gen
	evTimeout              // WaitTimeout deadline: mark p timed out, then request a wake
	evOp                   // run op.RunOp(step) in scheduler context (step rides in gen)
)

// Op is a pooled event payload. RunOp fires in scheduler context with the
// step the event was scheduled under (see Kernel.AtOp). Backends use one
// Op value to drive a multi-step pipeline — stage, deliver, commit, ack —
// without allocating a closure per step, which is what makes the
// steady-state data path alloc-free.
type Op interface{ RunOp(step uint8) }

// event is a scheduled callback or process transition. Events with equal
// timestamps fire in the order they were scheduled (seq breaks ties), which
// keeps runs reproducible. Events are stored by value in the heap slice so
// the event loop allocates nothing in steady state.
type event struct {
	at   Time
	seq  uint64
	gen  uint64
	p    *Proc
	fn   func()
	op   Op
	kind uint8
}

// before orders events by (at, seq). seq is unique, so the order is total
// and pop order does not depend on heap internals.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// timeout is a pending WaitTimeout deadline. Timeouts live in their own
// indexed min-heap — ordered by the same (at, seq) keys as events, so
// firing order is exactly what a shared heap would give — because a wake
// that wins the race can then delete its timeout in O(log n). Leaving
// dead timeouts to lazy-expire in the main heap (the old scheme) kept
// ~one stale entry per in-flight timed wait, inflating every heap
// operation on the hot path.
type timeout struct {
	at  Time
	seq uint64
	gen uint64
	p   *Proc
}

// Kernel is a discrete-event simulation instance. Create one with New, spawn
// processes with Spawn, then call Run.
type Kernel struct {
	now     Time
	events  []event   // value-based binary min-heap ordered by (at, seq)
	tmos    []timeout // indexed min-heap of pending WaitTimeout deadlines
	seq     uint64
	yield   chan struct{} // process -> scheduler handoff
	running *Proc
	rng     *rand.Rand

	parked  map[*Proc]struct{} // processes blocked on a primitive
	nlive   int                // spawned minus exited
	failure error              // first process panic, surfaced by Run

	// MaxEvents aborts Run with an error after this many events, guarding
	// against livelocks (e.g. an unbounded poll loop). Zero means no limit.
	MaxEvents uint64
	// Deadline aborts Run once the virtual clock passes it. Zero means no
	// limit.
	Deadline Time

	nevents uint64

	// horizon bounds how far this kernel may advance on its own when it is
	// one shard of a ShardGroup: events at or past the horizon wait for the
	// next window, and the Sleep fast path declines to cross it. Zero means
	// unbounded (the classic single-kernel mode).
	horizon Time

	// group/shardID identify this kernel's place in a ShardGroup (group is
	// nil for a classic standalone kernel).
	group   *ShardGroup
	shardID int
}

// New returns a kernel whose random source is seeded with seed. Two kernels
// constructed with the same seed and driven by the same program execute
// identically.
func New(seed int64) *Kernel {
	return &Kernel{
		yield:     make(chan struct{}),
		rng:       rand.New(rand.NewSource(seed)),
		parked:    make(map[*Proc]struct{}),
		MaxEvents: 2_000_000_000,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events processed so far.
func (k *Kernel) Events() uint64 { return k.nevents }

// Rand returns the kernel's deterministic random source. It must only be
// used from scheduler or process context (never from other goroutines).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// push assigns the next sequence number and inserts e into the heap
// (timestamps are clamped to now).
func (k *Kernel) push(e event) {
	if e.at < k.now {
		e.at = k.now
	}
	k.seq++
	e.seq = k.seq
	h := append(k.events, e)
	// Bubble a hole from the tail toward the root: parents shift down and
	// e is written once at its final slot. Events are 64 bytes, so doing
	// one copy per level instead of a swap halves the memory traffic of
	// the hottest function in the scheduler.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	k.events = h
}

// pop removes and returns the earliest event. The vacated slot is zeroed so
// it retains no closure or process reference while it waits for reuse.
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	k.events = h
	if n == 0 {
		return top
	}
	// Sift a hole down from the root: the smaller child shifts up and the
	// displaced tail element is written once at its final slot (same
	// one-copy-per-level trick as push).
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r].before(&h[l]) {
			l = r
		}
		if !h[l].before(&last) {
			break
		}
		h[i] = h[l]
		i = l
	}
	h[i] = last
	return top
}

// tmoPush registers a WaitTimeout deadline for t.p, assigning the next
// sequence number from the shared counter (so cross-heap ordering is the
// total (at, seq) order a single heap would produce).
func (k *Kernel) tmoPush(t timeout) {
	if t.at < k.now {
		t.at = k.now
	}
	k.seq++
	t.seq = k.seq
	k.tmos = append(k.tmos, t)
	k.tmoUp(len(k.tmos) - 1)
}

func (k *Kernel) tmoUp(i int) {
	h := k.tmos
	for i > 0 {
		parent := (i - 1) / 2
		if h[i].at > h[parent].at || (h[i].at == h[parent].at && h[i].seq > h[parent].seq) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].p.tmoIdx = i
		i = parent
	}
	h[i].p.tmoIdx = i
}

func (k *Kernel) tmoDown(i int) {
	h := k.tmos
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (h[l].at < h[s].at || (h[l].at == h[s].at && h[l].seq < h[s].seq)) {
			s = l
		}
		if r < n && (h[r].at < h[s].at || (h[r].at == h[s].at && h[r].seq < h[s].seq)) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		h[i].p.tmoIdx = i
		i = s
	}
	h[i].p.tmoIdx = i
}

// tmoRemove deletes the timeout at heap index i (a wake won the race, or
// the deadline just popped).
func (k *Kernel) tmoRemove(i int) {
	h := k.tmos
	n := len(h) - 1
	h[i].p.tmoIdx = -1
	if i != n {
		h[i] = h[n]
	}
	h[n] = timeout{}
	k.tmos = h[:n]
	if i < n {
		k.tmoDown(i)
		k.tmoUp(i)
	}
}

// at schedules fn to run in scheduler context at time t (clamped to now).
func (k *Kernel) at(t Time, fn func()) {
	k.push(event{at: t, kind: evFn, fn: fn})
}

// After schedules fn to run in scheduler context after d has elapsed on the
// virtual clock. fn must not block; it may resume processes, fire
// conditions, and mutate simulation state.
func (k *Kernel) After(d Time, fn func()) {
	k.at(k.now+d, fn)
}

// At schedules fn to run in scheduler context at absolute virtual time t
// (clamped to the present). Like After, fn must not block.
func (k *Kernel) At(t Time, fn func()) {
	k.at(t, fn)
}

// AtOp schedules op.RunOp(step) to run in scheduler context at absolute
// virtual time t (clamped to the present). The step rides in the event's
// gen field, so scheduling allocates nothing beyond heap growth.
func (k *Kernel) AtOp(t Time, op Op, step uint8) {
	k.push(event{at: t, kind: evOp, op: op, gen: uint64(step)})
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. It may be called before Run or from a running
// process or event callback.
func (k *Kernel) Spawn(name string, fn func(*Proc)) {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), tmoIdx: -1}
	k.nlive++
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.exited = true
			k.nlive--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.push(event{at: k.now, kind: evStart, p: p})
}

// switchTo transfers control to p and blocks until p parks or exits. Must be
// called from scheduler context.
func (k *Kernel) switchTo(p *Proc) {
	if p.exited {
		return
	}
	k.running = p
	p.resume <- struct{}{}
	<-k.yield
	k.running = nil
}

// ready schedules p to resume at the current virtual time. gen guards
// against stale wake-ups: the wake is dropped unless p is still parked in
// the same park generation.
func (k *Kernel) ready(p *Proc, gen uint64) {
	k.push(event{at: k.now, kind: evWake, p: p, gen: gen})
}

// next pops whichever of the event heap and the timeout heap holds the
// earlier (at, seq) entry, returning it as an event. A popped timeout
// becomes an evTimeout, exactly as if it had lived in the main heap.
func (k *Kernel) next() event {
	if len(k.tmos) > 0 {
		t := &k.tmos[0]
		if len(k.events) == 0 || t.at < k.events[0].at ||
			(t.at == k.events[0].at && t.seq < k.events[0].seq) {
			e := event{at: t.at, seq: t.seq, gen: t.gen, p: t.p, kind: evTimeout}
			k.tmoRemove(0)
			return e
		}
	}
	return k.pop()
}

// dispatch fires one event in scheduler context.
func (k *Kernel) dispatch(e *event) {
	switch e.kind {
	case evFn:
		e.fn()
	case evStart:
		k.switchTo(e.p)
	case evTimer:
		// Double-hop on purpose: the timer requests a wake, and the wake
		// event (with a fresh sequence number) performs the switch after
		// everything already scheduled for this instant.
		k.ready(e.p, e.gen)
	case evWake:
		p := e.p
		if p.exited || !p.parkedFlag || p.parkGen != e.gen {
			return
		}
		p.parkedFlag = false
		delete(k.parked, p)
		k.switchTo(p)
	case evTimeout:
		p := e.p
		if p.parkedFlag && p.parkGen == e.gen {
			p.timedOut = true
			k.ready(p, e.gen)
		}
	case evOp:
		e.op.RunOp(uint8(e.gen))
	}
}

// nextAt peeks the earliest pending instant across the event and timeout
// heaps without popping. ok is false when both are empty.
func (k *Kernel) nextAt() (Time, bool) {
	switch {
	case len(k.events) == 0 && len(k.tmos) == 0:
		return 0, false
	case len(k.events) == 0:
		return k.tmos[0].at, true
	case len(k.tmos) == 0:
		return k.events[0].at, true
	case k.tmos[0].at < k.events[0].at:
		return k.tmos[0].at, true
	default:
		return k.events[0].at, true
	}
}

// runUntil processes events strictly before horizon w (0 means unbounded)
// and returns nil when the heaps drain or every remaining entry is at or
// past w. The horizon is also installed for the Sleep fast path, so a
// shard's clock can never overrun its window.
func (k *Kernel) runUntil(w Time) error {
	k.horizon = w
	defer func() { k.horizon = 0 }()
	for {
		if k.failure != nil {
			return k.failure
		}
		at, ok := k.nextAt()
		if !ok || (w > 0 && at >= w) {
			return nil
		}
		if k.MaxEvents > 0 && k.nevents >= k.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v (possible livelock)", k.MaxEvents, k.now)
		}
		e := k.next()
		if k.Deadline > 0 && e.at > k.Deadline {
			return fmt.Errorf("sim: deadline %v exceeded (t=%v)", k.Deadline, e.at)
		}
		k.now = e.at
		k.nevents++
		k.dispatch(&e)
	}
}

// Run processes events until none remain, a process panics, MaxEvents is
// exceeded, or the Deadline passes. It returns an error describing abnormal
// termination; a deadlock (live processes parked with no pending events) is
// reported with the parked process names.
func (k *Kernel) Run() error {
	if err := k.runUntil(0); err != nil {
		return err
	}
	if k.failure != nil {
		return k.failure
	}
	if k.nlive > 0 {
		return k.deadlockErr()
	}
	return nil
}

// deadlockErr describes live-but-parked processes once the heaps drained.
func (k *Kernel) deadlockErr() error {
	names := make([]string, 0, len(k.parked))
	for p := range k.parked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%v: %d live processes, parked: %v", k.now, k.nlive, names)
}

// Proc is a simulated process (the unit of thread-centric execution). All
// methods must be called from the process's own goroutine while it is the
// running process.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}

	parkedFlag bool
	parkGen    uint64
	exited     bool
	timedOut   bool // set by an evTimeout event matching the current park
	tmoIdx     int  // index of the pending timeout in Kernel.tmos, -1 if none
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns the kernel's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.k.rng }

// Spawn starts a child process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) { p.k.Spawn(name, fn) }

// checkRunning panics if p is not the currently executing process; calling
// kernel primitives from the wrong goroutine would corrupt the simulation.
func (p *Proc) checkRunning() {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: process %q invoked a blocking primitive while not running", p.name))
	}
}

// park blocks the process until woken via Kernel.ready with the returned
// generation. Callers must have registered themselves with a waker first.
func (p *Proc) park() {
	p.checkRunning()
	p.parkedFlag = true
	p.parkGen++
	p.k.parked[p] = struct{}{}
	p.k.yield <- struct{}{}
	<-p.resume
}

// nextGen returns the park generation the upcoming park will use; wakers
// registered before parking must target this generation.
func (p *Proc) nextGen() uint64 { return p.parkGen + 1 }

// Sleep advances the process's virtual time by d. Negative or zero d is a
// no-op (the process keeps running without yielding the clock).
func (p *Proc) Sleep(d Time) {
	p.checkRunning()
	if d <= 0 {
		return
	}
	k := p.k
	t := k.now + d
	// Run-to-completion fast paths. Parking costs two events and four
	// channel handoffs, so avoid it whenever doing so is observably
	// identical to the park/dispatch/resume dance:
	//
	//  1. If nothing can run before the wake-up time, advance the clock in
	//     place (the timer and wake would have been the next two events in
	//     (at, seq) order anyway).
	//  2. If the globally next pending item is a scheduler callback (evFn
	//     or evOp — code that never blocks and has no process identity),
	//     dispatch it inline on this process's stack and loop. This is
	//     what lets a writer's flush absorb the commit/ack pipeline of
	//     prior segments without a single goroutine switch.
	//
	// Anything else — a process transition (start/timer/wake/timeout), a
	// tie at exactly t, the deadline, the event budget, a shard horizon —
	// parks, so Run (or the shard window loop) keeps control of
	// termination and (at, seq) dispatch order stays byte-identical.
	for {
		if (len(k.events) == 0 || t < k.events[0].at) &&
			(len(k.tmos) == 0 || t < k.tmos[0].at) &&
			(k.Deadline <= 0 || t <= k.Deadline) &&
			(k.MaxEvents <= 0 || k.nevents+2 < k.MaxEvents) &&
			(k.horizon <= 0 || t < k.horizon) {
			k.now = t
			k.nevents += 2 // the timer+wake pair this replaces
			return
		}
		if len(k.events) == 0 {
			break
		}
		e := &k.events[0]
		if (e.kind != evFn && e.kind != evOp) || e.at > t {
			break
		}
		if len(k.tmos) > 0 {
			tm := &k.tmos[0]
			if tm.at < e.at || (tm.at == e.at && tm.seq < e.seq) {
				break
			}
		}
		if (k.Deadline > 0 && e.at > k.Deadline) ||
			(k.MaxEvents > 0 && k.nevents >= k.MaxEvents) ||
			(k.horizon > 0 && e.at >= k.horizon) {
			break
		}
		ev := k.pop()
		k.now = ev.at
		k.nevents++
		if ev.kind == evFn {
			ev.fn()
		} else {
			ev.op.RunOp(uint8(ev.gen))
		}
	}
	k.push(event{at: t, kind: evTimer, p: p, gen: p.nextGen()})
	p.park()
}

// Yield reschedules the process at the current time, letting other events
// scheduled for this instant run first.
func (p *Proc) Yield() {
	p.checkRunning()
	p.k.push(event{at: p.k.now, kind: evTimer, p: p, gen: p.nextGen()})
	p.park()
}
