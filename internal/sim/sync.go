package sim

// This file provides the blocking primitives simulated processes use to
// coordinate: conditions, channels, counting resources, and wait groups.
// All of them are safe only within a single kernel (the simulation is
// single-threaded by construction).

// Cond is a condition variable for simulated processes. Unlike sync.Cond it
// needs no external mutex: the simulation is single-threaded, so check-then-
// wait sequences are atomic with respect to other processes.
type Cond struct {
	k       *Kernel
	waiters []condWaiter
}

// condWaiter records a parked process and the park generation its wake must
// target; storing the pair (rather than a wake closure) keeps Wait
// allocation-free.
type condWaiter struct {
	p   *Proc
	gen uint64
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks p until Signal or Broadcast wakes it. As with any condition
// variable, callers must re-check their predicate after waking.
func (c *Cond) Wait(p *Proc) {
	p.checkRunning()
	c.waiters = append(c.waiters, condWaiter{p: p, gen: p.nextGen()})
	p.park()
}

// WaitTimeout parks p until a wake-up or until d elapses, whichever comes
// first. It reports whether the process was woken by Signal/Broadcast
// (true) rather than by the timeout (false).
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	p.checkRunning()
	gen := p.nextGen()
	c.waiters = append(c.waiters, condWaiter{p: p, gen: gen})
	p.k.tmoPush(timeout{at: p.k.now + d, gen: gen, p: p})
	p.timedOut = false
	p.park()
	if p.timedOut {
		p.timedOut = false
		c.remove(p)
		return false
	}
	if p.tmoIdx >= 0 {
		// Signal won the race: cancel the pending deadline so it does not
		// linger in the heap until it would have expired.
		p.k.tmoRemove(p.tmoIdx)
	}
	return true
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w.p == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes one waiting process, if any. The waiter slice keeps its
// capacity (copy-down rather than reslice) so wait/wake cycles in steady
// state never reallocate it.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = condWaiter{}
	c.waiters = c.waiters[:n]
	c.k.ready(w.p, w.gen)
}

// Broadcast wakes all waiting processes. The waiter slice is truncated in
// place, keeping its capacity for the next wait cycle. Safe to iterate
// while waking: ready only pushes a heap event, it cannot re-enter the
// condition.
func (c *Cond) Broadcast() {
	ws := c.waiters
	for i := range ws {
		c.k.ready(ws[i].p, ws[i].gen)
		ws[i] = condWaiter{}
	}
	c.waiters = ws[:0]
}

// Waiters returns the number of processes currently blocked on the
// condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Chan is a simulated channel carrying values of type T with an optional
// buffer. Send and Recv block in virtual time like Go channels do in real
// time.
type Chan[T any] struct {
	k      *Kernel
	buf    []T
	cap    int
	closed bool

	sendq *Cond
	recvq *Cond
}

// NewChan returns a channel with the given buffer capacity (0 means
// rendezvous semantics approximated by a capacity-0 buffer with wake-based
// handoff).
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{k: k, cap: capacity, sendq: NewCond(k), recvq: NewCond(k)}
}

// Send enqueues v, blocking while the buffer is full. Sending on a closed
// channel panics, matching Go semantics.
func (c *Chan[T]) Send(p *Proc, v T) {
	for !c.closed && c.cap > 0 && len(c.buf) >= c.cap {
		c.sendq.Wait(p)
	}
	if c.closed {
		panic("sim: send on closed Chan")
	}
	c.buf = append(c.buf, v)
	c.recvq.Signal()
	if c.cap == 0 {
		// Rendezvous: wait until a receiver drains the element.
		for len(c.buf) > 0 && !c.closed {
			c.sendq.Wait(p)
		}
	}
}

// Recv dequeues a value, blocking while the channel is empty. ok is false
// if the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for len(c.buf) == 0 && !c.closed {
		c.recvq.Wait(p)
	}
	if len(c.buf) == 0 {
		var zero T
		return zero, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.sendq.Broadcast()
	return v, true
}

// TryRecv dequeues a value without blocking. ok reports whether a value was
// received; closed reports a closed-and-drained channel.
func (c *Chan[T]) TryRecv() (v T, ok, closed bool) {
	if len(c.buf) == 0 {
		var zero T
		return zero, false, c.closed
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.sendq.Broadcast()
	return v, true, false
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Close marks the channel closed, waking all blocked receivers and senders.
func (c *Chan[T]) Close() {
	c.closed = true
	c.recvq.Broadcast()
	c.sendq.Broadcast()
}

// Resource models a server with fixed capacity and a FIFO queue, e.g. a
// latch (capacity 1) or a pool of service slots. Acquire blocks until a
// unit is free.
type Resource struct {
	k     *Kernel
	cap   int
	inUse int
	queue *Cond
	name  string
}

// NewResource returns a resource with the given capacity.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, cap: capacity, queue: NewCond(k), name: name}
}

// Acquire claims one unit, blocking FIFO while none is free.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.queue.Wait(p)
	}
	r.inUse++
}

// TryAcquire claims a unit without blocking, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.cap {
		return false
	}
	r.inUse++
	return true
}

// Release returns one unit and wakes the next waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	r.queue.Signal()
}

// Use acquires a unit, holds it for d of virtual time, and releases it.
// This models serialized service (e.g. a latch held for a critical
// section).
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.queue.Waiters() }

// WaitGroup mirrors sync.WaitGroup for simulated processes.
type WaitGroup struct {
	k     *Kernel
	count int
	cond  *Cond
}

// NewWaitGroup returns a wait group bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k, cond: NewCond(k)} }

// Add adjusts the counter by delta; a negative result panics.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.cond.Wait(p)
	}
}

// Barrier blocks n processes until all have arrived, then releases them
// together — the bulk-synchronous primitive used by the mini-MPI substrate.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	gen     uint64
	cond    *Cond
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier requires at least one party")
	}
	return &Barrier{k: k, n: n, cond: NewCond(k)}
}

// Await blocks until all n parties have called Await, then all proceed.
// The barrier is reusable (generation-counted).
func (b *Barrier) Await(p *Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
}
