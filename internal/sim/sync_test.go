package sim

import (
	"testing"
	"time"
)

func TestCondSignalWakesOne(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		if woken != 1 {
			t.Errorf("after one Signal, woken=%d", woken)
		}
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken=%d, want 3", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var timedOut, signaled bool
	k.Spawn("timeout", func(p *Proc) {
		if ok := c.WaitTimeout(p, time.Millisecond); !ok {
			timedOut = true
		}
	})
	k.Spawn("signaled", func(p *Proc) {
		p.Sleep(2 * time.Millisecond) // start waiting after the first timed out
		if ok := c.WaitTimeout(p, time.Hour); ok {
			signaled = true
		}
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("first waiter should have timed out")
	}
	if !signaled {
		t.Error("second waiter should have been signaled")
	}
	if c.Waiters() != 0 {
		t.Errorf("stale waiters: %d", c.Waiters())
	}
}

func TestCondTimeoutRemovesWaiter(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Spawn("w", func(p *Proc) {
		c.WaitTimeout(p, time.Millisecond)
		if c.Waiters() != 0 {
			t.Errorf("waiter not removed after timeout: %d", c.Waiters())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanBufferedSendRecv(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 2)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			ch.Send(p, i)
			p.Sleep(time.Microsecond)
		}
		ch.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 1)
	var sentSecondAt Time
	k.Spawn("producer", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2) // blocks until consumer drains at t=5ms
		sentSecondAt = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		ch.Recv(p)
		ch.Recv(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentSecondAt != 5*time.Millisecond {
		t.Fatalf("second send completed at %v, want 5ms", sentSecondAt)
	}
}

func TestChanRecvOnClosedDrained(t *testing.T) {
	k := New(1)
	ch := NewChan[string](k, 4)
	k.Spawn("p", func(p *Proc) {
		ch.Send(p, "x")
		ch.Close()
		if v, ok := ch.Recv(p); !ok || v != "x" {
			t.Errorf("Recv = %q, %v", v, ok)
		}
		if _, ok := ch.Recv(p); ok {
			t.Error("Recv on drained closed chan reported ok")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 1)
	k.Spawn("p", func(p *Proc) {
		if _, ok, closed := ch.TryRecv(); ok || closed {
			t.Error("TryRecv on empty open chan should be !ok, !closed")
		}
		ch.Send(p, 7)
		if v, ok, _ := ch.TryRecv(); !ok || v != 7 {
			t.Errorf("TryRecv = %d, %v", v, ok)
		}
		ch.Close()
		if _, ok, closed := ch.TryRecv(); ok || !closed {
			t.Error("TryRecv on closed drained chan should report closed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	k := New(1)
	r := NewResource(k, "link", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	k := New(1)
	r := NewResource(k, "pool", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finish at 1ms, 1ms, 2ms, 2ms.
	if ends[1] != time.Millisecond || ends[3] != 2*time.Millisecond {
		t.Fatalf("ends = %v", ends)
	}
}

func TestResourceTryAcquireAndRelease(t *testing.T) {
	k := New(1)
	r := NewResource(k, "latch", 1)
	k.Spawn("p", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("TryAcquire on free resource failed")
		}
		if r.TryAcquire() {
			t.Error("TryAcquire on held resource succeeded")
		}
		r.Release()
		if r.InUse() != 0 {
			t.Errorf("InUse = %d", r.InUse())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	done := 0
	wg.Add(3)
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			done++
			wg.Done()
		})
	}
	var joinedAt Time
	k.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		joinedAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 || joinedAt != 3*time.Millisecond {
		t.Fatalf("done=%d joinedAt=%v", done, joinedAt)
	}
}

func TestBarrierReleasesTogetherAndIsReusable(t *testing.T) {
	k := New(1)
	const n = 4
	b := NewBarrier(k, n)
	var round1, round2 []Time
	for i := 0; i < n; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn("party", func(p *Proc) {
			p.Sleep(d)
			b.Await(p)
			round1 = append(round1, p.Now())
			p.Sleep(d)
			b.Await(p)
			round2 = append(round2, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range round1 {
		if ts != n*time.Millisecond {
			t.Fatalf("round1 = %v", round1)
		}
	}
	for _, ts := range round2 {
		if ts != 2*n*time.Millisecond {
			t.Fatalf("round2 = %v", round2)
		}
	}
}
