package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualClock(t *testing.T) {
	k := New(1)
	var at Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Millisecond {
		t.Fatalf("got %v, want 5ms", at)
	}
}

func TestSleepZeroOrNegativeIsNoop(t *testing.T) {
	k := New(1)
	steps := 0
	k.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		steps++
		p.Sleep(-time.Second)
		steps++
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 2 {
		t.Fatalf("steps=%d", steps)
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved: %v", k.Now())
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := New(42)
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			n := n
			k.Spawn(n, func(p *Proc) {
				p.Sleep(time.Duration(k.Rand().Intn(100)) * time.Microsecond)
				order = append(order, n)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic order: %v vs %v", first, again)
			}
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	k := New(1)
	var order []int
	k.After(time.Millisecond, func() { order = append(order, 1) })
	k.After(time.Millisecond, func() { order = append(order, 2) })
	k.After(time.Millisecond, func() { order = append(order, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New(1)
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childTime = c.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*time.Millisecond {
		t.Fatalf("child finished at %v, want 2ms", childTime)
	}
}

func TestPanicInProcessSurfacesAsError(t *testing.T) {
	k := New(1)
	k.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("kaput")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := New(1)
	k.MaxEvents = 100
	k.Spawn("spin", func(p *Proc) {
		for {
			p.Sleep(time.Nanosecond)
		}
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestDeadlineGuard(t *testing.T) {
	k := New(1)
	k.Deadline = time.Second
	k.Spawn("long", func(p *Proc) { p.Sleep(time.Hour) })
	if err := k.Run(); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestYieldLetsSameInstantEventsRun(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterCallbackRunsAtScheduledTime(t *testing.T) {
	k := New(1)
	var at Time = -1
	k.After(3*time.Millisecond, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Millisecond {
		t.Fatalf("callback at %v", at)
	}
}

func TestBlockingFromWrongGoroutinePanics(t *testing.T) {
	k := New(1)
	var stolen *Proc
	k.Spawn("victim", func(p *Proc) {
		stolen = p
		p.Sleep(time.Millisecond)
	})
	k.Spawn("thief", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic using another process's handle")
			}
		}()
		stolen.Sleep(time.Millisecond)
	})
	// The thief's panic is recovered inside its own fn, so Run succeeds.
	_ = k.Run()
}
