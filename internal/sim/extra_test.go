package sim

import (
	"testing"
	"time"
)

func TestAtAbsoluteScheduling(t *testing.T) {
	k := New(1)
	var order []int
	k.At(2*time.Millisecond, func() { order = append(order, 2) })
	k.At(time.Millisecond, func() { order = append(order, 1) })
	k.At(0, func() { order = append(order, 0) }) // clamped to now
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := New(1)
	var ranAt Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		k.At(time.Millisecond, func() { ranAt = k.Now() }) // in the past
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ranAt != 5*time.Millisecond {
		t.Fatalf("past-scheduled callback ran at %v, want clamped to 5ms", ranAt)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	run := func() []int64 {
		k := New(77)
		var draws []int64
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 5; i++ {
				d := time.Duration(p.Rand().Int63n(1000)) * time.Nanosecond
				draws = append(draws, int64(d))
				p.Sleep(d)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(time.Duration(p.Rand().Int63n(1000)) * time.Nanosecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		draws = append(draws, int64(k.Events()))
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestEventsCounterAdvances(t *testing.T) {
	k := New(1)
	k.Spawn("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Events() < 3 {
		t.Fatalf("events = %d", k.Events())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := New(1)
	r := NewResource(k, "fifo", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("u", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // arrival order 0..4
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestWaitGroupReuse(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	rounds := 0
	k.Spawn("driver", func(p *Proc) {
		for r := 0; r < 3; r++ {
			wg.Add(2)
			for j := 0; j < 2; j++ {
				p.Spawn("w", func(c *Proc) {
					c.Sleep(time.Microsecond)
					wg.Done()
				})
			}
			wg.Wait(p)
			rounds++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestCondWaitTimeoutExactness(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var woke Time
	k.Spawn("w", func(p *Proc) {
		c.WaitTimeout(p, 7*time.Microsecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 7*time.Microsecond {
		t.Fatalf("timeout fired at %v", woke)
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 1)
	ch.Close()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send on closed Chan did not panic")
			}
		}()
		ch.Send(p, 1)
	})
	_ = k.Run()
}

func TestChanLen(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, 4)
	k.Spawn("p", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		if ch.Len() != 2 {
			t.Errorf("Len = %d", ch.Len())
		}
		ch.Recv(p)
		if ch.Len() != 1 {
			t.Errorf("Len = %d after recv", ch.Len())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromEventCallback(t *testing.T) {
	k := New(1)
	ran := false
	k.After(time.Millisecond, func() {
		k.Spawn("late", func(p *Proc) {
			p.Sleep(time.Microsecond)
			ran = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("process spawned from callback never ran")
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(New(1), 0)
}

func TestResourcePanicsOnOverRelease(t *testing.T) {
	k := New(1)
	r := NewResource(k, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release()
}
