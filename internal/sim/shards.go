package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// This file implements conservative parallel DES: a ShardGroup runs several
// kernels — shards, each owning an independent set of node timelines — on
// host cores in lockstep windows of virtual time. The protocol is the
// classic conservative (Chandy–Misra–Bryant style) scheme specialized to a
// fixed minimum cross-shard latency:
//
//	window:    all shards run events in [T, T+lookahead), where T is the
//	           globally earliest pending instant.
//	lookahead: a lower bound on the virtual latency of any cross-shard
//	           interaction (for a fabric, the link propagation + switch
//	           delay of one hop). A cross-shard post made at virtual time
//	           t lands at or after t+lookahead ≥ T+lookahead, i.e. never
//	           inside the window being executed — so shards never need to
//	           roll back and no null messages are required.
//
// Cross-shard events travel through per-destination mailboxes and are
// merged into the destination heap at window boundaries in (at, srcShard,
// srcSeq) order. That order is a pure function of virtual time, so a run's
// dispatch sequence — and therefore every virtual metric — is independent
// of host scheduling, core count, and which goroutine finishes a window
// first. Within a shard, dispatch order is the same total (at, seq) order
// a standalone kernel uses; a group of one shard executes event-for-event
// identically to Kernel.Run.
//
// What sharding does NOT give: a total order of events ACROSS shards at
// equal timestamps (each shard has its own seq counter), and it must not be
// combined with cross-shard use of the single-kernel primitives (Cond,
// Chan, Spawn onto another shard). Workloads needing a global total order —
// fault-injection schedules keyed to one rng stream, multicast sequencers
// spanning shards — run in single-shard mode, which is the determinism
// baseline. See docs/ARCHITECTURE.md.

// xevent is one cross-shard event in flight: a callback or pooled op due on
// another shard's timeline. srcShard/srcSeq make the boundary merge order
// deterministic.
type xevent struct {
	at       Time
	srcShard int
	srcSeq   uint64
	fn       func()
	op       Op
	step     uint8
}

// ShardGroup coordinates a set of kernels advancing in conservative
// lookahead windows. Construct with NewShardGroup, populate each shard via
// Shard(i).Spawn, then call Run.
type ShardGroup struct {
	lookahead Time
	shards    []*Kernel

	mu      sync.Mutex
	inboxes [][]xevent // per-destination cross-shard mailboxes
	xseq    []uint64   // per-source post counters (merge tiebreak)
}

// NewShardGroup creates n kernels whose random sources derive
// deterministically from seed. lookahead must be positive and no larger
// than the minimum virtual latency of any cross-shard interaction the
// workload performs (PostShard enforces the bound per post).
func NewShardGroup(n int, seed int64, lookahead Time) *ShardGroup {
	if n <= 0 {
		panic("sim: shard group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	g := &ShardGroup{
		lookahead: lookahead,
		inboxes:   make([][]xevent, n),
		xseq:      make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		// Golden-ratio increment (two's-complement of 0x9E3779B97F4A7C15)
		// spreads per-shard seeds; any deterministic f(seed, i) works.
		k := New(seed ^ int64(i+1)*-7046029254386353131)
		k.group, k.shardID = g, i
		g.shards = append(g.shards, k)
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's kernel.
func (g *ShardGroup) Shard(i int) *Kernel { return g.shards[i] }

// Lookahead returns the group's conservative lookahead.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// PostShard schedules fn on shard dst's timeline at absolute virtual time
// at. It must be called from process or event context of this kernel, and
// at must respect the group lookahead (at ≥ now+lookahead) — that bound is
// what lets the destination shard run its current window without waiting;
// violating it would require a rollback, so it panics.
func (k *Kernel) PostShard(dst int, at Time, fn func()) {
	k.postShard(dst, at, xevent{fn: fn})
}

// PostShardOp is PostShard for a pooled op payload (see Kernel.AtOp). The
// op must be safe to run on the destination shard's timeline.
func (k *Kernel) PostShardOp(dst int, at Time, op Op, step uint8) {
	k.postShard(dst, at, xevent{op: op, step: step})
}

func (k *Kernel) postShard(dst int, at Time, xe xevent) {
	g := k.group
	if g == nil {
		panic("sim: PostShard on a kernel outside any ShardGroup")
	}
	if dst < 0 || dst >= len(g.shards) {
		panic(fmt.Sprintf("sim: PostShard to unknown shard %d", dst))
	}
	if at < k.now+g.lookahead {
		panic(fmt.Sprintf("sim: PostShard at t=%v violates lookahead %v (now %v)",
			at, g.lookahead, k.now))
	}
	xe.at = at
	xe.srcShard = k.shardID
	g.mu.Lock()
	xe.srcSeq = g.xseq[k.shardID]
	g.xseq[k.shardID]++
	g.inboxes[dst] = append(g.inboxes[dst], xe)
	g.mu.Unlock()
}

// nextInstant returns the earliest pending instant across all shard heaps
// and mailboxes, or ok=false when everything has drained.
func (g *ShardGroup) nextInstant() (Time, bool) {
	t := Time(math.MaxInt64)
	found := false
	for _, k := range g.shards {
		if at, ok := k.nextAt(); ok && (!found || at < t) {
			t, found = at, true
		}
	}
	g.mu.Lock()
	for _, box := range g.inboxes {
		for i := range box {
			if !found || box[i].at < t {
				t, found = box[i].at, true
			}
		}
	}
	g.mu.Unlock()
	return t, found
}

// deliver merges every mailbox entry due before w into its destination
// heap, in (at, srcShard, srcSeq) order so the assigned sequence numbers —
// and with them the dispatch order — do not depend on host scheduling.
func (g *ShardGroup) deliver(w Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for s := range g.inboxes {
		box := g.inboxes[s]
		var due []xevent
		kept := box[:0]
		for _, xe := range box {
			if xe.at < w {
				due = append(due, xe)
			} else {
				kept = append(kept, xe)
			}
		}
		g.inboxes[s] = kept
		if len(due) == 0 {
			continue
		}
		sort.Slice(due, func(i, j int) bool {
			a, b := &due[i], &due[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.srcShard != b.srcShard {
				return a.srcShard < b.srcShard
			}
			return a.srcSeq < b.srcSeq
		})
		k := g.shards[s]
		for _, xe := range due {
			if xe.fn != nil {
				k.push(event{at: xe.at, kind: evFn, fn: xe.fn})
			} else {
				k.push(event{at: xe.at, kind: evOp, op: xe.op, gen: uint64(xe.step)})
			}
		}
	}
}

// Run drives all shards to completion: windows of [T, T+lookahead) execute
// in parallel (one goroutine per shard that has work) separated by
// mailbox-merge barriers. It returns the first shard failure (lowest shard
// index wins, deterministically), or a group-wide deadlock report when live
// processes remain after every heap and mailbox has drained.
func (g *ShardGroup) Run() error {
	for {
		t, ok := g.nextInstant()
		if !ok {
			break
		}
		w := t + g.lookahead
		g.deliver(w)
		// Only shards with an event inside the window need a goroutine;
		// a window that touches one shard (or a one-shard group) runs
		// inline on this goroutine.
		active := g.shards[:0:0]
		for _, k := range g.shards {
			if at, ok := k.nextAt(); ok && at < w {
				active = append(active, k)
			}
		}
		errs := make([]error, len(active))
		if len(active) == 1 {
			errs[0] = active[0].runUntil(w)
		} else {
			var wg sync.WaitGroup
			for i, k := range active {
				wg.Add(1)
				go func(i int, k *Kernel) {
					defer wg.Done()
					errs[i] = k.runUntil(w)
				}(i, k)
			}
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	live := 0
	for _, k := range g.shards {
		if k.failure != nil {
			return k.failure
		}
		live += k.nlive
	}
	if live > 0 {
		var parts []string
		for i, k := range g.shards {
			if k.nlive > 0 {
				parts = append(parts, fmt.Sprintf("shard %d: %v", i, k.deadlockErr()))
			}
		}
		return fmt.Errorf("sim: shard group deadlock: %d live processes [%s]",
			live, strings.Join(parts, "; "))
	}
	return nil
}
