package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const la = 370 * time.Nanosecond // a hop's propagation+switch delay

// TestShardGroupSingleShardIdenticalToKernel: a one-shard group must
// execute event-for-event like a standalone kernel — same virtual
// timestamps, same event count, same final clock.
func TestShardGroupSingleShardIdenticalToKernel(t *testing.T) {
	run := func(k *Kernel, log *[]string) {
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(100 * time.Nanosecond)
				*log = append(*log, fmt.Sprintf("a@%v", p.Now()))
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(170 * time.Nanosecond)
				*log = append(*log, fmt.Sprintf("b@%v", p.Now()))
			}
		})
		k.After(250*time.Nanosecond, func() { *log = append(*log, fmt.Sprintf("fn@%v", k.Now())) })
	}
	var solo, sharded []string
	ks := New(42)
	run(ks, &solo)
	if err := ks.Run(); err != nil {
		t.Fatal(err)
	}
	g := NewShardGroup(1, 42, la)
	run(g.Shard(0), &sharded)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(solo, " ") != strings.Join(sharded, " ") {
		t.Fatalf("divergence:\n solo:    %v\n sharded: %v", solo, sharded)
	}
	if ks.Events() != g.Shard(0).Events() {
		t.Fatalf("event counts differ: solo %d, sharded %d", ks.Events(), g.Shard(0).Events())
	}
}

// TestShardGroupCrossShardPostTiming: a cross-shard callback fires on the
// destination timeline at exactly the virtual instant it was posted for,
// and a destination process sleeping far past that instant (fast-path
// tempting) still observes it in order — the horizon keeps a shard's clock
// from overrunning a window and skipping a merge.
func TestShardGroupCrossShardPostTiming(t *testing.T) {
	g := NewShardGroup(2, 7, la)
	var firedAt Time
	var seen bool
	g.Shard(0).Spawn("poster", func(p *Proc) {
		p.Sleep(30 * time.Nanosecond)
		p.Kernel().PostShard(1, p.Now()+la, func() {
			firedAt = g.Shard(1).Now()
		})
	})
	g.Shard(1).Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Millisecond) // far past the post's arrival
		seen = firedAt != 0
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(30*time.Nanosecond) + la; firedAt != want {
		t.Fatalf("cross-shard fn fired at %v, want %v", firedAt, want)
	}
	if !seen {
		t.Fatal("sleeper woke without observing the earlier cross-shard event")
	}
}

// TestShardGroupEventAtHorizonDefersToNextWindow: a wake-up at exactly the
// lookahead horizon must not run inside the current window — the Sleep
// fast path has to decline there, park, and resume in the next window at
// an unchanged virtual time, AFTER the window-boundary merge has delivered
// any cross-shard event due at that same instant. If the fast path crossed
// the horizon, the sleeper's clock would overrun the window and it would
// wake without ever seeing the merged event.
func TestShardGroupEventAtHorizonDefersToNextWindow(t *testing.T) {
	g := NewShardGroup(2, 3, la)
	var crossAt, wokeAt Time
	var sawCross bool
	// Both shards start at t=0, so the first window is [0, la).
	g.Shard(0).Spawn("poster", func(p *Proc) {
		// Arrival at exactly now+lookahead is the tightest legal post.
		p.Kernel().PostShard(1, p.Now()+la, func() { crossAt = g.Shard(1).Now() })
	})
	g.Shard(1).Spawn("sleeper", func(p *Proc) {
		p.Sleep(la) // wake at exactly the first window's horizon
		wokeAt = p.Now()
		sawCross = crossAt != 0
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if crossAt != Time(la) {
		t.Fatalf("cross-shard event ran at %v, want %v", crossAt, Time(la))
	}
	if wokeAt != Time(la) {
		t.Fatalf("sleeper woke at %v, want %v", wokeAt, Time(la))
	}
	if !sawCross {
		t.Fatal("sleeper at the horizon woke before the cross-shard event due at the same instant")
	}
}

// TestShardGroupEqualTimestampTiebreak: when a locally scheduled event and
// a cross-shard delivery share a virtual timestamp, the local event — which
// drew its sequence number first, before the window-boundary merge — fires
// first, matching the kernel's (at, seq) total order.
func TestShardGroupEqualTimestampTiebreak(t *testing.T) {
	g := NewShardGroup(2, 11, la)
	target := Time(2 * la)
	var order []string
	g.Shard(1).Spawn("local", func(p *Proc) {
		// Schedule a local callback at the collision instant, well before
		// the cross-shard post can be merged (merge happens at a window
		// boundary, after this push already took a sequence number).
		p.Kernel().At(target, func() { order = append(order, "local") })
	})
	g.Shard(0).Spawn("remote", func(p *Proc) {
		p.Sleep(la)
		p.Kernel().PostShard(1, target, func() { order = append(order, "cross") })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "local,cross" {
		t.Fatalf("equal-timestamp order = %q, want %q (local seq precedes merged seq)", got, "local,cross")
	}
}

// TestShardGroupLookaheadViolationPanics: posting below the lookahead bound
// would require a rollback; the kernel must refuse loudly.
func TestShardGroupLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(2, 5, la)
	g.Shard(0).Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("PostShard below lookahead did not panic")
			}
		}()
		p.Kernel().PostShard(1, p.Now()+la/2, func() {})
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardGroupParallelWindowsRace: many shards exchanging timed messages
// for many windows, run under -race with real parallelism — the shard
// barrier and mailbox locking must make the whole exchange race-clean and
// the message times deterministic.
func TestShardGroupParallelWindowsRace(t *testing.T) {
	const shards = 4
	const rounds = 200
	run := func() ([]Time, error) {
		g := NewShardGroup(shards, 99, la)
		times := make([][]Time, shards)
		var mu sync.Mutex
		for s := 0; s < shards; s++ {
			s := s
			g.Shard(s).Spawn(fmt.Sprintf("node%d", s), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Sleep(time.Duration(10+s) * time.Nanosecond)
					dst := (s + 1) % shards
					at := p.Now() + la
					p.Kernel().PostShard(dst, at, func() {
						mu.Lock()
						times[dst] = append(times[dst], g.Shard(dst).Now())
						mu.Unlock()
					})
				}
			})
		}
		err := g.Run()
		var flat []Time
		for _, ts := range times {
			flat = append(flat, ts...)
		}
		return flat, err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != shards*rounds || len(b) != len(a) {
		t.Fatalf("delivery counts: %d and %d, want %d", len(a), len(b), shards*rounds)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v in one run, %v in another: sharded run not deterministic", i, a[i], b[i])
		}
	}
}

// TestShardGroupDeadlockReportsShards: a process parked forever on one
// shard must surface as a group-wide deadlock naming the shard.
func TestShardGroupDeadlockReportsShards(t *testing.T) {
	g := NewShardGroup(2, 1, la)
	g.Shard(1).Spawn("stuck", func(p *Proc) {
		NewCond(p.Kernel()).Wait(p)
	})
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("want shard deadlock naming shard 1 and process, got: %v", err)
	}
}
