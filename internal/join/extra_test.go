package join

import (
	"strings"
	"testing"
)

func TestPartitionOfCoversAllPartitions(t *testing.T) {
	const parts = 16
	seen := make([]int, parts)
	for k := int64(0); k < 100_000; k++ {
		p := partitionOf(k, parts)
		if p < 0 || p >= parts {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p]++
	}
	for i, c := range seen {
		if c < 100_000/parts/2 {
			t.Fatalf("partition %d underfilled: %d", i, c)
		}
	}
}

func TestPhaseTimesString(t *testing.T) {
	pt := PhaseTimes{Matches: 42}
	s := pt.String()
	for _, want := range []string{"matches=42", "total="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestStragglerSlowsJoin(t *testing.T) {
	cfg := smallCfg()
	cfg.InnerTuples, cfg.OuterTuples = 20_000, 20_000
	base, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StragglerNode = 0
	cfg.StragglerScale = 0.25
	slow, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total <= base.Total {
		t.Fatalf("straggler run %v not slower than baseline %v", slow.Total, base.Total)
	}
	if slow.Matches != base.Matches {
		t.Fatalf("straggler changed the result: %d vs %d", slow.Matches, base.Matches)
	}
}

func TestJoinDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.InnerTuples, cfg.OuterTuples = 20_000, 20_000
	a, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Matches != b.Matches {
		t.Fatalf("nondeterministic join: %v vs %v", a, b)
	}
}

func TestUnevenWorkerSplit(t *testing.T) {
	// Tuple counts that do not divide evenly across nodes/workers must
	// still join completely.
	cfg := smallCfg()
	cfg.Nodes = 3
	cfg.WorkersPerNode = 2
	cfg.InnerTuples = 10_007 // prime
	cfg.OuterTuples = 9_001
	pt, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("matches = %d, want %d", pt.Matches, cfg.OuterTuples)
	}
}

func TestSkewedJoinStillCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.InnerTuples, cfg.OuterTuples = 20_000, 30_000
	cfg.ZipfSkew = 1.4
	dfi, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dfi.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("matches = %d, want %d", dfi.Matches, cfg.OuterTuples)
	}
	mpi, err := RunMPIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mpi.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("MPI matches = %d, want %d", mpi.Matches, cfg.OuterTuples)
	}
}

func TestSkewSlowsBothJoins(t *testing.T) {
	// A hot partition bottlenecks one worker; the join must get slower
	// than the uniform run for both variants (the paper's §2.3 skew
	// discussion).
	cfg := smallCfg()
	cfg.InnerTuples, cfg.OuterTuples = 20_000, 60_000
	uniform, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ZipfSkew = 1.8
	skewed, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Total <= uniform.Total {
		t.Fatalf("skewed %v not slower than uniform %v", skewed.Total, uniform.Total)
	}
}
