package join

import (
	"testing"
)

// smallCfg is a scaled-down join configuration that keeps tests fast while
// exercising multiple nodes, workers, ring wraps and both relations.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.WorkersPerNode = 2
	cfg.InnerTuples = 40_000
	cfg.OuterTuples = 60_000
	return cfg
}

func TestDFIRadixJoinCorrectness(t *testing.T) {
	cfg := smallCfg()
	pt, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("matches = %d, want %d (every outer tuple has exactly one partner)", pt.Matches, cfg.OuterTuples)
	}
	if pt.Histogram != 0 || pt.SyncBarrier != 0 {
		t.Error("DFI join must not have histogram or barrier phases")
	}
	if pt.Total <= 0 || pt.NetworkPartition <= 0 || pt.BuildProbe <= 0 {
		t.Fatalf("missing phases: %v", pt)
	}
}

func TestMPIRadixJoinCorrectness(t *testing.T) {
	cfg := smallCfg()
	pt, err := RunMPIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("matches = %d, want %d", pt.Matches, cfg.OuterTuples)
	}
	if pt.Histogram <= 0 || pt.SyncBarrier <= 0 {
		t.Fatalf("MPI join must pay histogram and barrier phases: %v", pt)
	}
}

func TestReplicateJoinCorrectness(t *testing.T) {
	cfg := smallCfg()
	cfg.InnerTuples = 1000 // small inner table, as in Figure 14
	pt, err := RunDFIReplicateJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Matches != uint64(cfg.OuterTuples) {
		t.Fatalf("matches = %d, want %d", pt.Matches, cfg.OuterTuples)
	}
	if pt.NetworkReplicate <= 0 {
		t.Fatalf("replicate phase missing: %v", pt)
	}
}

func TestDFIBeatsMPIOnRadixJoin(t *testing.T) {
	// The paper's Figure 13 headline: DFI's radix join runs faster because
	// it avoids the histogram pass and the post-shuffle barrier.
	cfg := smallCfg()
	dfi, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mpiPt, err := RunMPIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dfi.Total >= mpiPt.Total {
		t.Fatalf("DFI total %v not faster than MPI total %v", dfi.Total, mpiPt.Total)
	}
}

func TestReplicateJoinBeatsRadixOnSmallInner(t *testing.T) {
	// Figure 14: with a small inner relation, fragment-and-replicate
	// avoids shuffling the big outer table and wins.
	cfg := smallCfg()
	cfg.InnerTuples = 1000
	cfg.OuterTuples = 200_000
	radix, err := RunDFIRadix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDFIReplicateJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total >= radix.Total {
		t.Fatalf("replicate join %v not faster than radix join %v", rep.Total, radix.Total)
	}
}

func TestWorkloadGeneration(t *testing.T) {
	cfg := smallCfg()
	w := generate(cfg, 1)
	seen := make(map[int64]bool, cfg.InnerTuples)
	for _, chunk := range w.innerChunk {
		for _, k := range chunk {
			if seen[k] {
				t.Fatalf("duplicate inner key %d", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != cfg.InnerTuples {
		t.Fatalf("inner keys: %d, want %d", len(seen), cfg.InnerTuples)
	}
	outer := 0
	for _, chunk := range w.outerChunk {
		for _, k := range chunk {
			if k < 0 || k >= int64(cfg.InnerTuples) {
				t.Fatalf("outer key %d out of range", k)
			}
		}
		outer += len(chunk)
	}
	if outer != cfg.OuterTuples {
		t.Fatalf("outer tuples: %d, want %d", outer, cfg.OuterTuples)
	}
	// Determinism.
	w2 := generate(cfg, 1)
	for n := range w.outerChunk {
		for i := range w.outerChunk[n] {
			if w.outerChunk[n][i] != w2.outerChunk[n][i] {
				t.Fatal("workload generation not deterministic")
			}
		}
	}
}

func TestSliceCoversChunk(t *testing.T) {
	chunk := make([]int64, 103)
	total := 0
	for wk := 0; wk < 4; wk++ {
		total += len(slice(chunk, wk, 4))
	}
	if total != len(chunk) {
		t.Fatalf("slices cover %d of %d", total, len(chunk))
	}
}
