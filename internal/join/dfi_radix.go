package join

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/schema"
	"dfi/internal/sim"
	"dfi/internal/transport"
)

// RunDFIRadix executes the distributed radix hash join over two
// bandwidth-optimized DFI shuffle flows (paper Figure 2): flow f1
// shuffles the inner relation, f2 the outer. The radix partition function
// is passed to DFI as the routing function, one target per output
// partition. No histogram pass and no synchronization barrier are needed:
// DFI's rings encapsulate remote memory management, and targets process
// incoming tuples in streaming fashion (build starts while the shuffle is
// still running).
func RunDFIRadix(cfg Config) (PhaseTimes, error) {
	k, c, reg := buildEnv(cfg)
	w := generate(cfg, 1)
	parts := cfg.partitions()

	var sources, targets []core.Endpoint
	for n := 0; n < cfg.Nodes; n++ {
		for t := 0; t < cfg.WorkersPerNode; t++ {
			sources = append(sources, core.Endpoint{Node: c.Node(n), Thread: t})
			targets = append(targets, core.Endpoint{Node: c.Node(n), Thread: t})
		}
	}
	routing := func(t schema.Tuple) int {
		return partitionOf(TupleSchema.Int64(t, 0), parts)
	}
	mkSpec := func(name string) core.FlowSpec {
		return core.FlowSpec{
			Name:       name,
			Sources:    sources,
			Targets:    targets,
			Schema:     TupleSchema,
			ShuffleKey: -1,
			Routing:    routing,
			Options:    core.Options{SegmentsPerRing: cfg.SegmentsPerRing},
		}
	}

	netPart := make([]time.Duration, parts)
	localPart := make([]time.Duration, parts)
	buildProbe := make([]time.Duration, parts)
	totals := make([]time.Duration, parts)
	matches := make([]uint64, parts)

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, mkSpec("radix-inner")); err != nil {
			panic(err)
		}
		if err := core.FlowInit(p, reg, c, mkSpec("radix-outer")); err != nil {
			panic(err)
		}
	})

	for wi := range sources {
		wi := wi
		node := sources[wi].Node
		nodeIdx := node.ID()
		wk := sources[wi].Thread
		k.Spawn(fmt.Sprintf("scan-%d", wi), func(p *sim.Proc) {
			f1, err := core.SourceOpen(p, reg, "radix-inner", wi)
			if err != nil {
				panic(err)
			}
			f2, err := core.SourceOpen(p, reg, "radix-outer", wi)
			if err != nil {
				panic(err)
			}
			start := p.Now()
			pushChunk(p, node, f1, slice(w.innerChunk[nodeIdx], wk, cfg.WorkersPerNode), cfg.ScanCost)
			f1.Close(p)
			pushChunk(p, node, f2, slice(w.outerChunk[nodeIdx], wk, cfg.WorkersPerNode), cfg.ScanCost)
			f2.Close(p)
			netPart[wi] = p.Now() - start
		})
	}

	for wi := range targets {
		wi := wi
		node := targets[wi].Node
		k.Spawn(fmt.Sprintf("joiner-%d", wi), func(p *sim.Proc) {
			f1, err := core.TargetOpen(p, reg, "radix-inner", wi)
			if err != nil {
				panic(err)
			}
			f2, err := core.TargetOpen(p, reg, "radix-outer", wi)
			if err != nil {
				panic(err)
			}
			ts := TupleSchema.TupleSize()
			ht := make(map[int64]int64)
			// Build: streamed — tuples are local-partitioned and inserted
			// as segments arrive, overlapping with the ongoing shuffle.
			for {
				data, count, ok := f1.ConsumeSegment(p)
				if !ok {
					break
				}
				node.Compute(p, time.Duration(count)*cfg.PartitionCost)
				localPart[wi] += time.Duration(count) * cfg.PartitionCost
				node.Compute(p, time.Duration(count)*cfg.BuildCost)
				buildProbe[wi] += time.Duration(count) * cfg.BuildCost
				for i := 0; i < count; i++ {
					tup := data[i*ts : (i+1)*ts]
					ht[TupleSchema.Int64(tup, 0)] = TupleSchema.Int64(tup, 1)
				}
			}
			// Probe: streamed likewise.
			for {
				data, count, ok := f2.ConsumeSegment(p)
				if !ok {
					break
				}
				node.Compute(p, time.Duration(count)*cfg.PartitionCost)
				localPart[wi] += time.Duration(count) * cfg.PartitionCost
				node.Compute(p, time.Duration(count)*cfg.ProbeCost)
				buildProbe[wi] += time.Duration(count) * cfg.ProbeCost
				for i := 0; i < count; i++ {
					tup := data[i*ts : (i+1)*ts]
					if _, ok := ht[TupleSchema.Int64(tup, 0)]; ok {
						matches[wi]++
					}
				}
			}
			totals[wi] = p.Now()
		})
	}

	if err := k.Run(); err != nil {
		return PhaseTimes{}, err
	}
	pt := PhaseTimes{
		NetworkPartition: maxDur(netPart),
		LocalPartition:   maxDur(localPart),
		BuildProbe:       maxDur(buildProbe),
		Total:            maxDur(totals),
	}
	for _, m := range matches {
		pt.Matches += m
	}
	return pt, nil
}

// slice extracts worker wk's share of a node chunk.
func slice(chunk []int64, wk, workers int) []int64 {
	per := len(chunk) / workers
	lo := wk * per
	hi := lo + per
	if wk == workers-1 {
		hi = len(chunk)
	}
	return chunk[lo:hi]
}

// pushChunk streams keys into a flow, charging the scan cost in batches.
func pushChunk(p *sim.Proc, node interface {
	Compute(transport.Ctx, time.Duration)
}, src *core.Source, keys []int64, scanCost time.Duration) {
	tup := TupleSchema.NewTuple()
	const batch = 1024
	pending := 0
	for _, key := range keys {
		TupleSchema.PutInt64(tup, 0, key)
		TupleSchema.PutInt64(tup, 1, key^0x5bd1e995)
		if err := src.Push(p, tup); err != nil {
			panic(err)
		}
		pending++
		if pending == batch {
			node.Compute(p, time.Duration(batch)*scanCost)
			pending = 0
		}
	}
	if pending > 0 {
		node.Compute(p, time.Duration(pending)*scanCost)
	}
}
