package join

import (
	"encoding/binary"
	"fmt"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/mpi"
	"dfi/internal/sim"
)

// RunMPIRadix executes the MPI-based distributed radix hash join the
// paper compares against (§6.3.1): the state-of-the-art design of
// Barthels et al. using one-sided MPI_Put. To write coordination-free, it
// must first compute global histograms of both relations (an extra pass
// over all data plus two all-to-all exchanges) to derive exclusive write
// offsets, and it needs a synchronization barrier after the network
// partition phase before local processing may start — the two costs DFI's
// encapsulated buffer management eliminates.
func RunMPIRadix(cfg Config) (PhaseTimes, error) {
	k, c, _ := buildEnv(cfg)
	w := generate(cfg, 1)
	parts := cfg.partitions()

	nodes := make([]*fabric.Node, parts)
	for r := 0; r < parts; r++ {
		nodes[r] = c.Node(r / cfg.WorkersPerNode)
	}
	world := mpi.NewWorld(c, nodes, mpi.DefaultConfig())

	histT := make([]time.Duration, parts)
	netT := make([]time.Duration, parts)
	barT := make([]time.Duration, parts)
	localT := make([]time.Duration, parts)
	joinT := make([]time.Duration, parts)
	totals := make([]time.Duration, parts)
	matches := make([]uint64, parts)

	const (
		tagHist    = 100
		tagOffsets = 101
	)
	ts := TupleSchema.TupleSize()

	for r := 0; r < parts; r++ {
		r := r
		rank := world.Rank(r)
		node := rank.Node()
		nodeIdx := node.ID()
		wk := r % cfg.WorkersPerNode
		inner := slice(w.innerChunk[nodeIdx], wk, cfg.WorkersPerNode)
		outer := slice(w.outerChunk[nodeIdx], wk, cfg.WorkersPerNode)

		k.Spawn(fmt.Sprintf("mpirank-%d", r), func(p *sim.Proc) {
			start := p.Now()

			// ---- Phase 1: histogram pass + exchanges ----
			histR := make([]uint64, parts)
			histS := make([]uint64, parts)
			for _, key := range inner {
				histR[partitionOf(key, parts)]++
			}
			for _, key := range outer {
				histS[partitionOf(key, parts)]++
			}
			node.Compute(p, time.Duration(len(inner)+len(outer))*cfg.HistogramCost)

			sendParts := make([][]byte, parts)
			for d := 0; d < parts; d++ {
				b := make([]byte, 16)
				binary.LittleEndian.PutUint64(b[0:8], histR[d])
				binary.LittleEndian.PutUint64(b[8:16], histS[d])
				sendParts[d] = b
			}
			counts := rank.Alltoall(p, tagHist, sendParts)

			// Exclusive prefix offsets per source into my window, and the
			// incoming totals sizing it.
			var totalR, totalS uint64
			offR := make([]uint64, parts)
			offS := make([]uint64, parts)
			for s := 0; s < parts; s++ {
				offR[s] = totalR
				offS[s] = totalS
				totalR += binary.LittleEndian.Uint64(counts[s][0:8])
				totalS += binary.LittleEndian.Uint64(counts[s][8:16])
			}
			rank.ExposeWindow(int(totalR+totalS)*ts + 64)

			// Tell every source its absolute byte offsets in my window.
			offParts := make([][]byte, parts)
			for s := 0; s < parts; s++ {
				b := make([]byte, 16)
				binary.LittleEndian.PutUint64(b[0:8], offR[s]*uint64(ts))
				binary.LittleEndian.PutUint64(b[8:16], (totalR+offS[s])*uint64(ts))
				offParts[s] = b
			}
			myOffs := rank.Alltoall(p, tagOffsets, offParts)
			writeR := make([]int, parts)
			writeS := make([]int, parts)
			for d := 0; d < parts; d++ {
				writeR[d] = int(binary.LittleEndian.Uint64(myOffs[d][0:8]))
				writeS[d] = int(binary.LittleEndian.Uint64(myOffs[d][8:16]))
			}
			histT[r] = p.Now() - start

			// ---- Phase 2: network partition with write-combine buffers ----
			t2 := p.Now()
			writeRelation := func(keys []int64, writeOff []int) {
				const combine = 8 << 10 // same batch size as DFI segments
				bufs := make([][]byte, parts)
				flush := func(d int) {
					if len(bufs[d]) == 0 {
						return
					}
					if d == r {
						// Local partition target: plain memcpy, no network.
						copy(rank.Window().Bytes()[writeOff[d]:], bufs[d])
					} else {
						rank.PutAsync(p, d, writeOff[d], bufs[d])
					}
					writeOff[d] += len(bufs[d])
					bufs[d] = nil
				}
				pending := 0
				for _, key := range keys {
					d := partitionOf(key, parts)
					if bufs[d] == nil {
						bufs[d] = make([]byte, 0, combine)
					}
					var tup [16]byte
					binary.LittleEndian.PutUint64(tup[0:8], uint64(key))
					binary.LittleEndian.PutUint64(tup[8:16], uint64(key)^0x5bd1e995)
					bufs[d] = append(bufs[d], tup[:]...)
					if len(bufs[d]) >= combine {
						flush(d)
					}
					pending++
					if pending == 1024 {
						node.Compute(p, 1024*(cfg.ScanCost+cfg.TupleCopyCost))
						pending = 0
					}
				}
				node.Compute(p, time.Duration(pending)*(cfg.ScanCost+cfg.TupleCopyCost))
				for d := 0; d < parts; d++ {
					flush(d)
				}
			}
			writeRelation(inner, writeR)
			writeRelation(outer, writeS)
			for d := 0; d < parts; d++ {
				if d != r {
					rank.Fence(p, d)
				}
			}
			netT[r] = p.Now() - t2

			// ---- Phase 3: synchronization barrier ----
			t3 := p.Now()
			rank.Barrier(p)
			barT[r] = p.Now() - t3

			// ---- Phase 4: local partition pass ----
			t4 := p.Now()
			node.Compute(p, time.Duration(totalR+totalS)*cfg.PartitionCost)
			localT[r] = p.Now() - t4

			// ---- Phase 5: build and probe ----
			t5 := p.Now()
			win := rank.Window().Bytes()
			ht := make(map[int64]int64, totalR)
			for i := uint64(0); i < totalR; i++ {
				tup := win[i*uint64(ts) : (i+1)*uint64(ts)]
				ht[int64(binary.LittleEndian.Uint64(tup[0:8]))] = int64(binary.LittleEndian.Uint64(tup[8:16]))
			}
			node.Compute(p, time.Duration(totalR)*(cfg.BuildCost+cfg.WindowReadCost))
			base := totalR * uint64(ts)
			for i := uint64(0); i < totalS; i++ {
				tup := win[base+i*uint64(ts) : base+(i+1)*uint64(ts)]
				if _, ok := ht[int64(binary.LittleEndian.Uint64(tup[0:8]))]; ok {
					matches[r]++
				}
			}
			node.Compute(p, time.Duration(totalS)*(cfg.ProbeCost+cfg.WindowReadCost))
			joinT[r] = p.Now() - t5
			totals[r] = p.Now()
		})
	}

	if err := k.Run(); err != nil {
		return PhaseTimes{}, err
	}
	pt := PhaseTimes{
		Histogram:        maxDur(histT),
		NetworkPartition: maxDur(netT),
		SyncBarrier:      maxDur(barT),
		LocalPartition:   maxDur(localT),
		BuildProbe:       maxDur(joinT),
		Total:            maxDur(totals),
	}
	for _, m := range matches {
		pt.Matches += m
	}
	return pt, nil
}
