// Package join implements the paper's OLAP use case (§4.3.1, §6.3.1):
// distributed radix hash joins over DFI shuffle flows, the MPI-based
// state-of-the-art baseline they are compared against (Barthels et al.,
// as cited by the paper), and the fragment-and-replicate variant obtained
// by swapping a shuffle flow for a replicate flow (Figure 14).
//
// All three implementations join an inner relation R (unique keys) with
// an outer relation S (foreign keys into R), both range-partitioned
// across the cluster's nodes, and report a per-phase time breakdown
// matching the stacked bars of Figures 13 and 14.
package join

import (
	"fmt"
	"math/rand"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
)

// TupleSchema is the 16-byte join tuple: 8-byte key, 8-byte payload (the
// paper's joins use compressed 8-byte tuples; the factor cancels out of
// all comparisons).
var TupleSchema = schema.MustNew(
	schema.Column{Name: "key", Type: schema.Int64},
	schema.Column{Name: "payload", Type: schema.Int64},
)

// Config parameterizes a join run.
type Config struct {
	Nodes          int
	WorkersPerNode int // sender/receiver thread pairs per node

	InnerTuples int // |R|, split evenly across nodes
	OuterTuples int // |S|, split evenly across nodes

	// Per-tuple CPU costs (DESIGN.md §6). The same costs apply to the DFI
	// and MPI variants — only the communication layer differs.
	ScanCost      time.Duration // read + partition-function evaluation
	HistogramCost time.Duration // histogram pass (MPI join only)
	PartitionCost time.Duration // local partition pass
	BuildCost     time.Duration // hash-table insert
	ProbeCost     time.Duration // hash-table probe

	// TupleCopyCost and WindowReadCost are the MPI join's analogs of
	// DFI's per-tuple push and consume costs: copying a tuple into a
	// write-combine buffer, and reading a tuple out of the one-sided
	// window. Keeping them equal to DFI's costs (12ns/10ns) makes the
	// comparison isolate the structural differences (histogram pass,
	// barrier, overlap).
	TupleCopyCost  time.Duration
	WindowReadCost time.Duration

	// SegmentsPerRing sizes DFI rings (smaller than the paper's 32 keeps
	// host memory in check at full fan-out; §6.1.4 shows 8 segments cost
	// only ~8% bandwidth).
	SegmentsPerRing int

	// StragglerNode (if >= 0) runs that node's CPU at StragglerScale.
	StragglerNode  int
	StragglerScale float64

	// ZipfSkew, when > 0, draws the outer relation's foreign keys from a
	// zipfian distribution with this s parameter (must be > 1) instead of
	// uniformly — the skewed workloads §2.3 says bulk-synchronous
	// shuffles handle poorly.
	ZipfSkew float64

	Seed int64
}

// DefaultConfig returns a laptop-scale version of the paper's Figure 13
// setup (8 nodes × 8 workers, relations scaled 1000×).
func DefaultConfig() Config {
	return Config{
		Nodes:           8,
		WorkersPerNode:  8,
		InnerTuples:     2_560_000,
		OuterTuples:     2_560_000,
		ScanCost:        2 * time.Nanosecond,
		HistogramCost:   3 * time.Nanosecond,
		TupleCopyCost:   12 * time.Nanosecond,
		WindowReadCost:  10 * time.Nanosecond,
		PartitionCost:   8 * time.Nanosecond,
		BuildCost:       25 * time.Nanosecond,
		ProbeCost:       25 * time.Nanosecond,
		SegmentsPerRing: 8,
		StragglerNode:   -1,
		StragglerScale:  1,
		Seed:            42,
	}
}

// PhaseTimes is the per-phase breakdown reported by each join variant
// (maxima across workers, as the paper's stacked bars report the critical
// path). Zero phases do not apply to the variant.
type PhaseTimes struct {
	Histogram        time.Duration // MPI only: histogram pass + exchange
	NetworkPartition time.Duration // network shuffle & partition
	SyncBarrier      time.Duration // MPI only: barrier after partitioning
	NetworkReplicate time.Duration // replicate join only
	LocalPartition   time.Duration
	BuildProbe       time.Duration
	Total            time.Duration
	Matches          uint64
}

func (pt PhaseTimes) String() string {
	return fmt.Sprintf("hist=%v netpart=%v barrier=%v replicate=%v localpart=%v join=%v total=%v matches=%d",
		pt.Histogram, pt.NetworkPartition, pt.SyncBarrier, pt.NetworkReplicate,
		pt.LocalPartition, pt.BuildProbe, pt.Total, pt.Matches)
}

// relationChunk generates node-local chunks of R and S deterministically:
// R holds each key in [0, inner) exactly once (round-robin across nodes);
// S holds uniform-random foreign keys, so every S tuple matches exactly
// one R tuple and total matches = |S|.
type workload struct {
	cfg        Config
	innerChunk [][]int64 // per node: keys
	outerChunk [][]int64
}

func generate(cfg Config, seedMix int64) *workload {
	w := &workload{cfg: cfg}
	w.innerChunk = make([][]int64, cfg.Nodes)
	w.outerChunk = make([][]int64, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		for i := n; i < cfg.InnerTuples; i += cfg.Nodes {
			w.innerChunk[n] = append(w.innerChunk[n], int64(i))
		}
	}
	// xorshift for speed and determinism.
	state := uint64(cfg.Seed+seedMix) + 0x9E3779B97F4A7C15
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	per := cfg.OuterTuples / cfg.Nodes
	var zipf *rand.Zipf
	if cfg.ZipfSkew > 1 {
		zipf = rand.NewZipf(rand.New(rand.NewSource(cfg.Seed+seedMix)), cfg.ZipfSkew, 1,
			uint64(cfg.InnerTuples-1))
	}
	for n := 0; n < cfg.Nodes; n++ {
		cnt := per
		if n == cfg.Nodes-1 {
			cnt = cfg.OuterTuples - per*(cfg.Nodes-1)
		}
		chunk := make([]int64, cnt)
		for i := range chunk {
			if zipf != nil {
				chunk[i] = int64(zipf.Uint64())
			} else {
				chunk[i] = int64(next() % uint64(cfg.InnerTuples))
			}
		}
		w.outerChunk[n] = chunk
	}
	return w
}

// partitions returns the radix fan-out: one partition per worker.
func (cfg *Config) partitions() int { return cfg.Nodes * cfg.WorkersPerNode }

// partitionOf routes a key to its radix partition. Both join variants and
// both relations must agree on it.
func partitionOf(key int64, parts int) int {
	return int(schema.Hash(uint64(key)) % uint64(parts))
}

// buildEnv creates the kernel/cluster pair for one join run.
func buildEnv(cfg Config) (*sim.Kernel, *fabric.Cluster, *registry.Registry) {
	k := sim.New(cfg.Seed)
	k.Deadline = 10 * time.Minute
	fcfg := fabric.DefaultConfig()
	c := fabric.NewCluster(k, cfg.Nodes, fcfg)
	if cfg.StragglerNode >= 0 && cfg.StragglerNode < cfg.Nodes {
		c.Node(cfg.StragglerNode).CPUScale = cfg.StragglerScale
	}
	return k, c, registry.New(k)
}

// maxDur folds per-worker phase durations into the critical path.
func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
