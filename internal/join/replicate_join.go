package join

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/sim"
)

// RunDFIReplicateJoin executes the fragment-and-replicate join of Figure
// 14: instead of shuffling both relations, the (small) inner relation is
// replicated to every worker with a single multicast replicate flow, and
// the (large) outer relation never leaves its node — each worker builds a
// hash table over the full inner relation and probes only its local outer
// fragment. Swapping the algorithm is exactly the one-flow change the
// paper advertises (§4.2).
func RunDFIReplicateJoin(cfg Config) (PhaseTimes, error) {
	k, c, reg := buildEnv(cfg)
	w := generate(cfg, 1)
	workers := cfg.partitions()

	var endpoints []core.Endpoint
	for n := 0; n < cfg.Nodes; n++ {
		for t := 0; t < cfg.WorkersPerNode; t++ {
			endpoints = append(endpoints, core.Endpoint{Node: c.Node(n), Thread: t})
		}
	}
	spec := core.FlowSpec{
		Name:    "replicate-inner",
		Type:    core.ReplicateFlow,
		Sources: endpoints,
		Targets: endpoints,
		Schema:  TupleSchema,
		Options: core.Options{
			Multicast:       true,
			SegmentsPerRing: cfg.SegmentsPerRing,
		},
	}

	repT := make([]time.Duration, workers)
	joinT := make([]time.Duration, workers)
	totals := make([]time.Duration, workers)
	matches := make([]uint64, workers)

	k.Spawn("init", func(p *sim.Proc) {
		if err := core.FlowInit(p, reg, c, spec); err != nil {
			panic(err)
		}
	})

	for wi := range endpoints {
		wi := wi
		node := endpoints[wi].Node
		nodeIdx := node.ID()
		wk := endpoints[wi].Thread
		k.Spawn(fmt.Sprintf("rep-src-%d", wi), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "replicate-inner", wi)
			if err != nil {
				panic(err)
			}
			pushChunk(p, node, src, slice(w.innerChunk[nodeIdx], wk, cfg.WorkersPerNode), cfg.ScanCost)
			src.Close(p)
		})
	}

	for wi := range endpoints {
		wi := wi
		node := endpoints[wi].Node
		nodeIdx := node.ID()
		wk := endpoints[wi].Thread
		outer := slice(w.outerChunk[nodeIdx], wk, cfg.WorkersPerNode)
		k.Spawn(fmt.Sprintf("rep-join-%d", wi), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "replicate-inner", wi)
			if err != nil {
				panic(err)
			}
			ts := TupleSchema.TupleSize()
			start := p.Now()
			ht := make(map[int64]int64, cfg.InnerTuples)
			for {
				data, count, ok := tgt.ConsumeSegment(p)
				if !ok {
					break
				}
				node.Compute(p, time.Duration(count)*cfg.BuildCost)
				for i := 0; i < count; i++ {
					tup := data[i*ts : (i+1)*ts]
					ht[TupleSchema.Int64(tup, 0)] = TupleSchema.Int64(tup, 1)
				}
			}
			repT[wi] = p.Now() - start

			// Probe the local outer fragment — no network involved.
			t2 := p.Now()
			pending := 0
			for _, key := range outer {
				if _, ok := ht[key]; ok {
					matches[wi]++
				}
				pending++
				if pending == 1024 {
					node.Compute(p, 1024*(cfg.ScanCost+cfg.ProbeCost))
					pending = 0
				}
			}
			node.Compute(p, time.Duration(pending)*(cfg.ScanCost+cfg.ProbeCost))
			joinT[wi] = p.Now() - t2
			totals[wi] = p.Now()
		})
	}

	if err := k.Run(); err != nil {
		return PhaseTimes{}, err
	}
	pt := PhaseTimes{
		NetworkReplicate: maxDur(repT),
		BuildProbe:       maxDur(joinT),
		Total:            maxDur(totals),
	}
	for _, m := range matches {
		pt.Matches += m
	}
	return pt, nil
}
