// HTTP exposition: a small stdlib server with three endpoints —
// /metrics (Prometheus text format), /status (JSON cluster snapshot
// from a caller-supplied func), /events (JSONL dump of the event log).

package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server serves the observability endpoints over HTTP. Construct with
// Serve; the listener address (useful with ":0") is available via Addr.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves reg on /metrics. If statusFn is non-nil,
// /status serves its return value as indented JSON; if events is
// non-nil, /events serves a JSONL dump. statusFn runs on the HTTP
// handler goroutine — like func-backed collectors, it must only read
// race-safe state. Serve returns once the listener is bound; the
// accept loop runs on its own goroutine.
func Serve(addr string, reg *Registry, statusFn func() any, events *EventLog) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	if statusFn != nil {
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(statusFn()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if events != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_, _, _ = events.WriteJSONL(w)
		})
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listener address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
