// Package metrics implements the observability plane: a registry of
// named counters, gauges and histograms with Prometheus text-exposition
// rendering, structured per-flow event tracing with per-node ring
// buffers (events.go), and an HTTP endpoint serving /metrics, /status
// and /events (http.go) so a running cluster can be scraped
// mid-experiment.
//
// The registry is the concurrency boundary between the simulation and
// scrapers: every instrument is safe for concurrent use, and func-backed
// instruments (RegisterCounterFunc / RegisterGaugeFunc) document that
// their callback runs on the scraper's goroutine — it must only read
// state that is itself race-safe (atomic counters, published snapshots).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Type classifies an instrument for the # TYPE exposition line.
type Type uint8

// Instrument types.
const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Labels attaches dimension key/value pairs to one series of a metric
// family (e.g. {"slot": "3"}). Keys must be valid label names; values
// are escaped on rendering.
type Labels map[string]string

// Counter is a monotonically increasing counter. The zero value is
// ready to use, but counters normally come from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge value with an integer.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adjusts the gauge by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket "le" bounds, plus +Inf, _sum and _count).
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations in one step (bulk import
// from a pre-aggregated histogram).
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v*float64(n))) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// series is one labeled instance of a metric family.
type series struct {
	labels  string // pre-rendered, sorted: `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed counter or gauge
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    Type
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating as needed) the family and the series slot
// for (name, labels), enforcing name validity and type consistency.
func (r *Registry) lookup(name, help string, typ Type, labels Labels) *series {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for (name, labels), registering it on
// first use. Registering the same series twice returns the same
// counter; registering a name under two instrument types panics.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, help, TypeCounter, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("metrics: %s%s is func-backed", name, s.labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, help, TypeGauge, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("metrics: %s%s is func-backed", name, s.labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (ascending; +Inf is implicit), registering it on
// first use. Bounds are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	s := r.lookup(name, help, TypeHistogram, labels)
	if s.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return s.hist
}

// RegisterCounterFunc registers a counter whose value is produced by fn
// at scrape time. fn runs on the scraper's goroutine, concurrently with
// the system under observation: it must only read race-safe state
// (atomic counters, mutex-guarded aggregates, published snapshots).
// Registering the same series twice panics.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, TypeCounter, labels, fn)
}

// RegisterGaugeFunc registers a gauge whose value is produced by fn at
// scrape time, under the same concurrency contract as
// RegisterCounterFunc.
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, TypeGauge, labels, fn)
}

func (r *Registry) registerFunc(name, help string, typ Type, labels Labels, fn func() float64) {
	s := r.lookup(name, help, typ, labels)
	if s.fn != nil || s.counter != nil || s.gauge != nil {
		panic(fmt.Sprintf("metrics: %s%s already registered", name, s.labels))
	}
	s.fn = fn
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series sorted by label string, integral values rendered as integers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		srs := make([]*series, len(keys))
		for i, k := range keys {
			srs[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range srs {
			renderSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// renderSeries appends one series' sample line(s).
func renderSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.hist != nil:
		h := s.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %s\n", f.name, withLabel(s.labels, "le", formatValue(bound)), formatUint(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %s\n", f.name, withLabel(s.labels, "le", "+Inf"), formatUint(cum))
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatValue(math.Float64frombits(h.sumBits.Load())))
		fmt.Fprintf(b, "%s_count%s %s\n", f.name, s.labels, formatUint(h.count.Load()))
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatUint(s.counter.Value()))
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
	}
}

// withLabel splices one extra label pair into a pre-rendered label set.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatValue renders a sample value: integral values as integers (so
// counters compare byte-for-byte against printed integer stats),
// everything else in shortest-round-trip float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// checkMetricName validates a metric name against the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName validates a label name against [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty label name")
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid label name %q", name)
		}
	}
	return nil
}

// renderLabels renders a label set in sorted-key order, `{k="v",...}`,
// or "" for the empty set.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if err := checkLabelName(k); err != nil {
			panic(err)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// ParseText parses a Prometheus text exposition into a flat map from
// series (exactly as rendered: `name{label="v",...}` or bare name) to
// value. Comment and blank lines are skipped; any other malformed line
// is an error. It accepts the subset WritePrometheus emits, which is
// what the scrape smoke tests verify against.
func ParseText(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series name
		// (possibly containing spaces inside quoted label values) is
		// everything before it.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			return nil, fmt.Errorf("metrics: line %d: no value in %q", ln+1, line)
		}
		name, val := strings.TrimSpace(line[:cut]), line[cut+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value %q: %v", ln+1, val, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if err := checkMetricName(base); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %v", ln+1, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate series %q", ln+1, name)
		}
		out[name] = v
	}
	return out, nil
}

// SumSeries sums every series of the family (all label combinations) in
// a parsed exposition — the scrape-side aggregate for per-slot series.
func SumSeries(parsed map[string]float64, name string) float64 {
	var sum float64
	for k, v := range parsed {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}
