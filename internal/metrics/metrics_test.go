package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dfi_tuples_pushed_total", "Tuples pushed.", Labels{"slot": "0"})
	c.Add(41)
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same series returns the same instrument.
	if c2 := r.Counter("dfi_tuples_pushed_total", "", Labels{"slot": "0"}); c2 != c {
		t.Fatalf("re-registration returned a different counter")
	}
	r.Counter("dfi_tuples_pushed_total", "", Labels{"slot": "1"}).Add(7)
	g := r.Gauge("dfi_epoch", "Membership epoch.", nil)
	g.SetInt(3)
	r.Gauge("dfi_bandwidth_mbps", "", nil).Set(1234.5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE dfi_tuples_pushed_total counter",
		"# HELP dfi_tuples_pushed_total Tuples pushed.",
		`dfi_tuples_pushed_total{slot="0"} 42`,
		`dfi_tuples_pushed_total{slot="1"} 7`,
		"# TYPE dfi_epoch gauge",
		"dfi_epoch 3",
		"dfi_bandwidth_mbps 1234.5",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	var b2 bytes.Buffer
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Errorf("render is not deterministic")
	}
	// Families sorted by name.
	if strings.Index(out, "dfi_bandwidth_mbps") > strings.Index(out, "dfi_epoch") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	v := 10.0
	r.RegisterCounterFunc("dfi_live_total", "", nil, func() float64 { return v })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dfi_live_total 10\n") {
		t.Fatalf("func counter not rendered: %s", b.String())
	}
	v = 11
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dfi_live_total 11\n") {
		t.Fatalf("func counter not live: %s", b.String())
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dfi_latency_seconds", "", []float64{0.001, 0.01, 0.1}, nil)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.ObserveN(0.05, 2)
	h.Observe(5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		`dfi_latency_seconds_bucket{le="0.001"} 1`,
		`dfi_latency_seconds_bucket{le="0.01"} 2`,
		`dfi_latency_seconds_bucket{le="0.1"} 4`,
		`dfi_latency_seconds_bucket{le="+Inf"} 5`,
		"dfi_latency_seconds_count 5",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("histogram missing %q:\n%s", w, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "bad metric name", func() { r.Counter("9bad", "", nil) })
	mustPanic(t, "bad label name", func() { r.Counter("ok_total", "", Labels{"9bad": "x"}) })
	r.Counter("typed_total", "", nil)
	mustPanic(t, "type mismatch", func() { r.Gauge("typed_total", "", nil) })
	r.RegisterGaugeFunc("fn_gauge", "", nil, func() float64 { return 0 })
	mustPanic(t, "double func registration", func() {
		r.RegisterGaugeFunc("fn_gauge", "", nil, func() float64 { return 0 })
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("dfi_a_total", "help with\nnewline", Labels{"pair": `x\y"z`}).Add(3)
	r.Gauge("dfi_b", "", nil).Set(2.5)
	r.Histogram("dfi_h_seconds", "", []float64{1}, nil).Observe(0.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(&b)
	if err != nil {
		t.Fatalf("ParseText: %v\n", err)
	}
	if v := parsed[`dfi_a_total{pair="x\\y\"z"}`]; v != 3 {
		t.Errorf("parsed counter = %v, want 3 (parsed: %v)", v, parsed)
	}
	if v := parsed["dfi_b"]; v != 2.5 {
		t.Errorf("parsed gauge = %v, want 2.5", v)
	}
	if v := parsed[`dfi_h_seconds_bucket{le="+Inf"}`]; v != 1 {
		t.Errorf("parsed histogram +Inf bucket = %v, want 1", v)
	}
	if got := SumSeries(parsed, "dfi_a_total"); got != 3 {
		t.Errorf("SumSeries = %v, want 3", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		"name notanumber",
		"9bad 1",
		"dup 1\ndup 2",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q): expected error", bad)
		}
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-7, "-7"}, {2.5, "2.5"}, {1e15, "1e+15"},
		{math.Inf(1), "+Inf"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestEventLogRingAndJSONL(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 3; i++ {
		l.Emit(Event{T: time.Duration(i), Node: "node0", Type: EvSegmentWrite, Flow: "shuffle", Seq: uint64(i)})
	}
	l.Emit(Event{T: 10, Node: "node1", Type: EvEviction, Detail: "lease expired"})
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3 (2 ring + 1)", len(evs))
	}
	// Oldest node0 event evicted; order preserved across nodes.
	if evs[0].Seq != 1 || evs[1].Seq != 2 || evs[2].Node != "node1" {
		t.Fatalf("unexpected retained events: %+v", evs)
	}
	if l.Total() != 4 {
		t.Errorf("Total = %d, want 4", l.Total())
	}
	var b bytes.Buffer
	n, dropped, err := l.WriteJSONL(&b)
	if err != nil || n != 3 || dropped != 1 {
		t.Fatalf("WriteJSONL = (%d, %d, %v), want (3, 1, nil)", n, dropped, err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[2], `"type":"eviction"`) || !strings.Contains(lines[2], `"detail":"lease expired"`) {
		t.Errorf("JSONL missing fields: %s", lines[2])
	}
	// Optional zero fields omitted.
	if strings.Contains(lines[2], `"flow"`) || strings.Contains(lines[2], `"bytes"`) {
		t.Errorf("JSONL should omit zero optional fields: %s", lines[2])
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("dfi_x_total", "", nil).Add(9)
	events := NewEventLog(8)
	events.Emit(Event{Node: "node0", Type: EvEpoch, Epoch: 2})
	status := func() any { return map[string]any{"flows": 1} }
	s, err := Serve("127.0.0.1:0", r, status, events)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "dfi_x_total 9") {
		t.Errorf("/metrics: %s", body)
	}
	if body := get("/status"); !strings.Contains(body, `"flows": 1`) {
		t.Errorf("/status: %s", body)
	}
	if body := get("/events"); !strings.Contains(body, `"type":"epoch"`) {
		t.Errorf("/events: %s", body)
	}
}

// TestConcurrentScrape hammers every instrument type from writer
// goroutines while readers render, parse, and dump concurrently. Run
// under -race this is the registry's core safety contract.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	events := NewEventLog(64)
	c := r.Counter("dfi_c_total", "", nil)
	g := r.Gauge("dfi_g", "", nil)
	h := r.Histogram("dfi_h", "", []float64{1, 2, 4}, nil)
	r.RegisterGaugeFunc("dfi_fn", "", nil, func() float64 { return float64(c.Value()) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				events.Emit(Event{Node: fmt.Sprintf("node%d", w), Type: EvSegmentWrite, Seq: uint64(i)})
				// New series registration racing with render.
				r.Counter("dfi_dyn_total", "", Labels{"w": fmt.Sprint(w % 2)}).Inc()
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseText(&b); err != nil {
					t.Error(err)
					return
				}
				_, _, _ = events.WriteJSONL(io.Discard)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
