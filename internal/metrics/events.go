// Structured per-flow event tracing: typed events with flow/epoch
// labels, ring-buffered per node, dumpable as JSONL. The EventLog sits
// above the byte-level fabric trace (internal/fabric.Recorder) —
// fabric records every verb on the wire, the event log records the
// protocol-level transitions (segment commits, evictions, reroutes,
// lease state changes) that explain them.

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// EventType names a protocol-level event.
type EventType string

// Event types emitted by core, registry, and fabric.
const (
	EvSegmentWrite EventType = "segment_write" // writer committed a segment to a remote ring
	EvFooterCommit EventType = "footer_commit" // target observed a committed footer
	EvEviction     EventType = "eviction"      // membership evicted an endpoint
	EvReroute      EventType = "reroute"       // harvested tuples re-pushed after an eviction
	EvLease        EventType = "lease"         // lease state transition (active/suspect/evicted/left)
	EvEpoch        EventType = "epoch"         // membership epoch advanced
	EvSnapshot     EventType = "snapshot"      // replicated registry compacted its log
	EvElection     EventType = "election"      // replicated registry elected a new master

	// Ordered-multicast recovery events.
	EvGapAgreement       EventType = "gap_agreement"        // targets agreed a sequence number is unfillable
	EvSeqSnapshotInstall EventType = "seq_snapshot_install" // rejoining target installed a sequencer snapshot
)

// Event is one structured trace record. T is virtual time since the
// start of the simulation. Zero-valued optional fields are omitted from
// the JSONL encoding.
type Event struct {
	T     time.Duration `json:"t"`
	Node  string        `json:"node"`
	Type  EventType     `json:"type"`
	Flow  string        `json:"flow,omitempty"`
	Epoch uint64        `json:"epoch,omitempty"`
	Role  string        `json:"role,omitempty"`
	Slot  int           `json:"slot,omitempty"`
	Seq   uint64        `json:"seq,omitempty"`
	Bytes uint64        `json:"bytes,omitempty"`
	Detail string       `json:"detail,omitempty"`

	ord uint64 // global insertion order, for stable cross-node sorting
}

// EventSink receives structured events. Implementations must be safe
// for use from simulation context; Emit must not block.
type EventSink interface {
	Emit(e Event)
}

// EventLog is an EventSink that keeps the most recent events in a ring
// buffer per node. It is safe for concurrent Emit and Dump (a scraper
// can dump while the simulation emits).
type EventLog struct {
	mu    sync.Mutex
	cap   int
	ord   uint64
	nodes map[string]*eventRing
	total uint64 // emitted, including overwritten
}

type eventRing struct {
	buf   []Event
	next  int // next write position
	count int // ≤ cap
}

// NewEventLog returns a log keeping at most perNode events per node.
// perNode ≤ 0 selects a default of 1024.
func NewEventLog(perNode int) *EventLog {
	if perNode <= 0 {
		perNode = 1024
	}
	return &EventLog{cap: perNode, nodes: make(map[string]*eventRing)}
}

// Emit records e, evicting the oldest event for the node if its ring is
// full.
func (l *EventLog) Emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ord++
	e.ord = l.ord
	l.total++
	r := l.nodes[e.Node]
	if r == nil {
		r = &eventRing{buf: make([]Event, l.cap)}
		l.nodes[e.Node] = r
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % l.cap
	if r.count < l.cap {
		r.count++
	}
}

// Total returns the number of events emitted, including any that have
// been overwritten in the rings.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events across all nodes in emission
// order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	out := make([]Event, 0, len(l.nodes)*l.cap)
	for _, r := range l.nodes {
		if r.count == l.cap {
			out = append(out, r.buf[r.next:]...)
			out = append(out, r.buf[:r.next]...)
		} else {
			out = append(out, r.buf[:r.count]...)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// WriteJSONL dumps the retained events as one JSON object per line, in
// emission order, and reports how many events were dropped by ring
// eviction (as a trailing comment-free count via the returned value).
func (l *EventLog) WriteJSONL(w io.Writer) (written int, dropped uint64, err error) {
	evs := l.Events()
	l.mu.Lock()
	dropped = l.total - uint64(len(evs))
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if err = enc.Encode(e); err != nil {
			return written, dropped, fmt.Errorf("metrics: event dump: %w", err)
		}
		written++
	}
	return written, dropped, nil
}
