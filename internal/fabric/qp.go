package fabric

import (
	"time"

	"dfi/internal/sim"
	"dfi/internal/transport"
)

// The verb vocabulary (op kinds, completions, work requests) lives in
// dfi/internal/transport so all backends share it; the fabric re-exports
// the names for its callers and tests.

// OpKind identifies the verb that produced a completion.
type OpKind = transport.OpKind

// Verb kinds reported in completions.
const (
	OpWrite       = transport.OpWrite
	OpRead        = transport.OpRead
	OpSend        = transport.OpSend
	OpRecv        = transport.OpRecv
	OpFetchAdd    = transport.OpFetchAdd
	OpCompareSwap = transport.OpCompareSwap
)

// Completion is one completion-queue entry.
type Completion = transport.Completion

// CQ is a completion queue. Entries are appended by the fabric at
// completion time; processes drain them with Poll or Wait. CQ implements
// transport.CompletionQueue; its blocking waits park on sim conds, so
// only *sim.Proc contexts can drive them.
//
// Entries live in a head-indexed slice reused ring-style: pops advance
// head instead of reslicing, and a push into an empty or exhausted queue
// rewinds to the front, so steady-state push/drain cycles never
// reallocate.
type CQ struct {
	cfg     *Config
	entries []Completion
	head    int
	cond    *sim.Cond
}

// NewCQ creates a completion queue on the cluster.
func (c *Cluster) NewCQ() *CQ {
	return &CQ{cfg: &c.cfg, cond: sim.NewCond(c.K)}
}

// append adds an entry without waking waiters, reusing the slice's front
// whenever the queue is empty (and compacting before a growing append
// would otherwise abandon the popped prefix).
func (cq *CQ) append(e Completion) {
	if cq.head == len(cq.entries) {
		cq.head = 0
		cq.entries = cq.entries[:0]
	} else if cq.head > 0 && len(cq.entries) == cap(cq.entries) {
		n := copy(cq.entries, cq.entries[cq.head:])
		clearCompletions(cq.entries[n:])
		cq.entries = cq.entries[:n]
		cq.head = 0
	}
	cq.entries = append(cq.entries, e)
}

func clearCompletions(cs []Completion) {
	for i := range cs {
		cs[i] = Completion{}
	}
}

// push appends an entry and wakes waiters. Called from event context.
func (cq *CQ) push(e Completion) {
	cq.append(e)
	cq.cond.Broadcast()
}

// pop removes the head entry; the caller must have checked Len() > 0.
// The vacated slot is zeroed so it retains no Buf reference.
func (cq *CQ) pop() Completion {
	e := cq.entries[cq.head]
	cq.entries[cq.head] = Completion{}
	cq.head++
	return e
}

// Poll drains one completion without blocking, charging one poll cost.
func (cq *CQ) Poll(p transport.Ctx) (Completion, bool) {
	p.Sleep(cq.cfg.PollCost)
	if cq.Len() == 0 {
		return Completion{}, false
	}
	return cq.pop(), true
}

// PollBatch drains up to len(out) completions into out, charging one poll
// cost per drained entry — virtual-time-identical to a Poll loop — and
// returns the count. An empty queue costs nothing.
func (cq *CQ) PollBatch(p transport.Ctx, out []Completion) int {
	n := 0
	for n < len(out) && cq.Len() > 0 {
		p.Sleep(cq.cfg.PollCost)
		out[n] = cq.pop()
		n++
	}
	return n
}

// Wait blocks until a completion is available and returns it.
func (cq *CQ) Wait(p transport.Ctx) Completion {
	sp := proc(p)
	sp.Sleep(cq.cfg.PollCost)
	for cq.Len() == 0 {
		cq.cond.Wait(sp)
		sp.Sleep(cq.cfg.PollCost)
	}
	return cq.pop()
}

// WaitTimeout blocks until a completion is available or d elapses,
// reporting whether a completion was returned.
func (cq *CQ) WaitTimeout(p transport.Ctx, d time.Duration) (Completion, bool) {
	sp := proc(p)
	sp.Sleep(cq.cfg.PollCost)
	deadline := sp.Now() + d
	for cq.Len() == 0 {
		remain := deadline - sp.Now()
		if remain <= 0 {
			return Completion{}, false
		}
		if !cq.cond.WaitTimeout(sp, remain) && cq.Len() == 0 {
			return Completion{}, false
		}
		sp.Sleep(cq.cfg.PollCost)
	}
	return cq.pop(), true
}

// WaitNonEmpty blocks until the queue holds at least one completion or d
// elapses, without consuming anything. It reports whether a completion is
// available.
func (cq *CQ) WaitNonEmpty(p transport.Ctx, d time.Duration) bool {
	sp := proc(p)
	sp.Sleep(cq.cfg.PollCost)
	deadline := sp.Now() + d
	for cq.Len() == 0 {
		remain := deadline - sp.Now()
		if remain <= 0 {
			return false
		}
		if !cq.cond.WaitTimeout(sp, remain) && cq.Len() == 0 {
			return false
		}
		sp.Sleep(cq.cfg.PollCost)
	}
	return true
}

// Len returns the number of pending completions.
func (cq *CQ) Len() int { return len(cq.entries) - cq.head }

// RecvWR is a posted receive buffer.
type RecvWR = transport.RecvWR

// arrival is a two-sided message that reached a QP before a receive was
// posted (RC queues it rather than dropping).
type arrival struct {
	data []byte
	id   uint64
}

// QP is one endpoint of a reliable connection between two nodes. Verbs are
// issued by processes running on the owner node; Peer returns the other
// endpoint. QP implements transport.Queue.
type QP struct {
	c     *Cluster
	owner *Node
	peer  *QP

	scq *CQ // send-side completions (WRITE/READ/SEND/atomics)
	rcq *CQ // receive-side completions (matched RECVs)

	recvq   []RecvWR
	arrived []arrival
	nextID  uint64

	// RC connections never reorder: fault-injected delay and jitter shift
	// deliveries but must preserve this QP's wire order. lastCommit is the
	// latest scheduled WRITE commit, lastArrive the latest scheduled SEND
	// delivery; later operations are clamped behind them.
	lastCommit sim.Time
	lastArrive sim.Time
}

// CreateQPPair connects nodes a and b with a reliable connection and
// returns the two endpoints.
func (c *Cluster) CreateQPPair(a, b *Node) (*QP, *QP) {
	qa := &QP{c: c, owner: a, scq: c.NewCQ(), rcq: c.NewCQ()}
	qb := &QP{c: c, owner: b, scq: c.NewCQ(), rcq: c.NewCQ()}
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// Owner returns the node this endpoint belongs to.
func (q *QP) Owner() *Node { return q.owner }

// Peer returns the opposite endpoint.
func (q *QP) Peer() *QP { return q.peer }

// SendCQ returns the endpoint's send completion queue.
func (q *QP) SendCQ() transport.CompletionQueue { return q.scq }

// RecvCQ returns the endpoint's receive completion queue.
func (q *QP) RecvCQ() transport.CompletionQueue { return q.rcq }

// PostedRecvs returns the number of posted, unmatched receive buffers.
func (q *QP) PostedRecvs() int { return len(q.recvq) }

// WriteOptions controls an RDMA WRITE work request.
type WriteOptions = transport.WriteOptions

// Write posts a one-sided RDMA WRITE of src into dst on the peer node. It
// returns after the posting cost; the transfer proceeds asynchronously.
// The source buffer must not be modified until a signaled completion for
// this or a later WR on the same QP has been observed (exactly the
// selective-signaling contract real verbs impose).
func (q *QP) Write(p transport.Ctx, src []byte, dst Addr, opts WriteOptions) {
	q.writeOne(p, src, dst, opts, nil, 0)
}

// WriteWR describes one work request in a doorbell-batched WriteBatch post.
type WriteWR = transport.WriteWR

// WriteBatch posts the given WRITEs back-to-back with a single doorbell
// ring. Virtual timing, fault injection, RC ordering clamps and statistics
// are identical to posting each WR with Write in order — the saving is
// real-world cost only: the NIC staging snapshots of all WRs share one
// pooled buffer taken at post time instead of one allocation and one
// DMA-read event each. Callers must keep every source buffer unmodified
// until a signaled completion covering it is observed (the same
// selective-signaling contract Write imposes); that stability is what makes
// the post-time snapshot equal the per-WR DMA-time snapshot.
//
// Per-WR CommitTail is honored: each WR's tail bytes still commit strictly
// last within that WR's address range, so footer-after-payload ordering is
// preserved across a coalesced run of ring-segment writes.
func (q *QP) WriteBatch(p transport.Ctx, wrs []WriteWR) {
	if len(wrs) == 0 {
		return
	}
	if len(wrs) == 1 {
		q.Write(p, wrs[0].Src, wrs[0].Dst, wrs[0].Opts)
		return
	}
	total := 0
	for i := range wrs {
		total += len(wrs[i].Src)
	}
	st := q.c.stagedRefGet(len(wrs))
	st.buf = q.c.stagedGet(total)
	copyPayload := q.c.cfg.CopyPayload
	off := 0
	for i := range wrs {
		src := wrs[i].Src
		tail := wrs[i].Opts.CommitTail
		if tail > len(src) {
			tail = len(src)
		}
		stageInto(st.buf.b[off:off+len(src)], src, len(src)-tail, copyPayload)
		off += len(src)
	}
	off = 0
	for i := range wrs {
		q.writeOne(p, wrs[i].Src, wrs[i].Dst, wrs[i].Opts, st, off)
		off += len(wrs[i].Src)
	}
}

// writeOne implements Write. batch is nil for a standalone WRITE (the
// snapshot is then taken at DMA time, txEnd); for a doorbell-batched WRITE
// it is the shared pre-staged buffer and off this WR's offset within it.
// Each WR holds one reference on the batch, consumed by its final commit
// event (or immediately if the WR is fault-dropped).
func (q *QP) writeOne(p transport.Ctx, src []byte, dst Addr, opts WriteOptions, batch *stagedRef, off int) {
	cfg := &q.c.cfg
	mr := mrOf(dst)
	if mr.node != q.peer.owner {
		panic("fabric: WRITE destination MR not on peer node")
	}
	sliceOf(dst, len(src)) // bounds-check now
	q.owner.Compute(p, cfg.PostOverhead)

	k := q.c.K
	ser := cfg.serialization(len(src))
	startup := cfg.NICStartup
	if len(src) <= cfg.InlineThreshold && cfg.InlineSaving < startup {
		startup -= cfg.InlineSaving
	}
	_, txEnd, rxEnd := q.c.reservePath(q.owner, q.peer.owner, k.Now()+startup, ser)

	fv := q.c.fault(OpWrite, q.owner, q.peer.owner, rxEnd)
	deliverAt := rxEnd + fv.delay

	// Payload body commits just before the tail; tail commits last.
	tail := opts.CommitTail
	if tail > len(src) {
		tail = len(src)
	}
	body := len(src) - tail

	// RC connections deliver WRITEs in posting order: fault delay may push
	// a write later, but it must never let its stores interleave with (or
	// precede) those of an earlier write on the same QP — otherwise a
	// jitter-delayed retransmission overtaken by a later lap could leave
	// one segment's payload under another's footer. Clamp this write's
	// whole commit window (body included) behind the previous tail.
	if !fv.drop {
		earliest := deliverAt
		if tail > 0 && body > 0 {
			earliest -= cfg.serialization(tail)
		}
		if earliest <= q.lastCommit {
			deliverAt += q.lastCommit + 1 - earliest
		}
	}

	q.owner.bytesTx += int64(len(src))
	q.owner.msgsTx++
	q.peer.owner.bytesRx += int64(len(src))
	disp := Delivered
	if fv.drop {
		disp = Dropped
	}
	q.c.trace(OpWrite, q.owner, q.peer.owner, len(src), k.Now(), deliverAt, disp)

	n := len(src)
	dstOff := dst.Off
	if !fv.drop && !fv.duplicate {
		// Steady-state path (no fault touches this WR): the whole stage/
		// body/commit/ack pipeline rides one pooled op, so posting a WRITE
		// allocates nothing. Event push order matches the closure path
		// below exactly — stage, body, commit, ack — keeping (at, seq)
		// dispatch order byte-identical.
		w := q.c.getWriteOp()
		w.q, w.mr = q, mr
		w.off, w.dstOff = off, dstOff
		w.n, w.body, w.tail = n, body, tail
		w.copyPayload = cfg.CopyPayload
		w.id = opts.ID
		if batch == nil {
			// The NIC finishes DMA-reading the source at txEnd: snapshot
			// then, into a pooled staging buffer. (Post-time snapshots are
			// tempting but wrong in both directions: they erase the
			// reuse-before-completion hazard real verbs have, and a commit
			// delayed by receiver RX queueing may fire after the writer has
			// lawfully restamped the slot for a later lap.)
			w.src = src
			w.own = stagedRef{refs: 1}
			w.st = &w.own
			k.AtOp(txEnd, w, wopStage)
		} else {
			w.st = batch
		}
		if tail > 0 && body > 0 && cfg.CopyPayload {
			// Body commits just before the tail, after staging completed.
			bodyAt := deliverAt - cfg.serialization(tail)
			if bodyAt <= txEnd {
				bodyAt = txEnd + 1
			}
			k.AtOp(bodyAt, w, wopBody)
		}
		k.AtOp(deliverAt, w, wopCommit)
		q.lastCommit = deliverAt
		signaled := opts.Signaled && !fv.dropCompletion
		w.freeAtCommit = !signaled
		if signaled {
			// RC semantics: the completion is generated once the responder's
			// ACK returns, i.e. after remote delivery plus the return hop.
			ackAt := deliverAt + cfg.Propagation + cfg.SwitchDelay + cfg.CompletionDelay
			k.AtOp(ackAt, w, wopAck)
		}
		return
	}
	st := batch
	if fv.drop {
		// No commit will read the staging buffer: drop this WR's reference.
		if st != nil {
			st.release(q.c)
		}
	} else {
		if st == nil {
			st = &stagedRef{refs: 1}
			// The NIC finishes DMA-reading the source at txEnd: snapshot
			// then, into a pooled staging buffer.
			copyPayload := cfg.CopyPayload
			k.At(txEnd, func() {
				st.buf = q.c.stagedGet(n)
				stageInto(st.buf.b, src, body, copyPayload)
			})
		}
		// commit schedules the remote memory commit of the staged bytes with
		// delivery finishing at `at` (body strictly before tail, as the
		// NIC's increasing-address DMA order demands — fault delay shifts
		// both). The final event of the last commit recycles the staging
		// buffer.
		commit := func(at sim.Time) {
			if tail > 0 && body > 0 {
				bodyAt := at - cfg.serialization(tail)
				if bodyAt <= txEnd {
					bodyAt = txEnd + 1
				}
				k.At(bodyAt, func() {
					if q.c.cfg.CopyPayload {
						copy(mr.buf[dstOff:dstOff+body], st.buf.b[off:off+body])
					}
				})
			}
			k.At(at, func() {
				if q.c.cfg.CopyPayload && body > 0 && tail == 0 {
					copy(mr.buf[dstOff:dstOff+body], st.buf.b[off:off+body])
				}
				if tail > 0 {
					copy(mr.buf[dstOff+body:dstOff+n], st.buf.b[off+body:off+n])
				}
				mr.notify()
				st.release(q.c)
			})
		}
		commit(deliverAt)
		q.lastCommit = deliverAt
		if fv.duplicate {
			st.refs++
			dupAt := deliverAt + q.c.cfg.Faults.dupDelay()
			if tail > 0 && body > 0 && dupAt-cfg.serialization(tail) <= q.lastCommit {
				dupAt = q.lastCommit + cfg.serialization(tail) + 1
			}
			q.c.trace(OpWrite, q.owner, q.peer.owner, len(src), k.Now(), dupAt, Injected)
			commit(dupAt)
			q.lastCommit = dupAt
		}
	}
	if opts.Signaled && !fv.dropCompletion {
		// RC semantics: the completion is generated once the responder's
		// ACK returns, i.e. after remote delivery plus the return hop.
		// (A probabilistically dropped WRITE still completes — the loss is
		// modelled above the reliability layer; see fault.go. Only crashed
		// endpoints suppress completions.)
		ackAt := deliverAt + cfg.Propagation + cfg.SwitchDelay + cfg.CompletionDelay
		k.At(ackAt, func() {
			q.scq.push(Completion{ID: opts.ID, Op: OpWrite, Bytes: n})
		})
	}
}

// writeOp is the pooled event payload driving the steady-state WRITE
// pipeline (see writeOne). Steps fire in scheduler context via sim.Op.
type writeOp struct {
	q   *QP
	mr  *MemoryRegion
	st  *stagedRef
	own stagedRef // standalone WRITEs point st here (one ref, no alloc)
	src []byte    // standalone WRITEs: snapshot source, read at txEnd

	off, dstOff   int
	n, body, tail int
	id            uint64
	copyPayload   bool
	freeAtCommit  bool // unsignaled: commit is the last step
}

// writeOp pipeline steps (scheduled through Kernel.AtOp).
const (
	wopStage  uint8 = iota // snapshot src into the staging buffer (txEnd)
	wopBody                // commit the payload body (bodyAt, CopyPayload only)
	wopCommit              // commit tail/body, notify, release staging (deliverAt)
	wopAck                 // push the signaled completion (ackAt)
)

func (w *writeOp) RunOp(step uint8) {
	switch step {
	case wopStage:
		w.st.buf = w.q.c.stagedGet(w.n)
		stageInto(w.st.buf.b, w.src, w.body, w.copyPayload)
	case wopBody:
		copy(w.mr.buf[w.dstOff:w.dstOff+w.body], w.st.buf.b[w.off:w.off+w.body])
	case wopCommit:
		b := w.st.buf.b
		if w.copyPayload && w.body > 0 && w.tail == 0 {
			copy(w.mr.buf[w.dstOff:w.dstOff+w.body], b[w.off:w.off+w.body])
		}
		if w.tail > 0 {
			copy(w.mr.buf[w.dstOff+w.body:w.dstOff+w.n], b[w.off+w.body:w.off+w.n])
		}
		w.mr.notify()
		w.st.release(w.q.c)
		if w.freeAtCommit {
			putWriteOp(w)
		}
	case wopAck:
		w.q.scq.push(Completion{ID: w.id, Op: OpWrite, Bytes: w.n})
		putWriteOp(w)
	}
}

func (c *Cluster) getWriteOp() *writeOp {
	if n := len(c.wopFree); n > 0 {
		w := c.wopFree[n-1]
		c.wopFree[n-1] = nil
		c.wopFree = c.wopFree[:n-1]
		return w
	}
	return new(writeOp)
}

func putWriteOp(w *writeOp) {
	c := w.q.c
	*w = writeOp{}
	c.wopFree = append(c.wopFree, w)
}

// Read posts a one-sided RDMA READ of len(dst) bytes from src on the peer
// node into dst, returning after the posting cost. A signaled completion
// indicates dst holds the data.
//
// Small reads (≤ ControlBytes) travel on the control lane: like
// InfiniBand's service levels, they bypass the bulk-data FIFO so a footer
// probe or credit refresh is not queued behind megabytes of in-flight
// segments. Their (negligible) bytes still count toward the statistics.
func (q *QP) Read(p transport.Ctx, dst []byte, src Addr, signaled bool, id uint64) {
	cfg := &q.c.cfg
	if mrOf(src).node != q.peer.owner {
		panic("fabric: READ source MR not on peer node")
	}
	sliceOf(src, len(dst))
	q.owner.Compute(p, cfg.PostOverhead)

	k := q.c.K
	const reqBytes = 16
	serReq := cfg.serialization(reqBytes)
	serResp := cfg.serialization(len(dst))
	var respStart, rxEnd sim.Time
	if len(dst) <= ControlBytes {
		hop := cfg.Propagation + cfg.SwitchDelay
		reqRxEnd := k.Now() + cfg.NICStartup + serReq + hop
		respStart = reqRxEnd + cfg.NICStartup
		rxEnd = respStart + serResp + hop
	} else {
		var reqRxEnd sim.Time
		_, _, reqRxEnd = q.c.reservePath(q.owner, q.peer.owner, k.Now()+cfg.NICStartup, serReq)
		// Response: remote NIC DMA-reads memory and serializes on its TX link.
		respStart, _, rxEnd = q.c.reservePath(q.peer.owner, q.owner, reqRxEnd+cfg.NICStartup, serResp)
	}

	fv := q.c.fault(OpRead, q.owner, q.peer.owner, rxEnd)
	deliverAt := rxEnd + fv.delay

	q.owner.msgsTx++
	q.owner.bytesRx += int64(len(dst))
	q.peer.owner.bytesTx += int64(len(dst))
	disp := Delivered
	if fv.drop {
		disp = Dropped
	}
	q.c.trace(OpRead, q.owner, q.peer.owner, len(dst), k.Now(), deliverAt, disp)

	// A dropped READ loses the response, and with it the completion: the
	// caller must recover with a timed wait and reissue.
	if fv.drop {
		return
	}
	r := q.c.getReadOp()
	r.q, r.dst, r.src = q, dst, sliceOf(src, len(dst))
	r.id, r.signaled = id, signaled
	k.AtOp(respStart, r, ropStage)
	k.AtOp(deliverAt, r, ropDeliver)
}

// readOp is the pooled event payload driving the READ response pipeline:
// the remote NIC snapshots the source at respStart, and the response
// lands (data copy, completion) at deliverAt.
type readOp struct {
	q        *QP
	dst, src []byte
	staged   *stagedBuf
	id       uint64
	signaled bool
}

const (
	ropStage   uint8 = iota // snapshot the remote source (respStart)
	ropDeliver              // deliver the response into dst (deliverAt)
)

func (r *readOp) RunOp(step uint8) {
	if step == ropStage {
		r.staged = r.q.c.stagedGet(len(r.dst))
		copy(r.staged.b, r.src)
		return
	}
	copy(r.dst, r.staged.b)
	r.q.c.stagedPut(r.staged)
	if r.signaled {
		r.q.scq.push(Completion{ID: r.id, Op: OpRead, Bytes: len(r.dst)})
	}
	putReadOp(r)
}

func (c *Cluster) getReadOp() *readOp {
	if n := len(c.ropFree); n > 0 {
		r := c.ropFree[n-1]
		c.ropFree[n-1] = nil
		c.ropFree = c.ropFree[:n-1]
		return r
	}
	return new(readOp)
}

func putReadOp(r *readOp) {
	c := r.q.c
	*r = readOp{}
	c.ropFree = append(c.ropFree, r)
}

// ReadSync performs a signaled READ and blocks until it completes,
// returning the round-trip time. Any completions already pending on the
// send CQ are drained to the caller via the discard list semantics; callers
// that interleave ReadSync with other signaled WRs should use Read+Wait
// directly.
func (q *QP) ReadSync(p transport.Ctx, dst []byte, src Addr) time.Duration {
	start := p.Now()
	q.nextID++
	id := q.nextID | 1<<63
	q.Read(p, dst, src, true, id)
	for {
		c := q.scq.Wait(p)
		if c.ID == id {
			break
		}
		// Preserve unrelated completions (e.g. signaled writes).
		q.scq.append(c)
	}
	return p.Now() - start
}

// FetchAdd atomically adds delta to the 8-byte counter at dst on the peer
// node and returns the previous value. It blocks the caller for the full
// round trip (the paper's tuple sequencer uses it synchronously). Remote
// atomics to the same NIC serialize, which models sequencer contention.
func (q *QP) FetchAdd(p transport.Ctx, dst Addr, delta uint64) uint64 {
	v, _ := q.FetchAddChecked(p, dst, delta)
	return v
}

// FetchAddChecked is FetchAdd with an explicit success indicator: ok is
// false when the atomic could not execute because an endpoint is crashed
// (the QP would surface an error completion). Callers that must
// distinguish "previous value was 0" from "sequencer node is dead" — the
// ordered-multicast source fetching sequence numbers — use this form.
func (q *QP) FetchAddChecked(p transport.Ctx, dst Addr, delta uint64) (uint64, bool) {
	cfg := &q.c.cfg
	mr := mrOf(dst)
	if mr.node != q.peer.owner {
		panic("fabric: atomic destination MR not on peer node")
	}
	b := sliceOf(dst, 8)
	q.owner.Compute(p, cfg.PostOverhead)

	k := q.c.K
	const atomicBytes = 16
	ser := cfg.serialization(atomicBytes)
	hop := cfg.Propagation + cfg.SwitchDelay
	arrive := k.Now() + cfg.NICStartup + ser + hop // control lane

	fv := q.c.fault(OpFetchAdd, q.owner, q.peer.owner, arrive)
	if fv.dropCompletion {
		// One endpoint is crashed: the atomic never executes. Model the
		// QP error completion as a fixed stall returning zero.
		q.c.trace(OpFetchAdd, q.owner, q.peer.owner, 8, k.Now(), k.Now()+crashAtomicPenalty, Dropped)
		p.Sleep(crashAtomicPenalty)
		return 0, false
	}
	arrive += fv.delay

	// Serialize concurrent atomics at the responder NIC.
	execStart := arrive
	if q.peer.owner.atomicFreeAt > execStart {
		execStart = q.peer.owner.atomicFreeAt
	}
	execEnd := execStart + cfg.AtomicRemoteCost
	q.peer.owner.atomicFreeAt = execEnd
	q.peer.owner.atomicsRx++

	arriveResp := execEnd + ser + hop // control lane
	if fv.drop {
		// "Dropped" atomics are transport retries: the op executes exactly
		// once, the caller just pays an extra round trip for the redo.
		arriveResp += ser + hop + ser + hop
	}
	q.owner.msgsTx++

	q.c.trace(OpFetchAdd, q.owner, q.peer.owner, 8, k.Now(), execEnd, Delivered)
	var old uint64
	k.At(execEnd, func() {
		old = le64(b)
		putLE64(b, old+delta)
		mr.notify()
	})
	done := sim.NewCond(k)
	k.At(arriveResp, done.Broadcast)
	done.Wait(proc(p))
	return old, true
}

// CompareSwap atomically replaces the 8-byte value at dst with swap if it
// equals expect, returning the previous value.
func (q *QP) CompareSwap(p transport.Ctx, dst Addr, expect, swap uint64) uint64 {
	cfg := &q.c.cfg
	mr := mrOf(dst)
	if mr.node != q.peer.owner {
		panic("fabric: atomic destination MR not on peer node")
	}
	b := sliceOf(dst, 8)
	q.owner.Compute(p, cfg.PostOverhead)

	k := q.c.K
	const atomicBytes = 16
	ser := cfg.serialization(atomicBytes)
	hop := cfg.Propagation + cfg.SwitchDelay
	arrive := k.Now() + cfg.NICStartup + ser + hop // control lane

	fv := q.c.fault(OpCompareSwap, q.owner, q.peer.owner, arrive)
	if fv.dropCompletion {
		// Crashed endpoint: see FetchAdd.
		q.c.trace(OpCompareSwap, q.owner, q.peer.owner, 8, k.Now(), k.Now()+crashAtomicPenalty, Dropped)
		p.Sleep(crashAtomicPenalty)
		return 0
	}
	arrive += fv.delay

	execStart := arrive
	if q.peer.owner.atomicFreeAt > execStart {
		execStart = q.peer.owner.atomicFreeAt
	}
	execEnd := execStart + cfg.AtomicRemoteCost
	q.peer.owner.atomicFreeAt = execEnd
	q.peer.owner.atomicsRx++
	arriveResp := execEnd + ser + hop // control lane
	if fv.drop {
		arriveResp += ser + hop + ser + hop // transport retry, see FetchAdd
	}
	q.owner.msgsTx++

	q.c.trace(OpCompareSwap, q.owner, q.peer.owner, 8, k.Now(), execEnd, Delivered)
	var old uint64
	k.At(execEnd, func() {
		old = le64(b)
		if old == expect {
			putLE64(b, swap)
		}
		mr.notify()
	})
	done := sim.NewCond(k)
	k.At(arriveResp, done.Broadcast)
	done.Wait(proc(p))
	return old
}

// PostRecv posts a receive buffer for two-sided communication. If a
// message already arrived unmatched (RC queues them), it is delivered
// immediately.
func (q *QP) PostRecv(buf []byte, id uint64) {
	if len(q.arrived) > 0 {
		a := q.arrived[0]
		q.arrived = q.arrived[1:]
		n := copy(buf, a.data)
		q.rcq.push(Completion{ID: id, Op: OpRecv, Bytes: n, Value: a.id, Buf: buf})
		return
	}
	q.recvq = append(q.recvq, RecvWR{Buf: buf, ID: id})
}

// Send posts a two-sided SEND of src to the peer endpoint. The message is
// delivered into the peer's next posted receive buffer; with reliable
// connections an early message waits for a receive to be posted.
func (q *QP) Send(p transport.Ctx, src []byte, signaled bool, id uint64) {
	cfg := &q.c.cfg
	q.owner.Compute(p, cfg.PostOverhead)

	k := q.c.K
	ser := cfg.serialization(len(src))
	startup := cfg.NICStartup
	if len(src) <= cfg.InlineThreshold && cfg.InlineSaving < startup {
		startup -= cfg.InlineSaving
	}
	_, txEnd, rxEnd := q.c.reservePath(q.owner, q.peer.owner, k.Now()+startup, ser)

	fv := q.c.fault(OpSend, q.owner, q.peer.owner, rxEnd)
	deliverAt := rxEnd + fv.delay
	if fv.drop && !fv.dropCompletion {
		// RC queue pairs are hardware-reliable: a lost SEND packet is
		// retransmitted by the NIC and surfaces as extra latency, not as
		// message loss. Only UD multicast (MulticastGroup.Send) and
		// crashed endpoints genuinely lose SENDs.
		deliverAt += ser + 2*(cfg.Propagation+cfg.SwitchDelay)
		fv.drop = false
	}
	// RC SENDs arrive in posting order (see the WRITE ordering clamp).
	if !fv.drop && deliverAt <= q.lastArrive {
		deliverAt = q.lastArrive + 1
	}

	q.owner.bytesTx += int64(len(src))
	q.owner.msgsTx++
	q.peer.owner.bytesRx += int64(len(src))
	disp := Delivered
	if fv.drop {
		disp = Dropped
	}
	q.c.trace(OpSend, q.owner, q.peer.owner, len(src), k.Now(), deliverAt, disp)

	var staged []byte
	k.At(txEnd, func() {
		staged = make([]byte, len(src))
		if q.c.cfg.CopyPayload {
			copy(staged, src)
		} else {
			// Timing-only mode: keep the leading bytes (message headers)
			// so protocol metadata survives, drop the payload copy.
			n := len(src)
			if n > 64 {
				n = 64
			}
			copy(staged[:n], src[:n])
		}
	})
	deliver := func() {
		peer := q.peer
		if len(peer.recvq) > 0 {
			wr := peer.recvq[0]
			peer.recvq = peer.recvq[1:]
			n := copy(wr.Buf, staged)
			peer.rcq.push(Completion{ID: wr.ID, Op: OpRecv, Bytes: n, Value: id, Buf: wr.Buf})
		} else {
			peer.arrived = append(peer.arrived, arrival{data: staged, id: id})
		}
	}
	if !fv.drop {
		k.At(deliverAt, deliver)
		q.lastArrive = deliverAt
		if fv.duplicate {
			dupAt := deliverAt + q.c.cfg.Faults.dupDelay()
			q.c.trace(OpSend, q.owner, q.peer.owner, len(src), k.Now(), dupAt, Injected)
			k.At(dupAt, deliver)
			q.lastArrive = dupAt
		}
	}
	if signaled && !fv.dropCompletion {
		// Like WRITE: a probabilistically dropped SEND still completes
		// locally; only crashed endpoints go silent.
		n := len(src)
		ackAt := deliverAt + cfg.Propagation + cfg.SwitchDelay + cfg.CompletionDelay
		k.At(ackAt, func() {
			q.scq.push(Completion{ID: id, Op: OpSend, Bytes: n})
		})
	}
}

// le64 and putLE64 are little-endian 8-byte codecs used across the fabric
// and the DFI ring protocol.
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
