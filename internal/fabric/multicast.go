package fabric

import (
	"dfi/internal/sim"
	"dfi/internal/transport"
)

// MulticastGroup models InfiniBand unreliable-datagram multicast with
// switch-side replication: a sender serializes a message once on its own
// link; the switch fans it out to every member's receive link in parallel.
//
// As with real UD multicast, delivery is unreliable: a message arriving at
// a member with no posted receive is dropped, and loss can additionally be
// injected with Config.MulticastLoss. Reliability (credits, NACKs,
// sequence numbers) is the responsibility of the layer above — DFI's
// replicate flow implements it.
type MulticastGroup struct {
	c       *Cluster
	members []*McEndpoint

	// detached marks members that were dropped from the group (an evicted
	// flow target): the switch stops replicating to their port, so they
	// neither receive traffic nor count drops.
	detached []bool
}

// McEndpoint is one member's attachment to a multicast group: a receive
// queue and a completion queue.
type McEndpoint struct {
	group *MulticastGroup
	node  *Node
	recvq []RecvWR
	rcq   *CQ

	// Drops counts messages lost at this endpoint (no posted receive or
	// injected loss).
	Drops int64
}

// CreateMulticast builds a multicast group over the given member nodes and
// returns one endpoint per member, in order.
func (c *Cluster) CreateMulticast(members ...*Node) *MulticastGroup {
	g := &MulticastGroup{c: c}
	for _, n := range members {
		g.members = append(g.members, &McEndpoint{group: g, node: n, rcq: c.NewCQ()})
	}
	g.detached = make([]bool, len(g.members))
	return g
}

// Detach removes member i from switch-side replication: subsequent Sends
// skip its port. Idempotent. The endpoint object stays valid so a later
// Reattach can replace it.
func (g *MulticastGroup) Detach(i int) { g.detached[i] = true }

// Detached reports whether member i is currently detached.
func (g *MulticastGroup) Detached(i int) bool { return g.detached[i] }

// Reattach re-joins slot i to the group on node n with a fresh endpoint
// (empty receive queue, fresh CQ) and resumes switch-side replication to
// it. Stale receives posted by the slot's previous incarnation are gone —
// exactly the semantics of re-joining an IB multicast group.
func (g *MulticastGroup) Reattach(i int, n *Node) *McEndpoint {
	ep := &McEndpoint{group: g, node: n, rcq: g.c.NewCQ()}
	g.members[i] = ep
	g.detached[i] = false
	return ep
}

// Member returns the endpoint of member i.
func (g *MulticastGroup) Member(i int) *McEndpoint { return g.members[i] }

// Members returns the number of group members.
func (g *MulticastGroup) Members() int { return len(g.members) }

// EndpointFor returns the endpoint attached to node n, or nil.
func (g *MulticastGroup) EndpointFor(n *Node) *McEndpoint {
	for _, ep := range g.members {
		if ep.node == n {
			return ep
		}
	}
	return nil
}

// PostRecv posts a receive buffer at the endpoint. Unlike RC queue pairs,
// a UD message that finds no posted receive is dropped, so the layer above
// must pre-populate the queue (DFI sizes it by its credit score).
func (ep *McEndpoint) PostRecv(buf []byte, id uint64) {
	ep.recvq = append(ep.recvq, RecvWR{Buf: buf, ID: id})
}

// RecvCQ returns the endpoint's receive completion queue.
func (ep *McEndpoint) RecvCQ() transport.CompletionQueue { return ep.rcq }

// Node returns the endpoint's node.
func (ep *McEndpoint) Node() *Node { return ep.node }

// Owner returns the endpoint's node as a transport endpoint.
func (ep *McEndpoint) Owner() transport.Endpoint { return ep.node }

// DropCount returns the number of messages lost at this endpoint.
func (ep *McEndpoint) DropCount() int64 { return ep.Drops }

// Send multicasts src from the given node to every member endpoint
// (including the sender's own endpoint if it is a member, unless
// excludeSelf). The sender's link is used exactly once; replication
// happens in the switch, which is why replicate-flow bandwidth can exceed
// the sender's link speed (Figure 8b in the paper).
func (g *MulticastGroup) Send(p transport.Ctx, from *Node, src []byte, excludeSelf bool) {
	cfg := &g.c.cfg
	from.Compute(p, cfg.PostOverhead)

	k := g.c.K
	ser := cfg.serialization(len(src))
	txStart, txEnd := from.reserveTx(k.Now()+cfg.NICStartup, ser)
	from.bytesTx += int64(len(src))
	from.msgsTx++

	var staged []byte
	k.At(txEnd, func() {
		staged = make([]byte, len(src))
		copy(staged, src)
	})

	arriveSwitch := txStart + cfg.Propagation + cfg.SwitchDelay
	for mi, ep := range g.members {
		ep := ep
		if g.detached[mi] {
			continue // evicted member: the switch no longer replicates to it
		}
		if excludeSelf && ep.node == from {
			continue
		}
		// Each member's delivery draws its own fault verdict (real UD
		// multicast loss is per receive port, not per message).
		fv := g.c.fault(OpSend, from, ep.node, arriveSwitch+ser)
		disp := Delivered
		if fv.drop {
			disp = Dropped
		}
		g.c.trace(OpSend, from, ep.node, len(src), k.Now(), arriveSwitch+ser+fv.delay, disp)
		if ep.node == from {
			// Loopback delivery does not traverse the switch twice; model
			// it as arriving after the local serialization only.
			g.deliver(ep, txEnd, ser, &staged, fv)
			continue
		}
		g.deliver(ep, arriveSwitch, ser, &staged, fv)
	}
}

// deliver schedules arrival of a staged message at one endpoint under the
// fault verdict fv.
func (g *MulticastGroup) deliver(ep *McEndpoint, from sim.Time, ser sim.Time, staged *[]byte, fv verdict) {
	cfg := &g.c.cfg
	k := g.c.K
	_, rxEnd := ep.node.reserveRx(from, ser)
	arrive := func() {
		if len(ep.recvq) == 0 {
			ep.Drops++ // UD: no posted receive, packet lost
			return
		}
		wr := ep.recvq[0]
		ep.recvq = ep.recvq[1:]
		n := copy(wr.Buf, *staged)
		ep.node.bytesRx += int64(n)
		ep.rcq.push(Completion{ID: wr.ID, Op: OpRecv, Bytes: n, Buf: wr.Buf})
	}
	k.At(rxEnd+fv.delay, func() {
		if fv.drop || (cfg.MulticastLoss > 0 && k.Rand().Float64() < cfg.MulticastLoss) {
			ep.Drops++
			return
		}
		arrive()
	})
	if fv.duplicate {
		k.At(rxEnd+fv.delay+cfg.Faults.dupDelay(), arrive)
	}
}
