package fabric

import (
	"strings"
	"testing"

	"dfi/internal/sim"
)

func TestRecorderAggregatesAndCaps(t *testing.T) {
	k, c := testCluster(t, 3)
	rec := NewRecorder(2)
	c.SetTracer(rec)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 1024)
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			qp.Write(p, make([]byte, 100), Addr{MR: mr}, WriteOptions{})
		}
		buf := make([]byte, 16)
		qp.ReadSync(p, buf, Addr{MR: mr})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 6 {
		t.Fatalf("Total = %d, want 6", rec.Total())
	}
	if len(rec.Ops) != 2 {
		t.Fatalf("retained %d ops, cap 2", len(rec.Ops))
	}
	var sb strings.Builder
	rec.Summary(&sb, 3)
	out := sb.String()
	for _, want := range []string{"traced 6 operations", "WRITE", "READ", "node0 → node1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	rec.Log(&sb)
	if !strings.Contains(sb.String(), "further operations (log capped)") {
		t.Fatalf("log missing cap notice:\n%s", sb.String())
	}
}

func TestTracerObservesAtomicsAndSends(t *testing.T) {
	k, c := testCluster(t, 2)
	rec := NewRecorder(0)
	c.SetTracer(rec)
	qa, qb := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 8)
	qb.PostRecv(make([]byte, 8), 0)
	k.Spawn("p", func(p *sim.Proc) {
		qa.FetchAdd(p, Addr{MR: mr}, 1)
		qa.CompareSwap(p, Addr{MR: mr}, 1, 2)
		qa.Send(p, []byte("hi"), false, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[OpKind]int{}
	for _, op := range rec.Ops {
		kinds[op.Kind]++
		if op.Arrived < op.Posted {
			t.Fatalf("op delivered before posted: %+v", op)
		}
	}
	if kinds[OpFetchAdd] != 1 || kinds[OpCompareSwap] != 1 || kinds[OpSend] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestRecorderSeparatesDroppedFromDelivered(t *testing.T) {
	// Regression: dropped ops' bytes used to be folded into the delivered
	// message-byte total and the per-pair traffic map, overstating what a
	// flow actually moved under a fault plan.
	rec := NewRecorder(0)
	rec.WireOverheadBytes = 42
	rec.Trace(TraceOp{Kind: OpWrite, From: 0, To: 1, Bytes: 100})
	rec.Trace(TraceOp{Kind: OpWrite, From: 0, To: 1, Bytes: 40, Disposition: Dropped})
	rec.Trace(TraceOp{Kind: OpWrite, From: 0, To: 1, Bytes: 25, Disposition: Injected})
	if got := rec.MessageBytes(); got != 125 {
		t.Fatalf("MessageBytes = %d, want 125 (delivered 100 + injected 25)", got)
	}
	if got := rec.DroppedBytes(); got != 40 {
		t.Fatalf("DroppedBytes = %d, want 40", got)
	}
	var sb strings.Builder
	rec.Summary(&sb, 1)
	out := sb.String()
	for _, want := range []string{
		"traced 3 operations, 125 message bytes delivered",
		// wire estimate covers delivered ops only: 125 + 2*42
		"≈209 wire bytes incl. 42 B/message framing overhead",
		"1 dropped (40 bytes never delivered)",
		"1 duplicate deliveries injected (+25 bytes delivered)",
		"node0 → node1  125 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Without a tracer installed, verbs must work unchanged (nil hook).
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("p", func(p *sim.Proc) {
		qp.Write(p, make([]byte, 8), Addr{MR: mr}, WriteOptions{})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
