package fabric

import "time"

// Config holds the calibrated cost model of the simulated fabric. The
// defaults approximate the paper's testbed: InfiniBand EDR 4x (100 Gbps)
// ConnectX-5 NICs behind one SB7890 switch.
type Config struct {
	// LinkBandwidth is the per-direction link speed in bytes per second.
	// 100 Gbps ≈ 12.5e9 B/s on the wire; we use the effective data rate.
	LinkBandwidth float64

	// Propagation is the one-way cable + PHY delay between a NIC and the
	// switch (applied twice per hop: NIC→switch and switch→NIC combined).
	Propagation time.Duration

	// SwitchDelay is the switch forwarding latency per message.
	SwitchDelay time.Duration

	// PostOverhead is the CPU+doorbell cost a process pays to post one work
	// request (WRITE/READ/SEND/atomic).
	PostOverhead time.Duration

	// InlineSaving is subtracted from the NIC-side start-up cost for writes
	// at or below InlineThreshold bytes (payload rides in the WQE, saving a
	// DMA read).
	InlineSaving    time.Duration
	InlineThreshold int

	// WireOverheadBytes is added to every message's serialized size
	// (headers, CRCs); it makes tiny messages bandwidth-inefficient.
	WireOverheadBytes int

	// NICStartup is the fixed NIC processing time per work request before
	// serialization begins. It bounds the achievable message rate.
	NICStartup time.Duration

	// CompletionDelay is the lag between the last byte leaving the sender
	// (or the ack arriving, folded in) and the completion entry appearing
	// in the sender's CQ.
	CompletionDelay time.Duration

	// PollCost is the CPU cost of one CQ poll.
	PollCost time.Duration

	// DetectDelay models memory-polling granularity on the target: the gap
	// between a commit into a memory region and a polling process observing
	// it.
	DetectDelay time.Duration

	// AtomicRemoteCost is the NIC-side cost to execute a remote atomic
	// (fetch-and-add / CAS) at the responder, covering the PCIe round trip
	// and serialization of concurrent atomics to the same NIC.
	AtomicRemoteCost time.Duration

	// CopyPayload controls whether WRITE/SEND/READ payload bytes are
	// actually copied. Tests run with true (end-to-end data integrity);
	// large bandwidth sweeps may disable it — footers (the CommitTail of a
	// write) are always copied so protocol metadata stays exact.
	CopyPayload bool

	// MulticastLoss is the probability that a multicast delivery to one
	// member is dropped (unreliable transport).
	MulticastLoss float64

	// Seed seeds the loss-injection and backoff randomness via the kernel.
	Seed int64

	// Faults, when non-nil, makes the fabric misbehave according to the
	// plan: probabilistic verb drops, extra delivery delay and jitter,
	// duplication, reordering, link flaps, and whole-node crashes. See
	// fault.go for the exact semantics. Nil injects nothing.
	Faults *FaultPlan
}

// DefaultConfig returns the calibrated cost model described in DESIGN.md §6.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth:     12.5e9, // 100 Gbps
		Propagation:       250 * time.Nanosecond,
		SwitchDelay:       120 * time.Nanosecond,
		PostOverhead:      75 * time.Nanosecond,
		InlineSaving:      60 * time.Nanosecond,
		InlineThreshold:   220,
		WireOverheadBytes: 42,
		NICStartup:        80 * time.Nanosecond,
		CompletionDelay:   300 * time.Nanosecond,
		PollCost:          40 * time.Nanosecond,
		DetectDelay:       80 * time.Nanosecond,
		AtomicRemoteCost:  150 * time.Nanosecond,
		CopyPayload:       true,
		MulticastLoss:     0,
		Seed:              1,
	}
}

// ControlBytes is the largest payload that rides the control lane (high
// priority service level): small READs and atomics bypass the bulk FIFO.
const ControlBytes = 256

// serialization returns the wire time for a message with the given payload
// size.
func (c *Config) serialization(bytes int) time.Duration {
	wire := float64(bytes + c.WireOverheadBytes)
	return time.Duration(wire / c.LinkBandwidth * 1e9)
}
