package fabric

import (
	"time"

	"dfi/internal/sim"
	"dfi/internal/transport"
)

// This file is the fabric-backend adapter: the only place where the
// transport interfaces meet the fabric's concrete types. *Cluster
// implements transport.Transport, *Node transport.Endpoint, *QP
// transport.Queue, *CQ transport.CompletionQueue, *MemoryRegion
// transport.Region and *McEndpoint transport.GroupEndpoint directly;
// MulticastGroup keeps its concrete method set for fabric tests (which
// reach into member endpoints), so mcGroup wraps it for transport.Group.

var (
	_ transport.Transport       = (*Cluster)(nil)
	_ transport.Endpoint        = (*Node)(nil)
	_ transport.Queue           = (*QP)(nil)
	_ transport.CompletionQueue = (*CQ)(nil)
	_ transport.Region          = (*MemoryRegion)(nil)
	_ transport.GroupEndpoint   = (*McEndpoint)(nil)
	_ transport.Group           = mcGroup{}
)

// node asserts a transport endpoint back to the fabric's concrete node.
func node(ep transport.Endpoint) *Node {
	n, ok := ep.(*Node)
	if !ok {
		panic("fabric: endpoint is not a fabric node")
	}
	return n
}

// Dial connects endpoints a and b with a reliable queue pair.
func (c *Cluster) Dial(a, b transport.Endpoint) (transport.Queue, transport.Queue) {
	qa, qb := c.CreateQPPair(node(a), node(b))
	return qa, qb
}

// OpenRegion registers a memory region of the given size on ep.
func (c *Cluster) OpenRegion(ep transport.Endpoint, size int) transport.Region {
	return c.RegisterMemory(node(ep), size)
}

// Multicast creates an unreliable multicast group over the members.
func (c *Cluster) Multicast(members ...transport.Endpoint) transport.Group {
	nodes := make([]*Node, len(members))
	for i, m := range members {
		nodes[i] = node(m)
	}
	return mcGroup{g: c.CreateMulticast(nodes...)}
}

// NewCond returns a condition variable parked on the sim kernel.
func (c *Cluster) NewCond() transport.Cond {
	return simCond{c: sim.NewCond(c.K)}
}

// Spawn starts fn as a new sim process named name.
func (c *Cluster) Spawn(parent transport.Ctx, name string, fn func(transport.Ctx)) {
	proc(parent).Spawn(name, func(sp *sim.Proc) { fn(sp) })
}

// CopiesPayload reports whether verbs move payload bytes (see
// Config.CopyPayload; the bench profile models timing only).
func (c *Cluster) CopiesPayload() bool { return c.cfg.CopyPayload }

// SwitchEndpoint returns a fresh in-network-processing endpoint.
func (c *Cluster) SwitchEndpoint() transport.Endpoint { return c.NewSwitchNode() }

// simCond adapts *sim.Cond to transport.Cond.
type simCond struct{ c *sim.Cond }

func (s simCond) Wait(p transport.Ctx) { s.c.Wait(proc(p)) }
func (s simCond) WaitTimeout(p transport.Ctx, d time.Duration) bool {
	return s.c.WaitTimeout(proc(p), d)
}
func (s simCond) Signal()    { s.c.Signal() }
func (s simCond) Broadcast() { s.c.Broadcast() }

// mcGroup adapts *MulticastGroup to transport.Group.
type mcGroup struct{ g *MulticastGroup }

func (m mcGroup) Send(p transport.Ctx, from transport.Endpoint, src []byte, excludeSelf bool) {
	m.g.Send(p, node(from), src, excludeSelf)
}

func (m mcGroup) Members() int { return m.g.Members() }

func (m mcGroup) Member(i int) transport.GroupEndpoint { return m.g.Member(i) }

func (m mcGroup) EndpointFor(ep transport.Endpoint) transport.GroupEndpoint {
	if e := m.g.EndpointFor(node(ep)); e != nil {
		return e
	}
	return nil
}

func (m mcGroup) Detach(i int) { m.g.Detach(i) }

func (m mcGroup) Detached(i int) bool { return m.g.Detached(i) }

func (m mcGroup) Reattach(i int, ep transport.Endpoint) transport.GroupEndpoint {
	return m.g.Reattach(i, node(ep))
}
