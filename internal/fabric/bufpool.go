package fabric

import (
	"math/bits"
)

// The fabric snapshots ("stages") the bytes a NIC would DMA-read for every
// WRITE/READ in flight. Staging buffers are recycled through size-classed
// per-cluster freelists instead of allocating per operation: a bandwidth
// flow stages one 8 KiB segment per WRITE, so the data path would otherwise
// allocate at wire rate. The freelists are plain slices, not sync.Pools:
// the kernel serializes all access, and — unlike sync.Pool — a GC cycle
// cannot empty them, which would silently reintroduce per-WRITE
// allocations into the steady state.

// stagedBuf boxes a recycled staging buffer; passing the box (rather than
// the slice) around avoids re-boxing on every recycle.
type stagedBuf struct{ b []byte }

// stagedGet returns a staging buffer of length n backed by a recycled
// power-of-two allocation. Recycled buffers are not zeroed: callers must
// only read back regions they wrote (stageInto documents the contract).
func (c *Cluster) stagedGet(n int) *stagedBuf {
	if n <= 0 {
		return &stagedBuf{}
	}
	class := bits.Len(uint(n - 1))
	if class >= len(c.stagedFree) {
		return &stagedBuf{b: make([]byte, n)}
	}
	if fl := c.stagedFree[class]; len(fl) > 0 {
		sb := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		c.stagedFree[class] = fl[:len(fl)-1]
		sb.b = sb.b[:n]
		return sb
	}
	return &stagedBuf{b: make([]byte, n, 1<<class)}
}

// stagedPut recycles a buffer obtained from stagedGet. Buffers whose
// capacity is not an exact size class (oversized one-off allocations) are
// dropped on the floor.
func (c *Cluster) stagedPut(sb *stagedBuf) {
	cp := cap(sb.b)
	if cp == 0 || cp&(cp-1) != 0 {
		return
	}
	class := bits.Len(uint(cp)) - 1
	if class >= len(c.stagedFree) {
		return
	}
	sb.b = sb.b[:cp]
	c.stagedFree[class] = append(c.stagedFree[class], sb)
}

// stagedRef counts the scheduled commit events still reading a shared
// staging buffer; the last release returns it to the cluster freelist. All
// accesses happen in scheduler or process context of one kernel, which the
// baton-passing handoff serializes.
type stagedRef struct {
	buf    *stagedBuf
	refs   int
	pooled bool // obtained from the cluster freelist (vs embedded in a writeOp)
}

func (r *stagedRef) release(c *Cluster) {
	r.refs--
	if r.refs == 0 {
		if r.buf != nil {
			c.stagedPut(r.buf)
			r.buf = nil
		}
		if r.pooled {
			r.pooled = false
			c.srefFree = append(c.srefFree, r)
		}
	}
}

// stagedRefGet returns a recycled reference holder initialized to refs
// references; release recycles it when the count drains.
func (c *Cluster) stagedRefGet(refs int) *stagedRef {
	var r *stagedRef
	if n := len(c.srefFree); n > 0 {
		r = c.srefFree[n-1]
		c.srefFree[n-1] = nil
		c.srefFree = c.srefFree[:n-1]
	} else {
		r = new(stagedRef)
	}
	r.refs = refs
	r.pooled = true
	return r
}

// stageInto snapshots the bytes the NIC would DMA-read into dst. With
// payload copying disabled only the trailing tail bytes (protocol metadata)
// starting at body are retained; the body region of a recycled buffer then
// holds stale bytes, which is safe because commit copies the body back out
// only when CopyPayload is set.
func stageInto(dst, src []byte, body int, copyPayload bool) {
	if copyPayload {
		copy(dst, src)
		return
	}
	copy(dst[body:], src[body:])
}
