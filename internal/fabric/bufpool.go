package fabric

import (
	"math/bits"
	"sync"
)

// The fabric snapshots ("stages") the bytes a NIC would DMA-read for every
// WRITE/READ in flight. Staging buffers are recycled through size-classed
// sync.Pools instead of allocating per operation: a bandwidth flow stages
// one 8 KiB segment per WRITE, so the data path would otherwise allocate at
// wire rate.

// stagedBuf boxes a pooled staging buffer; pooling the box (rather than the
// slice) avoids an interface allocation on every Put.
type stagedBuf struct{ b []byte }

// stagedPools[i] serves buffers of capacity 1<<i.
var stagedPools [28]sync.Pool

// stagedGet returns a staging buffer of length n backed by a pooled
// power-of-two allocation. Recycled buffers are not zeroed: callers must
// only read back regions they wrote (stageInto documents the contract).
func stagedGet(n int) *stagedBuf {
	if n <= 0 {
		return &stagedBuf{}
	}
	class := bits.Len(uint(n - 1))
	if class >= len(stagedPools) {
		return &stagedBuf{b: make([]byte, n)}
	}
	if v := stagedPools[class].Get(); v != nil {
		sb := v.(*stagedBuf)
		sb.b = sb.b[:n]
		return sb
	}
	return &stagedBuf{b: make([]byte, n, 1<<class)}
}

// stagedPut recycles a buffer obtained from stagedGet. Buffers whose
// capacity is not an exact size class (oversized one-off allocations) are
// dropped on the floor.
func stagedPut(sb *stagedBuf) {
	c := cap(sb.b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c)) - 1
	if class >= len(stagedPools) {
		return
	}
	sb.b = sb.b[:c]
	stagedPools[class].Put(sb)
}

// stagedRef counts the scheduled commit events still reading a shared
// staging buffer; the last release returns it to the pool. All accesses
// happen in scheduler or process context of one kernel, which the baton-
// passing handoff serializes.
type stagedRef struct {
	buf  *stagedBuf
	refs int
}

func (r *stagedRef) release() {
	r.refs--
	if r.refs == 0 && r.buf != nil {
		stagedPut(r.buf)
		r.buf = nil
	}
}

// stageInto snapshots the bytes the NIC would DMA-read into dst. With
// payload copying disabled only the trailing tail bytes (protocol metadata)
// starting at body are retained; the body region of a recycled buffer then
// holds stale bytes, which is safe because commit copies the body back out
// only when CopyPayload is set.
func stageInto(dst, src []byte, body int, copyPayload bool) {
	if copyPayload {
		copy(dst, src)
		return
	}
	copy(dst[body:], src[body:])
}
