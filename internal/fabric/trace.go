package fabric

import (
	"time"

	"dfi/internal/transport"
)

// Tracing types live in dfi/internal/transport so every backend shares
// one Tracer/Recorder surface; the fabric re-exports them under their
// historical names. SetTracer below implements the transport.Transport
// hook for the DES backend.

// Disposition classifies how the fabric handled a traced operation.
type Disposition = transport.Disposition

// Dispositions.
const (
	Delivered = transport.Delivered
	Dropped   = transport.Dropped
	Injected  = transport.Injected
)

// TraceOp is one observed verb execution.
type TraceOp = transport.TraceOp

// Tracer observes fabric operations. Implementations must not block
// (they run inline with verb posting).
type Tracer = transport.Tracer

// Recorder is a Tracer that accumulates operations in memory.
type Recorder = transport.Recorder

// NewRecorder returns an empty recorder retaining at most cap ops.
func NewRecorder(cap int) *Recorder { return transport.NewRecorder(cap) }

// SetTracer installs a tracer on the cluster (nil disables tracing).
func (c *Cluster) SetTracer(t Tracer) { c.tracer = t }

// trace reports an op to the installed tracer, if any.
func (c *Cluster) trace(kind OpKind, from, to *Node, bytes int, posted, arrived time.Duration, disp Disposition) {
	if c.tracer == nil {
		return
	}
	c.tracer.Trace(TraceOp{
		Kind: kind, From: from.id, To: to.id, Bytes: bytes,
		Posted: posted, Arrived: arrived, Disposition: disp,
	})
}
