package fabric

import (
	"bytes"
	"testing"
	"time"

	"dfi/internal/sim"
)

func testCluster(t *testing.T, n int) (*sim.Kernel, *Cluster) {
	t.Helper()
	k := sim.New(7)
	k.Deadline = 10 * time.Minute
	return k, NewCluster(k, n, DefaultConfig())
}

func TestWriteDeliversPayload(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	src := []byte("hello, remote memory!")

	k.Spawn("writer", func(p *sim.Proc) {
		qp.Write(p, src, Addr{MR: mr, Off: 8}, WriteOptions{Signaled: true, ID: 42})
		comp := qp.SendCQ().Wait(p)
		if comp.ID != 42 || comp.Op != OpWrite {
			t.Errorf("completion = %+v", comp)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mr.Bytes()[8:8+len(src)], src) {
		t.Fatalf("payload not delivered: %q", mr.Bytes()[8:8+len(src)])
	}
}

func TestWriteLatencyIsMicrosecondScale(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	var elapsed time.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		qp.Write(p, make([]byte, 16), Addr{MR: mr}, WriteOptions{})
		mr.WaitChange(p, time.Second)
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 200*time.Nanosecond || elapsed > 3*time.Microsecond {
		t.Fatalf("16B write one-way latency = %v, want sub-3µs", elapsed)
	}
}

func TestFooterCommitsAfterPayload(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 1<<14)
	seg := make([]byte, 8192)
	for i := range seg {
		seg[i] = 0xAB
	}
	seg[len(seg)-1] = 0xFF // footer marker

	var sawPayloadWithoutFooter, sawFooterWithoutPayload bool
	k.Spawn("writer", func(p *sim.Proc) {
		qp.Write(p, seg, Addr{MR: mr}, WriteOptions{CommitTail: 8})
	})
	k.Spawn("observer", func(p *sim.Proc) {
		for i := 0; i < 10000; i++ {
			footer := mr.Bytes()[len(seg)-1] == 0xFF
			payload := mr.Bytes()[0] == 0xAB
			if payload && !footer {
				sawPayloadWithoutFooter = true
			}
			if footer && !payload {
				sawFooterWithoutPayload = true
			}
			if footer {
				return
			}
			p.Sleep(time.Nanosecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sawFooterWithoutPayload {
		t.Fatal("footer observed before payload: increasing-address DMA order violated")
	}
	if !sawPayloadWithoutFooter {
		t.Fatal("never observed payload-before-footer window; two-phase commit not modelled")
	}
}

func TestUnsignaledReuseBeforeCompletionCorrupts(t *testing.T) {
	// Overwriting the source buffer immediately after posting (before the
	// NIC DMA-read finishes) corrupts the delivered data. This is the
	// hazard DFI's selective signaling exists to prevent.
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 8192)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = 1
	}
	k.Spawn("hasty-writer", func(p *sim.Proc) {
		qp.Write(p, src, Addr{MR: mr}, WriteOptions{})
		for i := range src {
			src[i] = 2 // reuse immediately — no completion awaited
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if mr.Bytes()[0] != 2 {
		t.Fatalf("expected corrupted delivery (2), got %d", mr.Bytes()[0])
	}
}

func TestSignaledCompletionMakesReuseSafe(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 8192)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = 1
	}
	k.Spawn("careful-writer", func(p *sim.Proc) {
		qp.Write(p, src, Addr{MR: mr}, WriteOptions{Signaled: true})
		qp.SendCQ().Wait(p)
		for i := range src {
			src[i] = 2
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if mr.Bytes()[0] != 1 {
		t.Fatalf("delivery corrupted despite completion: got %d", mr.Bytes()[0])
	}
}

func TestSingleStreamReachesLinkBandwidth(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	const msg = 64 << 10
	const n = 200
	mr := c.RegisterMemory(c.Node(1), msg)
	src := make([]byte, msg)
	var elapsed time.Duration
	k.Spawn("stream", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < n; i++ {
			sig := i == n-1
			qp.Write(p, src, Addr{MR: mr}, WriteOptions{Signaled: sig})
		}
		qp.SendCQ().Wait(p)
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(msg*n) / elapsed.Seconds()
	max := c.Config().LinkBandwidth
	if bw < 0.85*max || bw > 1.01*max {
		t.Fatalf("single-stream bandwidth %.2e B/s, want ≈ link speed %.2e", bw, max)
	}
}

func TestIncastSharesReceiverLink(t *testing.T) {
	// 4 senders to one receiver: aggregate *delivered* bandwidth must be
	// capped by (and close to) the receiver's link speed. Senders finish
	// posting earlier — delivery queues on the congested RX link.
	k, c := testCluster(t, 5)
	const msg = 64 << 10
	const perSender = 50
	mrs := make([]*MemoryRegion, 4)
	for s := 0; s < 4; s++ {
		s := s
		qp, _ := c.CreateQPPair(c.Node(1+s), c.Node(0))
		mrs[s] = c.RegisterMemory(c.Node(0), msg)
		k.Spawn("sender", func(p *sim.Proc) {
			src := make([]byte, msg)
			for i := 0; i < perSender; i++ {
				qp.Write(p, src, Addr{MR: mrs[s]}, WriteOptions{Signaled: i == perSender-1})
			}
			qp.SendCQ().Wait(p)
		})
	}
	var lastDelivery time.Duration
	done := sim.NewWaitGroup(k)
	for s := 0; s < 4; s++ {
		s := s
		done.Add(1)
		k.Spawn("watcher", func(p *sim.Proc) {
			seen := uint64(0)
			for seen < perSender {
				if !mrs[s].WaitCommit(p, mrs[s].CommitSeq(), time.Second) {
					break
				}
				seen = mrs[s].CommitSeq()
			}
			if p.Now() > lastDelivery {
				lastDelivery = p.Now()
			}
			done.Done()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	agg := float64(4*perSender*msg) / lastDelivery.Seconds()
	max := c.Config().LinkBandwidth
	if agg > 1.02*max {
		t.Fatalf("incast aggregate %.2e exceeds receiver link %.2e", agg, max)
	}
	if agg < 0.8*max {
		t.Fatalf("incast aggregate %.2e too far below receiver link %.2e", agg, max)
	}
}

func TestReadRoundTrip(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	copy(mr.Bytes()[16:], "remote-data")
	k.Spawn("reader", func(p *sim.Proc) {
		dst := make([]byte, 11)
		rtt := qp.ReadSync(p, dst, Addr{MR: mr, Off: 16})
		if string(dst) != "remote-data" {
			t.Errorf("read %q", dst)
		}
		if rtt < 500*time.Nanosecond || rtt > 5*time.Microsecond {
			t.Errorf("read RTT = %v, want µs-scale round trip", rtt)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFetchAddReturnsOldAndSerializes(t *testing.T) {
	k, c := testCluster(t, 3)
	mr := c.RegisterMemory(c.Node(0), 8)
	seen := map[uint64]bool{}
	done := sim.NewWaitGroup(k)
	for s := 1; s <= 2; s++ {
		qp, _ := c.CreateQPPair(c.Node(s), c.Node(0))
		done.Add(1)
		k.Spawn("adder", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				old := qp.FetchAdd(p, Addr{MR: mr}, 1)
				if seen[old] {
					t.Errorf("duplicate sequence number %d", old)
				}
				seen[old] = true
			}
			done.Done()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("got %d unique values, want 20", len(seen))
	}
	if got := le64(mr.Bytes()); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
}

func TestCompareSwap(t *testing.T) {
	k, c := testCluster(t, 2)
	mr := c.RegisterMemory(c.Node(1), 8)
	putLE64(mr.Bytes(), 5)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	k.Spawn("cas", func(p *sim.Proc) {
		if old := qp.CompareSwap(p, Addr{MR: mr}, 5, 9); old != 5 {
			t.Errorf("first CAS old = %d", old)
		}
		if old := qp.CompareSwap(p, Addr{MR: mr}, 5, 11); old != 9 {
			t.Errorf("failed CAS old = %d", old)
		}
		if got := le64(mr.Bytes()); got != 9 {
			t.Errorf("value = %d, want 9", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvMatched(t *testing.T) {
	k, c := testCluster(t, 2)
	qa, qb := c.CreateQPPair(c.Node(0), c.Node(1))
	buf := make([]byte, 32)
	qb.PostRecv(buf, 9)
	k.Spawn("sender", func(p *sim.Proc) {
		qa.Send(p, []byte("ping"), false, 0)
	})
	var comp Completion
	k.Spawn("receiver", func(p *sim.Proc) {
		comp = qb.RecvCQ().Wait(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if comp.ID != 9 || comp.Bytes != 4 || string(buf[:4]) != "ping" {
		t.Fatalf("comp=%+v buf=%q", comp, buf[:4])
	}
}

func TestSendBeforeRecvIsQueuedOnRC(t *testing.T) {
	k, c := testCluster(t, 2)
	qa, qb := c.CreateQPPair(c.Node(0), c.Node(1))
	k.Spawn("sender", func(p *sim.Proc) {
		qa.Send(p, []byte("early"), false, 0)
	})
	buf := make([]byte, 8)
	k.Spawn("late-receiver", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		qb.PostRecv(buf, 1)
		comp := qb.RecvCQ().Wait(p)
		if comp.Bytes != 5 || string(buf[:5]) != "early" {
			t.Errorf("comp=%+v buf=%q", comp, buf[:5])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastFanOut(t *testing.T) {
	k, c := testCluster(t, 4)
	g := c.CreateMulticast(c.Node(1), c.Node(2), c.Node(3))
	bufs := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		bufs[i] = make([]byte, 16)
		g.Member(i).PostRecv(bufs[i], uint64(i))
	}
	k.Spawn("mc-sender", func(p *sim.Proc) {
		g.Send(p, c.Node(0), []byte("replicated"), false)
	})
	got := 0
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("member", func(p *sim.Proc) {
			g.Member(i).RecvCQ().Wait(p)
			if string(bufs[i][:10]) != "replicated" {
				t.Errorf("member %d got %q", i, bufs[i][:10])
			}
			got++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("delivered to %d members", got)
	}
}

func TestMulticastDropsWithoutPostedRecv(t *testing.T) {
	k, c := testCluster(t, 2)
	g := c.CreateMulticast(c.Node(1))
	k.Spawn("mc-sender", func(p *sim.Proc) {
		g.Send(p, c.Node(0), []byte("lost"), false)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Member(0).Drops != 1 {
		t.Fatalf("drops = %d, want 1", g.Member(0).Drops)
	}
}

func TestMulticastLossInjection(t *testing.T) {
	k := sim.New(7)
	cfg := DefaultConfig()
	cfg.MulticastLoss = 0.5
	c := NewCluster(k, 2, cfg)
	g := c.CreateMulticast(c.Node(1))
	const n = 400
	for i := 0; i < n; i++ {
		g.Member(0).PostRecv(make([]byte, 8), uint64(i))
	}
	k.Spawn("mc-sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			g.Send(p, c.Node(0), []byte("x"), false)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	drops := g.Member(0).Drops
	if drops < n/4 || drops > 3*n/4 {
		t.Fatalf("drops = %d of %d, want roughly half", drops, n)
	}
}

func TestMulticastUsesSenderLinkOnce(t *testing.T) {
	// Aggregate delivered bandwidth across 8 members should far exceed the
	// sender's link speed (switch-side replication, Figure 8b).
	k, c := testCluster(t, 9)
	members := make([]*Node, 8)
	for i := range members {
		members[i] = c.Node(i + 1)
	}
	g := c.CreateMulticast(members...)
	const msg = 8 << 10
	const n = 200
	for i := 0; i < 8; i++ {
		for j := 0; j < n; j++ {
			g.Member(i).PostRecv(make([]byte, msg), uint64(j))
		}
	}
	var elapsed time.Duration
	k.Spawn("mc-sender", func(p *sim.Proc) {
		src := make([]byte, msg)
		for j := 0; j < n; j++ {
			g.Send(p, c.Node(0), src, false)
		}
	})
	drained := 0
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("member", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				g.Member(i).RecvCQ().Wait(p)
			}
			if p.Now() > elapsed {
				elapsed = p.Now()
			}
			drained++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if drained != 8 {
		t.Fatalf("only %d members drained", drained)
	}
	agg := float64(8*n*msg) / elapsed.Seconds()
	if agg < 3*c.Config().LinkBandwidth {
		t.Fatalf("aggregate multicast bandwidth %.2e should exceed sender link %.2e several times", agg, c.Config().LinkBandwidth)
	}
}

func TestMemoryAccounting(t *testing.T) {
	k, c := testCluster(t, 1)
	_ = k
	mr := c.RegisterMemory(c.Node(0), 1<<20)
	if c.Node(0).RegisteredBytes() != 1<<20 {
		t.Fatalf("registered = %d", c.Node(0).RegisteredBytes())
	}
	mr.Deregister()
	if c.Node(0).RegisteredBytes() != 0 {
		t.Fatalf("after deregister = %d", c.Node(0).RegisteredBytes())
	}
}

func TestComputeScalesWithCPU(t *testing.T) {
	k, c := testCluster(t, 1)
	c.Node(0).CPUScale = 0.5
	var elapsed time.Duration
	k.Spawn("straggler", func(p *sim.Proc) {
		c.Node(0).Compute(p, time.Millisecond)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 2*time.Millisecond {
		t.Fatalf("elapsed = %v, want 2ms at half speed", elapsed)
	}
}

func TestNoCopyModeStillCommitsTail(t *testing.T) {
	k := sim.New(7)
	cfg := DefaultConfig()
	cfg.CopyPayload = false
	c := NewCluster(k, 2, cfg)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 8192)
	seg := make([]byte, 4096)
	seg[0] = 0x77
	seg[4095] = 0x99
	k.Spawn("w", func(p *sim.Proc) {
		qp.Write(p, seg, Addr{MR: mr}, WriteOptions{CommitTail: 8})
		mr.WaitChange(p, time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if mr.Bytes()[0] == 0x77 {
		t.Fatal("payload copied despite CopyPayload=false")
	}
	if mr.Bytes()[4095] != 0x99 {
		t.Fatal("tail (footer) not committed in no-copy mode")
	}
}
