package fabric

import (
	"time"

	"dfi/internal/sim"
)

// Fault injection: a FaultPlan makes the simulated fabric misbehave so the
// recovery machinery of the layers above (DFI ring retransmission, NACK
// recovery, SourceTimeout failure detection) is actually exercised. The
// paper names fault tolerance as future work (§8); this file is the
// substrate for this repo's implementation of it.
//
// Semantics, chosen to mirror what each layer of a real deployment can and
// cannot observe:
//
//   - Probabilistic drops model silent loss above the verb layer (a lossy
//     fabric, a gray failure, a misbehaving switch). The remote effect of
//     the verb is lost, but the sender's signaled completion still fires
//     for WRITE/SEND — like an unreliable-connection QP, the completion
//     only proves the message left the NIC. A dropped READ produces no
//     completion at all (the completion *is* the response).
//   - Dropped atomics are modelled as transport-level retries: the atomic
//     executes exactly once but the caller pays an extra retry penalty.
//     (Duplicating an atomic would silently corrupt sequencers.)
//   - Delay/jitter/reordering shift the *delivery* instant of a message;
//     link serialization is unaffected. Commit ordering within one WRITE
//     (payload body before footer tail) is always preserved.
//   - Duplication re-applies a WRITE's remote commit (or delivers a SEND
//     twice) after DuplicateDelay — the classic at-least-once hazard.
//   - A link flap drops everything crossing the link inside the window.
//   - A crashed node neither transmits nor receives from its crash time
//     on, and generates no further completions: a peer blocked on its
//     completions must time out (which is exactly what the DFI writer's
//     bounded waits are for). Atomics addressed to a crashed node return
//     zero after crashAtomicPenalty.
//
// All randomness is drawn from the kernel's seeded source, so a chaos run
// is exactly as reproducible as a healthy one.

// FaultPlan configures fault injection for a cluster. The zero value (and
// a nil plan) injects nothing.
type FaultPlan struct {
	// Per-verb probabilistic drop. DropWrite loses the remote effect
	// while keeping the sender's completion; DropRead loses the response
	// (and with it the completion); DropSend loses UD multicast
	// deliveries outright but only delays RC SENDs (the NIC
	// retransmits); DropAtomic charges a transport-retry penalty instead
	// of losing the op.
	DropWrite  float64
	DropRead   float64
	DropSend   float64
	DropAtomic float64

	// Delay is added to every delivery; DelayJitter adds a uniformly
	// distributed extra in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration

	// Duplicate is the probability that a WRITE's remote commit is applied
	// twice (or a SEND delivered twice), the second time DuplicateDelay
	// after the first (default 2µs when unset).
	Duplicate      float64
	DuplicateDelay time.Duration

	// Reorder is the probability that a delivery is additionally delayed
	// by ReorderDelay (default 5µs when unset), letting later messages
	// overtake it.
	Reorder      float64
	ReorderDelay time.Duration

	// Links adds per-link faults on top of the cluster-wide settings.
	Links []LinkFault

	// Crashes maps a node id to its crash time: from that instant the node
	// neither transmits nor receives, and produces no completions.
	Crashes map[int]time.Duration

	// Control-plane faults, consumed by dfi/internal/registry (the
	// registry models its RPCs analytically rather than as fabric
	// messages, so its faults live here beside the data-plane knobs and
	// share the plan's reproducible randomness). RegistryDrop is the
	// probability that one registry RPC leg is lost — the client retries
	// after its retry timeout. RegistryDelay/RegistryJitter stretch every
	// leg. RegistryCrashMaster crashes the current master of a
	// *replicated* registry at the given virtual time, forcing a standby
	// promotion (ignored by standalone registries, which have no standby
	// to fail over to).
	RegistryDrop        float64
	RegistryDelay       time.Duration
	RegistryJitter      time.Duration
	RegistryCrashMaster time.Duration
}

// LinkFault scopes extra faults to one directed link. From/To are node
// ids; -1 matches any node.
type LinkFault struct {
	From, To int

	// Drop adds to the per-verb drop probability on this link.
	Drop float64

	// Delay/DelayJitter add to the cluster-wide delivery delay.
	Delay       time.Duration
	DelayJitter time.Duration

	// Flaps are windows of virtual time during which the link drops
	// every delivery.
	Flaps []FlapWindow
}

// FlapWindow is one link-down interval [Start, End).
type FlapWindow struct {
	Start, End time.Duration
}

// contains reports whether t falls inside the window.
func (w FlapWindow) contains(t sim.Time) bool {
	return t >= w.Start && t < w.End
}

// CrashNode schedules a whole-node crash at time t (convenience).
func (fp *FaultPlan) CrashNode(id int, t time.Duration) *FaultPlan {
	if fp.Crashes == nil {
		fp.Crashes = make(map[int]time.Duration)
	}
	fp.Crashes[id] = t
	return fp
}

// crashAtomicPenalty is how long a remote atomic addressed to a crashed
// node blocks before returning zero (the QP error-completion path of real
// verbs, collapsed into a fixed delay because atomics have no error
// return here).
const crashAtomicPenalty = 100 * time.Microsecond

// Crashed reports whether the node is crashed at time t under the
// cluster's fault plan.
func (n *Node) Crashed(t sim.Time) bool {
	fp := n.cluster.cfg.Faults
	if fp == nil || fp.Crashes == nil {
		return false
	}
	at, ok := fp.Crashes[n.id]
	return ok && t >= at
}

// verdict is one fault decision for one message.
type verdict struct {
	drop           bool
	dropCompletion bool // crash: suppress the sender-side completion too
	delay          time.Duration
	duplicate      bool
}

// dropProb returns the plan's drop probability for the verb kind.
func (fp *FaultPlan) dropProb(kind OpKind) float64 {
	switch kind {
	case OpWrite:
		return fp.DropWrite
	case OpRead:
		return fp.DropRead
	case OpSend, OpRecv:
		return fp.DropSend
	case OpFetchAdd, OpCompareSwap:
		return fp.DropAtomic
	}
	return 0
}

// fault draws the fault verdict for one message of the given kind posted
// now on the from→to link, delivered no earlier than deliverAt (used for
// flap-window checks). Must run in process or scheduler context (it
// consumes kernel randomness).
func (c *Cluster) fault(kind OpKind, from, to *Node, deliverAt sim.Time) verdict {
	fp := c.cfg.Faults
	if fp == nil {
		return verdict{}
	}
	var v verdict
	now := c.K.Now()
	if from.Crashed(now) || to.Crashed(deliverAt) {
		v.drop = true
		v.dropCompletion = true
		return v
	}
	rng := c.K.Rand()
	p := fp.dropProb(kind)
	v.delay = fp.Delay
	if fp.DelayJitter > 0 {
		v.delay += time.Duration(rng.Int63n(int64(fp.DelayJitter)))
	}
	for i := range fp.Links {
		lf := &fp.Links[i]
		if (lf.From != -1 && lf.From != from.id) || (lf.To != -1 && lf.To != to.id) {
			continue
		}
		p += lf.Drop
		v.delay += lf.Delay
		if lf.DelayJitter > 0 {
			v.delay += time.Duration(rng.Int63n(int64(lf.DelayJitter)))
		}
		for _, w := range lf.Flaps {
			if w.contains(deliverAt + v.delay) {
				v.drop = true
				return v
			}
		}
	}
	if p > 0 && rng.Float64() < p {
		v.drop = true
		return v
	}
	if fp.Reorder > 0 && rng.Float64() < fp.Reorder {
		d := fp.ReorderDelay
		if d == 0 {
			d = 5 * time.Microsecond
		}
		v.delay += d
	}
	if fp.Duplicate > 0 && (kind == OpWrite || kind == OpSend) && rng.Float64() < fp.Duplicate {
		v.duplicate = true
	}
	return v
}

// dupDelay returns the lag of a duplicated delivery.
func (fp *FaultPlan) dupDelay() time.Duration {
	if fp == nil || fp.DuplicateDelay == 0 {
		return 2 * time.Microsecond
	}
	return fp.DuplicateDelay
}

// SetFaults installs (or clears, with nil) the cluster's fault plan at
// runtime.
func (c *Cluster) SetFaults(fp *FaultPlan) { c.cfg.Faults = fp }

// Faults returns the cluster's fault plan (nil when fault-free).
func (c *Cluster) Faults() *FaultPlan { return c.cfg.Faults }
