package fabric

import (
	"bytes"
	"testing"
	"time"

	"dfi/internal/sim"
)

func faultCluster(t *testing.T, n int, fp *FaultPlan) (*sim.Kernel, *Cluster) {
	t.Helper()
	k := sim.New(7)
	k.Deadline = 10 * time.Minute
	cfg := DefaultConfig()
	cfg.Faults = fp
	return k, NewCluster(k, n, cfg)
}

func TestFaultDropWrite(t *testing.T) {
	k, c := faultCluster(t, 2, &FaultPlan{DropWrite: 1})
	rec := NewRecorder(0)
	c.SetTracer(rec)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	src := []byte("must not arrive")

	k.Spawn("writer", func(p *sim.Proc) {
		qp.Write(p, src, Addr{MR: mr}, WriteOptions{Signaled: true, ID: 1})
		// UC-like loss semantics: the sender still sees its completion.
		if _, ok := qp.SendCQ().WaitTimeout(p, time.Second); !ok {
			t.Error("dropped WRITE should still complete locally")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(mr.Bytes(), []byte("arrive")) {
		t.Fatal("dropped WRITE committed remote memory")
	}
	if rec.Dropped() != 1 {
		t.Fatalf("recorder dropped = %d, want 1", rec.Dropped())
	}
}

func TestFaultDropReadLosesCompletion(t *testing.T) {
	k, c := faultCluster(t, 2, &FaultPlan{DropRead: 1})
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("reader", func(p *sim.Proc) {
		dst := make([]byte, 16)
		qp.Read(p, dst, Addr{MR: mr}, true, 9)
		if _, ok := qp.SendCQ().WaitTimeout(p, time.Second); ok {
			t.Error("dropped READ must not complete")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDelayShiftsDelivery(t *testing.T) {
	const extra = 50 * time.Microsecond
	k, c := faultCluster(t, 2, &FaultPlan{Delay: extra})
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	var elapsed time.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		qp.Write(p, make([]byte, 16), Addr{MR: mr}, WriteOptions{})
		mr.WaitChange(p, time.Second)
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < extra {
		t.Fatalf("delivery took %v, want ≥ %v injected delay", elapsed, extra)
	}
}

func TestFaultDuplicateWritePreservesTailOrder(t *testing.T) {
	k, c := faultCluster(t, 2, &FaultPlan{Duplicate: 1})
	rec := NewRecorder(0)
	c.SetTracer(rec)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 128)
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	k.Spawn("writer", func(p *sim.Proc) {
		qp.Write(p, src, Addr{MR: mr}, WriteOptions{CommitTail: 16})
		p.Sleep(time.Millisecond)
		if !bytes.Equal(mr.Bytes()[:64], src) {
			t.Error("duplicated WRITE corrupted payload")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Injected() != 1 {
		t.Fatalf("recorder injected = %d, want 1", rec.Injected())
	}
}

func TestFaultLinkScopedDrop(t *testing.T) {
	fp := &FaultPlan{Links: []LinkFault{{From: 0, To: 1, Drop: 1}}}
	k, c := faultCluster(t, 3, fp)
	q01, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	q02, _ := c.CreateQPPair(c.Node(0), c.Node(2))
	mr1 := c.RegisterMemory(c.Node(1), 64)
	mr2 := c.RegisterMemory(c.Node(2), 64)
	k.Spawn("writer", func(p *sim.Proc) {
		q01.Write(p, []byte("to-node1"), Addr{MR: mr1}, WriteOptions{})
		q02.Write(p, []byte("to-node2"), Addr{MR: mr2}, WriteOptions{})
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(mr1.Bytes(), []byte("node1")) {
		t.Fatal("0→1 link drop did not apply")
	}
	if !bytes.Contains(mr2.Bytes(), []byte("node2")) {
		t.Fatal("0→2 traffic should be unaffected")
	}
}

func TestFaultLinkFlapWindow(t *testing.T) {
	fp := &FaultPlan{Links: []LinkFault{{
		From: -1, To: -1,
		Flaps: []FlapWindow{{Start: 10 * time.Microsecond, End: 20 * time.Microsecond}},
	}}}
	k, c := faultCluster(t, 2, fp)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("writer", func(p *sim.Proc) {
		qp.Write(p, []byte{1}, Addr{MR: mr, Off: 0}, WriteOptions{}) // before flap
		p.Sleep(12 * time.Microsecond)
		qp.Write(p, []byte{2}, Addr{MR: mr, Off: 1}, WriteOptions{}) // inside flap
		p.Sleep(20 * time.Microsecond)
		qp.Write(p, []byte{3}, Addr{MR: mr, Off: 2}, WriteOptions{}) // after flap
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := mr.Bytes()[:3]
	if got[0] != 1 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("flap window delivery = %v, want [1 0 3]", got)
	}
}

func TestFaultNodeCrashSilencesBothDirections(t *testing.T) {
	fp := (&FaultPlan{}).CrashNode(1, 5*time.Microsecond)
	k, c := faultCluster(t, 2, fp)
	qp, qpB := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	mr0 := c.RegisterMemory(c.Node(0), 64)
	k.Spawn("survivor", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond) // past the crash
		qp.Write(p, []byte("late"), Addr{MR: mr}, WriteOptions{Signaled: true, ID: 7})
		if _, ok := qp.SendCQ().WaitTimeout(p, time.Second); ok {
			t.Error("WRITE to crashed node must not complete")
		}
		if v := qp.FetchAdd(p, Addr{MR: mr}, 1); v != 0 {
			t.Errorf("atomic to crashed node returned %d, want 0", v)
		}
	})
	k.Spawn("crashed", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		// Posts from a crashed node also go nowhere.
		qpB.Write(p, []byte("ghost"), Addr{MR: mr0}, WriteOptions{Signaled: true, ID: 8})
		if _, ok := qpB.SendCQ().WaitTimeout(p, time.Second); ok {
			t.Error("WRITE from crashed node must not complete")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(mr.Bytes(), []byte("late")) || bytes.Contains(mr0.Bytes(), []byte("ghost")) {
		t.Fatal("crashed node exchanged data")
	}
}

func TestFaultAtomicDropIsRetryNotLoss(t *testing.T) {
	k, c := faultCluster(t, 2, &FaultPlan{DropAtomic: 1})
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("adder", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			qp.FetchAdd(p, Addr{MR: mr}, 1)
		}
		// Exactly-once execution despite 100% "drop": each op is a retry.
		if v := le64(mr.Bytes()[:8]); v != 4 {
			t.Errorf("counter = %d, want 4", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultMulticastPerMemberDrop(t *testing.T) {
	fp := &FaultPlan{Links: []LinkFault{{From: -1, To: 2, Drop: 1}}}
	k, c := faultCluster(t, 3, fp)
	g := c.CreateMulticast(c.Node(0), c.Node(1), c.Node(2))
	for i := 1; i <= 2; i++ {
		g.Member(i).PostRecv(make([]byte, 32), uint64(i))
	}
	k.Spawn("sender", func(p *sim.Proc) {
		g.Send(p, c.Node(0), []byte("fanout"), true)
		p.Sleep(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Member(1).RecvCQ().Len() != 1 {
		t.Fatal("member 1 should have received the message")
	}
	if g.Member(2).RecvCQ().Len() != 0 || g.Member(2).Drops != 1 {
		t.Fatalf("member 2 recv=%d drops=%d, want 0/1", g.Member(2).RecvCQ().Len(), g.Member(2).Drops)
	}
}

func TestFaultsDeterministicUnderSeed(t *testing.T) {
	run := func() (int, int) {
		k := sim.New(42)
		k.Deadline = 10 * time.Minute
		cfg := DefaultConfig()
		cfg.Faults = &FaultPlan{DropWrite: 0.3, DelayJitter: 3 * time.Microsecond}
		c := NewCluster(k, 2, cfg)
		rec := NewRecorder(0)
		c.SetTracer(rec)
		qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
		mr := c.RegisterMemory(c.Node(1), 256)
		k.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				qp.Write(p, []byte{byte(i)}, Addr{MR: mr, Off: i}, WriteOptions{})
				p.Sleep(time.Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Total(), rec.Dropped()
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("chaos not reproducible: (%d,%d) vs (%d,%d)", t1, d1, t2, d2)
	}
	if d1 == 0 || d1 == t1 {
		t.Fatalf("expected partial loss, got %d/%d", d1, t1)
	}
}
