package fabric

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"dfi/internal/sim"
)

// TestPropertyWriteIntegrity: arbitrary sequences of WRITEs (random
// sizes, offsets, commit tails) from multiple senders into disjoint
// regions always deliver byte-exact payloads once the last signaled
// completion is observed and the data has drained.
func TestPropertyWriteIntegrity(t *testing.T) {
	type params struct {
		Senders uint8
		Writes  uint8
		Size    uint16
		Tail    uint8
	}
	prop := func(ps params) bool {
		senders := int(ps.Senders%3) + 1
		writes := int(ps.Writes%20) + 1
		size := int(ps.Size%4000) + 1
		tail := int(ps.Tail) % (size + 1)

		k := sim.New(5)
		k.Deadline = time.Minute
		c := NewCluster(k, senders+1, DefaultConfig())
		dst := c.Node(senders)
		mrs := make([]*MemoryRegion, senders)
		srcs := make([][]byte, senders)

		for s := 0; s < senders; s++ {
			s := s
			mrs[s] = c.RegisterMemory(dst, size)
			qp, _ := c.CreateQPPair(c.Node(s), dst)
			srcs[s] = make([]byte, size)
			for i := range srcs[s] {
				srcs[s][i] = byte(s*31 + i)
			}
			k.Spawn(fmt.Sprintf("w%d", s), func(p *sim.Proc) {
				buf := make([]byte, size)
				for w := 0; w < writes; w++ {
					copy(buf, srcs[s])
					qp.Write(p, buf, Addr{MR: mrs[s]}, WriteOptions{
						Signaled:   true,
						CommitTail: tail,
					})
					qp.SendCQ().Wait(p) // completion before reusing buf
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Log(err)
			return false
		}
		for s := 0; s < senders; s++ {
			if !bytes.Equal(mrs[s].Bytes(), srcs[s]) {
				t.Logf("params %+v: sender %d payload corrupted", ps, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFetchAddLinearizable: concurrent fetch-and-adds from many
// nodes return a permutation of 0..n-1 and leave the counter at n,
// regardless of node count and per-node operation counts.
func TestPropertyFetchAddLinearizable(t *testing.T) {
	prop := func(nodes, perNode uint8) bool {
		n := int(nodes%5) + 1
		ops := int(perNode%30) + 1

		k := sim.New(3)
		k.Deadline = time.Minute
		c := NewCluster(k, n+1, DefaultConfig())
		mr := c.RegisterMemory(c.Node(n), 8)
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			qp, _ := c.CreateQPPair(c.Node(i), c.Node(n))
			k.Spawn(fmt.Sprintf("a%d", i), func(p *sim.Proc) {
				for j := 0; j < ops; j++ {
					old := qp.FetchAdd(p, Addr{MR: mr}, 1)
					if seen[old] {
						panic("duplicate")
					}
					seen[old] = true
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Log(err)
			return false
		}
		total := uint64(n * ops)
		if le64(mr.Bytes()) != total || uint64(len(seen)) != total {
			return false
		}
		for v := uint64(0); v < total; v++ {
			if !seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySendRecvFIFO: two-sided messages between a pair of nodes
// are delivered reliably and in order for arbitrary message counts and
// sizes.
func TestPropertySendRecvFIFO(t *testing.T) {
	prop := func(count uint8, size uint16) bool {
		n := int(count%40) + 1
		sz := int(size%2048) + 8

		k := sim.New(9)
		k.Deadline = time.Minute
		c := NewCluster(k, 2, DefaultConfig())
		qa, qb := c.CreateQPPair(c.Node(0), c.Node(1))

		k.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				msg := make([]byte, sz)
				msg[0] = byte(i)
				qa.Send(p, msg, false, uint64(i))
			}
		})
		ok := true
		k.Spawn("receiver", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				buf := make([]byte, sz)
				qb.PostRecv(buf, uint64(i))
				comp := qb.RecvCQ().Wait(p)
				if comp.Bytes != sz || comp.Buf[0] != byte(i) {
					ok = false
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Log(err)
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
