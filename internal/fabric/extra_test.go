package fabric

import (
	"testing"
	"time"

	"dfi/internal/sim"
)

func TestInlineThresholdReducesSmallWriteLatency(t *testing.T) {
	oneWay := func(size int) time.Duration {
		k, c := testCluster(t, 2)
		qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
		mr := c.RegisterMemory(c.Node(1), 64<<10)
		var d time.Duration
		k.Spawn("w", func(p *sim.Proc) {
			start := p.Now()
			qp.Write(p, make([]byte, size), Addr{MR: mr}, WriteOptions{})
			mr.WaitChange(p, time.Second)
			d = p.Now() - start
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	small := oneWay(64)   // inlined
	large := oneWay(1024) // not inlined
	cfg := DefaultConfig()
	// The large write pays the full NIC startup plus more serialization;
	// the inline saving must be visible beyond serialization alone.
	serDelta := cfg.serialization(1024) - cfg.serialization(64)
	if large-small <= serDelta {
		t.Fatalf("no inline saving visible: small=%v large=%v serDelta=%v", small, large, serDelta)
	}
}

func TestControlLaneBypassesBulkBacklog(t *testing.T) {
	// Regression for the footer-probe pathology: a small READ issued
	// behind megabytes of queued WRITEs must not wait for the backlog.
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 1<<20)
	var rtt time.Duration
	k.Spawn("w", func(p *sim.Proc) {
		big := make([]byte, 1<<20)
		for i := 0; i < 16; i++ { // ≈ 1.4ms of TX backlog
			qp.Write(p, big, Addr{MR: mr}, WriteOptions{})
		}
		buf := make([]byte, 16)
		rtt = qp.ReadSync(p, buf, Addr{MR: mr})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt > 5*time.Microsecond {
		t.Fatalf("small READ RTT %v queued behind bulk backlog", rtt)
	}
}

func TestLargeReadUsesBulkLane(t *testing.T) {
	// Reads above ControlBytes serialize on the links like any transfer.
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 1<<20)
	var rtt time.Duration
	k.Spawn("r", func(p *sim.Proc) {
		buf := make([]byte, 512<<10)
		rtt = qp.ReadSync(p, buf, Addr{MR: mr})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	min := dcfg.serialization(512 << 10)
	if rtt < min {
		t.Fatalf("512 KiB read RTT %v below its serialization time %v", rtt, min)
	}
}

func TestCQWaitTimeout(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("p", func(p *sim.Proc) {
		if _, ok := qp.SendCQ().WaitTimeout(p, 2*time.Microsecond); ok {
			t.Error("completion from nowhere")
		}
		if p.Now() < 2*time.Microsecond {
			t.Errorf("timed out early at %v", p.Now())
		}
		qp.Write(p, make([]byte, 8), Addr{MR: mr}, WriteOptions{Signaled: true, ID: 5})
		if comp, ok := qp.SendCQ().WaitTimeout(p, time.Second); !ok || comp.ID != 5 {
			t.Errorf("comp = %+v ok=%v", comp, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCQWaitNonEmptyDoesNotConsume(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 64)
	k.Spawn("p", func(p *sim.Proc) {
		qp.Write(p, make([]byte, 8), Addr{MR: mr}, WriteOptions{Signaled: true, ID: 9})
		if !qp.SendCQ().WaitNonEmpty(p, time.Second) {
			t.Fatal("no completion")
		}
		if qp.SendCQ().Len() != 1 {
			t.Fatalf("WaitNonEmpty consumed the completion")
		}
		if comp, ok := qp.SendCQ().Poll(p); !ok || comp.ID != 9 {
			t.Fatalf("poll after WaitNonEmpty: %+v %v", comp, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPostedRecvsCount(t *testing.T) {
	k, c := testCluster(t, 2)
	qa, qb := c.CreateQPPair(c.Node(0), c.Node(1))
	qb.PostRecv(make([]byte, 8), 0)
	qb.PostRecv(make([]byte, 8), 1)
	if qb.PostedRecvs() != 2 {
		t.Fatalf("PostedRecvs = %d", qb.PostedRecvs())
	}
	k.Spawn("s", func(p *sim.Proc) {
		qa.Send(p, []byte("x"), false, 0)
	})
	k.Spawn("r", func(p *sim.Proc) {
		qb.RecvCQ().Wait(p)
		if qb.PostedRecvs() != 1 {
			t.Errorf("PostedRecvs = %d after one delivery", qb.PostedRecvs())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchNodeUnboundedIngress(t *testing.T) {
	// Many writers into a switch node: deliveries are not serialized at a
	// single ingress link (unlike a regular node — the incast test).
	k, c := testCluster(t, 5)
	sw := c.NewSwitchNode()
	const msg = 256 << 10
	mrs := make([]*MemoryRegion, 4)
	var last time.Duration
	done := sim.NewWaitGroup(k)
	for s := 0; s < 4; s++ {
		s := s
		qp, _ := c.CreateQPPair(c.Node(s), sw)
		mrs[s] = c.RegisterMemory(sw, msg)
		done.Add(1)
		k.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				qp.Write(p, make([]byte, msg), Addr{MR: mrs[s]}, WriteOptions{Signaled: i == 7})
			}
			// The ACK-based completion implies delivery already happened.
			qp.SendCQ().Wait(p)
			if p.Now() > last {
				last = p.Now()
			}
			done.Done()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 × 8 × 256 KiB = 8 MiB; per-sender link time is 8 × 256 KiB ≈ 176 µs.
	// A bounded ingress would serialize to ≈ 4×; unbounded stays near 1×.
	dcfg := DefaultConfig()
	perSender := dcfg.serialization(msg) * 8
	if last > 2*perSender {
		t.Fatalf("switch ingress appears serialized: %v for per-sender %v", last, perSender)
	}
}

func TestMulticastEndpointFor(t *testing.T) {
	_, c := testCluster(t, 3)
	g := c.CreateMulticast(c.Node(1), c.Node(2))
	if g.EndpointFor(c.Node(2)) != g.Member(1) {
		t.Fatal("EndpointFor returned wrong endpoint")
	}
	if g.EndpointFor(c.Node(0)) != nil {
		t.Fatal("EndpointFor for non-member should be nil")
	}
	if g.Members() != 2 {
		t.Fatalf("Members = %d", g.Members())
	}
}

func TestWriteBoundsPanics(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 16)
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds write did not panic")
			}
		}()
		qp.Write(p, make([]byte, 32), Addr{MR: mr}, WriteOptions{})
	})
	_ = k.Run()
}

func TestWriteWrongPeerPanics(t *testing.T) {
	k, c := testCluster(t, 3)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(2), 16) // not the peer
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("write to non-peer MR did not panic")
			}
		}()
		qp.Write(p, make([]byte, 8), Addr{MR: mr}, WriteOptions{})
	})
	_ = k.Run()
}

func TestLinkUtilizationCounters(t *testing.T) {
	k, c := testCluster(t, 2)
	qp, _ := c.CreateQPPair(c.Node(0), c.Node(1))
	mr := c.RegisterMemory(c.Node(1), 1<<20)
	k.Spawn("w", func(p *sim.Proc) {
		qp.Write(p, make([]byte, 1<<20), Addr{MR: mr}, WriteOptions{Signaled: true})
		qp.SendCQ().Wait(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	want := dcfg.serialization(1 << 20)
	if c.Node(0).TxBusy() != want || c.Node(1).RxBusy() != want {
		t.Fatalf("tx=%v rx=%v want %v", c.Node(0).TxBusy(), c.Node(1).RxBusy(), want)
	}
}
