// Package fabric simulates an RDMA-capable network fabric (nodes, NICs,
// links, one switch) on top of the dfi/internal/sim discrete-event kernel.
//
// It exposes the InfiniBand verb surface that the DFI implementation in the
// paper is written against: registered memory regions, reliable-connection
// queue pairs with one-sided WRITE/READ and remote atomics, two-sided
// SEND/RECV, completion queues with signaled/unsignaled work requests, and
// unreliable-datagram multicast with switch-side replication.
//
// Timing follows an analytic FIFO-server link model: each NIC has a TX and
// an RX queue with an availability time; a message reserves
// serialization time on the sender's TX queue, crosses the switch after a
// propagation + forwarding delay, and reserves serialization time on the
// receiver's RX queue (cut-through, so a single stream achieves full link
// bandwidth while incast congestion is modelled faithfully).
//
// WRITEs commit into target memory in increasing address order: the payload
// body is committed strictly before the trailing CommitTail bytes, so
// protocols that place metadata footers after the payload (as DFI does) are
// exercised against the real hazard.
package fabric

import (
	"fmt"
	"time"

	"dfi/internal/sim"
	"dfi/internal/transport"
)

// proc asserts the DES execution context. The fabric's blocking waits park
// on sim conds, so only *sim.Proc contexts (which satisfy transport.Ctx
// structurally) can drive them.
func proc(p transport.Ctx) *sim.Proc {
	sp, ok := p.(*sim.Proc)
	if !ok {
		panic("fabric: context is not a *sim.Proc (the DES fabric runs only under the sim kernel)")
	}
	return sp
}

// Cluster is a set of simulated nodes connected through one switch.
type Cluster struct {
	K      *sim.Kernel
	cfg    Config
	nodes  []*Node
	tracer Tracer

	// Freelists for the pooled op-events of the steady-state data path.
	// They are plain slices, not sync.Pools: the kernel is single-threaded
	// so no locking is needed, and — unlike sync.Pool — a GC cycle cannot
	// empty them, which would silently reintroduce a per-WRITE allocation.
	wopFree    []*writeOp
	ropFree    []*readOp
	srefFree   []*stagedRef
	stagedFree [28][]*stagedBuf // staging buffers of capacity 1<<class
}

// NewCluster creates n nodes attached to k using the given cost model.
func NewCluster(k *sim.Kernel, n int, cfg Config) *Cluster {
	c := &Cluster{K: k, cfg: cfg}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &Node{
			cluster:  c,
			id:       i,
			CPUScale: 1.0,
		})
	}
	return c
}

// Config returns the cluster's cost model.
func (c *Cluster) Config() Config { return c.cfg }

// SetCopyPayload toggles payload copying at runtime (see Config.CopyPayload).
func (c *Cluster) SetCopyPayload(v bool) { c.cfg.CopyPayload = v }

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NewSwitchNode adds an in-network-processing endpoint: a node that
// represents compute inside the switch (e.g. InfiniBand SHARP reduction
// engines). Its ingress is unbounded — each sender is limited only by its
// own link — which is exactly why in-network aggregation sidesteps the
// incast cap of a combiner flow's target (paper §4.2.3/§5.4 future work).
func (c *Cluster) NewSwitchNode() *Node {
	n := &Node{cluster: c, id: len(c.nodes), CPUScale: 1.0, UnboundedRx: true}
	c.nodes = append(c.nodes, n)
	return n
}

// Node is one simulated server: a CPU (with a speed scale for straggler
// experiments), one NIC with full-duplex TX/RX link queues, and registered
// memory.
type Node struct {
	cluster *Cluster
	id      int

	// CPUScale scales compute durations: 0.5 halves the node's CPU
	// frequency (the paper's straggler setup). Network costs are
	// unaffected.
	CPUScale float64

	// UnboundedRx marks switch-resident endpoints (in-network processing à
	// la SHARP): every ingress port absorbs at line rate, so arriving
	// traffic is not serialized through a single receive link.
	UnboundedRx bool

	txFreeAt sim.Time // next instant the TX link can start serializing
	rxFreeAt sim.Time

	atomicFreeAt sim.Time // responder-side serialization of remote atomics

	memBytes  int64 // registered memory (accounting, §6.1.4)
	bytesTx   int64
	bytesRx   int64
	msgsTx    int64
	atomicsRx int64

	txBusy time.Duration // cumulative serialization time reserved on TX
	rxBusy time.Duration
}

// TxBusy and RxBusy return the cumulative serialization time reserved on
// the node's links — busy/elapsed is the link utilization.
func (n *Node) TxBusy() time.Duration { return n.txBusy }

// RxBusy returns cumulative RX serialization time.
func (n *Node) RxBusy() time.Duration { return n.rxBusy }

// ID returns the node index within its cluster.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Compute advances p's virtual time by d scaled by the node's CPU speed.
// All application CPU work in experiments must be charged through Compute
// so straggler scaling applies.
func (n *Node) Compute(p transport.Ctx, d time.Duration) {
	if n.CPUScale != 1.0 {
		d = time.Duration(float64(d) / n.CPUScale)
	}
	p.Sleep(d)
}

// RegisteredBytes returns the amount of memory registered on the node.
func (n *Node) RegisteredBytes() int64 { return n.memBytes }

// BytesTx returns the total payload bytes transmitted by the node's NIC.
func (n *Node) BytesTx() int64 { return n.bytesTx }

// BytesRx returns the total payload bytes received by the node's NIC.
func (n *Node) BytesRx() int64 { return n.bytesRx }

// MessagesTx returns the number of messages transmitted.
func (n *Node) MessagesTx() int64 { return n.msgsTx }

// reserveTx reserves serialization time on the node's TX link starting no
// earlier than `from`, returning the (start, end) of the reservation. Used
// for unreliable (multicast) sends, which have no end-to-end flow control.
func (n *Node) reserveTx(from sim.Time, ser time.Duration) (sim.Time, sim.Time) {
	start := from
	if n.txFreeAt > start {
		start = n.txFreeAt
	}
	end := start + ser
	n.txFreeAt = end
	return start, end
}

// reserveRx reserves serialization time on the node's RX link.
func (n *Node) reserveRx(from sim.Time, ser time.Duration) (sim.Time, sim.Time) {
	start := from
	if n.rxFreeAt > start {
		start = n.rxFreeAt
	}
	end := start + ser
	n.rxFreeAt = end
	return start, end
}

// reservePath reserves a reliable transfer of serialization time ser from
// node `from` to node `to`, starting no earlier than `earliest`, modelling
// cut-through switching. The sender's TX link is occupied for the
// message's serialization time; delivery additionally queues on the
// receiver's RX link, so incast congestion delays *delivery* (and with it
// every consumption-based signal: ring footers, credits, completive
// two-sided receives) without head-of-line blocking the sender's other
// destinations — NICs interleave QPs, and end-to-end flow control is the
// job of the protocols above (DFI's rings and credits).
func (c *Cluster) reservePath(from, to *Node, earliest sim.Time, ser time.Duration) (txStart, txEnd, rxEnd sim.Time) {
	txStart = earliest
	if from.txFreeAt > txStart {
		txStart = from.txFreeAt
	}
	txEnd = txStart + ser
	from.txFreeAt = txEnd
	from.txBusy += ser
	hop := c.cfg.Propagation + c.cfg.SwitchDelay
	rxStart := txStart + hop
	if !to.UnboundedRx && to.rxFreeAt > rxStart {
		rxStart = to.rxFreeAt
	}
	rxEnd = rxStart + ser
	if !to.UnboundedRx {
		to.rxFreeAt = rxEnd
		to.rxBusy += ser
	}
	return txStart, txEnd, rxEnd
}

// MemoryRegion is a registered memory region on one node, remotely
// accessible through queue pairs. Commit notifications wake local pollers
// (ConsumeWait-style loops) through the region's condition.
type MemoryRegion struct {
	node      *Node
	buf       []byte
	cond      *sim.Cond
	commitSeq uint64
}

// RegisterMemory allocates and registers size bytes on the node. The
// allocation is charged to the node's registered-memory accounting.
func (c *Cluster) RegisterMemory(n *Node, size int) *MemoryRegion {
	n.memBytes += int64(size)
	return &MemoryRegion{node: n, buf: make([]byte, size), cond: sim.NewCond(c.K)}
}

// Deregister releases the region's memory from the accounting.
func (mr *MemoryRegion) Deregister() {
	mr.node.memBytes -= int64(len(mr.buf))
}

// Bytes exposes the region's backing memory. Local reads/writes by the
// owning node's processes are free (they model plain loads/stores).
func (mr *MemoryRegion) Bytes() []byte { return mr.buf }

// Len returns the region size.
func (mr *MemoryRegion) Len() int { return len(mr.buf) }

// Node returns the owning node.
func (mr *MemoryRegion) Node() *Node { return mr.node }

// Owner returns the owning node as a transport endpoint.
func (mr *MemoryRegion) Owner() transport.Endpoint { return mr.node }

// Store copies src into the region at off. The DES kernel is
// single-threaded, so a plain copy is already synchronized with remote
// verbs; concurrent backends lock here.
func (mr *MemoryRegion) Store(off int, src []byte) {
	copy(mr.buf[off:off+len(src)], src)
}

// Load copies region bytes at off into dst (see Store).
func (mr *MemoryRegion) Load(off int, dst []byte) {
	copy(dst, mr.buf[off:off+len(dst)])
}

// CommitSeq returns the region's commit counter, incremented on every
// remote commit. Pollers snapshot it before scanning and pass the
// snapshot to WaitCommit, which makes the scan-then-wait sequence free of
// lost wake-ups.
func (mr *MemoryRegion) CommitSeq() uint64 { return mr.commitSeq }

// WaitCommit parks p until the commit counter passes `since` or until d
// elapses, reporting whether new commits arrived. On wake-up it charges
// the configured polling-detection granularity.
func (mr *MemoryRegion) WaitCommit(p transport.Ctx, since uint64, d time.Duration) bool {
	sp := proc(p)
	deadline := sp.Now() + d
	for mr.commitSeq == since {
		remain := deadline - sp.Now()
		if remain <= 0 {
			return false
		}
		if !mr.cond.WaitTimeout(sp, remain) && mr.commitSeq == since {
			return false
		}
	}
	sp.Sleep(mr.node.cluster.cfg.DetectDelay)
	return true
}

// WaitChange parks p until the next remote commit into the region, or until
// d elapses; it reports whether a commit occurred. A local memory poller
// uses this as a simulation-efficient stand-in for spinning; prefer the
// CommitSeq/WaitCommit pair when work happens between scan and wait.
func (mr *MemoryRegion) WaitChange(p transport.Ctx, d time.Duration) bool {
	return mr.WaitCommit(p, mr.commitSeq, d)
}

// notify records a commit and wakes pollers.
func (mr *MemoryRegion) notify() {
	mr.commitSeq++
	mr.cond.Broadcast()
}

// Addr names a location inside a memory region for remote access. The
// struct is shared with the transport layer; the fabric's verbs assert
// the region back to its concrete type with mrOf.
type Addr = transport.Addr

// mrOf asserts an address's region to the fabric's concrete type.
func mrOf(a Addr) *MemoryRegion {
	mr, ok := a.MR.(*MemoryRegion)
	if !ok {
		panic("fabric: Addr does not reference a fabric memory region")
	}
	return mr
}

// sliceOf bounds-checks and returns the n-byte window at the address.
func sliceOf(a Addr, n int) []byte {
	mr := mrOf(a)
	if a.Off < 0 || a.Off+n > len(mr.buf) {
		panic(fmt.Sprintf("fabric: remote access [%d,%d) outside MR of %d bytes", a.Off, a.Off+n, len(mr.buf)))
	}
	return mr.buf[a.Off : a.Off+n]
}
