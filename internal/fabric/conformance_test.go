package fabric_test

import (
	"testing"

	"dfi/internal/fabric"
	"dfi/internal/sim"
	"dfi/internal/transport"
	"dfi/internal/transport/transporttest"
)

// TestTransportConformance runs the shared transport semantics suite
// against the DES fabric, the reference backend.
func TestTransportConformance(t *testing.T) {
	transporttest.Run(t, func(n int) transporttest.Env {
		k := sim.New(1)
		c := fabric.NewCluster(k, n, fabric.DefaultConfig())
		env := transporttest.Env{
			T: c,
			Go: func(name string, fn func(transport.Ctx)) {
				k.Spawn(name, func(p *sim.Proc) { fn(p) })
			},
			Run: func() { k.Run() },
		}
		for i := 0; i < n; i++ {
			env.EP = append(env.EP, c.Node(i))
		}
		return env
	})
}
