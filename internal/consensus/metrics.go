package consensus

import (
	"time"

	"dfi/internal/metrics"
)

// latencyBounds are exponential histogram bounds from 1µs to ~8.4s
// (seconds, ×2 per step) — wide enough for every system the harness
// runs, coarse enough to stay a fixed 24 series.
func latencyBounds() []float64 {
	bounds := make([]float64, 0, 24)
	for b := 1e-6; b < 10; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// PublishMetrics records the run's results on m under the
// dfi_consensus_* namespace, labeled by system ("multipaxos",
// "nopaxos", "dare"). A Result is final — the run has completed — so
// the values are written once rather than collected live; the latency
// distribution is folded from the run histogram into Prometheus
// le-buckets.
func (r Result) PublishMetrics(m *metrics.Registry, system string) {
	lbl := metrics.Labels{"system": system}
	m.Gauge("dfi_consensus_throughput_rps", "Completed requests per second.", lbl).Set(r.Throughput)
	m.Gauge("dfi_consensus_latency_seconds", "Request latency quantile.",
		metrics.Labels{"system": system, "quantile": "0.5"}).Set(r.Median.Seconds())
	m.Gauge("dfi_consensus_latency_seconds", "Request latency quantile.",
		metrics.Labels{"system": system, "quantile": "0.95"}).Set(r.P95.Seconds())
	m.Counter("dfi_consensus_requests_completed_total", "Requests completed by the run.", lbl).
		Add(uint64(r.Completed))
	m.Counter("dfi_consensus_oum_gaps_total", "OUM sequence gaps handled (NOPaxos gap agreement).", lbl).
		Add(uint64(r.Gaps))
	if r.Latencies != nil {
		h := m.Histogram("dfi_consensus_request_latency_seconds",
			"Measured request latency distribution (warmup excluded).", latencyBounds(), lbl)
		r.Latencies.Each(func(upper time.Duration, count uint64) {
			h.ObserveN(upper.Seconds(), count)
		})
	}
}
