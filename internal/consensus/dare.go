package consensus

import (
	"encoding/binary"
	"fmt"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/sim"
	"dfi/internal/ycsb"
)

// RunDARE executes the DARE baseline (Poke & Hoefler, HPDC 2015): a
// replicated key-value store over a hand-crafted RDMA consensus protocol.
// It is implemented directly on the fabric's verbs — no DFI — and models
// the two properties the paper identifies as DARE's bottlenecks (§6.3.2):
//
//  1. Clients are closed-loop: each submits its next request only after
//     receiving the result of the previous one, bounding throughput by
//     clients/RTT regardless of replica capacity.
//  2. The leader's write protocol serializes requests: log replication
//     happens one batch at a time via one-sided WRITEs into follower
//     logs, and reads and writes are batched separately, so a mixed
//     stream keeps interrupting batches. Read batches are not free
//     either: lacking leases, DARE confirms leadership with a round to a
//     majority of followers before answering a read batch.
//
// Load is varied by the number of clients (cfg.Clients); cfg.Rate is
// ignored.
func RunDARE(cfg Config) (Result, error) {
	k, c := buildEnv(cfg)
	followers := cfg.Replicas - 1
	leaderNode := c.Node(0)

	// Follower logs: one-sided write targets.
	const entrySize = 64
	logSize := (cfg.Requests + 16) * entrySize
	followerLogs := make([]*fabric.MemoryRegion, followers)
	logQPs := make([]*fabric.QP, followers)
	for i := 0; i < followers; i++ {
		followerLogs[i] = c.RegisterMemory(c.Node(i+1), logSize)
		logQPs[i], _ = c.CreateQPPair(leaderNode, c.Node(i+1))
	}

	// Client connections to the leader.
	clientQPs := make([]*fabric.QP, cfg.Clients) // client end
	leaderQPs := make([]*fabric.QP, cfg.Clients) // leader end
	for i := 0; i < cfg.Clients; i++ {
		cq, lq := c.CreateQPPair(clientNode(c, cfg, i), leaderNode)
		clientQPs[i], leaderQPs[i] = cq, lq
	}

	rec := newRecorder(cfg.Requests)
	kv := NewKVStore(leaderNode, cfg.ExecCost)
	majority := followers/2 + 1

	// Message layout: reqid(8) op(8) key(8) value(8), zero-padded to 64B.
	const reqBytes = 64
	type request struct {
		client int
		id     uint64
		op     ycsb.Op
		key    int64
		value  int64
	}

	// Leader: drain client queues, then process batches — the maximal
	// prefix of same-type requests forms one batch (DARE's read/write
	// batch interruption).
	k.Spawn("dare-leader", func(p *sim.Proc) {
		for i := range leaderQPs {
			for r := 0; r < 4; r++ {
				leaderQPs[i].PostRecv(make([]byte, reqBytes), uint64(i))
			}
		}
		doneClients := 0
		var queue []request
		logTail := 0
		respond := func(req request, result int64) {
			var resp [16]byte
			binary.LittleEndian.PutUint64(resp[0:8], req.id)
			binary.LittleEndian.PutUint64(resp[8:16], uint64(result))
			leaderQPs[req.client].Send(p, resp[:], false, 0)
		}
		commitWrites := func(batch []request) {
			// Serialize the batch into one log region and replicate it
			// with one one-sided WRITE per follower; majority completion
			// commits (DARE's log replication).
			blob := make([]byte, len(batch)*entrySize)
			for i, req := range batch {
				binary.LittleEndian.PutUint64(blob[i*entrySize:], req.id)
				binary.LittleEndian.PutUint64(blob[i*entrySize+8:], uint64(req.key))
			}
			for f := 0; f < followers; f++ {
				logQPs[f].Write(p, blob, fabric.Addr{MR: followerLogs[f], Off: logTail},
					fabric.WriteOptions{Signaled: true, ID: uint64(f)})
			}
			// Majority commit: wait for the write completions of the first
			// majority followers (completions on distinct QPs arrive
			// independently; the slowest of the majority gates commit).
			for f := 0; f < majority; f++ {
				logQPs[f].SendCQ().Wait(p)
			}
			logTail += len(blob)
			for _, req := range batch {
				result := kv.Apply(p, req.op, req.key, req.value)
				respond(req, result)
			}
		}
		for doneClients < cfg.Clients || len(queue) > 0 {
			// Drain arrivals.
			for i := range leaderQPs {
				for leaderQPs[i].RecvCQ().Len() > 0 {
					comp, ok := leaderQPs[i].RecvCQ().Poll(p)
					if !ok {
						break
					}
					id := binary.LittleEndian.Uint64(comp.Buf[0:8])
					if id == ^uint64(0) {
						doneClients++
					} else {
						queue = append(queue, request{
							client: i,
							id:     id,
							op:     ycsb.Op(binary.LittleEndian.Uint64(comp.Buf[8:16])),
							key:    int64(binary.LittleEndian.Uint64(comp.Buf[16:24])),
							value:  int64(binary.LittleEndian.Uint64(comp.Buf[24:32])),
						})
					}
					leaderQPs[i].PostRecv(comp.Buf, comp.ID)
				}
			}
			if len(queue) == 0 {
				if doneClients >= cfg.Clients {
					break
				}
				// Idle: DARE's leader polls the client request regions at a
				// coarser granularity than a dedicated CQ wait.
				p.Sleep(500 * time.Nanosecond)
				continue
			}
			// Maximal same-type prefix forms the batch.
			kind := queue[0].op
			n := 1
			for n < len(queue) && queue[n].op == kind {
				n++
			}
			batch := queue[:n]
			queue = append([]request(nil), queue[n:]...)
			// Per-request protocol work at the leader (request-region
			// polling, log management, response bookkeeping): DARE's
			// hand-crafted data path keeps all of it on the leader.
			leaderNode.Compute(p, time.Duration(len(batch))*900*time.Nanosecond)
			if kind == ycsb.OpRead {
				// Leadership confirmation round: one-sided reads of a
				// majority of follower states gate the whole read batch.
				check := make([]byte, 8)
				for f := 0; f < majority; f++ {
					logQPs[f].Read(p, check, fabric.Addr{MR: followerLogs[f]}, true, 1<<40)
				}
				for f := 0; f < majority; f++ {
					logQPs[f].SendCQ().Wait(p)
				}
				for _, req := range batch {
					respond(req, kv.Apply(p, req.op, req.key, req.value))
				}
			} else {
				commitWrites(batch)
			}
		}
	})

	// Closed-loop clients.
	perClient := cfg.Requests / cfg.Clients
	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		k.Spawn(fmt.Sprintf("dare-client-%d", ci), func(p *sim.Proc) {
			qp := clientQPs[ci]
			gen := ycsb.New(cfg.ReadFraction, cfg.KeySpace, cfg.Seed+int64(ci))
			for i := 0; i < perClient; i++ {
				op, key := gen.Next()
				id := reqKey(ci, i)
				var req [reqBytes]byte
				binary.LittleEndian.PutUint64(req[0:8], id)
				binary.LittleEndian.PutUint64(req[8:16], uint64(op))
				binary.LittleEndian.PutUint64(req[16:24], key)
				binary.LittleEndian.PutUint64(req[24:32], uint64(i))
				rec.sent(id, p.Now())
				resp := make([]byte, 16)
				qp.PostRecv(resp, 0)
				qp.Send(p, req[:], false, 0)
				qp.RecvCQ().Wait(p) // closed loop: block on the result
				rec.completed(binary.LittleEndian.Uint64(resp[0:8]), p.Now())
			}
			var done [reqBytes]byte
			binary.LittleEndian.PutUint64(done[0:8], ^uint64(0))
			qp.Send(p, done[:], false, 0)
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	return rec.result(cfg.WarmupFraction), nil
}
