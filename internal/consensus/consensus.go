// Package consensus implements the paper's state machine replication use
// case (§4.3.2, §6.3.2): a replicated key-value store driven by
//
//   - Multi-Paxos composed from four DFI flows exactly as in Figure 3
//     (clients → leader shuffle, leader → followers replicate, followers →
//     leader vote shuffle, leader → clients response shuffle);
//   - NOPaxos over DFI's globally-ordered multicast replicate flow (the
//     OUM primitive of Li et al.), where clients themselves collect
//     replica responses; and
//   - DARE (Poke & Hoefler), the hand-crafted RDMA consensus baseline,
//     with its two documented limitations: clients are closed-loop (one
//     outstanding request each) and the leader's write protocol serializes
//     request batches, with mixed read/write streams interrupting batches.
//
// All three expose the same Run entry point returning throughput and
// latency percentiles for one load point; the Figure 15 sweep lives in
// dfi/internal/experiments.
package consensus

import (
	"fmt"
	"sort"
	"time"

	"dfi/internal/fabric"
	"dfi/internal/transport"
	"dfi/internal/schema"
	"dfi/internal/sim"
	"dfi/internal/stats"
	"dfi/internal/ycsb"
)

// Config describes one load point of the consensus experiment.
type Config struct {
	Replicas    int // leader + followers (paper: 5)
	Clients     int // paper: 6
	ClientNodes int // paper: 3

	// Rate is the aggregate offered load in requests/second for the
	// open-loop DFI systems (ignored by closed-loop DARE).
	Rate float64

	// Requests is the total number of requests to issue across clients.
	Requests int
	// WarmupFraction of early completions is excluded from latency stats.
	WarmupFraction float64

	ReadFraction float64
	KeySpace     uint64

	// ExecCost is the state-machine execution cost per operation.
	ExecCost time.Duration

	// MulticastLoss injects loss into the OUM flow (NOPaxos gap handling).
	MulticastLoss float64

	// GapAgreement makes NOPaxos replicas handle OUM sequence gaps
	// explicitly (the paper's gap agreement protocol): gaps surface to the
	// replica, which requests retransmission and counts the episode.
	// Without it, DFI's replicate flow recovers losses transparently.
	GapAgreement bool

	// CrashFollower / CrashAfterProposals emulate a follower replica
	// crashing mid-run (Multi-Paxos only): follower CrashFollower stops
	// participating — no more votes, no more consumption — after handling
	// CrashAfterProposals proposals. Zero CrashAfterProposals disables the
	// crash. Commits proceed on the surviving majority.
	CrashFollower       int
	CrashAfterProposals int

	// FailureTimeout bounds how long the protocol flows wait on a silent
	// peer before declaring it failed (plumbed into the flows'
	// SourceTimeout/RetransmitTimeout). Required when a crash is
	// configured; zero keeps all waits unbounded (failure-free operation).
	FailureTimeout time.Duration

	Seed int64
}

// DefaultConfig mirrors the paper's setup at laptop scale.
func DefaultConfig() Config {
	return Config{
		Replicas:       5,
		Clients:        6,
		ClientNodes:    3,
		Rate:           500_000,
		Requests:       6_000,
		WarmupFraction: 0.1,
		ReadFraction:   0.95,
		KeySpace:       100_000,
		ExecCost:       150 * time.Nanosecond,
		Seed:           7,
	}
}

// Result summarizes one load point.
type Result struct {
	Throughput float64 // completed requests per second
	Median     time.Duration
	P95        time.Duration
	Completed  int
	Gaps       int // OUM gaps handled (NOPaxos)

	// Latencies carries the full measured distribution (warmup excluded)
	// for richer reporting than the two percentiles above.
	Latencies *stats.Histogram
}

// String formats the headline metrics one line, as the experiment
// tables print them.
func (r Result) String() string {
	return fmt.Sprintf("tput=%.0f req/s median=%v p95=%v completed=%d", r.Throughput, r.Median, r.P95, r.Completed)
}

// RequestSchema is the 64-byte request tuple of the paper's experiment.
var RequestSchema = schema.MustNew(
	schema.Column{Name: "reqid", Type: schema.Uint64},
	schema.Column{Name: "client", Type: schema.Int64},
	schema.Column{Name: "op", Type: schema.Int64},
	schema.Column{Name: "key", Type: schema.Int64},
	schema.Column{Name: "value", Type: schema.Int64},
	schema.Column{Name: "pad", Type: schema.Char(24)},
)

// VoteSchema carries follower votes back to the leader.
var VoteSchema = schema.MustNew(
	schema.Column{Name: "reqid", Type: schema.Uint64},
	schema.Column{Name: "follower", Type: schema.Int64},
)

// ResponseSchema carries responses to clients; "leader" flags the
// leader's response (NOPaxos quorums must include it).
var ResponseSchema = schema.MustNew(
	schema.Column{Name: "reqid", Type: schema.Uint64},
	schema.Column{Name: "client", Type: schema.Int64},
	schema.Column{Name: "value", Type: schema.Int64},
	schema.Column{Name: "leader", Type: schema.Int64},
)

// KVStore is the replicated state machine: a fixed-cost in-memory
// key-value store.
type KVStore struct {
	m    map[int64]int64
	node transport.Endpoint
	cost time.Duration
}

// NewKVStore builds a store executing on the given node.
func NewKVStore(node transport.Endpoint, cost time.Duration) *KVStore {
	return &KVStore{m: make(map[int64]int64), node: node, cost: cost}
}

// Apply executes one operation, charging the execution cost.
func (kv *KVStore) Apply(p *sim.Proc, op ycsb.Op, key, value int64) int64 {
	kv.node.Compute(p, kv.cost)
	if op == ycsb.OpWrite {
		kv.m[key] = value
		return value
	}
	return kv.m[key]
}

// Len returns the number of stored keys.
func (kv *KVStore) Len() int { return len(kv.m) }

// latencyRecorder accumulates per-request latencies.
type latencyRecorder struct {
	sendAt    map[uint64]sim.Time
	latencies []time.Duration
	first     sim.Time
	last      sim.Time
}

func newRecorder(capacity int) *latencyRecorder {
	return &latencyRecorder{sendAt: make(map[uint64]sim.Time, capacity)}
}

func (lr *latencyRecorder) sent(id uint64, at sim.Time) { lr.sendAt[id] = at }

func (lr *latencyRecorder) completed(id uint64, at sim.Time) {
	start, ok := lr.sendAt[id]
	if !ok {
		return // duplicate completion
	}
	delete(lr.sendAt, id)
	lr.latencies = append(lr.latencies, at-start)
	if lr.first == 0 {
		lr.first = at
	}
	lr.last = at
}

// result reduces recorded latencies to the reported percentiles,
// dropping the warmup prefix.
func (lr *latencyRecorder) result(warmupFraction float64) Result {
	n := len(lr.latencies)
	if n == 0 {
		return Result{}
	}
	skip := int(float64(n) * warmupFraction)
	window := lr.last - lr.first
	meas := append([]time.Duration(nil), lr.latencies[skip:]...)
	sort.Slice(meas, func(i, j int) bool { return meas[i] < meas[j] })
	res := Result{Completed: n, Latencies: stats.NewHistogram()}
	for _, d := range meas {
		res.Latencies.Record(d)
	}
	if window > 0 {
		res.Throughput = float64(n) / window.Seconds()
	}
	if len(meas) > 0 {
		res.Median = meas[len(meas)/2]
		res.P95 = meas[int(float64(len(meas))*0.95)]
	}
	return res
}

// clientPlacement maps client i to its node (clients spread over the last
// ClientNodes nodes of the cluster).
func clientNode(c *fabric.Cluster, cfg Config, client int) *fabric.Node {
	base := cfg.Replicas
	return c.Node(base + client%cfg.ClientNodes)
}

// interArrival returns the per-client gap between request submissions for
// the aggregate offered rate.
func (cfg *Config) interArrival() time.Duration {
	perClient := cfg.Rate / float64(cfg.Clients)
	return time.Duration(float64(time.Second) / perClient)
}

// buildEnv creates the kernel and cluster for a consensus run: replicas
// first, then client nodes.
func buildEnv(cfg Config) (*sim.Kernel, *fabric.Cluster) {
	k := sim.New(cfg.Seed)
	k.Deadline = 10 * time.Minute
	fcfg := fabric.DefaultConfig()
	fcfg.MulticastLoss = cfg.MulticastLoss
	c := fabric.NewCluster(k, cfg.Replicas+cfg.ClientNodes, fcfg)
	return k, c
}

// reqKey packs (client, per-client sequence) into a unique request id.
func reqKey(client, seq int) uint64 {
	return uint64(client)<<40 | uint64(seq)
}
