package consensus

import (
	"testing"
	"time"
)

func TestReqKeyUniqueAcrossClients(t *testing.T) {
	seen := map[uint64]bool{}
	for c := 0; c < 16; c++ {
		for i := 0; i < 1000; i++ {
			k := reqKey(c, i)
			if seen[k] {
				t.Fatalf("duplicate request id for client %d seq %d", c, i)
			}
			seen[k] = true
		}
	}
}

func TestInterArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rate = 600_000
	cfg.Clients = 6
	if got := cfg.interArrival(); got != 10*time.Microsecond {
		t.Fatalf("interArrival = %v, want 10µs", got)
	}
}

func TestRecorderWarmupExclusion(t *testing.T) {
	lr := newRecorder(10)
	for i := uint64(0); i < 10; i++ {
		lr.sent(i, 0)
		// First request is an outlier that warmup must exclude from
		// percentiles.
		d := time.Microsecond
		if i == 0 {
			d = time.Second
		}
		lr.completed(i, sim_Time(i+1)*sim_Time(d))
	}
	_ = lr
}

type sim_Time = time.Duration

func TestRecorderPercentiles(t *testing.T) {
	lr := newRecorder(100)
	at := time.Duration(0)
	for i := uint64(0); i < 100; i++ {
		lr.sent(i, at)
		at += time.Microsecond
		lr.completed(i, at+time.Duration(i)*time.Microsecond) // latency grows with i
	}
	res := lr.result(0)
	if res.Completed != 100 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.P95 < res.Median {
		t.Fatalf("p95 %v < median %v", res.P95, res.Median)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestMultiPaxosWriteOnlyWorkload(t *testing.T) {
	cfg := testCfg()
	cfg.ReadFraction = 0 // all writes still replicate and complete
	cfg.Requests = 600
	res, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
}

func TestDAREWriteHeavySlowerThanReadHeavy(t *testing.T) {
	// Writes pay the replicated-log round; a write-heavy stream must not
	// be faster than the read-heavy one.
	base := testCfg()
	base.Requests = 1200
	reads := base
	reads.ReadFraction = 0.95
	writes := base
	writes.ReadFraction = 0.05
	r, err := RunDARE(reads)
	if err != nil {
		t.Fatal(err)
	}
	w, err := RunDARE(writes)
	if err != nil {
		t.Fatal(err)
	}
	if w.Throughput > r.Throughput*1.05 {
		t.Fatalf("write-heavy %.0f faster than read-heavy %.0f", w.Throughput, r.Throughput)
	}
}

func TestNOPaxosLatencyIncludesSequencerRoundTrip(t *testing.T) {
	// The paper: Multi-Paxos and NOPaxos have near-identical latencies at
	// low load because the sequencer costs NOPaxos its two saved message
	// delays. NOPaxos' median must not be dramatically below Multi-Paxos'.
	cfg := testCfg()
	cfg.Rate = 100_000
	cfg.Requests = 600
	np, err := RunNOPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if np.Median < mp.Median/4 {
		t.Fatalf("NOPaxos median %v implausibly below Multi-Paxos %v — sequencer round trip unaccounted", np.Median, mp.Median)
	}
}

func TestNOPaxosGapAgreementUnderLoss(t *testing.T) {
	// With explicit gap agreement, lost OUM packets surface to the
	// replicas, which recover them via retransmission requests; every
	// request still completes and at least one gap episode is observed.
	cfg := testCfg()
	cfg.Requests = 600
	cfg.Rate = 150_000
	cfg.MulticastLoss = 0.02
	cfg.GapAgreement = true
	res, err := RunNOPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d under loss", res.Completed, cfg.Requests)
	}
	if res.Gaps == 0 {
		t.Fatal("no gap-agreement episodes despite injected loss")
	}
}
