package consensus

import (
	"testing"
	"time"

	"dfi/internal/sim"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Requests = 1200
	cfg.Rate = 300_000
	return cfg
}

func TestMultiPaxosCompletesAllRequests(t *testing.T) {
	cfg := testCfg()
	res, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
	if res.Median <= 0 || res.P95 < res.Median {
		t.Fatalf("implausible latencies: %v", res)
	}
	// Multi-Paxos costs ~4 message delays; at µs-scale hops the median
	// must land in single-digit microseconds, far below 1ms.
	if res.Median > 100*time.Microsecond {
		t.Fatalf("median %v unreasonably high", res.Median)
	}
}

func TestNOPaxosCompletesAllRequests(t *testing.T) {
	cfg := testCfg()
	res, err := RunNOPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
	if res.Median <= 0 || res.Median > 100*time.Microsecond {
		t.Fatalf("implausible median %v", res.Median)
	}
}

func TestNOPaxosToleratesMulticastLoss(t *testing.T) {
	cfg := testCfg()
	cfg.Requests = 600
	cfg.Rate = 150_000
	cfg.MulticastLoss = 0.01
	res, err := RunNOPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d under loss", res.Completed, cfg.Requests)
	}
}

func TestDARECompletesAllRequests(t *testing.T) {
	cfg := testCfg()
	res, err := RunDARE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
}

func TestDAREThroughputBoundedByClosedLoopClients(t *testing.T) {
	// DARE's throughput must grow with the number of closed-loop clients
	// (each has one outstanding request), the limitation §6.3.2 calls out.
	cfg := testCfg()
	cfg.Clients = 2
	cfg.Requests = 1000
	two, err := RunDARE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = 8
	cfg.Requests = 4000
	eight, err := RunDARE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// More closed-loop clients raise throughput until the serialized
	// leader saturates (the paper's DARE curve flattens the same way).
	if eight.Throughput < 1.4*two.Throughput {
		t.Fatalf("8 clients %.0f req/s vs 2 clients %.0f req/s — closed loop should scale with clients",
			eight.Throughput, two.Throughput)
	}
}

func TestDFISystemsOutperformDARE(t *testing.T) {
	// Figure 15's headline: both DFI-based implementations beat DARE in
	// achieved throughput at comparable latency.
	cfg := testCfg()
	cfg.Requests = 3000
	cfg.Rate = 2_500_000 // beyond saturation: measures each system's ceiling
	paxos, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nopaxos, err := RunNOPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dare, err := RunDARE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if paxos.Throughput <= dare.Throughput {
		t.Errorf("Multi-Paxos %.0f req/s not above DARE %.0f req/s", paxos.Throughput, dare.Throughput)
	}
	if nopaxos.Throughput <= dare.Throughput {
		t.Errorf("NOPaxos %.0f req/s not above DARE %.0f req/s", nopaxos.Throughput, dare.Throughput)
	}
}

func TestKVStoreSemantics(t *testing.T) {
	cfg := testCfg()
	k, c := buildEnv(cfg)
	kv := NewKVStore(c.Node(0), cfg.ExecCost)
	k.Spawn("p", func(p *sim.Proc) {
		if got := kv.Apply(p, 0 /* read */, 42, 0); got != 0 {
			t.Errorf("read of missing key = %d", got)
		}
		kv.Apply(p, 1 /* write */, 42, 99)
		if got := kv.Apply(p, 0, 42, 0); got != 99 {
			t.Errorf("read after write = %d", got)
		}
		if kv.Len() != 1 {
			t.Errorf("len = %d", kv.Len())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	lr := newRecorder(8)
	lr.sent(1, 0)
	lr.sent(2, 0)
	lr.completed(1, 10*time.Microsecond)
	lr.completed(2, 20*time.Microsecond)
	lr.completed(2, 30*time.Microsecond) // duplicate: ignored
	res := lr.result(0)
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Median != 20*time.Microsecond {
		t.Fatalf("median = %v", res.Median)
	}
}
