package consensus

import (
	"testing"
	"time"
)

// TestMultiPaxosToleratesFollowerCrash crashes one of four followers a
// quarter of the way through the run. The leader must detect the silent
// replica via FailureTimeout on both the propose and vote flows and keep
// committing on the surviving majority (leader + 2 of 3 live followers),
// so every client request still completes.
func TestMultiPaxosToleratesFollowerCrash(t *testing.T) {
	cfg := testCfg()
	cfg.Requests = 1200
	cfg.Rate = 200_000
	cfg.CrashFollower = 2
	cfg.CrashAfterProposals = cfg.Requests / 4
	cfg.FailureTimeout = 150 * time.Microsecond
	res, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d with a crashed follower", res.Completed, cfg.Requests)
	}
	if res.Median <= 0 {
		t.Fatalf("implausible latencies: %v", res)
	}
}

// TestMultiPaxosFailureTimeoutHarmless checks that merely arming the
// failure detector (without any crash) does not disturb a healthy run.
func TestMultiPaxosFailureTimeoutHarmless(t *testing.T) {
	cfg := testCfg()
	cfg.Requests = 600
	cfg.Rate = 150_000
	cfg.FailureTimeout = 150 * time.Microsecond
	res, err := RunMultiPaxos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d with failure detection armed", res.Completed, cfg.Requests)
	}
}
