package consensus

import (
	"fmt"
	"time"

	"dfi/internal/core"
	"dfi/internal/registry"
	"dfi/internal/schema"
	"dfi/internal/sim"
	"dfi/internal/ycsb"
)

// RunMultiPaxos executes the failure-free operation of classical
// Multi-Paxos composed from DFI flows exactly as in the paper's Figure 3:
//
//	f1  N:1 shuffle   clients → leader        (submit request)
//	f2  replicate     leader  → followers     (propose, via RDMA multicast)
//	f3  N:1 shuffle   followers → leader      (vote)
//	f4  1:N shuffle   leader  → clients       (response, keyed by client id)
//
// The leader executes a request once a majority of replicas (itself plus
// two of four followers) has voted for it.
//
// With CrashAfterProposals set, follower CrashFollower falls silent after
// that many proposals; FailureTimeout-bounded flow waits let the leader
// declare it failed and commit on the surviving majority.
func RunMultiPaxos(cfg Config) (Result, error) {
	k, c := buildEnv(cfg)
	reg := registry.New(k)
	followers := cfg.Replicas - 1
	leaderNode := c.Node(0)

	clientEPs := make([]core.Endpoint, cfg.Clients)
	for i := range clientEPs {
		clientEPs[i] = core.Endpoint{Node: clientNode(c, cfg, i), Thread: i}
	}
	followerEPs := make([]core.Endpoint, followers)
	for i := range followerEPs {
		followerEPs[i] = core.Endpoint{Node: c.Node(i + 1), Thread: 0}
	}

	lat := core.Options{Optimization: core.OptimizeLatency}
	f1 := core.FlowSpec{
		Name: "paxos-submit", Sources: clientEPs,
		Targets: []core.Endpoint{{Node: leaderNode, Thread: 0}},
		Schema:  RequestSchema, Options: lat,
	}
	// FailureTimeout bounds the waits on the two flows a crashed follower
	// can stall: the leader's propose stream (per-target credit) and the
	// leader-side vote collection (a silent voter must not hold the flow
	// open forever). The two detectors are coupled: while the propose flow
	// waits out a dead target (up to RetransmitTimeout·(MaxRetransmits+1)),
	// no proposals reach the healthy followers, so their vote rings fall
	// silent through no fault of their own. The vote-side timeout must
	// out-wait the propose-side declaration or the leader would declare
	// every starved voter failed.
	proposeOpts := core.Options{Optimization: core.OptimizeLatency, Multicast: true,
		RetransmitTimeout: cfg.FailureTimeout, MaxRetransmits: 2}
	voteOpts := lat
	voteOpts.SourceTimeout = 6 * cfg.FailureTimeout
	f2 := core.FlowSpec{
		Name: "paxos-propose", Type: core.ReplicateFlow,
		Sources: []core.Endpoint{{Node: leaderNode, Thread: 0}},
		Targets: followerEPs,
		Schema:  RequestSchema,
		Options: proposeOpts,
	}
	f3 := core.FlowSpec{
		Name: "paxos-vote", Sources: followerEPs,
		Targets: []core.Endpoint{{Node: leaderNode, Thread: 1}},
		Schema:  VoteSchema, Options: voteOpts,
	}
	f4 := core.FlowSpec{
		Name:       "paxos-response",
		Sources:    []core.Endpoint{{Node: leaderNode, Thread: 1}},
		Targets:    clientEPs,
		Schema:     ResponseSchema,
		ShuffleKey: -1,
		Routing: func(t schema.Tuple) int {
			return int(ResponseSchema.Int64(t, 1))
		},
		Options: lat,
	}

	rec := newRecorder(cfg.Requests)
	kv := NewKVStore(leaderNode, cfg.ExecCost)
	majority := followers/2 + 1 // follower votes needed (leader self-vote implied)

	// Leader-local request side table shared by the proposer and committer
	// threads (both run on the leader node, sharing its memory).
	requestLog := make(map[uint64][4]int64, 1024)

	k.Spawn("init", func(p *sim.Proc) {
		for _, spec := range []core.FlowSpec{f1, f2, f3, f4} {
			if err := core.FlowInit(p, reg, c, spec); err != nil {
				panic(err)
			}
		}
	})

	// Leader thread 0: order client requests and propose them.
	k.Spawn("leader-proposer", func(p *sim.Proc) {
		in, err := core.TargetOpen(p, reg, "paxos-submit", 0)
		if err != nil {
			panic(err)
		}
		out, err := core.SourceOpen(p, reg, "paxos-propose", 0)
		if err != nil {
			panic(err)
		}
		for {
			tup, ok := in.Consume(p)
			if !ok {
				break
			}
			// Ordering + log append on the leader.
			leaderNode.Compute(p, cfg.ExecCost/2)
			requestLog[RequestSchema.Uint64(tup, 0)] = [4]int64{
				RequestSchema.Int64(tup, 2), // op
				RequestSchema.Int64(tup, 3), // key
				RequestSchema.Int64(tup, 4), // value
				RequestSchema.Int64(tup, 1), // client
			}
			if err := out.Push(p, tup); err != nil {
				panic(err)
			}
		}
		out.Close(p)
	})

	// Followers: append proposals to their logs and vote.
	for fi := 0; fi < followers; fi++ {
		fi := fi
		node := followerEPs[fi].Node
		k.Spawn(fmt.Sprintf("follower-%d", fi), func(p *sim.Proc) {
			in, err := core.TargetOpen(p, reg, "paxos-propose", fi)
			if err != nil {
				panic(err)
			}
			out, err := core.SourceOpen(p, reg, "paxos-vote", fi)
			if err != nil {
				panic(err)
			}
			vote := VoteSchema.NewTuple()
			handled := 0
			for {
				tup, ok := in.Consume(p)
				if !ok {
					break
				}
				node.Compute(p, cfg.ExecCost/2) // append to log
				VoteSchema.PutUint64(vote, 0, RequestSchema.Uint64(tup, 0))
				VoteSchema.PutInt64(vote, 1, int64(fi))
				if err := out.Push(p, vote); err != nil {
					panic(err)
				}
				handled++
				if cfg.CrashAfterProposals > 0 && fi == cfg.CrashFollower &&
					handled >= cfg.CrashAfterProposals {
					// Crash: fall silent without closing either flow. The
					// leader must detect the silence via FailureTimeout on
					// both the propose and vote sides.
					return
				}
			}
			out.Close(p)
		})
	}

	// Leader thread 1: collect votes, execute on majority, respond.
	k.Spawn("leader-committer", func(p *sim.Proc) {
		in, err := core.TargetOpen(p, reg, "paxos-vote", 0)
		if err != nil {
			panic(err)
		}
		out, err := core.SourceOpen(p, reg, "paxos-response", 0)
		if err != nil {
			panic(err)
		}
		votes := make(map[uint64]int, 1024)
		resp := ResponseSchema.NewTuple()
		// Per-vote bookkeeping (match against the log, quorum tracking):
		// this is the leader-side work NOPaxos moves to the clients, which
		// is why its leader saturates earlier (paper §6.3.2).
		const voteCost = 250 * time.Nanosecond
		for {
			tup, ok := in.Consume(p)
			if !ok {
				break
			}
			leaderNode.Compute(p, voteCost)
			id := VoteSchema.Uint64(tup, 0)
			votes[id]++
			if votes[id] != majority {
				continue
			}
			// Execute and acknowledge, looking the request up in the
			// proposer's leader-local side table.
			e := requestLog[id]
			delete(requestLog, id)
			res := kv.Apply(p, ycsb.Op(e[0]), e[1], e[2])
			client := e[3]
			ResponseSchema.PutUint64(resp, 0, id)
			ResponseSchema.PutInt64(resp, 1, client)
			ResponseSchema.PutInt64(resp, 2, res)
			ResponseSchema.PutInt64(resp, 3, 1)
			if err := out.Push(p, resp); err != nil {
				panic(err)
			}
		}
		out.Close(p)
	})

	// Clients: open-loop submitters plus response consumers.
	done := sim.NewWaitGroup(k)
	perClient := cfg.Requests / cfg.Clients
	gap := cfg.interArrival()
	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		done.Add(1)
		k.Spawn(fmt.Sprintf("client-submit-%d", ci), func(p *sim.Proc) {
			src, err := core.SourceOpen(p, reg, "paxos-submit", ci)
			if err != nil {
				panic(err)
			}
			gen := ycsb.New(cfg.ReadFraction, cfg.KeySpace, cfg.Seed+int64(ci))
			tup := RequestSchema.NewTuple()
			for i := 0; i < perClient; i++ {
				op, key := gen.Next()
				id := reqKey(ci, i)
				RequestSchema.PutUint64(tup, 0, id)
				RequestSchema.PutInt64(tup, 1, int64(ci))
				RequestSchema.PutInt64(tup, 2, int64(op))
				RequestSchema.PutInt64(tup, 3, int64(key))
				RequestSchema.PutInt64(tup, 4, int64(i))
				rec.sent(id, p.Now())
				if err := src.Push(p, tup); err != nil {
					panic(err)
				}
				p.Sleep(gap)
			}
			src.Close(p)
			done.Done()
		})
		k.Spawn(fmt.Sprintf("client-recv-%d", ci), func(p *sim.Proc) {
			tgt, err := core.TargetOpen(p, reg, "paxos-response", ci)
			if err != nil {
				panic(err)
			}
			for {
				tup, ok := tgt.Consume(p)
				if !ok {
					return
				}
				rec.completed(ResponseSchema.Uint64(tup, 0), p.Now())
			}
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	return rec.result(cfg.WarmupFraction), nil
}
